# Repo tasks. `make bench` regenerates BENCH_recommend.json, the committed
# performance trajectory future PRs are judged against.

GO ?= go

# bench pipes go test into benchjson; pipefail keeps a mid-stream bench
# failure from being swallowed by a successful parse of the partial output.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: test race bench fuzz-smoke

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -short -race ./...

# Fig6 runs time-based for precision; Fig8 runs a fixed 20 elicitation
# rounds so the cached variant reaches the steady state the acceptance
# criterion measures (cache warm across feedback rounds).
bench:
	@{ $(GO) test -run '^$$' -bench 'Fig6TopKPkg' -benchmem -benchtime 500ms . ; \
	   $(GO) test -run '^$$' -bench 'Fig8' -benchmem -benchtime 20x . ; } \
	  | $(GO) run ./cmd/benchjson -out BENCH_recommend.json
	@echo wrote BENCH_recommend.json

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadSnapshot$$' -fuzztime 10s ./internal/core
