# Repo tasks. `make bench` regenerates BENCH_recommend.json, the committed
# performance trajectory future PRs are judged against.

GO ?= go

# bench pipes go test into benchjson; pipefail keeps a mid-stream bench
# failure from being swallowed by a successful parse of the partial output.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: test race bench bench-serve bench-serve-sharded fuzz-smoke lint

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -short -race ./...

# lint always runs go vet; staticcheck and govulncheck run when installed
# (CI installs both — see .github/workflows/ci.yml) and are skipped with a
# note otherwise, so the target works in hermetic environments.
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; fi

# Fig6 runs time-based for precision; Fig8 runs a fixed 20 elicitation
# rounds so the cached variant reaches the steady state the acceptance
# criterion measures (cache warm across feedback rounds). ChurnRecommend
# runs fixed iterations too: its per-op cost is deliberately
# non-stationary (epoch swaps land mid-loop), which defeats go test's
# time-based iteration estimation; the mutating variant warms up untimed
# until churn equilibrium, and 120 iterations average across enough swaps
# for a stable retained/op. ChurnRestore pairs with it: the cost of
# restoring a stable-ID snapshot after k mutation batches. EpochBuild is
# the full-vs-delta epoch construction comparison (10k items, 16-item
# batches). ScaleTopK is the large-catalogue tier: 100k and 1M items
# across three distributions, each unpruned vs pruned vs partitioned —
# benchjson folds the pairs into Comparisons; the pruned speedup is the
# dominance filter's evidence and the partitioned speedup the
# sketch-refine partition's (the anti-correlated tier, where dominance is
# inert, is its acceptance gate). The 1M tier lives here only; CI's bench
# smoke stops at 100k.
bench:
	@{ $(GO) test -run '^$$' -bench 'Fig6TopKPkg' -benchmem -benchtime 500ms . ; \
	   $(GO) test -run '^$$' -bench 'Fig8' -benchmem -benchtime 20x . ; \
	   $(GO) test -run '^$$' -bench 'ChurnRecommend' -benchmem -benchtime 120x . ; \
	   $(GO) test -run '^$$' -bench 'ChurnRestore' -benchmem -benchtime 40x . ; \
	   $(GO) test -run '^$$' -bench 'EpochBuild' -benchmem -benchtime 50x . ; \
	   $(GO) test -run '^$$' -bench 'ScaleTopK$$' -benchmem -benchtime 5x . ; \
	   $(GO) test -run '^$$' -bench 'ScaleTopK1M' -benchmem -benchtime 2x -timeout 30m . ; } \
	  | $(GO) run ./cmd/benchjson -out BENCH_recommend.json
	@echo wrote BENCH_recommend.json

# bench-serve regenerates BENCH_serve.json, the committed whole-system
# serving benchmark: cmd/loadgen drives the in-process serving stack with
# zipfian traffic over a 100k-session population, once against a static
# catalogue and once under background mutation churn, and benchjson -serve
# folds both run records into per-route latency quantiles plus
# static-vs-mutating comparisons. loadgen exits non-zero on any transport
# error or non-2xx response, and pipefail propagates that through the
# pipe. Catalogue/engine parameters are sized for the single-core bench
# container; latency numbers are only comparable across runs of the same
# parameter set.
LOADGEN_FLAGS := -sessions 100000 -items 1000 -samples 30 -k 3 -concurrency 4 -duration 30s

bench-serve:
	@{ $(GO) run ./cmd/loadgen $(LOADGEN_FLAGS) ; \
	   $(GO) run ./cmd/loadgen $(LOADGEN_FLAGS) -churn 50ms ; } \
	  | $(GO) run ./cmd/benchjson -serve -out BENCH_serve.json
	@echo wrote BENCH_serve.json

# bench-serve-sharded folds the sharded-tier runs into the same
# BENCH_serve.json: cmd/loadgen boots 3 in-process backends behind a
# shardgw gateway (one shared session store, consistent-hash routing) and
# drives the same static + mutating workloads through it. benchjson
# -serve pairs them with the single-process runs already in the file and
# records the throughput scaleout ratio and per-route p50/p99
# comparisons. On a single-core host expect scaleout ≤ 1 (the gateway
# adds a hop and the shards share the core); the ratio is only meaningful
# on a machine with ≥ 4 CPUs. Run bench-serve first so the single-process
# baselines come from the same parameter set.
bench-serve-sharded:
	@{ $(GO) run ./cmd/loadgen $(LOADGEN_FLAGS) -shards 3 ; \
	   $(GO) run ./cmd/loadgen $(LOADGEN_FLAGS) -shards 3 -churn 50ms ; } \
	  | $(GO) run ./cmd/benchjson -serve -out BENCH_serve.json
	@echo wrote BENCH_serve.json

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadSnapshot$$' -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzDeltaEpoch$$' -fuzztime 10s ./internal/catalog
	$(GO) test -run '^$$' -fuzz '^FuzzSkylineDelta$$' -fuzztime 10s ./internal/skyline
	$(GO) test -run '^$$' -fuzz '^FuzzPartitionDelta$$' -fuzztime 10s ./internal/partition
	$(GO) test -run '^TestCacheRetentionBitIdentical$$|^TestCacheRevivalAfterRacingPut$$' -count=1 ./internal/core
	$(GO) test -race -run '^TestPartition' -count=1 ./internal/search
