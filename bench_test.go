// Benchmarks regenerating the cost core of every figure in the paper's
// evaluation (§5), plus ablations of this reproduction's design choices.
// Run with: go test -bench=. -benchmem
//
// Mapping (see DESIGN.md §3 and EXPERIMENTS.md):
//
//	Figure 4 → BenchmarkFig4Samplers            (sampler draw cost, 2-D)
//	Figure 5 → BenchmarkFig5ConstraintCheck     (full vs reduced constraints)
//	Figure 6 → BenchmarkFig6SampleGen, BenchmarkFig6TopKPkg
//	§5.4     → BenchmarkQualityRanking          (EXP/TKP/MPO aggregation)
//	Figure 7 → BenchmarkFig7Maintenance         (naive/TA/hybrid × violation mix)
//	Figure 8 → BenchmarkFig8ElicitationRound    (one recommend+click round)
//	ablations → BenchmarkAblation*
package toppkg_test

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"toppkg/internal/catalog"
	"toppkg/internal/core"
	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/gaussmix"
	"toppkg/internal/maintain"
	"toppkg/internal/pkgspace"
	"toppkg/internal/prefgraph"
	"toppkg/internal/ranking"
	"toppkg/internal/sampling"
	"toppkg/internal/search"
	"toppkg/internal/simulate"
	"toppkg/internal/topk"
)

// benchProfile mirrors the experiment harness: aggregations cycling over
// features.
func benchProfile(m int) *feature.Profile {
	cycle := []feature.Agg{feature.AggSum, feature.AggAvg, feature.AggMax, feature.AggMin}
	aggs := make([]feature.Agg, m)
	for i := range aggs {
		aggs[i] = cycle[i%len(cycle)]
	}
	return feature.SimpleProfile(aggs...)
}

func benchSpace(b *testing.B, kind string, n, m, phi int) *feature.Space {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	items, err := dataset.Generate(kind, n, m, rng)
	if err != nil {
		b.Fatal(err)
	}
	sp, err := feature.NewSpace(items, benchProfile(m), phi)
	if err != nil {
		b.Fatal(err)
	}
	return sp
}

// benchConstraints builds `prefs` constraints consistent with a hidden
// weight vector over random packages.
func benchConstraints(b *testing.B, sp *feature.Space, prefs int, seed int64) []prefgraph.Constraint {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, sp.Dims())
	for i := range w {
		w[i] = rng.Float64()*2 - 1
	}
	g := prefgraph.New()
	added := 0
	for attempts := 0; added < prefs && attempts < prefs*30; attempts++ {
		p1 := randomPkg(sp, rng)
		p2 := randomPkg(sp, rng)
		v1, v2 := pkgspace.Vector(sp, p1), pkgspace.Vector(sp, p2)
		u1, u2 := feature.Dot(w, v1), feature.Dot(w, v2)
		if u1 == u2 {
			continue
		}
		if u1 < u2 {
			p1, p2, v1, v2 = p2, p1, v2, v1
		}
		if err := g.AddPreference(p1, v1, p2, v2); err == nil {
			added++
		}
	}
	return g.Constraints(true)
}

func randomPkg(sp *feature.Space, rng *rand.Rand) pkgspace.Package {
	size := 1 + rng.Intn(sp.MaxSize)
	ids := make([]int, 0, size)
	seen := map[int]bool{}
	for len(ids) < size {
		id := rng.Intn(len(sp.Items))
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	return pkgspace.New(ids...)
}

// --- Figure 4: sampler cost to produce 100 valid 2-D samples. ---

func BenchmarkFig4Samplers(b *testing.B) {
	sp := benchSpace(b, "uni", 1000, 2, 3)
	cs := benchConstraints(b, sp, 2, 4)
	v := sampling.NewValidator(2, cs)
	prior := gaussmix.DefaultPrior(2, 1, rand.New(rand.NewSource(2)))
	for _, s := range []sampling.Sampler{
		&sampling.Rejection{Prior: prior, V: v},
		&sampling.Importance{Prior: prior, V: v},
		&sampling.MCMC{Prior: prior, V: v},
	} {
		b.Run(s.Name(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Sample(rng, 100); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 5: constraint checking, full vs transitively reduced. ---

func BenchmarkFig5ConstraintCheck(b *testing.B) {
	sp := benchSpace(b, "uni", 2000, 5, 3)
	rng := rand.New(rand.NewSource(5))
	w := make([]float64, 5)
	for i := range w {
		w[i] = rng.Float64()*2 - 1
	}
	g := prefgraph.New()
	for added := 0; added < 2000; {
		p1, p2 := randomPkg(sp, rng), randomPkg(sp, rng)
		v1, v2 := pkgspace.Vector(sp, p1), pkgspace.Vector(sp, p2)
		if feature.Dot(w, v1) == feature.Dot(w, v2) {
			continue
		}
		if feature.Dot(w, v1) < feature.Dot(w, v2) {
			p1, p2, v1, v2 = p2, p1, v2, v1
		}
		if err := g.AddPreference(p1, v1, p2, v2); err == nil {
			added++
		}
	}
	prior := gaussmix.DefaultPrior(5, 1, rng)
	draws := make([][]float64, 1000)
	for i := range draws {
		draws[i] = prior.Sample(rng)
	}
	for _, tc := range []struct {
		name    string
		reduced bool
	}{{"full", false}, {"reduced", true}} {
		cs := g.Constraints(tc.reduced)
		v := sampling.NewValidator(5, cs)
		b.Run(tc.name, func(b *testing.B) {
			b.ReportMetric(float64(len(cs)), "constraints")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, d := range draws {
					v.Valid(d, nil)
				}
			}
		})
	}
}

// --- Figure 6: sample generation and Top-k-Pkg per dataset. ---

func BenchmarkFig6SampleGen(b *testing.B) {
	for _, kind := range []string{"uni", "pwr", "cor", "ant", "nba"} {
		sp := benchSpace(b, kind, 20000, 5, 5)
		cs := benchConstraints(b, sp, 20, 6)
		v := sampling.NewValidator(5, cs)
		prior := gaussmix.DefaultPrior(5, 1, rand.New(rand.NewSource(6)))
		for _, s := range []sampling.Sampler{
			&sampling.Rejection{Prior: prior, V: v},
			&sampling.Importance{Prior: prior, V: v},
			&sampling.MCMC{Prior: prior, V: v},
		} {
			b.Run(kind+"/"+s.Name(), func(b *testing.B) {
				rng := rand.New(rand.NewSource(7))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Sample(rng, 200); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig6TopKPkg(b *testing.B) {
	for _, kind := range []string{"uni", "pwr", "cor", "ant", "nba"} {
		sp := benchSpace(b, kind, 20000, 5, 5)
		ix := search.NewIndex(sp)
		rng := rand.New(rand.NewSource(8))
		w := make([]float64, 5)
		for i := range w {
			w[i] = rng.Float64()*2 - 1
		}
		u, err := feature.NewUtility(sp.Profile, w)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ix.TopK(u, search.Options{K: 5}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §5.4: ranking-semantics aggregation over a fixed sample pool. ---

func BenchmarkQualityRanking(b *testing.B) {
	sp := benchSpace(b, "nba", 0, 4, 5)
	ix := search.NewIndex(sp)
	rng := rand.New(rand.NewSource(9))
	prior := gaussmix.DefaultPrior(4, 2, rng)
	samples := make([]sampling.Sample, 200)
	for i := range samples {
		samples[i] = sampling.Sample{W: prior.Sample(rng), Q: 1}
	}
	for _, sem := range []ranking.Semantics{ranking.EXP, ranking.TKP, ranking.MPO} {
		b.Run(sem.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ranking.Rank(ix, samples, sem, ranking.Options{K: 5,
					Search: search.Options{MaxQueue: 64, MaxAccessed: 300}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 7: maintenance strategies at few vs many violations. ---

func BenchmarkFig7Maintenance(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	const n, d = 10000, 5
	wStar := make([]float64, d)
	for i := range wStar {
		wStar[i] = rng.Float64()*2 - 1
	}
	posterior := gaussmix.Gaussian(wStar, 0.3)
	vecs := make([][]float64, n)
	for i := range vecs {
		vecs[i] = posterior.Sample(rng)
	}
	pool := topk.NewPool(vecs)

	sp := benchSpace(b, "uni", 2000, d, 3)
	// A consistent (few violators) and a reversed (many violators) query:
	// the reversed orientation of a clear preference invalidates most of
	// the wStar-concentrated pool.
	var fewQ, manyQ []float64
	for guard := 0; (fewQ == nil || manyQ == nil) && guard < 100000; guard++ {
		p1, p2 := randomPkg(sp, rng), randomPkg(sp, rng)
		v1, v2 := pkgspace.Vector(sp, p1), pkgspace.Vector(sp, p2)
		u1, u2 := feature.Dot(wStar, v1), feature.Dot(wStar, v2)
		if u1 == u2 {
			continue
		}
		if u1 < u2 {
			v1, v2 = v2, v1
		}
		countViol := func(q []float64) int {
			viol := 0
			for i := 0; i < n; i++ {
				if pool.Dot(i, q) > 0 {
					viol++
				}
			}
			return viol
		}
		consistent := maintain.Query(prefgraph.Constraint{Diff: diffVec(v1, v2)})
		if fewQ == nil && countViol(consistent) < n/100 {
			fewQ = consistent
		}
		reversed := maintain.Query(prefgraph.Constraint{Diff: diffVec(v2, v1)})
		if manyQ == nil && countViol(reversed) > n/3 {
			manyQ = reversed
		}
	}
	if fewQ == nil || manyQ == nil {
		b.Fatal("could not construct benchmark queries")
	}
	for _, tc := range []struct {
		name string
		q    []float64
	}{{"few_violators", fewQ}, {"many_violators", manyQ}} {
		for _, c := range []maintain.Checker{
			&maintain.Naive{P: pool},
			&maintain.TA{P: pool},
			&maintain.Hybrid{P: pool, Gamma: 0.025},
		} {
			b.Run(tc.name+"/"+c.Name(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c.Violators(tc.q)
				}
			})
		}
	}
}

func diffVec(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// --- Figure 8: one full recommend+click elicitation round on NBA. ---

// fig8Engine builds the Figure-8 serving engine; cacheSize -1 is the
// pre-batching baseline, 0 the cached pipeline default.
func fig8Engine(b *testing.B, rng *rand.Rand, cacheSize int) *core.Engine {
	b.Helper()
	items := dataset.NBASelect(dataset.NBA(rng), 5)
	eng, err := core.New(core.Config{
		Items:           items,
		Profile:         benchProfile(5),
		MaxPackageSize:  5,
		K:               5,
		RandomCount:     5,
		SampleCount:     200,
		Seed:            12,
		Parallelism:     -1,
		Search:          search.Options{MaxQueue: 64, MaxAccessed: 300},
		SearchCacheSize: cacheSize,
	})
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// reportPipelineMetrics attaches the batching counters the BENCH_*.json
// trajectory tracks: cache hits and searches per op, and the dedup ratio.
// base is the counter snapshot taken before the timed loop, so untimed
// warm-up rounds do not skew the per-op numbers.
func reportPipelineMetrics(b *testing.B, eng *core.Engine, base core.Stats) {
	st := eng.Stats()
	samples := st.RankSamples - base.RankSamples
	if samples == 0 {
		return
	}
	b.ReportMetric(float64(st.RankCacheHits-base.RankCacheHits)/float64(b.N), "hits/op")
	b.ReportMetric(float64(st.RankSearches-base.RankSearches)/float64(b.N), "searches/op")
	distinct := st.RankDistinct - base.RankDistinct
	b.ReportMetric(float64(samples-distinct)/float64(samples), "dedup")
}

var fig8Variants = []struct {
	name      string
	cacheSize int
}{
	{"nocache", -1}, // baseline: every sample searched every round
	{"cached", 0},   // batched pipeline: dedup + shared result cache
}

func BenchmarkFig8ElicitationRound(b *testing.B) {
	for _, tc := range fig8Variants {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(11))
			eng := fig8Engine(b, rng, tc.cacheSize)
			user := simulate.NewRandomUser(eng.Space().Profile, rng)
			base := eng.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				slate, err := eng.Recommend()
				if err != nil {
					b.Fatal(err)
				}
				pick := user.Choose(eng.Space(), slate.All, rng)
				if err := eng.Click(slate.All[pick], slate.All); err != nil {
					b.Fatal(err)
				}
			}
			reportPipelineMetrics(b, eng, base)
		})
	}
}

// BenchmarkFig8PostFeedbackRecommend isolates the batching PR's acceptance
// metric: the cost of re-running Recommend after a feedback round, when
// most pool samples survived and (in the cached variant) reuse last
// round's packages. The click that invalidates part of the pool runs
// outside the timer.
func BenchmarkFig8PostFeedbackRecommend(b *testing.B) {
	for _, tc := range fig8Variants {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(11))
			eng := fig8Engine(b, rng, tc.cacheSize)
			user := simulate.NewRandomUser(eng.Space().Profile, rng)
			// Warm-up round: draw the pool and learn one click.
			slate, err := eng.Recommend()
			if err != nil {
				b.Fatal(err)
			}
			base := eng.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				pick := user.Choose(eng.Space(), slate.All, rng)
				if err := eng.Click(slate.All[pick], slate.All); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				slate, err = eng.Recommend()
				if err != nil {
					b.Fatal(err)
				}
			}
			reportPipelineMetrics(b, eng, base)
		})
	}
}

// --- Live catalogue: recommend throughput under mutation churn. ---

// churnMutationInterval paces the background mutator: one single-item
// reprice batch per interval, i.e. ~500 nominal mutations/sec — a hot
// admin feed. Each swap invalidates the epoch-keyed result cache, so the
// mutating variant measures the serving cost of churn, not just the
// rebuilds themselves. churnCoalesce is the rebuilder's burst window:
// short enough that swaps land continuously under the recommend loop.
const (
	churnMutationInterval = 2 * time.Millisecond
	churnCoalesce         = 5 * time.Millisecond
)

var churnVariants = []struct {
	name   string
	mutate bool
}{
	{"static", false},  // baseline: live catalogue, no mutations (cache stays warm)
	{"mutating", true}, // epochs swap under the recommend loop
}

// BenchmarkChurnRecommend measures Recommend on a live catalogue while a
// background mutator reprices items: the swap path's serving overhead.
// The static variant is the same live stack with no mutations, so the
// static/mutating pair is the churn comparison benchjson records.
func BenchmarkChurnRecommend(b *testing.B) {
	for _, tc := range churnVariants {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(21))
			items := dataset.UNI(500, 5, rng)
			cat, err := catalog.New(catalog.Config{
				Profile:        benchProfile(5),
				MaxPackageSize: 5,
				Items:          items,
				Coalesce:       churnCoalesce,
			})
			if err != nil {
				b.Fatal(err)
			}
			sh, err := core.NewLiveShared(core.Config{
				K:           5,
				RandomCount: 5,
				SampleCount: 60,
				Seed:        12,
				Parallelism: -1,
				Search:      search.Options{MaxQueue: 64, MaxAccessed: 120},
			}, cat)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := sh.NewEngine(0)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Recommend(); err != nil { // warm pool + cache
				b.Fatal(err)
			}

			stop := make(chan struct{})
			done := make(chan struct{})
			var mutations atomic.Int64
			if tc.mutate {
				go func() {
					defer close(done)
					mrng := rand.New(rand.NewSource(22))
					tick := time.NewTicker(churnMutationInterval)
					defer tick.Stop()
					for {
						select {
						case <-stop:
							return
						case <-tick.C:
							id := mrng.Intn(len(items))
							err := cat.Upsert([]feature.Item{{
								ID:   id,
								Name: items[id].Name,
								Values: []float64{
									mrng.Float64(), mrng.Float64(), mrng.Float64(),
									mrng.Float64(), mrng.Float64(),
								},
							}})
							if err != nil {
								b.Error(err)
								return
							}
							mutations.Add(1)
						}
					}
				}()
			} else {
				close(done)
			}
			if tc.mutate {
				// Time the steady state, not the warm start: keep serving
				// untimed until enough swaps have landed for the cache to
				// reach its churn equilibrium (retention, revival and
				// re-search rates stable). Measuring from equilibrium also
				// keeps per-op cost roughly uniform, so the framework's
				// iteration-count extrapolation stays accurate.
				for cat.Current().ID < 12 {
					if _, err := eng.Recommend(); err != nil {
						b.Fatal(err)
					}
				}
			}

			startEpoch := cat.Current().ID
			base := eng.Stats()
			cbase := sh.SearchCache().Stats()
			mutBase := mutations.Load() // exclude warm-up-period mutations from mut/s
			start := time.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Recommend(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			elapsed := time.Since(start)
			close(stop)
			<-done
			reportPipelineMetrics(b, eng, base)
			cst := sh.SearchCache().Stats()
			b.ReportMetric(float64(cst.Retained-cbase.Retained)/float64(b.N), "retained/op")
			b.ReportMetric(float64(cst.Revived-cbase.Revived)/float64(b.N), "revived/op")
			b.ReportMetric(float64(cat.Current().ID-startEpoch)/float64(b.N), "swaps/op")
			if secs := elapsed.Seconds(); secs > 0 {
				b.ReportMetric(float64(mutations.Load()-mutBase)/secs, "mut/s")
			}
		})
	}
}

// --- Live catalogue: epoch construction, full rebuild vs delta build. ---

// BenchmarkEpochBuild measures producing the next epoch on a large
// catalogue when a small batch mutates. The full variant rebuilds
// feature.Space + search.Index from scratch (DeltaThreshold < 0); the
// delta variant splices the batch into the parent epoch's sorted lists
// and normalizer state (O(batch·log n) plus O(n) copying). Synchronous
// rebuild mode times exactly one build per batch; the full/delta pair is
// the comparison benchjson records.
const (
	epochBuildItems = 10000
	epochBuildBatch = 16
)

func BenchmarkEpochBuild(b *testing.B) {
	for _, tc := range []struct {
		name      string
		threshold int
	}{
		{"full", -1},
		{"delta", epochBuildBatch},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(41))
			items := dataset.UNI(epochBuildItems, 5, rng)
			cat, err := catalog.New(catalog.Config{
				Profile:        benchProfile(5),
				MaxPackageSize: 5,
				Items:          items,
				Coalesce:       -1,
				DeltaThreshold: tc.threshold,
			})
			if err != nil {
				b.Fatal(err)
			}
			batch := make([]feature.Item, epochBuildBatch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for j := range batch {
					id := (i*epochBuildBatch + j*101) % epochBuildItems
					batch[j] = feature.Item{ID: id, Name: items[id].Name, Values: []float64{
						rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(),
					}}
				}
				b.StartTimer()
				if err := cat.Upsert(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := cat.Stats()
			if tc.threshold > 0 && st.DeltaBuilds == 0 {
				b.Fatal("delta variant never took the delta path")
			}
			b.ReportMetric(float64(st.DeltaBuilds)/float64(b.N), "delta/op")
		})
	}
}

// --- Live catalogue: snapshot restore cost under churn. ---

// BenchmarkChurnRestore measures Restore of a stable-ID (v2) snapshot
// after the catalogue absorbed k mutation batches since the save — the
// remap + vector-recompute + graph-rebuild work every miss-restore pays
// under churn. Each iteration applies churnRestoreBatches batches (a
// rolling delete window, the previous window re-added, reprices) outside
// the timer, then restores the same snapshot against the churned epoch;
// dropped_items/op reports how much learned state the churn cost.
const churnRestoreBatches = 8

func BenchmarkChurnRestore(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	items := dataset.UNI(500, 5, rng)
	cat, err := catalog.New(catalog.Config{
		Profile:        benchProfile(5),
		MaxPackageSize: 5,
		Items:          items,
		Coalesce:       -1, // synchronous: batches outside the timer, deterministic epochs
	})
	if err != nil {
		b.Fatal(err)
	}
	sh, err := core.NewLiveShared(core.Config{
		K:           5,
		RandomCount: 5,
		SampleCount: 60,
		Seed:        12,
		Parallelism: -1,
		Search:      search.Options{MaxQueue: 64, MaxAccessed: 120},
	}, cat)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := sh.NewEngine(0)
	if err != nil {
		b.Fatal(err)
	}
	user := simulate.NewRandomUser(cat.Profile(), rng)
	for round := 0; round < 6; round++ { // accumulate a realistic preference graph
		slate, err := eng.Recommend()
		if err != nil {
			b.Fatal(err)
		}
		pick := user.Choose(slate.Space, slate.All, rng)
		if err := eng.Click(slate.All[pick], slate.All); err != nil {
			b.Fatal(err)
		}
	}
	snap := eng.Snapshot()

	window := func(i int) []int {
		base := (i * 7) % 450
		return []int{base, base + 1, base + 2}
	}
	reprice := func(id int) feature.Item {
		return feature.Item{ID: id, Name: items[id].Name, Values: []float64{
			rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(),
		}}
	}
	var droppedItems, droppedPrefs, edges int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if i > 0 { // the previous window returns, keeping the catalogue size steady
			prev := window(i - 1)
			back := make([]feature.Item, len(prev))
			for j, id := range prev {
				back[j] = reprice(id)
			}
			if err := cat.Upsert(back); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := cat.Delete(window(i)); err != nil {
			b.Fatal(err)
		}
		for k := 0; k < churnRestoreBatches-2; k++ {
			if err := cat.Upsert([]feature.Item{reprice((i*13 + k*37) % 500)}); err != nil {
				b.Fatal(err)
			}
		}
		restored, err := sh.NewEngine(0)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := restored.Restore(snap); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		di, dp := restored.RestoreDrops()
		droppedItems += di
		droppedPrefs += dp
		edges += restored.Graph().Edges()
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(droppedItems)/float64(b.N), "dropped_items/op")
	b.ReportMetric(float64(droppedPrefs)/float64(b.N), "dropped_prefs/op")
	b.ReportMetric(float64(edges)/float64(b.N), "edges/op")
}

// --- Ablation: the paper's line-3 pruning vs exact ExpandAll. ---

func BenchmarkAblationExpandAll(b *testing.B) {
	sp := benchSpace(b, "uni", 20000, 5, 5)
	ix := search.NewIndex(sp)
	u, err := feature.NewUtility(sp.Profile, []float64{0.6, -0.4, 0.5, -0.2, 0.3})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts search.Options
	}{
		{"paper_pruning", search.Options{K: 5}},
		{"expand_all", search.Options{K: 5, ExpandAll: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ix.TopK(u, tc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: bound-based pruning of the expandable queue. ---

func BenchmarkAblationBoundPrune(b *testing.B) {
	sp := benchSpace(b, "cor", 2000, 4, 4)
	ix := search.NewIndex(sp)
	u, err := feature.NewUtility(sp.Profile, []float64{0.7, 0.3, 0.4, -0.3})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts search.Options
	}{
		{"prune_on", search.Options{K: 5, ExpandAll: true}},
		{"prune_off", search.Options{K: 5, ExpandAll: true, DisableBoundPrune: true, MaxQueue: 20000}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ix.TopK(u, tc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: flat grid vs quadtree center for importance sampling. ---

func BenchmarkAblationCenterFinding(b *testing.B) {
	sp := benchSpace(b, "uni", 2000, 4, 3)
	cs := benchConstraints(b, sp, 50, 13)
	v := sampling.NewValidator(4, cs)
	prior := gaussmix.DefaultPrior(4, 1, rand.New(rand.NewSource(14)))
	for _, tc := range []struct {
		name     string
		quadtree bool
	}{{"grid", false}, {"quadtree", true}} {
		is := &sampling.Importance{Prior: prior, V: v, UseQuadtree: tc.quadtree, GridRes: 8}
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := is.Center(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: sample maintenance vs the EM-refit baseline (§3.1). ---

func BenchmarkAblationPosteriorUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	const n, d = 2000, 4
	prior := gaussmix.DefaultPrior(d, 2, rng)
	samples := make([]sampling.Sample, n)
	for i := range samples {
		samples[i] = sampling.Sample{W: prior.Sample(rng), Q: 1}
	}
	sp := benchSpace(b, "uni", 1000, d, 3)
	cs := benchConstraints(b, sp, 1, 16)
	c := cs[0]

	b.Run("maintenance", func(b *testing.B) {
		v := sampling.NewValidator(d, cs)
		s := &sampling.Rejection{Prior: prior, V: v}
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			pool := maintain.NewPool(append([]sampling.Sample(nil), samples...))
			rng := rand.New(rand.NewSource(17))
			b.StartTimer()
			if _, _, err := pool.Apply(c, s, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("em_refit", func(b *testing.B) {
		xs := sampling.Weights(samples)
		for i := 0; i < b.N; i++ {
			if _, err := gaussmix.FitEM(xs, nil, 2, 10, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation: MCMC thinning (sample correlation vs cost). ---

func BenchmarkAblationMCMCThin(b *testing.B) {
	sp := benchSpace(b, "uni", 1000, 3, 3)
	cs := benchConstraints(b, sp, 10, 18)
	v := sampling.NewValidator(3, cs)
	prior := gaussmix.DefaultPrior(3, 1, rand.New(rand.NewSource(19)))
	for _, thin := range []int{1, 5, 20} {
		ms := &sampling.MCMC{Prior: prior, V: v, Thin: thin}
		b.Run(name2("thin", thin), func(b *testing.B) {
			rng := rand.New(rand.NewSource(20))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ms.Sample(rng, 200); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Large-catalogue tier: dominance-pruned vs unpruned Top-k-Pkg. ---

// scaleProfile cycles sum/max so positive weights make the utility
// monotone — the regime where the skyline head filter engages. (The Fig6
// profile cycles avg/min in as well, which keeps its random-sign runs
// out of the filter's gate by design.)
func scaleProfile(m int) *feature.Profile {
	cycle := []feature.Agg{feature.AggSum, feature.AggMax}
	aggs := make([]feature.Agg, m)
	for i := range aggs {
		aggs[i] = cycle[i%len(cycle)]
	}
	return feature.SimpleProfile(aggs...)
}

// benchScaleTopK measures Top-k-Pkg at catalogue scale: unpruned vs
// dominance-pruned vs sketch-refine partitioned. The head set and the
// partition are materialized outside the timer, like the index sort: all
// are per-epoch precomputations amortized over every per-sample search
// the epoch serves (and maintained incrementally across delta builds).
//
// heads=false drops the dominance-pruned variant and runs the remaining
// pair with dominance off: the sort-filter skyline build is O(n·|frontier|)
// and the 1M anti-correlated frontier (~42% of items) puts it hours out
// of reach — which is fine, because that frontier shape is exactly where
// dominance pruning is inert (skipped/op = 0 at 100k) and partitioning is
// the lever that still works.
func benchScaleTopK(b *testing.B, n int, kinds []string, heads bool) {
	const m, phi = 5, 5
	for _, kind := range kinds {
		rng := rand.New(rand.NewSource(1))
		items, err := dataset.Generate(kind, n, m, rng)
		if err != nil {
			b.Fatal(err)
		}
		sp, err := feature.NewSpace(items, scaleProfile(m), phi)
		if err != nil {
			b.Fatal(err)
		}
		ix := search.NewIndex(sp)
		if heads {
			ix.Heads()
		}
		ix.EnsurePartition(0)
		w := make([]float64, m)
		wrng := rand.New(rand.NewSource(8))
		for i := range w {
			w[i] = 0.1 + 0.9*wrng.Float64()
		}
		u, err := feature.NewUtility(sp.Profile, w)
		if err != nil {
			b.Fatal(err)
		}
		// unpruned/pruned keep DisablePartition so their numbers stay the
		// baseline series; partitioned is the sketch-refine path over the
		// same pre-materialized clustering.
		variants := []struct {
			name string
			opts search.Options
		}{
			{"unpruned", search.Options{K: 5, DisableDominancePrune: true, DisablePartition: true}},
			{"pruned", search.Options{K: 5, DisablePartition: true}},
			{"partitioned", search.Options{K: 5}},
		}
		if !heads {
			variants = []struct {
				name string
				opts search.Options
			}{
				{"unpruned", search.Options{K: 5, DisableDominancePrune: true, DisablePartition: true}},
				{"partitioned", search.Options{K: 5, DisableDominancePrune: true}},
			}
		}
		for _, tc := range variants {
			b.Run(kind+"/"+tc.name, func(b *testing.B) {
				skipped, sketchSkipped, opened := 0, 0, 0
				for i := 0; i < b.N; i++ {
					res, err := ix.TopK(u, tc.opts)
					if err != nil {
						b.Fatal(err)
					}
					skipped = res.DomPruned
					sketchSkipped = res.SketchSkipped
					opened = res.RefineClustersOpened
				}
				if heads {
					b.ReportMetric(float64(ix.Heads().Len()), "skyline")
				}
				b.ReportMetric(float64(skipped), "skipped/op")
				if sketchSkipped > 0 || opened > 0 {
					b.ReportMetric(float64(sketchSkipped), "sketch_skipped/op")
					b.ReportMetric(float64(opened), "clusters_opened/op")
				}
			})
		}
	}
}

// BenchmarkScaleTopK is the committed 100k-item tier (uni/cor/ant); the
// CI bench smoke runs it. BenchmarkScaleTopK1M is the million-item tier,
// run by `make bench` only; its anti-correlated point skips the skyline
// variant (see benchScaleTopK).
func BenchmarkScaleTopK(b *testing.B) {
	benchScaleTopK(b, 100000, []string{"uni", "cor", "ant"}, true)
}

func BenchmarkScaleTopK1M(b *testing.B) {
	benchScaleTopK(b, 1000000, []string{"uni", "cor"}, true)
	benchScaleTopK(b, 1000000, []string{"ant"}, false)
}

func name2(prefix string, v int) string {
	switch v {
	case 1:
		return prefix + "_1"
	case 5:
		return prefix + "_5"
	default:
		return prefix + "_20"
	}
}
