// Package pkgspace defines packages (sets of items), the package space, an
// exhaustive enumerator with a brute-force top-k oracle (used as the ground
// truth in tests and as the naive baseline the paper argues is prohibitive),
// and schema predicates (paper §7).
package pkgspace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"toppkg/internal/feature"
)

// Package is a set of items identified by their dense IDs, kept sorted so
// that equal packages have equal signatures.
type Package struct {
	// IDs are the member item IDs in ascending order.
	IDs []int
}

// New builds a package from item IDs, sorting and de-duplicating them.
func New(ids ...int) Package {
	cp := append([]int(nil), ids...)
	sort.Ints(cp)
	out := cp[:0]
	for i, v := range cp {
		if i == 0 || v != cp[i-1] {
			out = append(out, v)
		}
	}
	return Package{IDs: out}
}

// Size returns the number of items in the package.
func (p Package) Size() int { return len(p.IDs) }

// Signature returns a canonical string key, e.g. "3|17|42". Packages are
// equal iff their signatures are equal; signatures are also used as the
// paper's deterministic tie-breaker.
func (p Package) Signature() string {
	var b strings.Builder
	for i, id := range p.IDs {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.Itoa(id))
	}
	return b.String()
}

// Contains reports whether the package contains item id.
func (p Package) Contains(id int) bool {
	i := sort.SearchInts(p.IDs, id)
	return i < len(p.IDs) && p.IDs[i] == id
}

// With returns a new package extended with item id.
func (p Package) With(id int) Package {
	ids := make([]int, 0, len(p.IDs)+1)
	i := sort.SearchInts(p.IDs, id)
	ids = append(ids, p.IDs[:i]...)
	if i < len(p.IDs) && p.IDs[i] == id {
		ids = append(ids, p.IDs[i:]...)
		return Package{IDs: ids}
	}
	ids = append(ids, id)
	ids = append(ids, p.IDs[i:]...)
	return Package{IDs: ids}
}

// String renders the package as "{3, 17, 42}".
func (p Package) String() string {
	parts := make([]string, len(p.IDs))
	for i, id := range p.IDs {
		parts[i] = strconv.Itoa(id)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Vector computes the normalized aggregate feature vector of the package in
// space s.
func Vector(s *feature.Space, p Package) []float64 {
	st := feature.NewState(s)
	for _, id := range p.IDs {
		st.Add(s.Items[id])
	}
	return st.Vector()
}

// Predicate is a schema constraint on candidate packages (paper §7), e.g.
// "at least two items must be novels". Predicates are evaluated when
// candidate packages are generated; packages failing any predicate are
// discarded.
type Predicate func(s *feature.Space, p Package) bool

// MinCount returns a predicate requiring at least min members satisfying
// the item test.
func MinCount(min int, test func(feature.Item) bool) Predicate {
	return func(s *feature.Space, p Package) bool {
		n := 0
		for _, id := range p.IDs {
			if test(s.Items[id]) {
				n++
				if n >= min {
					return true
				}
			}
		}
		return n >= min
	}
}

// MaxCount returns a predicate allowing at most max members satisfying the
// item test.
func MaxCount(max int, test func(feature.Item) bool) Predicate {
	return func(s *feature.Space, p Package) bool {
		n := 0
		for _, id := range p.IDs {
			if test(s.Items[id]) {
				n++
				if n > max {
					return false
				}
			}
		}
		return true
	}
}

// SizeBetween returns a predicate restricting the package size to [lo, hi].
func SizeBetween(lo, hi int) Predicate {
	return func(_ *feature.Space, p Package) bool {
		return p.Size() >= lo && p.Size() <= hi
	}
}

// All combines predicates conjunctively.
func All(preds ...Predicate) Predicate {
	return func(s *feature.Space, p Package) bool {
		for _, pr := range preds {
			if !pr(s, p) {
				return false
			}
		}
		return true
	}
}

// Enumerate calls fn for every non-empty package of size at most
// s.MaxSize, in lexicographic ID order. It is exponential in the item count
// and exists as the ground-truth oracle for tests and the naive baseline;
// Count reports the space size without materializing it.
func Enumerate(s *feature.Space, fn func(Package)) {
	n := len(s.Items)
	ids := make([]int, 0, s.MaxSize)
	var rec func(start int)
	rec = func(start int) {
		for i := start; i < n; i++ {
			ids = append(ids, i)
			fn(Package{IDs: append([]int(nil), ids...)})
			if len(ids) < s.MaxSize {
				rec(i + 1)
			}
			ids = ids[:len(ids)-1]
		}
	}
	rec(0)
}

// Count returns the number of non-empty packages of size ≤ maxSize over n
// items: Σ_{s=1..maxSize} C(n, s). It saturates at MaxInt64 via big-free
// overflow checks.
func Count(n, maxSize int) uint64 {
	var total uint64
	c := uint64(1) // C(n, 0)
	for s := 1; s <= maxSize && s <= n; s++ {
		// C(n,s) = C(n,s-1) * (n-s+1) / s — exact because the running
		// product of consecutive binomials stays integral.
		c = c * uint64(n-s+1) / uint64(s)
		prev := total
		total += c
		if total < prev {
			return ^uint64(0)
		}
	}
	return total
}

// Scored pairs a package with its utility under a fixed weight vector.
type Scored struct {
	Pkg     Package
	Utility float64
}

// BruteForceTopK exhaustively enumerates the package space and returns the
// top-k packages by utility under u, ties broken by ascending signature
// (the paper's deterministic tie-breaker). Predicates, when given, filter
// candidates. Intended for tests and tiny spaces only.
func BruteForceTopK(s *feature.Space, u *feature.Utility, k int, preds ...Predicate) []Scored {
	if k <= 0 {
		return nil
	}
	var all []Scored
	pred := All(preds...)
	Enumerate(s, func(p Package) {
		if len(preds) > 0 && !pred(s, p) {
			return
		}
		all = append(all, Scored{Pkg: p, Utility: u.Score(Vector(s, p))})
	})
	SortScored(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// SortScored orders by descending utility, ties by ascending signature.
func SortScored(xs []Scored) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].Utility != xs[j].Utility {
			return xs[i].Utility > xs[j].Utility
		}
		return Less(xs[i].Pkg, xs[j].Pkg)
	})
}

// Less is the deterministic package tie-break order: shorter signature
// first, then lexicographic on the ID sequence.
func Less(a, b Package) bool {
	for i := 0; i < len(a.IDs) && i < len(b.IDs); i++ {
		if a.IDs[i] != b.IDs[i] {
			return a.IDs[i] < b.IDs[i]
		}
	}
	return len(a.IDs) < len(b.IDs)
}

// Equal reports whether two packages contain exactly the same items.
func Equal(a, b Package) bool {
	if len(a.IDs) != len(b.IDs) {
		return false
	}
	for i := range a.IDs {
		if a.IDs[i] != b.IDs[i] {
			return false
		}
	}
	return true
}

// ValidateIDs checks that every ID in p indexes an item of s.
func ValidateIDs(s *feature.Space, p Package) error {
	for _, id := range p.IDs {
		if id < 0 || id >= len(s.Items) {
			return fmt.Errorf("pkgspace: item id %d out of range [0,%d)", id, len(s.Items))
		}
	}
	return nil
}
