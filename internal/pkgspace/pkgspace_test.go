package pkgspace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"toppkg/internal/feature"
)

func space(t *testing.T, maxSize int) *feature.Space {
	t.Helper()
	items := []feature.Item{
		{ID: 0, Values: []float64{0.6, 0.2}},
		{ID: 1, Values: []float64{0.4, 0.4}},
		{ID: 2, Values: []float64{0.2, 0.4}},
	}
	p := feature.SimpleProfile(feature.AggSum, feature.AggAvg)
	sp, err := feature.NewSpace(items, p, maxSize)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	return sp
}

func TestNewSortsAndDedups(t *testing.T) {
	p := New(3, 1, 3, 2)
	if got := p.Signature(); got != "1|2|3" {
		t.Errorf("Signature = %q, want 1|2|3", got)
	}
	if p.Size() != 3 {
		t.Errorf("Size = %d, want 3", p.Size())
	}
}

func TestContainsWith(t *testing.T) {
	p := New(1, 3)
	if !p.Contains(1) || !p.Contains(3) || p.Contains(2) {
		t.Error("Contains wrong")
	}
	q := p.With(2)
	if q.Signature() != "1|2|3" {
		t.Errorf("With = %q", q.Signature())
	}
	if p.Signature() != "1|3" {
		t.Error("With mutated receiver")
	}
	if r := p.With(3); r.Signature() != "1|3" {
		t.Errorf("With existing member = %q", r.Signature())
	}
}

func TestString(t *testing.T) {
	if got := New(2, 0).String(); got != "{0, 2}" {
		t.Errorf("String = %q", got)
	}
}

// TestEnumerateCountsPaperExample: the paper's Figure 1(b) lists seven
// packages over three items with φ=3.
func TestEnumerateCountsPaperExample(t *testing.T) {
	sp := space(t, 3)
	var got []string
	Enumerate(sp, func(p Package) { got = append(got, p.Signature()) })
	if len(got) != 7 {
		t.Fatalf("enumerated %d packages, want 7: %v", len(got), got)
	}
	seen := map[string]bool{}
	for _, s := range got {
		if seen[s] {
			t.Fatalf("duplicate package %q", s)
		}
		seen[s] = true
	}
}

func TestEnumerateRespectsMaxSize(t *testing.T) {
	sp := space(t, 2)
	count := 0
	Enumerate(sp, func(p Package) {
		count++
		if p.Size() > 2 {
			t.Errorf("package %s exceeds max size", p)
		}
	})
	if count != 6 {
		t.Errorf("enumerated %d, want 6 (pairs + singletons)", count)
	}
}

func TestCount(t *testing.T) {
	for _, tc := range []struct {
		n, maxSize int
		want       uint64
	}{
		{3, 3, 7},
		{3, 2, 6},
		{5, 1, 5},
		{10, 2, 55},
		{4, 4, 15},
		{0, 3, 0},
	} {
		if got := Count(tc.n, tc.maxSize); got != tc.want {
			t.Errorf("Count(%d,%d) = %d, want %d", tc.n, tc.maxSize, got, tc.want)
		}
	}
}

func TestCountMatchesEnumerate(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		maxSize := 1 + r.Intn(4)
		items := make([]feature.Item, n)
		for i := range items {
			items[i] = feature.Item{ID: i, Values: []float64{r.Float64()}}
		}
		sp, err := feature.NewSpace(items, feature.SimpleProfile(feature.AggSum), maxSize)
		if err != nil {
			return false
		}
		c := 0
		Enumerate(sp, func(Package) { c++ })
		return uint64(c) == Count(n, maxSize)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestVectorPaperP4(t *testing.T) {
	sp := space(t, 2)
	v := Vector(sp, New(0, 1)) // p4 = {t1,t2}: sum=1.0/1.0, avg=0.3/0.4
	if math.Abs(v[0]-1.0) > 1e-12 || math.Abs(v[1]-0.75) > 1e-12 {
		t.Errorf("Vector(p4) = %v, want (1, 0.75)", v)
	}
}

func TestBruteForceTopKPaperExample(t *testing.T) {
	sp := space(t, 2)
	// w1 = (0.5, 0.1): utilities p4=0.575 > p6=0.475 > p5=0.4 > p1=0.35...
	u, err := feature.NewUtility(sp.Profile, []float64{0.5, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	top := BruteForceTopK(sp, u, 3)
	want := []string{"0|1", "0|2", "1|2"}
	for i, w := range want {
		if top[i].Pkg.Signature() != w {
			t.Errorf("top[%d] = %s, want %s", i, top[i].Pkg.Signature(), w)
		}
	}
	if math.Abs(top[0].Utility-0.575) > 1e-9 {
		t.Errorf("top utility = %g, want 0.575", top[0].Utility)
	}
}

func TestBruteForceTopKWithPredicate(t *testing.T) {
	sp := space(t, 2)
	u, err := feature.NewUtility(sp.Profile, []float64{0.5, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Only singletons allowed.
	top := BruteForceTopK(sp, u, 2, SizeBetween(1, 1))
	if len(top) != 2 || top[0].Pkg.Size() != 1 || top[1].Pkg.Size() != 1 {
		t.Fatalf("predicate ignored: %v", top)
	}
	if top[0].Pkg.Signature() != "0" { // t1 scores 0.35, best singleton
		t.Errorf("best singleton = %s, want {0}", top[0].Pkg)
	}
}

func TestPredicates(t *testing.T) {
	sp := space(t, 3)
	cheap := func(it feature.Item) bool { return it.Values[0] <= 0.4 }
	p := New(0, 1, 2)
	if !MinCount(2, cheap)(sp, p) {
		t.Error("MinCount(2, cheap) should pass: t2, t3 are cheap")
	}
	if MinCount(3, cheap)(sp, p) {
		t.Error("MinCount(3, cheap) should fail")
	}
	if !MaxCount(2, cheap)(sp, p) {
		t.Error("MaxCount(2, cheap) should pass")
	}
	if MaxCount(1, cheap)(sp, p) {
		t.Error("MaxCount(1, cheap) should fail")
	}
	if !All(MinCount(1, cheap), SizeBetween(2, 3))(sp, p) {
		t.Error("All conjunctive failed")
	}
	if All(MinCount(1, cheap), SizeBetween(1, 2))(sp, p) {
		t.Error("All should fail on size")
	}
}

func TestLessOrder(t *testing.T) {
	// Shorter prefix first, then lexicographic.
	a, b, c := New(0), New(0, 1), New(1)
	if !Less(a, b) || !Less(b, c) || !Less(a, c) {
		t.Error("Less ordering broken")
	}
	if Less(b, a) || Less(c, b) {
		t.Error("Less not antisymmetric")
	}
	if Less(a, a) {
		t.Error("Less not irreflexive")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(New(1, 2), New(2, 1)) {
		t.Error("Equal should ignore order")
	}
	if Equal(New(1), New(1, 2)) {
		t.Error("Equal on different sizes")
	}
}

func TestValidateIDs(t *testing.T) {
	sp := space(t, 2)
	if err := ValidateIDs(sp, New(0, 2)); err != nil {
		t.Errorf("valid ids rejected: %v", err)
	}
	if err := ValidateIDs(sp, New(3)); err == nil {
		t.Error("out-of-range id accepted")
	}
}

func TestSortScoredTieBreak(t *testing.T) {
	xs := []Scored{
		{Pkg: New(1), Utility: 0.5},
		{Pkg: New(0), Utility: 0.5},
		{Pkg: New(2), Utility: 0.9},
	}
	SortScored(xs)
	if xs[0].Pkg.Signature() != "2" || xs[1].Pkg.Signature() != "0" || xs[2].Pkg.Signature() != "1" {
		t.Errorf("SortScored order wrong: %v", xs)
	}
}

// Property: BruteForceTopK returns non-increasing utilities and at most k
// packages, each within the size bound.
func TestBruteForceTopKProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		items := make([]feature.Item, n)
		for i := range items {
			items[i] = feature.Item{ID: i, Values: []float64{r.Float64(), r.Float64()}}
		}
		maxSize := 1 + r.Intn(3)
		sp, err := feature.NewSpace(items, feature.SimpleProfile(feature.AggSum, feature.AggAvg), maxSize)
		if err != nil {
			return false
		}
		w := []float64{r.Float64()*2 - 1, r.Float64()*2 - 1}
		u, err := feature.NewUtility(sp.Profile, w)
		if err != nil {
			return false
		}
		k := 1 + r.Intn(5)
		top := BruteForceTopK(sp, u, k)
		if len(top) > k {
			return false
		}
		for i := range top {
			if top[i].Pkg.Size() > maxSize {
				return false
			}
			if i > 0 && top[i].Utility > top[i-1].Utility+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
