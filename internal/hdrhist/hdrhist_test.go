package hdrhist

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram not all-zero: %+v", h.Snap())
	}
}

func TestSingleSample(t *testing.T) {
	var h Histogram
	h.Record(3 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Max(); got != 3*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got <= 0 || got > 3*time.Millisecond {
			t.Fatalf("q%.2f = %v, want in (0, 3ms]", q, got)
		}
	}
}

// TestQuantileAccuracy: the bucketed estimate must stay within one
// bucket's relative error (20%) of the exact sample quantile across a
// realistic latency spread.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	samples := make([]time.Duration, 20000)
	for i := range samples {
		// Log-uniform between 100µs and 1s — the range a serving stack sees.
		exp := rng.Float64() * 4 // 10^0 .. 10^4 (in units of 100µs)
		d := time.Duration(float64(100*time.Microsecond) * pow10(exp))
		samples[i] = d
		h.Record(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		lo := time.Duration(float64(exact) * 0.75)
		hi := time.Duration(float64(exact) * 1.30)
		if got < lo || got > hi {
			t.Errorf("q%.2f = %v, exact %v: outside [%v, %v]", q, got, exact, lo, hi)
		}
	}
}

func pow10(x float64) float64 {
	r := 1.0
	for x >= 1 {
		r *= 10
		x--
	}
	// linear-ish interpolation of the fractional decade is fine for test data
	return r * (1 + 9*x/10*x) // monotone in x on [0,1)
}

func TestQuantileNeverExceedsMax(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	h.Record(90 * time.Millisecond)
	if got, max := h.Quantile(1), h.Max(); got > max {
		t.Fatalf("q1.0 = %v exceeds max %v", got, max)
	}
}

func TestOutOfRangeSamples(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)   // clamped to 0
	h.Record(0)              // below minLatency
	h.Record(10 * time.Hour) // beyond the top bucket
	h.Record(3 * time.Hour)  // also top bucket
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(1); got > 10*time.Hour {
		t.Fatalf("q1.0 = %v", got)
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(time.Millisecond)
		b.Record(100 * time.Millisecond)
	}
	var m Histogram
	m.Merge(&a)
	m.Merge(&b)
	m.Merge(nil)
	if m.Count() != 200 {
		t.Fatalf("merged count = %d", m.Count())
	}
	if got := m.Quantile(0.25); got > 2*time.Millisecond {
		t.Errorf("merged q0.25 = %v, want ~1ms", got)
	}
	if got := m.Quantile(0.99); got < 80*time.Millisecond {
		t.Errorf("merged q0.99 = %v, want ~100ms", got)
	}
	if m.Max() != 100*time.Millisecond {
		t.Errorf("merged max = %v", m.Max())
	}
}

func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(rng.Intn(int(time.Second))))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	var total int64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	if total != workers*per {
		t.Fatalf("bucket sum = %d, want %d", total, workers*per)
	}
}

func TestSnapshotShape(t *testing.T) {
	var h Histogram
	h.Record(2 * time.Millisecond)
	h.Record(4 * time.Millisecond)
	s := h.Snap()
	if s.Count != 2 || s.MaxMs < 3 || s.P50Ms <= 0 || s.P99Ms < s.P50Ms {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for d := time.Microsecond; d < time.Hour; d = d * 3 / 2 {
		i := bucketIndex(d)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %v: %d < %d", d, i, prev)
		}
		if i < 0 || i >= bucketCount {
			t.Fatalf("bucketIndex(%v) = %d out of range", d, i)
		}
		prev = i
	}
}
