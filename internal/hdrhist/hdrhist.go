// Package hdrhist is a fixed-footprint, concurrency-safe latency
// histogram in the HDR style: log-spaced buckets cover five decades of
// latency (50µs to several minutes) with bounded relative error, so p50,
// p95 and p99 can be read off a live serving process — or a load
// generator hammering one — without keeping every sample. Recording is
// one atomic add; there are no locks on the hot path.
//
// The whole-system traffic harness (cmd/loadgen) and the per-route HTTP
// metrics middleware (internal/server) both record into this type, so the
// client-side and server-side views of the same traffic are directly
// comparable bucket for bucket.
package hdrhist

import (
	"math"
	"sync/atomic"
	"time"
)

// bucketCount is the number of log-spaced buckets. With growth g per
// bucket and a floor of minLatency, bucket i spans
// [minLatency·g^i, minLatency·g^(i+1)); the top bucket additionally
// absorbs everything beyond the covered range.
const bucketCount = 80

// minLatency is the lower bound of bucket 0. Anything faster lands in
// bucket 0 — at serving granularity, 50µs is "instant".
const minLatency = 50 * time.Microsecond

// growth is the per-bucket multiplier. 80 buckets at 1.2× span
// 50µs · 1.2^80 ≈ 100 minutes, with ≤20% relative quantile error —
// coarser than a true HDR histogram but plenty for p50/p95/p99 of an
// HTTP route.
const growth = 1.2

// invLogGrowth caches 1/ln(growth) for the index computation.
var invLogGrowth = 1 / math.Log(growth)

// Histogram accumulates duration samples. The zero value is ready to
// use; all methods are safe for concurrent use.
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
	buckets [bucketCount]atomic.Int64
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	if d <= minLatency {
		return 0
	}
	i := int(math.Log(float64(d)/float64(minLatency)) * invLogGrowth)
	if i >= bucketCount {
		return bucketCount - 1
	}
	return i
}

// bucketUpper returns the upper bound of bucket i (its exclusive edge).
func bucketUpper(i int) time.Duration {
	return time.Duration(float64(minLatency) * math.Pow(growth, float64(i+1)))
}

// bucketLower returns the lower bound of bucket i.
func bucketLower(i int) time.Duration {
	if i == 0 {
		return 0
	}
	return time.Duration(float64(minLatency) * math.Pow(growth, float64(i)))
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	for {
		cur := h.maxNs.Load()
		if int64(d) <= cur || h.maxNs.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	h.buckets[bucketIndex(d)].Add(1)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Mean returns the arithmetic mean of all samples (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// Quantile returns an estimate of the q-quantile (0 < q ≤ 1) by linear
// interpolation inside the bucket holding the target rank. The estimate
// never exceeds the recorded maximum. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is 1-based: the ceil(q·n)-th smallest sample.
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < bucketCount; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			lo, hi := bucketLower(i), bucketUpper(i)
			if max := h.Max(); hi > max {
				hi = max
			}
			if hi < lo {
				return lo
			}
			frac := float64(rank-seen) / float64(c)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		seen += c
	}
	return h.Max() // unreachable unless counters race; max is still safe
}

// Merge folds other's samples into h (other is read atomically but not
// snapshotted; merging a histogram under concurrent writes yields a
// point-in-time-ish view, which is what reporting wants).
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	h.count.Add(other.count.Load())
	h.sumNs.Add(other.sumNs.Load())
	for {
		cur, om := h.maxNs.Load(), other.maxNs.Load()
		if om <= cur || h.maxNs.CompareAndSwap(cur, om) {
			break
		}
	}
	for i := range h.buckets {
		if c := other.buckets[i].Load(); c != 0 {
			h.buckets[i].Add(c)
		}
	}
}

// Snapshot is a point-in-time summary, shaped for JSON reporting. All
// latencies are in milliseconds, matching how serving numbers are read.
type Snapshot struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Snap summarizes the histogram.
func (h *Histogram) Snap() Snapshot {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return Snapshot{
		Count:  h.Count(),
		MeanMs: ms(h.Mean()),
		P50Ms:  ms(h.Quantile(0.50)),
		P95Ms:  ms(h.Quantile(0.95)),
		P99Ms:  ms(h.Quantile(0.99)),
		MaxMs:  ms(h.Max()),
	}
}
