// The loadgen smoke test is the whole-system regression net: a few
// seconds of zipfian recommend/click/feedback traffic against a real
// in-process HTTP server with a mutating catalogue, under the race
// detector in CI. It asserts the strongest invariants a healthy serving
// path has: zero transport errors, zero non-2xx responses (the click
// consistency and wire-format bugs this harness originally flushed out
// all surfaced here), and server-side /healthz route metrics that
// account for every request the generator sent.
package loadgen

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"toppkg/internal/catalog"
	"toppkg/internal/core"
	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/ranking"
	"toppkg/internal/search"
	"toppkg/internal/server"
	"toppkg/internal/session"
)

// newTestServer stands up the full serving stack — live catalogue,
// shared core, session manager, HTTP API — sized for fast recommends.
func newTestServer(t *testing.T) (*httptest.Server, *server.Server) {
	t.Helper()
	const items, features, phi = 400, 3, 3
	data := dataset.UNI(items, features, rand.New(rand.NewSource(11)))
	profile := feature.SimpleProfile(feature.AggSum, feature.AggAvg, feature.AggMax)
	cat, err := catalog.New(catalog.Config{
		Profile:        profile,
		MaxPackageSize: phi,
		Items:          data,
		Coalesce:       5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := core.NewLiveShared(core.Config{
		Items:          data,
		Profile:        profile,
		MaxPackageSize: phi,
		K:              3,
		SampleCount:    40,
		Seed:           11,
		Semantics:      ranking.EXP,
		Psi:            0.9,
		Search:         search.Options{MaxQueue: 64, MaxAccessed: 200},
	}, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity above the simulated population: a mid-episode LRU eviction
	// resets a session's pinned feedback epoch, and its next click could
	// then legitimately 400 on a churn-deleted item — a real protocol
	// property, but not the invariant this smoke asserts (zero failures).
	mgr, err := session.NewManager(session.Config{Shared: shared, Capacity: 8192})
	if err != nil {
		t.Fatal(err)
	}
	api := server.New(mgr, server.Options{Catalog: cat})
	ts := httptest.NewServer(api)
	t.Cleanup(func() {
		ts.Close()
		cat.Close()
		mgr.Close()
	})
	return ts, api
}

// healthzHTTP is the slice of /healthz this test reads.
type healthzHTTP struct {
	HTTP map[string]struct {
		Requests  int64 `json:"requests"`
		Status2xx int64 `json:"status_2xx"`
		Status4xx int64 `json:"status_4xx"`
		Status5xx int64 `json:"status_5xx"`
	} `json:"http"`
}

func scrapeHealthz(t *testing.T, base string) healthzHTTP {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthzHTTP
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestSmokeMutatingCatalogue(t *testing.T) {
	ts, _ := newTestServer(t)
	dur := 3 * time.Second
	if testing.Short() {
		dur = 1500 * time.Millisecond
	}
	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Sessions:    5000,
		ZipfS:       1.2,
		Concurrency: 8,
		Duration:    dur,
		Churn:       100 * time.Millisecond,
		ChurnBatch:  4,
		ChurnItems:  400,
		Features:    3,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total == 0 {
		t.Fatal("load run sent no requests")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d transport errors in %d requests: %+v", rep.Errors, rep.Total, rep.Routes)
	}
	if rep.Non2xx != 0 {
		t.Fatalf("%d non-2xx responses in %d requests: %+v", rep.Non2xx, rep.Total, rep.Routes)
	}
	routes := []string{"recommend", "click", "feedback"}
	if testing.Short() {
		// A race-detector short run fits too few ops to guarantee the
		// rarest op (feedback, 1/10 weight) fires at all.
		routes = routes[:2]
	}
	for _, route := range routes {
		if rep.Routes[route].Count == 0 {
			t.Errorf("route %s saw no traffic in %d total requests", route, rep.Total)
		}
	}
	if rep.ChurnBatches == 0 {
		t.Error("catalogue churn never ran")
	}
	// Every fourth batch retires the extra item inserted two batches
	// earlier, so a run past batch 3 must have exercised catalog.delete
	// (a slot-rotation bug once left this route permanently silent).
	if rep.ChurnBatches >= 4 && rep.Routes["catalog.delete"].Count == 0 {
		t.Errorf("no catalogue deletes in %d churn batches", rep.ChurnBatches)
	}
	if rep.All.Latency.Count != rep.Total {
		t.Errorf("aggregate histogram holds %d samples, want %d", rep.All.Latency.Count, rep.Total)
	}
	// A churn run must have settled before Run returned — that is what
	// makes the accounting loop below sound rather than racing the
	// background rebuilder.
	if rep.SettleFailed {
		t.Fatal("catalogue never settled after churn")
	}
	if rep.SettlePolls == 0 {
		t.Error("churn run recorded no settle polls")
	}

	// Server-side accounting: every request the generator counted must
	// appear in /healthz route metrics, route by route, plus exactly one
	// healthz pre-flight from Run itself and the recorded settle polls on
	// catalog.get. A handler's metric is recorded just after its response
	// is written, so allow the last responses' recordings a moment to land
	// before declaring a mismatch.
	deadline := time.Now().Add(2 * time.Second)
	for {
		h := scrapeHealthz(t, ts.URL)
		ok := true
		var serverTotal int64
		for name, m := range h.HTTP {
			serverTotal += m.Requests
			if m.Status4xx != 0 || m.Status5xx != 0 {
				t.Fatalf("server counted failures on %s: %+v", name, m)
			}
			want := rep.Routes[name].Count
			switch name {
			case "healthz":
				want = 1 // Run's pre-flight; this scrape isn't in its own snapshot
			case "catalog.get":
				want = rep.SettlePolls // quiesce polls, counted outside the run
			}
			if m.Requests != want {
				ok = false
			}
		}
		if ok && serverTotal == rep.Total+1+rep.SettlePolls {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz accounts for %d requests, loadgen sent %d (+1 pre-flight); server view: %+v; client view: %+v",
				serverTotal, rep.Total, h.HTTP, rep.Routes)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStaticTraffic is the no-churn counterpart of the smoke test — the
// static variant of the committed BENCH_serve.json runs.
func TestStaticTraffic(t *testing.T) {
	ts, _ := newTestServer(t)
	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Sessions:    5000,
		ZipfS:       1.2,
		Concurrency: 8,
		Duration:    1500 * time.Millisecond,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total == 0 || rep.Errors != 0 || rep.Non2xx != 0 {
		t.Fatalf("static run: total=%d errors=%d non2xx=%d %+v",
			rep.Total, rep.Errors, rep.Non2xx, rep.Routes)
	}
	if rep.ChurnBatches != 0 {
		t.Fatalf("static run reported %d churn batches", rep.ChurnBatches)
	}
}

// newStubServer fakes the serve API with trivial constant handlers: the
// open-loop test checks the generator's arrival schedule, which only
// holds when the server is not the bottleneck (under the race detector
// the real stack is far too slow to serve 200 req/s).
func newStubServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	slate := `{"recommended":[{"items":[1,2],"score":0.9},{"items":[3],"score":0.5}],"random":[{"items":[4]}],"epoch":0}`
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	})
	mux.HandleFunc("GET /sessions/{id}/recommend", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(slate))
	})
	mux.HandleFunc("POST /sessions/{id}/click", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	})
	mux.HandleFunc("POST /sessions/{id}/feedback", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	})
	mux.HandleFunc("DELETE /sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestOpenLoop drives the fixed-arrival-rate mode: the schedule must
// hold (sent + shed ≈ rate × duration) and everything sent must succeed.
func TestOpenLoop(t *testing.T) {
	ts := newStubServer(t)
	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Sessions:    500,
		ZipfS:       1.3,
		Concurrency: 4,
		Rate:        200,
		Duration:    time.Second,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" {
		t.Fatalf("mode = %q, want open", rep.Mode)
	}
	if rep.Errors != 0 || rep.Non2xx != 0 {
		t.Fatalf("open-loop failures: errors=%d non2xx=%d %+v", rep.Errors, rep.Non2xx, rep.Routes)
	}
	arrivals := rep.Total + rep.Shed
	// One second at 200/s: allow generous slack for ticker start-up and
	// scheduler jitter, but the arrival schedule must clearly be running.
	if arrivals < 100 || arrivals > 260 {
		t.Fatalf("open loop produced %d arrivals (sent %d, shed %d), want ≈200", arrivals, rep.Total, rep.Shed)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                         // no BaseURL
		{BaseURL: "x", ZipfS: 0.9}, // zipf s must exceed 1
		{BaseURL: "x", Sessions: -1},
		{BaseURL: "x", MixRecommend: -1, MixClick: 1},
		{BaseURL: "x", Rate: -5},
		{BaseURL: "x", Churn: time.Second}, // churn needs Features
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}

func TestPackageOrder(t *testing.T) {
	if !pkgLess([]int{1, 2}, []int{1, 2, 3}) {
		t.Error("shorter package must order below longer")
	}
	if !pkgLess([]int{1, 2, 3}, []int{1, 2, 4}) {
		t.Error("ties break on item IDs")
	}
	if pkgLess([]int{5}, []int{5}) || !pkgEqual([]int{5}, []int{5}) {
		t.Error("equal packages must compare equal")
	}
	if got := canonical([]int{9, 3, 7}); got[0] != 3 || got[1] != 7 || got[2] != 9 {
		t.Errorf("canonical([9 3 7]) = %v", got)
	}
}
