// Package loadgen is the whole-system traffic harness: it drives a
// serve-compatible HTTP endpoint with the traffic shape the paper's
// deployment story implies (§1 — recommendations fetched at login,
// clicks posted back as implicit feedback), not a micro-benchmark. A run
// simulates a large population of sessions (100k+ by default) whose
// request frequency follows a zipfian popularity curve, each session
// issuing a recommend/click/feedback mix modeled on internal/simulate,
// with every per-session decision drawn from a deterministic RNG seeded
// by session.SeedFor — so two runs with the same config replay the same
// logical traffic.
//
// The generator runs closed-loop (N workers, each back-to-back) or
// open-loop (a fixed arrival rate, latency including server queueing) and
// can mutate the catalogue in the background to measure serving under
// churn. Per-route latency lands in hdrhist histograms; Run returns a
// Report with p50/p95/p99, error counts, and sustained throughput —
// the numbers committed to BENCH_serve.json by cmd/loadgen.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"toppkg/internal/hdrhist"
	"toppkg/internal/session"
)

// Config shapes one load run.
type Config struct {
	// BaseURL is the server under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client issues the requests. Nil builds one with sane pooling for
	// Concurrency workers and a 10s per-request timeout.
	Client *http.Client
	// Sessions is the simulated session-ID population (default 100000).
	Sessions int
	// ZipfS/ZipfV shape the session popularity curve (defaults 1.07/1;
	// ZipfS must be > 1). Lower ZipfS spreads traffic more evenly.
	ZipfS, ZipfV float64
	// Concurrency is the closed-loop worker count (default 8); in
	// open-loop mode it only sizes the connection pool.
	Concurrency int
	// Rate > 0 switches to open-loop: requests start on a fixed schedule
	// of Rate ops/sec regardless of completions, so recorded latency
	// includes server queueing. 0 runs closed-loop.
	Rate float64
	// MaxInFlight caps concurrent open-loop requests (default
	// 4×Concurrency); arrivals past the cap are counted as shed, not sent.
	MaxInFlight int
	// Duration bounds the run (default 10s); the context can end it
	// earlier.
	Duration time.Duration
	// MixRecommend/MixClick/MixFeedback weight the per-session op choice
	// (defaults 6/3/1). A session's first op is always a recommend — there
	// is nothing to click on before a slate arrives.
	MixRecommend, MixClick, MixFeedback int
	// Churn > 0 mutates the catalogue in the background: one upsert batch
	// per interval (plus a rotating insert/delete every few batches),
	// exercising epoch swaps under live traffic. Requires the server to
	// run with a mutable catalogue.
	Churn time.Duration
	// ChurnBatch is the items per churn batch (default 8); ChurnItems the
	// stable-ID range [0, ChurnItems) repriced (default 1000); Features
	// the catalogue's per-item value count (required when Churn > 0).
	ChurnBatch, ChurnItems, Features int
	// Seed drives the zipf draws and the churn value stream (default 1).
	// Per-session decision RNGs are seeded from the session ID itself.
	Seed int64
}

func (cfg *Config) withDefaults() error {
	if cfg.BaseURL == "" {
		return fmt.Errorf("loadgen: BaseURL is required")
	}
	if cfg.Sessions == 0 {
		cfg.Sessions = 100000
	}
	if cfg.Sessions < 1 {
		return fmt.Errorf("loadgen: Sessions must be positive, got %d", cfg.Sessions)
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.07
	}
	if cfg.ZipfS <= 1 {
		return fmt.Errorf("loadgen: ZipfS must be > 1, got %g", cfg.ZipfS)
	}
	if cfg.ZipfV == 0 {
		cfg.ZipfV = 1
	}
	if cfg.ZipfV < 1 {
		return fmt.Errorf("loadgen: ZipfV must be >= 1, got %g", cfg.ZipfV)
	}
	if cfg.Concurrency == 0 {
		cfg.Concurrency = 8
	}
	if cfg.Concurrency < 1 {
		return fmt.Errorf("loadgen: Concurrency must be positive, got %d", cfg.Concurrency)
	}
	if cfg.Rate < 0 {
		return fmt.Errorf("loadgen: Rate must be non-negative, got %g", cfg.Rate)
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 4 * cfg.Concurrency
	}
	if cfg.Duration == 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.MixRecommend == 0 && cfg.MixClick == 0 && cfg.MixFeedback == 0 {
		cfg.MixRecommend, cfg.MixClick, cfg.MixFeedback = 6, 3, 1
	}
	if cfg.MixRecommend < 0 || cfg.MixClick < 0 || cfg.MixFeedback < 0 ||
		cfg.MixRecommend+cfg.MixClick+cfg.MixFeedback == 0 {
		return fmt.Errorf("loadgen: bad mix %d:%d:%d", cfg.MixRecommend, cfg.MixClick, cfg.MixFeedback)
	}
	if cfg.Churn > 0 {
		if cfg.Features <= 0 {
			return fmt.Errorf("loadgen: Features is required for catalogue churn")
		}
		if cfg.ChurnBatch == 0 {
			cfg.ChurnBatch = 8
		}
		if cfg.ChurnItems == 0 {
			cfg.ChurnItems = 1000
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{
			Timeout: 10 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Concurrency * 4,
				MaxIdleConnsPerHost: cfg.Concurrency * 4,
				IdleConnTimeout:     30 * time.Second,
			},
		}
	}
	return nil
}

// routeStats is the client-side recorder for one logical route.
type routeStats struct {
	count  atomic.Int64
	errors atomic.Int64 // transport failures: no HTTP status at all
	non2xx atomic.Int64
	hist   hdrhist.Histogram

	sampleMu sync.Mutex
	samples  []string // first few failure bodies, for the report
}

const maxErrorSamples = 5

func (rs *routeStats) sampleFailure(msg string) {
	rs.sampleMu.Lock()
	if len(rs.samples) < maxErrorSamples {
		rs.samples = append(rs.samples, msg)
	}
	rs.sampleMu.Unlock()
}

// RouteReport is one route's client-side view in the final Report.
type RouteReport struct {
	Count   int64            `json:"count"`
	Errors  int64            `json:"errors"`
	Non2xx  int64            `json:"non_2xx"`
	Latency hdrhist.Snapshot `json:"latency"`
	// FailureSamples holds the first few failure statuses/bodies seen on
	// this route — enough to diagnose a red run from its report alone.
	FailureSamples []string `json:"failure_samples,omitempty"`
}

// Report is the outcome of one load run — the record cmd/benchjson folds
// into BENCH_serve.json.
type Report struct {
	// Name labels the run (e.g. "static", "mutating").
	Name string `json:"name"`
	// Mode is "closed" or "open".
	Mode string `json:"mode"`
	// Sessions/ZipfS echo the population shape; Concurrency or Rate the
	// load shape.
	Sessions    int     `json:"sessions"`
	ZipfS       float64 `json:"zipf_s"`
	Concurrency int     `json:"concurrency"`
	Rate        float64 `json:"rate,omitempty"`
	Seed        int64   `json:"seed"`

	DurationSec   float64 `json:"duration_sec"`
	Total         int64   `json:"total"`
	Errors        int64   `json:"errors"`
	Non2xx        int64   `json:"non_2xx"`
	Shed          int64   `json:"shed,omitempty"`
	ThroughputRPS float64 `json:"throughput_rps"`

	// Routes maps the logical route names (recommend, click, feedback,
	// sessions.delete, catalog.upsert, catalog.delete) to their
	// client-side stats.
	Routes map[string]RouteReport `json:"routes"`
	// All aggregates every route into one distribution.
	All RouteReport `json:"all"`
	// ChurnBatches counts catalogue mutation batches sent (mutating runs).
	ChurnBatches int64 `json:"churn_batches,omitempty"`
	// Shards is the backend count when the target was a shard gateway
	// (recorded by cmd/loadgen's -shards mode; 0 = single process).
	Shards int `json:"shards,omitempty"`
	// SettlePolls counts the post-run GET /catalog polls a churn run made
	// waiting for the catalogue to settle (see settle below); they run
	// after the measured window and are excluded from Total and the
	// latency histograms. SettleFailed is set when the target never
	// settled within the timeout — accounting read from /healthz after a
	// failed settle may still be racing epoch builds.
	SettlePolls  int64 `json:"settle_polls,omitempty"`
	SettleFailed bool  `json:"settle_failed,omitempty"`
}

// runState is the shared state of one Run.
type runState struct {
	cfg    Config
	ids    []string     // session index → session ID
	states []*sessState // session index → per-session traffic state
	routes map[string]*routeStats
	shed   atomic.Int64
	churnN atomic.Int64
}

// sessState is one simulated session's client-side memory: its decision
// RNG (seeded from the session ID, so runs replay) and the last slate it
// saw, which clicks and feedback react to. TryLock-guarded: two workers
// never interleave requests for the same session, mirroring one real
// user's sequential requests — and keeping click payloads consistent
// with the engine's feedback epoch.
//
// Sessions are episodic, like the elicitation loops of internal/simulate
// (§5.6): a session runs a bounded burst of ops, then logs out (DELETE
// /sessions/{id}) and starts over fresh next time the zipf curve draws
// it. Real elicitation converges in tens of rounds; without the bound, a
// zipf-hot session accumulates unboundedly many preference constraints
// and eventually drives the weight sampler infeasible — a traffic shape
// no real deployment produces.
type sessState struct {
	mu      sync.Mutex
	rng     *rand.Rand
	rec     [][]int   // recommended packages from the last slate, canonical
	scores  []float64 // their engine-reported scores, parallel to rec
	all     [][]int   // recommended + random packages (the click's "shown")
	opsLeft int       // ops remaining before this episode logs out
	// prefs is the episode's preference memory: directed edges
	// winner→losers over package signatures, a superset of what the
	// server's graph recorded (the server silently skips cycle-creating
	// click sub-edges; this memory records them all, which only makes the
	// client more conservative). Feedback pairs that would close a cycle
	// here are skipped client-side — scores drift as the pool learns, so
	// a later slate can rank an old pair the other way round, and a
	// consistent user does not contradict their own earlier answers.
	prefs map[string][]string
}

// wire forms, mirrored from internal/server (kept local so loadgen can
// drive any serve-compatible endpoint without importing the server).
type slateJSON struct {
	Recommended []struct {
		Items []int   `json:"items"`
		Score float64 `json:"score"`
	} `json:"recommended"`
	Random []struct {
		Items []int `json:"items"`
	} `json:"random"`
}

type clickJSON struct {
	Chosen []int   `json:"chosen"`
	Shown  [][]int `json:"shown"`
}

type feedbackJSON struct {
	Winner []int `json:"winner"`
	Loser  []int `json:"loser"`
}

type churnItemJSON struct {
	ID     int       `json:"id"`
	Name   string    `json:"name,omitempty"`
	Values []float64 `json:"values"`
}

// Run executes one load run and returns its report. It returns an error
// only for invalid configuration or a dead target (fails the pre-flight
// health check); request-level failures are counted, not fatal.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	// Pre-flight: a dead target means a misconfigured run, not a latency
	// distribution of connection errors.
	resp, err := cfg.Client.Get(cfg.BaseURL + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("loadgen: target %s unreachable: %w", cfg.BaseURL, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: target %s health check = %d", cfg.BaseURL, resp.StatusCode)
	}

	st := &runState{
		cfg:    cfg,
		ids:    make([]string, cfg.Sessions),
		states: make([]*sessState, cfg.Sessions),
		routes: make(map[string]*routeStats),
	}
	for _, r := range []string{"recommend", "click", "feedback", "sessions.delete", "catalog.upsert", "catalog.delete"} {
		st.routes[r] = &routeStats{}
	}
	for i := range st.ids {
		st.ids[i] = fmt.Sprintf("s%06d", i)
		st.states[i] = &sessState{}
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	var wg sync.WaitGroup
	if cfg.Churn > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.churnLoop(ctx)
		}()
	}

	start := time.Now()
	if cfg.Rate > 0 {
		st.openLoop(ctx)
	} else {
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				st.closedLoop(ctx, worker)
			}(w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Name:        "run",
		Mode:        "closed",
		Sessions:    cfg.Sessions,
		ZipfS:       cfg.ZipfS,
		Concurrency: cfg.Concurrency,
		Rate:        cfg.Rate,
		Seed:        cfg.Seed,
		DurationSec: elapsed.Seconds(),
		Shed:        st.shed.Load(),
		Routes:      make(map[string]RouteReport, len(st.routes)),
	}
	if cfg.Rate > 0 {
		rep.Mode = "open"
	}
	var all hdrhist.Histogram
	for name, rs := range st.routes {
		all.Merge(&rs.hist)
		rr := RouteReport{
			Count:          rs.count.Load(),
			Errors:         rs.errors.Load(),
			Non2xx:         rs.non2xx.Load(),
			Latency:        rs.hist.Snap(),
			FailureSamples: rs.samples,
		}
		rep.Routes[name] = rr
		rep.Total += rr.Count
		rep.Errors += rr.Errors
		rep.Non2xx += rr.Non2xx
	}
	rep.All = RouteReport{Count: rep.Total, Errors: rep.Errors, Non2xx: rep.Non2xx, Latency: all.Snap()}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.Total) / elapsed.Seconds()
	}
	rep.ChurnBatches = st.churnN.Load()
	if cfg.Churn > 0 {
		// A churn run is only done when its mutations are built: the run's
		// context expired mid-epoch-build, so without this wait a final
		// /healthz scrape (or a cross-shard convergence check) races the
		// background rebuilder. This settles both single-process targets
		// (pending drains) and gateways (every shard converged) — the
		// HTTP-target path gets the same quiesce the self-hosted path
		// always had.
		rep.SettlePolls, rep.SettleFailed = st.settle()
	}
	return rep, nil
}

// settleTimeout bounds how long a churn run waits for the target's
// catalogue to quiesce after traffic stops.
const settleTimeout = 30 * time.Second

// settle polls GET /catalog until the target reports no pending
// mutations and (for gateways, which add the field) cross-shard
// convergence. It runs outside the measured window on purpose: polls are
// counted separately and never reach the latency histograms.
func (st *runState) settle() (polls int64, failed bool) {
	deadline := time.Now().Add(settleTimeout)
	for time.Now().Before(deadline) {
		var status struct {
			Pending   bool  `json:"pending"`
			Converged *bool `json:"converged"`
		}
		resp, err := st.cfg.Client.Get(st.cfg.BaseURL + "/catalog")
		if err == nil {
			polls++
			derr := json.NewDecoder(resp.Body).Decode(&status)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if derr == nil && resp.StatusCode == http.StatusOK &&
				!status.Pending && (status.Converged == nil || *status.Converged) {
				return polls, false
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return polls, true
}

// closedLoop is one worker: draw a session from the zipf curve, run one
// of its ops, repeat. A session another worker is mid-request on is
// skipped and redrawn — a real user does not race themselves.
func (st *runState) closedLoop(ctx context.Context, worker int) {
	rng := rand.New(rand.NewSource(st.cfg.Seed + int64(worker)*7919))
	zipf := rand.NewZipf(rng, st.cfg.ZipfS, st.cfg.ZipfV, uint64(st.cfg.Sessions-1))
	for ctx.Err() == nil {
		idx := int(zipf.Uint64())
		s := st.states[idx]
		if !s.mu.TryLock() {
			continue
		}
		st.sessionOp(ctx, idx, s)
		s.mu.Unlock()
	}
}

// openLoop starts ops on a fixed schedule regardless of completions.
func (st *runState) openLoop(ctx context.Context) {
	rng := rand.New(rand.NewSource(st.cfg.Seed))
	zipf := rand.NewZipf(rng, st.cfg.ZipfS, st.cfg.ZipfV, uint64(st.cfg.Sessions-1))
	interval := time.Duration(float64(time.Second) / st.cfg.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	sem := make(chan struct{}, st.cfg.MaxInFlight)
	var wg sync.WaitGroup
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-tick.C:
		}
		// One arrival. Find an idle session (bounded redraws: a hot,
		// already-busy session must not stall the schedule).
		var s *sessState
		idx := -1
		for tries := 0; tries < 8; tries++ {
			i := int(zipf.Uint64())
			if st.states[i].mu.TryLock() {
				idx, s = i, st.states[i]
				break
			}
		}
		if s == nil {
			st.shed.Add(1)
			continue
		}
		select {
		case sem <- struct{}{}:
		default:
			s.mu.Unlock()
			st.shed.Add(1) // at the in-flight cap: arrival shed, not queued
			continue
		}
		wg.Add(1)
		go func(idx int, s *sessState) {
			defer wg.Done()
			st.sessionOp(ctx, idx, s)
			s.mu.Unlock()
			<-sem
		}(idx, s)
	}
}

// Episode lengths, drawn per episode from the session's RNG: the 8–20
// range matches the convergence behavior internal/simulate observes
// (§5.6 sessions stabilize within tens of rounds).
const (
	episodeMinOps = 8
	episodeMaxOps = 20
)

// sessionOp runs one operation for session idx, which the caller holds
// locked: the first op of an episode is a recommend (nothing to react to
// before a slate); afterwards the mix weights decide. When the episode's
// op budget runs out the session logs out — DELETE, issued in the same
// lock-hold as the final op, while the session is still the manager's
// most recently used and cannot have been evicted underneath us.
func (st *runState) sessionOp(ctx context.Context, idx int, s *sessState) {
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(session.SeedFor(st.ids[idx])))
	}
	if s.opsLeft <= 0 {
		s.opsLeft = episodeMinOps + s.rng.Intn(episodeMaxOps-episodeMinOps+1)
	}
	op := "recommend"
	if s.all != nil {
		total := st.cfg.MixRecommend + st.cfg.MixClick + st.cfg.MixFeedback
		switch r := s.rng.Intn(total); {
		case r < st.cfg.MixRecommend:
			op = "recommend"
		case r < st.cfg.MixRecommend+st.cfg.MixClick:
			op = "click"
		default:
			op = "feedback"
		}
		// Reacting to a slate needs packages to react to.
		if len(s.all) < 2 || len(s.rec) == 0 {
			op = "recommend"
		}
	}
	id := st.ids[idx]
	switch op {
	case "recommend":
		st.recommendInto(ctx, id, s)
	case "click":
		// The user clicks the highest-scored recommended package — a user
		// whose taste agrees with what the engine has learned so far, like
		// internal/simulate's rational user once elicitation converges.
		// Feedback consistent with the engine's own ranking keeps the
		// constraint set satisfiable for the weight sampler; an arbitrary
		// external order would not be realizable by any weight vector.
		best := 0
		for i := 1; i < len(s.rec); i++ {
			if s.scores[i] > s.scores[best] {
				best = i
			}
		}
		if st.do(ctx, "click", http.MethodPost, "/sessions/"+id+"/click",
			clickJSON{Chosen: s.rec[best], Shown: s.all}, nil) {
			for _, p := range s.all {
				if !pkgEqual(p, s.rec[best]) {
					s.recordPref(s.rec[best], p)
				}
			}
		}
	case "feedback":
		// An explicit pairwise preference between two recommended packages
		// (only they carry true scores), directed by score. The pair must
		// differ as packages (a self-preference is rejected), differ in
		// score (a tie gives the user no basis to prefer either), and not
		// contradict this episode's earlier answers (see sessState.prefs).
		i := s.rng.Intn(len(s.rec))
		w, l := -1, -1
		for off, n := s.rng.Intn(len(s.rec)), len(s.rec); w < 0 && n > 0; n-- {
			k := (off + n) % len(s.rec)
			if k == i || pkgEqual(s.rec[i], s.rec[k]) || s.scores[i] == s.scores[k] {
				continue
			}
			cw, cl := i, k
			if s.scores[cw] < s.scores[cl] {
				cw, cl = cl, cw
			}
			if !s.implies(s.rec[cl], s.rec[cw]) {
				w, l = cw, cl
			}
		}
		if w < 0 {
			// No consistent comparable pair here; fetch a fresh slate.
			st.recommendInto(ctx, id, s)
			break
		}
		if st.do(ctx, "feedback", http.MethodPost, "/sessions/"+id+"/feedback",
			feedbackJSON{Winner: s.rec[w], Loser: s.rec[l]}, nil) {
			s.recordPref(s.rec[w], s.rec[l])
		}
	}
	s.opsLeft--
	if s.opsLeft <= 0 {
		// Episode over: the user logs out and their learned state goes.
		st.do(ctx, "sessions.delete", http.MethodDelete, "/sessions/"+id, nil, nil)
		s.rec, s.scores, s.all, s.prefs = nil, nil, nil, nil
	}
}

// recordPref notes winner ≻ loser in the episode's preference memory.
func (s *sessState) recordPref(winner, loser []int) {
	if s.prefs == nil {
		s.prefs = make(map[string][]string)
	}
	w, l := sig(winner), sig(loser)
	for _, have := range s.prefs[w] {
		if have == l {
			return
		}
	}
	s.prefs[w] = append(s.prefs[w], l)
}

// implies reports whether the episode's recorded preferences already
// place a above b (directly or transitively) — in which case posting
// b ≻ a would contradict them. The graphs are tiny (an episode is at
// most ~20 ops), so a plain DFS is plenty.
func (s *sessState) implies(a, b []int) bool {
	target := sig(b)
	seen := map[string]bool{}
	stack := []string{sig(a)}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == target {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		stack = append(stack, s.prefs[cur]...)
	}
	return false
}

// sig is a canonical package key for the preference memory.
func sig(items []int) string {
	var b strings.Builder
	for i, id := range items {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(id))
	}
	return b.String()
}

// recommendInto fetches a slate outside the op-mix bookkeeping (used
// when a reaction op finds nothing to react to).
func (st *runState) recommendInto(ctx context.Context, id string, s *sessState) {
	var slate slateJSON
	if !st.do(ctx, "recommend", http.MethodGet, "/sessions/"+id+"/recommend", nil, &slate) {
		return
	}
	rec := make([][]int, 0, len(slate.Recommended))
	scores := make([]float64, 0, len(slate.Recommended))
	all := make([][]int, 0, len(slate.Recommended)+len(slate.Random))
	for _, p := range slate.Recommended {
		c := canonical(p.Items)
		rec = append(rec, c)
		scores = append(scores, p.Score)
		all = append(all, c)
	}
	for _, p := range slate.Random {
		all = append(all, canonical(p.Items))
	}
	if len(all) > 0 {
		s.rec, s.scores, s.all = rec, scores, all
	}
}

// pkgLess is a fixed total order on canonical item lists, used only to
// compare packages for identity-adjacent purposes (pkgEqual) and to keep
// comparisons deterministic.
func pkgLess(a, b []int) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// pkgEqual reports whether two packages are the same item list.
func pkgEqual(a, b []int) bool {
	return !pkgLess(a, b) && !pkgLess(b, a)
}

// canonical sorts a wire item list into the representation pkgLess
// orders: the same package must always compare equal to itself, and the
// wire order of stable IDs is not guaranteed. The server re-canonicalizes
// payloads itself, so posting sorted lists changes nothing semantically.
func canonical(items []int) []int {
	cp := append([]int(nil), items...)
	sort.Ints(cp)
	return cp
}

// churnLoop mutates the catalogue while traffic runs: a reprice batch
// per interval, plus a rotating insert/delete pair every fourth batch so
// epochs also see ID-set changes, not just value changes.
func (st *runState) churnLoop(ctx context.Context) {
	rng := rand.New(rand.NewSource(st.cfg.Seed + 104729))
	tick := time.NewTicker(st.cfg.Churn)
	defer tick.Stop()
	const extraSlots = 16
	inserted := make([]bool, extraSlots)
	batch := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		items := make([]churnItemJSON, 0, st.cfg.ChurnBatch+1)
		for i := 0; i < st.cfg.ChurnBatch; i++ {
			vals := make([]float64, st.cfg.Features)
			for f := range vals {
				vals[f] = rng.Float64()
			}
			items = append(items, churnItemJSON{ID: rng.Intn(st.cfg.ChurnItems), Values: vals})
		}
		if batch%4 == 3 {
			// Retire the extra item inserted two batches ago, so every
			// fourth batch shrinks the ID set and the one before grew it.
			slot := (batch - 2) % extraSlots
			if inserted[slot] {
				st.do(ctx, "catalog.delete", http.MethodDelete,
					fmt.Sprintf("/catalog/items/%d", st.cfg.ChurnItems+slot), nil, nil)
				inserted[slot] = false
			}
		}
		if batch%4 == 1 {
			slot := batch % extraSlots
			vals := make([]float64, st.cfg.Features)
			for f := range vals {
				vals[f] = rng.Float64()
			}
			items = append(items, churnItemJSON{
				ID:     st.cfg.ChurnItems + slot,
				Name:   fmt.Sprintf("churn-%d", batch),
				Values: vals,
			})
			inserted[slot] = true
		}
		st.do(ctx, "catalog.upsert", http.MethodPost, "/catalog/items",
			map[string]any{"items": items}, nil)
		st.churnN.Add(1)
		batch++
	}
}

// do issues one request, records it under the route, and decodes a 2xx
// response into out (when non-nil). Reports whether the request got a
// 2xx. A context canceled mid-request (run ending) is not counted at
// all: the run's accounting only covers requests it let finish.
func (st *runState) do(ctx context.Context, route, method, path string, body, out any) bool {
	rs := st.routes[route]
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			rs.count.Add(1)
			rs.errors.Add(1)
			return false
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, st.cfg.BaseURL+path, rd)
	if err != nil {
		rs.count.Add(1)
		rs.errors.Add(1)
		return false
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := st.cfg.Client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return false // run ended mid-request; not the server's fault
		}
		rs.count.Add(1)
		rs.errors.Add(1)
		rs.sampleFailure(err.Error())
		return false
	}
	ok := resp.StatusCode >= 200 && resp.StatusCode < 300
	decoded := true
	if ok && out != nil {
		decoded = json.NewDecoder(resp.Body).Decode(out) == nil
	}
	if !ok {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		rs.sampleFailure(fmt.Sprintf("%s %s -> %d: %s", method, path, resp.StatusCode, b))
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rs.count.Add(1)
	rs.hist.Record(time.Since(start))
	if !ok {
		rs.non2xx.Add(1)
	}
	return ok && decoded
}
