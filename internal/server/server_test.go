package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"toppkg/internal/core"
	"toppkg/internal/dataset"
	"toppkg/internal/feature"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	rng := rand.New(rand.NewSource(300))
	eng, err := core.New(core.Config{
		Items:          dataset.UNI(40, 2, rng),
		Profile:        feature.SimpleProfile(feature.AggSum, feature.AggAvg),
		MaxPackageSize: 3,
		K:              3,
		RandomCount:    2,
		SampleCount:    80,
		Seed:           4,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response of %s: %v", url, err)
		}
	}
	return resp
}

func TestRecommendEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var slate SlateJSON
	resp := getJSON(t, ts.URL+"/recommend", &slate)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(slate.Recommended) != 3 || len(slate.Random) != 2 {
		t.Fatalf("slate shape: %d recommended, %d random", len(slate.Recommended), len(slate.Random))
	}
	for _, p := range slate.Recommended {
		if len(p.Items) == 0 || len(p.Names) != len(p.Items) {
			t.Errorf("bad package payload: %+v", p)
		}
	}
}

func TestClickFlow(t *testing.T) {
	_, ts := testServer(t)
	var slate SlateJSON
	getJSON(t, ts.URL+"/recommend", &slate)

	shown := make([][]int, 0, len(slate.Recommended)+len(slate.Random))
	for _, p := range slate.Recommended {
		shown = append(shown, p.Items)
	}
	for _, p := range slate.Random {
		shown = append(shown, p.Items)
	}
	var st core.Stats
	resp := postJSON(t, ts.URL+"/click", ClickRequest{Chosen: shown[1], Shown: shown}, &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("click status %d", resp.StatusCode)
	}
	if st.Feedback == 0 {
		t.Error("click produced no feedback")
	}
	// The next recommendation must still work.
	resp = getJSON(t, ts.URL+"/recommend", &slate)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-click recommend status %d", resp.StatusCode)
	}
}

func TestFeedbackEndpointAndConflict(t *testing.T) {
	_, ts := testServer(t)
	var st core.Stats
	resp := postJSON(t, ts.URL+"/feedback", FeedbackRequest{Winner: []int{0, 1}, Loser: []int{2}}, &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback status %d", resp.StatusCode)
	}
	if st.Feedback != 1 {
		t.Errorf("Feedback = %d", st.Feedback)
	}
	// The exact reverse preference contradicts: 409.
	resp = postJSON(t, ts.URL+"/feedback", FeedbackRequest{Winner: []int{2}, Loser: []int{0, 1}}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("contradiction status %d, want 409", resp.StatusCode)
	}
}

func TestClickValidation(t *testing.T) {
	_, ts := testServer(t)
	resp := postJSON(t, ts.URL+"/click", ClickRequest{}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty click status %d", resp.StatusCode)
	}
	r2, err := http.Post(ts.URL+"/click", "application/json", bytes.NewReader([]byte("{bad")))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage click status %d", r2.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var st core.Stats
	resp := getJSON(t, ts.URL+"/stats", &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
}

func TestSnapshotRoundTripOverHTTP(t *testing.T) {
	_, ts := testServer(t)
	postJSON(t, ts.URL+"/feedback", FeedbackRequest{Winner: []int{0}, Loser: []int{1}}, nil)
	getJSON(t, ts.URL+"/recommend", nil) // force sampling

	resp, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var snap core.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(snap.Preferences) != 1 || len(snap.Samples) == 0 {
		t.Fatalf("snapshot content: %d prefs, %d samples", len(snap.Preferences), len(snap.Samples))
	}

	// Restore into a fresh server.
	_, ts2 := testServer(t)
	r2 := postJSON(t, ts2.URL+"/snapshot", snap, nil)
	if r2.StatusCode != http.StatusNoContent {
		t.Fatalf("restore status %d", r2.StatusCode)
	}
	var st core.Stats
	getJSON(t, ts2.URL+"/stats", &st)
	if st.Feedback != 1 {
		t.Errorf("restored Feedback = %d", st.Feedback)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/recommend", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /recommend status %d, want 405", resp.StatusCode)
	}
}

// TestConcurrentRequests exercises the mutex: hammer the server from
// several goroutines; run with -race.
func TestConcurrentRequests(t *testing.T) {
	_, ts := testServer(t)
	getJSON(t, ts.URL+"/recommend", nil)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			var err error
			defer func() { done <- err }()
			for j := 0; j < 5; j++ {
				switch (i + j) % 3 {
				case 0:
					_, err = http.Get(ts.URL + "/recommend")
				case 1:
					_, err = http.Get(ts.URL + "/stats")
				default:
					b, _ := json.Marshal(FeedbackRequest{
						Winner: []int{i % 10, 10 + j},
						Loser:  []int{20 + (i+j)%10},
					})
					_, err = http.Post(ts.URL+"/feedback", "application/json", bytes.NewReader(b))
				}
				if err != nil {
					err = fmt.Errorf("worker %d op %d: %w", i, j, err)
					return
				}
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
