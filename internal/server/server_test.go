package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"toppkg/internal/core"
	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/search"
	"toppkg/internal/session"
)

func testShared(t *testing.T) *core.Shared {
	t.Helper()
	rng := rand.New(rand.NewSource(300))
	sh, err := core.NewShared(core.Config{
		Items:          dataset.UNI(40, 2, rng),
		Profile:        feature.SimpleProfile(feature.AggSum, feature.AggAvg),
		MaxPackageSize: 3,
		K:              3,
		RandomCount:    2,
		SampleCount:    80,
		Seed:           4,
		Search:         search.Options{MaxQueue: 32, MaxAccessed: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func testServerWith(t *testing.T, capacity int, store session.Store, opts Options) (*session.Manager, *httptest.Server) {
	t.Helper()
	mgr, err := session.NewManager(session.Config{Shared: testShared(t), Capacity: capacity, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(mgr, opts))
	t.Cleanup(ts.Close)
	return mgr, ts
}

func testServer(t *testing.T) (*session.Manager, *httptest.Server) {
	return testServerWith(t, 64, session.NewMemStore(), Options{})
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response of %s: %v", url, err)
		}
	}
	return resp
}

func TestRecommendEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var slate SlateJSON
	resp := getJSON(t, ts.URL+"/sessions/alice/recommend", &slate)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(slate.Recommended) != 3 || len(slate.Random) != 2 {
		t.Fatalf("slate shape: %d recommended, %d random", len(slate.Recommended), len(slate.Random))
	}
	for _, p := range slate.Recommended {
		if len(p.Items) == 0 || len(p.Names) != len(p.Items) {
			t.Errorf("bad package payload: %+v", p)
		}
	}
}

func TestLegacyPathsUseHeaderSession(t *testing.T) {
	_, ts := testServer(t)
	req, _ := http.NewRequest("POST", ts.URL+"/feedback",
		strings.NewReader(`{"winner":[0],"loser":[1]}`))
	req.Header.Set("X-Session-ID", "headed")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("header feedback status %d", resp.StatusCode)
	}
	// The feedback landed in "headed", not in "default".
	var st core.Stats
	getJSON(t, ts.URL+"/sessions/headed/stats", &st)
	if st.Feedback != 1 {
		t.Errorf("headed Feedback = %d, want 1", st.Feedback)
	}
	getJSON(t, ts.URL+"/sessions/default/stats", &st)
	if st.Feedback != 0 {
		t.Errorf("default Feedback = %d, want 0", st.Feedback)
	}
	// No header falls back to the default session.
	resp = getJSON(t, ts.URL+"/stats", &st)
	if resp.StatusCode != http.StatusOK || st.Feedback != 0 {
		t.Errorf("legacy /stats: status %d, Feedback %d", resp.StatusCode, st.Feedback)
	}
}

func TestClickFlow(t *testing.T) {
	_, ts := testServer(t)
	var slate SlateJSON
	getJSON(t, ts.URL+"/sessions/alice/recommend", &slate)

	shown := make([][]int, 0, len(slate.Recommended)+len(slate.Random))
	for _, p := range slate.Recommended {
		shown = append(shown, p.Items)
	}
	for _, p := range slate.Random {
		shown = append(shown, p.Items)
	}
	var st core.Stats
	resp := postJSON(t, ts.URL+"/sessions/alice/click", ClickRequest{Chosen: shown[1], Shown: shown}, &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("click status %d", resp.StatusCode)
	}
	if st.Feedback == 0 {
		t.Error("click produced no feedback")
	}
	resp = getJSON(t, ts.URL+"/sessions/alice/recommend", &slate)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-click recommend status %d", resp.StatusCode)
	}
}

func TestFeedbackConflict(t *testing.T) {
	_, ts := testServer(t)
	resp := postJSON(t, ts.URL+"/sessions/a/feedback", FeedbackRequest{Winner: []int{0, 1}, Loser: []int{2}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback status %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/sessions/a/feedback", FeedbackRequest{Winner: []int{2}, Loser: []int{0, 1}}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("contradiction status %d, want 409", resp.StatusCode)
	}
}

// errorShape decodes the error body and requires the {"error": "..."}
// contract.
func errorShape(t *testing.T, resp *http.Response) string {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("error Content-Type = %q, want application/json", ct)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	if body["error"] == "" {
		t.Errorf("error body missing 'error' field: %v", body)
	}
	return body["error"]
}

// TestErrorPaths table-drives the HTTP error surface: unknown sessions,
// malformed bodies, invalid IDs, wrong methods, oversized payloads. Every
// JSON-producing error must carry the {"error": ...} shape.
func TestErrorPaths(t *testing.T) {
	bigShown := make([][]int, 0, 40000)
	for i := 0; i < 40000; i++ {
		bigShown = append(bigShown, []int{i % 40, (i + 1) % 40})
	}
	oversized, err := json.Marshal(ClickRequest{Chosen: []int{0}, Shown: bigShown})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantJSON   bool // JSON error shape expected (mux-level 404/405 are text)
	}{
		{"delete unknown session", "DELETE", "/sessions/ghost", "", http.StatusNotFound, true},
		{"invalid session id", "GET", "/sessions/bad%20id/stats", "", http.StatusBadRequest, true},
		{"dotfile session id", "GET", "/sessions/.hidden/stats", "", http.StatusBadRequest, true},
		{"malformed click JSON", "POST", "/sessions/a/click", "{bad", http.StatusBadRequest, true},
		{"empty click", "POST", "/sessions/a/click", "{}", http.StatusBadRequest, true},
		{"click out-of-range item", "POST", "/sessions/a/click", `{"chosen":[999],"shown":[[1]]}`, http.StatusBadRequest, true},
		{"click empty package", "POST", "/sessions/a/click", `{"chosen":[1],"shown":[[]]}`, http.StatusBadRequest, true},
		{"feedback out-of-range item", "POST", "/sessions/a/feedback", `{"winner":[999],"loser":[1]}`, http.StatusBadRequest, true},
		{"malformed snapshot", "POST", "/sessions/a/snapshot", "not json", http.StatusBadRequest, true},
		{"snapshot wrong version", "POST", "/sessions/a/snapshot", `{"version":99}`, http.StatusBadRequest, true},
		{"oversized click payload", "POST", "/sessions/a/click", string(oversized), http.StatusRequestEntityTooLarge, true},
		{"wrong method recommend", "POST", "/sessions/a/recommend", "{}", http.StatusMethodNotAllowed, false},
		{"wrong method click", "GET", "/sessions/a/click", "", http.StatusMethodNotAllowed, false},
		{"unknown route", "GET", "/nope", "", http.StatusNotFound, false},
	}
	_, ts := testServerWith(t, 64, session.NewMemStore(), Options{MaxBodyBytes: 64 << 10})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want %d (body %.120s)", resp.StatusCode, tc.wantStatus, b)
			}
			if tc.wantJSON {
				errorShape(t, resp)
			}
		})
	}
}

func TestSessionsListAndDelete(t *testing.T) {
	_, ts := testServer(t)
	postJSON(t, ts.URL+"/sessions/alice/feedback", FeedbackRequest{Winner: []int{0}, Loser: []int{1}}, nil)
	getJSON(t, ts.URL+"/sessions/bob/stats", nil)

	var list struct {
		Sessions []session.Info `json:"sessions"`
	}
	resp := getJSON(t, ts.URL+"/sessions", &list)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", resp.StatusCode)
	}
	if len(list.Sessions) != 2 || list.Sessions[0].ID != "alice" || list.Sessions[1].ID != "bob" {
		t.Fatalf("sessions list: %+v", list.Sessions)
	}
	if list.Sessions[0].Feedback != 1 {
		t.Errorf("alice feedback in list = %d", list.Sessions[0].Feedback)
	}

	req, _ := http.NewRequest("DELETE", ts.URL+"/sessions/alice", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}
	getJSON(t, ts.URL+"/sessions", &list)
	for _, s := range list.Sessions {
		if s.ID == "alice" {
			t.Error("alice still listed after delete")
		}
	}
	// Deleted session state is gone: fresh stats.
	var st core.Stats
	getJSON(t, ts.URL+"/sessions/alice/stats", &st)
	if st.Feedback != 0 {
		t.Errorf("deleted alice Feedback = %d", st.Feedback)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	getJSON(t, ts.URL+"/sessions/x/stats", nil)
	var out struct {
		Status   string        `json:"status"`
		Sessions session.Stats `json:"sessions"`
	}
	resp := getJSON(t, ts.URL+"/healthz", &out)
	if resp.StatusCode != http.StatusOK || out.Status != "ok" {
		t.Fatalf("healthz: status %d, %+v", resp.StatusCode, out)
	}
	if out.Sessions.Live != 1 || out.Sessions.Capacity != 64 {
		t.Errorf("healthz counters: %+v", out.Sessions)
	}
}

func TestSnapshotRoundTripOverHTTP(t *testing.T) {
	_, ts := testServer(t)
	getJSON(t, ts.URL+"/sessions/alice/recommend", nil) // force sampling
	postJSON(t, ts.URL+"/sessions/alice/feedback", FeedbackRequest{Winner: []int{0}, Loser: []int{1}}, nil)

	resp, err := http.Get(ts.URL + "/sessions/alice/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var snap core.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(snap.Preferences) != 1 || len(snap.Samples) == 0 {
		t.Fatalf("snapshot content: %d prefs, %d samples", len(snap.Preferences), len(snap.Samples))
	}

	if snap.Version != 2 {
		t.Fatalf("exported snapshot version %d, want 2", snap.Version)
	}

	// Restore into a different session of a fresh server. Same catalogue,
	// so the restore report must show zero dropped state.
	_, ts2 := testServer(t)
	var report RestoreReport
	r2 := postJSON(t, ts2.URL+"/sessions/imported/snapshot", snap, &report)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("restore status %d", r2.StatusCode)
	}
	if report.DroppedItems != 0 || report.DroppedPrefs != 0 || report.Preferences != 1 {
		t.Fatalf("restore report = %+v, want 1 preference and no drops", report)
	}
	var st core.Stats
	getJSON(t, ts2.URL+"/sessions/imported/stats", &st)
	if st.Feedback != 1 {
		t.Errorf("restored Feedback = %d", st.Feedback)
	}
}

// TestConcurrentSessionsOverHTTP drives 16 independent sessions in
// parallel through the HTTP layer — recommend, click, feedback — then
// verifies no cross-session state leakage: every session holds exactly
// the feedback it generated. Run with -race.
func TestConcurrentSessionsOverHTTP(t *testing.T) {
	const sessions = 16
	// Capacity below the session count, with a store: eviction and restore
	// churn under concurrent HTTP load.
	_, ts := testServerWith(t, 8, session.NewMemStore(), Options{})
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	clicked := make([]int, sessions) // feedback each session produced via click
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("user-%d", i)
			base := ts.URL + "/sessions/" + id
			var slate SlateJSON
			resp, err := http.Get(base + "/recommend")
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				errs <- fmt.Errorf("%s recommend: %d %.120s", id, resp.StatusCode, b)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&slate); err != nil {
				resp.Body.Close()
				errs <- err
				return
			}
			resp.Body.Close()
			shown := make([][]int, 0, len(slate.Recommended)+len(slate.Random))
			for _, p := range slate.Recommended {
				shown = append(shown, p.Items)
			}
			for _, p := range slate.Random {
				shown = append(shown, p.Items)
			}
			body, _ := json.Marshal(ClickRequest{Chosen: shown[i%len(shown)], Shown: shown})
			cresp, err := http.Post(base+"/click", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			var st core.Stats
			if err := json.NewDecoder(cresp.Body).Decode(&st); err != nil {
				cresp.Body.Close()
				errs <- err
				return
			}
			cresp.Body.Close()
			if cresp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s click: %d", id, cresp.StatusCode)
				return
			}
			clicked[i] = st.Feedback
			if clicked[i] == 0 {
				errs <- fmt.Errorf("%s click recorded no feedback", id)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Isolation: each session's final feedback equals what its own click
	// produced — nothing leaked in from the other 15 sessions.
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("user-%d", i)
		var st core.Stats
		resp := getJSON(t, ts.URL+"/sessions/"+id+"/stats", &st)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s stats: %d", id, resp.StatusCode)
		}
		if st.Feedback != clicked[i] {
			t.Errorf("%s Feedback = %d, want %d (cross-session leakage?)", id, st.Feedback, clicked[i])
		}
	}
}

// TestConcurrentSameSessionOverHTTP hammers one session from several
// goroutines; the per-session mutex must serialize them. Run with -race.
func TestConcurrentSameSessionOverHTTP(t *testing.T) {
	_, ts := testServer(t)
	getJSON(t, ts.URL+"/sessions/shared/recommend", nil)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			var err error
			defer func() { done <- err }()
			for j := 0; j < 5; j++ {
				switch (i + j) % 3 {
				case 0:
					var resp *http.Response
					resp, err = http.Get(ts.URL + "/sessions/shared/recommend")
					if resp != nil {
						resp.Body.Close()
					}
				case 1:
					var resp *http.Response
					resp, err = http.Get(ts.URL + "/sessions/shared/stats")
					if resp != nil {
						resp.Body.Close()
					}
				default:
					b, _ := json.Marshal(FeedbackRequest{
						Winner: []int{i % 10, 10 + j},
						Loser:  []int{20 + (i+j)%10},
					})
					var resp *http.Response
					resp, err = http.Post(ts.URL+"/sessions/shared/feedback", "application/json", bytes.NewReader(b))
					if resp != nil {
						resp.Body.Close()
					}
				}
				if err != nil {
					err = fmt.Errorf("worker %d op %d: %w", i, j, err)
					return
				}
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotRestoreExceedsClickCap: a snapshot body is allowed to be
// larger than the click/feedback cap — the server must accept what its own
// GET snapshot emits.
func TestSnapshotRestoreExceedsClickCap(t *testing.T) {
	_, ts := testServerWith(t, 8, nil, Options{MaxBodyBytes: 2048})
	getJSON(t, ts.URL+"/sessions/a/recommend", nil) // draw the 80-sample pool
	resp, err := http.Get(ts.URL + "/sessions/a/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) <= 2048 {
		t.Fatalf("precondition: snapshot only %d bytes, grow the pool", len(raw))
	}
	r2, err := http.Post(ts.URL+"/sessions/b/snapshot", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("restore of own snapshot rejected: %d", r2.StatusCode)
	}
}

// TestSlateWireZeroFieldsPresent: a zero score and epoch 0 are real
// values, not absent ones — the previous omitempty tags silently dropped
// both from the wire, making "score 0" indistinguishable from "no score"
// and epoch 0 of a static catalogue from a missing epoch.
func TestSlateWireZeroFieldsPresent(t *testing.T) {
	_, ts := testServer(t) // static catalogue: slates report epoch 0
	resp, err := http.Get(ts.URL + "/sessions/alice/recommend")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend = %d (%v)", resp.StatusCode, err)
	}
	var keys map[string]json.RawMessage
	if err := json.Unmarshal(raw, &keys); err != nil {
		t.Fatal(err)
	}
	ep, ok := keys["epoch"]
	if !ok {
		t.Fatal("slate wire form dropped epoch 0; the field must always be present")
	}
	if string(ep) != "0" {
		t.Fatalf("static slate epoch = %s, want 0", ep)
	}
	var slate SlateJSON
	if err := json.Unmarshal(raw, &slate); err != nil {
		t.Fatal(err)
	}
	if len(slate.Random) == 0 {
		t.Fatal("precondition: no exploration packages on the slate")
	}
	// Every package object — including the zero-scored exploration ones —
	// must carry a score key.
	var shape struct {
		Random []map[string]json.RawMessage `json:"random"`
	}
	if err := json.Unmarshal(raw, &shape); err != nil {
		t.Fatal(err)
	}
	for i, p := range shape.Random {
		if _, ok := p["score"]; !ok {
			t.Fatalf("random package %d dropped its zero score from the wire", i)
		}
	}
	// And the values round-trip: decode → re-encode → decode preserves
	// zero scores and the zero epoch bit-for-bit.
	re, err := json.Marshal(slate)
	if err != nil {
		t.Fatal(err)
	}
	var back SlateJSON
	if err := json.Unmarshal(re, &back); err != nil {
		t.Fatal(err)
	}
	if back.Epoch != slate.Epoch || len(back.Random) != len(slate.Random) {
		t.Fatalf("slate did not round-trip: %+v vs %+v", back, slate)
	}
	for i := range slate.Random {
		if back.Random[i].Score != slate.Random[i].Score {
			t.Fatalf("random package %d score changed across round-trip", i)
		}
	}
}
