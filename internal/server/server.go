// Package server exposes the package recommender over HTTP/JSON — the
// deployment surface the paper envisions (§1: recommendations shown at
// login, clicks logged as implicit feedback, no explicit elicitation
// queries). Many user sessions are served concurrently by one process: a
// session.Manager keys independent engines by session ID, so requests for
// different sessions proceed in parallel while one session's requests are
// serialized.
//
// Session-scoped endpoints (the session ID comes from the path, or from
// the X-Session-ID header on the legacy un-prefixed paths, defaulting to
// "default"):
//
//	GET    /sessions/{id}/recommend  → {"recommended": [...], "random": [...]}
//	POST   /sessions/{id}/click      ← {"chosen": [ids], "shown": [[ids], ...]}
//	POST   /sessions/{id}/feedback   ← {"winner": [ids], "loser": [ids]}
//	GET    /sessions/{id}/stats      → engine counters
//	GET    /sessions/{id}/snapshot   → persisted session state (JSON, wire v2:
//	                                   stable item IDs + capture epoch)
//	POST   /sessions/{id}/snapshot   ← restores a previously saved session
//	                                   (v1 or v2); responds with a restore
//	                                   report {"epoch", "preferences",
//	                                   "dropped_items", "dropped_preferences"}
//	                                   — nonzero drops mean items vanished
//	                                   from the catalogue since export
//
// Management endpoints:
//
//	GET    /sessions                 → {"sessions": [{"id", "last_used", "feedback"}]}
//	DELETE /sessions/{id}            → drops the session and its snapshot
//	GET    /healthz                  → {"status": "ok", "catalog": {...}, "sessions": {...},
//	                                    "search_cache": {...}, "http": {route: {requests,
//	                                    status_2xx/4xx/5xx, latency p50/p95/p99}}}
//
// Catalogue admin endpoints (Options.Catalog; the mutating ones return 409
// when the process serves a static catalogue):
//
//	GET    /catalog                  → {"epoch", "items", ...} catalogue stats
//	POST   /catalog/items            ← {"items": [{"id", "name", "values"}]} upsert batch
//	DELETE /catalog/items/{id}       → removes the item with that stable ID
//	POST   /admin/drain              ← shard.DrainRequest; flushes sessions this
//	                                   shard no longer owns to the session store
//	                                   (gateway rebalancing) → {"flushed": n}
//
// Mutations are acknowledged with 202 Accepted: the batch is committed and
// a fresh epoch is built and swapped in by the background rebuilder.
// Append ?wait=1 to block until the returned stats reflect an epoch
// covering the mutation — an honored wait answers 200 OK, because the
// operation is complete by then. Item IDs in the admin API are stable catalogue
// keys; the session API's package item IDs are dense positions in the
// epoch a slate was computed against.
//
// Every error is JSON: {"error": "..."} with a matching status code.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"toppkg/internal/catalog"
	"toppkg/internal/core"
	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
	"toppkg/internal/prefgraph"
	"toppkg/internal/session"
	"toppkg/internal/shard"
)

// DefaultMaxBodyBytes caps request bodies when Options.MaxBodyBytes is 0.
const DefaultMaxBodyBytes = 1 << 20

// DefaultSessionID serves legacy header-less requests on the un-prefixed
// paths, preserving the original single-session curl workflow.
const DefaultSessionID = "default"

// SnapshotBodyFactor multiplies MaxBodyBytes for POST snapshot requests:
// a snapshot carries the whole sample pool (SampleCount × dims floats), so
// the server must accept bodies at least as large as the ones its own
// GET snapshot emits.
const SnapshotBodyFactor = 64

// minSnapshotBodyBytes floors the snapshot cap so that an aggressively
// small -max-body cannot shrink it below what any realistic engine
// configuration's own snapshot needs.
const minSnapshotBodyBytes = 16 << 20

// Options tunes the HTTP layer.
type Options struct {
	// MaxBodyBytes bounds click/feedback request bodies (default
	// DefaultMaxBodyBytes); snapshot restores get SnapshotBodyFactor times
	// as much. Oversized payloads get 413.
	MaxBodyBytes int64
	// Catalog enables the mutating catalogue admin endpoints. Nil means
	// the catalogue is static: GET /catalog still reports the (frozen)
	// epoch, but item mutations return 409.
	Catalog *catalog.Catalog
	// ShardID names this process in a sharded deployment. It is reported
	// in /healthz (so a gateway can verify it is talking to the backend it
	// thinks it is) and checked against DrainRequest.Self on /admin/drain —
	// a drain delivered to the wrong shard would flush sessions that did
	// not move. Empty means unsharded: drains are accepted for any Self.
	ShardID string
}

// Server routes HTTP requests onto a session manager.
type Server struct {
	mgr     *session.Manager
	cat     *catalog.Catalog // nil = static catalogue
	mux     *http.ServeMux
	maxBody int64
	shardID string
	metrics *Metrics
}

// New builds a server over a session manager.
func New(mgr *session.Manager, opts Options) *Server {
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{mgr: mgr, cat: opts.Catalog, mux: http.NewServeMux(), maxBody: opts.MaxBodyBytes, shardID: opts.ShardID, metrics: newMetrics()}
	reg := func(pattern, route string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.metrics.instrument(route, h))
	}
	reg("GET /healthz", "healthz", s.handleHealthz)
	reg("GET /sessions", "sessions.list", s.handleSessions)
	reg("DELETE /sessions/{id}", "sessions.delete", s.handleSessionDelete)
	reg("GET /catalog", "catalog.get", s.handleCatalogGet)
	reg("POST /catalog/items", "catalog.upsert", s.handleCatalogUpsert)
	reg("DELETE /catalog/items/{id}", "catalog.delete", s.handleCatalogDelete)
	reg("POST "+shard.DrainPath, "admin.drain", s.handleDrain)
	// Each session-scoped route is registered twice: under /sessions/{id}
	// and at the legacy root path (session from X-Session-ID header). Both
	// registrations share one metrics recorder — they are the same logical
	// route.
	for _, ep := range []struct {
		method, path, route string
		h                   http.HandlerFunc
	}{
		{"GET", "recommend", "recommend", s.handleRecommend},
		{"POST", "click", "click", s.handleClick},
		{"POST", "feedback", "feedback", s.handleFeedback},
		{"GET", "stats", "stats", s.handleStats},
		{"GET", "snapshot", "snapshot.get", s.handleSnapshotGet},
		{"POST", "snapshot", "snapshot.post", s.handleSnapshotPost},
	} {
		reg(ep.method+" /sessions/{id}/"+ep.path, ep.route, ep.h)
		reg(ep.method+" /"+ep.path, ep.route, ep.h)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// sessionID resolves the session a request addresses: path first, then
// header, then the default session.
func sessionID(r *http.Request) string {
	if id := r.PathValue("id"); id != "" {
		return id
	}
	if id := r.Header.Get("X-Session-ID"); id != "" {
		return id
	}
	return DefaultSessionID
}

// PackageJSON is the wire form of one package. Score is always present:
// a legitimate zero score must be distinguishable from "no score"
// (exploration packages report 0 by convention, and a package whose
// weighted utility nets to exactly zero is not absent).
type PackageJSON struct {
	Items []int    `json:"items"`
	Names []string `json:"names,omitempty"`
	Score float64  `json:"score"`
}

// SlateJSON is the wire form of a recommendation slate. Epoch identifies
// the catalogue epoch the slate's item IDs are positions in and is
// always present — epoch 0 (a static catalogue) is a real epoch, not an
// absent field.
type SlateJSON struct {
	Recommended []PackageJSON `json:"recommended"`
	Random      []PackageJSON `json:"random"`
	Epoch       uint64        `json:"epoch"`
}

// pkgJSON resolves names against the space of the epoch the slate was
// computed on — never the engine's current epoch, which a concurrent
// catalogue swap may have remapped (or shrunk) by serialization time.
func pkgJSON(sp *feature.Space, p pkgspace.Package, score float64) PackageJSON {
	names := make([]string, len(p.IDs))
	for i, id := range p.IDs {
		names[i] = sp.Items[id].Name
	}
	return PackageJSON{Items: append([]int(nil), p.IDs...), Names: names, Score: score}
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var out SlateJSON
	err := s.mgr.Do(sessionID(r), func(eng *core.Engine) error {
		slate, err := eng.Recommend()
		if err != nil {
			return err
		}
		out.Epoch = slate.Epoch
		for _, rec := range slate.Recommended {
			out.Recommended = append(out.Recommended, pkgJSON(slate.Space, rec.Pkg, rec.Score))
		}
		for _, p := range slate.Random {
			out.Random = append(out.Random, pkgJSON(slate.Space, p, 0))
		}
		return nil
	})
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, out)
}

// ClickRequest is the wire form of implicit click feedback.
type ClickRequest struct {
	Chosen []int   `json:"chosen"`
	Shown  [][]int `json:"shown"`
}

func (s *Server) handleClick(w http.ResponseWriter, r *http.Request) {
	var req ClickRequest
	if err := decodeBody(w, r, &req, s.maxBody); err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	if len(req.Chosen) == 0 || len(req.Shown) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("chosen and shown are required"))
		return
	}
	chosen := pkgspace.New(req.Chosen...)
	shown := make([]pkgspace.Package, len(req.Shown))
	for i, ids := range req.Shown {
		shown[i] = pkgspace.New(ids...)
	}
	var st core.Stats
	err := s.mgr.Do(sessionID(r), func(eng *core.Engine) error {
		if err := validatePackages(eng, append(shown, chosen)); err != nil {
			return err
		}
		err := eng.Click(chosen, shown)
		st = eng.Stats()
		return err
	})
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, st)
}

// FeedbackRequest is the wire form of one explicit pairwise preference.
type FeedbackRequest struct {
	Winner []int `json:"winner"`
	Loser  []int `json:"loser"`
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req FeedbackRequest
	if err := decodeBody(w, r, &req, s.maxBody); err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	winner, loser := pkgspace.New(req.Winner...), pkgspace.New(req.Loser...)
	var st core.Stats
	err := s.mgr.Do(sessionID(r), func(eng *core.Engine) error {
		if err := validatePackages(eng, []pkgspace.Package{winner, loser}); err != nil {
			return err
		}
		err := eng.Feedback(winner, loser)
		st = eng.Stats()
		return err
	})
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var st core.Stats
	err := s.mgr.Do(sessionID(r), func(eng *core.Engine) error {
		st = eng.Stats()
		return nil
	})
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	var snap *core.Snapshot
	err := s.mgr.Do(sessionID(r), func(eng *core.Engine) error {
		snap = eng.Snapshot()
		return nil
	})
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, snap)
}

// RestoreReport is the response to a snapshot import: how much of the
// snapshot's learned state survived the remap onto the current catalogue
// epoch. Nonzero drop counts mean the catalogue lost items between export
// and import — the preferences over them are gone, by design, not error.
type RestoreReport struct {
	Epoch        uint64 `json:"epoch"`
	Preferences  int    `json:"preferences"`
	DroppedItems int    `json:"dropped_items"`
	DroppedPrefs int    `json:"dropped_preferences"`
}

func (s *Server) handleSnapshotPost(w http.ResponseWriter, r *http.Request) {
	snapLimit := s.maxBody * SnapshotBodyFactor
	if snapLimit < minSnapshotBodyBytes {
		snapLimit = minSnapshotBodyBytes
	}
	var snap core.Snapshot
	if err := decodeBody(w, r, &snap, snapLimit); err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	var report RestoreReport
	err := s.mgr.Do(sessionID(r), func(eng *core.Engine) error {
		if err := eng.Restore(&snap); err != nil {
			return badRequest{err}
		}
		items, prefs := eng.LastRestoreDrops()
		report = RestoreReport{
			Epoch:        eng.FeedbackEpoch(),
			Preferences:  eng.Graph().Edges(),
			DroppedItems: items,
			DroppedPrefs: prefs,
		}
		return nil
	})
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, report)
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"sessions": s.mgr.List()})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.Delete(r.PathValue("id")); err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	epoch, items, idmapHash, spaceHash := s.mgr.Shared().EpochIdentity()
	cat := map[string]any{
		"epoch":   epoch,
		"items":   items,
		"mutable": s.cat != nil,
		// Content fingerprints for cross-shard convergence checks: two
		// backends with equal idmap_hash/space_hash serve identical
		// catalogue content, even when their epoch counters differ (epochs
		// are per-process and coalescing merges batches differently).
		"idmap_hash": fmt.Sprintf("%016x", idmapHash),
		"space_hash": fmt.Sprintf("%016x", spaceHash),
	}
	if s.cat != nil {
		// Rebuild health for a live catalogue: how epochs are being built
		// (incremental delta vs full) and whether any fell back or failed.
		st := s.cat.Stats()
		cat["rebuilds"] = st.Rebuilds
		cat["delta_builds"] = st.DeltaBuilds
		cat["full_rebuilds"] = st.FullRebuilds
		cat["delta_fallbacks"] = st.DeltaFallbacks
		cat["build_errors"] = st.BuildErrors
		cat["pending"] = st.Pending
		// Skyline head-set maintenance across epoch swaps: incremental
		// carries vs full recomputes (a recompute means a batch touched a
		// current head — insert-only churn should never pay one).
		cat["skyline_incremental"] = st.SkylineIncremental
		cat["skyline_recomputes"] = st.SkylineRecomputes
		// Sketch-refine partition maintenance and per-search refine
		// behavior (see CatalogStatus for field semantics).
		cat["partition_clusters"] = st.PartitionClusters
		cat["partition_imbalance"] = st.PartitionImbalance
		cat["partition_incremental"] = st.PartitionIncremental
		cat["partition_reclusters"] = st.PartitionReclusters
		cat["partition_searches"] = st.PartitionSearches
		cat["sketch_skipped"] = st.SketchSkipped
		cat["refine_clusters_opened"] = st.RefineClustersOpened
	}
	health := map[string]any{
		"status":       "ok",
		"catalog":      cat,
		"sessions":     s.mgr.Stats(), // includes evict_queue depth
		"search_cache": s.mgr.SearchCacheStats(),
		// Per-route request counts, status classes, and latency quantiles.
		// The in-flight /healthz request itself is not yet counted: its
		// recorder runs after the handler returns.
		"http": s.MetricsSnapshot(),
	}
	if s.shardID != "" {
		health["shard_id"] = s.shardID
	}
	writeJSON(w, health)
}

// handleDrain flushes every resident session this shard no longer owns
// under the ring membership in the request — the backend half of a
// gateway rebalance. The flush is synchronous: a 200 means every moved
// session's snapshot is durably in the store, so the gateway may swap the
// ring the moment all drains answer.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	var req shard.DrainRequest
	if err := decodeBody(w, r, &req, s.maxBody); err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	if s.shardID != "" && req.Self != s.shardID {
		httpError(w, http.StatusBadRequest, fmt.Errorf("drain addressed to shard %q but this is %q", req.Self, s.shardID))
		return
	}
	writeJSON(w, shard.DrainResponse{Flushed: s.mgr.FlushMatching(req.Predicate())})
}

// ItemJSON is the wire form of one catalogue item in the admin API. ID is
// the stable catalogue key; Values uses null for missing features.
type ItemJSON struct {
	ID     int        `json:"id"`
	Name   string     `json:"name,omitempty"`
	Values []*float64 `json:"values"`
}

// UpsertRequest is the wire form of one catalogue mutation batch.
type UpsertRequest struct {
	Items []ItemJSON `json:"items"`
}

// item converts the wire form to a feature.Item (null → feature.Null).
func (ij ItemJSON) item() feature.Item {
	vals := make([]float64, len(ij.Values))
	for i, v := range ij.Values {
		if v == nil {
			vals[i] = feature.Null
		} else {
			vals[i] = *v
		}
	}
	return feature.Item{ID: ij.ID, Name: ij.Name, Values: vals}
}

// errStaticCatalog rejects mutations when no live catalogue is configured.
var errStaticCatalog = errors.New("catalogue is static; restart with -mutable-catalog to enable item mutations")

// CatalogStatus is the wire form of GET /catalog. One schema serves both
// flavors: a static catalogue reports mutable=false with every counter at
// its zero value, so clients never branch on which keys exist.
type CatalogStatus struct {
	Epoch          uint64 `json:"epoch"`
	Items          int    `json:"items"`
	Mutable        bool   `json:"mutable"`
	Upserts        int64  `json:"upserts"`
	Deletes        int64  `json:"deletes"`
	Batches        int64  `json:"batches"`
	Rebuilds       int64  `json:"rebuilds"`
	DeltaBuilds    int64  `json:"delta_builds"`
	FullRebuilds   int64  `json:"full_rebuilds"`
	DeltaFallbacks int64  `json:"delta_fallbacks"`
	BuildErrors    int64  `json:"build_errors"`
	LastError      string `json:"last_error"`
	Pending        bool   `json:"pending"`
	// Sketch-refine partition health: the current epoch's cluster count
	// and imbalance (zero until a search materializes the partition), the
	// incremental-vs-recluster maintenance split across delta builds, and
	// the cumulative per-search counters (partition-engaged searches,
	// items skipped by the sketch floor, clusters opened by refines).
	PartitionClusters    int     `json:"partition_clusters"`
	PartitionImbalance   float64 `json:"partition_imbalance,omitempty"`
	PartitionIncremental int64   `json:"partition_incremental"`
	PartitionReclusters  int64   `json:"partition_reclusters"`
	PartitionSearches    int64   `json:"partition_searches"`
	SketchSkipped        int64   `json:"sketch_skipped"`
	RefineClustersOpened int64   `json:"refine_clusters_opened"`
}

func (s *Server) handleCatalogGet(w http.ResponseWriter, r *http.Request) {
	if s.cat == nil {
		epoch, items := s.mgr.Shared().EpochInfo()
		writeJSON(w, CatalogStatus{Epoch: epoch, Items: items})
		return
	}
	st := s.cat.Stats()
	writeJSON(w, CatalogStatus{
		Epoch:          st.Epoch,
		Items:          st.Items,
		Mutable:        true,
		Upserts:        st.Upserts,
		Deletes:        st.Deletes,
		Batches:        st.Batches,
		Rebuilds:       st.Rebuilds,
		DeltaBuilds:    st.DeltaBuilds,
		FullRebuilds:   st.FullRebuilds,
		DeltaFallbacks: st.DeltaFallbacks,
		BuildErrors:    st.BuildErrors,
		LastError:      st.LastError,
		Pending:        st.Pending,

		PartitionClusters:    st.PartitionClusters,
		PartitionImbalance:   st.PartitionImbalance,
		PartitionIncremental: st.PartitionIncremental,
		PartitionReclusters:  st.PartitionReclusters,
		PartitionSearches:    st.PartitionSearches,
		SketchSkipped:        st.SketchSkipped,
		RefineClustersOpened: st.RefineClustersOpened,
	})
}

// parseWait interprets the ?wait query parameter: absent or empty means
// async (false); anything else must satisfy strconv.ParseBool. Unparseable
// values (?wait=yes) are the client's error — previously they were
// silently treated as false, turning an intended blocking call async.
func parseWait(r *http.Request) (bool, error) {
	raw := r.URL.Query().Get("wait")
	if raw == "" {
		return false, nil
	}
	wait, err := strconv.ParseBool(raw)
	if err != nil {
		return false, fmt.Errorf("invalid wait parameter %q (want a boolean)", raw)
	}
	return wait, nil
}

// finishMutation acknowledges a committed catalogue mutation. With wait
// set it blocks until the swapped-in epoch covers the batch and answers
// 200 OK — the operation is complete, not accepted-for-later; without it
// the batch is pending a background rebuild and the honest answer is
// 202 Accepted.
func (s *Server) finishMutation(w http.ResponseWriter, wait bool, extra map[string]any) {
	code := http.StatusAccepted
	if wait {
		s.cat.Flush()
		code = http.StatusOK
	}
	st := s.cat.Stats()
	body := map[string]any{"epoch": st.Epoch, "items": st.Items, "pending": st.Pending}
	for k, v := range extra {
		body[k] = v
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

func (s *Server) handleCatalogUpsert(w http.ResponseWriter, r *http.Request) {
	if s.cat == nil {
		httpError(w, http.StatusConflict, errStaticCatalog)
		return
	}
	wait, err := parseWait(r)
	if err != nil { // reject before committing the batch
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var req UpsertRequest
	if err := decodeBody(w, r, &req, s.maxBody); err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	if len(req.Items) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("items are required"))
		return
	}
	items := make([]feature.Item, len(req.Items))
	for i, ij := range req.Items {
		items[i] = ij.item()
	}
	if err := s.cat.Upsert(items); err != nil {
		// Upsert validates before committing, so failures are the
		// client's malformed batch.
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.finishMutation(w, wait, map[string]any{"upserted": len(items)})
}

func (s *Server) handleCatalogDelete(w http.ResponseWriter, r *http.Request) {
	if s.cat == nil {
		httpError(w, http.StatusConflict, errStaticCatalog)
		return
	}
	wait, err := parseWait(r)
	if err != nil { // reject before committing the delete
		httpError(w, http.StatusBadRequest, err)
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid item id %q", r.PathValue("id")))
		return
	}
	removed, err := s.cat.Delete([]int{id})
	if err != nil {
		// The only commit-time failure is a batch that would empty the
		// catalogue — the client's error.
		httpError(w, http.StatusConflict, err)
		return
	}
	if removed == 0 {
		httpError(w, http.StatusNotFound, fmt.Errorf("item %d not in catalogue", id))
		return
	}
	s.finishMutation(w, wait, map[string]any{"removed": removed})
}

// badRequest marks an error as the client's fault (400).
type badRequest struct{ err error }

func (b badRequest) Error() string { return b.err.Error() }
func (b badRequest) Unwrap() error { return b.err }

// decodeBody parses a JSON request body under a size cap, preserving the
// MaxBytesReader error so oversized payloads map to 413 rather than 400.
func decodeBody(w http.ResponseWriter, r *http.Request, v any, limit int64) error {
	body := http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return err
		}
		return badRequest{fmt.Errorf("invalid JSON body: %w", err)}
	}
	return nil
}

// validatePackages rejects out-of-range item IDs before they reach the
// engine, so malformed payloads are the client's error, not a 500. IDs are
// validated against the engine's feedback space — the epoch of the slate
// the client is reacting to — not the catalogue's current epoch.
func validatePackages(eng *core.Engine, pkgs []pkgspace.Package) error {
	sp := eng.FeedbackSpace()
	for _, p := range pkgs {
		if len(p.IDs) == 0 {
			return badRequest{errors.New("empty package")}
		}
		if err := pkgspace.ValidateIDs(sp, p); err != nil {
			return badRequest{err}
		}
	}
	return nil
}

// statusFor maps errors to HTTP statuses: invalid input is 400, unknown
// sessions 404, contradictory feedback is the client's inconsistency
// (409), oversized bodies 413, everything else internal.
func statusFor(err error) int {
	var br badRequest
	var tooLarge *http.MaxBytesError
	switch {
	case errors.As(err, &br):
		return http.StatusBadRequest
	case errors.Is(err, session.ErrBadID):
		return http.StatusBadRequest
	case errors.Is(err, session.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, prefgraph.ErrCycle):
		return http.StatusConflict
	case errors.As(err, &tooLarge):
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprint(err)})
}
