// Package server exposes the package recommender over HTTP/JSON — the
// deployment surface the paper envisions (§1: recommendations shown at
// login, clicks logged as implicit feedback, no explicit elicitation
// queries). A single engine serves one user session; the handler
// serializes access, since the engine itself is single-threaded.
//
// Endpoints:
//
//	GET  /recommend           → {"recommended": [...], "random": [...]}
//	POST /click               ← {"chosen": [ids], "shown": [[ids], ...]}
//	POST /feedback            ← {"winner": [ids], "loser": [ids]}
//	GET  /stats               → engine counters
//	GET  /snapshot            → persisted session state (JSON)
//	POST /snapshot            ← restores a previously saved session
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"toppkg/internal/core"
	"toppkg/internal/pkgspace"
	"toppkg/internal/prefgraph"
)

// Server wraps an engine with an HTTP handler.
type Server struct {
	mu  sync.Mutex
	eng *core.Engine
	mux *http.ServeMux
}

// New builds a server around an engine. The engine must not be used
// concurrently outside the server afterwards.
func New(eng *core.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /recommend", s.handleRecommend)
	s.mux.HandleFunc("POST /click", s.handleClick)
	s.mux.HandleFunc("POST /feedback", s.handleFeedback)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /snapshot", s.handleSnapshotGet)
	s.mux.HandleFunc("POST /snapshot", s.handleSnapshotPost)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// PackageJSON is the wire form of one package.
type PackageJSON struct {
	Items []int    `json:"items"`
	Names []string `json:"names,omitempty"`
	Score float64  `json:"score,omitempty"`
}

// SlateJSON is the wire form of a recommendation slate.
type SlateJSON struct {
	Recommended []PackageJSON `json:"recommended"`
	Random      []PackageJSON `json:"random"`
}

func (s *Server) pkgJSON(p pkgspace.Package, score float64) PackageJSON {
	names := make([]string, len(p.IDs))
	for i, id := range p.IDs {
		names[i] = s.eng.Space().Items[id].Name
	}
	return PackageJSON{Items: append([]int(nil), p.IDs...), Names: names, Score: score}
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	slate, err := s.eng.Recommend()
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	out := SlateJSON{}
	for _, rec := range slate.Recommended {
		out.Recommended = append(out.Recommended, s.pkgJSON(rec.Pkg, rec.Score))
	}
	for _, p := range slate.Random {
		out.Random = append(out.Random, s.pkgJSON(p, 0))
	}
	writeJSON(w, out)
}

// ClickRequest is the wire form of implicit click feedback.
type ClickRequest struct {
	Chosen []int   `json:"chosen"`
	Shown  [][]int `json:"shown"`
}

func (s *Server) handleClick(w http.ResponseWriter, r *http.Request) {
	var req ClickRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Chosen) == 0 || len(req.Shown) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("chosen and shown are required"))
		return
	}
	chosen := pkgspace.New(req.Chosen...)
	shown := make([]pkgspace.Package, len(req.Shown))
	for i, ids := range req.Shown {
		shown[i] = pkgspace.New(ids...)
	}
	s.mu.Lock()
	err := s.eng.Click(chosen, shown)
	st := s.eng.Stats()
	s.mu.Unlock()
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, st)
}

// FeedbackRequest is the wire form of one explicit pairwise preference.
type FeedbackRequest struct {
	Winner []int `json:"winner"`
	Loser  []int `json:"loser"`
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req FeedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	err := s.eng.Feedback(pkgspace.New(req.Winner...), pkgspace.New(req.Loser...))
	st := s.eng.Stats()
	s.mu.Unlock()
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := s.eng.Stats()
	s.mu.Unlock()
	writeJSON(w, st)
}

func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	snap := s.eng.Snapshot()
	s.mu.Unlock()
	writeJSON(w, snap)
}

func (s *Server) handleSnapshotPost(w http.ResponseWriter, r *http.Request) {
	var snap core.Snapshot
	if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	err := s.eng.Restore(&snap)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// statusFor maps engine errors to HTTP statuses: contradictory feedback is
// the client's inconsistency (409), everything else is internal.
func statusFor(err error) int {
	if errors.Is(err, prefgraph.ErrCycle) {
		return http.StatusConflict
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprint(err)})
}
