// Package server exposes the package recommender over HTTP/JSON — the
// deployment surface the paper envisions (§1: recommendations shown at
// login, clicks logged as implicit feedback, no explicit elicitation
// queries). Many user sessions are served concurrently by one process: a
// session.Manager keys independent engines by session ID, so requests for
// different sessions proceed in parallel while one session's requests are
// serialized.
//
// Session-scoped endpoints (the session ID comes from the path, or from
// the X-Session-ID header on the legacy un-prefixed paths, defaulting to
// "default"):
//
//	GET    /sessions/{id}/recommend  → {"recommended": [...], "random": [...]}
//	POST   /sessions/{id}/click      ← {"chosen": [ids], "shown": [[ids], ...]}
//	POST   /sessions/{id}/feedback   ← {"winner": [ids], "loser": [ids]}
//	GET    /sessions/{id}/stats      → engine counters
//	GET    /sessions/{id}/snapshot   → persisted session state (JSON)
//	POST   /sessions/{id}/snapshot   ← restores a previously saved session
//
// Management endpoints:
//
//	GET    /sessions                 → {"sessions": [{"id", "last_used", "feedback"}]}
//	DELETE /sessions/{id}            → drops the session and its snapshot
//	GET    /healthz                  → {"status": "ok", "sessions": {...}, "search_cache": {...}}
//
// Every error is JSON: {"error": "..."} with a matching status code.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"toppkg/internal/core"
	"toppkg/internal/pkgspace"
	"toppkg/internal/prefgraph"
	"toppkg/internal/session"
)

// DefaultMaxBodyBytes caps request bodies when Options.MaxBodyBytes is 0.
const DefaultMaxBodyBytes = 1 << 20

// DefaultSessionID serves legacy header-less requests on the un-prefixed
// paths, preserving the original single-session curl workflow.
const DefaultSessionID = "default"

// SnapshotBodyFactor multiplies MaxBodyBytes for POST snapshot requests:
// a snapshot carries the whole sample pool (SampleCount × dims floats), so
// the server must accept bodies at least as large as the ones its own
// GET snapshot emits.
const SnapshotBodyFactor = 64

// minSnapshotBodyBytes floors the snapshot cap so that an aggressively
// small -max-body cannot shrink it below what any realistic engine
// configuration's own snapshot needs.
const minSnapshotBodyBytes = 16 << 20

// Options tunes the HTTP layer.
type Options struct {
	// MaxBodyBytes bounds click/feedback request bodies (default
	// DefaultMaxBodyBytes); snapshot restores get SnapshotBodyFactor times
	// as much. Oversized payloads get 413.
	MaxBodyBytes int64
}

// Server routes HTTP requests onto a session manager.
type Server struct {
	mgr     *session.Manager
	mux     *http.ServeMux
	maxBody int64
}

// New builds a server over a session manager.
func New(mgr *session.Manager, opts Options) *Server {
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{mgr: mgr, mux: http.NewServeMux(), maxBody: opts.MaxBodyBytes}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /sessions", s.handleSessions)
	s.mux.HandleFunc("DELETE /sessions/{id}", s.handleSessionDelete)
	// Each session-scoped route is registered twice: under /sessions/{id}
	// and at the legacy root path (session from X-Session-ID header).
	for _, ep := range []struct {
		method, path string
		h            http.HandlerFunc
	}{
		{"GET", "recommend", s.handleRecommend},
		{"POST", "click", s.handleClick},
		{"POST", "feedback", s.handleFeedback},
		{"GET", "stats", s.handleStats},
		{"GET", "snapshot", s.handleSnapshotGet},
		{"POST", "snapshot", s.handleSnapshotPost},
	} {
		s.mux.HandleFunc(ep.method+" /sessions/{id}/"+ep.path, ep.h)
		s.mux.HandleFunc(ep.method+" /"+ep.path, ep.h)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// sessionID resolves the session a request addresses: path first, then
// header, then the default session.
func sessionID(r *http.Request) string {
	if id := r.PathValue("id"); id != "" {
		return id
	}
	if id := r.Header.Get("X-Session-ID"); id != "" {
		return id
	}
	return DefaultSessionID
}

// PackageJSON is the wire form of one package.
type PackageJSON struct {
	Items []int    `json:"items"`
	Names []string `json:"names,omitempty"`
	Score float64  `json:"score,omitempty"`
}

// SlateJSON is the wire form of a recommendation slate.
type SlateJSON struct {
	Recommended []PackageJSON `json:"recommended"`
	Random      []PackageJSON `json:"random"`
}

func pkgJSON(eng *core.Engine, p pkgspace.Package, score float64) PackageJSON {
	names := make([]string, len(p.IDs))
	for i, id := range p.IDs {
		names[i] = eng.Space().Items[id].Name
	}
	return PackageJSON{Items: append([]int(nil), p.IDs...), Names: names, Score: score}
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var out SlateJSON
	err := s.mgr.Do(sessionID(r), func(eng *core.Engine) error {
		slate, err := eng.Recommend()
		if err != nil {
			return err
		}
		for _, rec := range slate.Recommended {
			out.Recommended = append(out.Recommended, pkgJSON(eng, rec.Pkg, rec.Score))
		}
		for _, p := range slate.Random {
			out.Random = append(out.Random, pkgJSON(eng, p, 0))
		}
		return nil
	})
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, out)
}

// ClickRequest is the wire form of implicit click feedback.
type ClickRequest struct {
	Chosen []int   `json:"chosen"`
	Shown  [][]int `json:"shown"`
}

func (s *Server) handleClick(w http.ResponseWriter, r *http.Request) {
	var req ClickRequest
	if err := decodeBody(w, r, &req, s.maxBody); err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	if len(req.Chosen) == 0 || len(req.Shown) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("chosen and shown are required"))
		return
	}
	chosen := pkgspace.New(req.Chosen...)
	shown := make([]pkgspace.Package, len(req.Shown))
	for i, ids := range req.Shown {
		shown[i] = pkgspace.New(ids...)
	}
	var st core.Stats
	err := s.mgr.Do(sessionID(r), func(eng *core.Engine) error {
		if err := validatePackages(eng, append(shown, chosen)); err != nil {
			return err
		}
		err := eng.Click(chosen, shown)
		st = eng.Stats()
		return err
	})
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, st)
}

// FeedbackRequest is the wire form of one explicit pairwise preference.
type FeedbackRequest struct {
	Winner []int `json:"winner"`
	Loser  []int `json:"loser"`
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req FeedbackRequest
	if err := decodeBody(w, r, &req, s.maxBody); err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	winner, loser := pkgspace.New(req.Winner...), pkgspace.New(req.Loser...)
	var st core.Stats
	err := s.mgr.Do(sessionID(r), func(eng *core.Engine) error {
		if err := validatePackages(eng, []pkgspace.Package{winner, loser}); err != nil {
			return err
		}
		err := eng.Feedback(winner, loser)
		st = eng.Stats()
		return err
	})
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var st core.Stats
	err := s.mgr.Do(sessionID(r), func(eng *core.Engine) error {
		st = eng.Stats()
		return nil
	})
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	var snap *core.Snapshot
	err := s.mgr.Do(sessionID(r), func(eng *core.Engine) error {
		snap = eng.Snapshot()
		return nil
	})
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, snap)
}

func (s *Server) handleSnapshotPost(w http.ResponseWriter, r *http.Request) {
	snapLimit := s.maxBody * SnapshotBodyFactor
	if snapLimit < minSnapshotBodyBytes {
		snapLimit = minSnapshotBodyBytes
	}
	var snap core.Snapshot
	if err := decodeBody(w, r, &snap, snapLimit); err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	err := s.mgr.Do(sessionID(r), func(eng *core.Engine) error {
		if err := eng.Restore(&snap); err != nil {
			return badRequest{err}
		}
		return nil
	})
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"sessions": s.mgr.List()})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.Delete(r.PathValue("id")); err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"status":       "ok",
		"sessions":     s.mgr.Stats(), // includes evict_queue depth
		"search_cache": s.mgr.SearchCacheStats(),
	})
}

// badRequest marks an error as the client's fault (400).
type badRequest struct{ err error }

func (b badRequest) Error() string { return b.err.Error() }
func (b badRequest) Unwrap() error { return b.err }

// decodeBody parses a JSON request body under a size cap, preserving the
// MaxBytesReader error so oversized payloads map to 413 rather than 400.
func decodeBody(w http.ResponseWriter, r *http.Request, v any, limit int64) error {
	body := http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return err
		}
		return badRequest{fmt.Errorf("invalid JSON body: %w", err)}
	}
	return nil
}

// validatePackages rejects out-of-range item IDs before they reach the
// engine, so malformed payloads are the client's error, not a 500.
func validatePackages(eng *core.Engine, pkgs []pkgspace.Package) error {
	for _, p := range pkgs {
		if len(p.IDs) == 0 {
			return badRequest{errors.New("empty package")}
		}
		if err := pkgspace.ValidateIDs(eng.Space(), p); err != nil {
			return badRequest{err}
		}
	}
	return nil
}

// statusFor maps errors to HTTP statuses: invalid input is 400, unknown
// sessions 404, contradictory feedback is the client's inconsistency
// (409), oversized bodies 413, everything else internal.
func statusFor(err error) int {
	var br badRequest
	var tooLarge *http.MaxBytesError
	switch {
	case errors.As(err, &br):
		return http.StatusBadRequest
	case errors.Is(err, session.ErrBadID):
		return http.StatusBadRequest
	case errors.Is(err, session.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, prefgraph.ErrCycle):
		return http.StatusConflict
	case errors.As(err, &tooLarge):
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprint(err)})
}
