// Tests for the catalogue admin API: epoch reporting, upsert/delete
// batches through HTTP, static-catalogue rejection, and sessions
// recommending across an admin-triggered epoch swap.
package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"toppkg/internal/catalog"
	"toppkg/internal/core"
	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/search"
	"toppkg/internal/session"
)

// liveServer builds a server over a mutable catalogue with synchronous
// rebuilds, so admin mutations are visible as soon as the response lands.
func liveServer(t *testing.T) (*catalog.Catalog, *httptest.Server) {
	t.Helper()
	cat, err := catalog.New(catalog.Config{
		Profile:        feature.SimpleProfile(feature.AggSum, feature.AggAvg),
		MaxPackageSize: 3,
		Items:          dataset.UNI(30, 2, rand.New(rand.NewSource(301))),
		Coalesce:       -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := core.NewLiveShared(core.Config{
		K:           3,
		RandomCount: 2,
		SampleCount: 60,
		Seed:        4,
		Search:      search.Options{MaxQueue: 32, MaxAccessed: 100},
	}, cat)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := session.NewManager(session.Config{Shared: sh, Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(mgr, Options{Catalog: cat}))
	t.Cleanup(ts.Close)
	return cat, ts
}

func doDelete(t *testing.T, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestCatalogGetAndHealthzEpoch(t *testing.T) {
	_, ts := liveServer(t)
	var got struct {
		Epoch   uint64 `json:"epoch"`
		Items   int    `json:"items"`
		Mutable bool   `json:"mutable"`
	}
	if resp := getJSON(t, ts.URL+"/catalog", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /catalog = %d", resp.StatusCode)
	}
	if got.Epoch != 1 || got.Items != 30 || !got.Mutable {
		t.Fatalf("GET /catalog = %+v", got)
	}
	var hz struct {
		Catalog struct {
			Epoch   uint64 `json:"epoch"`
			Items   int    `json:"items"`
			Mutable bool   `json:"mutable"`
		} `json:"catalog"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &hz); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}
	if hz.Catalog.Epoch != 1 || hz.Catalog.Items != 30 || !hz.Catalog.Mutable {
		t.Fatalf("healthz catalog = %+v", hz.Catalog)
	}
}

// TestHealthzReportsDeltaBuilds: a small admin batch takes the
// incremental build path and the delta/full counters surface in /healthz.
func TestHealthzReportsDeltaBuilds(t *testing.T) {
	_, ts := liveServer(t)
	v := func(x float64) *float64 { return &x }
	resp := postJSON(t, ts.URL+"/catalog/items?wait=1", UpsertRequest{Items: []ItemJSON{
		{ID: 200, Name: "hot", Values: []*float64{v(0.9), v(0.4)}},
	}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /catalog/items?wait=1 = %d, want 200 (honored wait)", resp.StatusCode)
	}
	var hz struct {
		Catalog struct {
			Rebuilds       int64 `json:"rebuilds"`
			DeltaBuilds    int64 `json:"delta_builds"`
			FullRebuilds   int64 `json:"full_rebuilds"`
			DeltaFallbacks int64 `json:"delta_fallbacks"`
		} `json:"catalog"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &hz); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}
	c := hz.Catalog
	if c.DeltaBuilds != 1 || c.FullRebuilds != 1 || c.Rebuilds != 2 || c.DeltaFallbacks != 0 {
		t.Fatalf("healthz delta counters = %+v", c)
	}
}

func TestCatalogUpsertAndDelete(t *testing.T) {
	cat, ts := liveServer(t)
	v := func(x float64) *float64 { return &x }

	var ack struct {
		Epoch    uint64 `json:"epoch"`
		Items    int    `json:"items"`
		Upserted int    `json:"upserted"`
	}
	resp := postJSON(t, ts.URL+"/catalog/items?wait=1", UpsertRequest{Items: []ItemJSON{
		{ID: 100, Name: "fresh", Values: []*float64{v(0.5), nil}},
		{ID: 101, Name: "fresh2", Values: []*float64{v(0.1), v(0.2)}},
	}}, &ack)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /catalog/items?wait=1 = %d, want 200: the wait was honored, the mutation is complete", resp.StatusCode)
	}
	if ack.Upserted != 2 || ack.Items != 32 || ack.Epoch != 2 {
		t.Fatalf("upsert ack = %+v", ack)
	}
	ep := cat.Current()
	if d, ok := ep.DenseID(100); !ok || ep.Items()[d].Name != "fresh" {
		t.Fatalf("upserted item not in epoch: %v %v", d, ok)
	}
	if d, _ := ep.DenseID(100); !feature.IsNull(ep.Items()[d].Values[1]) {
		t.Fatal("JSON null did not map to feature.Null")
	}

	if resp := doDelete(t, ts.URL+"/catalog/items/100?wait=1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /catalog/items/100?wait=1 = %d, want 200 (honored wait)", resp.StatusCode)
	}
	if _, ok := cat.Current().DenseID(100); ok {
		t.Fatal("deleted item still in epoch")
	}
	if resp := doDelete(t, ts.URL+"/catalog/items/100"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleting a missing item = %d, want 404", resp.StatusCode)
	}
	if resp := doDelete(t, ts.URL+"/catalog/items/abc"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("deleting a non-numeric id = %d, want 400", resp.StatusCode)
	}
}

func TestCatalogUpsertRejectsBadBatch(t *testing.T) {
	cat, ts := liveServer(t)
	v := func(x float64) *float64 { return &x }
	resp := postJSON(t, ts.URL+"/catalog/items", UpsertRequest{Items: []ItemJSON{
		{ID: 100, Values: []*float64{v(0.5)}}, // wrong dimensionality
	}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch = %d, want 400", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/catalog/items", UpsertRequest{}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", resp.StatusCode)
	}
	if got := cat.Current().ID; got != 1 {
		t.Fatalf("rejected batches advanced the epoch to %d", got)
	}
}

func TestStaticCatalogRejectsMutations(t *testing.T) {
	_, ts := testServer(t)
	var got struct {
		Epoch   uint64 `json:"epoch"`
		Mutable bool   `json:"mutable"`
	}
	if resp := getJSON(t, ts.URL+"/catalog", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /catalog = %d", resp.StatusCode)
	}
	if got.Epoch != 0 || got.Mutable {
		t.Fatalf("static GET /catalog = %+v", got)
	}
	v := func(x float64) *float64 { return &x }
	resp := postJSON(t, ts.URL+"/catalog/items", UpsertRequest{Items: []ItemJSON{
		{ID: 1, Values: []*float64{v(1), v(1)}},
	}}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("static upsert = %d, want 409", resp.StatusCode)
	}
	if resp := doDelete(t, ts.URL+"/catalog/items/1"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("static delete = %d, want 409", resp.StatusCode)
	}
}

// TestRecommendAcrossAdminSwap drives the full HTTP stack: a session
// recommends, the admin mutates the catalogue, and the next recommend
// reports the new epoch with item IDs valid in it.
func TestRecommendAcrossAdminSwap(t *testing.T) {
	cat, ts := liveServer(t)
	var s1 SlateJSON
	if resp := getJSON(t, ts.URL+"/sessions/alice/recommend", &s1); resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend 1 = %d", resp.StatusCode)
	}
	if s1.Epoch != 1 {
		t.Fatalf("first slate epoch = %d, want 1", s1.Epoch)
	}
	v := func(x float64) *float64 { return &x }
	items := make([]ItemJSON, 5)
	for i := range items {
		items[i] = ItemJSON{ID: 200 + i, Name: fmt.Sprintf("drop%d", i), Values: []*float64{v(0.8), v(0.9)}}
	}
	if resp := postJSON(t, ts.URL+"/catalog/items?wait=1", UpsertRequest{Items: items}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("admin upsert ?wait=1 = %d, want 200", resp.StatusCode)
	}
	var s2 SlateJSON
	if resp := getJSON(t, ts.URL+"/sessions/alice/recommend", &s2); resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend 2 = %d", resp.StatusCode)
	}
	if s2.Epoch != cat.Current().ID || s2.Epoch < 2 {
		t.Fatalf("post-swap slate epoch = %d, catalogue at %d", s2.Epoch, cat.Current().ID)
	}
	n := len(cat.Current().Items())
	for _, p := range append(s2.Recommended, s2.Random...) {
		for _, id := range p.Items {
			if id < 0 || id >= n {
				t.Fatalf("post-swap slate references item %d outside %d-item epoch", id, n)
			}
		}
	}
}

// TestSnapshotImportAcrossChurn drives the stable-ID snapshot path over
// HTTP: export a session's learned state, delete one of its preference's
// items through the admin API, and import the snapshot into another
// session. The import succeeds with a restore report itemizing the loss
// instead of rejecting the whole snapshot.
func TestSnapshotImportAcrossChurn(t *testing.T) {
	_, ts := liveServer(t)
	r := postJSON(t, ts.URL+"/sessions/alice/feedback",
		FeedbackRequest{Winner: []int{0, 1}, Loser: []int{2}}, nil)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("feedback = %d", r.StatusCode)
	}
	var snap core.Snapshot
	if resp := getJSON(t, ts.URL+"/sessions/alice/snapshot", &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("export = %d", resp.StatusCode)
	}
	if snap.Version != 2 || len(snap.Preferences) != 1 {
		t.Fatalf("export: version %d, %d preferences", snap.Version, len(snap.Preferences))
	}

	// Stable ID 1 — a member of the winner — leaves the catalogue.
	if resp := doDelete(t, ts.URL+"/catalog/items/1?wait=1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("admin delete ?wait=1 = %d, want 200", resp.StatusCode)
	}

	var report RestoreReport
	r2 := postJSON(t, ts.URL+"/sessions/bob/snapshot", snap, &report)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("import across churn = %d, want 200", r2.StatusCode)
	}
	if report.DroppedItems != 1 || report.DroppedPrefs != 0 || report.Preferences != 1 {
		t.Fatalf("restore report = %+v, want 1 dropped item, 0 dropped prefs, 1 surviving", report)
	}
	if report.Epoch < 2 {
		t.Fatalf("restore report epoch = %d, want the post-churn epoch", report.Epoch)
	}
}

// TestHealthzReportsRestoreDrops: preference loss on the evict/restore
// path surfaces in /healthz under sessions.restore_dropped_*.
func TestHealthzReportsRestoreDrops(t *testing.T) {
	cat, err := catalog.New(catalog.Config{
		Profile:        feature.SimpleProfile(feature.AggSum, feature.AggAvg),
		MaxPackageSize: 3,
		Items:          dataset.UNI(30, 2, rand.New(rand.NewSource(301))),
		Coalesce:       -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := core.NewLiveShared(core.Config{
		K: 3, RandomCount: 2, SampleCount: 60, Seed: 4,
		Search: search.Options{MaxQueue: 32, MaxAccessed: 100},
	}, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity 1 with synchronous eviction: the second session's miss
	// deterministically snapshots the first.
	mgr, err := session.NewManager(session.Config{
		Shared: sh, Capacity: 1, Store: session.NewMemStore(), EvictWorkers: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(mgr, Options{Catalog: cat}))
	t.Cleanup(ts.Close)

	r := postJSON(t, ts.URL+"/sessions/alice/feedback",
		FeedbackRequest{Winner: []int{0}, Loser: []int{1}}, nil)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("feedback = %d", r.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/sessions/bob/stats", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("evicting request = %d", resp.StatusCode)
	}
	if resp := doDelete(t, ts.URL+"/catalog/items/1?wait=1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("admin delete ?wait=1 = %d, want 200", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/sessions/alice/stats", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("restoring request = %d", resp.StatusCode)
	}

	var hz struct {
		Sessions session.Stats `json:"sessions"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &hz); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if hz.Sessions.RestoreFailures != 0 {
		t.Errorf("healthz restore_failures = %d; churn must not fail the restore", hz.Sessions.RestoreFailures)
	}
	if hz.Sessions.RestoreDroppedItems != 1 || hz.Sessions.RestoreDroppedPrefs != 1 {
		t.Errorf("healthz restore drops = (%d, %d), want (1, 1)",
			hz.Sessions.RestoreDroppedItems, hz.Sessions.RestoreDroppedPrefs)
	}
}

// TestMutationWaitParamValidation: an unparseable ?wait value is the
// client's error and must be rejected before the batch commits, not
// silently treated as async.
func TestMutationWaitParamValidation(t *testing.T) {
	cat, ts := liveServer(t)
	v := func(x float64) *float64 { return &x }
	resp := postJSON(t, ts.URL+"/catalog/items?wait=yes", UpsertRequest{Items: []ItemJSON{
		{ID: 100, Values: []*float64{v(0.5), v(0.5)}},
	}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST ?wait=yes = %d, want 400", resp.StatusCode)
	}
	if got := cat.Current().ID; got != 1 {
		t.Fatalf("rejected ?wait committed the batch (epoch %d)", got)
	}
	if resp := doDelete(t, ts.URL+"/catalog/items/1?wait=maybe"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("DELETE ?wait=maybe = %d, want 400", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/catalog/items?wait=false", UpsertRequest{Items: []ItemJSON{
		{ID: 100, Values: []*float64{v(0.5), v(0.5)}},
	}}, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST ?wait=false = %d, want 202", resp.StatusCode)
	}
}

// TestCatalogGetStableSchema: GET /catalog emits the same key set for
// static and live catalogues, so clients never branch on `mutable` to
// know which fields exist.
func TestCatalogGetStableSchema(t *testing.T) {
	keySet := func(ts *httptest.Server) map[string]bool {
		var got map[string]any
		if resp := getJSON(t, ts.URL+"/catalog", &got); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /catalog = %d", resp.StatusCode)
		}
		keys := make(map[string]bool, len(got))
		for k := range got {
			keys[k] = true
		}
		return keys
	}
	_, live := liveServer(t)
	_, static := testServer(t)
	liveKeys, staticKeys := keySet(live), keySet(static)
	for k := range liveKeys {
		if !staticKeys[k] {
			t.Errorf("key %q present on live /catalog but missing on static", k)
		}
	}
	for k := range staticKeys {
		if !liveKeys[k] {
			t.Errorf("key %q present on static /catalog but missing on live", k)
		}
	}
	for _, k := range []string{"epoch", "items", "mutable", "upserts", "delta_builds", "last_error", "pending"} {
		if !staticKeys[k] {
			t.Errorf("stable schema is missing key %q", k)
		}
	}
}

// TestHealthzSearchCacheCounters: the cache's retention accounting —
// retained, reconcile_drops, invalidation_drops, revived — is visible to
// operators through /healthz.
func TestHealthzSearchCacheCounters(t *testing.T) {
	_, ts := liveServer(t)
	var hz struct {
		SearchCache map[string]any `json:"search_cache"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &hz); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}
	for _, k := range []string{"hits", "misses", "evictions", "retained", "reconcile_drops", "invalidation_drops", "revived"} {
		if _, ok := hz.SearchCache[k]; !ok {
			t.Errorf("healthz search_cache is missing counter %q", k)
		}
	}
}
