// Tests for the per-route HTTP metrics: counts and status classes must
// account for every request, the legacy and prefixed spellings of a
// session route must share one recorder, and /healthz must surface the
// same numbers a MetricsSnapshot reports.
package server

import (
	"net/http"
	"testing"
)

func TestMetricsCountsAndStatusClasses(t *testing.T) {
	_, ts := testServer(t)

	// 2 OK recommends (one via each route spelling), one 400 click, one
	// 404 (unknown path: not a registered route, must not be counted).
	if resp := getJSON(t, ts.URL+"/sessions/alice/recommend", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend = %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/recommend", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy recommend = %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/sessions/alice/click", ClickRequest{}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty click = %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/nosuchroute", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", resp.StatusCode)
	}

	var hz struct {
		HTTP map[string]RouteMetrics `json:"http"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &hz); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	rec := hz.HTTP["recommend"]
	if rec.Requests != 2 || rec.Status2x != 2 || rec.Status4x != 0 || rec.Status5x != 0 {
		t.Errorf("recommend metrics = %+v, want 2 requests all 2xx", rec)
	}
	if rec.Latency.Count != 2 || rec.Latency.P50Ms <= 0 || rec.Latency.P99Ms < rec.Latency.P50Ms {
		t.Errorf("recommend latency = %+v", rec.Latency)
	}
	click := hz.HTTP["click"]
	if click.Requests != 1 || click.Status4x != 1 || click.Status2x != 0 {
		t.Errorf("click metrics = %+v, want 1 request, 1 4xx", click)
	}
	// Unused registered routes report zero with a stable key set.
	if fb, ok := hz.HTTP["feedback"]; !ok || fb.Requests != 0 {
		t.Errorf("feedback metrics = %+v (present %v), want zeroed entry", fb, ok)
	}
	for _, route := range []string{"healthz", "sessions.list", "sessions.delete", "catalog.get",
		"catalog.upsert", "catalog.delete", "recommend", "click", "feedback", "stats",
		"snapshot.get", "snapshot.post"} {
		if _, ok := hz.HTTP[route]; !ok {
			t.Errorf("healthz http is missing route %q", route)
		}
	}
}

// TestMetricsAccountForEveryRequest: the sum over routes equals the total
// requests sent to registered routes — the invariant the loadgen smoke
// test audits externally.
func TestMetricsAccountForEveryRequest(t *testing.T) {
	_, ts := testServer(t)
	sent := 0
	for i := 0; i < 5; i++ {
		if resp := getJSON(t, ts.URL+"/sessions/u/recommend", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("recommend = %d", resp.StatusCode)
		}
		sent++
	}
	if resp := getJSON(t, ts.URL+"/sessions/u/stats", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	sent++

	var hz struct {
		HTTP map[string]RouteMetrics `json:"http"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &hz); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var total int64
	for _, rm := range hz.HTTP {
		total += rm.Requests
	}
	// The healthz scrape itself is recorded only after its handler
	// returns, so it is not part of its own snapshot.
	if total != int64(sent) {
		t.Errorf("metrics account for %d requests, sent %d", total, sent)
	}
}
