// Regression tests for the connection-timeout bugfix: a client that
// stalls mid-header must be disconnected instead of holding the
// connection (and a request slot) forever.
package server

import (
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// startTimeoutServer serves the given handler on a loopback listener
// through NewHTTPServer and returns the address.
func startTimeoutServer(t *testing.T, timeouts Timeouts) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewHTTPServer("", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), timeouts)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// TestStalledHeaderDisconnected: a connection that opens and then never
// finishes its request header is cut off by ReadHeaderTimeout.
func TestStalledHeaderDisconnected(t *testing.T) {
	addr := startTimeoutServer(t, Timeouts{ReadHeader: 150 * time.Millisecond})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request line, then silence — the slow-loris shape.
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: stall")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 512)
	start := time.Now()
	for {
		_, err := conn.Read(buf)
		if err != nil {
			if err == io.EOF || !err.(net.Error).Timeout() {
				break // server closed the connection: the fix
			}
			t.Fatalf("connection still open %v after stalled header (read: %v)", time.Since(start), err)
		}
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("stalled connection lived %v, want disconnect near the 150ms header timeout", waited)
	}
}

// TestStalledBodyDisconnected: a request that presents headers but then
// stalls its body is cut off by ReadTimeout.
func TestStalledBodyDisconnected(t *testing.T) {
	addr := startTimeoutServer(t, Timeouts{Read: 150 * time.Millisecond})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("POST /click HTTP/1.1\r\nHost: x\r\nContent-Length: 1000\r\n\r\n{")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := io.ReadAll(conn); err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatalf("connection still open %v after stalled body", time.Since(start))
		}
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("stalled-body connection lived %v", waited)
	}
}

// TestHealthyRequestUnaffected: the defaults must not break a normal
// request/response cycle.
func TestHealthyRequestUnaffected(t *testing.T) {
	addr := startTimeoutServer(t, Timeouts{})
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy request = %d", resp.StatusCode)
	}
}

// TestTimeoutDefaults: zero fields pick the safe defaults, negative
// fields disable, positive pass through.
func TestTimeoutDefaults(t *testing.T) {
	srv := NewHTTPServer(":0", nil, Timeouts{})
	if srv.ReadHeaderTimeout != DefaultReadHeaderTimeout ||
		srv.ReadTimeout != DefaultReadTimeout ||
		srv.WriteTimeout != DefaultWriteTimeout ||
		srv.IdleTimeout != DefaultIdleTimeout {
		t.Fatalf("defaults not applied: %+v", srv)
	}
	srv = NewHTTPServer(":0", nil, Timeouts{Read: -1, Write: 7 * time.Second})
	if srv.ReadTimeout != 0 {
		t.Errorf("negative Read should disable, got %v", srv.ReadTimeout)
	}
	if srv.WriteTimeout != 7*time.Second {
		t.Errorf("explicit Write not passed through, got %v", srv.WriteTimeout)
	}
}
