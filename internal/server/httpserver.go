// HTTP server construction with connection timeouts. The original
// cmd/serve built a bare http.Server{Addr, Handler}: no header, read,
// write, or idle timeout, so one slow-loris client (or a stalled proxy)
// could hold a connection — and with it a kernel socket and a session's
// request slot — forever. Every listener, including the pprof one, now
// goes through NewHTTPServer so a deployment cannot forget the limits.
package server

import (
	"net/http"
	"time"
)

// Default connection timeouts. Generous enough for a slow mobile client
// posting a full snapshot, tight enough that a stalled peer cannot pin a
// connection: a request must present its header within
// DefaultReadHeaderTimeout, deliver its body within DefaultReadTimeout,
// consume its response within DefaultWriteTimeout, and a kept-alive
// connection idles out after DefaultIdleTimeout.
const (
	DefaultReadHeaderTimeout = 5 * time.Second
	DefaultReadTimeout       = 30 * time.Second
	DefaultWriteTimeout      = 30 * time.Second
	DefaultIdleTimeout       = 120 * time.Second
)

// Timeouts bundles the connection deadlines for NewHTTPServer. Zero
// fields select the defaults above; negative fields disable that limit
// (http.Server's "no timeout"), which is only sensible behind a trusted
// load balancer that enforces its own.
type Timeouts struct {
	ReadHeader time.Duration
	Read       time.Duration
	Write      time.Duration
	Idle       time.Duration
}

// withDefaults resolves the zero/negative conventions.
func (t Timeouts) withDefaults() Timeouts {
	pick := func(v, def time.Duration) time.Duration {
		switch {
		case v == 0:
			return def
		case v < 0:
			return 0 // disabled
		}
		return v
	}
	return Timeouts{
		ReadHeader: pick(t.ReadHeader, DefaultReadHeaderTimeout),
		Read:       pick(t.Read, DefaultReadTimeout),
		Write:      pick(t.Write, DefaultWriteTimeout),
		Idle:       pick(t.Idle, DefaultIdleTimeout),
	}
}

// NewHTTPServer builds an http.Server with the connection timeouts
// applied — the only way a listener should be constructed in this
// codebase.
func NewHTTPServer(addr string, handler http.Handler, t Timeouts) *http.Server {
	t = t.withDefaults()
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: t.ReadHeader,
		ReadTimeout:       t.Read,
		WriteTimeout:      t.Write,
		IdleTimeout:       t.Idle,
	}
}
