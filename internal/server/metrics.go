// Per-route HTTP metrics: the observability layer the whole-system
// traffic harness (cmd/loadgen) audits itself against. Every registered
// route is wrapped with a recorder counting requests by status class and
// feeding a latency histogram; /healthz surfaces the lot, so an external
// load run can check that the server accounted for every request it sent
// — and operators get server-side p50/p95/p99 per route for free.
package server

import (
	"net/http"
	"sync/atomic"
	"time"

	"toppkg/internal/hdrhist"
)

// routeMetrics accumulates one route's counters. All fields are atomic;
// recording takes no locks.
type routeMetrics struct {
	name     string
	requests atomic.Int64
	status2x atomic.Int64
	status4x atomic.Int64
	status5x atomic.Int64
	hist     hdrhist.Histogram
}

// Metrics holds the per-route recorders. Routes are registered once at
// server construction, so the map is read-only afterwards and needs no
// lock.
type Metrics struct {
	routes map[string]*routeMetrics
	order  []string // registration order, for stable reporting
}

func newMetrics() *Metrics {
	return &Metrics{routes: make(map[string]*routeMetrics)}
}

// route registers (or returns) the recorder for a route name.
func (m *Metrics) route(name string) *routeMetrics {
	if rm, ok := m.routes[name]; ok {
		return rm
	}
	rm := &routeMetrics{name: name}
	m.routes[name] = rm
	m.order = append(m.order, name)
	return rm
}

// statusRecorder captures the status code a handler writes. Handlers that
// never call WriteHeader implicitly respond 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the named route's recorder.
func (m *Metrics) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	rm := m.route(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(sr, r)
		rm.requests.Add(1)
		switch {
		case sr.status >= 500:
			rm.status5x.Add(1)
		case sr.status >= 400:
			rm.status4x.Add(1)
		default:
			rm.status2x.Add(1)
		}
		rm.hist.Record(time.Since(start))
	}
}

// RouteMetrics is the wire form of one route's counters in /healthz and
// MetricsSnapshot: request count, status classes, and the latency
// histogram summary.
type RouteMetrics struct {
	Requests int64            `json:"requests"`
	Status2x int64            `json:"status_2xx"`
	Status4x int64            `json:"status_4xx"`
	Status5x int64            `json:"status_5xx"`
	Latency  hdrhist.Snapshot `json:"latency"`
}

// MetricsSnapshot reports every route's counters, keyed by route name.
// Routes that have served no requests are included with zero counters, so
// the key set is stable from the first scrape.
func (s *Server) MetricsSnapshot() map[string]RouteMetrics {
	out := make(map[string]RouteMetrics, len(s.metrics.order))
	for _, name := range s.metrics.order {
		rm := s.metrics.routes[name]
		out[name] = RouteMetrics{
			Requests: rm.requests.Load(),
			Status2x: rm.status2x.Load(),
			Status4x: rm.status4x.Load(),
			Status5x: rm.status5x.Load(),
			Latency:  rm.hist.Snap(),
		}
	}
	return out
}
