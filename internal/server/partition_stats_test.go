// Tests that sketch-refine partition health surfaces over HTTP: cluster
// count, imbalance, the incremental/recluster maintenance split, and the
// per-search refine counters, in both /healthz and GET /catalog.
package server

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"toppkg/internal/catalog"
	"toppkg/internal/core"
	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/search"
	"toppkg/internal/session"
)

func partitionedServer(t *testing.T) (*catalog.Catalog, *httptest.Server) {
	t.Helper()
	p := feature.SimpleProfile(feature.AggSum, feature.AggMax)
	cat, err := catalog.New(catalog.Config{
		Profile:           p,
		MaxPackageSize:    3,
		Items:             dataset.UNI(40, 2, rand.New(rand.NewSource(77))),
		Coalesce:          -1,
		PartitionClusters: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := core.NewLiveShared(core.Config{
		K:           3,
		RandomCount: 2,
		SampleCount: 60,
		Seed:        4,
		Search:      search.Options{MaxQueue: 32, MaxAccessed: 100},
	}, cat)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := session.NewManager(session.Config{Shared: sh, Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(mgr, Options{Catalog: cat}))
	t.Cleanup(ts.Close)
	return cat, ts
}

type partitionStatsWire struct {
	PartitionClusters    int     `json:"partition_clusters"`
	PartitionImbalance   float64 `json:"partition_imbalance"`
	PartitionIncremental int64   `json:"partition_incremental"`
	PartitionReclusters  int64   `json:"partition_reclusters"`
	PartitionSearches    int64   `json:"partition_searches"`
	SketchSkipped        int64   `json:"sketch_skipped"`
	RefineClustersOpened int64   `json:"refine_clusters_opened"`
}

func TestPartitionStatsSurface(t *testing.T) {
	cat, ts := partitionedServer(t)
	// Materialize and engage the partition the way a monotone-utility
	// search would, then push one delta batch through so incremental
	// maintenance has run.
	ep := cat.Current()
	u, err := feature.NewUtility(ep.Space.Profile, []float64{1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Index.TopK(u, search.Options{K: 3, MaxQueue: -1}); err != nil {
		t.Fatal(err)
	}
	v := func(x float64) *float64 { return &x }
	resp := postJSON(t, ts.URL+"/catalog/items?wait=1", UpsertRequest{Items: []ItemJSON{
		{ID: 500, Name: "new", Values: []*float64{v(0.9), v(0.4)}},
	}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /catalog/items?wait=1 = %d", resp.StatusCode)
	}

	var cs partitionStatsWire
	if resp := getJSON(t, ts.URL+"/catalog", &cs); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /catalog = %d", resp.StatusCode)
	}
	if cs.PartitionClusters != 3 || cs.PartitionImbalance < 1 {
		t.Fatalf("GET /catalog partition shape = %+v", cs)
	}
	if cs.PartitionIncremental+cs.PartitionReclusters != 1 {
		t.Fatalf("GET /catalog maintenance split = %+v, want exactly one delta maintained", cs)
	}
	if cs.PartitionSearches == 0 {
		t.Fatalf("GET /catalog search counters = %+v, want engaged searches", cs)
	}

	var hz struct {
		Catalog partitionStatsWire `json:"catalog"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &hz); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}
	if hz.Catalog != cs {
		t.Fatalf("healthz partition stats %+v != GET /catalog %+v", hz.Catalog, cs)
	}
}
