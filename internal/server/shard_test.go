package server

import (
	"net/http"
	"regexp"
	"testing"

	"toppkg/internal/session"
	"toppkg/internal/shard"
)

// TestHealthzShardIdentity checks the fields the gateway's convergence
// check depends on: shard_id when configured, and the catalogue content
// fingerprints as fixed-width hex (comparable as strings).
func TestHealthzShardIdentity(t *testing.T) {
	_, ts := testServerWith(t, 64, nil, Options{ShardID: "s7"})
	var h struct {
		ShardID string `json:"shard_id"`
		Catalog struct {
			IDMapHash string `json:"idmap_hash"`
			SpaceHash string `json:"space_hash"`
		} `json:"catalog"`
	}
	resp := getJSON(t, ts.URL+"/healthz", &h)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if h.ShardID != "s7" {
		t.Fatalf("shard_id = %q, want s7", h.ShardID)
	}
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	if !hex16.MatchString(h.Catalog.IDMapHash) || !hex16.MatchString(h.Catalog.SpaceHash) {
		t.Fatalf("content hashes not 16-hex: idmap=%q space=%q", h.Catalog.IDMapHash, h.Catalog.SpaceHash)
	}

	// Without a shard ID the field stays absent — single-process deploys
	// keep their old healthz shape.
	_, plain := testServerWith(t, 64, nil, Options{})
	var raw map[string]any
	getJSON(t, plain.URL+"/healthz", &raw)
	if _, ok := raw["shard_id"]; ok {
		t.Fatal("shard_id present on an unsharded server")
	}
}

// TestDrainEndpoint drives POST /admin/drain directly: only sessions the
// request's membership routes elsewhere are flushed, and they restore on
// the next touch.
func TestDrainEndpoint(t *testing.T) {
	store := session.NewMemStore()
	mgr, ts := testServerWith(t, 64, store, Options{ShardID: "sa"})
	ring := shard.NewRing(shard.DefaultVNodes, []string{"sa", "sb"})
	var mine, theirs string
	for i := 0; mine == "" || theirs == ""; i++ {
		id := []string{"alice", "bob", "carol", "dave", "erin", "frank"}[i]
		if ring.Owner(id) == "sa" {
			mine = id
		} else {
			theirs = id
		}
		resp := postJSON(t, ts.URL+"/sessions/"+id+"/feedback",
			map[string][]int{"winner": {0}, "loser": {1}}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("feedback %s = %d", id, resp.StatusCode)
		}
	}
	before := mgr.Len()
	var out shard.DrainResponse
	resp := postJSON(t, ts.URL+shard.DrainPath,
		shard.DrainRequest{Self: "sa", Shards: []string{"sa", "sb"}}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain = %d", resp.StatusCode)
	}
	if out.Flushed == 0 || mgr.Len() != before-out.Flushed {
		t.Fatalf("drain flushed %d, resident %d→%d", out.Flushed, before, mgr.Len())
	}
	if _, err := store.Load(theirs); err != nil {
		t.Fatalf("no snapshot for drained session %s: %v", theirs, err)
	}
	if _, err := store.Load(mine); err == nil {
		t.Fatalf("session %s owned by this shard was flushed", mine)
	}

	// Misaddressed drains (wrong Self) must be refused.
	resp = postJSON(t, ts.URL+shard.DrainPath,
		shard.DrainRequest{Self: "sb", Shards: []string{"sa", "sb"}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("misaddressed drain = %d, want 400", resp.StatusCode)
	}
}
