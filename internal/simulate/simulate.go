// Package simulate drives elicitation sessions against simulated users,
// reproducing the effectiveness study of §5.6: a user with a hidden
// ground-truth utility function is shown slates of recommended plus random
// packages and always clicks the one maximizing true utility (optionally
// with noise); the session ends when the recommended top-k list stabilizes.
package simulate

import (
	"fmt"
	"math/rand"
	"strings"

	"toppkg/internal/core"
	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
	"toppkg/internal/ranking"
)

// User is a simulated user with a hidden linear utility.
type User struct {
	// U is the ground-truth utility, unknown to the engine.
	U *feature.Utility
	// NoiseEps is the probability of a uniformly random click instead of
	// the utility-maximizing one (0 = perfectly rational).
	NoiseEps float64
}

// NewRandomUser draws a hidden weight vector uniformly from [-1,1]^d, the
// ground-truth model of §5.6.
func NewRandomUser(p *feature.Profile, rng *rand.Rand) *User {
	w := make([]float64, p.Dims())
	for i := range w {
		w[i] = rng.Float64()*2 - 1
	}
	u, err := feature.NewUtility(p, w)
	if err != nil {
		panic(err) // unreachable: dims match by construction
	}
	return &User{U: u}
}

// Choose returns the index of the slate package the user clicks: the true
// utility maximizer, or a random one with probability NoiseEps. Ties break
// toward the earlier slate position.
func (u *User) Choose(sp *feature.Space, slate []pkgspace.Package, rng *rand.Rand) int {
	if len(slate) == 0 {
		return -1
	}
	if u.NoiseEps > 0 && rng.Float64() < u.NoiseEps {
		return rng.Intn(len(slate))
	}
	best, bestU := 0, u.U.Score(pkgspace.Vector(sp, slate[0]))
	for i := 1; i < len(slate); i++ {
		if s := u.U.Score(pkgspace.Vector(sp, slate[i])); s > bestU {
			best, bestU = i, s
		}
	}
	return best
}

// SessionResult reports one elicitation session.
type SessionResult struct {
	// Clicks is the number of feedback rounds consumed before the
	// recommendation list stabilized (or MaxRounds was hit).
	Clicks int
	// Converged is true when the top-k list was identical for
	// StableRounds consecutive rounds.
	Converged bool
	// FinalTop is the recommended list at the end of the session.
	FinalTop []ranking.Ranked
	// TrueTopUtility and FinalTopUtility compare the user's true utility of
	// the best package versus the best recommended package (regret probe).
	TrueTopUtility, FinalTopUtility float64
}

// SessionConfig tunes RunSession.
type SessionConfig struct {
	// MaxRounds bounds the session length (default 30).
	MaxRounds int
	// StableRounds is how many consecutive identical top-k lists count as
	// convergence (default 2).
	StableRounds int
}

// RunSession runs one full elicitation loop: recommend, click, learn,
// repeat until the recommended list stops changing. The engine must be
// freshly configured; rng drives the user's (possible) noise.
func RunSession(e *core.Engine, u *User, cfg SessionConfig, rng *rand.Rand) (SessionResult, error) {
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 30
	}
	stable := cfg.StableRounds
	if stable <= 0 {
		stable = 2
	}
	var res SessionResult
	prevKey := ""
	run := 0
	for round := 0; round < maxRounds; round++ {
		slate, err := e.Recommend()
		if err != nil {
			return res, fmt.Errorf("simulate: round %d: %w", round, err)
		}
		key := listKey(slate.Recommended)
		if key == prevKey && key != "" {
			run++
			if run >= stable-1 {
				res.Converged = true
				res.FinalTop = slate.Recommended
				break
			}
		} else {
			run = 0
			prevKey = key
		}
		res.FinalTop = slate.Recommended
		pick := u.Choose(e.Space(), slate.All, rng)
		if pick < 0 {
			break
		}
		if err := e.Click(slate.All[pick], slate.All); err != nil {
			return res, fmt.Errorf("simulate: round %d click: %w", round, err)
		}
		res.Clicks++
	}
	// Regret probe: compare the user's true utility of the truly best
	// package against the best recommended one.
	if len(res.FinalTop) > 0 {
		best, err := e.TopKForWeights(u.U.W, 1)
		if err == nil && len(best) > 0 {
			res.TrueTopUtility = best[0].Utility
			res.FinalTopUtility = u.U.Score(pkgspace.Vector(e.Space(), res.FinalTop[0].Pkg))
		}
	}
	return res, nil
}

func listKey(rs []ranking.Ranked) string {
	parts := make([]string, len(rs))
	for i := range rs {
		parts[i] = rs[i].Pkg.Signature()
	}
	return strings.Join(parts, ";")
}
