package simulate

import (
	"math/rand"
	"testing"

	"toppkg/internal/core"
	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
)

func engine(t *testing.T, seed int64) *core.Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(50))
	e, err := core.New(core.Config{
		Items:          dataset.UNI(40, 3, rng),
		Profile:        feature.SimpleProfile(feature.AggSum, feature.AggAvg, feature.AggMax),
		MaxPackageSize: 3,
		K:              3,
		RandomCount:    3,
		SampleCount:    150,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewRandomUserWeightsInBox(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := feature.SimpleProfile(feature.AggSum, feature.AggAvg)
	for i := 0; i < 50; i++ {
		u := NewRandomUser(p, rng)
		for _, w := range u.U.W {
			if w < -1 || w > 1 {
				t.Fatalf("weight %g outside [-1,1]", w)
			}
		}
	}
}

func TestChoosePicksTrueMaximizer(t *testing.T) {
	e := engine(t, 3)
	rng := rand.New(rand.NewSource(2))
	u := NewRandomUser(e.Space().Profile, rng)
	slate := []pkgspace.Package{
		pkgspace.New(0), pkgspace.New(1), pkgspace.New(0, 1), pkgspace.New(2, 3),
	}
	pick := u.Choose(e.Space(), slate, rng)
	best := pick
	bestU := u.U.Score(pkgspace.Vector(e.Space(), slate[pick]))
	for i := range slate {
		if s := u.U.Score(pkgspace.Vector(e.Space(), slate[i])); s > bestU {
			best, bestU = i, s
		}
	}
	if pick != best {
		t.Errorf("Choose picked %d, true best is %d", pick, best)
	}
}

func TestChooseEmptySlate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := feature.SimpleProfile(feature.AggSum)
	u := NewRandomUser(p, rng)
	if got := u.Choose(nil, nil, rng); got != -1 {
		t.Errorf("empty slate pick = %d, want -1", got)
	}
}

func TestNoisyChooseDeviates(t *testing.T) {
	e := engine(t, 4)
	rng := rand.New(rand.NewSource(5))
	u := NewRandomUser(e.Space().Profile, rng)
	u.NoiseEps = 1 // always random
	slate := []pkgspace.Package{pkgspace.New(0), pkgspace.New(1), pkgspace.New(2)}
	counts := map[int]int{}
	for i := 0; i < 300; i++ {
		counts[u.Choose(e.Space(), slate, rng)]++
	}
	if len(counts) < 2 {
		t.Error("fully noisy user always picked the same package")
	}
}

// TestSessionConverges: the headline behaviour of §5.6 — a handful of
// clicks suffices for the recommendation list to stabilize.
func TestSessionConverges(t *testing.T) {
	e := engine(t, 6)
	rng := rand.New(rand.NewSource(7))
	u := NewRandomUser(e.Space().Profile, rng)
	res, err := RunSession(e, u, SessionConfig{MaxRounds: 25, StableRounds: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("session did not converge in 25 rounds (%d clicks)", res.Clicks)
	}
	if res.Clicks == 0 {
		t.Error("converged with zero clicks; suspicious")
	}
	if len(res.FinalTop) == 0 {
		t.Error("no final recommendation")
	}
}

// TestSessionRecommendationQuality: after convergence the recommended top
// package should be close in true utility to the true optimum.
func TestSessionRecommendationQuality(t *testing.T) {
	clicksTotal := 0
	regressions := 0
	for seed := int64(0); seed < 3; seed++ {
		e := engine(t, 20+seed)
		rng := rand.New(rand.NewSource(30 + seed))
		u := NewRandomUser(e.Space().Profile, rng)
		res, err := RunSession(e, u, SessionConfig{MaxRounds: 25}, rng)
		if err != nil {
			t.Fatal(err)
		}
		clicksTotal += res.Clicks
		if res.TrueTopUtility > 0 {
			gap := res.TrueTopUtility - res.FinalTopUtility
			if gap > 0.35*absf(res.TrueTopUtility)+0.05 {
				regressions++
				t.Logf("seed %d: true %g vs recommended %g", seed, res.TrueTopUtility, res.FinalTopUtility)
			}
		}
	}
	if regressions > 1 {
		t.Errorf("%d of 3 sessions ended far from the optimum", regressions)
	}
	t.Logf("avg clicks to convergence: %.1f", float64(clicksTotal)/3)
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestSessionMaxRoundsRespected(t *testing.T) {
	e := engine(t, 8)
	rng := rand.New(rand.NewSource(9))
	u := NewRandomUser(e.Space().Profile, rng)
	u.NoiseEps = 1 // pure noise: unlikely to converge
	res, err := RunSession(e, u, SessionConfig{MaxRounds: 3, StableRounds: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clicks > 3 {
		t.Errorf("clicks = %d exceeds MaxRounds", res.Clicks)
	}
}
