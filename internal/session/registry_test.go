package session

import (
	"path/filepath"
	"testing"
)

func TestOpenStore(t *testing.T) {
	if s, err := OpenStore(""); err != nil || s != nil {
		t.Fatalf("OpenStore(\"\") = %v, %v; want nil, nil", s, err)
	}
	if s, err := OpenStore("mem:"); err != nil {
		t.Fatal(err)
	} else if _, ok := s.(*MemStore); !ok {
		t.Fatalf("mem: opened %T", s)
	}
	if _, err := OpenStore("mem:extra"); err == nil {
		t.Fatal("mem: with an argument should be rejected")
	}
	dir := t.TempDir()
	if s, err := OpenStore("dir:" + dir); err != nil {
		t.Fatal(err)
	} else if _, ok := s.(*DirStore); !ok {
		t.Fatalf("dir: opened %T", s)
	}
	if _, err := OpenStore("dir:"); err == nil {
		t.Fatal("dir: without a path should be rejected")
	}
	// A bare path is DirStore shorthand — the old -snapshots ergonomics.
	bare := filepath.Join(dir, "bare")
	if s, err := OpenStore(bare); err != nil {
		t.Fatal(err)
	} else if _, ok := s.(*DirStore); !ok {
		t.Fatalf("bare path opened %T", s)
	}
	schemes := StoreSchemes()
	if len(schemes) < 2 {
		t.Fatalf("StoreSchemes() = %v, want at least dir and mem", schemes)
	}
}
