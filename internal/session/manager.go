// Package session manages many concurrent elicitation sessions in one
// process — the serving layer between the paper's per-user engine (§2.2)
// and the HTTP front end. A Manager holds per-session core.Engine
// instances keyed by session ID, lazily created from one shared immutable
// feature.Space/search.Index (built once per catalogue), serialized by
// per-session mutexes rather than a global lock, bounded by an LRU with
// snapshot-on-evict and restore-on-miss through a Store.
//
// Locking protocol: the manager mutex guards only O(1) bookkeeping (the
// ID table, the LRU list, counters) and is never held across engine work
// or store I/O. Engine work runs under the session's own mutex, so
// different sessions recommend and learn fully in parallel. An evicted
// session stays in the table until its snapshot is durably saved, which
// makes evict-save and miss-restore of the same ID strictly ordered.
//
// Eviction is asynchronous: the miss that pushes a victim over capacity
// only unlinks it from the LRU and hands it to a background writer, so a
// new session's first request is never blocked behind an unrelated
// session's snapshot write. The ordering guarantee above is untouched —
// the victim keeps its table entry and its own mutex until the writer has
// saved it, so a concurrent request for the victim's ID either resumes the
// still-resident session (and its later snapshot includes that work) or
// queues behind the in-flight save and restores the fresh snapshot. When
// the writer's queue is full the evicting request falls back to saving
// synchronously (backpressure), so residency stays bounded.
package session

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"toppkg/internal/core"
	"toppkg/internal/ranking"
)

// DefaultCapacity bounds resident sessions when Config.Capacity is zero.
const DefaultCapacity = 1024

// DefaultEvictWorkers is the background snapshot-writer count when
// Config.EvictWorkers is zero.
const DefaultEvictWorkers = 2

// Config configures a Manager.
type Config struct {
	// Shared is the catalogue-wide engine factory (required).
	Shared *core.Shared
	// Capacity is the maximum number of resident sessions before LRU
	// eviction (default DefaultCapacity).
	Capacity int
	// Store persists evicted sessions and revives them on their next
	// request. Nil means evicted sessions lose their learned state.
	Store Store
	// Seeds derives a per-session engine seed from the session ID
	// (default SeedFor).
	Seeds func(id string) int64
	// EvictWorkers is the number of background goroutines writing eviction
	// snapshots (default DefaultEvictWorkers). Negative disables the
	// background writer: evictions run synchronously on the requesting
	// goroutine, the pre-async behavior.
	EvictWorkers int
}

// Stats are the manager's cumulative counters, all monotone except Live.
type Stats struct {
	// Live is the number of resident sessions.
	Live int `json:"live"`
	// Capacity is the configured residency bound.
	Capacity int `json:"capacity"`
	// Created counts sessions started fresh (no snapshot found).
	Created int64 `json:"created"`
	// Restored counts sessions revived from a snapshot.
	Restored int64 `json:"restored"`
	// Evicted counts LRU evictions.
	Evicted int64 `json:"evicted"`
	// Hits counts operations that found their session resident.
	Hits int64 `json:"hits"`
	// Misses counts operations that had to create or restore.
	Misses int64 `json:"misses"`
	// SaveErrors counts snapshots lost because Store.Save failed.
	SaveErrors int64 `json:"save_errors"`
	// RestoreFailures counts sessions started fresh because their snapshot
	// existed but could not be restored (corrupt, or incompatible with the
	// current catalogue epoch); the failed snapshot is dropped.
	RestoreFailures int64 `json:"restore_failures"`
	// RestoreDroppedItems counts item occurrences dropped from restored
	// preferences because the item had vanished from the live catalogue
	// between evict-save and miss-restore; RestoreDroppedPrefs counts
	// preferences dropped entirely during those remaps. Nonzero values are
	// silent preference loss under catalogue churn — visible here (and in
	// /healthz) rather than only inside individual sessions.
	RestoreDroppedItems int64 `json:"restore_dropped_items"`
	RestoreDroppedPrefs int64 `json:"restore_dropped_prefs"`
	// EvictQueue is the number of evictions currently queued on or being
	// written by the background writer (not monotone).
	EvictQueue int `json:"evict_queue"`
	// EvictSyncFallbacks counts evictions that ran synchronously on the
	// requesting goroutine because the writer's queue was full (or the
	// writer is disabled/closed).
	EvictSyncFallbacks int64 `json:"evict_sync_fallbacks"`
}

// Manager serves many independent sessions over one shared catalogue.
type Manager struct {
	shared   *core.Shared
	capacity int
	store    Store
	seeds    func(string) int64

	mu           sync.Mutex // guards table, lru, stats; never held across engine work
	table        map[string]*session
	lru          *list.List // of *session; front = most recently acquired
	created      int64
	restored     int64
	evicted      int64
	hits         int64
	misses       int64
	saveErrs     int64
	restoreFails int64
	restoreDropI int64
	restoreDropP int64

	// Background eviction: victims queue on evictq; pending counts queued
	// plus in-flight saves; evictDone signals pending reaching zero.
	// closed stops new enqueues once the queue is closed.
	evictq    chan *session
	pending   int
	evictDone *sync.Cond
	closed    bool
	syncFalls int64
}

// NewManager validates cfg and returns an empty manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Shared == nil {
		return nil, errors.New("session: Config.Shared is required")
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("session: capacity %d < 1", cfg.Capacity)
	}
	if cfg.Seeds == nil {
		cfg.Seeds = SeedFor
	}
	if cfg.EvictWorkers == 0 {
		cfg.EvictWorkers = DefaultEvictWorkers
	}
	m := &Manager{
		shared:   cfg.Shared,
		capacity: cfg.Capacity,
		store:    cfg.Store,
		seeds:    cfg.Seeds,
		table:    make(map[string]*session),
		lru:      list.New(),
	}
	m.evictDone = sync.NewCond(&m.mu)
	if cfg.EvictWorkers > 0 {
		// The queue bound matches capacity: under a miss storm faster than
		// the writers, excess victims fall back to synchronous eviction
		// rather than growing residency without bound.
		m.evictq = make(chan *session, cfg.Capacity)
		for i := 0; i < cfg.EvictWorkers; i++ {
			go m.evictWorker()
		}
	}
	return m, nil
}

// Do runs fn with exclusive access to the session's engine, creating or
// restoring the session if it is not resident. fn must not retain the
// engine past its return, and must not call back into the manager (the
// session's mutex is held).
func (m *Manager) Do(id string, fn func(*core.Engine) error) error {
	for {
		s, err := m.acquire(id)
		if err != nil {
			return err
		}
		if s.gone {
			// Lost the race with an eviction or deletion between the table
			// lookup and the session lock: the table no longer maps to s,
			// so the next attempt creates or restores a fresh session.
			s.mu.Unlock()
			continue
		}
		err = fn(s.eng)
		s.feedback.Store(int64(s.eng.FeedbackCount()))
		s.mu.Unlock()
		return err
	}
}

// acquire returns the session for id with its mutex held. Callers must
// check s.gone before using s.eng and must unlock s.mu.
func (m *Manager) acquire(id string) (*session, error) {
	if !ValidID(id) {
		return nil, fmt.Errorf("%w: %q", ErrBadID, id)
	}
	m.mu.Lock()
	if s, ok := m.table[id]; ok {
		// MoveToFront is a no-op for a session an evictor has already
		// unlinked; such a session is gone-flagged under its own mutex and
		// the caller retries.
		m.lru.MoveToFront(s.elem)
		s.lastUsed = time.Now()
		m.hits++
		m.mu.Unlock()
		s.mu.Lock()
		return s, nil
	}
	// Miss: install a locked placeholder so concurrent requests for the
	// same ID queue on it instead of racing the (possibly slow) restore.
	s := &session{id: id, lastUsed: time.Now()}
	s.mu.Lock() // uncontended: s is not yet published
	s.elem = m.lru.PushFront(s)
	m.table[id] = s
	m.misses++
	victims := m.unlinkVictimsLocked()
	m.mu.Unlock()
	m.enqueueEvicts(victims)
	eng, restored, err := m.newEngine(id)
	if err != nil {
		s.gone = true
		m.mu.Lock()
		if m.table[id] == s {
			delete(m.table, id)
		}
		m.lru.Remove(s.elem) // no-op if an evictor already unlinked it
		m.mu.Unlock()
		s.mu.Unlock()
		return nil, err
	}
	s.eng = eng
	s.feedback.Store(int64(eng.FeedbackCount()))
	m.mu.Lock()
	if restored {
		m.restored++
	} else {
		m.created++
	}
	m.mu.Unlock()
	return s, nil
}

// unlinkVictimsLocked pops LRU-back sessions beyond capacity off the list
// while leaving them in the table; evict finishes the job after their
// snapshots are saved. Requires m.mu.
func (m *Manager) unlinkVictimsLocked() []*session {
	var victims []*session
	for m.lru.Len() > m.capacity {
		back := m.lru.Back()
		if back == nil {
			break
		}
		v := m.lru.Remove(back).(*session)
		victims = append(victims, v)
	}
	return victims
}

// enqueueEvicts hands victims to the background writer so the evicting
// request is not blocked behind another session's snapshot write. When the
// writer is disabled, closed, or its queue is full, the eviction runs
// synchronously on the caller (backpressure): slower for this one request,
// but residency stays bounded.
func (m *Manager) enqueueEvicts(victims []*session) {
	for _, v := range victims {
		m.mu.Lock()
		if m.evictq == nil || m.closed {
			m.syncFalls++
			m.mu.Unlock()
			m.evict(v)
			continue
		}
		select {
		case m.evictq <- v: // non-blocking; safe under m.mu
			m.pending++
			m.mu.Unlock()
		default:
			m.syncFalls++
			m.mu.Unlock()
			m.evict(v)
		}
	}
}

// evictWorker drains the eviction queue until Close.
func (m *Manager) evictWorker() {
	for v := range m.evictq {
		m.evict(v)
		m.mu.Lock()
		m.pending--
		if m.pending == 0 {
			m.evictDone.Broadcast()
		}
		m.mu.Unlock()
	}
}

// Flush blocks until every eviction handed to the background writer has
// finished saving. It does not fence evictions triggered concurrently with
// the call; callers wanting a complete flush stop traffic first.
func (m *Manager) Flush() {
	m.mu.Lock()
	for m.pending > 0 {
		m.evictDone.Wait()
	}
	m.mu.Unlock()
}

// Close drains the background writer and stops its goroutines. The manager
// remains usable afterwards, evicting synchronously. Safe to call twice.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed || m.evictq == nil {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.evictq) // senders hold m.mu and check closed first
	m.mu.Unlock()
	m.Flush()
}

// evict snapshots v (if a store is configured) and removes it from the
// table, reporting whether this call was the one that evicted it (false
// when v was already gone — deleted or evicted by a racing caller). The
// session mutex is held across the save, so operations queued on v finish
// first and their state reaches the snapshot, and the table entry
// outlives the save so a concurrent miss cannot load a stale file.
func (m *Manager) evict(v *session) bool {
	v.mu.Lock()
	evicted, saveFailed := false, false
	if !v.gone {
		v.gone = true
		evicted = true
		if m.store != nil && v.eng != nil {
			// Sessions without feedback are not worth a file: the sample
			// pool is redrawn identically from the ID-derived seed, so
			// restore-on-miss of an absent snapshot reproduces the same
			// state, and skipping the save keeps a scan of random session
			// IDs from growing the store without bound.
			if snap := v.eng.Snapshot(); len(snap.Preferences) > 0 {
				if err := m.store.Save(v.id, snap); err != nil {
					saveFailed = true
				}
			} else if _, err := m.store.Delete(v.id); err != nil {
				// A session reset to zero feedback must not resurrect from
				// an older snapshot, so the stale file goes too.
				saveFailed = true
			}
		}
	}
	m.mu.Lock()
	if evicted {
		m.evicted++
	}
	if saveFailed {
		m.saveErrs++
	}
	if m.table[v.id] == v {
		delete(m.table, v.id)
	}
	m.mu.Unlock()
	v.mu.Unlock()
	return evicted
}

// newEngine builds the engine for a fresh session, restoring its learned
// state from the store when a snapshot exists.
func (m *Manager) newEngine(id string) (eng *core.Engine, restored bool, err error) {
	eng, err = m.shared.NewEngine(m.seeds(id))
	if err != nil {
		return nil, false, err
	}
	if m.store == nil {
		return eng, false, nil
	}
	snap, err := m.store.Load(id)
	if errors.Is(err, ErrNoSnapshot) {
		return eng, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	if err := eng.Restore(snap); err != nil {
		// An unrestorable snapshot (corrupt file, or item IDs out of range
		// after a live-catalogue shrink) must not brick the session: every
		// request would re-attempt the same restore and 500 forever. Drop
		// the snapshot (so the failure is not retried), count the loss,
		// and start the session fresh.
		m.mu.Lock()
		m.restoreFails++
		m.mu.Unlock()
		_, _ = m.store.Delete(id)
		if fresh, ferr := m.shared.NewEngine(m.seeds(id)); ferr == nil {
			return fresh, false, nil
		}
		return nil, false, fmt.Errorf("session: restoring %q: %w", id, err)
	}
	// Fold what churn cost this remap into the process-wide counters
	// operators watch.
	if di, dp := eng.LastRestoreDrops(); di > 0 || dp > 0 {
		m.mu.Lock()
		m.restoreDropI += int64(di)
		m.restoreDropP += int64(dp)
		m.mu.Unlock()
	}
	return eng, true, nil
}

// Delete removes the session and its snapshot. It returns ErrNotFound if
// the session is neither resident nor snapshotted.
func (m *Manager) Delete(id string) error {
	if !ValidID(id) {
		return fmt.Errorf("%w: %q", ErrBadID, id)
	}
	m.mu.Lock()
	s := m.table[id]
	if s != nil {
		m.lru.Remove(s.elem) // no-op if an evictor already unlinked it
	}
	m.mu.Unlock()
	live, removed := false, false
	var storeErr error
	if s != nil {
		// The session lock waits out any in-flight operation or eviction
		// save, and the store delete runs under it while the table entry
		// still exists — so a concurrent miss for this ID queues behind
		// the lock instead of racing the file removal, and cannot restore
		// (and later re-save) the state being deleted.
		s.mu.Lock()
		if !s.gone {
			s.gone = true
			live = true
		}
		if m.store != nil {
			removed, storeErr = m.store.Delete(id)
		}
		m.mu.Lock()
		if m.table[id] == s {
			delete(m.table, id)
		}
		m.mu.Unlock()
		s.mu.Unlock()
	} else if m.store != nil {
		removed, storeErr = m.store.Delete(id)
	}
	if storeErr != nil {
		return storeErr
	}
	if !live && !removed {
		return ErrNotFound
	}
	return nil
}

// List describes the resident sessions, sorted by ID. It reads only the
// manager's bookkeeping and each session's mirrored feedback counter, so
// it never blocks behind a session's in-flight engine work.
func (m *Manager) List() []Info {
	m.mu.Lock()
	infos := make([]Info, 0, len(m.table))
	for _, s := range m.table {
		infos = append(infos, Info{
			ID:       s.id,
			LastUsed: s.lastUsed,
			Feedback: int(s.feedback.Load()),
		})
	}
	m.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}

// Shutdown evicts every resident session, flushing learned state to the
// store — the graceful-shutdown path, so state does not only survive via
// LRU pressure. It also waits out any snapshot writes still in flight on
// the background writer. The manager remains usable (and empty)
// afterwards.
func (m *Manager) Shutdown() {
	m.mu.Lock()
	var victims []*session
	for m.lru.Len() > 0 {
		victims = append(victims, m.lru.Remove(m.lru.Back()).(*session))
	}
	m.mu.Unlock()
	for _, v := range victims {
		m.evict(v)
	}
	m.Flush()
}

// FlushMatching snapshots-and-evicts every resident session whose ID
// satisfies pred, returning how many sessions it evicted. It is the
// migration primitive behind shard rebalancing: a drain request turns a
// ring membership into a predicate ("IDs I no longer own") and the
// flushed snapshots are restored by the new owner on each session's next
// request.
//
// Evictions run synchronously on the caller so that when FlushMatching
// returns, every matching session's state is durably in the store — a
// rebalance must not swap the ring while snapshots are still in flight.
// Each eviction holds the session's own mutex, so in-flight operations on
// a matching session finish first and their state reaches the snapshot;
// sessions restored concurrently (racing a drain) are safe — the evict
// either catches them (and they restore again on next use) or sees them
// gone-flagged and does nothing.
func (m *Manager) FlushMatching(pred func(id string) bool) int {
	m.mu.Lock()
	var victims []*session
	for id, s := range m.table {
		if pred(id) {
			// No-op for sessions an evictor already unlinked; evict below is
			// idempotent via the gone flag for those.
			m.lru.Remove(s.elem)
			victims = append(victims, s)
		}
	}
	m.mu.Unlock()
	n := 0
	for _, v := range victims {
		if m.evict(v) {
			n++
		}
	}
	return n
}

// Shared exposes the catalogue-wide engine factory the manager serves
// from (e.g. for epoch reporting in health checks).
func (m *Manager) Shared() *core.Shared { return m.shared }

// SearchCacheStats reports the shared Top-k-Pkg result cache's counters —
// the cache is per-catalogue, so one set of counters covers every session
// this manager serves. Zero when the catalogue disabled caching.
func (m *Manager) SearchCacheStats() ranking.CacheStats {
	if c := m.shared.SearchCache(); c != nil {
		return c.Stats()
	}
	return ranking.CacheStats{}
}

// Len reports the number of resident sessions (including any mid-evict).
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.table)
}

// Stats returns a point-in-time copy of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Live:                len(m.table),
		Capacity:            m.capacity,
		Created:             m.created,
		Restored:            m.restored,
		Evicted:             m.evicted,
		Hits:                m.hits,
		Misses:              m.misses,
		SaveErrors:          m.saveErrs,
		RestoreFailures:     m.restoreFails,
		RestoreDroppedItems: m.restoreDropI,
		RestoreDroppedPrefs: m.restoreDropP,
		EvictQueue:          m.pending,
		EvictSyncFallbacks:  m.syncFalls,
	}
}
