package session

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"toppkg/internal/core"
)

// TestFlushMatching checks the migration primitive's contract: only
// matching sessions are evicted, their state lands in the store before
// the call returns, and a later Do restores it.
func TestFlushMatching(t *testing.T) {
	store := NewMemStore()
	m := testManager(t, 64, store)
	ids := []string{"u0", "u1", "u2", "u3"}
	for i, id := range ids {
		feedbackN(t, m, id, i+1)
	}
	even := func(id string) bool {
		n, _ := strconv.Atoi(id[1:])
		return n%2 == 0
	}
	if n := m.FlushMatching(even); n != 2 {
		t.Fatalf("FlushMatching evicted %d sessions, want 2", n)
	}
	if got := m.Len(); got != 2 {
		t.Fatalf("%d sessions resident after flush, want 2", got)
	}
	// Flushed state must be durable the moment FlushMatching returns —
	// the gateway swaps the ring on that promise.
	for _, id := range []string{"u0", "u2"} {
		if _, err := store.Load(id); err != nil {
			t.Fatalf("no snapshot for flushed session %s: %v", id, err)
		}
	}
	for i, id := range ids {
		want := i + 1
		err := m.Do(id, func(eng *core.Engine) error {
			if got := eng.FeedbackCount(); got != want {
				t.Errorf("session %s has %d feedback after flush cycle, want %d", id, got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Restored != 2 {
		t.Errorf("Restored = %d, want 2 (the flushed pair)", st.Restored)
	}
	if st.SaveErrors != 0 || st.RestoreFailures != 0 {
		t.Errorf("flush cycle lost state: %+v", st)
	}

	// Flushing everything (the leaving-shard predicate) empties the table;
	// re-flushing is a no-op, not a double count.
	if n := m.FlushMatching(func(string) bool { return true }); n != 4 {
		t.Fatalf("flush-all evicted %d, want 4", n)
	}
	if n := m.FlushMatching(func(string) bool { return true }); n != 0 {
		t.Fatalf("second flush-all evicted %d, want 0", n)
	}
}

// TestFlushMatchingRaceConcurrentRestores hammers FlushMatching against
// concurrent Do traffic on the same IDs — the exact shape of a rebalance
// under load, where a drained session's next request restores it while
// the drain is still sweeping. The invariant: whatever interleaving
// happens, no session's learned feedback is ever lost and no save or
// restore fails. Run under -race this also proves the locking protocol.
func TestFlushMatchingRaceConcurrentRestores(t *testing.T) {
	store := NewMemStore()
	m := testManager(t, 64, store)
	const sessions = 8
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("r%02d", i)
		feedbackN(t, m, ids[i], 1)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := m.Do(id, func(eng *core.Engine) error {
					if got := eng.FeedbackCount(); got != 1 {
						t.Errorf("session %s observed %d feedback mid-churn, want 1", id, got)
					}
					return nil
				})
				if err != nil {
					t.Errorf("Do(%s): %v", id, err)
					return
				}
			}
		}(id)
	}
	evenPred := func(id string) bool {
		n, _ := strconv.Atoi(id[1:])
		return n%2 == 0
	}
	oddPred := func(id string) bool { return !evenPred(id) }
	for i := 0; i < 150; i++ {
		if i%2 == 0 {
			m.FlushMatching(evenPred)
		} else {
			m.FlushMatching(oddPred)
		}
	}
	close(stop)
	wg.Wait()
	for _, id := range ids {
		err := m.Do(id, func(eng *core.Engine) error {
			if got := eng.FeedbackCount(); got != 1 {
				t.Errorf("session %s ended with %d feedback, want 1", id, got)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.SaveErrors != 0 || st.RestoreFailures != 0 {
		t.Fatalf("flush/restore churn lost state: %+v", st)
	}
}
