package session

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"toppkg/internal/core"
)

func sampleSnapshot() *core.Snapshot {
	return &core.Snapshot{
		Version: 1,
		Preferences: []core.PreferencePair{
			{Winner: []int{1, 2}, Loser: []int{3}},
		},
		Samples: [][]float64{{0.1, -0.2}, {0.3, 0.4}},
		Weights: []float64{1, 1},
		Stats:   core.Stats{Feedback: 1},
	}
}

func testStores(t *testing.T) map[string]Store {
	t.Helper()
	ds, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"mem": NewMemStore(), "dir": ds}
}

func TestStoreRoundTrip(t *testing.T) {
	for name, st := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := st.Load("alice"); !errors.Is(err, ErrNoSnapshot) {
				t.Fatalf("Load missing = %v, want ErrNoSnapshot", err)
			}
			want := sampleSnapshot()
			if err := st.Save("alice", want); err != nil {
				t.Fatal(err)
			}
			got, err := st.Load("alice")
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Preferences) != 1 || len(got.Samples) != 2 || got.Stats.Feedback != 1 {
				t.Errorf("round trip mangled snapshot: %+v", got)
			}
			removed, err := st.Delete("alice")
			if err != nil || !removed {
				t.Fatalf("Delete existing = (%v, %v), want (true, nil)", removed, err)
			}
			if _, err := st.Load("alice"); !errors.Is(err, ErrNoSnapshot) {
				t.Errorf("Load after delete = %v, want ErrNoSnapshot", err)
			}
			removed, err = st.Delete("alice")
			if err != nil || removed {
				t.Errorf("deleting missing id = (%v, %v), want (false, nil)", removed, err)
			}
		})
	}
}

func TestStoreOverwrite(t *testing.T) {
	for name, st := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			first := sampleSnapshot()
			if err := st.Save("a", first); err != nil {
				t.Fatal(err)
			}
			second := sampleSnapshot()
			second.Stats.Feedback = 9
			if err := st.Save("a", second); err != nil {
				t.Fatal(err)
			}
			got, err := st.Load("a")
			if err != nil {
				t.Fatal(err)
			}
			if got.Stats.Feedback != 9 {
				t.Errorf("overwrite lost: Feedback = %d", got.Stats.Feedback)
			}
		})
	}
}

func TestDirStoreRejectsUnsafeIDs(t *testing.T) {
	ds, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"../escape", "a/b", ".dot", ""} {
		if err := ds.Save(id, sampleSnapshot()); !errors.Is(err, ErrBadID) {
			t.Errorf("Save(%q) = %v, want ErrBadID", id, err)
		}
		if _, err := ds.Load(id); !errors.Is(err, ErrBadID) {
			t.Errorf("Load(%q) = %v, want ErrBadID", id, err)
		}
		if _, err := ds.Delete(id); !errors.Is(err, ErrBadID) {
			t.Errorf("Delete(%q) = %v, want ErrBadID", id, err)
		}
	}
}

func TestDirStoreRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Load("bad"); err == nil || errors.Is(err, ErrNoSnapshot) {
		t.Errorf("corrupt snapshot load = %v, want decode error", err)
	}
}

func TestDirStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Save("alice", sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	ds2, err := NewDirStore(dir) // same directory, fresh handle: durability
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds2.Load("alice")
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Feedback != 1 {
		t.Errorf("reopened snapshot: %+v", got)
	}
}

func TestNewDirStoreSweepsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	// Simulate a crash mid-Save: old orphaned temp files next to a fresh
	// one (possibly another process's in-flight Save) and an unrelated
	// dotfile; only the old orphans may be swept.
	stale := time.Now().Add(-2 * sweepMinAge)
	for _, name := range []string{".alice.tmp123456", ".bob.tmp7"} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(p, stale, stale); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, ".carol.tmp9"), []byte("in-flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Old files the sweep must NOT touch: a plain dotfile, and dotfiles
	// that contain ".tmp" but do not match Save's temp-name shape.
	for _, name := range []string{".keepme", ".notes.tmpl", ".config.tmp.bak"} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(p, stale, stale); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Save("alice", sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	for _, leftover := range []string{".alice.tmp123456", ".bob.tmp7"} {
		if _, err := os.Stat(filepath.Join(dir, leftover)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("orphaned temp file %s survived NewDirStore (dir: %v)", leftover, names)
		}
	}
	for _, keep := range []string{".keepme", ".notes.tmpl", ".config.tmp.bak"} {
		if _, err := os.Stat(filepath.Join(dir, keep)); err != nil {
			t.Errorf("sweep removed unrelated file %s: %v (dir: %v)", keep, err, names)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, ".carol.tmp9")); err != nil {
		t.Errorf("sweep removed a fresh temp file (could be another process's in-flight save): %v", err)
	}
	if _, err := ds.Load("alice"); err != nil {
		t.Errorf("snapshot unusable after sweep+save: %v", err)
	}
}
