// Per-session state and identity rules. A Session pairs one core.Engine
// with its own mutex; the engine is single-threaded by design (§2.2's
// per-user elicitation loop), so the mutex serializes one user's requests
// while different sessions proceed in parallel.
package session

import (
	"container/list"
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"toppkg/internal/core"
)

// ErrBadID is returned for session IDs failing ValidID.
var ErrBadID = errors.New("session: invalid session id")

// ErrNotFound is returned when an operation names a session that is
// neither resident nor snapshotted.
var ErrNotFound = errors.New("session: not found")

// MaxIDLen is the maximum session ID length accepted by ValidID.
const MaxIDLen = 64

// ValidID reports whether id is acceptable as a session key: 1..MaxIDLen
// characters from [A-Za-z0-9._-], not starting with a dot. IDs double as
// snapshot file names, so the rule is deliberately path-safe.
func ValidID(id string) bool {
	if len(id) == 0 || len(id) > MaxIDLen || id[0] == '.' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// SeedFor derives a deterministic, non-zero engine seed from a session ID
// (FNV-1a), so a session restarted from scratch replays the same random
// stream. The manager's Config.Seeds hook overrides it.
func SeedFor(id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	s := int64(h.Sum64())
	if s == 0 {
		s = 1
	}
	return s
}

// session is one resident elicitation session. The mutex guards eng and
// gone; elem and lastUsed are guarded by the manager's mutex. feedback
// mirrors eng's preference count so listings never block behind a
// session's in-flight engine work.
type session struct {
	id string

	mu   sync.Mutex
	eng  *core.Engine
	gone bool // evicted or deleted: eng must not be used, caller retries

	feedback atomic.Int64

	elem     *list.Element
	lastUsed time.Time
}

// Info describes one resident session for listings.
type Info struct {
	// ID is the session key.
	ID string `json:"id"`
	// LastUsed is when the session last served a request.
	LastUsed time.Time `json:"last_used"`
	// Feedback is the session's recorded preference count.
	Feedback int `json:"feedback"`
}
