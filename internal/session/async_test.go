package session

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"toppkg/internal/core"
)

// gateStore wraps a MemStore so tests can hold snapshot writes in flight:
// every Save announces itself on started, then blocks until release is
// closed. Load/Delete pass straight through.
type gateStore struct {
	*MemStore
	started chan string
	release chan struct{}
}

func newGateStore() *gateStore {
	return &gateStore{
		MemStore: NewMemStore(),
		started:  make(chan string, 16),
		release:  make(chan struct{}),
	}
}

func (g *gateStore) Save(id string, s *core.Snapshot) error {
	g.started <- id
	<-g.release
	return g.MemStore.Save(id, s)
}

// waitSaveStart fails the test if no Save begins within the deadline.
func (g *gateStore) waitSaveStart(t *testing.T, want string) {
	t.Helper()
	select {
	case id := <-g.started:
		if id != want {
			t.Fatalf("save started for %q, want %q", id, want)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("no snapshot write started for %q", want)
	}
}

// TestMissNotBlockedBySnapshotWrite is the async-eviction acceptance test:
// with a store whose writes hang, a brand-new session's first request must
// complete while the victim's snapshot write is still in flight. The old
// synchronous evict ran the save on the new session's miss path, so this
// bounds exactly the latency the ROADMAP item called out.
func TestMissNotBlockedBySnapshotWrite(t *testing.T) {
	store := newGateStore()
	m, err := NewManager(Config{Shared: testShared(t), Capacity: 1, Store: store, EvictWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	feedbackN(t, m, "alice", 1) // learned state, so eviction will Save
	feedbackN(t, m, "bob", 1)   // misses: unlinks alice to the background writer
	store.waitSaveStart(t, "alice")

	// Alice's save is now blocked in the store. A new session's first
	// request must not queue behind it.
	done := make(chan error, 1)
	go func() {
		done <- m.Do("carol", func(*core.Engine) error { return nil })
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("carol's first request: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("new session's first request blocked behind another session's snapshot write")
	}
	if st := m.Stats(); st.EvictQueue == 0 {
		t.Errorf("EvictQueue = 0 while a save is in flight: %+v", st)
	}

	close(store.release)
	m.Shutdown()
	if _, err := store.Load("alice"); err != nil {
		t.Errorf("alice's snapshot lost: %v", err)
	}
	m.Close()
}

// TestRestoreWhileSnapshotInFlight: a request for the victim's own ID
// during its in-flight snapshot write must wait the save out and then
// restore the fresh snapshot — the evict-save vs miss-restore ordering the
// manager guarantees.
func TestRestoreWhileSnapshotInFlight(t *testing.T) {
	store := newGateStore()
	m, err := NewManager(Config{Shared: testShared(t), Capacity: 1, Store: store, EvictWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	feedbackN(t, m, "alice", 2)
	feedbackN(t, m, "bob", 1) // alice → background writer
	store.waitSaveStart(t, "alice")

	got := make(chan int, 1)
	fail := make(chan error, 1)
	go func() {
		err := m.Do("alice", func(eng *core.Engine) error {
			got <- eng.Stats().Feedback
			return nil
		})
		if err != nil {
			fail <- err
		}
	}()
	// The request must be parked behind the in-flight save, not served
	// from a half-evicted session: nothing may arrive before the release.
	select {
	case n := <-got:
		t.Fatalf("request for mid-evict session completed (feedback %d) before its snapshot write finished", n)
	case err := <-fail:
		t.Fatal(err)
	case <-time.After(100 * time.Millisecond):
	}
	close(store.release)
	select {
	case n := <-got:
		if n != 2 {
			t.Errorf("restored feedback = %d, want 2 (stale or lost snapshot)", n)
		}
	case err := <-fail:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("request never completed after the save released")
	}
	if st := m.Stats(); st.Restored != 1 {
		t.Errorf("Restored = %d, want 1: %+v", st.Restored, st)
	}
	m.Close()
}

// TestShutdownWaitsForQueuedEvictions: graceful shutdown must not return
// while background snapshot writes are still in flight.
func TestShutdownWaitsForQueuedEvictions(t *testing.T) {
	store := newGateStore()
	m, err := NewManager(Config{Shared: testShared(t), Capacity: 1, Store: store, EvictWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	feedbackN(t, m, "alice", 1)
	feedbackN(t, m, "bob", 1)
	store.waitSaveStart(t, "alice")

	done := make(chan struct{})
	go func() {
		m.Shutdown()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Shutdown returned while a snapshot write was still in flight")
	case <-time.After(100 * time.Millisecond):
	}
	close(store.release)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung after the save released")
	}
	for _, id := range []string{"alice", "bob"} {
		if _, err := store.Load(id); err != nil {
			t.Errorf("%s's snapshot missing after Shutdown: %v", id, err)
		}
	}
	m.Close()
}

// TestDeleteWhileEvictQueued: deleting a session already handed to the
// background writer must win — no snapshot may survive, whether the delete
// beats the writer to the session lock or not.
func TestDeleteWhileEvictQueued(t *testing.T) {
	store := newGateStore()
	m, err := NewManager(Config{Shared: testShared(t), Capacity: 1, Store: store, EvictWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	feedbackN(t, m, "alice", 1)
	feedbackN(t, m, "bob", 1) // alice queued
	store.waitSaveStart(t, "alice")
	done := make(chan error, 1)
	go func() { done <- m.Delete("alice") }() // queues behind the in-flight save
	close(store.release)
	if err := <-done; err != nil {
		t.Fatalf("Delete: %v", err)
	}
	m.Flush()
	if _, err := store.Load("alice"); !errors.Is(err, ErrNoSnapshot) {
		t.Errorf("deleted session's snapshot survived: %v", err)
	}
	if err := m.Do("alice", func(eng *core.Engine) error {
		if n := eng.Stats().Feedback; n != 0 {
			return fmt.Errorf("deleted session resurrected with %d feedbacks", n)
		}
		return nil
	}); err != nil {
		t.Error(err)
	}
	m.Close()
}

// TestCloseFallsBackToSyncEviction: after Close, evictions still happen —
// synchronously on the evicting request — so residency stays bounded.
func TestCloseFallsBackToSyncEviction(t *testing.T) {
	store := NewMemStore()
	m, err := NewManager(Config{Shared: testShared(t), Capacity: 1, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	feedbackN(t, m, "alice", 1)
	feedbackN(t, m, "bob", 1) // must evict alice synchronously
	if store.Len() != 1 {
		t.Fatalf("store holds %d snapshots after sync-fallback eviction", store.Len())
	}
	if st := m.Stats(); st.EvictSyncFallbacks == 0 || st.Evicted == 0 {
		t.Errorf("fallback counters: %+v", st)
	}
}

// TestSyncEvictWorkersDisabled: EvictWorkers < 0 restores the fully
// synchronous pre-async behavior.
func TestSyncEvictWorkersDisabled(t *testing.T) {
	store := NewMemStore()
	m, err := NewManager(Config{Shared: testShared(t), Capacity: 1, Store: store, EvictWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	feedbackN(t, m, "alice", 1)
	feedbackN(t, m, "bob", 1)
	if store.Len() != 1 { // no Flush needed: eviction ran inline
		t.Fatalf("store holds %d snapshots", store.Len())
	}
	m.Close() // no-op without a writer
}

// TestAsyncEvictionChurn interleaves Do, Delete, Flush, and eviction
// pressure from many goroutines over few IDs with a tiny capacity; run
// with -race. The point is the interleavings — evict/restore/delete in
// every order — with the invariant that the manager stays consistent and
// every operation either succeeds or reports ErrNotFound (from racing
// deletes).
func TestAsyncEvictionChurn(t *testing.T) {
	store := NewMemStore()
	m, err := NewManager(Config{Shared: testShared(t), Capacity: 2, Store: store, EvictWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 12
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 30; i++ {
				id := fmt.Sprintf("churn-%d", rng.Intn(6))
				switch rng.Intn(10) {
				case 0:
					if err := m.Delete(id); err != nil && !errors.Is(err, ErrNotFound) {
						errs <- fmt.Errorf("delete %s: %w", id, err)
						return
					}
				case 1:
					m.Flush()
				default:
					if err := m.Do(id, func(eng *core.Engine) error {
						return eng.Feedback(pack(i%10), pack(20+i%10))
					}); err != nil {
						errs <- fmt.Errorf("do %s: %w", id, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m.Shutdown()
	m.Close()
	if st := m.Stats(); st.SaveErrors != 0 || st.Live != 0 {
		t.Errorf("after churn: %+v", st)
	}
	// The manager must still serve correctly after the storm.
	if err := m.Do("fresh", func(eng *core.Engine) error {
		_, err := eng.Recommend()
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteRacesInFlightEviction: DELETE for a session whose eviction
// snapshot is mid-write must not let that snapshot resurrect the session.
// The manager's guarantee is ordering — Delete's store removal queues
// behind the in-flight save on the session mutex — so after Delete
// returns, the store is empty for that ID and the next request starts
// from scratch.
func TestDeleteRacesInFlightEviction(t *testing.T) {
	store := newGateStore()
	m, err := NewManager(Config{Shared: testShared(t), Capacity: 1, Store: store, EvictWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	feedbackN(t, m, "alice", 2) // learned state: eviction will Save
	feedbackN(t, m, "bob", 1)   // miss: alice handed to the background writer
	store.waitSaveStart(t, "alice")

	// Alice's snapshot write is now hanging in the store. Delete must park
	// behind it rather than racing the file into/out of existence.
	deleted := make(chan error, 1)
	go func() { deleted <- m.Delete("alice") }()
	select {
	case err := <-deleted:
		t.Fatalf("Delete returned (%v) while the eviction save was still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(store.release)
	select {
	case err := <-deleted:
		if err != nil {
			t.Fatalf("Delete after in-flight save: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Delete never completed after the save was released")
	}
	if _, err := store.Load("alice"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("deleted session's eviction snapshot survived: %v", err)
	}
	// The next request must start fresh, not resurrect evicted state.
	err = m.Do("alice", func(eng *core.Engine) error {
		if n := eng.Stats().Feedback; n != 0 {
			return fmt.Errorf("deleted session resurrected with %d feedback", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
}
