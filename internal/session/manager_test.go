package session

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"toppkg/internal/catalog"
	"toppkg/internal/core"
	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
	"toppkg/internal/search"
)

// testShared builds a small shared catalogue; engines derived from it are
// cheap and deterministic.
func testShared(t *testing.T) *core.Shared {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	sh, err := core.NewShared(core.Config{
		Items:          dataset.UNI(40, 2, rng),
		Profile:        feature.SimpleProfile(feature.AggSum, feature.AggAvg),
		MaxPackageSize: 3,
		K:              2,
		RandomCount:    1,
		SampleCount:    60,
		Seed:           5,
		Search:         search.Options{MaxQueue: 32, MaxAccessed: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func testManager(t *testing.T, capacity int, store Store) *Manager {
	t.Helper()
	m, err := NewManager(Config{Shared: testShared(t), Capacity: capacity, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// feedbackN records n non-contradictory preferences in the session: item
// packages {i} ≻ {i+n} for distinct is, all winners disjoint from losers.
func feedbackN(t *testing.T, m *Manager, id string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		err := m.Do(id, func(eng *core.Engine) error {
			return eng.Feedback(pack(i), pack(20+i))
		})
		if err != nil {
			t.Fatalf("feedback %d on %s: %v", i, id, err)
		}
	}
}

func pack(ids ...int) pkgspace.Package { return pkgspace.New(ids...) }

func TestValidID(t *testing.T) {
	for _, tc := range []struct {
		id string
		ok bool
	}{
		{"alice", true},
		{"user-1.2_3", true},
		{"A", true},
		{"", false},
		{".hidden", false},
		{"../escape", false},
		{"a/b", false},
		{"has space", false},
		{strings.Repeat("x", MaxIDLen), true},
		{strings.Repeat("x", MaxIDLen+1), false},
	} {
		if got := ValidID(tc.id); got != tc.ok {
			t.Errorf("ValidID(%q) = %v, want %v", tc.id, got, tc.ok)
		}
	}
}

func TestSeedForDistinctAndStable(t *testing.T) {
	a, b := SeedFor("alice"), SeedFor("bob")
	if a == b {
		t.Errorf("SeedFor collision: %d", a)
	}
	if a != SeedFor("alice") {
		t.Error("SeedFor not deterministic")
	}
	if SeedFor("alice") == 0 {
		t.Error("SeedFor must be non-zero")
	}
}

func TestDoCreatesAndIsolatesSessions(t *testing.T) {
	m := testManager(t, 8, nil)
	feedbackN(t, m, "alice", 3)
	feedbackN(t, m, "bob", 1)
	for _, tc := range []struct {
		id   string
		want int
	}{{"alice", 3}, {"bob", 1}, {"carol", 0}} {
		var got int
		if err := m.Do(tc.id, func(eng *core.Engine) error {
			got = eng.Stats().Feedback
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("session %s Feedback = %d, want %d", tc.id, got, tc.want)
		}
	}
	if n := m.Len(); n != 3 {
		t.Errorf("Len = %d, want 3", n)
	}
}

func TestBadIDRejected(t *testing.T) {
	m := testManager(t, 2, nil)
	err := m.Do("../etc/passwd", func(*core.Engine) error { return nil })
	if !errors.Is(err, ErrBadID) {
		t.Errorf("bad id error = %v, want ErrBadID", err)
	}
	if err := m.Delete("a b"); !errors.Is(err, ErrBadID) {
		t.Errorf("Delete bad id = %v, want ErrBadID", err)
	}
}

func TestLRUEvictionWithoutStoreDropsState(t *testing.T) {
	m := testManager(t, 2, nil)
	feedbackN(t, m, "alice", 2)
	feedbackN(t, m, "bob", 1)
	feedbackN(t, m, "carol", 1) // evicts alice (LRU back)
	m.Flush()                   // wait out the background eviction
	if n := m.Len(); n != 2 {
		t.Fatalf("Len after eviction = %d, want 2", n)
	}
	var got int
	if err := m.Do("alice", func(eng *core.Engine) error { // recreated fresh
		got = eng.Stats().Feedback
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("re-created alice Feedback = %d, want 0 (no store)", got)
	}
	m.Flush()                            // re-creating alice evicted another session in the background
	if st := m.Stats(); st.Evicted < 2 { // alice once, then bob or carol
		t.Errorf("Evicted = %d, want ≥ 2", st.Evicted)
	}
}

// TestEvictRestoreRoundTrip proves a snapshot-evicted session resumes with
// identical learned state: preferences, sample pool, and counters.
func TestEvictRestoreRoundTrip(t *testing.T) {
	store := NewMemStore()
	m := testManager(t, 1, store)
	// Draw the sample pool before recording feedback: the pool is then
	// maintained incrementally per §3.4 rather than drawn under the full
	// constraint set, matching the serving flow (recommend, then clicks).
	if err := m.Do("alice", func(eng *core.Engine) error {
		_, err := eng.Recommend()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	feedbackN(t, m, "alice", 3)
	var before *core.Snapshot
	if err := m.Do("alice", func(eng *core.Engine) error {
		before = eng.Snapshot()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(before.Samples) == 0 || len(before.Preferences) != 3 {
		t.Fatalf("precondition: %d samples, %d prefs", len(before.Samples), len(before.Preferences))
	}

	feedbackN(t, m, "bob", 1) // capacity 1: evicts alice through the store
	m.Flush()
	if store.Len() == 0 {
		t.Fatal("eviction did not snapshot alice")
	}

	var after *core.Snapshot
	if err := m.Do("alice", func(eng *core.Engine) error { // restore-on-miss
		after = eng.Snapshot()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	bj, _ := json.Marshal(before)
	aj, _ := json.Marshal(after)
	if string(bj) != string(aj) {
		t.Errorf("restored state differs:\nbefore %.200s\nafter  %.200s", bj, aj)
	}
	st := m.Stats()
	if st.Restored == 0 || st.Evicted == 0 {
		t.Errorf("counters: %+v, want Restored/Evicted > 0", st)
	}
}

func TestDelete(t *testing.T) {
	store := NewMemStore()
	m := testManager(t, 4, store)
	feedbackN(t, m, "alice", 1)
	if err := m.Delete("alice"); err != nil {
		t.Fatalf("Delete live session: %v", err)
	}
	var got int
	if err := m.Do("alice", func(eng *core.Engine) error {
		got = eng.Stats().Feedback
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("deleted session resumed with Feedback = %d", got)
	}
	if err := m.Delete("alice"); err != nil { // now resident again
		t.Fatalf("second delete: %v", err)
	}
	if err := m.Delete("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete unknown = %v, want ErrNotFound", err)
	}
}

func TestDeleteRemovesSnapshot(t *testing.T) {
	store := NewMemStore()
	m := testManager(t, 1, store)
	feedbackN(t, m, "alice", 2)
	feedbackN(t, m, "bob", 1) // evicts alice into the store
	m.Flush()
	if store.Len() == 0 {
		t.Fatal("no snapshot saved")
	}
	if err := m.Delete("alice"); err != nil { // not resident, snapshot only
		t.Fatalf("Delete snapshotted session: %v", err)
	}
	if _, err := store.Load("alice"); !errors.Is(err, ErrNoSnapshot) {
		t.Errorf("snapshot survived delete: %v", err)
	}
}

func TestList(t *testing.T) {
	m := testManager(t, 8, nil)
	feedbackN(t, m, "bob", 2)
	feedbackN(t, m, "alice", 1)
	infos := m.List()
	if len(infos) != 2 {
		t.Fatalf("List len = %d", len(infos))
	}
	if infos[0].ID != "alice" || infos[1].ID != "bob" {
		t.Errorf("List order: %+v", infos)
	}
	if infos[0].Feedback != 1 || infos[1].Feedback != 2 {
		t.Errorf("List feedback counts: %+v", infos)
	}
	if infos[0].LastUsed.IsZero() {
		t.Error("LastUsed not set")
	}
}

// TestConcurrentSessions hammers the manager from many goroutines, each
// owning one session, interleaving recommends, clicks, and feedback. Run
// with -race. Afterwards every session must hold exactly its own state —
// no cross-session leakage.
func TestConcurrentSessions(t *testing.T) {
	const workers = 24
	m := testManager(t, workers, nil)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("user-%d", w)
			// w%5+1 feedbacks, interleaved with recommends and clicks.
			for i := 0; i <= w%5; i++ {
				if err := m.Do(id, func(eng *core.Engine) error {
					return eng.Feedback(pack(i), pack(20+i))
				}); err != nil {
					errs <- fmt.Errorf("%s feedback: %w", id, err)
					return
				}
				if i == 0 {
					if err := m.Do(id, func(eng *core.Engine) error {
						slate, err := eng.Recommend()
						if err != nil {
							return err
						}
						return eng.Click(slate.All[0], slate.All)
					}); err != nil {
						errs <- fmt.Errorf("%s recommend/click: %w", id, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		id := fmt.Sprintf("user-%d", w)
		var st core.Stats
		if err := m.Do(id, func(eng *core.Engine) error {
			st = eng.Stats()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// The click on the first recommend adds len(All)-1 preferences on
		// top of the w%5+1 explicit ones (minus any cycle skips).
		wantMin := w%5 + 1
		if st.Feedback < wantMin {
			t.Errorf("%s Feedback = %d, want ≥ %d", id, st.Feedback, wantMin)
		}
	}
}

// TestConcurrentEvictionChurn drives far more sessions than capacity from
// many goroutines with a store attached, so creates, hits, evictions, and
// restores interleave aggressively. Run with -race. Every session's
// explicit feedback must survive the churn intact.
func TestConcurrentEvictionChurn(t *testing.T) {
	const (
		workers = 16
		rounds  = 4
	)
	store := NewMemStore()
	m := testManager(t, 4, store) // much smaller than the session count
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("churn-%d", w)
			for i := 0; i < rounds; i++ {
				if err := m.Do(id, func(eng *core.Engine) error {
					return eng.Feedback(pack(i), pack(20+i))
				}); err != nil {
					errs <- fmt.Errorf("%s round %d: %w", id, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m.Flush()
	if st := m.Stats(); st.Evicted == 0 {
		t.Fatalf("churn produced no evictions: %+v", st)
	}
	// With 16 ids and capacity 4, most sessions were evicted; reading each
	// back exercises restore-on-miss and must find the state intact.
	for w := 0; w < workers; w++ {
		id := fmt.Sprintf("churn-%d", w)
		var got int
		if err := m.Do(id, func(eng *core.Engine) error {
			got = eng.Stats().Feedback
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got != rounds {
			t.Errorf("%s Feedback = %d, want %d (state lost in eviction churn)", id, got, rounds)
		}
	}
	st := m.Stats()
	if st.Restored == 0 {
		t.Errorf("verification pass restored nothing: %+v", st)
	}
	if st.SaveErrors != 0 {
		t.Errorf("SaveErrors = %d", st.SaveErrors)
	}
}

// TestConcurrentSameSession serializes many goroutines on one session; the
// per-session mutex must make their feedback atomic and ordered.
func TestConcurrentSameSession(t *testing.T) {
	m := testManager(t, 2, nil)
	const workers = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_ = m.Do("shared", func(eng *core.Engine) error {
				return eng.Feedback(pack(w), pack(20+w))
			})
		}(w)
	}
	wg.Wait()
	var st core.Stats
	if err := m.Do("shared", func(eng *core.Engine) error {
		st = eng.Stats()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if st.Feedback+st.CyclesSkipped != workers {
		t.Errorf("Feedback %d + CyclesSkipped %d != %d", st.Feedback, st.CyclesSkipped, workers)
	}
}

func TestManagerConfigValidation(t *testing.T) {
	if _, err := NewManager(Config{}); err == nil {
		t.Error("nil Shared accepted")
	}
	if _, err := NewManager(Config{Shared: testShared(t), Capacity: -1}); err == nil {
		t.Error("negative capacity accepted")
	}
}

// TestEvictionSkipsEmptySessions: a session that never learned anything is
// evicted without writing a snapshot, so scanning random session IDs
// cannot grow the store without bound.
func TestEvictionSkipsEmptySessions(t *testing.T) {
	store := NewMemStore()
	m := testManager(t, 1, store)
	touch := func(id string) {
		if err := m.Do(id, func(*core.Engine) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	touch("idle-1")
	touch("idle-2") // evicts idle-1, which holds no preferences and no pool
	touch("idle-3") // evicts idle-2
	m.Flush()
	if n := store.Len(); n != 0 {
		t.Errorf("empty sessions left %d snapshots", n)
	}
	if st := m.Stats(); st.Evicted < 2 || st.SaveErrors != 0 {
		t.Errorf("counters: %+v", st)
	}
}

// TestShutdownFlushesResidentSessions: graceful shutdown snapshots every
// resident session so state survives a restart without LRU pressure.
func TestShutdownFlushesResidentSessions(t *testing.T) {
	store := NewMemStore()
	m := testManager(t, 8, store)
	feedbackN(t, m, "alice", 2)
	feedbackN(t, m, "bob", 1)
	m.Do("idle", func(*core.Engine) error { return nil }) // no learned state
	m.Shutdown()
	if n := m.Len(); n != 0 {
		t.Errorf("Len after Shutdown = %d", n)
	}
	if n := store.Len(); n != 2 { // alice + bob; idle skipped
		t.Errorf("store holds %d snapshots after Shutdown, want 2", n)
	}
	// A fresh manager over the same store resumes the state.
	m2, err := NewManager(Config{Shared: testShared(t), Capacity: 8, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	var got int
	if err := m2.Do("alice", func(eng *core.Engine) error {
		got = eng.Stats().Feedback
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("restarted alice Feedback = %d, want 2", got)
	}
}

// TestEvictionClearsStaleSnapshotOnReset: a session restored from a
// snapshot and then reset to zero feedback must not resurrect the old
// state from the store on its next eviction.
func TestEvictionClearsStaleSnapshotOnReset(t *testing.T) {
	store := NewMemStore()
	m := testManager(t, 1, store)
	feedbackN(t, m, "alice", 2)
	feedbackN(t, m, "bob", 1) // evicts alice with 2 prefs
	m.Flush()
	if store.Len() != 1 {
		t.Fatal("no snapshot saved")
	}
	// Restore alice, then reset her learned state in place.
	if err := m.Do("alice", func(eng *core.Engine) error {
		return eng.Restore(&core.Snapshot{Version: 1})
	}); err != nil {
		t.Fatal(err)
	}
	feedbackN(t, m, "bob", 1) // evicts the now-empty alice
	m.Flush()
	var got int
	if err := m.Do("alice", func(eng *core.Engine) error {
		got = eng.Stats().Feedback
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("reset session resurrected %d feedbacks from a stale snapshot", got)
	}
}

// TestUnrestorableSnapshotStartsFresh: a snapshot that no longer matches
// the catalogue (e.g. item IDs out of range after a live-catalogue
// shrink, or a corrupt file) must not brick the session with an endless
// restore-and-500 loop: the manager drops the snapshot, counts the loss,
// and serves a fresh session.
func TestUnrestorableSnapshotStartsFresh(t *testing.T) {
	store := NewMemStore()
	// Item ID 1000 is far outside testShared's 40-item space.
	bad := &core.Snapshot{
		Version:     1,
		Preferences: []core.PreferencePair{{Winner: []int{1000}, Loser: []int{1}}},
	}
	if err := store.Save("alice", bad); err != nil {
		t.Fatal(err)
	}
	m := testManager(t, 4, store)
	err := m.Do("alice", func(eng *core.Engine) error {
		if n := eng.Stats().Feedback; n != 0 {
			t.Errorf("session restored from unrestorable snapshot: feedback %d", n)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("request after unrestorable snapshot: %v", err)
	}
	if st := m.Stats(); st.RestoreFailures != 1 || st.Restored != 0 || st.Created != 1 {
		t.Fatalf("stats = %+v, want RestoreFailures 1, Restored 0, Created 1", st)
	}
	if _, err := store.Load("alice"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("unrestorable snapshot not dropped: %v", err)
	}
}

// TestEvictRestoreAcrossCatalogChurn: a session evicted under epoch N and
// restored under epoch M (items deleted in between) must come back with
// its surviving preferences remapped through stable IDs — not fail the
// restore, not silently shift preference labels. The loss is visible in
// the manager's restore_dropped_* counters.
func TestEvictRestoreAcrossCatalogChurn(t *testing.T) {
	cat, err := catalog.New(catalog.Config{
		Profile:        feature.SimpleProfile(feature.AggSum, feature.AggAvg),
		MaxPackageSize: 3,
		Items:          dataset.UNI(20, 2, rand.New(rand.NewSource(71))),
		Coalesce:       -1, // synchronous swaps: deterministic
	})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := core.NewLiveShared(core.Config{
		K:           2,
		RandomCount: 1,
		SampleCount: 40,
		Seed:        5,
		Search:      search.Options{MaxQueue: 32, MaxAccessed: 100},
	}, cat)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{Shared: sh, Capacity: 1, Store: NewMemStore(), EvictWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	// alice learns two preferences under epoch 1 (UNI stable == dense).
	err = m.Do("alice", func(eng *core.Engine) error {
		if err := eng.Feedback(pkgspace.New(0, 1), pkgspace.New(2)); err != nil {
			return err
		}
		return eng.Feedback(pkgspace.New(3), pkgspace.New(4, 5))
	})
	if err != nil {
		t.Fatal(err)
	}
	// bob's miss evicts alice synchronously; her snapshot hits the store.
	if err := m.Do("bob", func(*core.Engine) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// The catalogue loses item 2 — a whole side of alice's first
	// preference — and item 0, shifting every surviving dense ID.
	if _, err := cat.Delete([]int{0, 2}); err != nil {
		t.Fatal(err)
	}

	// alice's next request miss-restores under the shrunken epoch.
	err = m.Do("alice", func(eng *core.Engine) error {
		if got := eng.Graph().Edges(); got != 1 {
			t.Errorf("restored %d edges, want 1 ({3}≻{4,5} survives churn)", got)
		}
		items, prefs := eng.RestoreDrops()
		if items != 2 || prefs != 1 {
			t.Errorf("engine RestoreDrops = (%d, %d), want (2, 1)", items, prefs)
		}
		if _, err := eng.Recommend(); err != nil {
			t.Errorf("restored session cannot recommend: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("restore across catalogue churn failed: %v", err)
	}
	st := m.Stats()
	if st.Restored != 1 || st.RestoreFailures != 0 {
		t.Errorf("stats = restored %d, failures %d; churn must not brick the restore", st.Restored, st.RestoreFailures)
	}
	if st.RestoreDroppedItems != 2 || st.RestoreDroppedPrefs != 1 {
		t.Errorf("manager drop counters = (%d, %d), want (2, 1)",
			st.RestoreDroppedItems, st.RestoreDroppedPrefs)
	}
}
