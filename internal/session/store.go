// Snapshot stores back the manager's evict/restore cycle: a session pushed
// out of memory by the LRU is serialized through the core snapshot codec
// and revived on its next request, so capacity bounds residency, not the
// number of users the process can serve.
package session

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"toppkg/internal/core"
)

// ErrNoSnapshot is returned by Store.Load when no snapshot exists for the
// session ID.
var ErrNoSnapshot = errors.New("session: no snapshot")

// Store persists evicted session state keyed by session ID. Implementations
// must be safe for concurrent use; the manager never issues concurrent
// calls for the same ID, but does for different IDs.
type Store interface {
	// Save persists the snapshot, replacing any previous one for id.
	Save(id string, s *core.Snapshot) error
	// Load returns the snapshot for id, or ErrNoSnapshot.
	Load(id string) (*core.Snapshot, error)
	// Delete removes the snapshot for id, reporting whether one existed;
	// deleting a missing id is not an error.
	Delete(id string) (removed bool, err error)
}

// MemStore is an in-memory Store, mainly for tests and single-process
// deployments that want eviction without durability across restarts.
type MemStore struct {
	mu sync.Mutex
	m  map[string]*core.Snapshot
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string]*core.Snapshot)} }

// Save implements Store. The snapshot is stored by reference; the manager
// never mutates a snapshot after handing it over.
func (ms *MemStore) Save(id string, s *core.Snapshot) error {
	if s == nil {
		return errors.New("session: nil snapshot")
	}
	ms.mu.Lock()
	ms.m[id] = s
	ms.mu.Unlock()
	return nil
}

// Load implements Store.
func (ms *MemStore) Load(id string) (*core.Snapshot, error) {
	ms.mu.Lock()
	s, ok := ms.m[id]
	ms.mu.Unlock()
	if !ok {
		return nil, ErrNoSnapshot
	}
	return s, nil
}

// Delete implements Store.
func (ms *MemStore) Delete(id string) (bool, error) {
	ms.mu.Lock()
	_, ok := ms.m[id]
	delete(ms.m, id)
	ms.mu.Unlock()
	return ok, nil
}

// Len reports how many snapshots the store holds.
func (ms *MemStore) Len() int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return len(ms.m)
}

// DirStore persists one JSON snapshot file per session under a directory.
// IDs are validated against ValidID before touching the filesystem, so a
// session ID can never escape the directory.
type DirStore struct {
	dir string
}

// sweepMinAge is how old a temp file must be before NewDirStore treats it
// as an orphan: another process sharing the directory may have a Save in
// flight, and sweeping its live temp file would break that Save's rename.
// No healthy snapshot write stays in flight for an hour.
const sweepMinAge = time.Hour

// NewDirStore creates the directory if needed, sweeps temp files orphaned
// by writes interrupted mid-Save (a crash between CreateTemp and Rename),
// and returns a store over it.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("session: snapshot dir: %w", err)
	}
	// Orphaned temp files are invisible to Load (ValidID rejects leading
	// dots), so the sweep is purely hygiene: without it a crashy deploy
	// grows the directory without bound. Only temps past sweepMinAge go —
	// a younger one may be another process's in-flight Save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("session: snapshot dir: %w", err)
	}
	cutoff := time.Now().Add(-sweepMinAge)
	for _, e := range entries {
		if e.IsDir() || !isSaveTempName(e.Name()) {
			continue
		}
		if info, err := e.Info(); err == nil && info.ModTime().Before(cutoff) {
			_ = os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &DirStore{dir: dir}, nil
}

// isSaveTempName matches exactly the names Save's CreateTemp produces —
// "." + id + ".tmp" + random digits — so the sweep cannot touch unrelated
// dotfiles that merely contain ".tmp" somewhere.
func isSaveTempName(name string) bool {
	if !strings.HasPrefix(name, ".") {
		return false
	}
	i := strings.LastIndex(name, ".tmp")
	if i <= 1 { // need a non-empty id between the leading dot and ".tmp"
		return false
	}
	suffix := name[i+len(".tmp"):]
	if suffix == "" {
		return false
	}
	for _, c := range suffix {
		if c < '0' || c > '9' {
			return false
		}
	}
	return ValidID(name[1:i])
}

func (ds *DirStore) path(id string) (string, error) {
	if !ValidID(id) {
		return "", fmt.Errorf("%w: %q", ErrBadID, id)
	}
	return filepath.Join(ds.dir, id+".json"), nil
}

// Save implements Store, writing atomically and durably: the temp file is
// fsynced before the rename (so the data reaches disk before the name
// does) and the directory is fsynced after (so the rename itself survives
// a crash). Without the first sync a power cut can leave a complete-
// looking snapshot file full of zeros; without the second the rename may
// simply vanish.
func (ds *DirStore) Save(id string, s *core.Snapshot) error {
	p, err := ds.path(id)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(ds.dir, "."+id+".tmp*")
	if err != nil {
		return fmt.Errorf("session: snapshot save: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := core.WriteSnapshot(tmp, s); err != nil {
		tmp.Close()
		return fmt.Errorf("session: snapshot save %s: %w", id, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("session: snapshot save %s: %w", id, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("session: snapshot save %s: %w", id, err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return fmt.Errorf("session: snapshot save %s: %w", id, err)
	}
	if err := syncDir(ds.dir); err != nil {
		return fmt.Errorf("session: snapshot save %s: %w", id, err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Windows
// neither supports nor needs fsync on directory handles (metadata is
// durable with the file there), so it is a no-op rather than a spurious
// Save failure.
func syncDir(dir string) error {
	if runtime.GOOS == "windows" {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Load implements Store.
func (ds *DirStore) Load(id string) (*core.Snapshot, error) {
	p, err := ds.path(id)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoSnapshot
	}
	if err != nil {
		return nil, fmt.Errorf("session: snapshot load %s: %w", id, err)
	}
	defer f.Close()
	s, err := core.ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("session: snapshot load %s: %w", id, err)
	}
	return s, nil
}

// Delete implements Store.
func (ds *DirStore) Delete(id string) (bool, error) {
	p, err := ds.path(id)
	if err != nil {
		return false, err
	}
	if err := os.Remove(p); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return false, nil
		}
		return false, fmt.Errorf("session: snapshot delete %s: %w", id, err)
	}
	return true, nil
}
