// Snapshot stores back the manager's evict/restore cycle: a session pushed
// out of memory by the LRU is serialized through the core snapshot codec
// and revived on its next request, so capacity bounds residency, not the
// number of users the process can serve.
package session

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"toppkg/internal/core"
)

// ErrNoSnapshot is returned by Store.Load when no snapshot exists for the
// session ID.
var ErrNoSnapshot = errors.New("session: no snapshot")

// Store persists evicted session state keyed by session ID. Implementations
// must be safe for concurrent use; the manager never issues concurrent
// calls for the same ID, but does for different IDs.
type Store interface {
	// Save persists the snapshot, replacing any previous one for id.
	Save(id string, s *core.Snapshot) error
	// Load returns the snapshot for id, or ErrNoSnapshot.
	Load(id string) (*core.Snapshot, error)
	// Delete removes the snapshot for id, reporting whether one existed;
	// deleting a missing id is not an error.
	Delete(id string) (removed bool, err error)
}

// MemStore is an in-memory Store, mainly for tests and single-process
// deployments that want eviction without durability across restarts.
type MemStore struct {
	mu sync.Mutex
	m  map[string]*core.Snapshot
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string]*core.Snapshot)} }

// Save implements Store. The snapshot is stored by reference; the manager
// never mutates a snapshot after handing it over.
func (ms *MemStore) Save(id string, s *core.Snapshot) error {
	if s == nil {
		return errors.New("session: nil snapshot")
	}
	ms.mu.Lock()
	ms.m[id] = s
	ms.mu.Unlock()
	return nil
}

// Load implements Store.
func (ms *MemStore) Load(id string) (*core.Snapshot, error) {
	ms.mu.Lock()
	s, ok := ms.m[id]
	ms.mu.Unlock()
	if !ok {
		return nil, ErrNoSnapshot
	}
	return s, nil
}

// Delete implements Store.
func (ms *MemStore) Delete(id string) (bool, error) {
	ms.mu.Lock()
	_, ok := ms.m[id]
	delete(ms.m, id)
	ms.mu.Unlock()
	return ok, nil
}

// Len reports how many snapshots the store holds.
func (ms *MemStore) Len() int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return len(ms.m)
}

// DirStore persists one JSON snapshot file per session under a directory.
// IDs are validated against ValidID before touching the filesystem, so a
// session ID can never escape the directory.
type DirStore struct {
	dir string
}

// NewDirStore creates the directory if needed and returns a store over it.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("session: snapshot dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

func (ds *DirStore) path(id string) (string, error) {
	if !ValidID(id) {
		return "", fmt.Errorf("%w: %q", ErrBadID, id)
	}
	return filepath.Join(ds.dir, id+".json"), nil
}

// Save implements Store, writing atomically (temp file + rename) so a
// crash mid-write never leaves a truncated snapshot.
func (ds *DirStore) Save(id string, s *core.Snapshot) error {
	p, err := ds.path(id)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(ds.dir, "."+id+".tmp*")
	if err != nil {
		return fmt.Errorf("session: snapshot save: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := core.WriteSnapshot(tmp, s); err != nil {
		tmp.Close()
		return fmt.Errorf("session: snapshot save %s: %w", id, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("session: snapshot save %s: %w", id, err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return fmt.Errorf("session: snapshot save %s: %w", id, err)
	}
	return nil
}

// Load implements Store.
func (ds *DirStore) Load(id string) (*core.Snapshot, error) {
	p, err := ds.path(id)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoSnapshot
	}
	if err != nil {
		return nil, fmt.Errorf("session: snapshot load %s: %w", id, err)
	}
	defer f.Close()
	s, err := core.ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("session: snapshot load %s: %w", id, err)
	}
	return s, nil
}

// Delete implements Store.
func (ds *DirStore) Delete(id string) (bool, error) {
	p, err := ds.path(id)
	if err != nil {
		return false, err
	}
	if err := os.Remove(p); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return false, nil
		}
		return false, fmt.Errorf("session: snapshot delete %s: %w", id, err)
	}
	return true, nil
}
