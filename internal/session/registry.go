package session

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The store registry makes Store selection a deployment concern instead
// of a compile-time one: cmd/serve takes a -store spec string, shards in
// a gateway deployment point their specs at the same location, and
// migration works because the old owner's Save is the new owner's Load.
// Specs are "scheme:rest" — "dir:/var/lib/toppkg/sessions", "mem:" — and
// a bare path is shorthand for the dir scheme.

var (
	registryMu sync.RWMutex
	registry   = map[string]func(rest string) (Store, error){}
)

// RegisterStore installs an opener for a store scheme. Built-in schemes
// are "dir" (DirStore at the given path) and "mem" (process-local
// MemStore, for tests and single-node setups). Re-registering a scheme
// replaces the opener; external packages can add schemes (e.g. a network
// store) without touching this package.
func RegisterStore(scheme string, open func(rest string) (Store, error)) {
	if scheme == "" || open == nil {
		panic("session: RegisterStore with empty scheme or nil opener")
	}
	registryMu.Lock()
	registry[scheme] = open
	registryMu.Unlock()
}

// OpenStore resolves a store spec. An empty spec returns (nil, nil) —
// no persistence, matching a nil Config.Store. A spec without a
// registered "scheme:" prefix is treated as a filesystem path and opened
// as a DirStore.
func OpenStore(spec string) (Store, error) {
	if spec == "" {
		return nil, nil
	}
	scheme, rest, ok := strings.Cut(spec, ":")
	if ok {
		registryMu.RLock()
		open := registry[scheme]
		registryMu.RUnlock()
		if open != nil {
			return open(rest)
		}
	}
	// Bare paths (including ones with colons in odd places) mean DirStore;
	// this keeps the old -snapshots DIR ergonomics.
	return NewDirStore(spec)
}

// StoreSchemes lists the registered schemes, sorted — for flag help text
// and error messages.
func StoreSchemes() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for s := range registry {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func init() {
	RegisterStore("dir", func(rest string) (Store, error) {
		if rest == "" {
			return nil, fmt.Errorf("session: dir store needs a path (dir:/path)")
		}
		return NewDirStore(rest)
	})
	RegisterStore("mem", func(rest string) (Store, error) {
		if rest != "" {
			return nil, fmt.Errorf("session: mem store takes no argument, got %q", rest)
		}
		return NewMemStore(), nil
	})
}
