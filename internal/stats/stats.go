// Package stats provides the small statistical toolkit the experiments
// need: summaries, rank-correlation and set-overlap measures for comparing
// top-k lists across samplers and semantics (§5.4), and a χ² distance
// estimate between weighted sample pools (§3.2.1).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation of the sorted values.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary aggregates a sample of measurements.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    StdDev(xs),
		Min:    Quantile(xs, 0),
		Median: Quantile(xs, 0.5),
		Max:    Quantile(xs, 1),
	}
}

// Jaccard returns |A∩B| / |A∪B| over two string sets given as slices
// (duplicates ignored); 1 for two empty sets.
func Jaccard(a, b []string) float64 {
	sa := toSet(a)
	sb := toSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for x := range sa {
		if sb[x] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return float64(inter) / float64(union)
}

func toSet(xs []string) map[string]bool {
	m := make(map[string]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}

// KendallTau computes the Kendall rank correlation between two orderings,
// restricted to their common elements: +1 when the shared elements appear
// in the same relative order, −1 when fully reversed, 0 for fewer than two
// shared elements.
func KendallTau(a, b []string) float64 {
	posB := make(map[string]int, len(b))
	for i, x := range b {
		posB[x] = i
	}
	var shared []int // positions in b of a's elements, in a's order
	for _, x := range a {
		if p, ok := posB[x]; ok {
			shared = append(shared, p)
		}
	}
	n := len(shared)
	if n < 2 {
		return 0
	}
	conc, disc := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if shared[i] < shared[j] {
				conc++
			} else {
				disc++
			}
		}
	}
	return float64(conc-disc) / float64(conc+disc)
}

// ChiSquareWeights estimates the χ² divergence proxy between an
// importance-weighted sample pool and the uniform-weight ideal:
// Σ(q_i − q̄)² / q̄² / N. Zero when all weights are equal, growing as the
// proposal diverges from the target (§3.2.1's quality notion, estimated
// from samples rather than the intractable integral).
func ChiSquareWeights(qs []float64) float64 {
	if len(qs) == 0 {
		return 0
	}
	mean := Mean(qs)
	if mean == 0 {
		return 0
	}
	s := 0.0
	for _, q := range qs {
		d := q/mean - 1
		s += d * d
	}
	return s / float64(len(qs))
}
