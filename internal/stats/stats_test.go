package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/degenerate input not zero")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %g", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %g", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %g", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q25 = %g", got)
	}
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Errorf("interpolated median = %g", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %g", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Errorf("Summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty summary non-zero")
	}
}

func TestJaccard(t *testing.T) {
	if got := Jaccard([]string{"a", "b"}, []string{"b", "c"}); got != 1.0/3 {
		t.Errorf("Jaccard = %g, want 1/3", got)
	}
	if got := Jaccard([]string{"a"}, []string{"a"}); got != 1 {
		t.Errorf("identical sets = %g", got)
	}
	if got := Jaccard(nil, nil); got != 1 {
		t.Errorf("empty sets = %g", got)
	}
	if got := Jaccard([]string{"a"}, nil); got != 0 {
		t.Errorf("disjoint = %g", got)
	}
	if got := Jaccard([]string{"a", "a", "b"}, []string{"a", "b"}); got != 1 {
		t.Errorf("duplicates not ignored: %g", got)
	}
}

func TestKendallTau(t *testing.T) {
	if got := KendallTau([]string{"a", "b", "c"}, []string{"a", "b", "c"}); got != 1 {
		t.Errorf("identical order τ = %g", got)
	}
	if got := KendallTau([]string{"a", "b", "c"}, []string{"c", "b", "a"}); got != -1 {
		t.Errorf("reversed order τ = %g", got)
	}
	if got := KendallTau([]string{"a", "b"}, []string{"x", "y"}); got != 0 {
		t.Errorf("disjoint τ = %g", got)
	}
	// Partial overlap: only shared elements count.
	if got := KendallTau([]string{"a", "x", "b"}, []string{"a", "b", "y"}); got != 1 {
		t.Errorf("partial overlap τ = %g", got)
	}
	// One swap in three: (3-0... pairs: ab, ac, bc with b,a swapped → 1 of 3 discordant.
	got := KendallTau([]string{"b", "a", "c"}, []string{"a", "b", "c"})
	if math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("one swap τ = %g, want 1/3", got)
	}
}

// Property: Kendall tau is symmetric in sign under reversal of one list.
func TestKendallTauReversalProperty(t *testing.T) {
	f := func(perm []byte) bool {
		if len(perm) < 2 {
			return true
		}
		if len(perm) > 8 {
			perm = perm[:8]
		}
		seen := map[string]bool{}
		var a []string
		for _, b := range perm {
			s := string(rune('a' + b%26))
			if !seen[s] {
				seen[s] = true
				a = append(a, s)
			}
		}
		if len(a) < 2 {
			return true
		}
		rev := make([]string, len(a))
		for i := range a {
			rev[len(a)-1-i] = a[i]
		}
		return math.Abs(KendallTau(a, a)-1) < 1e-12 &&
			math.Abs(KendallTau(a, rev)+1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestChiSquareWeights(t *testing.T) {
	if got := ChiSquareWeights([]float64{1, 1, 1}); got != 0 {
		t.Errorf("uniform weights χ² = %g, want 0", got)
	}
	if got := ChiSquareWeights(nil); got != 0 {
		t.Errorf("empty χ² = %g", got)
	}
	skewed := ChiSquareWeights([]float64{10, 0.1, 0.1})
	if skewed <= 0 {
		t.Errorf("skewed χ² = %g, want positive", skewed)
	}
	mild := ChiSquareWeights([]float64{1.1, 0.9, 1.0})
	if mild >= skewed {
		t.Errorf("mild %g ≥ skewed %g", mild, skewed)
	}
}
