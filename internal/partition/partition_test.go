package partition

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"toppkg/internal/feature"
)

func testValue(rng *rand.Rand, nullable bool) float64 {
	if nullable && rng.Intn(8) == 0 {
		return feature.Null
	}
	return float64(rng.Intn(20)) / 4 // coarse grid: ties and duplicates
}

func buildSpace(t testing.TB, n, m int, seed int64, nullable bool) *feature.Space {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	aggs := []feature.Agg{feature.AggSum, feature.AggMax, feature.AggMin, feature.AggAvg}
	dims := make([]feature.Agg, m)
	for d := range dims {
		dims[d] = aggs[d%len(aggs)]
	}
	items := make([]feature.Item, n)
	for i := range items {
		vals := make([]float64, m)
		for j := range vals {
			vals[j] = testValue(rng, nullable)
		}
		items[i] = feature.Item{ID: i, Values: vals}
	}
	sp, err := feature.NewSpace(items, feature.SimpleProfile(dims...), 3)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// assertDerived checks the partition against the canonical derivation:
// members, bounds, null attainability and representatives must all be the
// pure function of (Assign, space) that derive computes.
func assertDerived(t *testing.T, sp *feature.Space, p *Partition) {
	t.Helper()
	want := &Partition{K: p.K, Assign: slices.Clone(p.Assign), Gen: p.Gen}
	want.derive(sp, nil)
	for c := 0; c < p.K; c++ {
		if !slices.Equal(p.Members[c], want.Members[c]) {
			t.Fatalf("cluster %d members %v != derived %v", c, p.Members[c], want.Members[c])
		}
		if p.Reps[c] != want.Reps[c] {
			t.Fatalf("cluster %d rep %d != derived %d", c, p.Reps[c], want.Reps[c])
		}
		if !boundsEqual(p.Mins[c], want.Mins[c]) || !boundsEqual(p.Maxs[c], want.Maxs[c]) {
			t.Fatalf("cluster %d bounds differ from derived", c)
		}
		if !slices.Equal(p.AnyNull[c], want.AnyNull[c]) {
			t.Fatalf("cluster %d AnyNull differs from derived", c)
		}
	}
}

func TestBuildInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(60)
		m := 1 + rng.Intn(4)
		k := 1 + rng.Intn(12)
		sp := buildSpace(t, n, m, int64(trial), trial%2 == 0)
		p := Build(sp, k)
		if p.K < 1 || p.K > k || p.K > n {
			t.Fatalf("K=%d out of range (k=%d n=%d)", p.K, k, n)
		}
		if len(p.Assign) != n {
			t.Fatalf("Assign len %d != n %d", len(p.Assign), n)
		}
		total := 0
		for c := 0; c < p.K; c++ {
			if len(p.Members[c]) == 0 {
				t.Fatalf("Build produced empty cluster %d", c)
			}
			total += len(p.Members[c])
			rep := p.Reps[c]
			if _, ok := slices.BinarySearch(p.Members[c], rep); !ok {
				t.Fatalf("rep %d not a member of cluster %d", rep, c)
			}
		}
		if total != n {
			t.Fatalf("members cover %d of %d items", total, n)
		}
		if im := p.Imbalance(); im < 1-1e-9 {
			t.Fatalf("imbalance %v < 1", im)
		}
		assertDerived(t, sp, p)
	}
}

func TestBuildDeterministic(t *testing.T) {
	sp := buildSpace(t, 200, 3, 9, true)
	a, b := Build(sp, 14), Build(sp, 14)
	if !slices.Equal(a.Assign, b.Assign) || !slices.Equal(a.Reps, b.Reps) {
		t.Fatal("Build is not deterministic on equal inputs")
	}
}

func TestDefaultClusters(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 1}, {1, 1}, {100, 10}, {101, 11}, {1000000, 1000},
	} {
		if got := DefaultClusters(tc.n); got != tc.want {
			t.Errorf("DefaultClusters(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// densify compacts a stable-ID→values shadow map into a space the way the
// catalogue does (dense order = ascending stable ID).
func densify(t testing.TB, shadow map[int][]float64, p *feature.Profile, maxSize int) (*feature.Space, []int) {
	t.Helper()
	stable := make([]int, 0, len(shadow))
	for id := range shadow {
		stable = append(stable, id)
	}
	slices.Sort(stable)
	items := make([]feature.Item, len(stable))
	for i, id := range stable {
		items[i] = feature.Item{ID: i, Values: shadow[id]}
	}
	sp, err := feature.NewSpace(items, p, maxSize)
	if err != nil {
		t.Fatal(err)
	}
	return sp, stable
}

// deltaArgs derives the Apply inputs (remap, dirty, added) between two
// dense orderings of a shadow map, mirroring the catalogue's delta builder.
func deltaArgs(oldStable, newStable []int, changed map[int]bool) (remap []int32, dirty, added []int32) {
	newDense := make(map[int]int32, len(newStable))
	for i, id := range newStable {
		newDense[id] = int32(i)
	}
	oldSet := make(map[int]bool, len(oldStable))
	remap = make([]int32, len(oldStable))
	for i, id := range oldStable {
		oldSet[id] = true
		nd, ok := newDense[id]
		if !ok || changed[id] {
			remap[i] = -1
			dirty = append(dirty, int32(i))
		} else {
			remap[i] = nd
		}
	}
	for i, id := range newStable {
		if !oldSet[id] || changed[id] {
			added = append(added, int32(i))
		}
	}
	return remap, dirty, added
}

func fuzzValue(b byte) float64 {
	if b >= 250 {
		return feature.Null
	}
	return float64(b%16) / 4
}

// FuzzPartitionDelta drives random mutation batches through Apply and
// asserts the incrementally maintained partition stays the canonical
// derivation of its own assignment (the invariant the search layer's
// soundness rests on: bounds and representatives never go stale), that
// untouched clusters really are untouched, and that every observable
// difference lands in Delta.Changed. Input: data[0] sizes the initial
// catalogue; then 4-byte records [op, id, v0, v1] — op%3: 1 delete, else
// upsert.
func FuzzPartitionDelta(f *testing.F) {
	f.Add([]byte("\x06\x00\x03\x04\x05"))
	f.Add([]byte("\x06\x01\x00\x00\x00\x00\x02\xff\x01"))
	f.Add([]byte("\x04\x00\x0f\x0f\x0f\x01\x00\x00\x00"))
	p := feature.SimpleProfile(feature.AggSum, feature.AggMax)
	const maxSize = 3
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			t.Skip()
		}
		n0 := 3 + int(data[0]%6)
		shadow := map[int][]float64{}
		for i := 0; i < n0; i++ {
			shadow[i] = []float64{float64((i * 3) % 7), float64((i*5 + 1) % 7)}
		}
		sp, stable := densify(t, shadow, p, maxSize)
		part := Build(sp, 3)
		for pos := 1; pos+4 <= len(data); pos += 4 {
			op, id := data[pos]%3, int(data[pos+1]%16)
			changed := map[int]bool{}
			switch op {
			case 1:
				if _, ok := shadow[id]; !ok || len(shadow) == 1 {
					continue
				}
				delete(shadow, id)
			default:
				vals := []float64{fuzzValue(data[pos+2]), fuzzValue(data[pos+3])}
				if old, ok := shadow[id]; ok {
					if slices.Equal(old, vals) {
						continue
					}
					changed[id] = true
				}
				shadow[id] = vals
			}
			nsp, nstable := densify(t, shadow, p, maxSize)
			remap, dirty, added := deltaArgs(stable, nstable, changed)
			np, delta, ok := part.Apply(nsp, remap, dirty, added)
			if !ok {
				// Apply may only refuse when no representative survives to
				// anchor added items.
				anchored := false
				for _, rep := range part.Reps {
					if rep < 0 {
						continue
					}
					if _, isDirty := slices.BinarySearch(dirty, rep); isDirty || remap[rep] < 0 {
						continue
					}
					anchored = true
				}
				if anchored || len(added) == 0 {
					t.Fatalf("Apply refused with surviving anchors (dirty=%v added=%v)", dirty, added)
				}
				np = Build(nsp, 3) // re-cluster, as the catalogue would
				delta = &Delta{Recluster: true}
			}
			if delta.Recluster == false {
				assertDerived(t, nsp, np)
				if np.Gen != part.Gen {
					t.Fatalf("incremental Apply changed Gen %d -> %d", part.Gen, np.Gen)
				}
				// Untouched clusters must be bitwise untouched (reps
				// renumbered through remap), and Changed must flag exactly
				// the touched clusters with an observable difference.
				touched := map[int32]bool{}
				for _, c := range delta.Touched {
					touched[c] = true
				}
				chgd := map[int32]bool{}
				for _, c := range delta.Changed {
					chgd[c] = true
					if !touched[c] {
						t.Fatalf("changed cluster %d not in touched %v", c, delta.Touched)
					}
				}
				for c := 0; c < np.K; c++ {
					oldRep := part.Reps[c]
					if oldRep >= 0 {
						oldRep = remap[oldRep]
					}
					same := np.Reps[c] == oldRep &&
						boundsEqual(np.Mins[c], part.Mins[c]) &&
						boundsEqual(np.Maxs[c], part.Maxs[c]) &&
						slices.Equal(np.AnyNull[c], part.AnyNull[c])
					if !touched[int32(c)] && !same {
						t.Fatalf("untouched cluster %d drifted", c)
					}
					if touched[int32(c)] && same != !chgd[int32(c)] {
						t.Fatalf("cluster %d: same=%v but changed=%v", c, same, chgd[int32(c)])
					}
				}
			}
			sp, stable, part = nsp, nstable, np
			_ = sp
		}
		if math.IsNaN(part.Imbalance()) {
			t.Fatal("imbalance NaN")
		}
	})
}
