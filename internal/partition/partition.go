// Package partition clusters a catalogue's feature space for sketch-refine
// search (Brucato et al., "Scalable Package Queries in Relational Database
// Systems"): items are grouped into ~√n value-space clusters, each with a
// representative item and per-dimension raw value bounds. The search layer
// sketches over the representatives to get a lower bound on the k-th
// package utility, then refines over only the clusters that can matter;
// the bounds here are what make closing a cluster provable.
//
// Clustering runs over oriented, normalized per-dimension columns (the
// same preference directions the skyline layer canonicalizes, so "larger
// coordinate" always means "more desirable") using recursive widest-axis
// median splits — O(n log k), deterministic, and balanced by construction.
// Everything derived (members, bounds, representatives) is a pure function
// of the assignment and the space, which is the invariant the delta fuzz
// suite holds incremental maintenance to.
package partition

import (
	"math"
	"slices"

	"toppkg/internal/feature"
	"toppkg/internal/skyline"
)

// Partition is an immutable clustering of one feature space's items.
// Cluster indices are stable across incremental Apply calls (membership
// moves between existing clusters); only a full re-cluster renumbers them.
type Partition struct {
	// K is the cluster count (fixed at build time, ~√n by default).
	K int
	// Assign maps each dense item id to its cluster.
	Assign []int32
	// Members lists each cluster's item ids ascending.
	Members [][]int32
	// Reps holds each cluster's representative item (-1 when empty): the
	// member with the largest oriented raw-value sum, ties to the smaller
	// id. Deliberately scale-free, so a normalizer drift in an untouched
	// cluster cannot silently invalidate its representative.
	Reps []int32
	// Mins and Maxs bound each cluster's non-null raw values per profile
	// dimension ([cluster][dim]; ±Inf when every member is null there).
	// Raw, not normalized: normalizer scales move across delta epochs,
	// bounds must not.
	Mins, Maxs [][]float64
	// AnyNull reports whether some member is null on the dimension's
	// feature ([cluster][dim]) — whether a "no contribution" pad is
	// attainable inside the cluster.
	AnyNull [][]bool
	// Gen counts full clustering passes: Apply preserves it, Build starts
	// at 1 (or parent+1 on re-cluster). Two partitions with equal Gen and
	// provenance have comparable cluster indices.
	Gen uint64
}

// Delta summarizes what one maintenance step changed, precisely enough
// for a result cache to prove a partitioned search unaffected.
type Delta struct {
	// Recluster marks a full re-clustering: cluster indices renumbered,
	// nothing is comparable across it.
	Recluster bool
	// Touched lists the clusters whose membership changed (ascending).
	Touched []int32
	// Changed lists the touched clusters with an observable difference —
	// bounds, null attainability, or representative (ascending, subset of
	// Touched). A sketch or admission decision may differ iff one exists.
	Changed []int32
}

// axisInfo is one active clustering axis: a profile dimension with a
// canonical preference direction.
type axisInfo struct {
	dim     int
	feat    int
	smaller bool
}

// activeAxes returns the clustering axes: every profile dimension with a
// canonical direction (sum/max larger-is-better, min smaller-is-better;
// avg and null dimensions carry no direction and are ignored).
func activeAxes(p *feature.Profile) []axisInfo {
	dirs := skyline.ProfileDirs(p)
	var axes []axisInfo
	for d, dir := range dirs {
		switch dir {
		case skyline.Larger:
			axes = append(axes, axisInfo{dim: d, feat: p.Entry(d).Feature})
		case skyline.Smaller:
			axes = append(axes, axisInfo{dim: d, feat: p.Entry(d).Feature, smaller: true})
		}
	}
	return axes
}

// coord returns the item's oriented normalized coordinate on one axis:
// sign-flipped so larger is always more desirable, scaled so axes are
// comparable, nulls at the neutral 0 (no contribution).
func coord(sp *feature.Space, ax axisInfo, id int32) float64 {
	v := sp.Col(ax.feat)[id]
	if feature.IsNull(v) {
		return 0
	}
	scale := sp.Norm.Scale(ax.dim)
	if ax.smaller {
		return -v / scale
	}
	return v / scale
}

// DefaultClusters returns the default cluster count for n items: ⌈√n⌉.
func DefaultClusters(n int) int {
	if n <= 0 {
		return 1
	}
	return int(math.Ceil(math.Sqrt(float64(n))))
}

// Build clusters the space into k groups (k <= 0 selects DefaultClusters)
// by recursive widest-axis median splits over the oriented coordinates.
// Deterministic: splits order by (coordinate, id), so equal inputs build
// equal partitions.
func Build(sp *feature.Space, k int) *Partition {
	n := sp.N()
	if k <= 0 {
		k = DefaultClusters(n)
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	axes := activeAxes(sp.Profile)
	p := &Partition{
		K:      k,
		Assign: make([]int32, n),
		Gen:    1,
	}
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	// Precompute the coordinate matrix once; splits only permute ids.
	coords := make([][]float64, len(axes))
	for a, ax := range axes {
		col := make([]float64, n)
		for i := int32(0); i < int32(n); i++ {
			col[i] = coord(sp, ax, i)
		}
		coords[a] = col
	}
	next := int32(0)
	var split func(ids []int32, k int)
	split = func(ids []int32, k int) {
		if k <= 1 || len(ids) <= 1 || len(axes) == 0 {
			c := next
			next++
			for _, id := range ids {
				p.Assign[id] = c
			}
			return
		}
		// Widest oriented spread picks the split axis (ties to the lower
		// axis index).
		best, bestSpread := 0, math.Inf(-1)
		for a := range axes {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, id := range ids {
				v := coords[a][id]
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if s := hi - lo; s > bestSpread {
				best, bestSpread = a, s
			}
		}
		kl := k / 2
		cut := len(ids) * kl / k
		selectByCoord(ids, coords[best], cut)
		split(ids[:cut], kl)
		split(ids[cut:], k-kl)
	}
	split(ids, k)
	p.K = int(next) // degenerate inputs may produce fewer leaves
	p.derive(sp, nil)
	return p
}

// selectByCoord partially sorts ids so positions [0,cut) hold the cut
// smallest elements under (coordinate, id) order — a quickselect with a
// totally ordered key, so the resulting two sides are unique regardless of
// pivot internals.
func selectByCoord(ids []int32, col []float64, cut int) {
	if cut <= 0 || cut >= len(ids) {
		return
	}
	lo, hi := 0, len(ids)-1
	less := func(a, b int32) bool {
		va, vb := col[a], col[b]
		if va != vb {
			return va < vb
		}
		return a < b
	}
	for hi > lo {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && less(ids[j], ids[j-1]); j-- {
					ids[j], ids[j-1] = ids[j-1], ids[j]
				}
			}
			return
		}
		mid := lo + (hi-lo)/2
		if less(ids[mid], ids[lo]) {
			ids[mid], ids[lo] = ids[lo], ids[mid]
		}
		if less(ids[hi], ids[lo]) {
			ids[hi], ids[lo] = ids[lo], ids[hi]
		}
		if less(ids[hi], ids[mid]) {
			ids[hi], ids[mid] = ids[mid], ids[hi]
		}
		ids[lo], ids[mid] = ids[mid], ids[lo]
		pivot := ids[lo]
		i, j := lo, hi+1
		for {
			for i++; i <= hi && less(ids[i], pivot); i++ {
			}
			for j--; less(pivot, ids[j]); j-- {
			}
			if i >= j {
				break
			}
			ids[i], ids[j] = ids[j], ids[i]
		}
		ids[lo], ids[j] = ids[j], ids[lo]
		switch {
		case j == cut:
			return
		case j < cut:
			lo = j + 1
		default:
			hi = j - 1
		}
	}
}

// derive (re)computes Members and, for the clusters listed in only (nil =
// all), the bounds and representative from Assign — the canonical
// derivation incremental maintenance must reproduce exactly.
func (p *Partition) derive(sp *feature.Space, only []int32) {
	n := len(p.Assign)
	counts := make([]int32, p.K)
	for _, c := range p.Assign {
		counts[c]++
	}
	flat := make([]int32, n)
	offs := make([]int32, p.K)
	for c := 1; c < p.K; c++ {
		offs[c] = offs[c-1] + counts[c-1]
	}
	members := make([][]int32, p.K)
	for c := 0; c < p.K; c++ {
		members[c] = flat[offs[c] : offs[c] : offs[c]+counts[c]]
	}
	for i := int32(0); i < int32(n); i++ { // ascending ids per cluster
		c := p.Assign[i]
		members[c] = append(members[c], i)
	}
	p.Members = members

	dims := sp.Dims()
	if p.Mins == nil {
		p.Mins = make([][]float64, p.K)
		p.Maxs = make([][]float64, p.K)
		p.AnyNull = make([][]bool, p.K)
		p.Reps = make([]int32, p.K)
	}
	rescan := only
	if rescan == nil {
		rescan = make([]int32, p.K)
		for c := range rescan {
			rescan[c] = int32(c)
		}
	}
	for _, c := range rescan {
		mins := make([]float64, dims)
		maxs := make([]float64, dims)
		anyNull := make([]bool, dims)
		ms := members[c]
		for d := 0; d < dims; d++ {
			e := sp.Profile.Entry(d)
			if e.Agg == feature.AggNull {
				mins[d], maxs[d] = math.Inf(1), math.Inf(-1)
				continue
			}
			lo, hi, nonNull := sp.ColStats(e.Feature, ms)
			mins[d], maxs[d] = lo, hi
			anyNull[d] = nonNull < len(ms)
		}
		p.Mins[c], p.Maxs[c], p.AnyNull[c] = mins, maxs, anyNull
		p.Reps[c] = representative(sp, ms)
	}
}

// representative picks the member with the largest oriented raw-value sum
// (nulls contribute 0), ties to the smaller id; -1 for an empty cluster.
// Scale-free by construction — see Partition.Reps.
func representative(sp *feature.Space, members []int32) int32 {
	if len(members) == 0 {
		return -1
	}
	axes := activeAxes(sp.Profile)
	best, bestKey := members[0], math.Inf(-1)
	for _, id := range members {
		key := 0.0
		for _, ax := range axes {
			v := sp.Col(ax.feat)[id]
			if feature.IsNull(v) {
				continue
			}
			if ax.smaller {
				key -= v
			} else {
				key += v
			}
		}
		if key > bestKey {
			best, bestKey = id, key
		}
	}
	return best
}

// Imbalance is the load factor of the fullest cluster: its size divided by
// the balanced size n/K (1 = perfectly balanced). The catalogue triggers a
// re-cluster when incremental drift pushes this past its threshold.
func (p *Partition) Imbalance() float64 {
	n := len(p.Assign)
	if n == 0 || p.K == 0 {
		return 1
	}
	maxSize := 0
	for _, ms := range p.Members {
		if len(ms) > maxSize {
			maxSize = len(ms)
		}
	}
	return float64(maxSize) * float64(p.K) / float64(n)
}

// Apply derives the child space's partition from this (parent) one after a
// delta build, renumbering carried assignments through remap, assigning
// each added item to the cluster with the nearest representative, and
// rescanning only the touched clusters' bounds and representatives.
// Argument conventions match skyline.Set.Apply: remap maps parent dense
// ids to child dense ids (negative = removed; nil = identity), dirty lists
// the parent ids removed or replaced, added lists the child ids of new or
// replaced rows. ok is false when no valid representative survives to
// anchor assignment (caller re-clusters from scratch).
func (p *Partition) Apply(child *feature.Space, remap []int32, dirty, added []int32) (np *Partition, delta *Delta, ok bool) {
	n := child.N()
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	touched := make(map[int32]bool)
	for old, c := range p.Assign {
		if _, isDirty := slices.BinarySearch(dirty, int32(old)); isDirty {
			touched[c] = true
			continue
		}
		nd := int32(old)
		if remap != nil {
			nd = remap[old]
		}
		if nd < 0 {
			touched[c] = true // removal the dirty list missed
			continue
		}
		assign[nd] = c
	}
	// Representatives anchor the nearest-cluster assignment; translate
	// them into the child id space, dropping any that vanished.
	axes := activeAxes(child.Profile)
	type anchor struct {
		c      int32
		coords []float64
	}
	var anchors []anchor
	for c, rep := range p.Reps {
		if rep < 0 {
			continue
		}
		nd := rep
		if remap != nil {
			nd = remap[rep]
		}
		if _, isDirty := slices.BinarySearch(dirty, rep); isDirty || nd < 0 {
			continue
		}
		cs := make([]float64, len(axes))
		for a, ax := range axes {
			cs[a] = coord(child, ax, nd)
		}
		anchors = append(anchors, anchor{c: int32(c), coords: cs})
	}
	if len(anchors) == 0 && len(added) > 0 {
		return nil, nil, false
	}
	buf := make([]float64, len(axes))
	for _, id := range added {
		for a, ax := range axes {
			buf[a] = coord(child, ax, id)
		}
		best, bestDist := int32(0), math.Inf(1)
		for _, an := range anchors {
			d := 0.0
			for a := range buf {
				diff := buf[a] - an.coords[a]
				d += diff * diff
			}
			if d < bestDist || (d == bestDist && an.c < best) {
				best, bestDist = an.c, d
			}
		}
		assign[id] = best
		touched[best] = true
	}
	for _, a := range assign {
		if a < 0 {
			return nil, nil, false // unreachable with a well-formed change set
		}
	}
	np = &Partition{
		K:       p.K,
		Assign:  assign,
		Reps:    slices.Clone(p.Reps),
		Mins:    slices.Clone(p.Mins),
		Maxs:    slices.Clone(p.Maxs),
		AnyNull: slices.Clone(p.AnyNull),
		Gen:     p.Gen,
	}
	if remap != nil {
		// Untouched clusters keep their representative, under its new
		// number. (A dirty representative implies a touched cluster, whose
		// rep derive recomputes below, so remap here is never negative for
		// a cluster that stays untouched.)
		for c, rep := range np.Reps {
			if rep >= 0 && !touched[int32(c)] {
				np.Reps[c] = remap[rep]
			}
		}
	}
	touchedList := make([]int32, 0, len(touched))
	for c := range touched {
		touchedList = append(touchedList, c)
	}
	slices.Sort(touchedList)
	np.derive(child, touchedList)
	// A touched cluster observably changed when its bounds, null
	// attainability, or representative differ. Representative identity is
	// compared through remap (same item, new number, same values ⇒
	// unchanged); a dirty representative always reads as changed because
	// it no longer anchors the cluster above.
	var changed []int32
	for _, c := range touchedList {
		oldRep := p.Reps[c]
		if oldRep >= 0 && remap != nil {
			oldRep = remap[oldRep]
		}
		if np.Reps[c] != oldRep ||
			!boundsEqual(p.Mins[c], np.Mins[c]) || !boundsEqual(p.Maxs[c], np.Maxs[c]) ||
			!slices.Equal(p.AnyNull[c], np.AnyNull[c]) {
			changed = append(changed, c)
		}
	}
	return np, &Delta{Touched: touchedList, Changed: changed}, true
}

// boundsEqual compares bound rows bitwise (±Inf sentinels compare equal).
func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
