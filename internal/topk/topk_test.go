package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randVecs(rng *rand.Rand, n, d int) [][]float64 {
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.Float64()*2 - 1
		}
		vecs[i] = v
	}
	return vecs
}

func bruteAboveZero(vecs [][]float64, q []float64) []int {
	var out []int
	for i, v := range vecs {
		s := 0.0
		for j := range v {
			s += v[j] * q[j]
		}
		if s > 0 {
			out = append(out, i)
		}
	}
	return out
}

func TestPoolBasics(t *testing.T) {
	vecs := [][]float64{{1, 2}, {3, 0}, {-1, 5}}
	p := NewPool(vecs)
	if p.Len() != 3 || p.Dims() != 2 {
		t.Fatalf("pool shape %d×%d", p.Len(), p.Dims())
	}
	if got := p.Dot(1, []float64{2, 1}); got != 6 {
		t.Errorf("Dot = %g, want 6", got)
	}
	asc0 := p.Asc(0)
	if vecs[asc0[0]][0] > vecs[asc0[1]][0] || vecs[asc0[1]][0] > vecs[asc0[2]][0] {
		t.Errorf("Asc(0) not ascending: %v", asc0)
	}
}

func TestEmptyPool(t *testing.T) {
	p := NewPool(nil)
	if r, _ := p.AboveZero([]float64{1}); r != nil {
		t.Error("AboveZero on empty pool returned results")
	}
	if r, _ := p.TopK([]float64{1}, 3); r != nil {
		t.Error("TopK on empty pool returned results")
	}
}

func TestScannerDirections(t *testing.T) {
	vecs := [][]float64{{0.1}, {0.9}, {0.5}}
	p := NewPool(vecs)
	// Positive query: first access must be the largest coordinate.
	s := NewScanner(p, []float64{1})
	i, ok := s.Next()
	if !ok || i != 1 {
		t.Errorf("desc first access = %d, want 1", i)
	}
	// Negative query: first access must be the smallest coordinate.
	s = NewScanner(p, []float64{-1})
	i, ok = s.Next()
	if !ok || i != 0 {
		t.Errorf("asc first access = %d, want 0", i)
	}
}

func TestScannerZeroQuery(t *testing.T) {
	p := NewPool([][]float64{{1, 1}})
	if s := NewScanner(p, []float64{0, 0}); s != nil {
		t.Error("scanner for zero query should be nil")
	}
}

func TestScannerThresholdMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewPool(randVecs(rng, 50, 3))
	q := []float64{0.5, -0.7, 0.2}
	s := NewScanner(p, q)
	prev := s.Threshold()
	for {
		_, ok := s.Next()
		if !ok {
			break
		}
		cur := s.Threshold()
		if cur > prev+1e-9 {
			t.Fatalf("threshold increased: %g → %g", prev, cur)
		}
		prev = cur
	}
}

// TestThresholdBoundsUnseen: at every point of the scan, every unseen
// vector's score must be ≤ the threshold — the TA invariant everything
// else relies on.
func TestThresholdBoundsUnseen(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		d := 1 + rng.Intn(4)
		vecs := randVecs(rng, n, d)
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.Float64()*2 - 1
		}
		p := NewPool(vecs)
		s := NewScanner(p, q)
		if s == nil {
			return true
		}
		seen := make([]bool, n)
		for {
			i, ok := s.Next()
			if !ok {
				break
			}
			seen[i] = true
			thr := s.Threshold()
			for j := 0; j < n; j++ {
				if !seen[j] && p.Dot(j, q) > thr+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAboveZeroMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		d := 1 + rng.Intn(5)
		vecs := randVecs(rng, n, d)
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.Float64()*2 - 1
			if rng.Float64() < 0.2 {
				q[j] = 0
			}
		}
		p := NewPool(vecs)
		got, _ := p.AboveZero(q)
		sort.Ints(got)
		want := bruteAboveZero(vecs, q)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestAboveZeroEarlyTermination: when no vector scores above zero and the
// query points away from the data, TA should touch far fewer entries than
// a full scan of all lists.
func TestAboveZeroEarlyTermination(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 5000
	vecs := make([][]float64, n)
	for i := range vecs {
		// All coordinates positive.
		vecs[i] = []float64{rng.Float64() + 0.01, rng.Float64() + 0.01}
	}
	p := NewPool(vecs)
	// q all-negative: every score < 0; first accesses already prove it.
	res, accesses := p.AboveZero([]float64{-1, -1})
	if len(res) != 0 {
		t.Fatalf("got %d violators, want 0", len(res))
	}
	if accesses > n/10 {
		t.Errorf("TA did %d accesses on a hopeless query (n=%d); early termination broken", accesses, n)
	}
}

func TestTopKMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		d := 1 + rng.Intn(4)
		vecs := randVecs(rng, n, d)
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.Float64()*2 - 1
		}
		k := 1 + rng.Intn(n)
		p := NewPool(vecs)
		got, _ := p.TopK(q, k)
		if len(got) != min(k, n) {
			return false
		}
		// Compare score multisets (ties make index comparison fragile).
		scores := make([]float64, n)
		for i := range vecs {
			scores[i] = p.Dot(i, q)
		}
		sorted := append([]float64(nil), scores...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		for i, idx := range got {
			if scores[idx] != sorted[i] {
				return false
			}
		}
		// Result must be in descending score order.
		for i := 1; i < len(got); i++ {
			if scores[got[i]] > scores[got[i-1]]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestTopKZeroQuery(t *testing.T) {
	p := NewPool([][]float64{{1}, {2}, {3}})
	got, _ := p.TopK([]float64{0}, 2)
	if len(got) != 2 {
		t.Fatalf("zero-query TopK len = %d", len(got))
	}
}

func TestTopKKLargerThanPool(t *testing.T) {
	p := NewPool([][]float64{{1}, {2}})
	got, _ := p.TopK([]float64{1}, 10)
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("order = %v, want [1 0]", got)
	}
}

func TestCurrentUnreadCoversUnseen(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vecs := randVecs(rng, 30, 2)
	p := NewPool(vecs)
	q := []float64{0.6, -0.4}
	s := NewScanner(p, q)
	seenByNext := map[int]bool{}
	for i := 0; i < 10; i++ {
		idx, ok := s.Next()
		if !ok {
			break
		}
		seenByNext[idx] = true
	}
	unread := s.CurrentUnread()
	inUnread := map[int]bool{}
	for _, j := range unread {
		inUnread[int(j)] = true
	}
	// Every vector never returned by Next must be in the current list's
	// unread remainder (the hybrid fallback's correctness condition).
	for i := 0; i < p.Len(); i++ {
		if !seenByNext[i] && !inUnread[i] {
			t.Fatalf("vector %d unseen but not in CurrentUnread", i)
		}
	}
	if got := s.CurrentRemaining(); got != len(unread) {
		t.Errorf("CurrentRemaining = %d, want %d", got, len(unread))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
