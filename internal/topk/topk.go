// Package topk implements threshold-algorithm (TA) style query processing
// over an in-memory pool of vectors [13]. Given a query vector q, it
// supports retrieving the vectors whose dot product with q exceeds zero
// (the primitive behind sample maintenance, paper §3.4) and classic top-k
// retrieval by score, both with early termination based on the boundary
// (threshold) value of sorted access lists.
package topk

import (
	"container/heap"
	"math"
	"sort"
)

// Pool is an immutable collection of equal-dimension vectors with
// per-dimension sorted projections, enabling TA-style sorted access in
// either direction.
type Pool struct {
	vecs [][]float64
	asc  [][]int32 // asc[d] lists vector indices in ascending order of coordinate d
	dims int
}

// NewPool builds the sorted projections for the given vectors. The slice is
// retained (not copied); callers must not mutate it afterwards.
func NewPool(vecs [][]float64) *Pool {
	p := &Pool{vecs: vecs}
	if len(vecs) == 0 {
		return p
	}
	p.dims = len(vecs[0])
	p.asc = make([][]int32, p.dims)
	for d := 0; d < p.dims; d++ {
		idx := make([]int32, len(vecs))
		for i := range idx {
			idx[i] = int32(i)
		}
		sort.Slice(idx, func(a, b int) bool {
			return vecs[idx[a]][d] < vecs[idx[b]][d]
		})
		p.asc[d] = idx
	}
	return p
}

// Len returns the number of vectors in the pool.
func (p *Pool) Len() int { return len(p.vecs) }

// Dims returns the dimensionality of the pooled vectors.
func (p *Pool) Dims() int { return p.dims }

// Vec returns the i-th vector (not a copy).
func (p *Pool) Vec(i int) []float64 { return p.vecs[i] }

// Asc returns the vector indices sorted ascending by coordinate d (not a
// copy). Iterate it backwards for descending order.
func (p *Pool) Asc(d int) []int32 { return p.asc[d] }

// Dot returns vecs[i] · q.
func (p *Pool) Dot(i int, q []float64) float64 {
	s := 0.0
	for d, v := range p.vecs[i] {
		s += v * q[d]
	}
	return s
}

// Scanner performs round-robin sorted access for a query vector q: each
// active dimension d (q[d] != 0) is traversed from its best end (largest
// coordinate first when q[d] > 0, smallest first otherwise), so the
// boundary value τ·q always upper-bounds the score of every unseen vector.
type Scanner struct {
	pool     *Pool
	q        []float64
	dims     []int // active dimensions
	pos      []int // per active dim, number of entries consumed
	tau      []float64
	cur      int // next active dim in round-robin order
	accesses int
	// Incrementally maintained threshold: thrSum = Σ τ_a·q over accessed
	// dims; unseenDims counts dims without any access yet.
	thrSum     float64
	unseenDims int
}

// NewScanner prepares a scanner for query q over the pool. It returns nil
// if q has no non-zero component or the pool is empty.
func NewScanner(p *Pool, q []float64) *Scanner {
	s := &Scanner{pool: p, q: q}
	for d, v := range q {
		if v != 0 {
			s.dims = append(s.dims, d)
		}
	}
	if len(s.dims) == 0 || p.Len() == 0 {
		return nil
	}
	s.pos = make([]int, len(s.dims))
	s.tau = make([]float64, len(s.dims))
	for i := range s.tau {
		s.tau[i] = math.Inf(1) // threshold undefined until first access per dim
	}
	s.unseenDims = len(s.dims)
	return s
}

// Next performs one sorted access and returns the vector index drawn. ok is
// false when every list is exhausted.
func (s *Scanner) Next() (idx int, ok bool) {
	n := s.pool.Len()
	for tries := 0; tries < len(s.dims); tries++ {
		a := s.cur
		s.cur = (s.cur + 1) % len(s.dims)
		if s.pos[a] >= n {
			continue
		}
		d := s.dims[a]
		list := s.pool.asc[d]
		var i int32
		if s.q[d] > 0 { // best = largest coordinate → read from the back
			i = list[n-1-s.pos[a]]
		} else {
			i = list[s.pos[a]]
		}
		s.pos[a]++
		v := s.pool.vecs[i][d]
		if math.IsInf(s.tau[a], 1) {
			s.unseenDims--
		} else {
			s.thrSum -= s.tau[a] * s.q[d]
		}
		s.tau[a] = v
		s.thrSum += v * s.q[d]
		s.accesses++
		return int(i), true
	}
	return 0, false
}

// Threshold returns τ·q, the maximum possible score of any vector not yet
// returned by Next. It is +Inf until every active dimension has been
// accessed at least once. O(1): maintained incrementally by Next.
func (s *Scanner) Threshold() float64 {
	if s.unseenDims > 0 {
		return math.Inf(1)
	}
	return s.thrSum
}

// Accesses returns the number of sorted accesses performed so far.
func (s *Scanner) Accesses() int { return s.accesses }

// CurrentRemaining returns how many entries remain unread in the list the
// next call to Next would draw from (0 if all lists are exhausted).
func (s *Scanner) CurrentRemaining() int {
	n := s.pool.Len()
	for tries := 0; tries < len(s.dims); tries++ {
		a := (s.cur + tries) % len(s.dims)
		if s.pos[a] < n {
			return n - s.pos[a]
		}
	}
	return 0
}

// CurrentUnread returns the vector indices not yet consumed from the list
// the next call to Next would draw from, in access order. Used by the
// hybrid maintenance algorithm's fallback scan (paper Algorithm 1 line 10).
func (s *Scanner) CurrentUnread() []int32 {
	n := s.pool.Len()
	for tries := 0; tries < len(s.dims); tries++ {
		a := (s.cur + tries) % len(s.dims)
		if s.pos[a] >= n {
			continue
		}
		d := s.dims[a]
		list := s.pool.asc[d]
		out := make([]int32, 0, n-s.pos[a])
		if s.q[d] > 0 {
			for i := n - 1 - s.pos[a]; i >= 0; i-- {
				out = append(out, list[i])
			}
		} else {
			out = append(out, list[s.pos[a]:]...)
		}
		return out
	}
	return nil
}

// AboveZero returns the indices of all vectors v with v·q > 0, using TA
// with early termination once the threshold drops to ≤ 0, along with the
// number of sorted accesses performed. Results are in no particular order.
func (p *Pool) AboveZero(q []float64) (result []int, accesses int) {
	s := NewScanner(p, q)
	if s == nil {
		return nil, 0
	}
	seen := make([]bool, p.Len())
	for {
		i, ok := s.Next()
		if !ok {
			break
		}
		if !seen[i] {
			seen[i] = true
			if p.Dot(i, q) > 0 {
				result = append(result, i)
			}
		}
		if s.Threshold() <= 0 {
			break
		}
	}
	return result, s.Accesses()
}

// scoredHeap is a min-heap of (index, score) used for top-k retention.
type scoredHeap struct {
	idx   []int
	score []float64
}

func (h *scoredHeap) Len() int { return len(h.idx) }
func (h *scoredHeap) Less(i, j int) bool {
	if h.score[i] != h.score[j] {
		return h.score[i] < h.score[j]
	}
	return h.idx[i] > h.idx[j] // ties: keep the smaller index (evict larger first)
}
func (h *scoredHeap) Swap(i, j int) {
	h.idx[i], h.idx[j] = h.idx[j], h.idx[i]
	h.score[i], h.score[j] = h.score[j], h.score[i]
}
func (h *scoredHeap) Push(x any) {
	p := x.([2]float64)
	h.idx = append(h.idx, int(p[0]))
	h.score = append(h.score, p[1])
}
func (h *scoredHeap) Pop() any {
	n := len(h.idx) - 1
	v := [2]float64{float64(h.idx[n]), h.score[n]}
	h.idx = h.idx[:n]
	h.score = h.score[:n]
	return v
}

// TopK returns the indices of the k highest-scoring vectors under q
// (descending score, ties by ascending index) and the number of sorted
// accesses performed. TA terminates once the k-th best score reaches the
// threshold.
func (p *Pool) TopK(q []float64, k int) (result []int, accesses int) {
	if k <= 0 || p.Len() == 0 {
		return nil, 0
	}
	if k > p.Len() {
		k = p.Len()
	}
	s := NewScanner(p, q)
	if s == nil {
		// Zero query: scores all zero; return the first k indices.
		for i := 0; i < k; i++ {
			result = append(result, i)
		}
		return result, 0
	}
	seen := make([]bool, p.Len())
	h := &scoredHeap{}
	for {
		i, ok := s.Next()
		if !ok {
			break
		}
		if !seen[i] {
			seen[i] = true
			sc := p.Dot(i, q)
			if h.Len() < k {
				heap.Push(h, [2]float64{float64(i), sc})
			} else if sc > h.score[0] || (sc == h.score[0] && i < h.idx[0]) {
				h.idx[0], h.score[0] = i, sc
				heap.Fix(h, 0)
			}
		}
		if h.Len() == k && s.Threshold() <= h.score[0] {
			break
		}
	}
	// Drain the heap into descending order.
	result = make([]int, h.Len())
	for i := h.Len() - 1; i >= 0; i-- {
		v := heap.Pop(h).([2]float64)
		result[i] = int(v[0])
	}
	return result, s.Accesses()
}
