package search

import (
	"slices"

	"toppkg/internal/feature"
)

// NewIndexFrom derives the index over sp from a parent epoch's index in
// O(batch·log n) comparisons plus O(n) copying for the dimensions the
// batch touches, instead of NewIndex's O(n log n) sort per dimension.
//
// remap maps parent dense IDs to sp dense IDs: remap[i] < 0 means parent
// item i is not carried over (deleted, or re-entering with new values via
// added). added lists the sp dense IDs of items not carried from the
// parent — brand new, or existing items whose values changed. The caller
// guarantees two invariants the catalogue's stable-ID dense ordering
// provides: remap is order-preserving over carried items (i < j with both
// carried implies remap[i] < remap[j]), and carried items have identical
// values in both spaces. Under them, remapping a parent dimension list
// preserves its (value, dense ID) order, so the new list is a splice, not
// a sort.
//
// Dimensions the batch does not touch share the parent's arrays
// copy-on-write when the remap is the identity (no carried item shifted);
// when dense IDs shift, every list is rewritten in one renumbering pass —
// O(n) copying, still no sorting.
func NewIndexFrom(parent *Index, sp *feature.Space, remap []int32, added []int32) *Index {
	dims := sp.Dims()
	ix := &Index{space: sp, asc: make([][]int32, dims)}
	psp := parent.space

	// identity: every carried parent item keeps its dense ID, so untouched
	// dimension arrays remain valid as-is and can be shared.
	identity := true
	for i, v := range remap {
		if v >= 0 && v != int32(i) {
			identity = false
			break
		}
	}
	// Which raw features gain or lose non-null values.
	fc := sp.Profile.FeatureCount()
	removedTouch := make([]bool, fc)
	for i, v := range remap {
		if v >= 0 {
			continue
		}
		for f := 0; f < fc; f++ {
			if !feature.IsNull(psp.Col(f)[i]) {
				removedTouch[f] = true
			}
		}
	}
	addedTouch := make([]bool, fc)
	for _, id := range added {
		for f := 0; f < fc; f++ {
			if !feature.IsNull(sp.Col(f)[id]) {
				addedTouch[f] = true
			}
		}
	}

	var batch []int32 // per-dimension scratch
	for d := 0; d < dims; d++ {
		e := sp.Profile.Entry(d)
		if e.Agg == feature.AggNull {
			continue
		}
		f := e.Feature
		if identity && !removedTouch[f] && !addedTouch[f] {
			ix.asc[d] = parent.asc[d] // untouched: share copy-on-write
			continue
		}
		batch = batch[:0]
		col := sp.Col(f)
		for _, id := range added {
			if !feature.IsNull(col[id]) {
				batch = append(batch, id)
			}
		}
		slices.SortFunc(batch, cmpByValue(col))
		if identity {
			ix.asc[d] = spliceList(parent.asc[d], sp, psp, f, remap, batch)
		} else {
			ix.asc[d] = renumberList(parent.asc[d], sp, psp, f, remap, batch)
		}
	}

	ix.orphans = deriveOrphans(parent, sp, remap, added, identity)
	return ix
}

// spliceList derives a dimension list under an identity remap: removed
// entries and batch insertion points are located by binary search on the
// (value, dense ID) order, then the output is assembled from segment
// copies of the parent list — O((removals+batch)·log n) comparisons plus
// one O(n) copy.
func spliceList(old []int32, sp, psp *feature.Space, f int, remap, batch []int32) []int32 {
	// Splice ops in list order: drop old[pos] (removals) or insert id
	// before old[pos] (batch). Values of removed entries resolve against
	// the parent space (they may no longer exist in sp); carried entries
	// have identical values in both, so the two orders agree.
	type splice struct {
		pos    int
		id     int32
		insert bool
	}
	oldCmp := cmpByValue(psp.Col(f))
	var ops []splice
	removals := 0
	for pi, v := range remap {
		if v >= 0 || feature.IsNull(psp.Col(f)[pi]) {
			continue
		}
		pos, ok := slices.BinarySearchFunc(old, int32(pi), oldCmp)
		if !ok { // unreachable: every non-null parent item is listed
			return renumberList(old, sp, psp, f, remap, batch)
		}
		ops = append(ops, splice{pos: pos, id: int32(pi)})
		removals++
	}
	for _, id := range batch {
		// Insertion point in the parent list: first entry ≥ (value, id).
		// Carried entries compare identically under both spaces, and a
		// removed entry landing at the same point sorts consistently
		// either way, so comparing new values against parent entries via
		// the parent ordering is sound.
		pos, _ := slices.BinarySearchFunc(old, id, func(entry, target int32) int {
			ve, vt := psp.Col(f)[entry], sp.Col(f)[target]
			if ve != vt {
				if ve < vt {
					return -1
				}
				return 1
			}
			if ve == vt && entry != target {
				if entry < target {
					return -1
				}
				return 1
			}
			return 0
		})
		ops = append(ops, splice{pos: pos, id: id, insert: true})
	}
	slices.SortStableFunc(ops, func(a, b splice) int {
		if a.pos != b.pos {
			return a.pos - b.pos
		}
		// At the same position an insertion's key is ≤ the removed
		// entry's, so insertions apply first; batch order is preserved by
		// stability.
		switch {
		case a.insert == b.insert:
			return 0
		case a.insert:
			return -1
		default:
			return 1
		}
	})
	out := make([]int32, 0, len(old)-removals+len(batch))
	oi := 0
	for _, op := range ops {
		out = append(out, old[oi:op.pos]...)
		oi = op.pos
		if op.insert {
			out = append(out, op.id)
		} else {
			oi++ // skip the removed entry
		}
	}
	out = append(out, old[oi:]...)
	return out
}

// renumberList rewrites a dimension list under a non-identity remap in one
// pass: removed entries are dropped, carried ones renumbered (order is
// preserved — the remap is monotone over carried items), and the sorted
// batch merged in by (value, dense ID).
func renumberList(old []int32, sp, psp *feature.Space, f int, remap, batch []int32) []int32 {
	out := make([]int32, 0, len(old)+len(batch))
	col := sp.Col(f)
	j := 0
	for _, pid := range old {
		nid := remap[pid]
		if nid < 0 {
			continue
		}
		v := col[nid]
		for j < len(batch) {
			bv := col[batch[j]]
			if bv < v || (bv == v && batch[j] < nid) {
				out = append(out, batch[j])
				j++
				continue
			}
			break
		}
		out = append(out, nid)
	}
	out = append(out, batch[j:]...)
	return out
}

// deriveOrphans maintains the list of items null on every profile feature:
// removed parent orphans are dropped, carried ones renumbered, and added
// orphans merged in dense-ID order. Shares the parent's slice when the
// delta leaves it untouched under an identity remap.
func deriveOrphans(parent *Index, sp *feature.Space, remap, added []int32, identity bool) []int32 {
	isOrphan := func(space *feature.Space, id int32) bool {
		for d := 0; d < space.Dims(); d++ {
			e := space.Profile.Entry(d)
			if e.Agg == feature.AggNull {
				continue
			}
			if !feature.IsNull(space.Col(e.Feature)[id]) {
				return false
			}
		}
		return true
	}
	var addedOrphans []int32
	for _, id := range added {
		if isOrphan(sp, id) {
			addedOrphans = append(addedOrphans, id)
		}
	}
	slices.Sort(addedOrphans)
	removedOrphan := false
	for _, pid := range parent.orphans {
		if remap[pid] < 0 {
			removedOrphan = true
			break
		}
	}
	if identity && !removedOrphan && len(addedOrphans) == 0 {
		return parent.orphans
	}
	out := make([]int32, 0, len(parent.orphans)+len(addedOrphans))
	j := 0
	for _, pid := range parent.orphans {
		nid := remap[pid]
		if nid < 0 {
			continue
		}
		for j < len(addedOrphans) && addedOrphans[j] < nid {
			out = append(out, addedOrphans[j])
			j++
		}
		out = append(out, nid)
	}
	out = append(out, addedOrphans[j:]...)
	return out
}
