// Sketch-refine partitioned search (Brucato et al., "Scalable Package
// Queries in Relational Database Systems", adapted to Top-k-Pkg): the
// catalogue is clustered into ~√n value-space groups (internal/partition);
// a search first sketches — runs the beamed kernel over the cluster
// representatives only, yielding real packages whose k-th utility L is a
// lower bound on the true k-th — and then refines:
//
//   - Uncapped, unbudgeted runs (MaxQueue < 0, MaxAccessed == 0) replay
//     the full trace but skip every item whose whole cluster bounds
//     strictly below L, and drop queued packages bounding strictly below
//     L. Every lever is strict-below-a-real-utility, so the result is
//     bit-identical to the unpartitioned run (the property suite's
//     invariant), mirroring the dominance filter's admission argument.
//   - Beamed or budgeted runs (already approximate by contract) search
//     only a subset index over the clusters that can matter: the clusters
//     contributing to sketch candidates, plus the best-bounded remaining
//     clusters while they beat L, up to an item budget of 32·⌈√n⌉. Sketch
//     candidates merge into the final top-k so refinement never loses
//     them. This is what makes anti-correlated catalogues — where the
//     skyline covers ~half the items and dominance pruning is inert —
//     sublinear in practice.
//
// Partitioning auto-engages for monotone utilities with bound pruning on
// and no predicates, once the catalogue reaches PartitionMinItems (or a
// partition was injected/configured); every eligible search materializes
// it, so results within one epoch are consistent for result caching.
package search

import (
	"cmp"
	"math"
	"slices"
	"sync/atomic"

	"toppkg/internal/feature"
	"toppkg/internal/partition"
	"toppkg/internal/pkgspace"
)

// PartitionMinItems is the catalogue size below which partitioning stays
// off unless a cluster count was configured explicitly or a partition was
// injected: below it the sketch-refine detour costs more than it saves.
const PartitionMinItems = 4096

// refineBudgetItems bounds how many items bound-admitted (non-candidate)
// clusters may add to a beamed refine: 32·⌈√n⌉ keeps the refine subset a
// vanishing fraction of large catalogues while leaving dozens of clusters
// of headroom over the sketch candidates.
func refineBudgetItems(n int) int {
	return 32 * partition.DefaultClusters(n)
}

// PartitionStats aggregates partition counters across searches; the
// catalogue shares one instance across its epochs' indexes so /healthz can
// report per-search refine behavior.
type PartitionStats struct {
	// Searches counts partition-engaged TopK runs.
	Searches atomic.Int64
	// SketchSkipped totals Result.SketchSkipped across runs.
	SketchSkipped atomic.Int64
	// ClustersOpened totals Result.RefineClustersOpened across runs.
	ClustersOpened atomic.Int64
}

// partState is the materialized partition of one index: the clustering
// plus a persistent subset index over the cluster representatives the
// sketch phase searches.
type partState struct {
	p      *partition.Partition
	sketch *Index
}

// partCtx threads partition-derived pruning into a run. floorL is the
// sketch floor L; p, when non-nil, additionally enables the per-item
// cluster-bound draw skip (the uncapped exact path — beamed refines
// pre-select their subset instead). bounds caches per-cluster bounds
// (NaN = not yet computed), opened/skipped feed the result counters.
type partCtx struct {
	p       *partition.Partition
	floorL  float64
	bounds  []float64
	opened  []bool
	skipped int
}

func (pc *partCtx) open(c int32) {
	if pc.opened == nil {
		pc.opened = make([]bool, pc.p.K)
	}
	pc.opened[c] = true
}

// ConfigurePartition sets the index's cluster count (0 = auto ⌈√n⌉ once
// the space reaches PartitionMinItems, negative = disable partitioning)
// and the shared stats sink. Not synchronized: call before the index
// serves concurrent searches (the catalogue configures each epoch's index
// at build time).
func (ix *Index) ConfigurePartition(clusters int, stats *PartitionStats) {
	ix.partClusters = clusters
	ix.partStats = stats
}

// PeekPartition returns the partition if it has been materialized or
// injected, nil otherwise — without triggering the build.
func (ix *Index) PeekPartition() *partition.Partition {
	if ps := ix.part.Load(); ps != nil {
		return ps.p
	}
	return nil
}

// SetPartition injects a partition (the catalogue's incremental delta
// maintenance). A partition that is already present wins; the index never
// observes two different partitions.
func (ix *Index) SetPartition(p *partition.Partition) {
	if p == nil {
		return
	}
	ix.install(p)
}

// EnsurePartition materializes the partition with the given cluster count
// (<= 0 selects the ⌈√n⌉ default) and returns it; benchmarks use it to
// keep the build outside timed sections. Returns nil for an empty space.
func (ix *Index) EnsurePartition(clusters int) *partition.Partition {
	if ps := ix.part.Load(); ps != nil {
		return ps.p
	}
	ix.partOnce.Do(func() {
		if ix.space.N() > 0 {
			ix.install(partition.Build(ix.space, clusters))
		}
	})
	return ix.PeekPartition()
}

func (ix *Index) install(p *partition.Partition) {
	keep := make([]bool, ix.space.N())
	for _, rep := range p.Reps {
		if rep >= 0 {
			keep[rep] = true
		}
	}
	ix.part.CompareAndSwap(nil, &partState{p: p, sketch: ix.subsetIndex(keep)})
}

// partitionFor decides whether a run engages sketch-refine, materializing
// the partition if the index is eligible. The gates mirror the dominance
// filter's: monotone utility, bound pruning on, no predicate closures —
// plus at least one weighted dimension (the degenerate path enumerates the
// whole space) and the size/configuration gate.
func (ix *Index) partitionFor(u *feature.Utility, opts Options) *partState {
	if opts.DisablePartition || opts.DisableBoundPrune ||
		opts.Candidate != nil || opts.Expand != nil || ix.partClusters < 0 {
		return nil
	}
	if !u.SetMonotone(ix.space.Profile) {
		return nil
	}
	weighted := false
	for _, w := range u.W {
		if w != 0 {
			weighted = true
			break
		}
	}
	if !weighted {
		return nil
	}
	if ps := ix.part.Load(); ps != nil {
		return ps
	}
	n := ix.space.N()
	if n == 0 {
		return nil
	}
	k := ix.partClusters
	if k == 0 {
		if n < PartitionMinItems {
			return nil
		}
		k = partition.DefaultClusters(n)
	}
	ix.partOnce.Do(func() { ix.install(partition.Build(ix.space, k)) })
	return ix.part.Load()
}

// topKPartitioned runs the sketch phase and dispatches to the exact or
// beamed refine.
func (ix *Index) topKPartitioned(u *feature.Utility, opts Options, ps *partState) (Result, error) {
	sketchOpts := Options{
		K:         opts.K,
		ExpandAll: opts.ExpandAll,
		MaxQueue:  DefaultMaxQueue,
		// The representative set is ~√n items; dominance adds nothing and
		// partitioning must not recurse.
		DisableDominancePrune: true,
		DisablePartition:      true,
	}
	skRes, err := ps.sketch.topKRun(u, sketchOpts, nil)
	if err != nil {
		return Result{}, err
	}
	floorL := negInf
	if len(skRes.Packages) >= opts.K {
		floorL = skRes.Packages[opts.K-1].Utility
	}
	maxQ := opts.MaxQueue
	if maxQ == 0 {
		maxQ = DefaultMaxQueue
	}
	if maxQ < 0 && opts.MaxAccessed <= 0 {
		return ix.refineExact(u, opts, ps.p, skRes, floorL)
	}
	return ix.refineBeamed(u, opts, ps, skRes, floorL)
}

// refineExact replays the full uncapped trace under the sketch floor.
// Every lever (draw skip, queue drop) compares strictly below L, and L is
// the utility of a real package, so L ≤ the final k-th utility: nothing
// that could enter the results — or shift an equal-utility tie-break — is
// ever skipped, and the outcome is bit-identical to the unpartitioned run.
// The standard footprint therefore remains sound without partition guards.
func (ix *Index) refineExact(u *feature.Utility, opts Options, p *partition.Partition, skRes Result, floorL float64) (Result, error) {
	pc := &partCtx{p: p, floorL: floorL}
	res, err := ix.topKRun(u, opts, pc)
	if err != nil {
		return Result{}, err
	}
	res.Accessed += skRes.Accessed
	res.Created += skRes.Created
	res.SketchSkipped = pc.skipped
	for _, o := range pc.opened {
		if o {
			res.RefineClustersOpened++
		}
	}
	ix.recordPartStats(res)
	return res, nil
}

// refineBeamed searches a subset index over the clusters that can matter
// and merges the sketch candidates into the final top-k. Beamed/budgeted
// runs are best-effort by contract, so the subset selection needs no
// exactness argument — only determinism (bounds and cluster ids order it).
func (ix *Index) refineBeamed(u *feature.Utility, opts Options, ps *partState, skRes Result, floorL float64) (Result, error) {
	p := ps.p
	pc := &partCtx{p: p, floorL: floorL}
	rb, ok := ix.newRun(u, opts, pc)
	if !ok {
		// Weighted features all-null: no cursors anywhere, degenerate path.
		return ix.topKRun(u, opts, nil)
	}
	open := make([]bool, p.K)
	for _, s := range skRes.Packages {
		for _, id := range s.Pkg.IDs {
			open[p.Assign[id]] = true
		}
	}
	type clusterScore struct {
		c     int32
		bound float64
	}
	used := 0
	scored := make([]clusterScore, 0, p.K)
	for c := 0; c < p.K; c++ {
		if open[c] {
			used += len(p.Members[c])
			continue
		}
		scored = append(scored, clusterScore{int32(c), rb.clusterBound(int32(c))})
	}
	slices.SortFunc(scored, func(a, b clusterScore) int {
		if a.bound != b.bound {
			if a.bound > b.bound {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.c, b.c)
	})
	limit := used + refineBudgetItems(ix.space.N())
	for _, cs := range scored {
		if cs.bound < floorL || used >= limit {
			break
		}
		open[cs.c] = true
		used += len(p.Members[cs.c])
	}

	keep := make([]bool, ix.space.N())
	subsetSize, openedCount := 0, 0
	var clusters []int32
	for c, o := range open {
		if !o {
			continue
		}
		openedCount++
		clusters = append(clusters, int32(c))
		for _, id := range p.Members[c] {
			keep[id] = true
			subsetSize++
		}
	}
	sub := ix.subsetIndex(keep)
	if !opts.DisableDominancePrune {
		// The global head set is sound on any subset (headBound depends
		// only on the item's own values); inject it so the subset index
		// never computes its own skyline.
		sub.SetHeads(ix.Heads())
	}
	refRes, err := sub.topKRun(u, opts, &partCtx{floorL: floorL})
	if err != nil {
		return Result{}, err
	}
	merged := refRes
	merged.Packages = mergeScored(refRes.Packages, skRes.Packages, opts.K)
	merged.Accessed += skRes.Accessed
	merged.Created += skRes.Created
	merged.Truncated = merged.Truncated || skRes.Truncated
	merged.DomPruned += skRes.DomPruned
	merged.SketchSkipped = ix.space.N() - subsetSize
	merged.RefineClustersOpened = openedCount
	if refRes.FP != nil && skRes.FP != nil {
		// A beamed partitioned result depends on the partition (cluster
		// bounds order admission, representatives seed the sketch): record
		// the opened clusters and the representative reads so Reconcile
		// can drop the entry when either could have shifted.
		fp := merged.FP
		fp.Accessed = unionSorted(fp.Accessed, skRes.FP.Accessed)
		fp.Clusters = clusters
		fp.Admission = negInf
		if len(merged.Packages) >= opts.K {
			fp.Admission = merged.Packages[opts.K-1].Utility
		}
	} else {
		merged.FP = nil
	}
	ix.recordPartStats(merged)
	return merged, nil
}

func (ix *Index) recordPartStats(res Result) {
	st := ix.partStats
	if st == nil {
		return
	}
	st.Searches.Add(1)
	st.SketchSkipped.Add(int64(res.SketchSkipped))
	st.ClustersOpened.Add(int64(res.RefineClustersOpened))
}

// subsetIndex filters the index's sorted lists and orphans through a dense
// membership mask. Filtering preserves the (value, id) order, so the
// subset searches exactly as a freshly built index over the kept items
// would; the full space (and its dense ids) is shared, as is the seen-set
// pool of the root index.
func (ix *Index) subsetIndex(keep []bool) *Index {
	src := ix
	if ix.seenSrc != nil {
		src = ix.seenSrc
	}
	sub := &Index{
		space:        ix.space,
		asc:          make([][]int32, len(ix.asc)),
		partClusters: -1,
		seenSrc:      src,
	}
	for d, ids := range ix.asc {
		if ids == nil {
			continue
		}
		out := make([]int32, 0, len(ids)/8)
		for _, id := range ids {
			if keep[id] {
				out = append(out, id)
			}
		}
		sub.asc[d] = out
	}
	for _, o := range ix.orphans {
		if keep[o] {
			sub.orphans = append(sub.orphans, o)
		}
	}
	return sub
}

// clusterBound returns (computing and caching on first use) a sound upper
// bound on the utility of every package containing any member of cluster c.
func (r *run) clusterBound(c int32) float64 {
	pc := r.pc
	if pc.bounds == nil {
		pc.bounds = make([]float64, pc.p.K)
		for i := range pc.bounds {
			pc.bounds[i] = math.NaN()
		}
	}
	if b := pc.bounds[c]; !math.IsNaN(b) {
		return b
	}
	b := r.computeClusterBound(c)
	pc.bounds[c] = b
	return b
}

// computeClusterBound is headBound lifted from an item to a cluster: a
// virtual best member is assembled from the cluster's per-dimension bounds
// and bounded exactly like a singleton — max of its own score and its
// upper-exp pad bound against the frozen initial τ vector.
//
// Per weighted dimension the virtual member takes the oriented best raw
// value (Maxs for sum/max with w > 0, Mins for min with w < 0 — the
// monotone gate fixes these orientations), which by kernel monotonicity
// dominates every member's contribution on that dimension. When the
// cluster has a null there and the best value still scores negatively, a
// null member's zero contribution is the better case, so the virtual
// member skips the dimension instead — dominating both kinds of member on
// both the singleton and the padded-extension side (pads fold the global
// per-list best τ, which bounds any real co-member's value).
func (r *run) computeClusterBound(c int32) float64 {
	p := r.pc.p
	sp := r.ix.space
	dims := sp.Dims()
	if r.partContribs == nil {
		r.partContribs = make([]feature.Contrib, dims)
	}
	contribs := r.partContribs
	for d := 0; d < dims; d++ {
		e := sp.Profile.Entry(d)
		w := r.u.W[d]
		if w == 0 || e.Agg == feature.AggNull {
			contribs[d] = feature.Contrib{Skip: true}
			continue
		}
		var v float64
		if e.Agg == feature.AggMin {
			v = p.Mins[c][d]
		} else {
			v = p.Maxs[c][d]
		}
		if math.IsInf(v, 0) || (p.AnyNull[c][d] && w*v < 0) {
			contribs[d] = feature.Contrib{Skip: true}
			continue
		}
		contribs[d] = feature.Contrib{Value: v}
	}
	st := r.scratchGrow
	st.CopyFrom(r.emptyState)
	st.AddContrib(contribs)
	b := r.u.ScoreState(st)
	if sp.MaxSize > 1 {
		var ext float64
		if r.initFastPad {
			ext = st.PadUpperTau(r.padPlan, r.initTaus, sp.MaxSize)
		} else {
			s := r.scratch
			s.CopyFrom(st)
			ext = s.PadUpper(r.padPlan, r.initModes, r.initTaus, sp.MaxSize)
		}
		if ext > b {
			b = ext
		}
	}
	return b
}

// mergeScored combines the refine and sketch result lists, dropping
// duplicate packages, into the final descending top-k.
func mergeScored(a, b []pkgspace.Scored, k int) []pkgspace.Scored {
	out := append([]pkgspace.Scored(nil), a...)
	for _, s := range b {
		dup := false
		for _, t := range a {
			if slices.Equal(t.Pkg.IDs, s.Pkg.IDs) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	pkgspace.SortScored(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// unionSorted merges two ascending id slices without duplicates, reusing
// a's storage when possible.
func unionSorted(a, b []int32) []int32 {
	if len(b) == 0 {
		return a
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
