package search

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"toppkg/internal/feature"
)

// pruneValue draws item values with deliberate ties, zeros and nulls — the
// cases where an unsound skip rule would first diverge.
func pruneValue(rng *rand.Rand, nullable bool) float64 {
	switch rng.Intn(8) {
	case 0:
		if nullable {
			return feature.Null
		}
		return 0.5
	case 1:
		return 0
	case 2:
		return 0.5 // frequent duplicate: exact-utility ties
	default:
		return float64(rng.Intn(20)) / 10
	}
}

// assertSameResult compares two TopK results for bit-identical packages
// and utilities.
func assertSameResult(t *testing.T, got, want Result, label string) bool {
	t.Helper()
	if len(got.Packages) != len(want.Packages) {
		t.Logf("%s: %d vs %d packages", label, len(got.Packages), len(want.Packages))
		return false
	}
	for i := range want.Packages {
		if !slices.Equal(got.Packages[i].Pkg.IDs, want.Packages[i].Pkg.IDs) ||
			got.Packages[i].Utility != want.Packages[i].Utility {
			t.Logf("%s: rank %d: got %v (%v), want %v (%v)", label, i,
				got.Packages[i].Pkg.IDs, got.Packages[i].Utility,
				want.Packages[i].Pkg.IDs, want.Packages[i].Utility)
			return false
		}
	}
	return true
}

// TestDominancePruneExact: on uncapped (exact-mode) runs the dominance
// filter never changes the result — for every agg mix, weight signs that
// make the utility monotone (where the filter engages) and ones that do
// not (where it must gate itself off), nulls, ties, and k up to the size
// of the whole candidate heap. Both paper mode and ExpandAll are covered.
func TestDominancePruneExact(t *testing.T) {
	aggs := []feature.Agg{feature.AggSum, feature.AggMax, feature.AggMin, feature.AggAvg, feature.AggNull}
	engaged := 0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		m := 1 + rng.Intn(4)
		dims := make([]feature.Agg, m)
		for d := range dims {
			dims[d] = aggs[rng.Intn(len(aggs))]
		}
		nullable := rng.Intn(2) == 0
		items := make([]feature.Item, n)
		for i := range items {
			vals := make([]float64, m)
			for j := range vals {
				vals[j] = pruneValue(rng, nullable)
			}
			items[i] = feature.Item{ID: i, Values: vals}
		}
		p := feature.SimpleProfile(dims...)
		maxSize := 1 + rng.Intn(3)
		sp, err := feature.NewSpace(items, p, maxSize)
		if err != nil {
			t.Log(err)
			return false
		}
		w := make([]float64, m)
		for d := range w {
			mag := rng.Float64()
			if rng.Intn(5) == 0 {
				mag = 0
			}
			switch {
			case rng.Intn(4) == 0: // wrong-sign weight: filter must gate off
				switch dims[d] {
				case feature.AggMin:
					w[d] = mag
				default:
					w[d] = -mag
				}
			case dims[d] == feature.AggMin:
				w[d] = -mag
			default:
				w[d] = mag
			}
		}
		u, err := feature.NewUtility(p, w)
		if err != nil {
			t.Log(err)
			return false
		}
		k := 1 + rng.Intn(n) // up to catalogue size
		ix := NewIndex(sp)
		for _, expandAll := range []bool{false, true} {
			opts := Options{K: k, MaxQueue: -1, ExpandAll: expandAll}
			pruned, err := ix.TopK(u, opts)
			if err != nil {
				t.Log(err)
				return false
			}
			opts.DisableDominancePrune = true
			plain, err := ix.TopK(u, opts)
			if err != nil {
				t.Log(err)
				return false
			}
			if plain.DomPruned != 0 {
				t.Log("disabled run reported skips")
				return false
			}
			if !assertSameResult(t, pruned, plain, "exact") {
				return false
			}
			engaged += pruned.DomPruned
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
	if engaged == 0 {
		t.Error("dominance filter never skipped an item across all trials — the suite is not exercising it")
	}
}

// TestDominancePruneMatchesBruteForce: on monotone profiles the pruned
// exact search still matches the brute-force oracle directly (not just the
// unpruned search).
func TestDominancePruneMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		items := make([]feature.Item, n)
		for i := range items {
			items[i] = feature.Item{ID: i, Values: []float64{
				pruneValue(rng, false), pruneValue(rng, false), pruneValue(rng, false)}}
		}
		p := feature.SimpleProfile(feature.AggSum, feature.AggMax, feature.AggMin)
		maxSize := 1 + rng.Intn(3)
		sp, err := feature.NewSpace(items, p, maxSize)
		if err != nil {
			return false
		}
		w := []float64{rng.Float64(), rng.Float64(), -rng.Float64()}
		k := 1 + rng.Intn(4)
		return checkAgainstBruteForce(t, sp, w, k, Options{MaxQueue: -1, ExpandAll: true})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDominancePruneGatesOffNonMonotone: a weighted avg dimension (or a
// wrong-sign weight) must keep the filter disengaged even on beam runs.
func TestDominancePruneGatesOffNonMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := make([]feature.Item, 40)
	for i := range items {
		items[i] = feature.Item{ID: i, Values: []float64{rng.Float64(), rng.Float64()}}
	}
	sp, err := feature.NewSpace(items, feature.SimpleProfile(feature.AggSum, feature.AggAvg), 3)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(sp)
	u, err := feature.NewUtility(sp.Profile, []float64{1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.TopK(u, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.DomPruned != 0 {
		t.Fatalf("filter engaged on a weighted-avg profile: %d skips", res.DomPruned)
	}
	if ix.PeekHeads() != nil {
		t.Fatal("head set materialized for a non-monotone run")
	}
}

// TestDominancePruneBeamSpeedup exercises the beam path end to end on a
// monotone profile: the filter engages, skips items, and still returns
// valid packages (beam results are best-effort by contract; here the
// catalogue is benign enough that the top package must match exactly).
func TestDominancePruneBeamSpeedup(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	items := make([]feature.Item, 2000)
	for i := range items {
		items[i] = feature.Item{ID: i, Values: []float64{rng.Float64(), rng.Float64()}}
	}
	sp, err := feature.NewSpace(items, feature.SimpleProfile(feature.AggSum, feature.AggMax), 3)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(sp)
	u, err := feature.NewUtility(sp.Profile, []float64{1, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := ix.TopK(u, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ix.TopK(u, Options{K: 5, DisableDominancePrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.DomPruned == 0 {
		t.Error("filter never engaged on a 2000-item monotone beam run")
	}
	if len(pruned.Packages) != len(plain.Packages) {
		t.Fatalf("package counts differ: %d vs %d", len(pruned.Packages), len(plain.Packages))
	}
	if pruned.Packages[0].Utility != plain.Packages[0].Utility {
		t.Errorf("top utility: pruned %v vs plain %v", pruned.Packages[0].Utility, plain.Packages[0].Utility)
	}
}
