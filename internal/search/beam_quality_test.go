package search

import (
	"math"
	"math/rand"
	"testing"

	"toppkg/internal/dataset"
	"toppkg/internal/feature"
)

// TestBeamQuality quantifies the approximation cost of the default beam
// (DefaultMaxQueue) against the uncapped search: on 2000-item spaces with
// adversarially mixed weights, the beamed top-1 utility must stay within
// 3% of the exact top-1, and match it in most trials.
func TestBeamQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("beam-quality sweep over 2000 items is slow")
	}
	rng := rand.New(rand.NewSource(33))
	items := dataset.UNI(2000, 5, rng)
	cycle := []feature.Agg{feature.AggSum, feature.AggAvg, feature.AggMax, feature.AggMin}
	aggs := make([]feature.Agg, 5)
	for i := range aggs {
		aggs[i] = cycle[i%len(cycle)]
	}
	sp, err := feature.NewSpace(items, feature.SimpleProfile(aggs...), 5)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(sp)
	exactMatches := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		w := make([]float64, 5)
		for i := range w {
			w[i] = rng.Float64()*2 - 1
		}
		u, err := feature.NewUtility(sp.Profile, w)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ix.TopK(u, Options{K: 1, ExpandAll: true, MaxQueue: -1})
		if err != nil {
			t.Fatal(err)
		}
		beam, err := ix.TopK(u, Options{K: 1}) // library default budget
		if err != nil {
			t.Fatal(err)
		}
		e, g := exact.Packages[0].Utility, beam.Packages[0].Utility
		if g > e+1e-9 {
			t.Fatalf("beam better than exact: %g > %g", g, e)
		}
		if e-g > 0.03*math.Abs(e)+1e-9 {
			t.Errorf("trial %d: beam top-1 %.5f vs exact %.5f (gap %.2f%%)",
				trial, g, e, 100*(e-g)/math.Abs(e))
		}
		if math.Abs(e-g) < 1e-9 {
			exactMatches++
		}
	}
	if exactMatches < trials*6/10 {
		t.Errorf("beam matched exact in only %d/%d trials", exactMatches, trials)
	}
	t.Logf("beam matched exact top-1 in %d/%d trials", exactMatches, trials)
}
