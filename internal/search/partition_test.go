package search

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
)

// TestPartitionExact: on uncapped, unbudgeted runs the sketch-refine path
// is bit-identical to the unpartitioned search — for every agg mix, weight
// signs that make the utility monotone (where partitioning engages) and
// ones that do not (where it must gate itself off), nulls, ties, and k up
// to the catalogue size. The partition is forced on (explicit cluster
// count) so small random spaces exercise the levers; dominance runs both
// on and off, as do paper mode and ExpandAll.
func TestPartitionExact(t *testing.T) {
	aggs := []feature.Agg{feature.AggSum, feature.AggMax, feature.AggMin, feature.AggAvg, feature.AggNull}
	skipped := 0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		m := 1 + rng.Intn(4)
		dims := make([]feature.Agg, m)
		for d := range dims {
			dims[d] = aggs[rng.Intn(len(aggs))]
		}
		nullable := rng.Intn(2) == 0
		items := make([]feature.Item, n)
		for i := range items {
			vals := make([]float64, m)
			for j := range vals {
				vals[j] = pruneValue(rng, nullable)
			}
			items[i] = feature.Item{ID: i, Values: vals}
		}
		p := feature.SimpleProfile(dims...)
		maxSize := 1 + rng.Intn(3)
		sp, err := feature.NewSpace(items, p, maxSize)
		if err != nil {
			t.Log(err)
			return false
		}
		w := make([]float64, m)
		for d := range w {
			mag := rng.Float64()
			if rng.Intn(5) == 0 {
				mag = 0
			}
			switch {
			case rng.Intn(4) == 0: // wrong-sign weight: must gate off
				switch dims[d] {
				case feature.AggMin:
					w[d] = mag
				default:
					w[d] = -mag
				}
			case dims[d] == feature.AggMin:
				w[d] = -mag
			default:
				w[d] = mag
			}
		}
		u, err := feature.NewUtility(p, w)
		if err != nil {
			t.Log(err)
			return false
		}
		k := 1 + rng.Intn(n)
		ix := NewIndex(sp)
		ix.ConfigurePartition(1+rng.Intn(6), nil)
		for _, expandAll := range []bool{false, true} {
			for _, disableDom := range []bool{false, true} {
				opts := Options{K: k, MaxQueue: -1, ExpandAll: expandAll, DisableDominancePrune: disableDom}
				part, err := ix.TopK(u, opts)
				if err != nil {
					t.Log(err)
					return false
				}
				opts.DisablePartition = true
				plain, err := ix.TopK(u, opts)
				if err != nil {
					t.Log(err)
					return false
				}
				if plain.SketchSkipped != 0 || plain.RefineClustersOpened != 0 {
					t.Log("disabled run reported partition work")
					return false
				}
				if !assertSameResult(t, part, plain, "partition-exact") {
					return false
				}
				skipped += part.SketchSkipped
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
	if skipped == 0 {
		t.Error("sketch skip never fired across all trials — the suite is not exercising it")
	}
}

// TestPartitionMatchesBruteForce: the partitioned exact search matches the
// brute-force oracle directly on monotone profiles.
func TestPartitionMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		items := make([]feature.Item, n)
		for i := range items {
			items[i] = feature.Item{ID: i, Values: []float64{
				pruneValue(rng, false), pruneValue(rng, false), pruneValue(rng, false)}}
		}
		p := feature.SimpleProfile(feature.AggSum, feature.AggMax, feature.AggMin)
		maxSize := 1 + rng.Intn(3)
		sp, err := feature.NewSpace(items, p, maxSize)
		if err != nil {
			return false
		}
		w := []float64{rng.Float64(), rng.Float64(), -rng.Float64()}
		u, err := feature.NewUtility(p, w)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(4)
		ix := NewIndex(sp)
		ix.ConfigurePartition(1+rng.Intn(4), nil)
		res, err := ix.TopK(u, Options{K: k, MaxQueue: -1, ExpandAll: true})
		if err != nil {
			t.Fatal(err)
		}
		want := pkgspace.BruteForceTopK(sp, u, k)
		if len(res.Packages) != len(want) {
			t.Logf("len mismatch: got %d, want %d", len(res.Packages), len(want))
			return false
		}
		for i := range want {
			if math.Abs(res.Packages[i].Utility-want[i].Utility) > 1e-9 {
				t.Logf("rank %d: got %s u=%.6f, want %s u=%.6f",
					i, res.Packages[i].Pkg, res.Packages[i].Utility, want[i].Pkg, want[i].Utility)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPartitionGatesOffNonMonotone: a weighted avg dimension must keep
// partitioning disengaged — and unmaterialized — even with an explicit
// cluster count.
func TestPartitionGatesOffNonMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := make([]feature.Item, 40)
	for i := range items {
		items[i] = feature.Item{ID: i, Values: []float64{rng.Float64(), rng.Float64()}}
	}
	sp, err := feature.NewSpace(items, feature.SimpleProfile(feature.AggSum, feature.AggAvg), 3)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(sp)
	ix.ConfigurePartition(4, nil)
	u, err := feature.NewUtility(sp.Profile, []float64{1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.TopK(u, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.SketchSkipped != 0 || res.RefineClustersOpened != 0 {
		t.Fatalf("partition engaged on a weighted-avg profile: %+v", res)
	}
	if ix.PeekPartition() != nil {
		t.Fatal("partition materialized for a non-monotone run")
	}
}

// TestPartitionBeamedRefine exercises the beamed sketch-refine path end to
// end: partitioning engages, leaves most of the catalogue unopened, and
// returns internally consistent real packages (utilities re-verified
// against a fresh state; beamed results are best-effort by contract).
func TestPartitionBeamedRefine(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	items := make([]feature.Item, 5000)
	for i := range items {
		items[i] = feature.Item{ID: i, Values: []float64{rng.Float64(), rng.Float64(), rng.Float64()}}
	}
	sp, err := feature.NewSpace(items, feature.SimpleProfile(feature.AggSum, feature.AggMax, feature.AggSum), 4)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(sp)
	u, err := feature.NewUtility(sp.Profile, []float64{1, 0.7, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.TopK(u, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ix.PeekPartition() == nil {
		t.Fatal("partition not materialized at 5000 items")
	}
	if res.SketchSkipped == 0 {
		t.Error("beamed refine opened the whole catalogue")
	}
	if res.RefineClustersOpened == 0 || res.RefineClustersOpened >= ix.PeekPartition().K {
		t.Errorf("implausible refine_clusters_opened=%d of %d", res.RefineClustersOpened, ix.PeekPartition().K)
	}
	if len(res.Packages) != 5 {
		t.Fatalf("got %d packages, want 5", len(res.Packages))
	}
	for i, s := range res.Packages {
		if i > 0 && s.Utility > res.Packages[i-1].Utility {
			t.Errorf("results out of order at rank %d", i)
		}
		st := feature.NewState(sp)
		for _, id := range s.Pkg.IDs {
			st.Add(sp.Items[id])
		}
		if got := u.ScoreState(st); math.Abs(got-s.Utility) > 1e-9 {
			t.Errorf("rank %d utility %.9f does not match recomputed %.9f", i, s.Utility, got)
		}
	}
	// On this benign uniform catalogue the refined beam must find at least
	// as good a top package as the plain beam (it concentrates the beam on
	// the best clusters).
	plain, err := ix.TopK(u, Options{K: 5, DisablePartition: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packages[0].Utility < plain.Packages[0].Utility-1e-9 {
		t.Errorf("partitioned top %.9f below plain beam top %.9f",
			res.Packages[0].Utility, plain.Packages[0].Utility)
	}
	// Without dominance skips the truncation rule keeps the footprint, and
	// it must carry the opened clusters for cache reconciliation.
	noDom, err := ix.TopK(u, Options{K: 5, DisableDominancePrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if noDom.FP == nil || len(noDom.FP.Clusters) != noDom.RefineClustersOpened {
		t.Errorf("footprint %+v vs opened %d", noDom.FP, noDom.RefineClustersOpened)
	}
}

// TestPartitionCacheKey: DisablePartition must produce a distinct cache
// key — a partitioned beam and a plain beam are different results.
func TestPartitionCacheKey(t *testing.T) {
	a, ok := Options{K: 5}.CacheKey()
	if !ok {
		t.Fatal("cache key unexpectedly invalid")
	}
	b, ok := Options{K: 5, DisablePartition: true}.CacheKey()
	if !ok {
		t.Fatal("cache key unexpectedly invalid")
	}
	if a == b {
		t.Fatalf("cache keys collide: %q", a)
	}
}
