package search

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
)

func paperSpace(t *testing.T, maxSize int) *feature.Space {
	t.Helper()
	items := []feature.Item{
		{ID: 0, Values: []float64{0.6, 0.2}},
		{ID: 1, Values: []float64{0.4, 0.4}},
		{ID: 2, Values: []float64{0.2, 0.4}},
	}
	sp, err := feature.NewSpace(items, feature.SimpleProfile(feature.AggSum, feature.AggAvg), maxSize)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func mustUtility(t *testing.T, sp *feature.Space, w ...float64) *feature.Utility {
	t.Helper()
	u, err := feature.NewUtility(sp.Profile, w)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestPaperExampleTopK: under w1 = (0.5, 0.1), the best packages are
// p4 = {t1,t2} (0.575) and p6 = {t1,t3} (0.475), per Figure 2.
func TestPaperExampleTopK(t *testing.T) {
	sp := paperSpace(t, 2)
	ix := NewIndex(sp)
	res, err := ix.TopK(mustUtility(t, sp, 0.5, 0.1), Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) != 2 {
		t.Fatalf("got %d packages", len(res.Packages))
	}
	if res.Packages[0].Pkg.Signature() != "0|1" {
		t.Errorf("top-1 = %s, want {0,1}", res.Packages[0].Pkg)
	}
	if res.Packages[1].Pkg.Signature() != "0|2" {
		t.Errorf("top-2 = %s, want {0,2}", res.Packages[1].Pkg)
	}
	if math.Abs(res.Packages[0].Utility-0.575) > 1e-9 {
		t.Errorf("top utility = %g, want 0.575", res.Packages[0].Utility)
	}
}

// TestPaperExampleAllWeights runs all three weight vectors of Figure 2 and
// checks the per-w top-2 lists match Figure 2(d): w1→(p4,p6), w2→(p5,p2),
// w3→(p4,p5).
func TestPaperExampleAllWeights(t *testing.T) {
	sp := paperSpace(t, 2)
	ix := NewIndex(sp)
	cases := []struct {
		w    []float64
		want []string
	}{
		{[]float64{0.5, 0.1}, []string{"0|1", "0|2"}},
		{[]float64{0.1, 0.5}, []string{"1|2", "1"}},
		{[]float64{0.1, 0.1}, []string{"0|1", "1|2"}},
	}
	for i, tc := range cases {
		res, err := ix.TopK(mustUtility(t, sp, tc.w...), Options{K: 2})
		if err != nil {
			t.Fatal(err)
		}
		for j, want := range tc.want {
			if got := res.Packages[j].Pkg.Signature(); got != want {
				t.Errorf("w%d top[%d] = %s, want %s", i+1, j, got, want)
			}
		}
	}
}

func checkAgainstBruteForce(t *testing.T, sp *feature.Space, w []float64, k int, opts Options) bool {
	t.Helper()
	u, err := feature.NewUtility(sp.Profile, w)
	if err != nil {
		t.Fatal(err)
	}
	opts.K = k
	ix := NewIndex(sp)
	res, err := ix.TopK(u, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := pkgspace.BruteForceTopK(sp, u, k)
	if len(res.Packages) != len(want) {
		t.Logf("len mismatch: got %d, want %d", len(res.Packages), len(want))
		return false
	}
	for i := range want {
		if math.Abs(res.Packages[i].Utility-want[i].Utility) > 1e-9 {
			t.Logf("rank %d: got %s u=%.6f, want %s u=%.6f",
				i, res.Packages[i].Pkg, res.Packages[i].Utility, want[i].Pkg, want[i].Utility)
			return false
		}
	}
	return true
}

// TestExactOnMonotoneProfiles: for set-monotone utilities (sum/max with
// positive weights, min with negative), the paper's pruning is exact.
func TestExactOnMonotoneProfiles(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		items := make([]feature.Item, n)
		for i := range items {
			items[i] = feature.Item{ID: i, Values: []float64{rng.Float64(), rng.Float64(), rng.Float64()}}
		}
		p := feature.SimpleProfile(feature.AggSum, feature.AggMax, feature.AggMin)
		maxSize := 1 + rng.Intn(3)
		sp, err := feature.NewSpace(items, p, maxSize)
		if err != nil {
			return false
		}
		// Monotone weights: sum ≥ 0, max ≥ 0, min ≤ 0.
		w := []float64{rng.Float64(), rng.Float64(), -rng.Float64()}
		k := 1 + rng.Intn(4)
		return checkAgainstBruteForce(t, sp, w, k, Options{})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestExpandAllExactOnArbitraryProfiles: with ExpandAll the search matches
// brute force on arbitrary profiles and weights, including avg and negative
// weights (the cases where the paper's line-3 pruning is heuristic).
func TestExpandAllExactOnArbitraryProfiles(t *testing.T) {
	aggs := []feature.Agg{feature.AggMin, feature.AggMax, feature.AggSum, feature.AggAvg}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(7)
		d := 1 + rng.Intn(3)
		entries := make([]feature.Agg, d)
		for i := range entries {
			entries[i] = aggs[rng.Intn(len(aggs))]
		}
		items := make([]feature.Item, n)
		for i := range items {
			vals := make([]float64, d)
			for j := range vals {
				vals[j] = rng.Float64()
			}
			items[i] = feature.Item{ID: i, Values: vals}
		}
		maxSize := 1 + rng.Intn(3)
		sp, err := feature.NewSpace(items, feature.SimpleProfile(entries...), maxSize)
		if err != nil {
			return false
		}
		w := make([]float64, d)
		for j := range w {
			w[j] = rng.Float64()*2 - 1
		}
		k := 1 + rng.Intn(3)
		return checkAgainstBruteForce(t, sp, w, k, Options{ExpandAll: true})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestExpandAllExactWithNulls exercises the null-aware bound: items may
// miss features, and the upper bound must stay sound.
func TestExpandAllExactWithNulls(t *testing.T) {
	aggs := []feature.Agg{feature.AggMin, feature.AggMax, feature.AggSum, feature.AggAvg}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		d := 1 + rng.Intn(3)
		entries := make([]feature.Agg, d)
		for i := range entries {
			entries[i] = aggs[rng.Intn(len(aggs))]
		}
		items := make([]feature.Item, n)
		for i := range items {
			vals := make([]float64, d)
			for j := range vals {
				if rng.Float64() < 0.25 {
					vals[j] = feature.Null
				} else {
					vals[j] = rng.Float64()
				}
			}
			items[i] = feature.Item{ID: i, Values: vals}
		}
		maxSize := 1 + rng.Intn(3)
		sp, err := feature.NewSpace(items, feature.SimpleProfile(entries...), maxSize)
		if err != nil {
			return false
		}
		w := make([]float64, d)
		for j := range w {
			w[j] = rng.Float64()*2 - 1
		}
		return checkAgainstBruteForce(t, sp, w, 1+rng.Intn(3), Options{ExpandAll: true})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestBoundPruneAblation: disabling bound pruning must not change results,
// only work (the ablation DESIGN.md calls out).
func TestBoundPruneAblation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		items := make([]feature.Item, n)
		for i := range items {
			items[i] = feature.Item{ID: i, Values: []float64{rng.Float64(), rng.Float64()}}
		}
		sp, err := feature.NewSpace(items, feature.SimpleProfile(feature.AggSum, feature.AggAvg), 3)
		if err != nil {
			return false
		}
		w := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		u, err := feature.NewUtility(sp.Profile, w)
		if err != nil {
			return false
		}
		ix := NewIndex(sp)
		a, err := ix.TopK(u, Options{K: 3, ExpandAll: true})
		if err != nil {
			return false
		}
		b, err := ix.TopK(u, Options{K: 3, ExpandAll: true, DisableBoundPrune: true})
		if err != nil {
			return false
		}
		if len(a.Packages) != len(b.Packages) {
			return false
		}
		for i := range a.Packages {
			if math.Abs(a.Packages[i].Utility-b.Packages[i].Utility) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestEarlyTermination: on a large item set with a monotone utility, the
// search must stop after accessing a small fraction of the items (the §4
// rationale for sorted access).
func TestEarlyTermination(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 20000
	items := make([]feature.Item, n)
	for i := range items {
		items[i] = feature.Item{ID: i, Values: []float64{rng.Float64(), rng.Float64()}}
	}
	sp, err := feature.NewSpace(items, feature.SimpleProfile(feature.AggSum, feature.AggMax), 4)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(sp)
	res, err := ix.TopK(mustUtility(t, sp, 0.7, 0.3), Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) != 5 {
		t.Fatalf("got %d packages", len(res.Packages))
	}
	if res.Accessed > n/100 {
		t.Errorf("accessed %d of %d items; early termination not effective", res.Accessed, n)
	}
}

func TestSingletonSpace(t *testing.T) {
	items := []feature.Item{{ID: 0, Values: []float64{0.5}}}
	sp, err := feature.NewSpace(items, feature.SimpleProfile(feature.AggSum), 3)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(sp)
	res, err := ix.TopK(mustUtility(t, sp, 1), Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) != 1 || res.Packages[0].Pkg.Signature() != "0" {
		t.Fatalf("singleton result wrong: %v", res.Packages)
	}
}

func TestKValidation(t *testing.T) {
	sp := paperSpace(t, 2)
	ix := NewIndex(sp)
	if _, err := ix.TopK(mustUtility(t, sp, 1, 0), Options{}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := ix.TopK(&feature.Utility{W: []float64{1}}, Options{K: 1}); err == nil {
		t.Error("dims mismatch accepted")
	}
}

func TestZeroWeightsDegenerate(t *testing.T) {
	sp := paperSpace(t, 2)
	ix := NewIndex(sp)
	res, err := ix.TopK(mustUtility(t, sp, 0, 0), Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) != 3 {
		t.Fatalf("degenerate returned %d packages", len(res.Packages))
	}
	// Deterministic order: {0}, {0,1}, {0,2}.
	want := []string{"0", "0|1", "0|2"}
	for i, w := range want {
		if got := res.Packages[i].Pkg.Signature(); got != w {
			t.Errorf("degenerate[%d] = %s, want %s", i, got, w)
		}
	}
}

// TestNegativeWeights: with both weights negative the best package is the
// single cheapest item (smallest sum contribution, smallest avg).
func TestNegativeWeights(t *testing.T) {
	sp := paperSpace(t, 2)
	ix := NewIndex(sp)
	res, err := ix.TopK(mustUtility(t, sp, -0.5, -0.5), Options{K: 1, ExpandAll: true})
	if err != nil {
		t.Fatal(err)
	}
	u := mustUtility(t, sp, -0.5, -0.5)
	want := pkgspace.BruteForceTopK(sp, u, 1)
	if math.Abs(res.Packages[0].Utility-want[0].Utility) > 1e-9 {
		t.Errorf("negative-weight top = %s (%.4f), want %s (%.4f)",
			res.Packages[0].Pkg, res.Packages[0].Utility, want[0].Pkg, want[0].Utility)
	}
}

func TestCandidatePredicate(t *testing.T) {
	sp := paperSpace(t, 2)
	ix := NewIndex(sp)
	// Only size-2 packages are acceptable.
	res, err := ix.TopK(mustUtility(t, sp, 0.5, 0.1), Options{
		K:         2,
		Candidate: pkgspace.SizeBetween(2, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range res.Packages {
		if sc.Pkg.Size() != 2 {
			t.Errorf("package %s violates candidate predicate", sc.Pkg)
		}
	}
	if res.Packages[0].Pkg.Signature() != "0|1" {
		t.Errorf("constrained top = %s, want {0,1}", res.Packages[0].Pkg)
	}
}

func TestExpandPredicateAntiMonotone(t *testing.T) {
	sp := paperSpace(t, 3)
	ix := NewIndex(sp)
	// Forbid item 0 entirely via an anti-monotone predicate.
	noZero := func(_ *feature.Space, p pkgspace.Package) bool { return !p.Contains(0) }
	res, err := ix.TopK(mustUtility(t, sp, 0.5, 0.5), Options{K: 3, Expand: noZero})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range res.Packages {
		if sc.Pkg.Contains(0) {
			t.Errorf("package %s contains forbidden item", sc.Pkg)
		}
	}
}

func TestMaxQueueTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 40
	items := make([]feature.Item, n)
	for i := range items {
		items[i] = feature.Item{ID: i, Values: []float64{rng.Float64(), rng.Float64()}}
	}
	sp, err := feature.NewSpace(items, feature.SimpleProfile(feature.AggSum, feature.AggSum), 6)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(sp)
	res, err := ix.TopK(mustUtility(t, sp, 1, 1), Options{K: 3, MaxQueue: 2, DisableBoundPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("MaxQueue=2 run not flagged Truncated")
	}
	if len(res.Packages) != 3 {
		t.Errorf("truncated run returned %d packages", len(res.Packages))
	}
}

// TestOrphanItemsReachable: items null on every profiled feature can still
// appear (only) through ExpandAll + avg dilution. Here a negative-weight
// avg means adding a null item strictly helps.
func TestOrphanItemsReachable(t *testing.T) {
	items := []feature.Item{
		{ID: 0, Values: []float64{0.9, 0.8}},
		{ID: 1, Values: []float64{feature.Null, feature.Null}},
	}
	p := feature.SimpleProfile(feature.AggSum, feature.AggAvg)
	sp, err := feature.NewSpace(items, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(sp)
	// sum weight positive (want item 0), avg weight negative (null item
	// dilutes the avg denominator → helps).
	u := mustUtility(t, sp, 0.6, -0.8)
	res, err := ix.TopK(u, Options{K: 1, ExpandAll: true})
	if err != nil {
		t.Fatal(err)
	}
	want := pkgspace.BruteForceTopK(sp, u, 1)
	if res.Packages[0].Pkg.Signature() != want[0].Pkg.Signature() {
		t.Errorf("top = %s, want %s (orphan dilution)", res.Packages[0].Pkg, want[0].Pkg)
	}
	if want[0].Pkg.Signature() != "0|1" {
		t.Fatalf("test premise broken: brute force wants %s", want[0].Pkg)
	}
}

// TestPaperPruningNeverBeatsBruteForce: even without ExpandAll, returned
// utilities can never exceed the true optimum (soundness; completeness is
// the part the paper trades away).
func TestPaperPruningNeverBeatsBruteForce(t *testing.T) {
	aggs := []feature.Agg{feature.AggMin, feature.AggMax, feature.AggSum, feature.AggAvg}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		d := 1 + rng.Intn(3)
		entries := make([]feature.Agg, d)
		for i := range entries {
			entries[i] = aggs[rng.Intn(len(aggs))]
		}
		items := make([]feature.Item, n)
		for i := range items {
			vals := make([]float64, d)
			for j := range vals {
				vals[j] = rng.Float64()
			}
			items[i] = feature.Item{ID: i, Values: vals}
		}
		sp, err := feature.NewSpace(items, feature.SimpleProfile(entries...), 1+rng.Intn(3))
		if err != nil {
			return false
		}
		w := make([]float64, d)
		for j := range w {
			w[j] = rng.Float64()*2 - 1
		}
		u, err := feature.NewUtility(sp.Profile, w)
		if err != nil {
			return false
		}
		ix := NewIndex(sp)
		res, err := ix.TopK(u, Options{K: 2})
		if err != nil {
			return false
		}
		want := pkgspace.BruteForceTopK(sp, u, 1)
		if len(res.Packages) > 0 && len(want) > 0 {
			if res.Packages[0].Utility > want[0].Utility+1e-9 {
				return false // impossible: claimed better than optimum
			}
			// Every returned package's utility must be its true utility.
			for _, sc := range res.Packages {
				truth := u.Score(pkgspace.Vector(sp, sc.Pkg))
				if math.Abs(truth-sc.Utility) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestIndexReuse: one index must serve many weight vectors (the ranking
// layer's usage pattern).
func TestIndexReuse(t *testing.T) {
	sp := paperSpace(t, 2)
	ix := NewIndex(sp)
	for _, w := range [][]float64{{0.5, 0.1}, {0.1, 0.5}, {-0.3, 0.9}, {0.1, 0.1}} {
		u := mustUtility(t, sp, w...)
		res, err := ix.TopK(u, Options{K: 2, ExpandAll: true})
		if err != nil {
			t.Fatal(err)
		}
		want := pkgspace.BruteForceTopK(sp, u, 2)
		for i := range want {
			if math.Abs(res.Packages[i].Utility-want[i].Utility) > 1e-9 {
				t.Errorf("w=%v rank %d: %g vs %g", w, i, res.Packages[i].Utility, want[i].Utility)
			}
		}
	}
}

// TestMaxAccessedBudget: a depth budget stops the scan early, flags
// truncation, and still returns valid (if possibly suboptimal) packages.
func TestMaxAccessedBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 5000
	items := make([]feature.Item, n)
	for i := range items {
		items[i] = feature.Item{ID: i, Values: []float64{rng.Float64(), rng.Float64()}}
	}
	sp, err := feature.NewSpace(items, feature.SimpleProfile(feature.AggSum, feature.AggAvg), 4)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(sp)
	u := mustUtility(t, sp, 0.5, -0.7) // conflicting: bound closes slowly
	res, err := ix.TopK(u, Options{K: 3, MaxAccessed: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accessed > 40 {
		t.Errorf("accessed %d > budget 40", res.Accessed)
	}
	if len(res.Packages) == 0 {
		t.Fatal("budgeted search returned nothing")
	}
	// Utilities reported must be the true utilities of the packages.
	for _, sc := range res.Packages {
		truth := u.Score(pkgspace.Vector(sp, sc.Pkg))
		if math.Abs(truth-sc.Utility) > 1e-9 {
			t.Errorf("package %s reported %g, true %g", sc.Pkg, sc.Utility, truth)
		}
	}
}
