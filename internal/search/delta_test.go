package search

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"toppkg/internal/feature"
)

// deltaTestProfile covers sum/max/avg plus an AggNull dimension (which
// must keep a nil list) over 3 raw features, so orphan handling (items
// null on every aggregated feature) is reachable.
func deltaTestProfile(t *testing.T) *feature.Profile {
	t.Helper()
	p, err := feature.NewProfile(3,
		feature.Entry{Feature: 0, Agg: feature.AggSum},
		feature.Entry{Feature: 1, Agg: feature.AggMax},
		feature.Entry{Feature: 2, Agg: feature.AggAvg},
		feature.Entry{Feature: 1, Agg: feature.AggNull},
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func deltaTestRow(rng *rand.Rand) []float64 {
	row := make([]float64, 3)
	for f := range row {
		switch rng.Intn(6) {
		case 0:
			row[f] = feature.Null
		case 1:
			row[f] = 4 // frequent duplicate to stress tie-breaks
		default:
			row[f] = math.Floor(rng.Float64()*100) / 10
		}
	}
	return row
}

// keyed is a stable-ID-keyed item set, the ordering the catalogue's dense
// compaction preserves; the test replays that compaction to build the
// remap/added inputs NewIndexFrom documents.
type keyed struct {
	stable []int
	rows   [][]float64
}

func (k keyed) space(t *testing.T, p *feature.Profile) *feature.Space {
	t.Helper()
	items := make([]feature.Item, len(k.rows))
	for i, r := range k.rows {
		items[i] = feature.Item{ID: i, Values: r}
	}
	sp, err := feature.NewSpace(items, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// mutate applies deletions, replacements and inserts by stable ID and
// returns the new set plus the remap/added translation.
func (k keyed) mutate(deleted map[int]bool, upserts map[int][]float64) (next keyed, remap, added []int32) {
	merged := make(map[int][]float64, len(k.stable)+len(upserts))
	for i, s := range k.stable {
		if !deleted[s] {
			merged[s] = k.rows[i]
		}
	}
	changed := make(map[int]bool)
	for s, row := range upserts {
		merged[s] = row
		changed[s] = true
	}
	var stables []int
	for s := range merged {
		stables = append(stables, s)
	}
	slices.Sort(stables)
	dense := make(map[int]int32, len(stables))
	for i, s := range stables {
		next.stable = append(next.stable, s)
		next.rows = append(next.rows, merged[s])
		dense[s] = int32(i)
	}
	remap = make([]int32, len(k.stable))
	for i, s := range k.stable {
		if deleted[s] || changed[s] {
			remap[i] = -1
		} else {
			remap[i] = dense[s]
		}
	}
	for s := range changed {
		added = append(added, dense[s])
	}
	slices.Sort(added)
	return next, remap, added
}

func assertIndexEqual(t *testing.T, got, want *Index) {
	t.Helper()
	for d := range want.asc {
		if !slices.Equal(got.asc[d], want.asc[d]) {
			t.Fatalf("asc[%d]:\n got %v\nwant %v", d, got.asc[d], want.asc[d])
		}
	}
	if !slices.Equal(got.orphans, want.orphans) {
		t.Fatalf("orphans: got %v, want %v", got.orphans, want.orphans)
	}
}

// TestNewIndexFromEquivalence checks randomized chained deltas — appends,
// mid-inserts, deletions (which renumber every dense ID after them) and
// replacements — against a from-scratch NewIndex over the same items.
func TestNewIndexFromEquivalence(t *testing.T) {
	p := deltaTestProfile(t)
	for trial := 0; trial < 150; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		cur := keyed{}
		n := 2 + rng.Intn(15)
		for i := 0; i < n; i++ {
			cur.stable = append(cur.stable, i*3) // gaps leave room for mid-inserts
			cur.rows = append(cur.rows, deltaTestRow(rng))
		}
		ix := NewIndex(cur.space(t, p))
		for step := 0; step < 4; step++ {
			deleted := map[int]bool{}
			upserts := map[int][]float64{}
			for _, s := range cur.stable {
				switch rng.Intn(8) {
				case 0:
					if len(cur.stable)-len(deleted) > 1 {
						deleted[s] = true
					}
				case 1:
					upserts[s] = deltaTestRow(rng) // replacement
				}
			}
			for a := rng.Intn(3); a > 0; a-- {
				upserts[rng.Intn(3*n+6)] = deltaTestRow(rng) // insert (mid or append)
			}
			for s := range upserts {
				delete(deleted, s)
			}
			next, remap, added := cur.mutate(deleted, upserts)
			if len(next.rows) == 0 {
				continue
			}
			nsp := next.space(t, p)
			got := NewIndexFrom(ix, nsp, remap, added)
			want := NewIndex(nsp)
			assertIndexEqual(t, got, want)
			if got.Space() != nsp {
				t.Fatal("derived index not bound to the new space")
			}
			cur, ix = next, got // chain deltas
		}
	}
}

// TestNewIndexFromSharesUntouchedLists asserts the copy-on-write
// contract: under an identity remap, a dimension the batch does not touch
// shares the parent's array, while touched dimensions get fresh ones.
func TestNewIndexFromSharesUntouchedLists(t *testing.T) {
	p := deltaTestProfile(t)
	cur := keyed{
		stable: []int{0, 1, 2},
		rows:   [][]float64{{1, 5, 2}, {3, 4, 1}, {2, 6, 3}},
	}
	sp := cur.space(t, p)
	ix := NewIndex(sp)
	// Append a new item that is null on features 0 and 2: only the max
	// dimension (feature 1) is touched, and no dense ID shifts.
	next, remap, added := cur.mutate(nil, map[int][]float64{9: {feature.Null, 7, feature.Null}})
	nsp := next.space(t, p)
	got := NewIndexFrom(ix, nsp, remap, added)
	assertIndexEqual(t, got, NewIndex(nsp))
	if &got.asc[0][0] != &ix.asc[0][0] {
		t.Fatal("untouched sum list was reallocated instead of shared")
	}
	if &got.asc[2][0] != &ix.asc[2][0] {
		t.Fatal("untouched avg list was reallocated instead of shared")
	}
	if len(got.asc[1]) != 4 || &got.asc[1][0] == &ix.asc[1][0] {
		t.Fatal("touched max list should be a fresh spliced array")
	}

	// A deletion renumbers dense IDs: nothing may be shared, and results
	// must still match a fresh build.
	next2, remap2, added2 := next.mutate(map[int]bool{0: true}, nil)
	nsp2 := next2.space(t, p)
	got2 := NewIndexFrom(got, nsp2, remap2, added2)
	assertIndexEqual(t, got2, NewIndex(nsp2))
}

// TestNewIndexFromTopKMatches runs full searches over delta-built and
// scratch-built indexes and requires identical packages and utilities —
// the contract the serving layer actually depends on.
func TestNewIndexFromTopKMatches(t *testing.T) {
	p := deltaTestProfile(t)
	rng := rand.New(rand.NewSource(99))
	cur := keyed{}
	for i := 0; i < 12; i++ {
		cur.stable = append(cur.stable, i*2)
		cur.rows = append(cur.rows, deltaTestRow(rng))
	}
	ix := NewIndex(cur.space(t, p))
	for step := 0; step < 6; step++ {
		upserts := map[int][]float64{rng.Intn(30): deltaTestRow(rng)}
		deleted := map[int]bool{}
		if step%2 == 1 {
			deleted[cur.stable[rng.Intn(len(cur.stable))]] = true
			for s := range upserts {
				delete(deleted, s)
			}
		}
		next, remap, added := cur.mutate(deleted, upserts)
		nsp := next.space(t, p)
		got := NewIndexFrom(ix, nsp, remap, added)
		want := NewIndex(nsp)
		for trial := 0; trial < 5; trial++ {
			w := make([]float64, nsp.Dims())
			for i := range w {
				w[i] = rng.Float64()*2 - 1
			}
			u, err := feature.NewUtility(nsp.Profile, w)
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{K: 3}
			rg, err := got.TopK(u, opts)
			if err != nil {
				t.Fatal(err)
			}
			rw, err := want.TopK(u, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(rg.Packages) != len(rw.Packages) {
				t.Fatalf("step %d: %d vs %d packages", step, len(rg.Packages), len(rw.Packages))
			}
			for i := range rg.Packages {
				if !slices.Equal(rg.Packages[i].Pkg.IDs, rw.Packages[i].Pkg.IDs) ||
					rg.Packages[i].Utility != rw.Packages[i].Utility {
					t.Fatalf("step %d pkg %d: %v (%v) vs %v (%v)", step, i,
						rg.Packages[i].Pkg.IDs, rg.Packages[i].Utility,
						rw.Packages[i].Pkg.IDs, rw.Packages[i].Utility)
				}
			}
		}
		cur, ix = next, got
	}
}
