// Package search implements Top-k-Pkg (paper §4, Algorithms 2–4): finding
// the top-k packages of flexible size ≤ φ for a fixed weight vector,
// without enumerating the exponential package space. Items are consumed
// from per-dimension sorted lists in round-robin order; packages are grown
// incrementally in two queues (expandable Q+ and closed Q−); and the search
// stops as soon as the best utility still reachable (ηup, from the
// upper-exp bound of Algorithm 3) cannot beat the current k-th best (ηlo).
package search

import (
	"cmp"
	"container/heap"
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
	"toppkg/internal/skyline"
)

// Options configures one Top-k-Pkg run.
type Options struct {
	// K is the number of packages to return.
	K int
	// ExpandAll disables Algorithm 4's line-3 pruning (only grow a package
	// with an item that strictly improves it). The paper's pruning is a
	// heuristic for profiles with non-monotone marginals (avg, min): a
	// discarded equal-utility subpackage can block a strictly better
	// superset. ExpandAll restores exactness at extra cost; see DESIGN.md.
	ExpandAll bool
	// DisableBoundPrune keeps packages in Q+ even when their upper bound
	// cannot beat the current k-th best. The pruning (sound, and implied by
	// the paper's ηup/ηlo machinery) is on by default; disabling it exists
	// for the ablation benchmarks.
	DisableBoundPrune bool
	// MaxQueue caps the expandable queue Q+. The paper's algorithm keeps
	// every improvable package, which can grow combinatorially before the
	// boundary bound tightens; capping turns the search into a beam over
	// the highest-upper-bound packages. 0 selects DefaultMaxQueue; a
	// negative value removes the cap (exact, possibly exponential). When
	// the cap drops packages, Result.Truncated is set and results are
	// best-effort.
	MaxQueue int
	// MaxAccessed bounds how many distinct items the search draws from the
	// sorted lists (0 = unlimited). The boundary bound can take thousands
	// of accesses to close on conflicting profiles even though the actual
	// top packages were found within the first dozens of items (the §4
	// intuition); a depth budget trades that certification for speed.
	// When the budget stops the search early, Result.Truncated is set.
	MaxAccessed int
	// Candidate, when non-nil, filters which packages may enter the result
	// (the schema predicates of §7). Packages failing it are still expanded,
	// since predicates such as "at least two novels" are not anti-monotone.
	Candidate pkgspace.Predicate
	// Expand, when non-nil, prunes package growth: a package failing it is
	// neither kept nor grown. Use only for anti-monotone predicates (e.g.
	// MaxCount), otherwise results may be incomplete.
	Expand pkgspace.Predicate
	// DisableDominancePrune turns off the skyline head filter. The filter
	// only engages when the utility is monotone for the profile (positive
	// weights on sum/max, negative on min, no weighted avg), and skips a
	// drawn item only when a sound upper bound over every package
	// containing it falls strictly below the current k-th best — exact for
	// uncapped runs; under a Q+ cap the skipped items' children no longer
	// compete for beam slots, so beam results may differ (see DESIGN
	// notes on nextItem). Disabling exists for the ablation benchmarks and
	// the pruned≡unpruned property suite.
	DisableDominancePrune bool
	// DisablePartition turns off sketch-refine partitioned search (see
	// partitioned.go). Like the dominance filter it only engages for
	// monotone utilities with bound pruning on and no predicates; uncapped
	// unbudgeted runs stay bit-identical with it on or off (the sketch
	// bound only prunes strictly-below-the-floor work), while beamed runs
	// refine inside the sketch-selected clusters and may differ from an
	// unpartitioned beam. Disabling exists for ablations and the
	// partitioned≡unpartitioned property suite.
	DisablePartition bool
}

// DefaultMaxQueue is the Q+ cap applied when Options.MaxQueue is zero.
// Exhaustive runs (tests against the brute-force oracle) should pass
// MaxQueue: -1.
const DefaultMaxQueue = 512

// CacheKey encodes the options canonically for result-cache keys: two
// option sets with equal keys produce identical TopK results over the same
// index and utility. ok is false when the options carry predicate
// functions — closures cannot be identified across calls, so their results
// must never be reused from a cache.
func (o Options) CacheKey() (key string, ok bool) {
	if o.Candidate != nil || o.Expand != nil {
		return "", false
	}
	return fmt.Sprintf("k%d;ea%t;bp%t;mq%d;ma%d;dp%t;pt%t",
		o.K, o.ExpandAll, o.DisableBoundPrune, o.MaxQueue, o.MaxAccessed, o.DisableDominancePrune, o.DisablePartition), true
}

// Result is the outcome of a Top-k-Pkg run, with the work counters the
// experiments report.
type Result struct {
	// Packages holds the top-k in descending utility (ties by the
	// deterministic package order).
	Packages []pkgspace.Scored
	// Accessed is the number of distinct items drawn from the sorted lists.
	Accessed int
	// Created is the number of candidate packages materialized.
	Created int
	// Truncated reports that MaxQueue forced dropping expandable packages.
	Truncated bool
	// DomPruned counts drawn items the dominance filter skipped (zero when
	// the filter never engaged).
	DomPruned int
	// SketchSkipped counts items the sketch bound excluded: draws skipped
	// because their cluster cannot beat the sketch floor (uncapped runs),
	// or items left outside the refined subset entirely (beamed runs).
	// Zero when partitioning never engaged.
	SketchSkipped int
	// RefineClustersOpened is the number of distinct clusters the refine
	// phase read (zero when partitioning never engaged).
	RefineClustersOpened int
	// FP is the conservative read footprint of the run, recorded so an
	// epoch-survivable result cache can prove a catalogue delta cannot have
	// changed this result (see Footprint). Nil for degenerate runs (no
	// active lists), which read the whole space.
	FP *Footprint
}

// DimBound records, for one utility dimension the search weighted, how far
// its sorted list was consumed. The search replays bit-identically on a new
// epoch as long as no unconsumed item moves into a consumed prefix: an
// inserted or re-priced item whose value reaches Tau (ties included — list
// order breaks ties by dense id) would be drawn and change the trace.
type DimBound struct {
	// Dim is the profile entry index; Feat its underlying item feature.
	Dim, Feat int32
	// HasList reports whether the dimension had a sorted-list cursor. A
	// weighted dimension without one (every item null on the feature) is
	// invalidated by any item gaining a value there: the fresh search would
	// build a cursor the cached run never had.
	HasList bool
	// Desc is the traversal direction (true for positive weight).
	Desc bool
	// Done reports the cursor consumed its whole list; any new list member
	// would extend the consumed prefix.
	Done bool
	// Tau is the boundary value of the last drawn item (meaningful only
	// when HasList).
	Tau float64
}

// Footprint is everything a Top-k-Pkg run read, summarized conservatively:
// the distinct items materialized into the run (sorted dense ids), the
// per-dimension list prefixes consumed, how far the orphan drain got, and
// the admission bound (k-th package utility) the issue's retention rule
// additionally tests inserted items against.
type Footprint struct {
	// Accessed holds the dense ids of every item the run drew, sorted
	// ascending. Any change to one of these items changes what the search
	// read.
	Accessed []int32
	// Bounds has one entry per weighted non-null profile dimension.
	Bounds []DimBound
	// OrphanOpen reports the orphan drain loop ran to completion without
	// closing the bound: a fresh search would access any newly orphaned
	// item, wherever it lands.
	OrphanOpen bool
	// OrphanTau is the dense id of the orphan the drain loop broke at (-1
	// if it never drew one): newly orphaned items at or below it would be
	// drawn before the same break.
	OrphanTau int32
	// Admission is the k-th best package utility at termination (-Inf when
	// fewer than K candidates were found).
	Admission float64
	// Weights aliases the run's weight vector (utilities are immutable).
	Weights []float64
	// Clusters lists the partition clusters a beamed sketch-refine run
	// opened (sorted ascending; nil for unpartitioned and for uncapped
	// partitioned runs, whose results are bit-identical to unpartitioned
	// and so survive on the standard rules alone). A beamed partitioned
	// result additionally depends on the partition itself: the cache must
	// drop it when the partition re-clusters, when any cluster's bounds or
	// representative change, or when one of these clusters' membership is
	// touched.
	Clusters []int32
}

// Index holds the per-entry sorted item lists for a space, so that repeated
// Top-k-Pkg runs (one per weight-vector sample, §4) share the O(n log n)
// sort work. Lists exclude items that are null on the entry's feature; a
// separate orphan list holds items null on every profile feature so they
// are still reachable.
type Index struct {
	space *feature.Space
	// asc[d] lists item ids ascending by the feature of profile entry d.
	asc [][]int32
	// orphans are items with null on every entry's feature.
	orphans []int32
	// seenPool recycles the per-run accessed stamp array (see seenSet):
	// claiming it for a run is O(1), with no O(n) zeroing or O(touched)
	// sparse reset — the costs that dominated run setup at large n.
	seenPool sync.Pool
	// heads caches the space's non-dominated item set (skyline.Heads),
	// computed lazily on the first monotone-utility search or injected by
	// the catalogue's incremental delta maintenance (SetHeads). Immutable
	// once set.
	heads     atomic.Pointer[skyline.Set]
	headsOnce sync.Once
	// part caches the sketch-refine partition and its representative
	// sub-index, materialized lazily on the first eligible search (every
	// eligible search materializes, so results within one epoch are
	// consistent) or injected by the catalogue (SetPartition). partClusters
	// configures the cluster count (0 = auto ⌈√n⌉ above PartitionMinItems,
	// <0 = partitioning disabled for this index); partStats, when set,
	// aggregates per-search partition counters across runs.
	part         atomic.Pointer[partState]
	partOnce     sync.Once
	partClusters int
	partStats    *PartitionStats
	// seenSrc, when non-nil, is the index whose seenPool this (subset)
	// index borrows: subset indexes share the full space's dense id range,
	// so sharing the pool avoids an O(n) stamp-array allocation per refine.
	seenSrc *Index
}

// seenSet is a stamped membership set over dense item IDs: item i is a
// member of the current run iff marks[i] equals the run's stamp. Claiming
// the set for a new run just increments the stamp; stale marks from prior
// runs can never collide (the stamp is a strictly increasing uint64).
type seenSet struct {
	stamp uint64
	marks []uint64
}

// Heads returns the space's non-dominated item set, computing it on first
// use. Safe for concurrent searches.
func (ix *Index) Heads() *skyline.Set {
	if s := ix.heads.Load(); s != nil {
		return s
	}
	ix.headsOnce.Do(func() {
		ix.heads.CompareAndSwap(nil, skyline.Heads(ix.space))
	})
	return ix.heads.Load()
}

// PeekHeads returns the head set if it has been computed or injected, nil
// otherwise — without triggering the computation.
func (ix *Index) PeekHeads() *skyline.Set { return ix.heads.Load() }

// SetHeads injects a precomputed head set (the catalogue's incremental
// delta maintenance). A set that is already present wins; the index never
// observes two different head sets.
func (ix *Index) SetHeads(s *skyline.Set) { ix.heads.CompareAndSwap(nil, s) }

// NewIndex sorts the items of sp once per profile entry, scanning the
// per-feature columns rather than chasing item rows.
func NewIndex(sp *feature.Space) *Index {
	dims := sp.Dims()
	ix := &Index{space: sp, asc: make([][]int32, dims)}
	inSome := make([]bool, sp.N())
	for d := 0; d < dims; d++ {
		e := sp.Profile.Entry(d)
		if e.Agg == feature.AggNull {
			continue
		}
		col := sp.Col(e.Feature)
		var ids []int32
		for i, v := range col {
			if !feature.IsNull(v) {
				ids = append(ids, int32(i))
				inSome[i] = true
			}
		}
		slices.SortFunc(ids, cmpByValue(col))
		ix.asc[d] = ids
	}
	for i := range inSome {
		if !inSome[i] {
			ix.orphans = append(ix.orphans, int32(i))
		}
	}
	return ix
}

// cmpByValue is the total order every dimension list uses: ascending by
// the items' value in the feature column, ties broken by dense ID. Lists
// exclude null values, so the comparison never sees NaN.
func cmpByValue(col []float64) func(a, b int32) int {
	return func(a, b int32) int {
		va, vb := col[a], col[b]
		if va != vb {
			if va < vb {
				return -1
			}
			return 1
		}
		return cmp.Compare(a, b)
	}
}

// Space returns the space the index was built over.
func (ix *Index) Space() *feature.Space { return ix.space }

// pkg is a package under construction: its member ids, aggregate state and
// cached utility.
type pkg struct {
	ids   []int
	state *feature.State
	util  float64
	// bound is the upper-exp extension bound as of boundRound. The boundary
	// vector τ only worsens over time, so a stale bound remains a sound
	// upper bound; it is refreshed lazily (every boundRefresh rounds).
	bound      float64
	boundRound int
}

// boundRefresh is how many accessed items may pass before a queued
// package's extension bound is recomputed against the current τ.
const boundRefresh = 16

func (p *pkg) toPackage() pkgspace.Package {
	ids := append([]int(nil), p.ids...)
	slices.Sort(ids)
	return pkgspace.Package{IDs: ids}
}

// run carries the mutable state of one Top-k-Pkg execution.
type run struct {
	ix   *Index
	u    *feature.Utility
	opts Options

	// Active list cursors: entry dim, position, boundary value, direction.
	lists []listCursor

	qPlus []*pkg
	cands *candHeap

	seen        *seenSet
	accessedIDs []int32
	accessed    int
	created     int
	truncated   bool
	maxQueue    int
	round       int

	// Dominance pruning (engaged only for monotone utilities with bound
	// pruning on): heads is the space's skyline, emptyState scores
	// singletons, initModes/initTaus/initFastPad freeze the pad
	// descriptors at their initial values — every list's τ at its best —
	// so headBound soundly bounds packages joined at any later point of
	// the trace, not just extensions of the current boundary.
	heads       *skyline.Set
	emptyState  *feature.State
	initModes   []uint8
	initTaus    []float64
	initFastPad bool
	domPruned   int

	// Sketch-refine context (nil for plain runs): pc carries the sketch
	// floor L and, on uncapped exact runs, the partition for per-cluster
	// draw skips. floorL caches pc's floor (-Inf when absent) for the hot
	// loops; partContribs is the virtual-item scratch clusterBound folds.
	pc           *partCtx
	floorL       float64
	partContribs []feature.Contrib

	// hasList[d] reports whether profile entry d has an active cursor.
	hasList []bool

	// Fused-kernel plans (per-dimension constants hoisted out of the hot
	// loops): scorePlan drives ScoreAfter, padPlan drives PadUpper.
	// padModes/padTaus mirror r.lists in order (ascending dimension),
	// updated as each cursor's τ advances.
	scorePlan *feature.ScorePlan
	padPlan   *feature.PadPlan
	padModes  []uint8
	padTaus   []float64

	// fastPad is true while every pad mode is PadTau (no nullable features,
	// no exhausted cursors), enabling the non-mutating PadUpperTau kernel
	// that skips the scratch copy. Cleared the moment any cursor exhausts.
	fastPad bool

	// Reusable scratch buffers for the hot expansion path. scratch backs
	// upperExp's padding; scratchGrow holds tentative grown states (the two
	// must stay distinct — upperExp copies its argument into scratch).
	scratch     *feature.State
	scratchGrow *feature.State

	// Recycling pools scoped to this run: packages dropped from Q+ donate
	// their aggregate states and id buffers to newly materialized children,
	// and the per-expand newcomers slice is reused across calls. Pooling
	// per TopK invocation (not globally) keeps states bound to one space
	// and needs no synchronization.
	freeStates []*feature.State
	freePkgs   []*pkg
	newcomers  []*pkg

	// boundScratch backs truncate's primitive bound sort.
	boundScratch []float64

	// stScratch/guScratch back expand's batched grow-utility pre-pass:
	// per round, the states of every queued package and their ScoreAfter
	// utilities against the drawn item, computed in one transposed sweep.
	stScratch []*feature.State
	guScratch []float64
}

// newChild materializes p ∪ {item} with the given precomputed utility,
// reusing a recycled pkg shell and state when available. The child state is
// grown through the score plan (GrowFrom), which only maintains the
// dimensions the run ever reads.
func (r *run) newChild(p *pkg, item int, util float64) *pkg {
	var np *pkg
	if n := len(r.freePkgs); n > 0 {
		np = r.freePkgs[n-1]
		r.freePkgs = r.freePkgs[:n-1]
	} else {
		np = &pkg{}
	}
	var st *feature.State
	if n := len(r.freeStates); n > 0 {
		st = r.freeStates[n-1]
		r.freeStates = r.freeStates[:n-1]
	} else {
		st = feature.NewState(r.ix.space)
	}
	st.GrowFrom(p.state, r.scorePlan, int32(item))
	np.state = st
	np.ids = append(append(np.ids[:0], p.ids...), item)
	np.util = util
	np.bound, np.boundRound = 0, 0
	return np
}

// release recycles a package leaving Q+. Candidates keep their own sorted
// id copies (toPackage), so nothing aliases the recycled buffers.
func (r *run) release(p *pkg) {
	r.freeStates = append(r.freeStates, p.state)
	p.state = nil
	r.freePkgs = append(r.freePkgs, p)
}

type listCursor struct {
	dim  int       // profile entry index
	feat int       // underlying item feature
	col  []float64 // the feature's value column (τ reads)
	desc bool      // true: traverse descending (weight > 0)
	pos  int       // entries consumed
	ids  []int32
	tau  float64 // value of the last accessed item (best possible unseen)
	done bool
}

// TopK runs Top-k-Pkg for utility u over the indexed space.
func (ix *Index) TopK(u *feature.Utility, opts Options) (Result, error) {
	if opts.K <= 0 {
		return Result{}, fmt.Errorf("search: K must be positive, got %d", opts.K)
	}
	if len(u.W) != ix.space.Dims() {
		return Result{}, fmt.Errorf("search: utility has %d dims, space has %d", len(u.W), ix.space.Dims())
	}
	if ps := ix.partitionFor(u, opts); ps != nil {
		return ix.topKPartitioned(u, opts, ps)
	}
	return ix.topKRun(u, opts, nil)
}

// topKRun executes one Top-k-Pkg trace, optionally under a partition
// context (sketch floor + cluster-bound skips).
func (ix *Index) topKRun(u *feature.Utility, opts Options, pc *partCtx) (Result, error) {
	r, ok := ix.newRun(u, opts, pc)
	if !ok {
		return r.degenerate(), nil
	}
	return r.exec(), nil
}

// newRun builds the cursors, kernel plans and pruning state of one run
// without executing it (the beamed sketch-refine path needs the plans to
// bound clusters before deciding what to search). ok is false for the
// degenerate no-active-list case.
func (ix *Index) newRun(u *feature.Utility, opts Options, pc *partCtx) (r *run, ok bool) {
	r = &run{
		ix:          ix,
		u:           u,
		opts:        opts,
		cands:       &candHeap{k: opts.K},
		maxQueue:    opts.MaxQueue,
		pc:          pc,
		floorL:      negInf,
		scratch:     feature.NewState(ix.space),
		scratchGrow: feature.NewState(ix.space),
	}
	if pc != nil {
		r.floorL = pc.floorL
	}
	if r.maxQueue == 0 {
		r.maxQueue = DefaultMaxQueue
	}
	// Build the active list cursors (Algorithm 2 line 2): one per entry
	// with non-zero weight, traversed from the desirable end.
	for d := 0; d < ix.space.Dims(); d++ {
		e := ix.space.Profile.Entry(d)
		if u.W[d] == 0 || e.Agg == feature.AggNull || len(ix.asc[d]) == 0 {
			continue
		}
		lc := listCursor{dim: d, feat: e.Feature, col: ix.space.Col(e.Feature), desc: u.W[d] > 0, ids: ix.asc[d]}
		// Initialize τ to the best value in the list: unseen items can never
		// beat the top of the list.
		if lc.desc {
			lc.tau = lc.col[lc.ids[len(lc.ids)-1]]
		} else {
			lc.tau = lc.col[lc.ids[0]]
		}
		r.lists = append(r.lists, lc)
	}
	if len(r.lists) == 0 {
		return r, false
	}
	r.hasList = make([]bool, ix.space.Dims())
	for li := range r.lists {
		r.hasList[r.lists[li].dim] = true
	}
	var skipDims, listDims []int
	for d := 0; d < ix.space.Dims(); d++ {
		if u.W[d] != 0 && !r.hasList[d] {
			skipDims = append(skipDims, d)
		}
	}
	r.padModes = make([]uint8, len(r.lists))
	r.padTaus = make([]float64, len(r.lists))
	for li := range r.lists {
		lc := &r.lists[li]
		listDims = append(listDims, lc.dim)
		r.padTaus[li] = lc.tau
		if ix.space.HasNull(lc.feat) {
			r.padModes[li] = feature.PadTauOrSkip
		} else {
			r.padModes[li] = feature.PadTau
		}
	}
	r.fastPad = len(r.lists) <= 16
	for _, m := range r.padModes {
		if m != feature.PadTau {
			r.fastPad = false
		}
	}
	r.scorePlan = feature.NewScorePlan(ix.space, u)
	r.padPlan = feature.NewPadPlan(ix.space, u, skipDims, listDims)

	// Engage the dominance filter only when it is provably safe: the
	// utility must be monotone for the profile (a dominated item is then
	// pointwise no better than its dominator on every weighted dimension)
	// and bound pruning must be on (its strict admission tests are what
	// keep equal-utility tie-breaks unreachable for skipped items). The
	// pad descriptors are frozen now — every τ at its list's best value —
	// so headBound bounds membership in any package of the trace. A
	// partition context needs the same frozen descriptors for its cluster
	// bounds, under the same monotonicity gate (partitionFor enforces it).
	if !opts.DisableBoundPrune && r.monotone() &&
		(!opts.DisableDominancePrune || (pc != nil && pc.p != nil)) {
		r.emptyState = feature.NewState(ix.space)
		r.initModes = slices.Clone(r.padModes)
		r.initTaus = slices.Clone(r.padTaus)
		r.initFastPad = r.fastPad
		if !opts.DisableDominancePrune {
			r.heads = ix.Heads()
		}
	}
	return r, true
}

// exec runs the prepared trace to completion.
func (r *run) exec() Result {
	ix := r.ix
	opts := r.opts
	pool := &ix.seenPool
	if ix.seenSrc != nil {
		pool = &ix.seenSrc.seenPool
	}
	seen, _ := pool.Get().(*seenSet)
	if seen == nil || len(seen.marks) != ix.space.N() {
		seen = &seenSet{marks: make([]uint64, ix.space.N())}
	}
	seen.stamp++
	r.seen = seen
	defer pool.Put(seen)

	empty := &pkg{state: feature.NewState(ix.space), util: 0}
	empty.bound = r.upperExp(empty.state)
	r.qPlus = append(r.qPlus, empty)

	rr := 0
	for {
		// Draw the next item in round-robin order (Algorithm 2 lines 4–6).
		item, ok := r.nextItem(&rr)
		if !ok {
			break
		}
		if r.seen.marks[item] == r.seen.stamp {
			continue
		}
		r.seen.marks[item] = r.seen.stamp
		r.accessedIDs = append(r.accessedIDs, item)
		r.accessed++
		// Sketch skip: when a partition context is active, an item whose
		// whole cluster bounds strictly below the sketch floor L can head
		// or join no package that enters the results (L is the utility of
		// real packages, so L ≤ the final k-th best; strict comparison
		// keeps equal-utility tie-breaks unreachable). Mirrors the
		// dominance skip below: τ advanced, the item counts as accessed.
		if r.pc != nil && r.pc.p != nil {
			c := r.pc.p.Assign[item]
			if r.clusterBound(c) < r.floorL {
				r.pc.skipped++
				if opts.MaxAccessed > 0 && r.accessed >= opts.MaxAccessed {
					r.truncated = true
					break
				}
				continue
			}
			r.pc.open(c)
		}
		// Dominance skip: a non-head item whose best package-membership
		// bound falls strictly below the current k-th best can head or
		// join no package that enters the results — don't expand it. The
		// item still advanced τ (nextItem) and still counts as accessed,
		// so footprints stay conservative. While the heap is not full
		// ηlo is -Inf and nothing is skipped (unless a sketch floor is
		// active, which is a sound k-th stand-in from the start).
		if thr := max(r.cands.kthUtility(), r.floorL); r.heads != nil && !r.heads.Contains(item) && r.headBound(item) < thr {
			r.domPruned++
			if opts.MaxAccessed > 0 && r.accessed >= opts.MaxAccessed {
				r.truncated = true
				break
			}
			continue
		}
		etaLo, etaUp := r.expand(int(item))
		if etaUp <= etaLo || len(r.qPlus) == 0 {
			break
		}
		if opts.MaxAccessed > 0 && r.accessed >= opts.MaxAccessed {
			r.truncated = true
			break
		}
	}
	// Drain orphans (items null on every active feature): they can only
	// matter through size effects (avg denominators), so only in ExpandAll
	// mode can they change results; access them for completeness.
	orphanOpen := false
	orphanTau := int32(-1)
	if len(r.qPlus) > 0 {
		orphanOpen = true
		for _, o := range r.ix.orphans {
			if r.seen.marks[o] != r.seen.stamp {
				r.seen.marks[o] = r.seen.stamp
				r.accessedIDs = append(r.accessedIDs, o)
				r.accessed++
				etaLo, etaUp := r.expand(int(o))
				if etaUp <= etaLo || len(r.qPlus) == 0 {
					orphanOpen = false
					orphanTau = o
					break
				}
			}
		}
	}

	fp := r.footprint(orphanOpen, orphanTau)
	if r.domPruned > 0 && r.truncated {
		// Beam truncation plus dominance skips: the skipped items'
		// children no longer competed for beam slots, so this result is
		// not provably replayable after a catalogue delta — withhold the
		// footprint and let the cache drop it on any swap.
		fp = nil
	}
	return Result{
		Packages:  r.cands.sorted(),
		Accessed:  r.accessed,
		Created:   r.created,
		Truncated: r.truncated,
		DomPruned: r.domPruned,
		FP:        fp,
	}
}

// monotone reports whether the utility is monotone for the profile: every
// weighted dimension can only improve as better items join (positive
// weight on sum/max, negative on min, no weighted avg). Exactly then does
// item dominance under skyline.ProfileDirs imply pointwise utility
// dominance, which is what headBound's pad construction assumes.
func (r *run) monotone() bool {
	p := r.ix.space.Profile
	for d := 0; d < p.Dims(); d++ {
		if r.u.W[d] == 0 {
			continue
		}
		switch p.Entry(d).Agg {
		case feature.AggSum, feature.AggMax:
			if r.u.W[d] < 0 {
				return false
			}
		case feature.AggMin:
			if r.u.W[d] > 0 {
				return false
			}
		case feature.AggAvg:
			return false
		}
	}
	return true
}

// headBound returns a sound upper bound on the utility of every package
// containing the item: the max of the singleton's own utility and the
// upper-exp pad bound of the singleton taken against the *initial* τ
// vector (each list's best value). Initial τ is what makes the bound valid
// for packages whose other members were drawn before the item — their
// values exceed the current boundary but never the lists' tops.
func (r *run) headBound(id int32) float64 {
	b := r.emptyState.ScoreAfter(r.scorePlan, id)
	if r.ix.space.MaxSize > 1 {
		st := r.scratchGrow
		st.GrowFrom(r.emptyState, r.scorePlan, id)
		var ext float64
		if r.initFastPad {
			ext = st.PadUpperTau(r.padPlan, r.initTaus, r.ix.space.MaxSize)
		} else {
			s := r.scratch
			s.CopyFrom(st)
			ext = s.PadUpper(r.padPlan, r.initModes, r.initTaus, r.ix.space.MaxSize)
		}
		if ext > b {
			b = ext
		}
	}
	return b
}

// footprint assembles the run's conservative read summary (see Footprint).
// The accessed-id slice is donated to the footprint after an in-place sort
// (safe: the deferred bitmap reset only reads the values), so capture costs
// two allocations per run — the Footprint itself and its Bounds slice.
func (r *run) footprint(orphanOpen bool, orphanTau int32) *Footprint {
	slices.Sort(r.accessedIDs)
	bounds := make([]DimBound, 0, len(r.lists))
	li := 0
	for d := 0; d < r.ix.space.Dims(); d++ {
		e := r.ix.space.Profile.Entry(d)
		if r.u.W[d] == 0 || e.Agg == feature.AggNull {
			continue
		}
		if r.hasList[d] {
			lc := &r.lists[li]
			li++
			bounds = append(bounds, DimBound{
				Dim: int32(d), Feat: int32(e.Feature),
				HasList: true, Desc: lc.desc, Done: lc.done, Tau: lc.tau,
			})
		} else {
			bounds = append(bounds, DimBound{Dim: int32(d), Feat: int32(e.Feature)})
		}
	}
	return &Footprint{
		Accessed:   r.accessedIDs,
		Bounds:     bounds,
		OrphanOpen: orphanOpen,
		OrphanTau:  orphanTau,
		Admission:  r.cands.kthUtility(),
		Weights:    r.u.W,
	}
}

// nextItem performs one sorted access in round-robin fashion, updating the
// boundary value of the list it draws from. ok is false when every list is
// exhausted.
func (r *run) nextItem(rr *int) (int32, bool) {
	n := len(r.lists)
	for tries := 0; tries < n; tries++ {
		li := *rr
		lc := &r.lists[li]
		*rr = (*rr + 1) % n
		if lc.done {
			continue
		}
		var id int32
		if lc.desc {
			id = lc.ids[len(lc.ids)-1-lc.pos]
		} else {
			id = lc.ids[lc.pos]
		}
		lc.pos++
		lc.tau = lc.col[id]
		r.padTaus[li] = lc.tau
		if lc.pos >= len(lc.ids) {
			lc.done = true
			r.padModes[li] = feature.PadSkip
			r.fastPad = false
		}
		return id, true
	}
	return 0, false
}

// expand implements Algorithm 4 for the newly accessed item, returning the
// updated (ηlo, ηup) thresholds.
//
// Two deliberate corrections to the paper's pseudo-code (see DESIGN.md):
//
//  1. The empty package always expands and is never dropped by the
//     improvement test. The paper's line 3 (grow only on strict
//     improvement) silently returns nothing when all achievable utilities
//     are negative (e.g. all-negative weights), since no singleton improves
//     on U(∅) = 0; packages must be non-empty, so ∅ is a seed, not a
//     candidate.
//  2. "Can p still improve" uses the running-max multi-pad bound
//     (upperExp) rather than a single τ-pad. The paper's single-pad test
//     relies on Lemma 3 (non-increasing pad marginals), which fails for
//     avg: marginals increase toward zero as the average converges to τ,
//     so one pad can lose while two pads win when another dimension
//     compensates.
func (r *run) expand(item int) (etaLo, etaUp float64) {
	phi := r.ix.space.MaxSize
	etaUp = negInf
	etaLo = r.cands.kthUtility()
	prune := !r.opts.DisableBoundPrune && r.cands.full()

	r.round++
	// Batched grow-utility pre-pass: score every queued package against the
	// item in one transposed sweep (dimensions outer, states inner), which
	// hoists the per-dimension constants out of the per-package loop. The
	// values are exactly what per-package ScoreAfter calls would return; the
	// main loop below consumes them without any change in decision order.
	// Packages released by the bound prune before reaching the improvement
	// test simply leave their entry unused.
	states := r.stScratch[:0]
	for _, p := range r.qPlus {
		states = append(states, p.state)
	}
	r.stScratch = states
	if cap(r.guScratch) < len(states) {
		r.guScratch = make([]float64, len(states))
	}
	gus := r.guScratch[:len(states)]
	feature.ScoreAfterBatch(r.scorePlan, int32(item), states, gus)

	survivors := r.qPlus[:0]
	newcomers := r.newcomers[:0]
	for pi, p := range r.qPlus {
		// Refresh the extension bound lazily; a stale bound is still an
		// upper bound, so pruning on it stays sound.
		if r.round-p.boundRound >= boundRefresh {
			p.bound = r.upperExp(p.state)
			p.boundRound = r.round
		}
		if (prune && p.bound <= etaLo) || p.bound < r.floorL {
			// Neither p's extensions nor their candidacies can beat the
			// current k-th best (or the sketch floor, a sound stand-in
			// before the heap fills): drop p without expanding it.
			r.release(p)
			continue
		}
		if p.state.Size < phi {
			// Utility after adding the item, from the batched pre-pass.
			gu := gus[pi]
			// Line 3: the paper grows a package only when the new item
			// strictly improves it; ExpandAll disables that heuristic, and
			// the empty package always grows (correction 1).
			if r.opts.ExpandAll || p.state.Size == 0 || gu > p.util {
				// Materialize the child only if it can matter — as a
				// candidate (gu above the bar) or as an ancestor of one
				// (extension bound above the bar, checked on scratch). The
				// bound computed here is reused as the child's queue bound:
				// both are taken against this round's τ.
				worth := !prune || gu > etaLo
				growBound, haveBound := 0.0, false
				if !worth {
					r.scratchGrow.GrowFrom(p.state, r.scorePlan, int32(item))
					growBound, haveBound = r.upperExp(r.scratchGrow), true
					worth = growBound > etaLo
				}
				if worth {
					np := r.newChild(p, item, gu)
					if r.opts.Expand == nil || r.opts.Expand(r.ix.space, np.toPackage()) {
						r.created++
						r.offer(np)
						if r.cands.full() {
							etaLo = r.cands.kthUtility()
							prune = !r.opts.DisableBoundPrune
						}
						// Lines 5–8: keep the new package expandable while
						// its extensions can still matter.
						if haveBound {
							np.bound = growBound
						} else {
							np.bound = r.upperExp(np.state)
						}
						np.boundRound = r.round
						if r.keep(np, etaLo, prune) {
							if np.bound > etaUp {
								etaUp = np.bound
							}
							newcomers = append(newcomers, np)
						} else {
							r.release(np)
						}
					} else {
						r.release(np)
					}
				}
			}
		}
		// Lines 9–11: re-check p itself against the (possibly stale)
		// boundary bound.
		if r.keep(p, etaLo, prune) {
			if p.bound > etaUp {
				etaUp = p.bound
			}
			survivors = append(survivors, p)
		} else {
			// p moves to Q−: it was already offered as a candidate when
			// created, so it leaves the expandable queue (and donates its
			// buffers to future children).
			r.release(p)
		}
	}
	r.qPlus = append(survivors, newcomers...)
	r.newcomers = newcomers[:0]

	if r.maxQueue > 0 && len(r.qPlus) > r.maxQueue {
		r.truncate()
	}
	return etaLo, etaUp
}

// truncate enforces the Q+ cap, keeping the maxQueue packages with the
// highest extension bounds. The threshold is found by sorting a scratch
// copy of the bound values (primitive sort — far cheaper than ordering the
// packages themselves); survivors keep their queue order, with ties at the
// threshold resolved in queue order. Deterministic: the outcome depends
// only on the bounds and the queue order, never on sort internals.
func (r *run) truncate() {
	bounds := r.boundScratch[:0]
	for _, p := range r.qPlus {
		bounds = append(bounds, p.bound)
	}
	r.boundScratch = bounds
	thr := selectKth(bounds, len(bounds)-r.maxQueue)
	// Packages strictly above the threshold all survive; ties at the
	// threshold fill the remaining slots in queue order.
	above := 0
	for _, p := range r.qPlus {
		if p.bound > thr {
			above++
		}
	}
	ties := r.maxQueue - above
	kept := r.qPlus[:0]
	for _, p := range r.qPlus {
		switch {
		case p.bound > thr:
			kept = append(kept, p)
		case p.bound == thr && ties > 0:
			ties--
			kept = append(kept, p)
		default:
			r.release(p)
		}
	}
	r.qPlus = kept
	r.truncated = true
}

// selectKth returns the k-th smallest element of xs (0-based), reordering
// xs in place — a median-of-three quickselect. The returned order statistic
// is uniquely defined, so truncation outcomes never depend on the selection
// algorithm's internals. xs must be NaN-free (bounds always are).
func selectKth(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for hi > lo {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && xs[j] < xs[j-1]; j-- {
					xs[j], xs[j-1] = xs[j-1], xs[j]
				}
			}
			return xs[k]
		}
		// Median-of-three pivot, moved to lo.
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		xs[lo], xs[mid] = xs[mid], xs[lo]
		pivot := xs[lo]
		i, j := lo, hi+1
		for {
			for i++; i <= hi && xs[i] < pivot; i++ {
			}
			for j--; xs[j] > pivot; j-- {
			}
			if i >= j {
				break
			}
			xs[i], xs[j] = xs[j], xs[i]
		}
		xs[lo], xs[j] = xs[j], xs[lo]
		switch {
		case j == k:
			return xs[k]
		case j < k:
			lo = j + 1
		default:
			hi = j - 1
		}
	}
	return xs[k]
}

// keep decides whether a package stays in Q+ given its refreshed extension
// bound. In ExpandAll (exact) mode retention is purely bound-based; in the
// paper's mode a package additionally leaves Q+ once no extension can
// improve on its own utility (the paper's line-9 semantics, which trades
// top-k completeness for a smaller queue). The empty package is exempt from
// the improvement test (correction 1 above).
func (r *run) keep(p *pkg, etaLo float64, prune bool) bool {
	if p.state.Size >= r.ix.space.MaxSize || math.IsInf(p.bound, -1) {
		return false
	}
	if (prune && p.bound <= etaLo) || p.bound < r.floorL {
		return false
	}
	if !r.opts.ExpandAll && p.state.Size > 0 && p.bound <= p.util {
		return false
	}
	return true
}

// offer proposes a completed package as a result candidate. The utility
// pre-check avoids materializing the sorted id slice for the (common)
// packages that cannot enter the heap.
func (r *run) offer(p *pkg) {
	if r.cands.full() && p.util < r.cands.kthUtility() {
		return
	}
	cand := p.toPackage()
	if r.opts.Candidate != nil && !r.opts.Candidate(r.ix.space, cand) {
		return
	}
	r.cands.offer(pkgspace.Scored{Pkg: cand, Utility: p.util})
}

// upperExp is Algorithm 3 with a sound stopping rule: the maximum utility
// any proper extension of the package can reach, obtained by padding with
// the per-entry best imaginary contribution — the boundary value τ of the
// entry's list, or a null contribution when attainable (list exhausted, or
// the dataset has nulls on that feature) — up to the size cap, taking the
// running maximum over pad counts 1..φ−|p|. (The paper stops greedily at
// the first non-improving pad, justified by Lemma 3's non-increasing
// marginals; that lemma fails for avg — marginals increase toward zero as
// the average converges to τ — so the greedy stop can underestimate. The
// running maximum costs the same O(φ·d) and is always an upper bound.)
// Returns -Inf when the package is already at the size cap. The padding
// loop itself is the fused feature.PadUpper kernel, driven by the pad
// descriptors nextItem keeps in sync with the cursors.
func (r *run) upperExp(st *feature.State) float64 {
	phi := r.ix.space.MaxSize
	if st.Size >= phi {
		return negInf
	}
	if r.fastPad {
		// All-PadTau runs take the non-mutating kernel: no scratch copy,
		// no agg folds, bit-identical result.
		return st.PadUpperTau(r.padPlan, r.padTaus, phi)
	}
	s := r.scratch
	s.CopyFrom(st)
	return s.PadUpper(r.padPlan, r.padModes, r.padTaus, phi)
}

// degenerate handles the all-zero-weight utility: every package scores 0,
// so return the K first packages in the deterministic tie-break order.
func (r *run) degenerate() Result {
	res := Result{}
	count := 0
	pkgspaceEnumerate(r.ix.space, func(p pkgspace.Package) bool {
		if r.opts.Candidate != nil && !r.opts.Candidate(r.ix.space, p) {
			return count < r.opts.K
		}
		res.Packages = append(res.Packages, pkgspace.Scored{Pkg: p, Utility: 0})
		count++
		return count < r.opts.K
	})
	res.Created = count
	return res
}

// pkgspaceEnumerate enumerates packages in the deterministic order,
// stopping when fn returns false.
func pkgspaceEnumerate(s *feature.Space, fn func(pkgspace.Package) bool) {
	n := len(s.Items)
	ids := make([]int, 0, s.MaxSize)
	var rec func(start int) bool
	rec = func(start int) bool {
		for i := start; i < n; i++ {
			ids = append(ids, i)
			if !fn(pkgspace.Package{IDs: append([]int(nil), ids...)}) {
				return false
			}
			if len(ids) < s.MaxSize {
				if !rec(i + 1) {
					return false
				}
			}
			ids = ids[:len(ids)-1]
		}
		return true
	}
	rec(0)
}

var negInf = math.Inf(-1)

// candHeap keeps the best k scored packages: a min-heap ordered by utility
// ascending, ties keeping the smaller package (evicting the larger).
type candHeap struct {
	k  int
	xs []pkgspace.Scored
}

func (h *candHeap) Len() int { return len(h.xs) }
func (h *candHeap) Less(i, j int) bool {
	if h.xs[i].Utility != h.xs[j].Utility {
		return h.xs[i].Utility < h.xs[j].Utility
	}
	return pkgspace.Less(h.xs[j].Pkg, h.xs[i].Pkg)
}
func (h *candHeap) Swap(i, j int) { h.xs[i], h.xs[j] = h.xs[j], h.xs[i] }
func (h *candHeap) Push(x any)    { h.xs = append(h.xs, x.(pkgspace.Scored)) }
func (h *candHeap) Pop() any {
	n := len(h.xs) - 1
	v := h.xs[n]
	h.xs = h.xs[:n]
	return v
}

func (h *candHeap) full() bool { return len(h.xs) >= h.k }

// kthUtility returns ηlo: the k-th best utility so far, or -Inf while fewer
// than k candidates exist.
func (h *candHeap) kthUtility() float64 {
	if !h.full() {
		return negInf
	}
	return h.xs[0].Utility
}

func (h *candHeap) offer(s pkgspace.Scored) {
	if len(h.xs) < h.k {
		heap.Push(h, s)
		return
	}
	root := &h.xs[0]
	if s.Utility > root.Utility || (s.Utility == root.Utility && pkgspace.Less(s.Pkg, root.Pkg)) {
		h.xs[0] = s
		heap.Fix(h, 0)
	}
}

// sorted drains the heap into descending-utility order.
func (h *candHeap) sorted() []pkgspace.Scored {
	out := append([]pkgspace.Scored(nil), h.xs...)
	pkgspace.SortScored(out)
	return out
}
