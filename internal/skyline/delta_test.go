package skyline

import (
	"math/rand"
	"slices"
	"testing"

	"toppkg/internal/feature"
)

// densify compacts a stable-ID→values shadow map into a space the way the
// catalogue does (dense order = ascending stable ID).
func densify(t testing.TB, shadow map[int][]float64, p *feature.Profile, maxSize int) (*feature.Space, []int) {
	t.Helper()
	stable := make([]int, 0, len(shadow))
	for id := range shadow {
		stable = append(stable, id)
	}
	slices.Sort(stable)
	items := make([]feature.Item, len(stable))
	for i, id := range stable {
		items[i] = feature.Item{ID: i, Values: shadow[id]}
	}
	sp, err := feature.NewSpace(items, p, maxSize)
	if err != nil {
		t.Fatal(err)
	}
	return sp, stable
}

// deltaArgs derives the Apply inputs (remap, dirty, added) between two
// dense orderings of a shadow map, mirroring the catalogue's delta
// builder: a stable ID present in both with unchanged values is carried,
// anything else is dirty (old side) and/or added (new side).
func deltaArgs(oldStable, newStable []int, changed map[int]bool) (remap []int32, dirty, added []int32) {
	newDense := make(map[int]int32, len(newStable))
	for i, id := range newStable {
		newDense[id] = int32(i)
	}
	oldSet := make(map[int]bool, len(oldStable))
	remap = make([]int32, len(oldStable))
	for i, id := range oldStable {
		oldSet[id] = true
		nd, ok := newDense[id]
		if !ok || changed[id] {
			remap[i] = -1
			dirty = append(dirty, int32(i))
		} else {
			remap[i] = nd
		}
	}
	for i, id := range newStable {
		if !oldSet[id] || changed[id] {
			added = append(added, int32(i))
		}
	}
	return remap, dirty, added
}

func skylineValue(b byte) float64 {
	if b >= 250 {
		return feature.Null
	}
	return float64(b%16) / 4 // coarse grid: ties and exact duplicates
}

// FuzzSkylineDelta drives random mutation batches through Set.Apply and
// asserts the incrementally maintained head set equals a from-scratch
// recompute whenever Apply reports success — and that Apply only refuses
// when a head item was removed or replaced. Input: data[0] sizes the
// initial set; then 4-byte records [op, id, v0, v1] — op%3: 0 upsert,
// 1 delete, 2 upsert (second byte pair).
func FuzzSkylineDelta(f *testing.F) {
	f.Add([]byte("\x06\x00\x03\x04\x05"))                 // insert near the frontier
	f.Add([]byte("\x06\x01\x00\x00\x00\x00\x02\xff\x01")) // delete then null-heavy insert
	f.Add([]byte("\x04\x00\x0f\x0f\x0f\x01\x00\x00\x00")) // dominant insert, then delete it
	p := feature.SimpleProfile(feature.AggSum, feature.AggMax)
	const maxSize = 3
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(int64(data[0])))
		n0 := 3 + int(data[0]%6)
		shadow := map[int][]float64{}
		for i := 0; i < n0; i++ {
			shadow[i] = []float64{float64((i * 3) % 7), float64((i*5 + 1) % 7)}
		}
		sp, stable := densify(t, shadow, p, maxSize)
		set := Heads(sp)
		for pos := 1; pos+4 <= len(data); pos += 4 {
			op, id := data[pos]%3, int(data[pos+1]%16)
			changed := map[int]bool{}
			switch op {
			case 1:
				if _, ok := shadow[id]; !ok || len(shadow) == 1 {
					continue
				}
				delete(shadow, id)
			default:
				vals := []float64{skylineValue(data[pos+2]), skylineValue(data[pos+3])}
				if old, ok := shadow[id]; ok {
					if slices.Equal(old, vals) {
						continue
					}
					changed[id] = true
				}
				shadow[id] = vals
			}
			nsp, nstable := densify(t, shadow, p, maxSize)
			remap, dirty, added := deltaArgs(stable, nstable, changed)
			want := Heads(nsp)
			got, ok := set.Apply(nsp, remap, dirty, added)
			if !ok {
				// Apply may only refuse when a head was removed/replaced.
				headDirty := false
				for _, pd := range dirty {
					if set.Contains(pd) {
						headDirty = true
						break
					}
				}
				if !headDirty {
					t.Fatalf("Apply refused without a dirty head (dirty=%v)", dirty)
				}
				got = want // recompute, as the catalogue would
			} else if !slices.Equal(got.Members(), want.Members()) {
				t.Fatalf("incremental heads %v != recomputed %v", got.Members(), want.Members())
			}
			// The maintained set must answer Contains like the recompute.
			for i := 0; i < nsp.N(); i++ {
				if got.Contains(int32(i)) != want.Contains(int32(i)) {
					t.Fatalf("Contains(%d) mismatch", i)
				}
			}
			sp, stable, set = nsp, nstable, got
			_ = rng
		}
	})
}

// TestSetHeadsMatchesItems cross-checks the columnar Heads computation
// against the row-based Items skyline under the canonical directions.
func TestSetHeadsMatchesItems(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(30)
		items := make([]feature.Item, n)
		for i := range items {
			vals := make([]float64, 3)
			for j := range vals {
				if rng.Intn(8) == 0 {
					vals[j] = feature.Null
				} else {
					vals[j] = float64(rng.Intn(10)) / 3
				}
			}
			items[i] = feature.Item{ID: i, Values: vals}
		}
		p := feature.SimpleProfile(feature.AggSum, feature.AggMin, feature.AggMax)
		sp, err := feature.NewSpace(items, p, 2)
		if err != nil {
			t.Fatal(err)
		}
		set := Heads(sp)
		wantItems := Items(sp, ProfileDirs(p))
		want := make([]int32, len(wantItems))
		for i, it := range wantItems {
			want[i] = int32(it.ID)
		}
		if !slices.Equal(set.Members(), want) {
			t.Fatalf("Heads %v != Items skyline %v", set.Members(), want)
		}
	}
}
