package skyline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
)

func TestDominates(t *testing.T) {
	dirs := []Direction{Larger, Smaller}
	// a better on both.
	if !Dominates([]float64{0.9, 0.1}, []float64{0.5, 0.5}, dirs) {
		t.Error("clear domination missed")
	}
	// Equal: no strict improvement.
	if Dominates([]float64{0.5, 0.5}, []float64{0.5, 0.5}, dirs) {
		t.Error("equal vectors dominate")
	}
	// Trade-off: incomparable.
	if Dominates([]float64{0.9, 0.9}, []float64{0.5, 0.5}, dirs) {
		t.Error("worse on the Smaller dim still dominated")
	}
	// Ignored dimension.
	if !Dominates([]float64{0.9, 9}, []float64{0.5, 1}, []Direction{Larger, Ignore}) {
		t.Error("Ignore dimension not ignored")
	}
}

func TestVectorsSimple(t *testing.T) {
	vecs := [][]float64{
		{0.9, 0.9}, // skyline
		{0.5, 0.5}, // dominated by 0
		{1.0, 0.1}, // skyline (best dim 0)
		{0.1, 1.0}, // skyline (best dim 1)
	}
	dirs := []Direction{Larger, Larger}
	got := Vectors(vecs, dirs)
	want := map[int]bool{0: true, 2: true, 3: true}
	if len(got) != 3 {
		t.Fatalf("skyline size = %d, want 3: %v", len(got), got)
	}
	for _, i := range got {
		if !want[i] {
			t.Errorf("unexpected skyline member %d", i)
		}
	}
}

// TestVectorsAgainstBruteForce: a point is in the skyline iff no other
// point dominates it.
func TestVectorsAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		d := 1 + rng.Intn(4)
		vecs := make([][]float64, n)
		for i := range vecs {
			v := make([]float64, d)
			for j := range v {
				v[j] = float64(rng.Intn(5)) / 4 // ties likely
			}
			vecs[i] = v
		}
		dirs := make([]Direction, d)
		for j := range dirs {
			if rng.Float64() < 0.5 {
				dirs[j] = Larger
			} else {
				dirs[j] = Smaller
			}
		}
		got := Vectors(vecs, dirs)
		inGot := make(map[int]bool, len(got))
		for _, i := range got {
			inGot[i] = true
		}
		for i := range vecs {
			dominated := false
			for j := range vecs {
				if i != j && Dominates(vecs[j], vecs[i], dirs) {
					dominated = true
					break
				}
			}
			// Among ties (duplicate points), the window keeps the first.
			if dominated && inGot[i] {
				return false
			}
			if !dominated && !inGot[i] {
				// i may be a duplicate of a kept point: acceptable only if
				// an identical point is in the skyline.
				dup := false
				for _, k := range got {
					same := true
					for j := range vecs[i] {
						if vecs[k][j] != vecs[i][j] {
							same = false
							break
						}
					}
					if same {
						dup = true
						break
					}
				}
				if !dup {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestItemsWithNulls(t *testing.T) {
	items := []feature.Item{
		{ID: 0, Values: []float64{0.9, feature.Null}},
		{ID: 1, Values: []float64{0.5, 0.5}},
		{ID: 2, Values: []float64{0.95, 0.9}},
	}
	sp, err := feature.NewSpace(items, feature.SimpleProfile(feature.AggMax, feature.AggMax), 2)
	if err != nil {
		t.Fatal(err)
	}
	got := Items(sp, []Direction{Larger, Larger})
	// Item 2 dominates both others (null treated as worst).
	if len(got) != 1 || got[0].ID != 2 {
		t.Errorf("skyline = %v, want just item 2", got)
	}
}

// TestPackagesSkylineIsLarge reproduces the paper's motivating claim (§1):
// even for a modest item set, the number of skyline packages is far too
// large to present to a user. Skyline size grows with dimensionality, so a
// 4-dimensional profile over independent features is used.
func TestPackagesSkylineIsLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	items := dataset.UNI(16, 4, rng)
	sp, err := feature.NewSpace(items, feature.SimpleProfile(
		feature.AggSum, feature.AggSum, feature.AggAvg, feature.AggMax), 3)
	if err != nil {
		t.Fatal(err)
	}
	sky, err := Packages(sp, []Direction{Smaller, Larger, Larger, Larger}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sky) < 30 {
		t.Errorf("skyline has only %d packages; expected dozens (paper's motivation)", len(sky))
	}
	t.Logf("skyline packages: %d of %d", len(sky), pkgspace.Count(sp.N(), sp.MaxSize))
}

func TestPackagesEnumerationCap(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	items := dataset.UNI(100, 2, rng)
	sp, err := feature.NewSpace(items, feature.SimpleProfile(feature.AggSum, feature.AggSum), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Packages(sp, []Direction{Larger, Larger}, 1000); err == nil {
		t.Error("cap not enforced")
	}
}

func TestPackagesDirsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	items := dataset.UNI(5, 2, rng)
	sp, err := feature.NewSpace(items, feature.SimpleProfile(feature.AggSum, feature.AggSum), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Packages(sp, []Direction{Larger}, 0); err == nil {
		t.Error("dims mismatch accepted")
	}
}

// TestSkylineContainsUtilityOptimum: for any linear utility with signs
// matching the directions, the utility-optimal package is on the skyline —
// the classical relationship between top-k and skyline queries.
func TestSkylineContainsUtilityOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	items := dataset.UNI(10, 2, rng)
	sp, err := feature.NewSpace(items, feature.SimpleProfile(feature.AggSum, feature.AggAvg), 2)
	if err != nil {
		t.Fatal(err)
	}
	sky, err := Packages(sp, []Direction{Larger, Larger}, 0)
	if err != nil {
		t.Fatal(err)
	}
	skySet := map[string]bool{}
	for _, p := range sky {
		skySet[p.Signature()] = true
	}
	for trial := 0; trial < 20; trial++ {
		w := []float64{rng.Float64() + 0.01, rng.Float64() + 0.01}
		u, err := feature.NewUtility(sp.Profile, w)
		if err != nil {
			t.Fatal(err)
		}
		top := pkgspace.BruteForceTopK(sp, u, 1)
		if !skySet[top[0].Pkg.Signature()] {
			t.Fatalf("utility optimum %s (w=%v) not on skyline", top[0].Pkg, w)
		}
	}
}
