// Package skyline implements the skyline (Pareto-optimal set) operator over
// items and packages. It is the baseline approach to package
// recommendation the paper argues against (§1, [20, 29]): return every
// package not dominated on all features. The experiments use it to
// reproduce the motivating observation that skyline package sets are far
// too large to present to a user.
package skyline

import (
	"fmt"

	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
)

// Direction states whether larger (+1) or smaller (-1) values are preferred
// on a dimension; 0 ignores the dimension.
type Direction int8

// Preference directions.
const (
	Ignore  Direction = 0
	Larger  Direction = 1
	Smaller Direction = -1
)

// Dominates reports whether vector a dominates vector b under the given
// per-dimension directions: a is at least as good everywhere and strictly
// better somewhere.
func Dominates(a, b []float64, dirs []Direction) bool {
	strict := false
	for i, d := range dirs {
		switch d {
		case Larger:
			if a[i] < b[i] {
				return false
			}
			if a[i] > b[i] {
				strict = true
			}
		case Smaller:
			if a[i] > b[i] {
				return false
			}
			if a[i] < b[i] {
				strict = true
			}
		}
	}
	return strict
}

// Vectors computes the skyline of a set of vectors with a block
// nested-loops algorithm [4], returning the indices of the skyline members
// in ascending order.
func Vectors(vecs [][]float64, dirs []Direction) []int {
	var window []int
	for i, v := range vecs {
		dominated := false
		for _, j := range window {
			if Dominates(vecs[j], v, dirs) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		out := window[:0]
		for _, j := range window {
			if !Dominates(v, vecs[j], dirs) {
				out = append(out, j)
			}
		}
		window = append(out, i)
	}
	return window
}

// Items returns the skyline items of a space under the given directions on
// the raw item features (nulls treated as worst).
func Items(sp *feature.Space, dirs []Direction) []feature.Item {
	vecs := make([][]float64, len(sp.Items))
	for i := range sp.Items {
		v := make([]float64, len(sp.Items[i].Values))
		copy(v, sp.Items[i].Values)
		for j := range v {
			if feature.IsNull(v[j]) {
				switch dirs[j] {
				case Larger:
					v[j] = 0
				case Smaller:
					v[j] = 1e18
				}
			}
		}
		vecs[i] = v
	}
	idx := Vectors(vecs, dirs)
	out := make([]feature.Item, len(idx))
	for i, j := range idx {
		out[i] = sp.Items[j]
	}
	return out
}

// Packages enumerates every package of the space (size ≤ MaxSize) and
// returns the skyline over normalized aggregate vectors. Exponential — it
// exists to demonstrate, on small spaces, the paper's point that skyline
// package sets are huge. maxEnumerate caps the enumeration (0 = no cap);
// exceeding it returns an error.
func Packages(sp *feature.Space, dirs []Direction, maxEnumerate int) ([]pkgspace.Package, error) {
	if len(dirs) != sp.Dims() {
		return nil, fmt.Errorf("skyline: %d directions for %d dims", len(dirs), sp.Dims())
	}
	if maxEnumerate > 0 {
		if c := pkgspace.Count(sp.N(), sp.MaxSize); c > uint64(maxEnumerate) {
			return nil, fmt.Errorf("skyline: package space has %d members, cap is %d", c, maxEnumerate)
		}
	}
	var pkgs []pkgspace.Package
	var vecs [][]float64
	pkgspace.Enumerate(sp, func(p pkgspace.Package) {
		pkgs = append(pkgs, p)
		vecs = append(vecs, pkgspace.Vector(sp, p))
	})
	idx := Vectors(vecs, dirs)
	out := make([]pkgspace.Package, len(idx))
	for i, j := range idx {
		out[i] = pkgs[j]
	}
	return out, nil
}
