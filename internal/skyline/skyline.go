// Package skyline implements the skyline (Pareto-optimal set) operator over
// items and packages. It is the baseline approach to package
// recommendation the paper argues against (§1, [20, 29]): return every
// package not dominated on all features. The experiments use it to
// reproduce the motivating observation that skyline package sets are far
// too large to present to a user.
package skyline

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
)

// Direction states whether larger (+1) or smaller (-1) values are preferred
// on a dimension; 0 ignores the dimension.
type Direction int8

// Preference directions.
const (
	Ignore  Direction = 0
	Larger  Direction = 1
	Smaller Direction = -1
)

// Dominates reports whether vector a dominates vector b under the given
// per-dimension directions: a is at least as good everywhere and strictly
// better somewhere.
func Dominates(a, b []float64, dirs []Direction) bool {
	strict := false
	for i, d := range dirs {
		switch d {
		case Larger:
			if a[i] < b[i] {
				return false
			}
			if a[i] > b[i] {
				strict = true
			}
		case Smaller:
			if a[i] > b[i] {
				return false
			}
			if a[i] < b[i] {
				strict = true
			}
		}
	}
	return strict
}

// sfsKey is the monotone presort key of the sort-first skyline algorithm:
// the sum of oriented dimension values, so that if a dominates b then
// key(a) ≥ key(b). Nulls (NaN) contribute the worst oriented value.
func sfsKey(v []float64, dirs []Direction) float64 {
	k := 0.0
	for i, d := range dirs {
		x := v[i]
		switch d {
		case Larger:
			if !math.IsNaN(x) {
				k += x
			}
		case Smaller:
			if math.IsNaN(x) {
				k -= nullWorst
			} else {
				k -= x
			}
		}
	}
	return k
}

// Vectors computes the skyline of a set of vectors, returning the indices
// of the skyline members in ascending order. It runs the window scan in
// sort-first order (descending dominance-monotone key), so most dominated
// vectors die on their first window comparison and the window stays close
// to the final skyline — O(n log n + n·s·d) in practice instead of the
// O(n²·d) of plain block-nested-loops. The window pass still performs the
// full dominance bookkeeping (floating-point key ties can reorder
// incomparable vectors), so the result never depends on the presort.
func Vectors(vecs [][]float64, dirs []Direction) []int {
	n := len(vecs)
	if n == 0 {
		return nil
	}
	keys := make([]float64, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
		keys[i] = sfsKey(vecs[i], dirs)
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if keys[ia] != keys[ib] {
			return keys[ia] > keys[ib]
		}
		return ia < ib
	})
	var window []int
	for _, i := range order {
		v := vecs[i]
		dominated := false
		for _, j := range window {
			if Dominates(vecs[j], v, dirs) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		out := window[:0]
		for _, j := range window {
			if !Dominates(v, vecs[j], dirs) {
				out = append(out, j)
			}
		}
		window = append(out, i)
	}
	sort.Ints(window)
	return window
}

// nullWorst is the finite stand-in for "worst possible value" when a null
// must be ordered on a Smaller dimension (raw values are non-negative and
// far below it in every dataset the system handles).
const nullWorst = 1e18

// Items returns the skyline items of a space under the given directions on
// the raw item features (nulls treated as worst).
func Items(sp *feature.Space, dirs []Direction) []feature.Item {
	vecs := make([][]float64, len(sp.Items))
	for i := range sp.Items {
		v := make([]float64, len(sp.Items[i].Values))
		copy(v, sp.Items[i].Values)
		for j := range v {
			if feature.IsNull(v[j]) {
				switch dirs[j] {
				case Larger:
					v[j] = 0
				case Smaller:
					v[j] = nullWorst
				}
			}
		}
		vecs[i] = v
	}
	idx := Vectors(vecs, dirs)
	out := make([]feature.Item, len(idx))
	for i, j := range idx {
		out[i] = sp.Items[j]
	}
	return out
}

// ProfileDirs returns the canonical per-dimension preference directions a
// monotone utility over the profile implies: Larger for sum and max
// dimensions (bigger item values can only raise the aggregate), Smaller
// for min (smaller values can only lower it), Ignore for avg and null
// dimensions (avg is not monotone in the item set, null contributes
// nothing). These are the directions the search layer's dominance pruning
// assumes, so Heads/Apply always compute under them.
func ProfileDirs(p *feature.Profile) []Direction {
	dirs := make([]Direction, p.Dims())
	for d := range dirs {
		switch p.Entry(d).Agg {
		case feature.AggSum, feature.AggMax:
			dirs[d] = Larger
		case feature.AggMin:
			dirs[d] = Smaller
		}
	}
	return dirs
}

// axis is one active (non-Ignore) dimension of a head set: which raw
// feature column it reads and whether smaller values are preferred.
type axis struct {
	feat    int
	smaller bool
}

// orientedRow fills buf with the item's oriented values on the active
// axes: sign-flipped so that larger is always better, nulls mapped to the
// worst oriented value. With this encoding dominance is the plain
// "all ≥, one >" test regardless of direction.
func orientedRow(sp *feature.Space, axes []axis, id int32, buf []float64) []float64 {
	buf = buf[:len(axes)]
	for a, ax := range axes {
		v := sp.Col(ax.feat)[id]
		switch {
		case feature.IsNull(v):
			if ax.smaller {
				buf[a] = -nullWorst
			} else {
				buf[a] = 0
			}
		case ax.smaller:
			buf[a] = -v
		default:
			buf[a] = v
		}
	}
	return buf
}

// domOriented reports dominance between two oriented rows.
func domOriented(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] < b[i] {
			return false
		}
		if a[i] > b[i] {
			strict = true
		}
	}
	return strict
}

// Set is a space's non-dominated ("head") item set under the canonical
// profile directions (ProfileDirs): the dense item IDs no other item beats
// on every active dimension. The search layer uses it as a cheap frontier
// filter when deciding which candidate heads merit an exact prune-bound
// test; the catalog layer maintains it incrementally across delta epoch
// builds. A Set is immutable once built.
type Set struct {
	axes    []axis
	members []int32 // ascending dense item IDs
	bits    []uint64
	n       int
}

// Len returns the number of head items.
func (s *Set) Len() int { return len(s.members) }

// Universe returns the item count of the space the set was computed over.
func (s *Set) Universe() int { return s.n }

// Members returns the head item IDs in ascending order (do not mutate).
func (s *Set) Members() []int32 { return s.members }

// Contains reports whether dense item id is a head.
func (s *Set) Contains(id int32) bool {
	return s.bits[uint32(id)>>6]&(1<<(uint32(id)&63)) != 0
}

// profileAxes extracts the active axes of a profile.
func profileAxes(p *feature.Profile) []axis {
	var axes []axis
	for d := 0; d < p.Dims(); d++ {
		e := p.Entry(d)
		switch e.Agg {
		case feature.AggSum, feature.AggMax:
			axes = append(axes, axis{feat: e.Feature})
		case feature.AggMin:
			axes = append(axes, axis{feat: e.Feature, smaller: true})
		}
	}
	return axes
}

// newSet builds a Set from an unsorted member list.
func newSet(axes []axis, members []int32, n int) *Set {
	slices.Sort(members)
	bits := make([]uint64, (n+63)/64)
	for _, id := range members {
		bits[uint32(id)>>6] |= 1 << (uint32(id) & 63)
	}
	return &Set{axes: axes, members: members, bits: bits, n: n}
}

// Heads computes the head set of a space from scratch with the sort-first
// window scan over the space's columns: O(n log n) for the presort plus
// O(n·s·d) window comparisons where s is the running skyline size.
func Heads(sp *feature.Space) *Set {
	axes := profileAxes(sp.Profile)
	n := sp.N()
	if len(axes) == 0 {
		// No active dimension: nothing dominates anything, every item is
		// a head. (Such profiles are never monotone, so search won't
		// consult the set; completeness keeps the invariants simple.)
		members := make([]int32, n)
		for i := range members {
			members[i] = int32(i)
		}
		return newSet(axes, members, n)
	}
	d := len(axes)
	rows := make([]float64, n*d)
	keys := make([]float64, n)
	order := make([]int32, n)
	for i := 0; i < n; i++ {
		row := orientedRow(sp, axes, int32(i), rows[i*d:(i+1)*d])
		k := 0.0
		for _, v := range row {
			k += v
		}
		keys[i] = k
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if keys[ia] != keys[ib] {
			return keys[ia] > keys[ib]
		}
		return ia < ib
	})
	var window []int32
	for _, i := range order {
		v := rows[int(i)*d : int(i)*d+d]
		dominated := false
		for _, j := range window {
			if domOriented(rows[int(j)*d:int(j)*d+d], v) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		out := window[:0]
		for _, j := range window {
			if !domOriented(v, rows[int(j)*d:int(j)*d+d]) {
				out = append(out, j)
			}
		}
		window = append(out, i)
	}
	return newSet(axes, window, n)
}

// Apply derives the head set of a child space from this (parent) set after
// a delta build, without rescanning the catalogue. remap maps parent dense
// IDs to child dense IDs (negative = removed), dirty lists the parent IDs
// whose rows were removed or replaced, added lists the child IDs of new or
// replaced rows. Inserting items only requires dominance checks against
// the evolving head set — a non-head cannot newly block anything a head
// doesn't already block (dominance is transitive) — so insert-only batches
// cost O(|added|·s·d). Removing a head may expose items it alone
// dominated; that case (and a profile change) returns ok=false and the
// caller recomputes via Heads.
func (s *Set) Apply(child *feature.Space, remap []int32, dirty, added []int32) (ns *Set, ok bool) {
	if !slices.Equal(s.axes, profileAxes(child.Profile)) {
		return nil, false
	}
	for _, pd := range dirty {
		if s.Contains(pd) {
			return nil, false
		}
	}
	members := make([]int32, 0, len(s.members)+len(added))
	for _, pd := range s.members {
		nd := remap[pd]
		if nd < 0 {
			return nil, false // removed head the dirty list missed
		}
		members = append(members, nd)
	}
	d := len(s.axes)
	if d == 0 {
		members = append(members, added...)
		return newSet(s.axes, members, child.N()), true
	}
	rows := make([]float64, 0, (len(members)+len(added))*d)
	for _, id := range members {
		rows = append(rows, orientedRow(child, s.axes, id, make([]float64, d))...)
	}
	buf := make([]float64, d)
	for _, id := range added {
		v := orientedRow(child, s.axes, id, buf)
		dominated := false
		for j := 0; j < len(members); j++ {
			if domOriented(rows[j*d:j*d+d], v) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		out := members[:0]
		orows := rows[:0]
		for j := 0; j < len(members); j++ {
			if !domOriented(v, rows[j*d:j*d+d]) {
				out = append(out, members[j])
				orows = append(orows, rows[j*d:j*d+d]...)
			}
		}
		members = append(out, id)
		rows = append(orows, v...)
	}
	return newSet(s.axes, members, child.N()), true
}

// Packages enumerates every package of the space (size ≤ MaxSize) and
// returns the skyline over normalized aggregate vectors. Exponential — it
// exists to demonstrate, on small spaces, the paper's point that skyline
// package sets are huge. maxEnumerate caps the enumeration (0 = no cap);
// exceeding it returns an error.
func Packages(sp *feature.Space, dirs []Direction, maxEnumerate int) ([]pkgspace.Package, error) {
	if len(dirs) != sp.Dims() {
		return nil, fmt.Errorf("skyline: %d directions for %d dims", len(dirs), sp.Dims())
	}
	if maxEnumerate > 0 {
		if c := pkgspace.Count(sp.N(), sp.MaxSize); c > uint64(maxEnumerate) {
			return nil, fmt.Errorf("skyline: package space has %d members, cap is %d", c, maxEnumerate)
		}
	}
	var pkgs []pkgspace.Package
	var vecs [][]float64
	pkgspace.Enumerate(sp, func(p pkgspace.Package) {
		pkgs = append(pkgs, p)
		vecs = append(vecs, pkgspace.Vector(sp, p))
	})
	idx := Vectors(vecs, dirs)
	out := make([]pkgspace.Package, len(idx))
	for i, j := range idx {
		out[i] = pkgs[j]
	}
	return out, nil
}
