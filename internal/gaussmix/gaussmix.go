// Package gaussmix implements diagonal-covariance Gaussian mixture models:
// density evaluation, sampling, default priors, and EM refitting.
//
// The paper models the uncertainty over the utility weight vector w as a
// mixture of Gaussians (§2.1), which can approximate any density. The
// posterior under preference feedback has no closed form; refitting the
// mixture with EM after every feedback is the costly baseline the paper
// rejects (§3.1) in favour of constrained sampling — EM lives here so the
// benchmarks can quantify that choice.
package gaussmix

import (
	"fmt"
	"math"
	"math/rand"
)

// Component is one mixture component with diagonal covariance.
type Component struct {
	// Weight is the non-negative mixing proportion; a mixture's weights sum
	// to one.
	Weight float64
	// Mean is the component mean.
	Mean []float64
	// Std holds the per-dimension standard deviations (all positive).
	Std []float64
}

// Mixture is a Gaussian mixture distribution over R^d.
type Mixture struct {
	Components []Component
	dims       int
}

// New validates the components and returns the mixture. Weights are
// normalized to sum to one.
func New(components ...Component) (*Mixture, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("gaussmix: mixture needs at least one component")
	}
	d := len(components[0].Mean)
	total := 0.0
	for i, c := range components {
		if len(c.Mean) != d || len(c.Std) != d {
			return nil, fmt.Errorf("gaussmix: component %d has inconsistent dims", i)
		}
		if c.Weight < 0 {
			return nil, fmt.Errorf("gaussmix: component %d has negative weight", i)
		}
		for j, s := range c.Std {
			if s <= 0 {
				return nil, fmt.Errorf("gaussmix: component %d std[%d]=%g must be positive", i, j, s)
			}
		}
		total += c.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("gaussmix: weights sum to %g, want positive", total)
	}
	cp := make([]Component, len(components))
	for i, c := range components {
		cp[i] = Component{
			Weight: c.Weight / total,
			Mean:   append([]float64(nil), c.Mean...),
			Std:    append([]float64(nil), c.Std...),
		}
	}
	return &Mixture{Components: cp, dims: d}, nil
}

// Dims returns the dimensionality of the mixture.
func (m *Mixture) Dims() int { return m.dims }

// DefaultPrior returns the system-default prior used before any feedback: k
// components with means spread uniformly at random in [-1,1]^dims, std 0.5,
// equal weights. With k=1 the mean is the origin (total ignorance).
func DefaultPrior(dims, k int, rng *rand.Rand) *Mixture {
	if k < 1 {
		k = 1
	}
	comps := make([]Component, k)
	for i := 0; i < k; i++ {
		mean := make([]float64, dims)
		if i > 0 || k > 1 {
			for j := range mean {
				mean[j] = rng.Float64()*2 - 1
			}
		}
		std := make([]float64, dims)
		for j := range std {
			std[j] = 0.5
		}
		comps[i] = Component{Weight: 1, Mean: mean, Std: std}
	}
	m, err := New(comps...)
	if err != nil {
		panic(err) // unreachable: construction above is always valid
	}
	return m
}

const log2Pi = 1.8378770664093453 // ln(2π)

// LogPDF returns the log density at x.
func (m *Mixture) LogPDF(x []float64) float64 {
	// log-sum-exp over components for numerical stability.
	maxLog := math.Inf(-1)
	logs := make([]float64, len(m.Components))
	for i := range m.Components {
		c := &m.Components[i]
		l := math.Log(c.Weight) + logGauss(x, c.Mean, c.Std)
		logs[i] = l
		if l > maxLog {
			maxLog = l
		}
	}
	if math.IsInf(maxLog, -1) {
		return math.Inf(-1)
	}
	s := 0.0
	for _, l := range logs {
		s += math.Exp(l - maxLog)
	}
	return maxLog + math.Log(s)
}

// PDF returns the density at x.
func (m *Mixture) PDF(x []float64) float64 {
	return math.Exp(m.LogPDF(x))
}

func logGauss(x, mean, std []float64) float64 {
	l := 0.0
	for j := range x {
		z := (x[j] - mean[j]) / std[j]
		l += -0.5*z*z - math.Log(std[j]) - 0.5*log2Pi
	}
	return l
}

// Sample draws one vector from the mixture.
func (m *Mixture) Sample(rng *rand.Rand) []float64 {
	x := make([]float64, m.dims)
	m.SampleInto(rng, x)
	return x
}

// SampleInto draws one vector into dst (length Dims).
func (m *Mixture) SampleInto(rng *rand.Rand, dst []float64) {
	c := &m.Components[m.pick(rng)]
	for j := range dst {
		dst[j] = c.Mean[j] + rng.NormFloat64()*c.Std[j]
	}
}

func (m *Mixture) pick(rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	for i := range m.Components {
		acc += m.Components[i].Weight
		if u <= acc {
			return i
		}
	}
	return len(m.Components) - 1
}

// Gaussian returns a single-component mixture with the given mean and
// isotropic standard deviation; it is the proposal distribution used by
// importance sampling (§3.2.1).
func Gaussian(mean []float64, std float64) *Mixture {
	stds := make([]float64, len(mean))
	for i := range stds {
		stds[i] = std
	}
	m, err := New(Component{Weight: 1, Mean: append([]float64(nil), mean...), Std: stds})
	if err != nil {
		panic(err) // unreachable for std > 0
	}
	return m
}

// FitEM refits a k-component mixture to weighted samples by
// expectation-maximization. This is the posterior-refitting baseline the
// paper deems too expensive (§3.1); it exists so benches can measure it.
// xs[i] is a sample with non-negative weight ws[i] (pass nil for uniform).
// iters is the number of EM iterations. The initial components are seeded
// from evenly spaced samples.
func FitEM(xs [][]float64, ws []float64, k, iters int, rng *rand.Rand) (*Mixture, error) {
	n := len(xs)
	if n == 0 {
		return nil, fmt.Errorf("gaussmix: no samples to fit")
	}
	if k < 1 {
		k = 1
	}
	d := len(xs[0])
	if ws == nil {
		ws = make([]float64, n)
		for i := range ws {
			ws[i] = 1
		}
	}
	// Initialize means from spread-out samples, std from the global scale.
	comps := make([]Component, k)
	for c := 0; c < k; c++ {
		idx := c * n / k
		mean := append([]float64(nil), xs[idx]...)
		std := make([]float64, d)
		for j := range std {
			std[j] = 0.5
		}
		comps[c] = Component{Weight: 1.0 / float64(k), Mean: mean, Std: std}
	}
	resp := make([][]float64, n)
	for i := range resp {
		resp[i] = make([]float64, k)
	}
	const minStd = 1e-3
	for it := 0; it < iters; it++ {
		// E step: responsibilities.
		for i := 0; i < n; i++ {
			maxLog := math.Inf(-1)
			for c := 0; c < k; c++ {
				l := math.Log(comps[c].Weight) + logGauss(xs[i], comps[c].Mean, comps[c].Std)
				resp[i][c] = l
				if l > maxLog {
					maxLog = l
				}
			}
			s := 0.0
			for c := 0; c < k; c++ {
				resp[i][c] = math.Exp(resp[i][c] - maxLog)
				s += resp[i][c]
			}
			for c := 0; c < k; c++ {
				resp[i][c] /= s
			}
		}
		// M step: weighted means, stds, mixing weights.
		for c := 0; c < k; c++ {
			wTot := 0.0
			mean := make([]float64, d)
			for i := 0; i < n; i++ {
				g := resp[i][c] * ws[i]
				wTot += g
				for j := 0; j < d; j++ {
					mean[j] += g * xs[i][j]
				}
			}
			if wTot <= 0 {
				// Dead component: re-seed at a random sample.
				copy(comps[c].Mean, xs[rng.Intn(n)])
				comps[c].Weight = 1e-6
				continue
			}
			for j := 0; j < d; j++ {
				mean[j] /= wTot
			}
			std := make([]float64, d)
			for i := 0; i < n; i++ {
				g := resp[i][c] * ws[i]
				for j := 0; j < d; j++ {
					dx := xs[i][j] - mean[j]
					std[j] += g * dx * dx
				}
			}
			for j := 0; j < d; j++ {
				std[j] = math.Sqrt(std[j] / wTot)
				if std[j] < minStd {
					std[j] = minStd
				}
			}
			comps[c].Mean = mean
			comps[c].Std = std
			comps[c].Weight = wTot
		}
		// Normalize weights.
		tot := 0.0
		for c := 0; c < k; c++ {
			tot += comps[c].Weight
		}
		for c := 0; c < k; c++ {
			comps[c].Weight /= tot
		}
	}
	return New(comps...)
}

// Mean returns the mixture mean Σ weight_c · mean_c.
func (m *Mixture) Mean() []float64 {
	out := make([]float64, m.dims)
	for i := range m.Components {
		c := &m.Components[i]
		for j := range out {
			out[j] += c.Weight * c.Mean[j]
		}
	}
	return out
}
