package gaussmix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty mixture accepted")
	}
	if _, err := New(Component{Weight: 1, Mean: []float64{0}, Std: []float64{0}}); err == nil {
		t.Error("zero std accepted")
	}
	if _, err := New(Component{Weight: -1, Mean: []float64{0}, Std: []float64{1}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := New(
		Component{Weight: 1, Mean: []float64{0}, Std: []float64{1}},
		Component{Weight: 1, Mean: []float64{0, 0}, Std: []float64{1, 1}},
	); err == nil {
		t.Error("inconsistent dims accepted")
	}
}

func TestWeightsNormalized(t *testing.T) {
	m, err := New(
		Component{Weight: 2, Mean: []float64{0}, Std: []float64{1}},
		Component{Weight: 6, Mean: []float64{1}, Std: []float64{1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Components[0].Weight-0.25) > 1e-12 || math.Abs(m.Components[1].Weight-0.75) > 1e-12 {
		t.Errorf("weights not normalized: %v, %v", m.Components[0].Weight, m.Components[1].Weight)
	}
}

// TestPDFMatchesStandardNormal: a single standard Gaussian's density at 0
// is (2π)^{-d/2}.
func TestPDFMatchesStandardNormal(t *testing.T) {
	for d := 1; d <= 4; d++ {
		mean := make([]float64, d)
		m := Gaussian(mean, 1)
		want := math.Pow(2*math.Pi, -float64(d)/2)
		if got := m.PDF(mean); math.Abs(got-want) > 1e-12 {
			t.Errorf("d=%d: PDF(0) = %g, want %g", d, got, want)
		}
	}
}

func TestPDFUnivariateValues(t *testing.T) {
	m := Gaussian([]float64{2}, 3)
	// N(2, 3^2) at x = 5: exp(-0.5) / (3*sqrt(2*pi)).
	want := math.Exp(-0.5) / (3 * math.Sqrt(2*math.Pi))
	if got := m.PDF([]float64{5}); math.Abs(got-want) > 1e-12 {
		t.Errorf("PDF(5) = %g, want %g", got, want)
	}
}

// TestMixturePDFIsConvexCombination: mixture density = Σ w_c N_c.
func TestMixturePDFIsConvexCombination(t *testing.T) {
	a := Gaussian([]float64{-1, 0}, 0.5)
	b := Gaussian([]float64{1, 1}, 1.5)
	m, err := New(
		Component{Weight: 0.3, Mean: a.Components[0].Mean, Std: a.Components[0].Std},
		Component{Weight: 0.7, Mean: b.Components[0].Mean, Std: b.Components[0].Std},
	)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.2, -0.4}
	want := 0.3*a.PDF(x) + 0.7*b.PDF(x)
	if got := m.PDF(x); math.Abs(got-want) > 1e-12 {
		t.Errorf("mixture PDF = %g, want %g", got, want)
	}
}

func TestSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := Gaussian([]float64{1, -2}, 0.5)
	n := 20000
	sum := make([]float64, 2)
	sumSq := make([]float64, 2)
	for i := 0; i < n; i++ {
		x := m.Sample(rng)
		for j := range x {
			sum[j] += x[j]
			sumSq[j] += x[j] * x[j]
		}
	}
	for j, want := range []float64{1, -2} {
		mean := sum[j] / float64(n)
		if math.Abs(mean-want) > 0.02 {
			t.Errorf("dim %d sample mean = %g, want %g", j, mean, want)
		}
		variance := sumSq[j]/float64(n) - mean*mean
		if math.Abs(variance-0.25) > 0.02 {
			t.Errorf("dim %d sample var = %g, want 0.25", j, variance)
		}
	}
}

func TestSampleComponentProportions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, err := New(
		Component{Weight: 0.2, Mean: []float64{-10}, Std: []float64{0.1}},
		Component{Weight: 0.8, Mean: []float64{10}, Std: []float64{0.1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	n := 10000
	right := 0
	for i := 0; i < n; i++ {
		if m.Sample(rng)[0] > 0 {
			right++
		}
	}
	frac := float64(right) / float64(n)
	if math.Abs(frac-0.8) > 0.02 {
		t.Errorf("component proportion = %g, want 0.8", frac)
	}
}

func TestDefaultPrior(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := DefaultPrior(3, 1, rng)
	if m.Dims() != 3 || len(m.Components) != 1 {
		t.Fatalf("DefaultPrior shape wrong: %d dims, %d comps", m.Dims(), len(m.Components))
	}
	for _, v := range m.Components[0].Mean {
		if v != 0 {
			t.Error("single-component default prior should be centered at origin")
		}
	}
	m5 := DefaultPrior(2, 5, rng)
	if len(m5.Components) != 5 {
		t.Errorf("components = %d, want 5", len(m5.Components))
	}
	total := 0.0
	for _, c := range m5.Components {
		total += c.Weight
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("weights sum to %g", total)
	}
	if m0 := DefaultPrior(2, 0, rng); len(m0.Components) != 1 {
		t.Error("k<1 should clamp to 1")
	}
}

func TestMean(t *testing.T) {
	m, err := New(
		Component{Weight: 0.5, Mean: []float64{0, 2}, Std: []float64{1, 1}},
		Component{Weight: 0.5, Mean: []float64{4, 0}, Std: []float64{1, 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Mean()
	if math.Abs(got[0]-2) > 1e-12 || math.Abs(got[1]-1) > 1e-12 {
		t.Errorf("Mean = %v, want (2, 1)", got)
	}
}

// TestFitEMRecoversTwoClusters: EM on well-separated clusters should place
// component means near the cluster centers.
func TestFitEMRecoversTwoClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var xs [][]float64
	for i := 0; i < 400; i++ {
		x := []float64{-2 + rng.NormFloat64()*0.2, -2 + rng.NormFloat64()*0.2}
		xs = append(xs, x)
	}
	for i := 0; i < 400; i++ {
		x := []float64{2 + rng.NormFloat64()*0.2, 2 + rng.NormFloat64()*0.2}
		xs = append(xs, x)
	}
	m, err := FitEM(xs, nil, 2, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	// One mean near (-2,-2), the other near (2,2), weights near 0.5.
	c0, c1 := m.Components[0], m.Components[1]
	if c0.Mean[0] > c1.Mean[0] {
		c0, c1 = c1, c0
	}
	if math.Abs(c0.Mean[0]+2) > 0.2 || math.Abs(c1.Mean[0]-2) > 0.2 {
		t.Errorf("EM means off: %v, %v", c0.Mean, c1.Mean)
	}
	if math.Abs(c0.Weight-0.5) > 0.1 {
		t.Errorf("EM weight = %g, want ~0.5", c0.Weight)
	}
}

func TestFitEMEmptyInput(t *testing.T) {
	if _, err := FitEM(nil, nil, 2, 5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty input accepted")
	}
}

// Property: LogPDF is finite for bounded inputs and PDF is non-negative.
func TestPDFProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := DefaultPrior(3, 3, rng)
	f := func(a, b, c float64) bool {
		x := []float64{math.Mod(a, 3), math.Mod(b, 3), math.Mod(c, 3)}
		for i := range x {
			if math.IsNaN(x[i]) {
				x[i] = 0
			}
		}
		p := m.PDF(x)
		return p >= 0 && !math.IsNaN(p) && !math.IsInf(m.LogPDF(x), 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSampleInto(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := Gaussian([]float64{0, 0}, 1)
	buf := make([]float64, 2)
	m.SampleInto(rng, buf)
	if buf[0] == 0 && buf[1] == 0 {
		t.Error("SampleInto left buffer untouched")
	}
}
