// Package prefgraph maintains the set of pairwise package preferences
// elicited from a user as a directed acyclic graph, detects cycles, and
// eliminates redundant preferences via transitive reduction (paper §3.3,
// using the Aho–Garey–Ullman construction [2]). The reduced edge set is the
// constraint set samplers check, so reduction directly cuts per-sample
// validation cost ("pruning" in Figure 5).
package prefgraph

import (
	"errors"
	"fmt"

	"toppkg/internal/pkgspace"
)

// ErrCycle is returned when a new preference would contradict recorded
// preferences (a directed cycle). The paper resolves cycles by presenting
// the packages on the cycle to the user and asking for the best, which
// reverses one edge; callers can use CyclePath to obtain those packages.
var ErrCycle = errors.New("prefgraph: preference would create a cycle")

// Constraint is one pairwise preference translated into the half-space
// constraint on weight vectors: a vector w is consistent with the
// preference iff w · Diff ≥ 0, where Diff = winner vector − loser vector
// (paper §3.1).
type Constraint struct {
	// Winner and Loser identify the packages (node indices are internal).
	Winner, Loser pkgspace.Package
	// Diff is winnerVec − loserVec in the normalized aggregate space.
	Diff []float64
}

// Violates reports whether weight vector w violates the constraint
// (strictly prefers the loser).
func (c Constraint) Violates(w []float64) bool {
	s := 0.0
	for i, v := range c.Diff {
		s += v * w[i]
	}
	return s < 0
}

// Graph stores preferences over packages. Nodes are packages (keyed by
// signature); an edge u→v records u ≻ v. The graph is kept acyclic.
//
// Under a live catalogue the engine keys nodes by *stable* catalogue IDs,
// so the same inventory seen under two epochs is one node even when its
// dense positions moved. Each node carries the catalogue epoch its vector
// was last computed under: when feedback arrives for an already-known
// package under a newer epoch, AddPreferenceAt refreshes the stored vector
// from the new space instead of reusing the stale one, so the constraints
// the samplers check always reflect the most recent geometry a package was
// observed in.
type Graph struct {
	nodes []node
	index map[string]int // signature → node id
	out   []map[int]bool // adjacency: out[u][v] == true iff edge u→v
	in    []map[int]bool
	edges int
}

type node struct {
	pkg   pkgspace.Package
	vec   []float64
	epoch uint64 // catalogue epoch vec was computed under
}

// New returns an empty preference graph.
func New() *Graph {
	return &Graph{index: make(map[string]int)}
}

// Len returns the number of distinct packages recorded.
func (g *Graph) Len() int { return len(g.nodes) }

// Edges returns the number of preference edges currently stored.
func (g *Graph) Edges() int { return g.edges }

func (g *Graph) nodeID(epoch uint64, p pkgspace.Package, vec []float64) (id int, refreshed bool) {
	sig := p.Signature()
	if id, ok := g.index[sig]; ok {
		if n := &g.nodes[id]; epoch > n.epoch {
			// The package resurfaced under a newer epoch: its aggregate
			// vector was recomputed against that epoch's space, so the
			// stale one goes. (The package itself cannot differ — equal
			// signatures mean equal stable member IDs.) Every edge touching
			// this node now derives its constraint from the new geometry.
			n.vec = append([]float64(nil), vec...)
			n.epoch = epoch
			refreshed = true
		}
		return id, refreshed
	}
	id = len(g.nodes)
	g.nodes = append(g.nodes, node{pkg: p, vec: append([]float64(nil), vec...), epoch: epoch})
	g.out = append(g.out, make(map[int]bool))
	g.in = append(g.in, make(map[int]bool))
	g.index[sig] = id
	return id, false
}

// AddPreference records winner ≻ loser, given the packages' normalized
// aggregate vectors. It returns ErrCycle (and records nothing) if the
// preference contradicts the transitive closure of existing preferences.
// Duplicate preferences are no-ops. Equivalent to AddPreferenceAt under
// epoch 0 — the static-catalogue case, where refreshes cannot happen.
func (g *Graph) AddPreference(winner pkgspace.Package, winnerVec []float64, loser pkgspace.Package, loserVec []float64) error {
	_, err := g.AddPreferenceAt(0, winner, winnerVec, loser, loserVec)
	return err
}

// AddPreferenceAt records winner ≻ loser observed under the given
// catalogue epoch. Nodes already known from an older epoch have their
// stored vector refreshed to the newer observation (a vector from a newer
// epoch is never downgraded by late-arriving old feedback); refreshed
// reports whether that happened, because a refresh rewrites the
// constraints of EVERY edge touching the node — callers maintaining
// derived state (like a sample pool checked against the constraint set)
// must rebuild it rather than apply just the new edge. A refresh is
// reported even when the edge itself is a duplicate or a cycle: the
// vector update has already happened by then.
func (g *Graph) AddPreferenceAt(epoch uint64, winner pkgspace.Package, winnerVec []float64, loser pkgspace.Package, loserVec []float64) (refreshed bool, err error) {
	if winner.Signature() == loser.Signature() {
		return false, fmt.Errorf("prefgraph: preference between identical packages %s", winner)
	}
	u, ru := g.nodeID(epoch, winner, winnerVec)
	v, rv := g.nodeID(epoch, loser, loserVec)
	refreshed = ru || rv
	if g.out[u][v] {
		return refreshed, nil
	}
	if g.reachable(v, u, -1, -1) {
		return refreshed, fmt.Errorf("%w: %s ≻ %s contradicts recorded preferences", ErrCycle, winner, loser)
	}
	g.out[u][v] = true
	g.in[v][u] = true
	g.edges++
	return refreshed, nil
}

// UniformEpoch reports the single catalogue epoch every stored node vector
// was computed under, ok=false when nodes span epochs. An empty graph is
// vacuously uniform at epoch 0. Persistence uses this to decide whether a
// sample pool maintained against the stored vectors can be reproduced from
// one epoch's geometry alone.
func (g *Graph) UniformEpoch() (epoch uint64, ok bool) {
	for i := range g.nodes {
		if i == 0 {
			epoch = g.nodes[i].epoch
		} else if g.nodes[i].epoch != epoch {
			return 0, false
		}
	}
	return epoch, true
}

// Node reports the stored state of a package's node: a copy of its current
// aggregate vector and the epoch that vector was computed under. ok is
// false when the package was never recorded.
func (g *Graph) Node(p pkgspace.Package) (vec []float64, epoch uint64, ok bool) {
	id, found := g.index[p.Signature()]
	if !found {
		return nil, 0, false
	}
	n := g.nodes[id]
	return append([]float64(nil), n.vec...), n.epoch, true
}

// AddClick records the feedback generated by a click: the chosen package is
// preferred to every other shown package (paper §3.3: one click on a slate
// of σ yields σ−1 pairwise preferences). Slate entries equal to the chosen
// package are skipped. Preferences that would create a cycle are skipped
// and reported in the returned count.
func (g *Graph) AddClick(chosen pkgspace.Package, chosenVec []float64, shown []pkgspace.Package, shownVecs [][]float64) (added, cycles int) {
	for i, p := range shown {
		if p.Signature() == chosen.Signature() {
			continue
		}
		err := g.AddPreference(chosen, chosenVec, p, shownVecs[i])
		switch {
		case err == nil:
			added++
		case errors.Is(err, ErrCycle):
			cycles++
		}
	}
	return added, cycles
}

// reachable reports whether dst is reachable from src, optionally ignoring
// the single edge banU→banV (pass -1,-1 for none).
func (g *Graph) reachable(src, dst, banU, banV int) bool {
	if src == dst {
		return true
	}
	seen := make([]bool, len(g.nodes))
	stack := []int{src}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for v := range g.out[u] {
			if u == banU && v == banV {
				continue
			}
			if v == dst {
				return true
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}

// CyclePath returns the packages on the existing directed path from `from`
// to `to`, in order, or nil if none exists. When AddPreference(w, l) fails
// with ErrCycle, CyclePath(l, w) yields the packages the UI should present
// to the user to break the cycle.
func (g *Graph) CyclePath(from, to pkgspace.Package) []pkgspace.Package {
	u, ok := g.index[from.Signature()]
	if !ok {
		return nil
	}
	v, ok := g.index[to.Signature()]
	if !ok {
		return nil
	}
	prev := make([]int, len(g.nodes))
	for i := range prev {
		prev[i] = -1
	}
	// BFS for a shortest path u→v.
	queue := []int{u}
	prev[u] = u
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x == v {
			break
		}
		for y := range g.out[x] {
			if prev[y] == -1 {
				prev[y] = x
				queue = append(queue, y)
			}
		}
	}
	if prev[v] == -1 {
		return nil
	}
	var rev []pkgspace.Package
	for x := v; ; x = prev[x] {
		rev = append(rev, g.nodes[x].pkg)
		if x == u {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// RemovePreference deletes the edge winner→loser if present (used when the
// user breaks a cycle by reversing a preference).
func (g *Graph) RemovePreference(winner, loser pkgspace.Package) bool {
	u, ok := g.index[winner.Signature()]
	if !ok {
		return false
	}
	v, ok := g.index[loser.Signature()]
	if !ok {
		return false
	}
	if !g.out[u][v] {
		return false
	}
	delete(g.out[u], v)
	delete(g.in[v], u)
	g.edges--
	return true
}

// Constraints materializes the current preference edges as half-space
// constraints, in deterministic (node-id) order. With reduced=true,
// redundant edges (implied by transitivity, paper §3.3) are omitted via
// transitive reduction; the full set is returned otherwise. The graph
// itself is not modified.
func (g *Graph) Constraints(reduced bool) []Constraint {
	var out []Constraint
	for u := range g.out {
		targets := make([]int, 0, len(g.out[u]))
		for v := range g.out[u] {
			targets = append(targets, v)
		}
		sortInts(targets)
		for _, v := range targets {
			if reduced && g.redundant(u, v) {
				continue
			}
			out = append(out, g.constraint(u, v))
		}
	}
	return out
}

func (g *Graph) constraint(u, v int) Constraint {
	nu, nv := g.nodes[u], g.nodes[v]
	diff := make([]float64, len(nu.vec))
	for i := range diff {
		diff[i] = nu.vec[i] - nv.vec[i]
	}
	return Constraint{Winner: nu.pkg, Loser: nv.pkg, Diff: diff}
}

// redundant reports whether edge u→v is implied by a longer path u⇝v.
func (g *Graph) redundant(u, v int) bool {
	return g.reachable(u, v, u, v)
}

// Reduce permanently removes redundant edges from the graph and returns
// the number removed. After reduction, Constraints(false) and
// Constraints(true) coincide until new preferences arrive.
func (g *Graph) Reduce() int {
	removed := 0
	for u := range g.out {
		// Collect first: we mutate the adjacency map while iterating.
		var targets []int
		for v := range g.out[u] {
			targets = append(targets, v)
		}
		for _, v := range targets {
			if g.redundant(u, v) {
				delete(g.out[u], v)
				delete(g.in[v], u)
				g.edges--
				removed++
			}
		}
	}
	return removed
}

// Preferences enumerates every stored edge as (winner, loser) package
// pairs, in deterministic node order — the portable form used by
// persistence (vectors are recomputed from the item space on restore).
func (g *Graph) Preferences() [][2]pkgspace.Package {
	out := make([][2]pkgspace.Package, 0, g.edges)
	for u := range g.out {
		// Deterministic order over map targets.
		targets := make([]int, 0, len(g.out[u]))
		for v := range g.out[u] {
			targets = append(targets, v)
		}
		sortInts(targets)
		for _, v := range targets {
			out = append(out, [2]pkgspace.Package{g.nodes[u].pkg, g.nodes[v].pkg})
		}
	}
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TopologicalOrder returns the node packages in a topological order of the
// preference DAG (winners before losers). It is primarily a testing and
// display aid.
func (g *Graph) TopologicalOrder() []pkgspace.Package {
	indeg := make([]int, len(g.nodes))
	for v := range g.in {
		indeg[v] = len(g.in[v])
	}
	var queue []int
	for v, d := range indeg {
		if d == 0 {
			queue = append(queue, v)
		}
	}
	var order []pkgspace.Package
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, g.nodes[u].pkg)
		for v := range g.out[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	return order
}
