package prefgraph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"toppkg/internal/pkgspace"
)

func vec(xs ...float64) []float64 { return xs }

func TestAddPreferenceAndConstraint(t *testing.T) {
	g := New()
	a, b := pkgspace.New(0), pkgspace.New(1)
	if err := g.AddPreference(a, vec(0.8, 0.2), b, vec(0.3, 0.5)); err != nil {
		t.Fatalf("AddPreference: %v", err)
	}
	cs := g.Constraints(false)
	if len(cs) != 1 {
		t.Fatalf("constraints = %d, want 1", len(cs))
	}
	c := cs[0]
	if c.Diff[0] != 0.5 || c.Diff[1] != -0.3 {
		t.Errorf("Diff = %v, want (0.5, -0.3)", c.Diff)
	}
	// w = (1, 0): w·diff = 0.5 ≥ 0 → consistent.
	if c.Violates(vec(1, 0)) {
		t.Error("consistent w flagged as violating")
	}
	// w = (0, 1): w·diff = -0.3 < 0 → violates.
	if !c.Violates(vec(0, 1)) {
		t.Error("violating w not flagged")
	}
}

func TestDuplicateEdgeNoOp(t *testing.T) {
	g := New()
	a, b := pkgspace.New(0), pkgspace.New(1)
	va, vb := vec(1.0), vec(0.0)
	if err := g.AddPreference(a, va, b, vb); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPreference(a, va, b, vb); err != nil {
		t.Fatalf("duplicate add errored: %v", err)
	}
	if g.Edges() != 1 {
		t.Errorf("Edges = %d, want 1", g.Edges())
	}
}

func TestSelfPreferenceRejected(t *testing.T) {
	g := New()
	a := pkgspace.New(0)
	if err := g.AddPreference(a, vec(1.0), a, vec(1.0)); err == nil {
		t.Error("self preference accepted")
	}
}

func TestCycleDetection(t *testing.T) {
	g := New()
	a, b, c := pkgspace.New(0), pkgspace.New(1), pkgspace.New(2)
	va, vb, vc := vec(3.0), vec(2.0), vec(1.0)
	if err := g.AddPreference(a, va, b, vb); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPreference(b, vb, c, vc); err != nil {
		t.Fatal(err)
	}
	// c ≻ a closes a cycle a→b→c→a.
	err := g.AddPreference(c, vc, a, va)
	if !errors.Is(err, ErrCycle) {
		t.Fatalf("cycle not detected: %v", err)
	}
	if g.Edges() != 2 {
		t.Errorf("cycle add mutated graph: edges = %d", g.Edges())
	}
	// The cycle path a ⇝ c is what the UI would present.
	path := g.CyclePath(a, c)
	if len(path) != 3 || !pkgspace.Equal(path[0], a) || !pkgspace.Equal(path[2], c) {
		t.Errorf("CyclePath = %v", path)
	}
}

func TestCyclePathMissing(t *testing.T) {
	g := New()
	a, b := pkgspace.New(0), pkgspace.New(1)
	if g.CyclePath(a, b) != nil {
		t.Error("path on empty graph")
	}
	if err := g.AddPreference(a, vec(1.0), b, vec(0.0)); err != nil {
		t.Fatal(err)
	}
	if g.CyclePath(b, a) != nil {
		t.Error("reverse path should not exist")
	}
}

func TestRemovePreference(t *testing.T) {
	g := New()
	a, b := pkgspace.New(0), pkgspace.New(1)
	if err := g.AddPreference(a, vec(1.0), b, vec(0.0)); err != nil {
		t.Fatal(err)
	}
	if !g.RemovePreference(a, b) {
		t.Error("remove failed")
	}
	if g.RemovePreference(a, b) {
		t.Error("double remove succeeded")
	}
	if g.Edges() != 0 {
		t.Errorf("Edges = %d, want 0", g.Edges())
	}
	// After removal the reverse direction is insertable (cycle resolution).
	if err := g.AddPreference(b, vec(0.0), a, vec(1.0)); err != nil {
		t.Errorf("reversed edge rejected: %v", err)
	}
}

// TestTransitiveReduction: a ≻ b, b ≻ c, a ≻ c — the last is redundant.
func TestTransitiveReduction(t *testing.T) {
	g := New()
	a, b, c := pkgspace.New(0), pkgspace.New(1), pkgspace.New(2)
	va, vb, vc := vec(3.0), vec(2.0), vec(1.0)
	for _, e := range [][2]struct {
		p pkgspace.Package
		v []float64
	}{
		{{a, va}, {b, vb}},
		{{b, vb}, {c, vc}},
		{{a, va}, {c, vc}},
	} {
		if err := g.AddPreference(e[0].p, e[0].v, e[1].p, e[1].v); err != nil {
			t.Fatal(err)
		}
	}
	full := g.Constraints(false)
	reduced := g.Constraints(true)
	if len(full) != 3 || len(reduced) != 2 {
		t.Fatalf("full=%d reduced=%d, want 3 and 2", len(full), len(reduced))
	}
	// The graph itself is untouched by Constraints.
	if g.Edges() != 3 {
		t.Errorf("Constraints mutated graph: %d edges", g.Edges())
	}
	if removed := g.Reduce(); removed != 1 {
		t.Errorf("Reduce removed %d, want 1", removed)
	}
	if g.Edges() != 2 {
		t.Errorf("post-Reduce edges = %d, want 2", g.Edges())
	}
}

// TestReductionPreservesReachability: the transitive closure must be
// identical before and after reduction — the core §3.3 guarantee that
// pruned constraints are implied.
func TestReductionPreservesReachability(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(6)
		// Random DAG over a fixed topological order 0..n-1.
		g := New()
		pkgs := make([]pkgspace.Package, n)
		vecs := make([][]float64, n)
		for i := range pkgs {
			pkgs[i] = pkgspace.New(i)
			vecs[i] = vec(float64(n-i), r.Float64())
		}
		type edge struct{ u, v int }
		var edges []edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.4 {
					if err := g.AddPreference(pkgs[u], vecs[u], pkgs[v], vecs[v]); err != nil {
						return false
					}
					edges = append(edges, edge{u, v})
				}
			}
		}
		// Closure before.
		reach := func() [][]bool {
			m := make([][]bool, n)
			adj := make([][]bool, n)
			for i := range m {
				m[i] = make([]bool, n)
				adj[i] = make([]bool, n)
			}
			for _, c := range g.Constraints(false) {
				adj[c.Winner.IDs[0]][c.Loser.IDs[0]] = true
			}
			for k := 0; k < n; k++ {
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						if adj[i][j] || (i == j) {
							m[i][j] = true
						}
					}
				}
			}
			// Warshall.
			for k := 0; k < n; k++ {
				for i := 0; i < n; i++ {
					if m[i][k] {
						for j := 0; j < n; j++ {
							if m[k][j] {
								m[i][j] = true
							}
						}
					}
				}
			}
			return m
		}
		before := reach()
		g.Reduce()
		after := reach()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if before[i][j] != after[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAddClick(t *testing.T) {
	g := New()
	chosen := pkgspace.New(0)
	shown := []pkgspace.Package{pkgspace.New(0), pkgspace.New(1), pkgspace.New(2)}
	vecs := [][]float64{vec(3.0), vec(2.0), vec(1.0)}
	added, cycles := g.AddClick(chosen, vecs[0], shown, vecs)
	if added != 2 || cycles != 0 {
		t.Errorf("AddClick = (%d, %d), want (2, 0)", added, cycles)
	}
	// A click on 1 over {0} now contradicts 0 ≻ 1.
	added, cycles = g.AddClick(shown[1], vecs[1], shown[:1], vecs[:1])
	if added != 0 || cycles != 1 {
		t.Errorf("contradicting AddClick = (%d, %d), want (0, 1)", added, cycles)
	}
}

func TestTopologicalOrder(t *testing.T) {
	g := New()
	a, b, c := pkgspace.New(0), pkgspace.New(1), pkgspace.New(2)
	va, vb, vc := vec(3.0), vec(2.0), vec(1.0)
	if err := g.AddPreference(a, va, b, vb); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPreference(b, vb, c, vc); err != nil {
		t.Fatal(err)
	}
	order := g.TopologicalOrder()
	if len(order) != 3 {
		t.Fatalf("order len = %d", len(order))
	}
	pos := map[string]int{}
	for i, p := range order {
		pos[p.Signature()] = i
	}
	if pos["0"] > pos["1"] || pos["1"] > pos["2"] {
		t.Errorf("not topological: %v", order)
	}
}

// Property: constraints derived from a preference are satisfied by any
// weight vector that scores the winner at least as high as the loser.
func TestConstraintConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(5)
		wv := make([]float64, d)
		lv := make([]float64, d)
		w := make([]float64, d)
		for i := 0; i < d; i++ {
			wv[i] = r.Float64()
			lv[i] = r.Float64()
			w[i] = r.Float64()*2 - 1
		}
		g := New()
		if err := g.AddPreference(pkgspace.New(0), wv, pkgspace.New(1), lv); err != nil {
			return false
		}
		c := g.Constraints(false)[0]
		dotW, dotL := 0.0, 0.0
		for i := 0; i < d; i++ {
			dotW += w[i] * wv[i]
			dotL += w[i] * lv[i]
		}
		return c.Violates(w) == (dotW < dotL)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestEpochVectorRefresh: a package re-encountered under a newer catalogue
// epoch refreshes its stored vector (and the constraints derived from
// every edge touching it), while stale feedback from an older epoch never
// downgrades a newer vector.
func TestEpochVectorRefresh(t *testing.T) {
	g := New()
	a, b, c := pkgspace.New(10), pkgspace.New(20), pkgspace.New(30)
	if refreshed, err := g.AddPreferenceAt(1, a, []float64{1, 0}, b, []float64{0, 1}); err != nil || refreshed {
		t.Fatalf("first feedback: refreshed=%v err=%v", refreshed, err)
	}
	if vec, epoch, ok := g.Node(a); !ok || epoch != 1 || vec[0] != 1 {
		t.Fatalf("node a = (%v, %d, %v) after epoch-1 feedback", vec, epoch, ok)
	}

	// Epoch 2 reprices a: feedback touching it refreshes the vector, and
	// the OLD edge a≻b now derives its constraint from the new geometry.
	if refreshed, err := g.AddPreferenceAt(2, a, []float64{0.5, 0.25}, c, []float64{0, 0}); err != nil || !refreshed {
		t.Fatalf("epoch-2 feedback on a known package: refreshed=%v err=%v, want a reported refresh", refreshed, err)
	}
	if vec, epoch, _ := g.Node(a); epoch != 2 || vec[0] != 0.5 || vec[1] != 0.25 {
		t.Fatalf("node a = (%v, %d): epoch-2 feedback did not refresh the vector", vec, epoch)
	}
	cs := g.Constraints(false)
	found := false
	for _, con := range cs {
		if con.Winner.Signature() == a.Signature() && con.Loser.Signature() == b.Signature() {
			found = true
			if con.Diff[0] != 0.5 || con.Diff[1] != 0.25-1 {
				t.Fatalf("edge a≻b constraint %v still uses the epoch-1 vector", con.Diff)
			}
		}
	}
	if !found {
		t.Fatal("edge a≻b missing")
	}

	// Late-arriving epoch-1 feedback must not roll the vector back.
	if refreshed, err := g.AddPreferenceAt(1, a, []float64{9, 9}, b, []float64{0, 1}); err != nil || refreshed {
		t.Fatalf("stale epoch-1 feedback: refreshed=%v err=%v, want no refresh", refreshed, err)
	}
	if vec, epoch, _ := g.Node(a); epoch != 2 || vec[0] != 0.5 {
		t.Fatalf("node a = (%v, %d): stale epoch-1 feedback downgraded the vector", vec, epoch)
	}

	// Same-epoch duplicates keep the first observation (no spurious churn).
	if refreshed, err := g.AddPreferenceAt(2, a, []float64{7, 7}, c, []float64{0, 0}); err != nil || refreshed {
		t.Fatalf("same-epoch duplicate: refreshed=%v err=%v, want no refresh", refreshed, err)
	}
	if vec, _, _ := g.Node(a); vec[0] != 0.5 {
		t.Fatalf("node a vector %v rewritten by same-epoch duplicate", vec)
	}
}
