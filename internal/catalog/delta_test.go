package catalog

import (
	"math"
	"math/rand"
	"slices"
	"sync"
	"testing"
	"time"

	"toppkg/internal/feature"
	"toppkg/internal/search"
)

// deltaProfile exercises the normalizer states the delta path maintains:
// a sum dimension (top-φ set with a cutoff) and max/avg extremes, two
// entries sharing feature 0.
func deltaProfile(t testing.TB) *feature.Profile {
	t.Helper()
	p, err := feature.NewProfile(2,
		feature.Entry{Feature: 0, Agg: feature.AggSum},
		feature.Entry{Feature: 1, Agg: feature.AggMax},
		feature.Entry{Feature: 0, Agg: feature.AggAvg},
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// refBuild compacts a shadow authoritative set the way the catalogue does
// and builds the epoch state from scratch — the oracle every delta-built
// epoch must match bit-for-bit.
func refBuild(t testing.TB, shadow map[int][]float64, p *feature.Profile, maxSize int) (*feature.Space, *search.Index, []int) {
	t.Helper()
	stable := make([]int, 0, len(shadow))
	for id := range shadow {
		stable = append(stable, id)
	}
	slices.Sort(stable)
	items := make([]feature.Item, len(stable))
	for i, id := range stable {
		items[i] = feature.Item{ID: i, Values: shadow[id]}
	}
	sp, err := feature.NewSpace(items, p, maxSize)
	if err != nil {
		t.Fatal(err)
	}
	return sp, search.NewIndex(sp), stable
}

// assertEpochMatches checks a catalogue epoch against the from-scratch
// reference: same geometry fingerprint, bitwise-equal scales, the same
// stable-ID assignment, and identical TopK output over random utilities.
func assertEpochMatches(t testing.TB, ep *Epoch, sp *feature.Space, ix *search.Index, stable []int, rng *rand.Rand) {
	t.Helper()
	if ep.Space.Hash() != sp.Hash() {
		t.Fatalf("space hash: got %x, want %x", ep.Space.Hash(), sp.Hash())
	}
	for d := 0; d < sp.Dims(); d++ {
		g, w := ep.Space.Norm.Scale(d), sp.Norm.Scale(d)
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("scale[%d]: got %v, want %v", d, g, w)
		}
	}
	if !slices.Equal(ep.ids.stable, stable) {
		t.Fatalf("stable IDs: got %v, want %v", ep.ids.stable, stable)
	}
	if ep.ids.Hash() != IDMapHash(stable) {
		t.Fatalf("IDMap hash mismatch")
	}
	for _, id := range stable {
		if _, ok := ep.DenseID(id); !ok {
			t.Fatalf("stable ID %d missing from epoch map", id)
		}
	}
	for trial := 0; trial < 3; trial++ {
		w := make([]float64, sp.Dims())
		for i := range w {
			w[i] = rng.Float64()*2 - 1
		}
		u, err := feature.NewUtility(sp.Profile, w)
		if err != nil {
			t.Fatal(err)
		}
		opts := search.Options{K: 3}
		got, err := ep.Index.TopK(u, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ix.TopK(u, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Packages) != len(want.Packages) {
			t.Fatalf("TopK: %d vs %d packages", len(got.Packages), len(want.Packages))
		}
		for i := range got.Packages {
			if !slices.Equal(got.Packages[i].Pkg.IDs, want.Packages[i].Pkg.IDs) ||
				got.Packages[i].Utility != want.Packages[i].Utility {
				t.Fatalf("TopK pkg %d: got %v (%v), want %v (%v)", i,
					got.Packages[i].Pkg.IDs, got.Packages[i].Utility,
					want.Packages[i].Pkg.IDs, want.Packages[i].Utility)
			}
		}
	}
}

func deltaValue(rng *rand.Rand) float64 {
	switch rng.Intn(7) {
	case 0:
		return feature.Null
	case 1:
		return 0
	case 2:
		return 6 // frequent duplicate: stresses cutoff ties
	default:
		return math.Floor(rng.Float64()*200) / 10
	}
}

func deltaItem(rng *rand.Rand, id int) feature.Item {
	return feature.Item{ID: id, Values: []float64{deltaValue(rng), deltaValue(rng)}}
}

// TestDeltaEpochBitIdentical is the tentpole property test: randomized
// upsert/delete batch sequences applied through the delta path produce
// epochs bit-identical to from-scratch builds — same Space.Hash, same
// scales, same ID maps, same TopK results — with delta state chained
// across every step.
func TestDeltaEpochBitIdentical(t *testing.T) {
	p := deltaProfile(t)
	const maxSize = 3
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		shadow := map[int][]float64{}
		var initial []feature.Item
		for i := 0; i < 6+rng.Intn(10); i++ {
			it := deltaItem(rng, i*3) // gaps so inserts can land mid-order
			initial = append(initial, it)
			shadow[it.ID] = it.Values
		}
		c, err := New(Config{
			Profile:        p,
			MaxPackageSize: maxSize,
			Items:          initial,
			Coalesce:       -1,
			DeltaThreshold: 1 << 20, // every batch takes the delta path
		})
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 12; step++ {
			if rng.Intn(4) == 0 && len(shadow) > 2 {
				var ids []int
				for id := range shadow {
					ids = append(ids, id)
					if len(ids) == 2 {
						break
					}
				}
				if _, err := c.Delete(ids); err != nil {
					t.Fatal(err)
				}
				for _, id := range ids {
					delete(shadow, id)
				}
			} else {
				batch := make([]feature.Item, 1+rng.Intn(4))
				for i := range batch {
					batch[i] = deltaItem(rng, rng.Intn(60))
				}
				if err := c.Upsert(batch); err != nil {
					t.Fatal(err)
				}
				for _, it := range batch {
					shadow[it.ID] = it.Values
				}
			}
			sp, ix, stable := refBuild(t, shadow, p, maxSize)
			assertEpochMatches(t, c.Current(), sp, ix, stable, rng)
		}
		if st := c.Stats(); st.DeltaBuilds == 0 || st.DeltaFallbacks != 0 {
			t.Fatalf("delta path not exercised cleanly: %+v", st)
		}
	}
}

// TestDeltaThresholdRouting pins the decision rule: change sets at or
// under the threshold build incrementally, larger ones (and all builds
// with a negative threshold) rebuild from scratch.
func TestDeltaThresholdRouting(t *testing.T) {
	p := deltaProfile(t)
	newCat := func(threshold int) *Catalog {
		t.Helper()
		rng := rand.New(rand.NewSource(7))
		items := make([]feature.Item, 10)
		for i := range items {
			items[i] = deltaItem(rng, i)
		}
		c, err := New(Config{Profile: p, MaxPackageSize: 3, Items: items, Coalesce: -1, DeltaThreshold: threshold})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	c := newCat(2)
	rng := rand.New(rand.NewSource(8))
	small := []feature.Item{deltaItem(rng, 3)}
	if err := c.Upsert(small); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.DeltaBuilds != 1 || st.FullRebuilds != 1 {
		t.Fatalf("small batch should delta-build: %+v", st)
	}
	big := []feature.Item{deltaItem(rng, 4), deltaItem(rng, 5), deltaItem(rng, 6)}
	if err := c.Upsert(big); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.DeltaBuilds != 1 || st.FullRebuilds != 2 {
		t.Fatalf("over-threshold batch should full-rebuild: %+v", st)
	}

	off := newCat(-1)
	if err := off.Upsert(small); err != nil {
		t.Fatal(err)
	}
	if st := off.Stats(); st.DeltaBuilds != 0 || st.FullRebuilds != 2 {
		t.Fatalf("negative threshold should disable delta builds: %+v", st)
	}
}

// TestDeltaNoOpBatchKeepsEpoch: a batch whose churn nets out to nothing
// (an upsert rewriting identical values and name) keeps the current epoch
// installed — no swap, no subscriber notification, so epoch-keyed result
// caches and snapshot pools stay valid — while still covering the batch
// (Flush returns, Pending clears).
func TestDeltaNoOpBatchKeepsEpoch(t *testing.T) {
	p := deltaProfile(t)
	rng := rand.New(rand.NewSource(9))
	items := make([]feature.Item, 5)
	for i := range items {
		items[i] = deltaItem(rng, i)
		items[i].Name = "n"
	}
	c, err := New(Config{Profile: p, MaxPackageSize: 3, Items: items, Coalesce: -1})
	if err != nil {
		t.Fatal(err)
	}
	var swaps int
	c.Subscribe(func(*Epoch, *ChangeSet) { swaps++ })
	ep1 := c.Current()
	same := feature.Item{ID: 2, Name: "n", Values: append([]float64(nil), items[2].Values...)}
	if err := c.Upsert([]feature.Item{same}); err != nil {
		t.Fatal(err)
	}
	c.Flush() // must not hang: the batch is covered without a swap
	if ep2 := c.Current(); ep2 != ep1 {
		t.Fatalf("no-op batch swapped epochs: %d -> %d", ep1.ID, ep2.ID)
	}
	if swaps != 0 {
		t.Fatalf("no-op batch notified %d subscribers", swaps)
	}
	if st := c.Stats(); st.Pending || st.DeltaBuilds != 1 {
		t.Fatalf("no-op batch not covered cleanly: %+v", st)
	}
	// A real change afterwards still swaps normally.
	if err := c.Upsert([]feature.Item{deltaItem(rng, 2)}); err != nil {
		t.Fatal(err)
	}
	if ep3 := c.Current(); ep3.ID != ep1.ID+1 || swaps != 1 {
		t.Fatalf("real change after no-op: epoch %d, swaps %d", ep3.ID, swaps)
	}
}

// TestDeltaRenameOnlyUpsert: changing only an item's Name is a real
// mutation — served slates resolve names through the epoch's items — and
// must not be filtered as a value-level no-op.
func TestDeltaRenameOnlyUpsert(t *testing.T) {
	p := deltaProfile(t)
	rng := rand.New(rand.NewSource(12))
	items := make([]feature.Item, 5)
	for i := range items {
		items[i] = deltaItem(rng, i)
		items[i].Name = "old"
	}
	c, err := New(Config{Profile: p, MaxPackageSize: 3, Items: items, Coalesce: -1})
	if err != nil {
		t.Fatal(err)
	}
	renamed := feature.Item{ID: 3, Name: "renamed", Values: append([]float64(nil), items[3].Values...)}
	if err := c.Upsert([]feature.Item{renamed}); err != nil {
		t.Fatal(err)
	}
	ep := c.Current()
	d, ok := ep.DenseID(3)
	if !ok || ep.Items()[d].Name != "renamed" {
		t.Fatalf("rename-only upsert not reflected: %+v", ep.Items()[d])
	}
	if st := c.Stats(); st.DeltaBuilds != 1 || st.DeltaFallbacks != 0 {
		t.Fatalf("rename should delta-build: %+v", st)
	}
}

// TestDeltaBuildsRaceReaders races background delta builds against
// readers running searches on pinned epochs — the serving-path contract
// that an in-flight search never observes a torn index. Run with -race.
func TestDeltaBuildsRaceReaders(t *testing.T) {
	p := deltaProfile(t)
	rng := rand.New(rand.NewSource(10))
	items := make([]feature.Item, 40)
	shadow := map[int][]float64{}
	for i := range items {
		items[i] = deltaItem(rng, i)
		shadow[i] = items[i].Values
	}
	c, err := New(Config{Profile: p, MaxPackageSize: 3, Items: items, Coalesce: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	u, err := feature.NewUtility(p, []float64{0.7, -0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ep := c.Current()
				if _, err := ep.Index.TopK(u, search.Options{K: 3}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	mrng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		it := deltaItem(mrng, mrng.Intn(50))
		if err := c.Upsert([]feature.Item{it}); err != nil {
			t.Fatal(err)
		}
		shadow[it.ID] = it.Values // only this goroutine mutates; compared after Flush
	}
	close(stop)
	wg.Wait()
	c.Flush()
	sp, ix, stable := refBuild(t, shadow, p, 3)
	assertEpochMatches(t, c.Current(), sp, ix, stable, rng)
	if st := c.Stats(); st.DeltaBuilds == 0 {
		t.Fatalf("churn should have exercised the delta path: %+v", st)
	}
}

// --- Fuzzing: random mutation-batch sequences, delta ≡ full rebuild. ---

// fuzzByteValue decodes one byte into a raw feature value: 255 is the
// null sentinel, everything else spreads over [0, 31.75] so the fuzzer
// can cross normalizer cutoffs.
func fuzzByteValue(b byte) float64 {
	if b == 255 {
		return feature.Null
	}
	return float64(b) / 8
}

// FuzzDeltaEpoch feeds random mutation-batch sequences through a
// delta-always catalogue and asserts every resulting epoch bit-identical
// to a full rebuild. Input: data[0] sizes the initial set; then 4-byte
// records [op, id, v0, v1] — op%4: 0/1 upsert with the decoded values,
// 2 delete, 3 upsert rewriting the current values (a no-op batch). The
// committed corpus covers extreme-deletion and cutoff-crossing cases.
func FuzzDeltaEpoch(f *testing.F) {
	f.Add([]byte("\x05\x02\x01\x00\x00"))                                 // delete the max holder on the max dimension
	f.Add([]byte("\x05\x00\x14\xfc\x10\x01\x15\xf8\x08"))                 // two upserts crossing the sum top-φ cutoff
	f.Add([]byte("\x05\x02\x00\x00\x00\x00\x00\x50\x30\x03\x00\x00\x00")) // delete, reinsert, no-op reprice
	f.Add([]byte("\x02\x00\x09\xff\xff\x01\x09\x08\xff"))                 // null-heavy rows (orphan churn)
	p, err := feature.NewProfile(2,
		feature.Entry{Feature: 0, Agg: feature.AggSum},
		feature.Entry{Feature: 1, Agg: feature.AggMax},
		feature.Entry{Feature: 0, Agg: feature.AggAvg},
	)
	if err != nil {
		f.Fatal(err)
	}
	const maxSize = 3
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			t.Skip()
		}
		n0 := 3 + int(data[0]%6)
		shadow := map[int][]float64{}
		initial := make([]feature.Item, n0)
		for i := 0; i < n0; i++ {
			vals := []float64{float64((i*7 + 0) % 11), float64((i*7 + 3) % 11)}
			initial[i] = feature.Item{ID: i, Values: vals}
			shadow[i] = vals
		}
		c, err := New(Config{
			Profile:        p,
			MaxPackageSize: maxSize,
			Items:          initial,
			Coalesce:       -1,
			DeltaThreshold: 1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		for pos := 1; pos+4 <= len(data); pos += 4 {
			op, id := data[pos]%4, int(data[pos+1]%24)
			switch op {
			case 2:
				if _, ok := shadow[id]; ok && len(shadow) > 1 {
					if _, err := c.Delete([]int{id}); err != nil {
						t.Fatal(err)
					}
					delete(shadow, id)
				}
			case 3:
				if vals, ok := shadow[id]; ok {
					cp := append([]float64(nil), vals...)
					if err := c.Upsert([]feature.Item{{ID: id, Values: cp}}); err != nil {
						t.Fatal(err)
					}
				}
			default:
				vals := []float64{fuzzByteValue(data[pos+2]), fuzzByteValue(data[pos+3])}
				if err := c.Upsert([]feature.Item{{ID: id, Values: vals}}); err != nil {
					t.Fatal(err)
				}
				shadow[id] = vals
			}
			sp, ix, stable := refBuild(t, shadow, p, maxSize)
			assertEpochMatches(t, c.Current(), sp, ix, stable, rng)
		}
		if st := c.Stats(); st.DeltaFallbacks != 0 || st.BuildErrors != 0 {
			t.Fatalf("delta path fell back or errored: %+v", st)
		}
	})
}
