// Package catalog is the live item store behind a serving deployment: a
// versioned, mutable catalogue with copy-on-write epoch snapshots. The
// paper assumes a fixed item relation T, but the scenario it motivates
// (§1: packages recommended at login, clicks fed back) is exactly the
// setting where inventory arrives, sells out, and gets repriced while
// sessions are live.
//
// A Catalog owns the authoritative item set, keyed by a stable item ID,
// and accepts Upsert/Delete batches. Each committed batch makes the
// catalogue dirty; a background rebuilder coalesces rapid mutation bursts,
// builds a fresh immutable Epoch — monotonic ID plus the feature.Space and
// search.Index every reader needs — off-request, and atomically swaps it
// in. Readers resolve the current epoch with one atomic load and then work
// against immutable state, so a recommend in flight never observes a torn
// index and never blocks on a rebuild; it simply runs to completion on the
// epoch it started with.
//
// Dense vs stable IDs: the rest of the system addresses items positionally
// (package item IDs index feature.Space.Items). Each epoch therefore
// compacts the authoritative set into a dense slice ordered by stable ID
// and records the mapping both ways. As long as no lower-numbered item is
// deleted, an item keeps its dense ID across epochs; Epoch.DenseID and
// Epoch.StableID translate when that does not hold.
package catalog

import (
	"cmp"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"toppkg/internal/feature"
	"toppkg/internal/partition"
	"toppkg/internal/search"
	"toppkg/internal/skyline"
)

// DefaultCoalesce is the rebuild coalescing window applied when
// Config.Coalesce is zero: after the first mutation dirties the catalogue,
// the rebuilder waits this long for the burst to finish before building,
// so a stream of rapid batches costs one rebuild, not one per batch.
const DefaultCoalesce = 20 * time.Millisecond

// DefaultDeltaThreshold is the delta-build eligibility bound applied when
// Config.DeltaThreshold is zero: batches touching at most this many
// distinct stable IDs since the current epoch build the next epoch
// incrementally from it instead of from scratch.
const DefaultDeltaThreshold = 256

// DefaultReclusterImbalance is the partition imbalance threshold applied
// when Config.PartitionReclusterImbalance is zero: incremental partition
// maintenance keeps assigning new items to their nearest clusters until
// the fullest cluster exceeds this multiple of the balanced size, at which
// point the next delta build re-clusters from scratch.
const DefaultReclusterImbalance = 4.0

// Config configures a Catalog.
type Config struct {
	// Profile is the aggregate feature profile every epoch is built
	// against (required; it fixes the utility dimensionality, so it cannot
	// change across epochs).
	Profile *feature.Profile
	// MaxPackageSize is φ (required positive).
	MaxPackageSize int
	// Items is the initial item set (required non-empty). Item.ID is the
	// stable catalogue key; IDs must be non-negative and distinct.
	Items []feature.Item
	// Coalesce tunes the rebuild coalescing window: 0 selects
	// DefaultCoalesce, a negative value disables the background rebuilder
	// entirely — every mutation batch rebuilds and swaps synchronously
	// before Upsert/Delete returns (deterministic; meant for tests and
	// offline tools).
	Coalesce time.Duration
	// DeltaThreshold bounds how many distinct stable IDs may have changed
	// since the current epoch for the next build to take the incremental
	// delta path (O(batch·log n), see buildEpochFrom); larger change sets
	// take the full O(n log n) rebuild, which is also the always-correct
	// fallback. 0 selects DefaultDeltaThreshold; negative disables delta
	// builds entirely.
	DeltaThreshold int
	// PartitionClusters fixes the sketch-refine cluster count for every
	// epoch's search index: 0 lets the index choose (⌈√n⌉ once the
	// catalogue reaches search.PartitionMinItems), negative disables
	// partitioned search entirely.
	PartitionClusters int
	// PartitionReclusterImbalance is the partition.Imbalance threshold
	// past which a delta build re-clusters from scratch instead of
	// maintaining the parent partition incrementally. 0 selects
	// DefaultReclusterImbalance; values below 1 are rejected (the fullest
	// cluster is never below the balanced size).
	PartitionReclusterImbalance float64
}

// Epoch is one immutable snapshot of the catalogue: everything a reader
// needs to serve recommendations, plus the stable↔dense ID mapping. Epoch
// IDs are monotonic; the initial build is epoch 1.
type Epoch struct {
	// ID is the monotonic epoch number.
	ID uint64
	// Space is the feature space over the epoch's dense item slice.
	Space *feature.Space
	// Index is the Top-k-Pkg search index over Space.
	Index *search.Index
	// ids is the stable↔dense translation for this epoch.
	ids *IDMap
}

// IDMap is the immutable stable↔dense ID translation of one epoch. It is
// shareable on its own: holders translating IDs for a retired epoch (e.g.
// a session whose last slate predates a swap) keep only the mapping, not
// the epoch's search index, so an idle session does not pin a dead index
// in memory.
type IDMap struct {
	// stable[i] is the stable catalogue ID of dense item i.
	stable []int
	// dense maps stable ID → dense index.
	dense map[int]int
	// hash fingerprints the assignment (see Hash).
	hash uint64
}

// Len returns the number of items the mapping covers.
func (m *IDMap) Len() int { return len(m.stable) }

// Hash fingerprints the stable→dense assignment: IDMapHash over the
// stable IDs in dense order. Two epochs with equal hashes give every
// dense position the same stable identity, so learned state keyed by
// stable IDs refers to the same dense items under both.
func (m *IDMap) Hash() uint64 { return m.hash }

// IDMapHash digests a stable-ID slice in dense order — the shared
// fingerprint function, exported so a static deployment (whose stable
// identity is the dense positions themselves) hashes identically to a
// live epoch that assigns stable ID i to dense item i.
func IDMapHash(stable []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, s := range stable {
		binary.LittleEndian.PutUint64(buf[:], uint64(s))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// StableID returns the stable catalogue ID of dense item i.
func (m *IDMap) StableID(i int) int { return m.stable[i] }

// DenseID returns the dense index of the item with the given stable ID,
// and whether it exists in this mapping.
func (m *IDMap) DenseID(stable int) (int, bool) {
	i, ok := m.dense[stable]
	return i, ok
}

// Items returns the epoch's dense item slice (do not mutate).
func (ep *Epoch) Items() []feature.Item { return ep.Space.Items }

// IDs returns the epoch's stable↔dense translation.
func (ep *Epoch) IDs() *IDMap { return ep.ids }

// StableID returns the stable catalogue ID of dense item i.
func (ep *Epoch) StableID(i int) int { return ep.ids.StableID(i) }

// DenseID returns the dense index of the item with the given stable ID,
// and whether it exists in this epoch.
func (ep *Epoch) DenseID(stable int) (int, bool) { return ep.ids.DenseID(stable) }

// Stats is a point-in-time view of the catalogue's activity.
type Stats struct {
	// Epoch is the current epoch ID; Items its item count.
	Epoch uint64 `json:"epoch"`
	Items int    `json:"items"`
	// Upserts and Deletes count items written and removed; Batches counts
	// committed mutation batches.
	Upserts int64 `json:"upserts"`
	Deletes int64 `json:"deletes"`
	Batches int64 `json:"batches"`
	// Rebuilds counts epoch builds (including the initial one); when
	// smaller than Batches+1, coalescing folded bursts together.
	Rebuilds int64 `json:"rebuilds"`
	// DeltaBuilds counts epochs derived incrementally from their parent
	// (O(batch·log n)); FullRebuilds counts from-scratch builds, including
	// the initial one (Rebuilds = DeltaBuilds + FullRebuilds).
	// DeltaFallbacks counts delta attempts that errored and fell back to a
	// full rebuild (healthy operation keeps it at zero).
	DeltaBuilds    int64 `json:"delta_builds"`
	FullRebuilds   int64 `json:"full_rebuilds"`
	DeltaFallbacks int64 `json:"delta_fallbacks,omitempty"`
	// SkylineIncremental counts delta builds whose non-dominated head set
	// (the search layer's dominance-pruning frontier) was maintained
	// incrementally from the parent epoch's; SkylineRecomputes counts delta
	// builds that had to recompute it from scratch (a removed or replaced
	// item was a head, which may expose items it alone dominated). Both
	// stay zero until a monotone-utility search first materializes the set.
	// Insert-only batches always maintain incrementally.
	SkylineIncremental int64 `json:"skyline_incremental"`
	SkylineRecomputes  int64 `json:"skyline_recomputes"`
	// PartitionClusters and PartitionImbalance describe the current
	// epoch's sketch-refine partition (zero until a monotone-utility
	// search first materializes it — or partitioning is disabled).
	// PartitionIncremental counts delta builds that carried the partition
	// forward incrementally; PartitionReclusters counts delta builds that
	// re-clustered from scratch (incremental maintenance refused, or
	// drift pushed the imbalance past the configured threshold).
	PartitionClusters    int     `json:"partition_clusters"`
	PartitionImbalance   float64 `json:"partition_imbalance,omitempty"`
	PartitionIncremental int64   `json:"partition_incremental"`
	PartitionReclusters  int64   `json:"partition_reclusters"`
	// PartitionSearches counts partition-engaged searches across all
	// epochs; SketchSkipped and RefineClustersOpened total the per-search
	// counters of the same names (items never drawn thanks to the sketch
	// floor, and clusters the refine phase opened).
	PartitionSearches    int64 `json:"partition_searches"`
	SketchSkipped        int64 `json:"sketch_skipped"`
	RefineClustersOpened int64 `json:"refine_clusters_opened"`
	// BuildErrors counts rebuilds that failed and kept the previous epoch
	// (should stay zero: batches are validated before commit); LastError
	// is the most recent such failure, empty when healthy.
	BuildErrors int64  `json:"build_errors"`
	LastError   string `json:"last_error,omitempty"`
	// Pending reports whether committed mutations are not yet covered by
	// the current epoch (a rebuild is queued or running).
	Pending bool `json:"pending"`
}

// Catalog is the mutable item store. All methods are safe for concurrent
// use; Current is wait-free (one atomic load).
type Catalog struct {
	profile  *feature.Profile
	maxSize  int
	coalesce time.Duration
	deltaMax int // delta-build eligibility bound; <= 0 disables

	partClusters  int     // sketch-refine cluster count; see Config
	partImbalance float64 // re-cluster threshold; see Config
	partStats     *search.PartitionStats

	cur atomic.Pointer[Epoch]

	mu       sync.Mutex // guards everything below; never held across a build
	items    map[int]feature.Item
	version  uint64 // bumped per committed batch
	built    uint64 // version the current epoch covers
	building bool   // a rebuild goroutine is scheduled or running
	closed   bool   // Close ran: mutations are rejected, rebuilder quiesced
	caughtUp *sync.Cond
	closeCh  chan struct{} // closed by Close; wakes the rebuilder's sleep
	subs     []func(*Epoch, *ChangeSet)

	// pending maps each stable ID changed since the installed epoch to the
	// version of its latest change — the delta builder's work list. Entries
	// at or below the installed epoch's version (curVersion) are pruned on
	// every install, so the invariant pending = {IDs changed in
	// (curVersion, version]} holds even across failed or discarded builds.
	pending    map[int]uint64
	curVersion uint64 // version the installed epoch covers

	nextEpoch  uint64
	upserts    int64
	deletes    int64
	batches    int64
	rebuilds   int64
	deltas     int64
	fulls      int64
	deltaFalls int64
	skylineInc int64
	skylineRec int64
	partInc    int64
	partRec    int64
	buildErrs  int64
	lastErr    error
}

// New validates cfg, builds epoch 1 synchronously, and returns the
// catalogue ready to serve.
func New(cfg Config) (*Catalog, error) {
	if cfg.Profile == nil {
		return nil, fmt.Errorf("catalog: Config.Profile is required")
	}
	if cfg.MaxPackageSize <= 0 {
		return nil, fmt.Errorf("catalog: MaxPackageSize must be positive, got %d", cfg.MaxPackageSize)
	}
	if len(cfg.Items) == 0 {
		return nil, fmt.Errorf("catalog: empty initial item set")
	}
	if cfg.Coalesce == 0 {
		cfg.Coalesce = DefaultCoalesce
	}
	if cfg.DeltaThreshold == 0 {
		cfg.DeltaThreshold = DefaultDeltaThreshold
	}
	if cfg.PartitionReclusterImbalance == 0 {
		cfg.PartitionReclusterImbalance = DefaultReclusterImbalance
	}
	if cfg.PartitionReclusterImbalance < 1 {
		return nil, fmt.Errorf("catalog: PartitionReclusterImbalance must be >= 1, got %g", cfg.PartitionReclusterImbalance)
	}
	c := &Catalog{
		profile:       cfg.Profile,
		maxSize:       cfg.MaxPackageSize,
		coalesce:      cfg.Coalesce,
		deltaMax:      cfg.DeltaThreshold,
		partClusters:  cfg.PartitionClusters,
		partImbalance: cfg.PartitionReclusterImbalance,
		partStats:     &search.PartitionStats{},
		items:         make(map[int]feature.Item, len(cfg.Items)),
		pending:       make(map[int]uint64),
		closeCh:       make(chan struct{}),
	}
	c.caughtUp = sync.NewCond(&c.mu)
	for i := range cfg.Items {
		it := cfg.Items[i]
		if err := c.validateItem(it); err != nil {
			return nil, err
		}
		if _, dup := c.items[it.ID]; dup {
			return nil, fmt.Errorf("catalog: duplicate initial item ID %d", it.ID)
		}
		c.items[it.ID] = copyItem(it)
	}
	ep, err := c.build(1)
	if err != nil {
		return nil, err
	}
	c.nextEpoch = 1
	c.rebuilds = 1
	c.fulls = 1
	c.cur.Store(ep)
	return c, nil
}

// Current returns the epoch readers should serve from. The returned epoch
// is immutable and remains valid (and consistent) for as long as the
// caller holds it, even across later swaps.
func (c *Catalog) Current() *Epoch { return c.cur.Load() }

// Profile returns the profile every epoch is built against.
func (c *Catalog) Profile() *feature.Profile { return c.profile }

// MaxPackageSize returns φ.
func (c *Catalog) MaxPackageSize() int { return c.maxSize }

// ChangeSet describes what an installed epoch changed relative to the
// parent it was delta-built from, precisely enough for subscribers to
// reconcile epoch-keyed derived state (result caches) instead of dropping
// it wholesale. A full rebuild carries no per-item attribution: Full is set
// and every other field must be ignored.
type ChangeSet struct {
	// Parent is the ID of the epoch the set is relative to. Derived state
	// keyed to any other epoch must be dropped regardless of the fields
	// below.
	Parent uint64
	// Full marks a full (or fallen-back) rebuild: treat everything as
	// changed.
	Full bool
	// Dirty holds the parent-dense ids of items replaced or deleted by the
	// batch, ascending.
	Dirty []int32
	// Fresh holds the new-dense ids of items inserted or re-priced by the
	// batch (the new identity of every replaced item), ascending.
	Fresh []int32
	// Touched lists the profile dimensions whose normalizer scale bits or
	// null-set membership differ between the parent and the new space:
	// utilities weighting them are not comparable across the swap.
	Touched []int
	// Remap translates parent-dense ids to new-dense ids (-1 for items not
	// carried over); nil when the assignment is unchanged. Subscribers
	// carrying dense-keyed state across the swap must renumber through it,
	// or the next swap's Dirty/Fresh ids would be compared against a stale
	// id space. Order-preserving over carried items.
	Remap []int32
	// OldSpace is the parent epoch's feature space, for old-value lookups
	// against Dirty ids.
	OldSpace *feature.Space
	// Partition describes what happened to the sketch-refine partition
	// across the swap: nil when the parent had none materialized (or the
	// swap is Full), Recluster when it was rebuilt from scratch, otherwise
	// the incremental delta (Touched/Changed cluster ids). Caches keyed on
	// opened clusters must drop entries whose clusters were touched — or
	// all partition-dependent entries when Partition is nil or Recluster.
	Partition *partition.Delta
}

// Subscribe registers fn to run after every epoch swap, with the epoch
// just installed and the change set relative to its parent (nil when the
// swap came from a full rebuild of an unversioned ancestry — treat like
// Full). Callbacks run on the rebuilder goroutine (or the mutating
// goroutine in synchronous mode) and must be safe for concurrent use with
// readers; keep them short.
func (c *Catalog) Subscribe(fn func(*Epoch, *ChangeSet)) {
	c.mu.Lock()
	c.subs = append(c.subs, fn)
	c.mu.Unlock()
}

// validateItem front-loads every constraint feature.NewSpace would reject,
// so a committed batch cannot make the catalogue unbuildable.
func (c *Catalog) validateItem(it feature.Item) error {
	if it.ID < 0 {
		return fmt.Errorf("catalog: negative item ID %d", it.ID)
	}
	if len(it.Values) != c.profile.FeatureCount() {
		return fmt.Errorf("catalog: item %d has %d values, profile expects %d",
			it.ID, len(it.Values), c.profile.FeatureCount())
	}
	for f, v := range it.Values {
		if !feature.IsNull(v) && v < 0 {
			return fmt.Errorf("catalog: item %d has negative value %g on feature %d", it.ID, v, f)
		}
	}
	return nil
}

// ErrClosed rejects mutations committed after Close: the rebuilder has
// quiesced, so an accepted batch would never reach an epoch.
var ErrClosed = errors.New("catalog: closed")

// Upsert inserts or replaces the given items as one atomic batch. The
// whole batch is validated first; on error nothing is committed. Returns
// once the batch is committed (and, in synchronous mode, swapped in).
func (c *Catalog) Upsert(items []feature.Item) error {
	if len(items) == 0 {
		return fmt.Errorf("catalog: empty upsert batch")
	}
	for i := range items {
		if err := c.validateItem(items[i]); err != nil {
			return err
		}
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	changed := make([]int, len(items))
	for i := range items {
		c.items[items[i].ID] = copyItem(items[i])
		changed[i] = items[i].ID
	}
	c.upserts += int64(len(items))
	c.commitLocked(changed) // unlocks c.mu
	return nil
}

// Delete removes the items with the given stable IDs as one atomic batch,
// reporting how many existed. Missing IDs are not an error; a batch that
// would empty the catalogue is rejected without committing anything.
func (c *Catalog) Delete(ids []int) (removed int, err error) {
	if len(ids) == 0 {
		return 0, fmt.Errorf("catalog: empty delete batch")
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	// Count distinct existing IDs: a batch may repeat an ID, which must
	// neither inflate the removal count past the item count (emptying the
	// catalogue through the guard) nor falsely trip the guard.
	distinct := make(map[int]bool, len(ids))
	for _, id := range ids {
		if _, ok := c.items[id]; ok {
			distinct[id] = true
		}
	}
	removed = len(distinct)
	if removed == len(c.items) {
		c.mu.Unlock()
		return 0, fmt.Errorf("catalog: delete batch would empty the catalogue")
	}
	if removed == 0 {
		c.mu.Unlock()
		return 0, nil
	}
	changed := make([]int, 0, removed)
	for id := range distinct {
		delete(c.items, id)
		changed = append(changed, id)
	}
	c.deletes += int64(removed)
	c.commitLocked(changed) // unlocks c.mu
	return removed, nil
}

// commitLocked records a committed batch — the stable IDs it changed join
// the pending set the delta builder works from — and arranges the rebuild.
// Called with c.mu held; always releases it.
func (c *Catalog) commitLocked(changed []int) {
	c.version++
	c.batches++
	for _, id := range changed {
		c.pending[id] = c.version
	}
	if c.coalesce < 0 {
		// Synchronous mode: build before returning to the caller.
		c.rebuildLocked() // unlocks c.mu
		return
	}
	if !c.building {
		c.building = true
		go c.rebuildLoop()
	}
	c.mu.Unlock()
}

// rebuildLoop is the background rebuilder: it coalesces the mutation burst
// that woke it, builds off-request, swaps, and exits once the epoch covers
// every committed batch. A later burst starts a fresh goroutine, so the
// catalogue holds no long-lived goroutines while quiescent.
func (c *Catalog) rebuildLoop() {
	for {
		// A closing catalogue interrupts the coalescing sleep: shutdown
		// must not stall for a generous -rebuild-coalesce window.
		select {
		case <-time.After(c.coalesce):
		case <-c.closeCh:
		}
		c.mu.Lock()
		if c.built == c.version {
			c.building = false
			// Close waits for building to drop, not only for built to catch
			// up, so it cannot return while this goroutine is still alive.
			c.caughtUp.Broadcast()
			c.mu.Unlock()
			return
		}
		c.rebuildLocked() // unlocks c.mu
	}
}

// Close quiesces the catalogue for process shutdown: it drives any
// committed-but-unbuilt batches into a final epoch synchronously (so a
// mutation already acknowledged with 202 is never lost un-built), waits
// out the background rebuilder goroutine, and rejects all later
// mutations with ErrClosed. Idempotent and safe to call concurrently;
// readers may keep serving from the final epoch afterwards.
func (c *Catalog) Close() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.closeCh) // wakes the rebuilder out of its coalescing sleep
	}
	// Build leftover batches on this goroutine rather than waiting for the
	// (possibly sleeping) rebuilder. rebuildLocked tolerates racing
	// builders: whichever covers the target version first wins, the other
	// build is discarded.
	for c.built < c.version {
		c.rebuildLocked() // unlocks c.mu
		c.mu.Lock()
	}
	for c.building {
		c.caughtUp.Wait()
	}
	c.mu.Unlock()
}

// rebuildLocked snapshots the item set (or, for delta-eligible change
// sets, just the pending mutations), builds the next epoch outside the
// lock, swaps it in, and notifies subscribers. Called with c.mu held;
// returns with it released. Concurrent synchronous mutators may build in
// parallel; epoch IDs are assigned at install time under the lock, and a
// build whose target version another build has already covered is
// discarded rather than swapped in out of order.
func (c *Catalog) rebuildLocked() {
	target := c.version
	parent := c.cur.Load()
	var muts []deltaMut
	if c.deltaMax > 0 && len(c.pending) > 0 && len(c.pending) <= c.deltaMax {
		muts = c.deltaPlanLocked()
	}
	var items []feature.Item
	var stable []int
	if muts == nil {
		items, stable = c.denseItemsLocked()
	}
	c.mu.Unlock()

	var ep *Epoch
	var cs *ChangeSet
	var err error
	delta := false
	fellBack := false
	skyInc, skyRec := false, false
	partInc, partRec := false, false
	if muts != nil {
		if ep, cs, err = buildEpochFrom(parent, muts, c.maxSize); err == nil {
			delta = true
			ep.Index.ConfigurePartition(c.partClusters, c.partStats)
			skyInc, skyRec = maintainHeads(parent, ep, cs)
			partInc, partRec = maintainPartition(parent, ep, cs, c.partClusters, c.partImbalance)
		} else {
			// The delta path is never load-bearing for correctness: any
			// failure falls back to the full rebuild. Re-snapshot (and
			// re-target) because mutations may have landed meanwhile.
			fellBack = true
			c.mu.Lock()
			target = c.version
			items, stable = c.denseItemsLocked()
			c.mu.Unlock()
		}
	}
	if !delta {
		if ep, err = buildEpoch(items, stable, c.profile, c.maxSize); err == nil {
			ep.Index.ConfigurePartition(c.partClusters, c.partStats)
		}
		cs = &ChangeSet{Parent: parent.ID, Full: true}
	}

	c.mu.Lock()
	c.rebuilds++
	if delta {
		c.deltas++
	} else {
		c.fulls++
	}
	if fellBack {
		c.deltaFalls++
	}
	if skyInc {
		c.skylineInc++
	}
	if skyRec {
		c.skylineRec++
	}
	if partInc {
		c.partInc++
	}
	if partRec {
		c.partRec++
	}
	installed := false
	if err != nil {
		// Unreachable with validated batches; keep serving the old epoch.
		// built still advances below so Flush and ?wait=1 cannot hang on a
		// batch that will never build — the failure is surfaced through
		// Stats.BuildErrors/LastError instead of a wedged rebuild loop.
		// pending is deliberately not pruned: the installed epoch still
		// covers only curVersion, so those IDs remain the delta work list.
		c.buildErrs++
		c.lastErr = err
	} else if target > c.built {
		if delta && ep.Space == parent.Space && c.cur.Load() == parent {
			// The change set netted out to nothing versus the epoch that
			// is still installed: keep it — and its ID — so epoch-keyed
			// result caches and snapshot pools stay valid; only mark the
			// target version covered. (If a racing synchronous build
			// installed a different epoch since our snapshot, its content
			// may not match our target version, so fall through and swap
			// our shell in normally.)
			c.curVersion = target
			prunePending(c.pending, target)
		} else {
			c.nextEpoch++
			ep.ID = c.nextEpoch
			c.cur.Store(ep)
			c.curVersion = target
			prunePending(c.pending, target)
			installed = true
		}
	}
	if target > c.built {
		c.built = target
	}
	subs := append([]func(*Epoch, *ChangeSet){}, c.subs...)
	if c.built == c.version {
		c.caughtUp.Broadcast()
	}
	c.mu.Unlock()
	if installed {
		for _, fn := range subs {
			fn(ep, cs)
		}
	}
}

// prunePending drops pending entries covered by the newly installed
// version; later changes stay on the delta work list.
func prunePending(pending map[int]uint64, upTo uint64) {
	for id, ver := range pending {
		if ver <= upTo {
			delete(pending, id)
		}
	}
}

// deltaMut is one stable ID's pending change: the authoritative item as
// of the snapshot (when it exists) or a deletion marker.
type deltaMut struct {
	stable int
	item   feature.Item
	exists bool
}

// deltaPlanLocked snapshots the pending change set for a delta build,
// sorted by stable ID. Requires c.mu. Item value slices are shared with
// the authoritative map, which never mutates them in place.
func (c *Catalog) deltaPlanLocked() []deltaMut {
	muts := make([]deltaMut, 0, len(c.pending))
	for id := range c.pending {
		it, ok := c.items[id]
		muts = append(muts, deltaMut{stable: id, item: it, exists: ok})
	}
	slices.SortFunc(muts, func(a, b deltaMut) int { return cmp.Compare(a.stable, b.stable) })
	return muts
}

// buildEpochFrom derives the next epoch from its parent by applying the
// pending change set instead of rebuilding from scratch: the feature
// space reuses per-dimension normalizer state the batch does not touch
// (feature.NewSpaceFrom) and the search index splices the batch into the
// parent's sorted lists (search.NewIndexFrom), so the build costs
// O(batch·log n) plus O(n) copying rather than O(n log n) sorting. The
// result is bit-identical to buildEpoch over the same authoritative set —
// the delta property and fuzz suites assert it.
func buildEpochFrom(parent *Epoch, muts []deltaMut, maxSize int) (*Epoch, *ChangeSet, error) {
	pm := parent.ids
	pItems := parent.Space.Items
	// Filter no-ops: IDs whose pending churn nets out to the item the
	// parent epoch already carries (absent before and after, or an upsert
	// rewriting identical values and name — a rename alone must rebuild,
	// or served slates would keep resolving the stale name).
	eff := make([]deltaMut, 0, len(muts))
	adds, dels := 0, 0
	sameIDs := true // every effective change replaces an existing item in place
	for _, m := range muts {
		pd, had := pm.DenseID(m.stable)
		if !had && !m.exists {
			continue
		}
		if had && m.exists && pItems[pd].Name == m.item.Name && valuesEqual(pItems[pd].Values, m.item.Values) {
			continue
		}
		eff = append(eff, m)
		if m.exists {
			adds++
		}
		if had {
			dels++
		}
		if !had || !m.exists {
			sameIDs = false
		}
	}
	if len(eff) == 0 {
		// The change set netted out to nothing: the parent's immutable
		// state is exactly the next epoch's. The install path recognizes
		// the shared Space pointer and keeps the parent epoch installed —
		// no swap, no cache invalidation — while still marking the target
		// version covered. The empty ChangeSet matters only if a racing
		// build forces this shell to install under a fresh ID: content is
		// still bit-identical to the parent, so subscribers may re-key.
		return &Epoch{Space: parent.Space, Index: parent.Index, ids: pm},
			&ChangeSet{Parent: parent.ID, OldSpace: parent.Space}, nil
	}
	// Merge the parent's stable-ordered dense items with the mutation set,
	// assigning new dense IDs and recording the translation the index
	// splice needs: remap for carried items, added (plus its value rows and
	// the removed ones) for everything else.
	n := len(pItems) - dels + adds
	items := make([]feature.Item, 0, n)
	stable := make([]int, 0, n)
	remap := make([]int32, len(pItems))
	added := make([]int32, 0, adds)
	removedRows := make([][]float64, 0, dels)
	addedRows := make([][]float64, 0, adds)
	place := func(it feature.Item, sid int) int32 {
		nd := int32(len(items))
		it.ID = int(nd)
		items = append(items, it)
		stable = append(stable, sid)
		return nd
	}
	oldStable := pm.stable
	dirty := make([]int32, 0, dels)
	i, j := 0, 0
	for i < len(oldStable) || j < len(eff) {
		switch {
		case j >= len(eff) || (i < len(oldStable) && oldStable[i] < eff[j].stable):
			remap[i] = place(pItems[i], oldStable[i]) // carried unchanged
			i++
		case i >= len(oldStable) || oldStable[i] > eff[j].stable:
			// Brand-new stable ID (pure deletions of absent IDs were
			// filtered above, so eff[j].exists holds here).
			added = append(added, place(eff[j].item, eff[j].stable))
			addedRows = append(addedRows, eff[j].item.Values)
			j++
		default: // same stable ID: replaced or deleted
			remap[i] = -1
			dirty = append(dirty, int32(i))
			removedRows = append(removedRows, pItems[i].Values)
			if eff[j].exists {
				added = append(added, place(eff[j].item, eff[j].stable))
				addedRows = append(addedRows, eff[j].item.Values)
			}
			i++
			j++
		}
	}
	space, err := feature.NewSpaceFrom(parent.Space, items, removedRows, addedRows)
	if err != nil {
		return nil, nil, fmt.Errorf("catalog: delta-building epoch over %d items: %w", len(items), err)
	}
	ids := pm // a reprice-only batch leaves the stable→dense assignment intact
	if !sameIDs {
		ids = &IDMap{stable: stable, dense: make(map[int]int, len(stable)), hash: IDMapHash(stable)}
		for i, s := range stable {
			ids.dense[s] = i
		}
	}
	// Dimensions whose normalizer scale bits or null-set membership moved:
	// cached utilities weighting them are stale even for untouched items.
	var touchedDims []int
	for d := 0; d < space.Dims(); d++ {
		e := space.Profile.Entry(d)
		if e.Agg == feature.AggNull {
			continue
		}
		if math.Float64bits(space.Norm.Scale(d)) != math.Float64bits(parent.Space.Norm.Scale(d)) ||
			space.HasNull(e.Feature) != parent.Space.HasNull(e.Feature) {
			touchedDims = append(touchedDims, d)
		}
	}
	cs := &ChangeSet{
		Parent:   parent.ID,
		Dirty:    dirty,
		Fresh:    added,
		Touched:  touchedDims,
		Remap:    remap,
		OldSpace: parent.Space,
	}
	return &Epoch{Space: space, Index: search.NewIndexFrom(parent.Index, space, remap, added), ids: ids}, cs, nil
}

// maintainHeads carries the parent epoch's non-dominated head set (the
// dominance-pruning frontier, see search.Index.Heads) across a delta
// build. Lazy by design: nothing happens until a monotone-utility search
// first materializes the set on some epoch; from then on delta builds keep
// it alive incrementally — inserts cost O(|batch|·|skyline|) dominance
// checks — and only the removal or replacement of a head item (which may
// expose items it alone dominated) forces a from-scratch recompute.
// Returns which path ran, for the Stats counters.
func maintainHeads(parent, ep *Epoch, cs *ChangeSet) (inc, rec bool) {
	if ep.Index == parent.Index {
		return false, false // no-op change set: the set is already shared
	}
	ph := parent.Index.PeekHeads()
	if ph == nil {
		return false, false
	}
	if ns, ok := ph.Apply(ep.Space, cs.Remap, cs.Dirty, cs.Fresh); ok {
		ep.Index.SetHeads(ns)
		return true, false
	}
	ep.Index.SetHeads(skyline.Heads(ep.Space))
	return false, true
}

// maintainPartition carries the parent epoch's sketch-refine partition
// (see search.Index.PeekPartition) across a delta build, mirroring
// maintainHeads' lazy contract: nothing happens until a search first
// materializes the partition on some epoch; from then on delta builds
// assign new items to their nearest clusters and rescan only touched
// cluster bounds. A re-cluster from scratch runs when incremental
// maintenance refuses (no representative survived to anchor assignment)
// or drift pushed the imbalance past maxImbalance. Returns which path
// ran, for the Stats counters, and records the outcome in cs.Partition.
func maintainPartition(parent, ep *Epoch, cs *ChangeSet, clusters int, maxImbalance float64) (inc, rec bool) {
	if ep.Index == parent.Index {
		return false, false // no-op change set: the partition is already shared
	}
	pp := parent.Index.PeekPartition()
	if pp == nil {
		return false, false
	}
	if np, delta, ok := pp.Apply(ep.Space, cs.Remap, cs.Dirty, cs.Fresh); ok && np.Imbalance() <= maxImbalance {
		ep.Index.SetPartition(np)
		cs.Partition = delta
		return true, false
	}
	np := partition.Build(ep.Space, clusters)
	np.Gen = pp.Gen + 1
	ep.Index.SetPartition(np)
	cs.Partition = &partition.Delta{Recluster: true}
	return false, true
}

// valuesEqual compares raw value rows bitwise, so nulls (NaN) compare
// equal and an upsert rewriting identical values is recognized as a no-op.
func valuesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// build constructs an epoch from the current authoritative set (used for
// the initial synchronous build).
func (c *Catalog) build(id uint64) (*Epoch, error) {
	c.mu.Lock()
	items, stable := c.denseItemsLocked()
	c.mu.Unlock()
	ep, err := buildEpoch(items, stable, c.profile, c.maxSize)
	if err != nil {
		return nil, err
	}
	ep.Index.ConfigurePartition(c.partClusters, c.partStats)
	ep.ID = id
	return ep, nil
}

// denseItemsLocked compacts the authoritative map into a dense slice
// ordered by stable ID. Item.ID is rewritten to the dense index (the
// positional convention the rest of the system relies on); stable[i] keeps
// dense item i's catalogue key. Requires c.mu.
func (c *Catalog) denseItemsLocked() (dense []feature.Item, stable []int) {
	stable = make([]int, 0, len(c.items))
	for id := range c.items {
		stable = append(stable, id)
	}
	sort.Ints(stable)
	dense = make([]feature.Item, len(stable))
	for i, id := range stable {
		it := c.items[id] // copy; Values are never mutated in place
		it.ID = i
		dense[i] = it
	}
	return dense, stable
}

// buildEpoch derives the immutable epoch state from a dense item slice.
// The epoch ID is assigned by the caller at install time.
func buildEpoch(items []feature.Item, stable []int, p *feature.Profile, maxSize int) (*Epoch, error) {
	space, err := feature.NewSpace(items, p, maxSize)
	if err != nil {
		return nil, fmt.Errorf("catalog: building epoch over %d items: %w", len(items), err)
	}
	ids := &IDMap{stable: stable, dense: make(map[int]int, len(stable)), hash: IDMapHash(stable)}
	for i, s := range stable {
		ids.dense[s] = i
	}
	return &Epoch{Space: space, Index: search.NewIndex(space), ids: ids}, nil
}

// Flush blocks until the current epoch covers every mutation batch
// committed before the call.
func (c *Catalog) Flush() {
	c.mu.Lock()
	for c.built < c.version {
		c.caughtUp.Wait()
	}
	c.mu.Unlock()
}

// Len reports the authoritative item count (which the current epoch may
// trail while a rebuild is pending).
func (c *Catalog) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Stats returns a point-in-time copy of the counters.
func (c *Catalog) Stats() Stats {
	ep := c.Current()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Epoch:              ep.ID,
		Items:              len(ep.Items()),
		Upserts:            c.upserts,
		Deletes:            c.deletes,
		Batches:            c.batches,
		Rebuilds:           c.rebuilds,
		DeltaBuilds:        c.deltas,
		FullRebuilds:       c.fulls,
		DeltaFallbacks:     c.deltaFalls,
		SkylineIncremental: c.skylineInc,
		SkylineRecomputes:  c.skylineRec,
		BuildErrors:        c.buildErrs,
		Pending:            c.built < c.version,
	}
	st.PartitionIncremental = c.partInc
	st.PartitionReclusters = c.partRec
	if p := ep.Index.PeekPartition(); p != nil {
		st.PartitionClusters = p.K
		st.PartitionImbalance = p.Imbalance()
	}
	st.PartitionSearches = c.partStats.Searches.Load()
	st.SketchSkipped = c.partStats.SketchSkipped.Load()
	st.RefineClustersOpened = c.partStats.ClustersOpened.Load()
	if c.lastErr != nil {
		st.LastError = c.lastErr.Error()
	}
	return st
}

// LastError returns the most recent build error (nil in healthy operation).
func (c *Catalog) LastError() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

func copyItem(it feature.Item) feature.Item {
	it.Values = append([]float64(nil), it.Values...)
	return it
}
