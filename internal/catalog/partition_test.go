package catalog

import (
	"math/rand"
	"slices"
	"testing"

	"toppkg/internal/feature"
	"toppkg/internal/partition"
	"toppkg/internal/search"
)

func partItems(n int, seed int64) []feature.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]feature.Item, n)
	for i := range items {
		items[i] = feature.Item{ID: i, Values: []float64{rng.Float64() * 4, rng.Float64() * 4}}
	}
	return items
}

func TestNewRejectsBadPartitionImbalance(t *testing.T) {
	p := feature.SimpleProfile(feature.AggSum, feature.AggMax)
	if _, err := New(Config{Profile: p, MaxPackageSize: 2, Items: partItems(4, 1),
		PartitionReclusterImbalance: 0.5}); err == nil {
		t.Fatal("New accepted an unsatisfiable recluster threshold")
	}
}

// assertPartitionedExact runs the same uncapped search partitioned and
// unpartitioned on the epoch and requires bit-identical results — the
// invariant incremental maintenance must preserve across deltas.
func assertPartitionedExact(t *testing.T, ep *Epoch, u *feature.Utility, k int) {
	t.Helper()
	part, err := ep.Index.TopK(u, search.Options{K: k, MaxQueue: -1})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ep.Index.TopK(u, search.Options{K: k, MaxQueue: -1, DisablePartition: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Packages) != len(plain.Packages) {
		t.Fatalf("partitioned %d packages != plain %d", len(part.Packages), len(plain.Packages))
	}
	for i := range part.Packages {
		if part.Packages[i].Utility != plain.Packages[i].Utility ||
			!slices.Equal(part.Packages[i].Pkg.IDs, plain.Packages[i].Pkg.IDs) {
			t.Fatalf("rank %d: partitioned %v (%.9f) != plain %v (%.9f)",
				i, part.Packages[i].Pkg.IDs, part.Packages[i].Utility,
				plain.Packages[i].Pkg.IDs, plain.Packages[i].Utility)
		}
	}
}

// TestPartitionMaintainedAcrossDeltas mirrors the skyline test: once a
// monotone search materializes the partition, delta batches carry it
// forward incrementally (same Gen, new items assigned, exact search
// results preserved), the change set reports the delta, and the Stats
// counters /healthz surfaces record the incremental/recluster split.
func TestPartitionMaintainedAcrossDeltas(t *testing.T) {
	p := feature.SimpleProfile(feature.AggSum, feature.AggMax)
	c, err := New(Config{Profile: p, MaxPackageSize: 2, Items: partItems(16, 2),
		Coalesce: -1, DeltaThreshold: 1 << 20, PartitionClusters: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var lastPD *partition.Delta
	var sawSwap bool
	c.Subscribe(func(_ *Epoch, cs *ChangeSet) {
		sawSwap = true
		lastPD = nil
		if cs != nil {
			lastPD = cs.Partition
		}
	})
	u, err := feature.NewUtility(p, []float64{1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ep := c.Current()
	if _, err := ep.Index.TopK(u, search.Options{K: 2, MaxQueue: -1}); err != nil {
		t.Fatal(err)
	}
	pp := ep.Index.PeekPartition()
	if pp == nil {
		t.Fatal("monotone search did not materialize the partition")
	}

	for i := 0; i < 3; i++ {
		id := 100 + i
		if err := c.Upsert([]feature.Item{{ID: id, Values: []float64{4.5, float64(i)}}}); err != nil {
			t.Fatal(err)
		}
		ep = c.Current()
		np := ep.Index.PeekPartition()
		if np == nil {
			t.Fatalf("insert %d: partition not carried to the new epoch", id)
		}
		if np.Gen != pp.Gen {
			t.Fatalf("insert %d: incremental maintenance changed Gen %d -> %d", id, pp.Gen, np.Gen)
		}
		if len(np.Assign) != len(ep.Items()) {
			t.Fatalf("insert %d: Assign covers %d of %d items", id, len(np.Assign), len(ep.Items()))
		}
		if !sawSwap || lastPD == nil || lastPD.Recluster {
			t.Fatalf("insert %d: change set partition delta = %+v, want incremental", id, lastPD)
		}
		assertPartitionedExact(t, ep, u, 3)
	}
	st := c.Stats()
	if st.PartitionIncremental != 3 || st.PartitionReclusters != 0 {
		t.Fatalf("insert-only batches: incremental=%d reclusters=%d, want 3/0",
			st.PartitionIncremental, st.PartitionReclusters)
	}
	if st.PartitionClusters != pp.K {
		t.Fatalf("stats clusters=%d, want %d", st.PartitionClusters, pp.K)
	}
	if st.PartitionSearches == 0 {
		t.Fatal("partition-engaged searches not counted")
	}
}

// TestPartitionReclusterOnImbalance: a threshold of 1 tolerates no drift,
// so the first delta build re-clusters from scratch, bumping Gen and
// flagging Recluster in the change set.
func TestPartitionReclusterOnImbalance(t *testing.T) {
	p := feature.SimpleProfile(feature.AggSum, feature.AggMax)
	c, err := New(Config{Profile: p, MaxPackageSize: 2, Items: partItems(16, 3),
		Coalesce: -1, DeltaThreshold: 1 << 20, PartitionClusters: 3,
		PartitionReclusterImbalance: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var lastPD *partition.Delta
	c.Subscribe(func(_ *Epoch, cs *ChangeSet) {
		lastPD = nil
		if cs != nil {
			lastPD = cs.Partition
		}
	})
	u, err := feature.NewUtility(p, []float64{1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ep := c.Current()
	if _, err := ep.Index.TopK(u, search.Options{K: 2, MaxQueue: -1}); err != nil {
		t.Fatal(err)
	}
	pp := ep.Index.PeekPartition()
	if pp == nil {
		t.Fatal("partition not materialized")
	}
	if err := c.Upsert([]feature.Item{{ID: 200, Values: []float64{9, 9}}}); err != nil {
		t.Fatal(err)
	}
	ep = c.Current()
	np := ep.Index.PeekPartition()
	if np == nil {
		t.Fatal("partition dropped instead of re-clustered")
	}
	if np.Gen != pp.Gen+1 {
		t.Fatalf("recluster Gen = %d, want %d", np.Gen, pp.Gen+1)
	}
	if lastPD == nil || !lastPD.Recluster {
		t.Fatalf("change set partition delta = %+v, want Recluster", lastPD)
	}
	if st := c.Stats(); st.PartitionReclusters != 1 {
		t.Fatalf("reclusters=%d, want 1", st.PartitionReclusters)
	}
	assertPartitionedExact(t, ep, u, 3)
}
