package catalog

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"toppkg/internal/dataset"
	"toppkg/internal/feature"
)

func testProfile() *feature.Profile {
	return feature.SimpleProfile(feature.AggSum, feature.AggAvg)
}

func testItems(n int, seed int64) []feature.Item {
	return dataset.UNI(n, 2, rand.New(rand.NewSource(seed)))
}

// syncCatalog builds a catalogue in synchronous-rebuild mode, so every
// mutation is reflected in Current before the call returns.
func syncCatalog(t *testing.T, n int) *Catalog {
	t.Helper()
	c, err := New(Config{
		Profile:        testProfile(),
		MaxPackageSize: 3,
		Items:          testItems(n, 1),
		Coalesce:       -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewBuildsEpochOne(t *testing.T) {
	c := syncCatalog(t, 10)
	ep := c.Current()
	if ep.ID != 1 {
		t.Fatalf("initial epoch ID = %d, want 1", ep.ID)
	}
	if got := len(ep.Items()); got != 10 {
		t.Fatalf("epoch items = %d, want 10", got)
	}
	for i := 0; i < 10; i++ {
		if ep.Items()[i].ID != i {
			t.Fatalf("dense item %d has ID %d", i, ep.Items()[i].ID)
		}
		if ep.StableID(i) != i {
			t.Fatalf("StableID(%d) = %d", i, ep.StableID(i))
		}
	}
	st := c.Stats()
	if st.Epoch != 1 || st.Items != 10 || st.Rebuilds != 1 || st.Pending {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNewValidates(t *testing.T) {
	p := testProfile()
	for name, cfg := range map[string]Config{
		"nil profile":  {MaxPackageSize: 3, Items: testItems(3, 1)},
		"zero phi":     {Profile: p, Items: testItems(3, 1)},
		"empty items":  {Profile: p, MaxPackageSize: 3},
		"negative id":  {Profile: p, MaxPackageSize: 3, Items: []feature.Item{{ID: -1, Values: []float64{1, 2}}}},
		"wrong dims":   {Profile: p, MaxPackageSize: 3, Items: []feature.Item{{ID: 0, Values: []float64{1}}}},
		"negative val": {Profile: p, MaxPackageSize: 3, Items: []feature.Item{{ID: 0, Values: []float64{1, -2}}}},
		"duplicate id": {Profile: p, MaxPackageSize: 3, Items: []feature.Item{
			{ID: 0, Values: []float64{1, 2}}, {ID: 0, Values: []float64{3, 4}}}},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", name)
		}
	}
}

func TestUpsertAndDeleteRemapDenseIDs(t *testing.T) {
	c := syncCatalog(t, 4) // stable IDs 0..3
	old := c.Current()

	// Upsert a new item with a stable ID beyond the current range and
	// reprice an existing one in the same batch.
	err := c.Upsert([]feature.Item{
		{ID: 9, Name: "new", Values: []float64{0.5, 0.5}},
		{ID: 2, Name: "repriced", Values: []float64{0.9, 0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ep := c.Current()
	if ep.ID != 2 {
		t.Fatalf("epoch after upsert = %d, want 2", ep.ID)
	}
	if got := len(ep.Items()); got != 5 {
		t.Fatalf("items after upsert = %d, want 5", got)
	}
	if d, ok := ep.DenseID(9); !ok || d != 4 || ep.Items()[4].Name != "new" {
		t.Fatalf("DenseID(9) = %d,%t (item %q)", d, ok, ep.Items()[4].Name)
	}
	if ep.Items()[2].Name != "repriced" || ep.Items()[2].Values[0] != 0.9 {
		t.Fatalf("repriced item not visible: %+v", ep.Items()[2])
	}
	// The old epoch is untouched: copy-on-write, not in-place mutation.
	if len(old.Items()) != 4 || old.Items()[2].Name == "repriced" {
		t.Fatalf("old epoch mutated: %+v", old.Items()[2])
	}

	// Deleting stable ID 1 shifts higher items down by one dense slot.
	removed, err := c.Delete([]int{1, 77})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	ep = c.Current()
	if ep.ID != 3 || len(ep.Items()) != 4 {
		t.Fatalf("epoch %d with %d items after delete", ep.ID, len(ep.Items()))
	}
	if _, ok := ep.DenseID(1); ok {
		t.Fatal("deleted stable ID still resolvable")
	}
	if d, ok := ep.DenseID(2); !ok || d != 1 || ep.StableID(1) != 2 {
		t.Fatalf("stable 2 should be dense 1, got %d,%t", d, ok)
	}
}

func TestDeleteMissingOnlyIsNoOp(t *testing.T) {
	c := syncCatalog(t, 3)
	removed, err := c.Delete([]int{55})
	if err != nil || removed != 0 {
		t.Fatalf("Delete(missing) = %d, %v", removed, err)
	}
	if ep := c.Current(); ep.ID != 1 {
		t.Fatalf("no-op delete rebuilt: epoch %d", ep.ID)
	}
}

func TestDeleteCannotEmptyCatalogue(t *testing.T) {
	c := syncCatalog(t, 2)
	if _, err := c.Delete([]int{0, 1}); err == nil {
		t.Fatal("delete batch emptying the catalogue was accepted")
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("rejected batch committed anyway: %d items", got)
	}
}

func TestDeleteCountsDuplicateIDsOnce(t *testing.T) {
	// A repeated ID must not inflate the removal count: on a 1-item
	// catalogue {0}, [0,0] must still trip the emptying guard...
	c := syncCatalog(t, 1)
	if _, err := c.Delete([]int{0, 0}); err == nil {
		t.Fatal("duplicate-ID batch emptied the catalogue")
	}
	if c.Len() != 1 {
		t.Fatalf("guard passed but items gone: %d", c.Len())
	}
	// ...and on {0,1}, [0,0] removes one item, not a falsely-rejected two.
	c = syncCatalog(t, 2)
	removed, err := c.Delete([]int{0, 0})
	if err != nil {
		t.Fatalf("duplicate-ID delete of one of two items rejected: %v", err)
	}
	if removed != 1 || c.Len() != 1 {
		t.Fatalf("removed = %d, remaining = %d; want 1 and 1", removed, c.Len())
	}
}

func TestUpsertValidatesWholeBatch(t *testing.T) {
	c := syncCatalog(t, 2)
	err := c.Upsert([]feature.Item{
		{ID: 5, Values: []float64{1, 1}},
		{ID: 6, Values: []float64{1}}, // wrong dims: whole batch rejected
	})
	if err == nil {
		t.Fatal("invalid batch accepted")
	}
	if c.Len() != 2 {
		t.Fatalf("partial batch committed: %d items", c.Len())
	}
}

func TestAsyncCoalescesBursts(t *testing.T) {
	c, err := New(Config{
		Profile:        testProfile(),
		MaxPackageSize: 3,
		Items:          testItems(8, 1),
		Coalesce:       30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const burst = 20
	for i := 0; i < burst; i++ {
		if err := c.Upsert([]feature.Item{{ID: 100 + i, Values: []float64{0.1, 0.2}}}); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	ep := c.Current()
	if got := len(ep.Items()); got != 8+burst {
		t.Fatalf("items after flush = %d, want %d", got, 8+burst)
	}
	st := c.Stats()
	if st.Pending {
		t.Fatalf("pending after Flush: %+v", st)
	}
	// Coalescing: far fewer rebuilds than batches (initial build + a
	// handful for the burst; the exact count is timing-dependent).
	if st.Rebuilds >= st.Batches {
		t.Errorf("no coalescing: %d rebuilds for %d batches", st.Rebuilds, st.Batches)
	}
}

func TestSubscribeSeesEverySwap(t *testing.T) {
	c := syncCatalog(t, 4)
	var swaps atomic.Int64
	var lastID atomic.Uint64
	c.Subscribe(func(ep *Epoch, _ *ChangeSet) {
		swaps.Add(1)
		lastID.Store(ep.ID)
	})
	for i := 0; i < 3; i++ {
		if err := c.Upsert([]feature.Item{{ID: 50 + i, Values: []float64{0.3, 0.3}}}); err != nil {
			t.Fatal(err)
		}
	}
	if swaps.Load() != 3 {
		t.Fatalf("subscriber saw %d swaps, want 3", swaps.Load())
	}
	if lastID.Load() != c.Current().ID {
		t.Fatalf("subscriber saw epoch %d, current is %d", lastID.Load(), c.Current().ID)
	}
}

// TestConcurrentMutationsAndReaders hammers the catalogue from mutators
// and readers at once (run under -race). Readers assert the invariants an
// epoch must never violate: dense IDs positional, mapping consistent,
// epoch IDs monotonic from their own point of view.
func TestConcurrentMutationsAndReaders(t *testing.T) {
	for _, mode := range []struct {
		name     string
		coalesce time.Duration
	}{{"sync", -1}, {"async", time.Millisecond}} {
		t.Run(mode.name, func(t *testing.T) {
			c, err := New(Config{
				Profile:        testProfile(),
				MaxPackageSize: 3,
				Items:          testItems(20, 1),
				Coalesce:       mode.coalesce,
			})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			stop := make(chan struct{})
			errs := make(chan error, 64)
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						id := 100 + 10*w + rng.Intn(8)
						if i%3 == 2 {
							if _, err := c.Delete([]int{id}); err != nil {
								errs <- err
								return
							}
						} else if err := c.Upsert([]feature.Item{{
							ID: id, Values: []float64{rng.Float64(), rng.Float64()},
						}}); err != nil {
							errs <- err
							return
						}
					}
				}(w)
			}
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var last uint64
					for {
						select {
						case <-stop:
							return
						default:
						}
						ep := c.Current()
						if ep.ID < last {
							errs <- fmt.Errorf("epoch went backwards: %d after %d", ep.ID, last)
							return
						}
						last = ep.ID
						items := ep.Items()
						for i := range items {
							if items[i].ID != i {
								errs <- fmt.Errorf("epoch %d: dense item %d has ID %d", ep.ID, i, items[i].ID)
								return
							}
							if d, ok := ep.DenseID(ep.StableID(i)); !ok || d != i {
								errs <- fmt.Errorf("epoch %d: mapping broken at dense %d", ep.ID, i)
								return
							}
						}
					}
				}()
			}
			time.Sleep(150 * time.Millisecond)
			close(stop)
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			c.Flush()
			if c.Current().ID < 2 {
				t.Fatal("no swaps happened during the race window")
			}
			if got, want := len(c.Current().Items()), c.Len(); got != want {
				t.Fatalf("flushed epoch has %d items, authoritative set %d", got, want)
			}
		})
	}
}
