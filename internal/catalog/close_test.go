// Regression tests for Close: a mutation acknowledged just before
// shutdown must reach an epoch (the graceful-shutdown path previously
// abandoned the rebuilder, losing 202-acknowledged batches), Close must
// be idempotent, and post-Close mutations must be rejected.
package catalog

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"toppkg/internal/dataset"
	"toppkg/internal/feature"
)

func closeTestCatalog(t *testing.T, coalesce time.Duration) *Catalog {
	t.Helper()
	c, err := New(Config{
		Profile:        feature.SimpleProfile(feature.AggSum, feature.AggAvg),
		MaxPackageSize: 3,
		Items:          dataset.UNI(40, 2, rand.New(rand.NewSource(7))),
		Coalesce:       coalesce,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCloseBuildsPendingBatch is the SIGTERM shape: commit a mutation,
// immediately Close, and require the final epoch to cover it.
func TestCloseBuildsPendingBatch(t *testing.T) {
	// A long coalescing window guarantees the background rebuilder has not
	// built yet when Close runs — Close must not wait it out either.
	c := closeTestCatalog(t, 10*time.Second)
	if err := c.Upsert([]feature.Item{{ID: 500, Name: "late", Values: []float64{0.4, 0.6}}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Current().DenseID(500); ok {
		t.Fatal("test setup: batch built before Close despite 10s coalesce")
	}
	start := time.Now()
	c.Close()
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("Close stalled %v; must not wait out the coalescing window", waited)
	}
	ep := c.Current()
	if d, ok := ep.DenseID(500); !ok || ep.Items()[d].Name != "late" {
		t.Fatal("mutation acknowledged before Close died un-built")
	}
	if st := c.Stats(); st.Pending {
		t.Fatalf("closed catalogue still pending: %+v", st)
	}
}

func TestCloseIdempotentAndConcurrent(t *testing.T) {
	c := closeTestCatalog(t, 20*time.Millisecond)
	if err := c.Upsert([]feature.Item{{ID: 501, Values: []float64{0.2, 0.8}}}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Close()
		}()
	}
	wg.Wait()
	c.Close() // and again, after everything settled
	if _, ok := c.Current().DenseID(501); !ok {
		t.Fatal("pending batch lost across concurrent Close calls")
	}
}

func TestMutationsAfterCloseRejected(t *testing.T) {
	c := closeTestCatalog(t, -1)
	c.Close()
	err := c.Upsert([]feature.Item{{ID: 502, Values: []float64{0.1, 0.1}}})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Upsert error = %v, want ErrClosed", err)
	}
	if _, err := c.Delete([]int{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Delete error = %v, want ErrClosed", err)
	}
	// Reads keep working: the final epoch stays served.
	if c.Current() == nil || c.Len() != 40 {
		t.Fatal("closed catalogue stopped serving reads")
	}
	if err := c.Upsert(nil); err == nil || errors.Is(err, ErrClosed) {
		t.Fatalf("empty batch after close = %v, want the empty-batch error", err)
	}
}

// TestCloseRacesBackgroundRebuild: mutations land right as Close runs;
// whatever was committed before Close returned must be built, and the
// rebuilder goroutine must be quiesced (building == false).
func TestCloseRacesBackgroundRebuild(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		c := closeTestCatalog(t, time.Millisecond)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				_ = c.Upsert([]feature.Item{{ID: 600 + i, Values: []float64{0.5, 0.5}}})
			}
		}()
		time.Sleep(time.Duration(trial%3) * time.Millisecond)
		c.Close()
		wg.Wait()
		c.mu.Lock()
		if c.building {
			t.Fatal("rebuilder still marked building after Close")
		}
		if c.built != c.version {
			t.Fatalf("closed catalogue left version %d built only to %d", c.version, c.built)
		}
		c.mu.Unlock()
	}
}
