package catalog

import (
	"slices"
	"testing"

	"toppkg/internal/feature"
	"toppkg/internal/skyline"
)

// TestSkylineMaintainedAcrossDeltas: once a monotone search materializes
// the head set, insert-only delta batches maintain it incrementally
// (never a full recompute), every maintained set matches a from-scratch
// computation, and removing a head item takes the recompute path — all
// visible through the Stats counters /healthz surfaces.
func TestSkylineMaintainedAcrossDeltas(t *testing.T) {
	p := feature.SimpleProfile(feature.AggSum, feature.AggMax)
	items := []feature.Item{
		{ID: 0, Values: []float64{5, 1}},
		{ID: 1, Values: []float64{1, 5}},
		{ID: 2, Values: []float64{2, 2}},
		{ID: 3, Values: []float64{1, 1}},
	}
	c, err := New(Config{Profile: p, MaxPackageSize: 2, Items: items, Coalesce: -1, DeltaThreshold: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Materialize the head set the way a monotone-utility search would.
	ep := c.Current()
	heads := ep.Index.Heads()
	if want := skyline.Heads(ep.Space); !slices.Equal(heads.Members(), want.Members()) {
		t.Fatalf("initial heads %v != recompute %v", heads.Members(), want.Members())
	}

	// Insert-only batches: always incremental.
	for i := 0; i < 3; i++ {
		id := 10 + i
		if err := c.Upsert([]feature.Item{{ID: id, Values: []float64{float64(i), float64(6 - i)}}}); err != nil {
			t.Fatal(err)
		}
		ep = c.Current()
		got := ep.Index.PeekHeads()
		if got == nil {
			t.Fatalf("insert %d: head set not carried to the new epoch", id)
		}
		if want := skyline.Heads(ep.Space); !slices.Equal(got.Members(), want.Members()) {
			t.Fatalf("insert %d: maintained heads %v != recompute %v", id, got.Members(), want.Members())
		}
	}
	st := c.Stats()
	if st.SkylineIncremental != 3 || st.SkylineRecomputes != 0 {
		t.Fatalf("insert-only batches: incremental=%d recomputes=%d, want 3/0", st.SkylineIncremental, st.SkylineRecomputes)
	}

	// Deleting a non-head item stays incremental.
	if _, err := c.Delete([]int{3}); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.SkylineIncremental != 4 || st.SkylineRecomputes != 0 {
		t.Fatalf("non-head delete: incremental=%d recomputes=%d, want 4/0", st.SkylineIncremental, st.SkylineRecomputes)
	}

	// Deleting a head item forces the recompute path — and the recomputed
	// set is still correct.
	ep = c.Current()
	head := int(ep.Index.PeekHeads().Members()[0])
	if _, err := c.Delete([]int{ep.StableID(head)}); err != nil {
		t.Fatal(err)
	}
	ep = c.Current()
	got := ep.Index.PeekHeads()
	if got == nil {
		t.Fatal("head delete: head set dropped instead of recomputed")
	}
	if want := skyline.Heads(ep.Space); !slices.Equal(got.Members(), want.Members()) {
		t.Fatalf("head delete: heads %v != recompute %v", got.Members(), want.Members())
	}
	st = c.Stats()
	if st.SkylineRecomputes != 1 {
		t.Fatalf("head delete: recomputes=%d, want 1", st.SkylineRecomputes)
	}
}
