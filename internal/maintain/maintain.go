// Package maintain implements sample maintenance (paper §3.4): when new
// feedback arrives, previously generated weight-vector samples that satisfy
// it are kept and only the violators are replaced, avoiding regeneration
// from scratch. Three violator-finding strategies are provided — the naive
// scan, the threshold-algorithm (TA) search over per-dimension sorted
// sample lists, and the hybrid of Algorithm 1 which starts as TA and falls
// back to scanning once its projected cost exceeds (1+γ)·|S|.
package maintain

import (
	"fmt"
	"math/rand"

	"toppkg/internal/prefgraph"
	"toppkg/internal/sampling"
	"toppkg/internal/topk"
)

// Query converts a new feedback constraint into the violator query vector:
// a sample w violates winner ≻ loser iff w·(loser−winner) > 0, i.e.
// w·q > 0 with q = −Diff.
func Query(c prefgraph.Constraint) []float64 {
	q := make([]float64, len(c.Diff))
	for i, v := range c.Diff {
		q[i] = -v
	}
	return q
}

// Checker finds the samples violating a new feedback constraint. work is
// the number of sample examinations / sorted accesses performed — the
// cost measure Figure 7 compares.
type Checker interface {
	// Name identifies the strategy ("naive", "ta", "hybrid").
	Name() string
	// Violators returns the indices of pool vectors w with w·q > 0, in
	// unspecified order.
	Violators(q []float64) (idx []int, work int)
}

// Naive scans every sample (paper §3.4's simple idea). Effective when many
// samples violate the feedback; wasteful when few do.
type Naive struct{ P *topk.Pool }

// Name implements Checker.
func (n *Naive) Name() string { return "naive" }

// Violators implements Checker.
func (n *Naive) Violators(q []float64) ([]int, int) {
	var out []int
	for i := 0; i < n.P.Len(); i++ {
		if n.P.Dot(i, q) > 0 {
			out = append(out, i)
		}
	}
	return out, n.P.Len()
}

// TA finds violators with the threshold algorithm over sorted sample lists
// [13]: samples are drawn in descending possible score until the boundary
// value shows no unseen sample can score above zero. Very efficient when
// few samples violate; can cost more than a scan when many do.
type TA struct{ P *topk.Pool }

// Name implements Checker.
func (t *TA) Name() string { return "ta" }

// Violators implements Checker.
func (t *TA) Violators(q []float64) ([]int, int) {
	return t.P.AboveZero(q)
}

// Hybrid is Algorithm 1: run TA, but once the accesses performed plus the
// entries remaining in the current list reach (1+Gamma)·|S|, stop the TA
// process and scan the remainder of the current list (which contains every
// unseen sample). Gamma tunes how long TA is allowed to run: small Gamma
// behaves like the naive scan, large Gamma like pure TA (§5.5).
type Hybrid struct {
	P *topk.Pool
	// Gamma is the overshoot tolerance γ (default 0.025, the sweet spot in
	// Figure 7b).
	Gamma float64
}

// Name implements Checker.
func (h *Hybrid) Name() string { return "hybrid" }

// Violators implements Checker.
func (h *Hybrid) Violators(q []float64) ([]int, int) {
	gamma := h.Gamma
	if gamma == 0 {
		gamma = 0.025
	}
	s := topk.NewScanner(h.P, q)
	if s == nil {
		return nil, 0
	}
	n := h.P.Len()
	limit := float64(n) * (1 + gamma)
	seen := make([]bool, n)
	var out []int
	fallbackChecks := 0
	for {
		i, ok := s.Next()
		if !ok {
			break
		}
		if !seen[i] {
			seen[i] = true
			if h.P.Dot(i, q) > 0 {
				out = append(out, i)
			}
		}
		if s.Threshold() <= 0 {
			break
		}
		if float64(s.Accesses()+s.CurrentRemaining()) >= limit {
			// Fallback (Algorithm 1 lines 9–10): check every sample left in
			// the current list; it contains all unseen samples.
			for _, j := range s.CurrentUnread() {
				if !seen[j] {
					seen[j] = true
					fallbackChecks++
					if h.P.Dot(int(j), q) > 0 {
						out = append(out, int(j))
					}
				}
			}
			break
		}
	}
	return out, s.Accesses() + fallbackChecks
}

// Pool owns a sample set and keeps it consistent with incoming feedback:
// violators found by the configured checker are replaced by fresh samples
// from the (already feedback-aware) sampler, per §3.4 — the retained
// samples still follow the prior restricted to the valid region, so only
// replacements must be drawn.
type Pool struct {
	Samples []sampling.Sample
	index   *topk.Pool
	// NewChecker builds the violator-finding strategy over an index; by
	// default the hybrid checker.
	NewChecker func(*topk.Pool) Checker
}

// NewPool wraps an initial sample set.
func NewPool(samples []sampling.Sample) *Pool {
	return &Pool{Samples: samples}
}

// Index returns the TA index over the current samples, building it if
// needed.
func (p *Pool) Index() *topk.Pool {
	if p.index == nil {
		p.index = topk.NewPool(sampling.Weights(p.Samples))
	}
	return p.index
}

// Invalidate drops the TA index (call after mutating Samples directly).
func (p *Pool) Invalidate() { p.index = nil }

// Apply finds the samples violating constraint c, replaces them with fresh
// draws from s, and returns the number replaced and the checker work.
func (p *Pool) Apply(c prefgraph.Constraint, s sampling.Sampler, rng *rand.Rand) (replaced, work int, err error) {
	checker := p.checker()
	viol, work := checker.Violators(Query(c))
	if len(viol) == 0 {
		return 0, work, nil
	}
	res, err := s.Sample(rng, len(viol))
	if err != nil {
		return 0, work, fmt.Errorf("maintain: replacing %d violators: %w", len(viol), err)
	}
	for i, vi := range viol {
		p.Samples[vi] = res.Samples[i]
	}
	p.Invalidate()
	return len(viol), work, nil
}

func (p *Pool) checker() Checker {
	idx := p.Index()
	if p.NewChecker != nil {
		return p.NewChecker(idx)
	}
	return &Hybrid{P: idx}
}
