package maintain

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"toppkg/internal/gaussmix"
	"toppkg/internal/pkgspace"
	"toppkg/internal/prefgraph"
	"toppkg/internal/sampling"
	"toppkg/internal/topk"
)

func constraint(diff ...float64) prefgraph.Constraint {
	return prefgraph.Constraint{Winner: pkgspace.New(0), Loser: pkgspace.New(1), Diff: diff}
}

func randomSamples(rng *rand.Rand, n, d int) []sampling.Sample {
	out := make([]sampling.Sample, n)
	for i := range out {
		w := make([]float64, d)
		for j := range w {
			w[j] = rng.Float64()*2 - 1
		}
		out[i] = sampling.Sample{W: w, Q: 1}
	}
	return out
}

func TestQueryNegatesDiff(t *testing.T) {
	c := constraint(0.5, -0.3)
	q := Query(c)
	if q[0] != -0.5 || q[1] != 0.3 {
		t.Errorf("Query = %v, want (-0.5, 0.3)", q)
	}
}

// TestCheckersAgree: all three strategies must find exactly the same
// violator set on random pools and constraints.
func TestCheckersAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(200)
		d := 1 + rng.Intn(5)
		pool := topk.NewPool(sampling.Weights(randomSamples(rng, n, d)))
		diff := make([]float64, d)
		for j := range diff {
			diff[j] = rng.Float64()*2 - 1
		}
		q := Query(constraint(diff...))
		naive, _ := (&Naive{P: pool}).Violators(q)
		ta, _ := (&TA{P: pool}).Violators(q)
		hybrid, _ := (&Hybrid{P: pool, Gamma: 0.025}).Violators(q)
		sort.Ints(ta)
		sort.Ints(hybrid)
		if len(naive) != len(ta) || len(naive) != len(hybrid) {
			return false
		}
		for i := range naive {
			if naive[i] != ta[i] || naive[i] != hybrid[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestTAWinsWhenFewViolators reproduces Figure 7's left end: when almost no
// samples violate the feedback, TA does far less work than the naive scan.
func TestTAWinsWhenFewViolators(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 10000
	samples := make([]sampling.Sample, n)
	for i := range samples {
		// All samples in the positive quadrant.
		samples[i] = sampling.Sample{W: []float64{rng.Float64(), rng.Float64()}, Q: 1}
	}
	pool := topk.NewPool(sampling.Weights(samples))
	// Query (-1,-1): w·q < 0 for all — zero violators.
	q := []float64{-1, -1}
	naive := &Naive{P: pool}
	ta := &TA{P: pool}
	vN, workN := naive.Violators(q)
	vT, workT := ta.Violators(q)
	if len(vN) != 0 || len(vT) != 0 {
		t.Fatalf("violators found where none exist: %d, %d", len(vN), len(vT))
	}
	if workT >= workN/10 {
		t.Errorf("TA work %d not ≪ naive %d on zero-violator query", workT, workN)
	}
}

// TestNaiveWinsWhenManyViolators reproduces Figure 7's right end: when most
// samples violate, pure TA costs more than a scan, and the hybrid stays
// within (1+γ) of naive.
func TestNaiveWinsWhenManyViolators(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 10000
	samples := make([]sampling.Sample, n)
	for i := range samples {
		samples[i] = sampling.Sample{W: []float64{rng.Float64(), rng.Float64()}, Q: 1}
	}
	pool := topk.NewPool(sampling.Weights(samples))
	q := []float64{1, 1} // every sample violates
	_, workN := (&Naive{P: pool}).Violators(q)
	_, workT := (&TA{P: pool}).Violators(q)
	gamma := 0.025
	vH, workH := (&Hybrid{P: pool, Gamma: gamma}).Violators(q)
	if len(vH) != n {
		t.Fatalf("hybrid missed violators: %d of %d", len(vH), n)
	}
	if workT <= workN {
		t.Errorf("TA work %d not worse than naive %d on all-violator query", workT, workN)
	}
	if float64(workH) > float64(workN)*(1+gamma)+1 {
		t.Errorf("hybrid work %d exceeds (1+γ)·naive = %g", workH, float64(workN)*(1+gamma))
	}
}

// TestHybridGammaSpectrum: larger γ lets the hybrid behave more like TA
// (more sorted accesses before fallback) — Figure 7(b)'s mechanism.
func TestHybridGammaSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 5000
	samples := randomSamples(rng, n, 3)
	pool := topk.NewPool(sampling.Weights(samples))
	q := []float64{0.7, 0.5, 0.6} // roughly half the samples violate
	_, workSmall := (&Hybrid{P: pool, Gamma: 0.001}).Violators(q)
	_, workLarge := (&Hybrid{P: pool, Gamma: 10}).Violators(q)
	_, workTA := (&TA{P: pool}).Violators(q)
	if workLarge != workTA {
		t.Errorf("γ=10 hybrid work %d != pure TA %d", workLarge, workTA)
	}
	if workSmall > n+n/100+3 {
		t.Errorf("γ≈0 hybrid work %d far above naive %d", workSmall, n)
	}
}

func TestPoolApplyReplacesViolators(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	samples := randomSamples(rng, 500, 2)
	p := NewPool(samples)
	c := constraint(1, 0) // winner better on dim 0: violators have w[0] < 0
	prior := gaussmix.DefaultPrior(2, 1, rng)
	v := sampling.NewValidator(2, []prefgraph.Constraint{c})
	s := &sampling.Rejection{Prior: prior, V: v}
	replaced, work, err := p.Apply(c, s, rng)
	if err != nil {
		t.Fatal(err)
	}
	if replaced == 0 {
		t.Fatal("no samples replaced; expected roughly half")
	}
	if work == 0 {
		t.Fatal("checker reported zero work")
	}
	// After replacement no sample violates the constraint.
	for i, smp := range p.Samples {
		if c.Violates(smp.W) {
			t.Fatalf("sample %d still violates after Apply", i)
		}
	}
	// A second Apply of the same constraint replaces nothing.
	replaced2, _, err := p.Apply(c, s, rng)
	if err != nil {
		t.Fatal(err)
	}
	if replaced2 != 0 {
		t.Errorf("second Apply replaced %d, want 0", replaced2)
	}
}

func TestPoolApplyKeepsValidSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := randomSamples(rng, 200, 2)
	// Remember which samples are valid beforehand.
	c := constraint(0, 1)
	validBefore := map[int][]float64{}
	for i, s := range samples {
		if !c.Violates(s.W) {
			validBefore[i] = append([]float64(nil), s.W...)
		}
	}
	p := NewPool(samples)
	prior := gaussmix.DefaultPrior(2, 1, rng)
	v := sampling.NewValidator(2, []prefgraph.Constraint{c})
	if _, _, err := p.Apply(c, &sampling.Rejection{Prior: prior, V: v}, rng); err != nil {
		t.Fatal(err)
	}
	for i, w := range validBefore {
		for j := range w {
			if p.Samples[i].W[j] != w[j] {
				t.Fatalf("valid sample %d was touched", i)
			}
		}
	}
}

func TestPoolIndexInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := NewPool(randomSamples(rng, 50, 2))
	idx1 := p.Index()
	if p.Index() != idx1 {
		t.Error("index not cached")
	}
	p.Invalidate()
	if p.Index() == idx1 {
		t.Error("index not rebuilt after Invalidate")
	}
}

func TestPoolCustomChecker(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := NewPool(randomSamples(rng, 100, 2))
	used := false
	p.NewChecker = func(ix *topk.Pool) Checker {
		used = true
		return &Naive{P: ix}
	}
	c := constraint(1, 1)
	prior := gaussmix.DefaultPrior(2, 1, rng)
	v := sampling.NewValidator(2, []prefgraph.Constraint{c})
	if _, _, err := p.Apply(c, &sampling.Rejection{Prior: prior, V: v}, rng); err != nil {
		t.Fatal(err)
	}
	if !used {
		t.Error("custom checker not used")
	}
}
