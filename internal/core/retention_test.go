package core

import (
	"encoding/binary"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"toppkg/internal/catalog"
	"toppkg/internal/feature"
	"toppkg/internal/ranking"
	"toppkg/internal/search"
)

// These tests prove the epoch-survivable cache's core invariant: a cache
// entry reachable under an epoch's key always serves the exact result a
// fresh Top-k-Pkg search on that epoch would produce — bit-identical
// packages and utility bits. Reconcile may only retain (or revive) an
// entry when the footprint replay proves the swap could not have changed
// it; everything here churns the catalogue and audits that proof.

// retentionSearchOpts is the per-sample search configuration liveConfig's
// engines key cache entries under (K=2, Sigma=2 ⇒ per-sample K=2).
func retentionSearchOpts() search.Options {
	so := liveConfig().Search
	so.K = 2
	return so
}

// searchCacheKey reconstructs the batched pipeline's cache key for a
// weight vector under the given catalogue epoch: cache invalidation epoch
// + catalogue epoch + options key + weight bits (see ranking.groupResults).
func searchCacheKey(t *testing.T, c *ranking.Cache, catEpoch uint64, so search.Options, w []float64) string {
	t.Helper()
	optsKey, ok := so.CacheKey()
	if !ok {
		t.Fatal("search options are not cache-keyable")
	}
	var ep [16]byte
	binary.LittleEndian.PutUint64(ep[:8], c.Epoch())
	binary.LittleEndian.PutUint64(ep[8:], catEpoch)
	return string(ep[:]) + optsKey + "|" + ranking.WeightKey(w)
}

// verifyReachable re-searches every cache entry reachable under epoch ep
// (stale-keyed entries are unreachable by construction and skipped) and
// fails the test unless the cached packages are bit-identical to the
// fresh result. Returns the number of entries audited. Safe to run while
// other goroutines mutate the cache: the entry snapshot is taken under
// the cache lock and compared against the immutable ep.
func verifyReachable(t *testing.T, c *ranking.Cache, ep *catalog.Epoch, so search.Options) int {
	t.Helper()
	var cacheEp [8]byte
	binary.LittleEndian.PutUint64(cacheEp[:], c.Epoch())
	type kv struct {
		key string
		res search.Result
	}
	var entries []kv
	c.Range(func(key string, res search.Result) bool {
		entries = append(entries, kv{key, res})
		return true
	})
	checked := 0
	for _, e := range entries {
		if len(e.key) < 16 || e.key[:8] != string(cacheEp[:]) {
			continue // pre-Invalidate entry: unreachable
		}
		if binary.LittleEndian.Uint64([]byte(e.key[8:16])) != ep.ID {
			continue // keyed to another epoch: unreachable under ep
		}
		rest := e.key[16:]
		wkey := rest[strings.Index(rest, "|")+1:]
		w := make([]float64, len(wkey)/8)
		for i := range w {
			w[i] = math.Float64frombits(binary.LittleEndian.Uint64([]byte(wkey[8*i : 8*i+8])))
		}
		u, err := feature.NewUtility(ep.Space.Profile, w)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := ep.Index.TopK(u, so)
		if err != nil {
			t.Fatal(err)
		}
		if len(fresh.Packages) != len(e.res.Packages) {
			t.Fatalf("epoch %d: retained entry w=%v has %d packages, fresh search %d",
				ep.ID, w, len(e.res.Packages), len(fresh.Packages))
		}
		for i := range fresh.Packages {
			g, f := e.res.Packages[i], fresh.Packages[i]
			if g.Pkg.Signature() != f.Pkg.Signature() || math.Float64bits(g.Utility) != math.Float64bits(f.Utility) {
				t.Fatalf("epoch %d: retained entry w=%v diverges at package %d: cached %s/%v, fresh %s/%v (footprint %+v)",
					ep.ID, w, i, g.Pkg.Signature(), g.Utility, f.Pkg.Signature(), f.Utility, e.res.FP)
			}
		}
		checked++
	}
	return checked
}

// churn applies one random mutation — insert batch, reprice, delete, or
// null-valued reprice — and returns the next fresh stable ID to use.
func churn(t *testing.T, cat *catalog.Catalog, rng *rand.Rand, nextID int) int {
	t.Helper()
	ep := cat.Current()
	switch rng.Intn(4) {
	case 0: // insert 1-3 new items
		batch := make([]feature.Item, 1+rng.Intn(3))
		for i := range batch {
			batch[i] = feature.Item{ID: nextID, Name: "new", Values: []float64{rng.Float64(), rng.Float64()}}
			nextID++
		}
		if err := cat.Upsert(batch); err != nil {
			t.Fatal(err)
		}
	case 1: // reprice an existing item
		i := rng.Intn(len(ep.Items()))
		it := ep.Items()[i]
		it.ID = ep.StableID(i)
		it.Values = []float64{rng.Float64(), rng.Float64()}
		if err := cat.Upsert([]feature.Item{it}); err != nil {
			t.Fatal(err)
		}
	case 2: // delete an existing item (keep the catalogue searchable)
		if len(ep.Items()) <= 8 {
			return churn(t, cat, rng, nextID)
		}
		if _, err := cat.Delete([]int{ep.StableID(rng.Intn(len(ep.Items())))}); err != nil {
			t.Fatal(err)
		}
	default: // null out one dimension of an existing item
		i := rng.Intn(len(ep.Items()))
		it := ep.Items()[i]
		it.ID = ep.StableID(i)
		it.Values = []float64{feature.Null, rng.Float64()}
		if err := cat.Upsert([]feature.Item{it}); err != nil {
			t.Fatal(err)
		}
	}
	return nextID
}

// TestCacheRetentionBitIdentical is the tentpole's correctness property:
// across ≥100 randomized delta-churn trials (inserts, deletes, reprices,
// nulled values), every entry Reconcile retains serves results
// bit-identical to a fresh search on the post-swap epoch.
func TestCacheRetentionBitIdentical(t *testing.T) {
	cat := liveCatalog(t, -1, 40)
	sh, err := NewLiveShared(liveConfig(), cat)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	so := retentionSearchOpts()
	nextID, totalChecked := 1000, 0
	const trials = 120
	for trial := 0; trial < trials; trial++ {
		// Engines cycle through a few seeds so the cache holds several
		// engines' weight vectors, not one pool's.
		eng, err := sh.NewEngine(int64(trial % 4))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Recommend(); err != nil {
			t.Fatal(err)
		}
		nextID = churn(t, cat, rng, nextID)
		totalChecked += verifyReachable(t, sh.SearchCache(), cat.Current(), so)
	}
	st := sh.SearchCache().Stats()
	if st.Retained == 0 {
		t.Fatalf("no entries retained across %d churn trials; stats %+v", trials, st)
	}
	if totalChecked == 0 {
		t.Fatalf("no retained entries audited across %d churn trials; stats %+v", trials, st)
	}
	t.Logf("%d trials: %d retained-entry audits, stats %+v", trials, totalChecked, st)
}

// TestCacheRevivalAfterRacingPut pins a search to an epoch, lets swaps
// land "mid-flight", then Puts the result exactly as a racing Recommend
// would: keyed to the superseded epoch. The Put must land dead — a Get
// under the live epoch's key misses — until a later Reconcile chains the
// entry's footprint proof through the recorded swap history; once
// revived, the entry must serve bit-identical to a fresh search.
func TestCacheRevivalAfterRacingPut(t *testing.T) {
	// 200 items against MaxAccessed=100: most reprices land outside a
	// search's accessed set, so footprint proofs regularly survive the
	// three hops this test chains.
	cat := liveCatalog(t, -1, 200)
	sh, err := NewLiveShared(liveConfig(), cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sh.NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Recommend(); err != nil {
		t.Fatal(err)
	}
	cache := sh.SearchCache()
	so := retentionSearchOpts()
	rng := rand.New(rand.NewSource(43))
	reprice := func() {
		ep := cat.Current()
		i := rng.Intn(len(ep.Items()))
		it := ep.Items()[i]
		it.ID = ep.StableID(i)
		it.Values = []float64{rng.Float64(), rng.Float64()}
		if err := cat.Upsert([]feature.Item{it}); err != nil {
			t.Fatal(err)
		}
	}
	revived := uint64(0)
	for attempt := 0; attempt < 60 && revived == 0; attempt++ {
		ep0 := cat.Current()
		w := []float64{0.1 + rng.Float64(), 0.1 + rng.Float64()}
		u, err := feature.NewUtility(ep0.Space.Profile, w)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ep0.Index.TopK(u, so)
		if err != nil {
			t.Fatal(err)
		}
		reprice() // two swaps land while the search above was "in flight"
		reprice()
		cache.Put(searchCacheKey(t, cache, ep0.ID, so, w), res)
		if _, ok := cache.Get(searchCacheKey(t, cache, cat.Current().ID, so, w)); ok {
			t.Fatal("racing Put reachable under the live epoch key before any reconcile proved it")
		}
		before := cache.Stats()
		reprice() // third swap: Reconcile chains the stale entry forward
		d := cache.Stats().Revived - before.Revived
		revived += d
		if d > 0 {
			// The revived entry is now reachable — and must be exact.
			ep := cat.Current()
			got, ok := cache.Get(searchCacheKey(t, cache, ep.ID, so, w))
			if ok {
				fresh, err := ep.Index.TopK(u, so)
				if err != nil {
					t.Fatal(err)
				}
				if len(got.Packages) != len(fresh.Packages) {
					t.Fatalf("revived entry has %d packages, fresh search %d", len(got.Packages), len(fresh.Packages))
				}
				for i := range fresh.Packages {
					g, f := got.Packages[i], fresh.Packages[i]
					if g.Pkg.Signature() != f.Pkg.Signature() || math.Float64bits(g.Utility) != math.Float64bits(f.Utility) {
						t.Fatalf("revived entry diverges at package %d: cached %s/%v, fresh %s/%v",
							i, g.Pkg.Signature(), g.Utility, f.Pkg.Signature(), f.Utility)
					}
				}
			}
		}
		verifyReachable(t, cache, cat.Current(), so)
	}
	if revived == 0 {
		t.Fatalf("no racing Put was revived in 60 attempts; stats %+v", cache.Stats())
	}
}

// TestReconcileRaceStalePutNeverServed runs Reconcile on the mutating
// goroutine while concurrent engines — some mid-Recommend, pinned to the
// epoch they resolved at entry — Get and Put continuously. Run under
// -race this exercises the locking; the sweeps assert the serving
// invariant: no reachable entry ever differs from a fresh search on its
// own epoch, i.e. a stale Put is never served post-swap.
func TestReconcileRaceStalePutNeverServed(t *testing.T) {
	cat := liveCatalog(t, -1, 200) // see TestCacheRevivalAfterRacingPut
	sh, err := NewLiveShared(liveConfig(), cat)
	if err != nil {
		t.Fatal(err)
	}
	eng0, err := sh.NewEngine(99)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng0.Recommend(); err != nil { // resident entries before churn begins
		t.Fatal(err)
	}
	so := retentionSearchOpts()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			eng, err := sh.NewEngine(seed)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.Recommend(); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(g))
	}
	rng := rand.New(rand.NewSource(91))
	audited := 0
	for i := 0; i < 40; i++ {
		time.Sleep(2 * time.Millisecond) // let Recommends interleave between swaps
		ep := cat.Current()
		j := rng.Intn(len(ep.Items()))
		it := ep.Items()[j]
		it.ID = ep.StableID(j)
		it.Values = []float64{rng.Float64(), rng.Float64()}
		if err := cat.Upsert([]feature.Item{it}); err != nil { // synchronous swap + Reconcile
			t.Fatal(err)
		}
		if i%8 == 7 {
			audited += verifyReachable(t, sh.SearchCache(), cat.Current(), so)
		}
	}
	close(stop)
	wg.Wait()
	audited += verifyReachable(t, sh.SearchCache(), cat.Current(), so)
	st := sh.SearchCache().Stats()
	if st.Retained == 0 || audited == 0 {
		t.Fatalf("vacuous run: %d entries audited, stats %+v", audited, st)
	}
}
