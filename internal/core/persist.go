// Session persistence: the engine's learned state — the preference DAG and
// the weight-vector sample pool — serialized as portable JSON keyed by item
// IDs. The paper's system accumulates a user's preferences across logins
// (§1, §2.2); Snapshot/Restore provide that durability without persisting
// the (caller-owned) item catalogue itself.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"toppkg/internal/maintain"
	"toppkg/internal/pkgspace"
	"toppkg/internal/prefgraph"
	"toppkg/internal/sampling"
)

// Snapshot is the serializable learned state of an engine session.
type Snapshot struct {
	// Version guards the wire format.
	Version int `json:"version"`
	// Preferences lists the recorded pairwise preferences as item-ID sets
	// (winner, loser). Vectors are recomputed from the item space on
	// restore, so snapshots survive re-normalization-compatible reloads of
	// the same catalogue.
	Preferences []PreferencePair `json:"preferences"`
	// Samples is the weight-vector pool; Weights are the importance
	// weights (same length).
	Samples [][]float64 `json:"samples"`
	Weights []float64   `json:"weights"`
	// Stats preserves the cumulative counters.
	Stats Stats `json:"stats"`
}

// PreferencePair is one recorded preference: winner item IDs, loser item
// IDs.
type PreferencePair struct {
	Winner []int `json:"winner"`
	Loser  []int `json:"loser"`
}

// snapshotVersion is the current wire format version.
const snapshotVersion = 1

// Snapshot captures the engine's learned state. It does not force sampling:
// an engine that never sampled yields a snapshot with an empty pool.
func (e *Engine) Snapshot() *Snapshot {
	s := &Snapshot{Version: snapshotVersion, Stats: e.stats}
	for _, pr := range e.graph.Preferences() {
		s.Preferences = append(s.Preferences, PreferencePair{
			Winner: append([]int(nil), pr[0].IDs...),
			Loser:  append([]int(nil), pr[1].IDs...),
		})
	}
	if e.pool != nil {
		for _, smp := range e.pool.Samples {
			s.Samples = append(s.Samples, append([]float64(nil), smp.W...))
			s.Weights = append(s.Weights, smp.Q)
		}
	}
	return s
}

// Restore replaces the engine's learned state with the snapshot's: the
// preference DAG is rebuilt (vectors recomputed against the current item
// space) and the sample pool installed verbatim. The engine must have been
// constructed with a compatible item set and profile.
func (e *Engine) Restore(s *Snapshot) error {
	if s == nil {
		return errors.New("core: nil snapshot")
	}
	if s.Version != snapshotVersion {
		return fmt.Errorf("core: snapshot version %d, want %d", s.Version, snapshotVersion)
	}
	if len(s.Samples) != len(s.Weights) {
		return fmt.Errorf("core: snapshot has %d samples but %d weights", len(s.Samples), len(s.Weights))
	}
	dims := e.cfg.Profile.Dims()
	for i, w := range s.Samples {
		if len(w) != dims {
			return fmt.Errorf("core: snapshot sample %d has %d dims, space has %d", i, len(w), dims)
		}
	}
	g := prefgraph.New()
	for i, pr := range s.Preferences {
		if len(pr.Winner) == 0 || len(pr.Loser) == 0 {
			// No interaction can produce a preference over the empty
			// package (Top-k-Pkg never returns ∅), so such a snapshot is
			// corrupt or hand-crafted.
			return fmt.Errorf("core: snapshot preference %d: empty package", i)
		}
		winner := pkgspace.New(pr.Winner...)
		loser := pkgspace.New(pr.Loser...)
		wv, err := e.PackageVector(winner)
		if err != nil {
			return fmt.Errorf("core: snapshot preference %d: %w", i, err)
		}
		lv, err := e.PackageVector(loser)
		if err != nil {
			return fmt.Errorf("core: snapshot preference %d: %w", i, err)
		}
		if err := g.AddPreference(winner, wv, loser, lv); err != nil {
			return fmt.Errorf("core: snapshot preference %d: %w", i, err)
		}
	}
	e.graph = g
	e.stats = s.Stats
	if len(s.Samples) == 0 {
		e.pool = nil
		return nil
	}
	samples := make([]sampling.Sample, len(s.Samples))
	for i := range s.Samples {
		samples[i] = sampling.Sample{
			W: append([]float64(nil), s.Samples[i]...),
			Q: s.Weights[i],
		}
	}
	e.pool = maintain.NewPool(samples)
	e.pool.NewChecker = e.newChecker
	return nil
}

// WriteSnapshot encodes a snapshot as JSON — the codec behind Save, usable
// without an engine (e.g. a session store persisting evicted sessions).
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	if s == nil {
		return errors.New("core: nil snapshot")
	}
	return json.NewEncoder(w).Encode(s)
}

// ReadSnapshot decodes a snapshot written by WriteSnapshot/Save. It checks
// the wire version and internal consistency, but not compatibility with any
// particular item space — Restore does that.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, want %d", s.Version, snapshotVersion)
	}
	if len(s.Samples) != len(s.Weights) {
		return nil, fmt.Errorf("core: snapshot has %d samples but %d weights", len(s.Samples), len(s.Weights))
	}
	return &s, nil
}

// Save writes the engine's snapshot as JSON.
func (e *Engine) Save(w io.Writer) error {
	return WriteSnapshot(w, e.Snapshot())
}

// Load restores the engine from JSON written by Save.
func (e *Engine) Load(r io.Reader) error {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("core: decoding snapshot: %w", err)
	}
	return e.Restore(&s)
}
