// Session persistence: the engine's learned state — the preference DAG and
// the weight-vector sample pool — serialized as portable JSON. The paper's
// system accumulates a user's preferences across logins (§1, §2.2);
// Snapshot/Restore provide that durability without persisting the
// (caller-owned) item catalogue itself.
//
// Wire format v2 keys preferences by *stable* catalogue IDs and records
// the epoch the snapshot was captured under, so learned state survives
// live-catalogue churn between save and restore: Restore remaps every
// preference through the restore-time epoch, silently dropping items that
// vanished from the catalogue (counted in Stats.RestoreDroppedItems /
// RestoreDroppedPrefs, not an error) and recomputing preference vectors
// against the restore-time space. v1 snapshots (dense item IDs, no epoch)
// remain readable: their IDs are interpreted as dense positions in the
// restore-time space — the original epoch-0 semantics — and migrate to
// stable identity on the next Snapshot.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"toppkg/internal/catalog"
	"toppkg/internal/maintain"
	"toppkg/internal/pkgspace"
	"toppkg/internal/prefgraph"
	"toppkg/internal/sampling"
)

// Snapshot is the serializable learned state of an engine session.
type Snapshot struct {
	// Version guards the wire format: 1 = dense item IDs (legacy), 2 =
	// stable catalogue IDs + capture epoch.
	Version int `json:"version"`
	// Epoch is the catalogue epoch the learned state last referenced when
	// the snapshot was taken (v2; 0 for v1 and static catalogues). Restore
	// keeps the sample pool verbatim only when restoring under this same
	// epoch; otherwise the pool is discarded and redrawn under the
	// remapped constraint set, since its samples were maintained against
	// another epoch's geometry.
	Epoch uint64 `json:"epoch,omitempty"`
	// SpaceHash fingerprints the vector geometry of the space the state
	// was captured against (v2; see feature.Space.Hash), and IDHash the
	// stable→dense identity assignment (catalog.IDMapHash). Epoch
	// counters are per-process, so the pool fast path additionally
	// requires both to match at restore — a snapshot moved to another
	// deployment whose catalogue merely shares the epoch number (or even
	// the item values, with stable IDs permuted) must not install a pool
	// maintained against different constraints.
	SpaceHash uint64 `json:"space_hash,omitempty"`
	IDHash    uint64 `json:"id_hash,omitempty"`
	// Preferences lists the recorded pairwise preferences as item-ID sets
	// (winner, loser): stable catalogue IDs in v2, dense positions in v1.
	// Vectors are recomputed from the restore-time item space, so
	// snapshots survive re-normalization and catalogue churn.
	Preferences []PreferencePair `json:"preferences"`
	// Samples is the weight-vector pool; Weights are the importance
	// weights (same length).
	Samples [][]float64 `json:"samples"`
	Weights []float64   `json:"weights"`
	// Stats preserves the cumulative counters.
	Stats Stats `json:"stats"`
}

// PreferencePair is one recorded preference: winner item IDs, loser item
// IDs (stable catalogue IDs in v2, dense in v1).
type PreferencePair struct {
	Winner []int `json:"winner"`
	Loser  []int `json:"loser"`
}

// snapshotVersion is the wire format version Snapshot writes.
const snapshotVersion = 2

// validVersion reports whether ReadSnapshot/Restore understand v.
func validVersion(v int) bool { return v == 1 || v == snapshotVersion }

// Snapshot captures the engine's learned state in wire format v2:
// preferences under their stable catalogue identity plus the epoch the
// state last referenced. It does not force sampling: an engine that never
// sampled yields a snapshot with an empty pool.
//
// A v2 snapshot carrying both preferences and samples promises the
// samples were maintained against exactly Epoch's geometry (Restore's
// pool fast path relies on it). When the graph's vectors span epochs, or
// lag behind the feedback epoch, no single epoch can reproduce the
// constraint set the pool satisfied, so the pool is omitted and the
// restored engine redraws it — preferences, not samples, are the learned
// state worth carrying across epochs. A pool without any preferences is
// epoch-free (drawn from the prior alone) and always serialized.
func (e *Engine) Snapshot() *Snapshot {
	fv := e.feedbackView()
	s := &Snapshot{Version: snapshotVersion, Epoch: fv.id, SpaceHash: fv.space.Hash(), IDHash: fv.idh, Stats: e.stats}
	for _, pr := range e.graph.Preferences() {
		// Graph nodes are keyed by stable identity, so the pairs are
		// already in stable IDs (identical to dense for a static space).
		s.Preferences = append(s.Preferences, PreferencePair{
			Winner: append([]int(nil), pr[0].IDs...),
			Loser:  append([]int(nil), pr[1].IDs...),
		})
	}
	uniform, uok := e.graph.UniformEpoch()
	poolCoherent := e.graph.Len() == 0 || (uok && uniform == fv.id)
	if e.pool != nil && poolCoherent {
		for _, smp := range e.pool.Samples {
			s.Samples = append(s.Samples, append([]float64(nil), smp.W...))
			s.Weights = append(s.Weights, smp.Q)
		}
	}
	return s
}

// remapStable translates one side of a v2 preference from stable catalogue
// IDs into the restore-time epoch: dense holds the surviving members'
// dense positions, kept their stable IDs, dropped how many members
// vanished from the catalogue. A nil IDMap is the static identity mapping
// over n items (out-of-range stable IDs count as vanished, not as errors —
// a v2 snapshot moved across deployments shrinks gracefully).
func remapStable(ids *catalog.IDMap, n int, stable []int) (dense, kept []int, dropped int) {
	for _, s := range stable {
		if ids == nil {
			if s < 0 || s >= n {
				dropped++
				continue
			}
			dense = append(dense, s)
			kept = append(kept, s)
			continue
		}
		d, ok := ids.DenseID(s)
		if !ok {
			dropped++
			continue
		}
		dense = append(dense, d)
		kept = append(kept, s)
	}
	return dense, kept, dropped
}

// Restore replaces the engine's learned state with the snapshot's. The
// preference DAG is rebuilt against the restore-time epoch: v2 preferences
// are remapped from stable catalogue IDs (members that vanished from the
// catalogue are dropped and counted in Stats.RestoreDroppedItems;
// preferences that empty out, collapse to identical packages, or
// contradict a surviving preference are dropped and counted in
// Stats.RestoreDroppedPrefs), while v1 preferences are interpreted as
// dense positions in the restore-time space (the legacy semantics — a
// malformed v1 snapshot is still an error, as before). Preference vectors
// are always recomputed from the restore-time space. The sample pool is
// installed verbatim only when the snapshot was captured under the
// restore-time epoch and nothing was dropped; otherwise it is discarded
// and lazily redrawn under the rebuilt constraint set.
func (e *Engine) Restore(s *Snapshot) error {
	if s == nil {
		return errors.New("core: nil snapshot")
	}
	if !validVersion(s.Version) {
		return fmt.Errorf("core: snapshot version %d, want 1 or %d", s.Version, snapshotVersion)
	}
	if len(s.Samples) != len(s.Weights) {
		return fmt.Errorf("core: snapshot has %d samples but %d weights", len(s.Samples), len(s.Weights))
	}
	dims := e.cfg.Profile.Dims()
	for i, w := range s.Samples {
		if len(w) != dims {
			return fmt.Errorf("core: snapshot sample %d has %d dims, space has %d", i, len(w), dims)
		}
	}
	ep := e.sh.epoch()
	fv := ep.view()
	g := prefgraph.New()
	droppedItems, droppedPrefs := 0, 0
	for i, pr := range s.Preferences {
		if len(pr.Winner) == 0 || len(pr.Loser) == 0 {
			// No interaction can produce a preference over the empty
			// package (Top-k-Pkg never returns ∅), so such a snapshot is
			// corrupt or hand-crafted — in either version.
			return fmt.Errorf("core: snapshot preference %d: empty package", i)
		}
		var winner, loser, sw, sl pkgspace.Package
		if s.Version == 1 {
			// Legacy dense IDs: positions in the restore-time space, the
			// pre-stable-ID semantics. Out-of-range IDs stay hard errors —
			// there is no way to tell churn from corruption in v1.
			winner, loser = pkgspace.New(pr.Winner...), pkgspace.New(pr.Loser...)
			for _, p := range []pkgspace.Package{winner, loser} {
				if err := pkgspace.ValidateIDs(ep.space, p); err != nil {
					return fmt.Errorf("core: snapshot preference %d: %w", i, err)
				}
			}
			sw, sl = fv.stablePkg(winner), fv.stablePkg(loser)
		} else {
			if pkgspace.Equal(pkgspace.New(pr.Winner...), pkgspace.New(pr.Loser...)) {
				// A self-preference in the file itself (as opposed to one
				// produced by remap shrinkage below) is corruption.
				return fmt.Errorf("core: snapshot preference %d: identical packages", i)
			}
			wd, wk, wDrop := remapStable(ep.ids, len(ep.space.Items), pr.Winner)
			ld, lk, lDrop := remapStable(ep.ids, len(ep.space.Items), pr.Loser)
			droppedItems += wDrop + lDrop
			if len(wd) == 0 || len(ld) == 0 {
				droppedPrefs++
				continue
			}
			winner, loser = pkgspace.New(wd...), pkgspace.New(ld...)
			sw, sl = pkgspace.New(wk...), pkgspace.New(lk...)
			if sw.Signature() == sl.Signature() {
				// Both sides shrank to the same surviving package; a
				// preference over itself is meaningless, not corrupt.
				droppedPrefs++
				continue
			}
		}
		wv := pkgspace.Vector(ep.space, winner)
		lv := pkgspace.Vector(ep.space, loser)
		edgesBefore := g.Edges()
		// The graph is rebuilt wholesale under one epoch, so no node can
		// be refreshed here — the flag is meaningful only for live
		// feedback (see Engine.Feedback).
		if _, err := g.AddPreferenceAt(ep.id, sw, wv, sl, lv); err != nil {
			if s.Version != 1 && errors.Is(err, prefgraph.ErrCycle) && droppedItems > 0 {
				// Dropping members can make two once-distinct preferences
				// contradictory; keep the earlier one, count the loss.
				// Without any observed shrinkage, though, a contradiction
				// was in the file itself — corruption, like a self-loop —
				// and must not be masked as churn.
				droppedPrefs++
				continue
			}
			return fmt.Errorf("core: snapshot preference %d: %w", i, err)
		}
		if s.Version != 1 && g.Edges() == edgesBefore && droppedItems > 0 {
			// Shrinkage merged two once-distinct preferences into one
			// edge (AddPreferenceAt treats the second as a duplicate
			// no-op). One recorded preference was lost to the remap, so
			// the operator-facing counter must say so. Self-written
			// snapshots never contain literal duplicates (Preferences()
			// enumerates edges), so with no shrinkage anywhere the silent
			// legacy merge only applies to hand-crafted files.
			droppedPrefs++
		}
	}
	e.graph = g
	e.stats = s.Stats
	e.stats.RestoreDroppedItems += droppedItems
	e.stats.RestoreDroppedPrefs += droppedPrefs
	e.lastDropItems, e.lastDropPrefs = droppedItems, droppedPrefs
	// Pin feedback identity to the restore-time epoch: a click arriving
	// before the next Recommend must resolve against the same space the
	// preference vectors were just rebuilt from.
	e.fb = &fv
	// The pool fast path: install the snapshot's samples verbatim only
	// when the rebuilt constraints are provably the geometry the pool was
	// maintained against — the snapshot-side coherence promise (see
	// Snapshot) plus a restore under the same epoch of the same space
	// with the same stable-ID assignment (epoch counters are per-process;
	// the two hashes catch a snapshot moved to a deployment that merely
	// shares the number, or the values with identities permuted) with
	// nothing dropped. v1 predates the hashes and keeps its legacy
	// epoch-only gate. A pool with no preferences has no constraints and
	// is space-free.
	sameSpace := s.Epoch == ep.id &&
		(s.Version == 1 || (s.SpaceHash == ep.space.Hash() && s.IDHash == ep.idh))
	keepPool := len(s.Samples) > 0 &&
		droppedItems == 0 && droppedPrefs == 0 &&
		(len(s.Preferences) == 0 || sameSpace)
	if !keepPool {
		// The pool was maintained against another epoch's geometry (or
		// against constraints that no longer all survive); a stale pool
		// would bias every recommendation until the next feedback, so it
		// is redrawn lazily under the rebuilt constraint set instead.
		e.pool = nil
		return nil
	}
	samples := make([]sampling.Sample, len(s.Samples))
	for i := range s.Samples {
		samples[i] = sampling.Sample{
			W: append([]float64(nil), s.Samples[i]...),
			Q: s.Weights[i],
		}
	}
	e.pool = maintain.NewPool(samples)
	e.pool.NewChecker = e.newChecker
	return nil
}

// WriteSnapshot encodes a snapshot as JSON — the codec behind Save, usable
// without an engine (e.g. a session store persisting evicted sessions).
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	if s == nil {
		return errors.New("core: nil snapshot")
	}
	return json.NewEncoder(w).Encode(s)
}

// ReadSnapshot decodes a snapshot written by WriteSnapshot/Save — either
// wire version. It checks the version and internal consistency, but not
// compatibility with any particular item space — Restore does that.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if !validVersion(s.Version) {
		return nil, fmt.Errorf("core: snapshot version %d, want 1 or %d", s.Version, snapshotVersion)
	}
	if len(s.Samples) != len(s.Weights) {
		return nil, fmt.Errorf("core: snapshot has %d samples but %d weights", len(s.Samples), len(s.Weights))
	}
	return &s, nil
}

// Save writes the engine's snapshot as JSON.
func (e *Engine) Save(w io.Writer) error {
	return WriteSnapshot(w, e.Snapshot())
}

// Load restores the engine from JSON written by Save.
func (e *Engine) Load(r io.Reader) error {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("core: decoding snapshot: %w", err)
	}
	return e.Restore(&s)
}
