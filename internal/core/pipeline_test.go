package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/ranking"
	"toppkg/internal/search"
)

func pipelineConfig(t *testing.T, sem ranking.Semantics, cacheSize, parallelism int, seed int64) Config {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	return Config{
		Items:           dataset.UNI(24, 2, rng),
		Profile:         feature.SimpleProfile(feature.AggSum, feature.AggAvg),
		MaxPackageSize:  3,
		K:               3,
		RandomCount:     2,
		Semantics:       sem,
		SampleCount:     30,
		Seed:            seed,
		Parallelism:     parallelism,
		SearchCacheSize: cacheSize,
		Search:          search.Options{MaxQueue: 32, MaxAccessed: 100},
	}
}

func recommendedKey(s *Slate) string {
	out := ""
	for _, r := range s.Recommended {
		out += fmt.Sprintf("%s=%.17g;", r.Pkg.Signature(), r.Score)
	}
	return out
}

func slateKey(s *Slate) string {
	out := recommendedKey(s) + "|"
	for _, p := range s.Random {
		out += p.Signature() + ";"
	}
	return out
}

// TestRecommendCachedMatchesUncached drives a cached+parallel engine and an
// uncached sequential engine through identical elicitation rounds: every
// slate must be bit-identical — the engine-level face of the ranking
// oracle property (Quantum 0 keeps the pipeline exact).
func TestRecommendCachedMatchesUncached(t *testing.T) {
	for _, sem := range []ranking.Semantics{ranking.EXP, ranking.TKP, ranking.MPO} {
		for seed := int64(1); seed <= 6; seed++ {
			plain, err := New(pipelineConfig(t, sem, -1, 0, seed))
			if err != nil {
				t.Fatal(err)
			}
			cached, err := New(pipelineConfig(t, sem, 0, 3, seed))
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 4; round++ {
				ps, err := plain.Recommend()
				if err != nil {
					t.Fatalf("%v seed %d round %d: plain: %v", sem, seed, round, err)
				}
				cs, err := cached.Recommend()
				if err != nil {
					t.Fatalf("%v seed %d round %d: cached: %v", sem, seed, round, err)
				}
				if slateKey(ps) != slateKey(cs) {
					t.Fatalf("%v seed %d round %d: slates differ:\nplain  %s\ncached %s",
						sem, seed, round, slateKey(ps), slateKey(cs))
				}
				pick := (round * 7) % len(ps.All)
				if err := plain.Click(ps.All[pick], ps.All); err != nil {
					t.Fatal(err)
				}
				if err := cached.Click(cs.All[pick], cs.All); err != nil {
					t.Fatal(err)
				}
			}
			st := cached.Stats()
			if st.RankSamples == 0 || st.RankDistinct == 0 {
				t.Errorf("%v seed %d: pipeline counters not populated: %+v", sem, seed, st)
			}
			if st.RankCacheHits == 0 {
				t.Errorf("%v seed %d: no cache hits across 4 rounds: %+v", sem, seed, st)
			}
			if st.RankSearches+st.RankCacheHits != st.RankDistinct {
				t.Errorf("%v seed %d: searches %d + hits %d != distinct %d",
					sem, seed, st.RankSearches, st.RankCacheHits, st.RankDistinct)
			}
			if ps := plain.Stats(); ps.RankCacheHits != 0 || ps.RankSearches != ps.RankDistinct {
				t.Errorf("%v seed %d: uncached engine hit a cache: %+v", sem, seed, ps)
			}
		}
	}
}

// TestSharedCacheInvalidateKeepsServing: invalidation mid-flight only
// costs re-searches, it never changes results.
func TestSharedCacheInvalidateKeepsServing(t *testing.T) {
	sh, err := NewShared(pipelineConfig(t, ranking.EXP, 0, 0, 9))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sh.NewEngine(9)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := eng.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	sh.InvalidateSearchCache()
	s2, err := eng.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	// Exploration randoms advance the engine's rng each round; only the
	// ranked half is cache-dependent and must be unchanged.
	if recommendedKey(s1) != recommendedKey(s2) {
		t.Error("invalidation changed an unchanged engine's ranked slate")
	}
	if hits := eng.Stats().RankCacheHits; hits != 0 {
		t.Errorf("post-invalidate round hit stale entries: %d", hits)
	}
	if sh.SearchCache().Stats().Epoch != 1 {
		t.Errorf("epoch = %d", sh.SearchCache().Stats().Epoch)
	}
}

// TestConcurrentRecommendSharedIndex runs many engines over one shared
// index and result cache from parallel goroutines (run with -race), then
// replays each session in isolation with caching disabled: concurrent
// cross-session cache sharing must not change anyone's slates.
func TestConcurrentRecommendSharedIndex(t *testing.T) {
	const sessions = 8
	sh, err := NewShared(pipelineConfig(t, ranking.EXP, 0, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	finals := make([]string, sessions)
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng, err := sh.NewEngine(int64(100 + i))
			if err != nil {
				errs <- err
				return
			}
			var slate *Slate
			for round := 0; round < 3; round++ {
				slate, err = eng.Recommend()
				if err != nil {
					errs <- fmt.Errorf("session %d round %d: %w", i, round, err)
					return
				}
				if round < 2 {
					if err := eng.Click(slate.All[(i+round)%len(slate.All)], slate.All); err != nil {
						errs <- err
						return
					}
				}
			}
			finals[i] = slateKey(slate)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Isolated replay: same seeds, no cache, sequential.
	cfg := pipelineConfig(t, ranking.EXP, -1, 0, 1)
	for i := 0; i < sessions; i++ {
		shp, err := NewShared(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := shp.NewEngine(int64(100 + i))
		if err != nil {
			t.Fatal(err)
		}
		var slate *Slate
		for round := 0; round < 3; round++ {
			slate, err = eng.Recommend()
			if err != nil {
				t.Fatal(err)
			}
			if round < 2 {
				if err := eng.Click(slate.All[(i+round)%len(slate.All)], slate.All); err != nil {
					t.Fatal(err)
				}
			}
		}
		if finals[i] != slateKey(slate) {
			t.Errorf("session %d: concurrent shared-cache slate differs from isolated replay:\nshared   %s\nisolated %s",
				i, finals[i], slateKey(slate))
		}
	}
}

// TestRestoredEngineReusesCache: restoring a snapshot replaces the pool
// but not the index, so the shared cache keeps serving the surviving
// vectors.
func TestRestoredEngineReusesCache(t *testing.T) {
	sh, err := NewShared(pipelineConfig(t, ranking.EXP, 0, 0, 4))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sh.NewEngine(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Recommend(); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	fresh, err := sh.NewEngine(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Recommend(); err != nil {
		t.Fatal(err)
	}
	st := fresh.Stats()
	if st.RankCacheHits == 0 {
		t.Errorf("restored engine re-searched everything: %+v", st)
	}
}
