package core

import (
	"math/rand"
	"testing"

	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/gaussmix"
	"toppkg/internal/pkgspace"
	"toppkg/internal/ranking"
	"toppkg/internal/search"
)

func testConfig(t *testing.T, n int) Config {
	t.Helper()
	rng := rand.New(rand.NewSource(100))
	return Config{
		Items:          dataset.UNI(n, 3, rng),
		Profile:        feature.SimpleProfile(feature.AggSum, feature.AggAvg, feature.AggMax),
		MaxPackageSize: 3,
		K:              3,
		SampleCount:    200,
		Seed:           7,
	}
}

func TestNewDefaults(t *testing.T) {
	e, err := New(testConfig(t, 30))
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.K != 3 || e.cfg.RandomCount != 3 || e.cfg.Sigma != 3 {
		t.Errorf("defaults: K=%d RandomCount=%d Sigma=%d", e.cfg.K, e.cfg.RandomCount, e.cfg.Sigma)
	}
	if e.cfg.Sampler != SamplerMCMC || e.cfg.Checker != CheckerHybrid {
		t.Errorf("defaults: sampler=%s checker=%s", e.cfg.Sampler, e.cfg.Checker)
	}
	if e.cfg.Psi != 1 {
		t.Errorf("default Psi = %g", e.cfg.Psi)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing profile accepted")
	}
	cfg := testConfig(t, 10)
	cfg.Items = nil
	if _, err := New(cfg); err == nil {
		t.Error("missing items accepted")
	}
}

func TestRecommendShape(t *testing.T) {
	e, err := New(testConfig(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	slate, err := e.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if len(slate.Recommended) != 3 {
		t.Errorf("recommended %d, want 3", len(slate.Recommended))
	}
	if len(slate.Random) != 3 {
		t.Errorf("random %d, want 3", len(slate.Random))
	}
	if len(slate.All) != len(slate.Recommended)+len(slate.Random) {
		t.Errorf("All has %d entries", len(slate.All))
	}
	// No duplicates in the slate.
	seen := map[string]bool{}
	for _, p := range slate.All {
		sig := p.Signature()
		if seen[sig] {
			t.Errorf("duplicate package %s in slate", sig)
		}
		seen[sig] = true
	}
	// Recommended packages respect φ.
	for _, r := range slate.Recommended {
		if r.Pkg.Size() > 3 || r.Pkg.Size() == 0 {
			t.Errorf("package %s violates size bounds", r.Pkg)
		}
	}
}

func TestFeedbackNarrowsSamples(t *testing.T) {
	e, err := New(testConfig(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Samples(); err != nil {
		t.Fatal(err)
	}
	winner := pkgspace.New(0, 1)
	loser := pkgspace.New(2)
	if err := e.Feedback(winner, loser); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Feedback != 1 {
		t.Errorf("Feedback count = %d", st.Feedback)
	}
	if st.ConstraintsActive != 1 {
		t.Errorf("ConstraintsActive = %d", st.ConstraintsActive)
	}
	// Every sample satisfies the constraint after maintenance.
	wv, err := e.PackageVector(winner)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := e.PackageVector(loser)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := e.Samples()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range samples {
		dw := feature.Dot(s.W, wv)
		dl := feature.Dot(s.W, lv)
		if dw < dl-1e-9 {
			t.Fatalf("sample %d violates recorded preference: %g < %g", i, dw, dl)
		}
	}
}

func TestClickGeneratesPairwisePreferences(t *testing.T) {
	e, err := New(testConfig(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	slate, err := e.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Click(slate.All[0], slate.All); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	want := len(slate.All) - 1 - st.CyclesSkipped
	if st.Feedback != want {
		t.Errorf("Feedback = %d, want %d (σ−1 minus cycles)", st.Feedback, want)
	}
}

func TestCycleHandledGracefully(t *testing.T) {
	e, err := New(testConfig(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	a, b := pkgspace.New(0), pkgspace.New(1)
	if err := e.Feedback(a, b); err != nil {
		t.Fatal(err)
	}
	// Direct contradiction.
	shown := []pkgspace.Package{a, b}
	if err := e.Click(b, shown); err != nil {
		t.Fatalf("Click with contradiction errored: %v", err)
	}
	if e.Stats().CyclesSkipped != 1 {
		t.Errorf("CyclesSkipped = %d, want 1", e.Stats().CyclesSkipped)
	}
}

func TestSamplersSelectable(t *testing.T) {
	for _, kind := range []SamplerKind{SamplerRejection, SamplerImportance, SamplerMCMC} {
		cfg := testConfig(t, 30)
		cfg.Sampler = kind
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Samples(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	cfg := testConfig(t, 30)
	cfg.Sampler = "bogus"
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Samples(); err == nil {
		t.Error("bogus sampler accepted")
	}
}

func TestCheckersSelectable(t *testing.T) {
	for _, kind := range []CheckerKind{CheckerNaive, CheckerTA, CheckerHybrid} {
		cfg := testConfig(t, 30)
		cfg.Checker = kind
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Samples(); err != nil {
			t.Fatal(err)
		}
		if err := e.Feedback(pkgspace.New(0, 1), pkgspace.New(2)); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestSemanticsSelectable(t *testing.T) {
	for _, sem := range []ranking.Semantics{ranking.EXP, ranking.TKP, ranking.MPO} {
		cfg := testConfig(t, 30)
		cfg.Semantics = sem
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		slate, err := e.Recommend()
		if err != nil {
			t.Fatalf("%v: %v", sem, err)
		}
		if len(slate.Recommended) == 0 {
			t.Fatalf("%v: empty recommendation", sem)
		}
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	run := func() []string {
		e, err := New(testConfig(t, 40))
		if err != nil {
			t.Fatal(err)
		}
		slate, err := e.Recommend()
		if err != nil {
			t.Fatal(err)
		}
		var sigs []string
		for _, p := range slate.All {
			sigs = append(sigs, p.Signature())
		}
		return sigs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slates differ at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestRandomPackageBounds(t *testing.T) {
	e, err := New(testConfig(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		p := e.RandomPackage()
		if p.Size() < 1 || p.Size() > 3 {
			t.Fatalf("random package size %d", p.Size())
		}
		if err := pkgspace.ValidateIDs(e.Space(), p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTopKForWeights(t *testing.T) {
	e, err := New(testConfig(t, 30))
	if err != nil {
		t.Fatal(err)
	}
	top, err := e.TopKForWeights([]float64{0.8, 0.1, 0.1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 4 {
		t.Fatalf("got %d packages", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Utility > top[i-1].Utility+1e-12 {
			t.Error("TopKForWeights not sorted")
		}
	}
	if _, err := e.TopKForWeights([]float64{1}, 2); err == nil {
		t.Error("dims mismatch accepted")
	}
}

func TestInvalidateSamples(t *testing.T) {
	e, err := New(testConfig(t, 30))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := e.Samples()
	if err != nil {
		t.Fatal(err)
	}
	e.InvalidateSamples()
	s2, err := e.Samples()
	if err != nil {
		t.Fatal(err)
	}
	if &s1[0] == &s2[0] {
		t.Error("samples not regenerated")
	}
}

func TestPackageVectorValidation(t *testing.T) {
	e, err := New(testConfig(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.PackageVector(pkgspace.New(99)); err == nil {
		t.Error("invalid id accepted")
	}
}

func TestNoiseModelConfig(t *testing.T) {
	cfg := testConfig(t, 30)
	cfg.Psi = 0.8
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Samples(); err != nil {
		t.Fatal(err)
	}
	// With noise, feedback must still be recordable and maintenance run.
	if err := e.Feedback(pkgspace.New(0, 1), pkgspace.New(2)); err != nil {
		t.Fatal(err)
	}
}

func TestSearchOptionsPassThrough(t *testing.T) {
	cfg := testConfig(t, 30)
	cfg.Search = search.Options{ExpandAll: true}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Recommend(); err != nil {
		t.Fatal(err)
	}
}

// TestFeedbackBeforeSampling: feedback recorded before the first Recommend
// must constrain the initial pool.
func TestFeedbackBeforeSampling(t *testing.T) {
	e, err := New(testConfig(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	winner, loser := pkgspace.New(0, 1), pkgspace.New(2)
	if err := e.Feedback(winner, loser); err != nil {
		t.Fatal(err)
	}
	samples, err := e.Samples()
	if err != nil {
		t.Fatal(err)
	}
	wv, _ := e.PackageVector(winner)
	lv, _ := e.PackageVector(loser)
	for i, s := range samples {
		if feature.Dot(s.W, wv) < feature.Dot(s.W, lv)-1e-9 {
			t.Fatalf("initial sample %d ignores pre-sampling feedback", i)
		}
	}
}

func TestSharedEngineEquivalentToNew(t *testing.T) {
	cfg := testConfig(t, 40)
	sh, err := NewShared(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slate := func(e *Engine) []string {
		s, err := e.Recommend()
		if err != nil {
			t.Fatal(err)
		}
		var sigs []string
		for _, p := range s.All {
			sigs = append(sigs, p.Signature())
		}
		return sigs
	}
	direct, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	derived, err := sh.NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	if derived.Space() != sh.Space() || derived.Index() != sh.Index() {
		t.Fatal("derived engine rebuilt the shared space/index")
	}
	a, b := slate(direct), slate(derived)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Shared.NewEngine(0) diverges from New at %d: %s vs %s", i, a[i], b[i])
		}
	}
	seeded, err := sh.NewEngine(cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	c := slate(seeded)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("NewEngine(cfg.Seed) diverges from New at %d", i)
		}
	}
}

func TestSharedEnginesAreIndependent(t *testing.T) {
	sh, err := NewShared(testConfig(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	a, err := sh.NewEngine(11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sh.NewEngine(12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recommend(); err != nil {
		t.Fatal(err)
	}
	if err := a.Feedback(pkgspace.New(0), pkgspace.New(1)); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().Feedback; got != 0 {
		t.Fatalf("feedback leaked across engines: %d", got)
	}
	// The reverse preference is a cycle in a but fresh in b.
	if err := b.Feedback(pkgspace.New(1), pkgspace.New(0)); err != nil {
		t.Fatalf("independent engine rejected fresh feedback: %v", err)
	}
	if a.Stats().Feedback != 1 || b.Stats().Feedback != 1 {
		t.Fatalf("stats entangled: a=%d b=%d", a.Stats().Feedback, b.Stats().Feedback)
	}
}

func TestSharedValidation(t *testing.T) {
	if _, err := NewShared(Config{}); err == nil {
		t.Error("NewShared accepted missing profile")
	}
	cfg := testConfig(t, 20)
	cfg.Prior = gaussmix.Gaussian([]float64{0, 0}, 0.5) // 2 dims vs 3-dim profile
	if _, err := NewShared(cfg); err == nil {
		t.Error("NewShared accepted prior/profile dim mismatch")
	}
}
