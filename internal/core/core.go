// Package core implements the package recommender system of the paper: a
// linear utility over aggregate package features whose weights are
// uncertain (a Gaussian-mixture prior), learned through implicit feedback
// (clicks on recommended packages), with constrained sampling standing in
// for the closed-form posterior and Top-k-Pkg generating recommendations
// under a configurable ranking semantics.
//
// Typical use:
//
//	eng, err := core.New(core.Config{Items: items, Profile: profile})
//	slate, err := eng.Recommend()            // top packages + exploration
//	err = eng.Click(slate.All[2], slate.All) // user clicked the third
//	slate, err = eng.Recommend()             // now personalized
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"toppkg/internal/catalog"
	"toppkg/internal/feature"
	"toppkg/internal/gaussmix"
	"toppkg/internal/maintain"
	"toppkg/internal/pkgspace"
	"toppkg/internal/prefgraph"
	"toppkg/internal/ranking"
	"toppkg/internal/sampling"
	"toppkg/internal/search"
	"toppkg/internal/topk"
)

// SamplerKind selects the constrained sampling strategy (§3).
type SamplerKind string

// Sampling strategies.
const (
	SamplerRejection  SamplerKind = "rejection"
	SamplerImportance SamplerKind = "importance"
	SamplerMCMC       SamplerKind = "mcmc"
)

// CheckerKind selects the sample-maintenance strategy (§3.4).
type CheckerKind string

// Maintenance strategies.
const (
	CheckerNaive  CheckerKind = "naive"
	CheckerTA     CheckerKind = "ta"
	CheckerHybrid CheckerKind = "hybrid"
)

// Config configures an Engine. Zero values select the paper's defaults.
type Config struct {
	// Items is the item set T (required).
	Items []feature.Item
	// Profile is the aggregate feature profile V (required).
	Profile *feature.Profile
	// MaxPackageSize is φ (default 5).
	MaxPackageSize int
	// K is the number of recommended packages per slate (default 5).
	K int
	// RandomCount is the number of exploration packages added to each slate
	// (default K; the paper shows 5 recommended + 5 random).
	RandomCount int
	// Semantics is the ranking semantics (default EXP).
	Semantics ranking.Semantics
	// Sigma is TKP's σ (default K).
	Sigma int
	// Sampler selects the sampling strategy (default mcmc).
	Sampler SamplerKind
	// SampleCount is the size of the weight-vector sample pool
	// (default 1000).
	SampleCount int
	// Prior overrides the weight prior; by default a single Gaussian
	// centered at the origin with std 0.5 per dimension
	// (PriorComponents selects a random mixture instead).
	Prior *gaussmix.Mixture
	// PriorComponents sets the number of mixture components of the default
	// prior (default 1).
	PriorComponents int
	// Psi is the feedback noise model of §7: the probability any single
	// feedback is correct. Default 1 (noise-free).
	Psi float64
	// Checker selects the maintenance strategy (default hybrid).
	Checker CheckerKind
	// Gamma is the hybrid checker's γ (default 0.025).
	Gamma float64
	// DisableReduction turns off transitive reduction of the preference
	// graph (§3.3); on by default since it only removes redundant checks.
	DisableReduction bool
	// Search tunes the per-sample Top-k-Pkg runs (K is set internally).
	Search search.Options
	// Parallelism is the worker count for per-sample searches during
	// ranking (0/1 sequential, negative = GOMAXPROCS).
	Parallelism int
	// SearchCacheSize bounds the per-catalogue Top-k-Pkg result cache
	// shared by every engine derived from one Shared (0 selects
	// ranking.DefaultCacheSize; negative disables caching). Caching is
	// sound because a per-sample result depends only on the immutable
	// index, the weight vector, and the search options — feedback changes
	// which samples are in the pool, not what any vector's top-k is — so
	// samples surviving a feedback round reuse last round's packages.
	SearchCacheSize int
	// WeightQuantum quantizes sample weight vectors before the per-sample
	// search (see ranking.Options.Quantum). 0 keeps slates bit-identical
	// to the unbatched path; > 0 trades exactness for more dedup/cache
	// hits.
	WeightQuantum float64
	// Seed seeds the engine's random stream (default 1).
	Seed int64
	// MCMC / importance tuning; zero values take the samplers' defaults.
	MCMCLMax           float64
	MCMCThin           int
	MCMCBurnIn         int
	ImportanceGridRes  int
	ImportanceStd      float64
	ImportanceQuadtree bool
}

// Stats reports the engine's cumulative activity.
type Stats struct {
	// Feedback is the number of pairwise preferences recorded.
	Feedback int
	// ConstraintsActive is the size of the reduced constraint set in use.
	ConstraintsActive int
	// CyclesSkipped counts preferences dropped because they contradicted
	// earlier feedback.
	CyclesSkipped int
	// SamplesReplaced counts pool samples invalidated by feedback and
	// redrawn (§3.4).
	SamplesReplaced int
	// ReplacementFailures counts feedback events whose violating samples
	// could not be replaced because the valid region has (nearly) vanished
	// — e.g. inconsistent feedback from a noisy user on a noise-free
	// engine. The stale samples are kept; configure Psi < 1 to tolerate
	// noise instead (§7).
	ReplacementFailures int
	// InitialSampleFallbacks counts pool draws that exhausted the sampler's
	// attempt budget — the accumulated feedback admits (almost) no valid
	// weight vector, e.g. after catalogue churn re-vectorized old
	// preferences into contradiction — and were completed with
	// constraint-free prior draws instead of failing the recommend.
	InitialSampleFallbacks int
	// MaintenanceWork accumulates the checker's sample examinations.
	MaintenanceWork int
	// SampleAttempts accumulates raw sampler draws.
	SampleAttempts int
	// RestoreDroppedItems counts item occurrences silently removed from
	// restored preferences because the item had vanished from the catalogue
	// between snapshot and restore; RestoreDroppedPrefs counts preferences
	// dropped entirely (a side emptied out, both sides collapsed to the
	// same package, or the remapped preference contradicted a surviving
	// one). Both accumulate across a session's restores — nonzero values
	// are silent preference loss an operator should be able to see.
	RestoreDroppedItems int
	RestoreDroppedPrefs int
	// RankSamples, RankDistinct, RankCacheHits, and RankSearches
	// accumulate the Recommend pipeline's batching counters across rounds:
	// weight vectors ranked, distinct vectors left after
	// canonicalization/dedup, distinct vectors served from the shared
	// result cache, and Top-k-Pkg runs actually executed. The dedup ratio
	// is (RankSamples−RankDistinct)/RankSamples; the cache hit rate is
	// RankCacheHits/RankDistinct.
	RankSamples   int
	RankDistinct  int
	RankCacheHits int
	RankSearches  int
}

// Slate is one screenful of packages presented to the user: the system's
// current best guesses (exploitation) plus random packages (exploration),
// per §2.2.
type Slate struct {
	// Recommended is the ranked top-k under the configured semantics.
	Recommended []ranking.Ranked
	// Random is the exploration tail.
	Random []pkgspace.Package
	// All is every distinct package shown, recommended first.
	All []pkgspace.Package
	// Epoch identifies the catalogue epoch the slate was computed against
	// (0 for a static catalogue); Space is that epoch's feature space, so
	// callers can resolve item IDs and names consistently with the slate
	// even if the live catalogue swaps right after Recommend returns.
	Epoch uint64
	Space *feature.Space
}

// Engine is the package recommender. It is not safe for concurrent use.
type Engine struct {
	cfg   Config
	sh    *Shared // catalogue-wide state: epochs + shared result cache
	rng   *rand.Rand
	graph *prefgraph.Graph
	pool  *maintain.Pool
	stats Stats
	// lastDropItems/lastDropPrefs are the drop counts of the most recent
	// Restore on this engine (not cumulative — see Stats for that), so
	// callers reporting a single restore's loss need no arithmetic against
	// the snapshot's own counters.
	lastDropItems int
	lastDropPrefs int
	// fb is the identity view of the most recent slate this engine served:
	// that slate's epoch ID, feature space, and stable↔dense ID mapping.
	// Clicks and pairwise feedback refer to packages the user was shown,
	// so their item IDs are dense positions in — and their preference
	// vectors must be computed from, and their stable node identity
	// resolved through — that slate's epoch, not whatever the catalogue
	// has swapped to since. Only the space and ID map are retained (not
	// the whole epoch) so an idle session does not pin a retired epoch's
	// search index in memory. Nil until the first Recommend (feedback then
	// resolves the current epoch, the pre-live behavior); not persisted —
	// Restore re-pins the restore-time epoch (see Snapshot).
	fb *fbView
}

// fbView is the lightweight slice of an epoch that feedback resolution
// needs: dense item IDs are interpreted in space, and translated to stable
// catalogue identity through ids (nil for a static catalogue, where dense
// positions are the stable keys).
type fbView struct {
	id    uint64
	space *feature.Space
	ids   *catalog.IDMap
	// idh fingerprints the stable→dense assignment (identity for a
	// static catalogue): combined with space.Hash it identifies both the
	// vector geometry and the identity labeling of learned state.
	idh uint64
}

// stableIDs translates a package's dense member IDs into stable catalogue
// IDs. With a nil map (static catalogue) dense positions are the stable
// identity.
func (v fbView) stableIDs(p pkgspace.Package) []int {
	if v.ids == nil {
		return append([]int(nil), p.IDs...)
	}
	out := make([]int, len(p.IDs))
	for i, d := range p.IDs {
		out[i] = v.ids.StableID(d)
	}
	return out
}

// stablePkg is the package's stable-ID identity — the key learned state is
// stored under, immune to dense-ID remaps across epochs.
func (v fbView) stablePkg(p pkgspace.Package) pkgspace.Package {
	return pkgspace.New(v.stableIDs(p)...)
}

// Shared is the catalogue-wide half of an engine: the normalized
// configuration plus the feature space and search index of the catalogue's
// current epoch. Many engines (one per user session) derive from one
// Shared via NewEngine, skipping the O(n log n) index construction that
// dominates core.New. A Shared is safe for concurrent use; the engines it
// produces are independent and individually single-threaded.
//
// A Shared comes in two flavors. NewShared freezes one epoch at
// construction — the original immutable-catalogue behavior. NewLiveShared
// wraps a catalog.Catalog instead: every Recommend resolves the
// catalogue's current epoch with one atomic load, so mutations show up in
// the next request without any engine or manager restart, and a request in
// flight keeps the coherent epoch it started with.
type Shared struct {
	cfg   Config
	space *feature.Space // static epoch (nil when cat != nil)
	ix    *search.Index
	cat   *catalog.Catalog // live catalogue (nil for static)
	cache *ranking.Cache
	// idh is the static epoch's identity stable→dense hash (stable ID i
	// IS dense position i); unused when cat != nil.
	idh uint64
}

// epochView is one resolved, coherent catalogue epoch: everything a single
// request needs. For a static Shared the ID is always 0 and ids is nil
// (dense positions are the stable identity).
type epochView struct {
	id    uint64
	space *feature.Space
	ix    *search.Index
	ids   *catalog.IDMap
	idh   uint64
}

// epoch resolves the current epoch: wait-free, never blocks on a rebuild.
func (sh *Shared) epoch() epochView {
	if sh.cat != nil {
		ep := sh.cat.Current()
		return epochView{id: ep.ID, space: ep.Space, ix: ep.Index, ids: ep.IDs(), idh: ep.IDs().Hash()}
	}
	return epochView{id: 0, space: sh.space, ix: sh.ix, idh: sh.idh}
}

// view is the feedback-identity slice of the epoch.
func (ep epochView) view() fbView {
	return fbView{id: ep.id, space: ep.space, ids: ep.ids, idh: ep.idh}
}

// normalizeConfig applies the paper's defaults and validates everything
// that does not depend on the item set.
func normalizeConfig(cfg Config) (Config, error) {
	if cfg.Profile == nil {
		return cfg, fmt.Errorf("core: Config.Profile is required")
	}
	if cfg.MaxPackageSize == 0 {
		cfg.MaxPackageSize = 5
	}
	if cfg.K == 0 {
		cfg.K = 5
	}
	if cfg.RandomCount == 0 {
		cfg.RandomCount = cfg.K
	}
	if cfg.Sigma == 0 {
		cfg.Sigma = cfg.K
	}
	if cfg.Sampler == "" {
		cfg.Sampler = SamplerMCMC
	}
	if cfg.SampleCount == 0 {
		cfg.SampleCount = 1000
	}
	if cfg.PriorComponents == 0 {
		cfg.PriorComponents = 1
	}
	if cfg.Psi == 0 {
		cfg.Psi = 1
	}
	if cfg.Checker == "" {
		cfg.Checker = CheckerHybrid
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Prior != nil && cfg.Prior.Dims() != cfg.Profile.Dims() {
		return cfg, fmt.Errorf("core: prior has %d dims, profile has %d", cfg.Prior.Dims(), cfg.Profile.Dims())
	}
	return cfg, nil
}

// newCache builds the shared result cache cfg selects (nil = disabled).
func newCache(cfg Config) *ranking.Cache {
	if cfg.SearchCacheSize < 0 {
		return nil
	}
	return ranking.NewCache(cfg.SearchCacheSize)
}

// NewShared validates cfg, applies the paper's defaults, and builds the
// feature space and search index once — a static catalogue frozen at
// process start (epoch 0). Use NewLiveShared for a mutable catalogue.
func NewShared(cfg Config) (*Shared, error) {
	cfg, err := normalizeConfig(cfg)
	if err != nil {
		return nil, err
	}
	space, err := feature.NewSpace(cfg.Items, cfg.Profile, cfg.MaxPackageSize)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// A static catalogue's stable identity is its dense positions; hashing
	// the identity assignment here lets static and live deployments with
	// the same effective mapping agree on snapshot identity hashes.
	identity := make([]int, len(space.Items))
	for i := range identity {
		identity[i] = i
	}
	return &Shared{
		cfg:   cfg,
		space: space,
		ix:    search.NewIndex(space),
		cache: newCache(cfg),
		idh:   catalog.IDMapHash(identity),
	}, nil
}

// NewLiveShared builds a Shared over a mutable catalogue: engines resolve
// the catalogue's current epoch per Recommend instead of holding a frozen
// index. The catalogue owns the profile and φ, so cfg.Profile,
// cfg.MaxPackageSize, and cfg.Items are taken from cat (any values set on
// cfg for those fields are ignored). On every delta epoch swap the shared
// Top-k-Pkg result cache is reconciled against the change set (provably
// unaffected entries survive, re-keyed to the new epoch); full rebuilds
// invalidate it wholesale. Results are additionally keyed by epoch ID, so
// even a Recommend racing the swap can never mix epochs.
func NewLiveShared(cfg Config, cat *catalog.Catalog) (*Shared, error) {
	if cat == nil {
		return nil, fmt.Errorf("core: NewLiveShared requires a catalogue")
	}
	cfg.Profile = cat.Profile()
	cfg.MaxPackageSize = cat.MaxPackageSize()
	cfg.Items = nil
	cfg, err := normalizeConfig(cfg)
	if err != nil {
		return nil, err
	}
	sh := &Shared{cfg: cfg, cat: cat, cache: newCache(cfg)}
	if sh.cache != nil {
		// Delta swaps reconcile the result cache against the change set:
		// entries whose footprints prove the batch could not reach them are
		// re-keyed to the new epoch and keep serving; everything else is
		// dropped. Full rebuilds (and swaps without attribution) still wipe
		// the cache — results are additionally keyed by epoch ID, so even a
		// Recommend racing the swap can never mix epochs.
		cat.Subscribe(func(ep *catalog.Epoch, cs *catalog.ChangeSet) {
			if cs == nil || cs.Full {
				sh.cache.Invalidate()
				return
			}
			sh.cache.Reconcile(ranking.Swap{
				Parent:    cs.Parent,
				Next:      ep.ID,
				Dirty:     cs.Dirty,
				Fresh:     cs.Fresh,
				Touched:   cs.Touched,
				Remap:     cs.Remap,
				OldSpace:  cs.OldSpace,
				Space:     ep.Space,
				Partition: cs.Partition,
			})
		})
	}
	return sh, nil
}

// Space exposes the current epoch's feature space.
func (sh *Shared) Space() *feature.Space { return sh.epoch().space }

// Index exposes the current epoch's search index (safe for concurrent TopK
// runs; immutable once published).
func (sh *Shared) Index() *search.Index { return sh.epoch().ix }

// Epoch reports the current catalogue epoch ID (always 0 for a static
// Shared; live epochs start at 1).
func (sh *Shared) Epoch() uint64 { return sh.epoch().id }

// EpochInfo reports one coherent (epoch ID, item count) pair — resolved
// from a single epoch, so a swap between two separate Epoch()/Space()
// calls cannot pair an ID with another epoch's item count.
func (sh *Shared) EpochInfo() (id uint64, items int) {
	ep := sh.epoch()
	return ep.id, len(ep.space.Items)
}

// EpochIdentity reports the current epoch's content fingerprints in one
// coherent read: the epoch ID, item count, the stable→dense assignment
// hash (catalog.IDMapHash over the epoch's ID map), and the feature-space
// geometry hash. Two processes reporting equal idmap/space hashes serve
// recommendations over identical catalogue content whatever their
// per-process epoch counters say — the cross-shard convergence check in
// the sharded serving tier compares exactly these.
func (sh *Shared) EpochIdentity() (id uint64, items int, idmapHash, spaceHash uint64) {
	ep := sh.epoch()
	return ep.id, len(ep.space.Items), ep.idh, ep.space.Hash()
}

// Catalog exposes the live catalogue behind this Shared, nil when the
// catalogue is static.
func (sh *Shared) Catalog() *catalog.Catalog { return sh.cat }

// SearchCache exposes the shared per-catalogue result cache (nil when the
// config disabled caching). Safe for concurrent use; see ranking.Cache.
func (sh *Shared) SearchCache() *ranking.Cache { return sh.cache }

// InvalidateSearchCache drops every cached Top-k-Pkg result and advances
// the cache epoch. Results depend only on the immutable index, so the only
// reason to call this is replacing the catalogue behind a rebuilt Shared's
// back — it exists as the safety valve for such surgery and for tests.
func (sh *Shared) InvalidateSearchCache() {
	if sh.cache != nil {
		sh.cache.Invalidate()
	}
}

// NewEngine derives an independent engine over the shared space and index:
// its own random stream, preference graph, and sample pool. seed
// differentiates sessions; 0 falls back to the shared config's seed, so
// Shared{cfg}.NewEngine(0) behaves exactly like New(cfg).
func (sh *Shared) NewEngine(seed int64) (*Engine, error) {
	cfg := sh.cfg
	if seed != 0 {
		cfg.Seed = seed
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Prior == nil {
		cfg.Prior = gaussmix.DefaultPrior(cfg.Profile.Dims(), cfg.PriorComponents, rng)
	}
	if cfg.Prior.Dims() != cfg.Profile.Dims() {
		return nil, fmt.Errorf("core: prior has %d dims, profile has %d", cfg.Prior.Dims(), cfg.Profile.Dims())
	}
	return &Engine{
		cfg:   cfg,
		sh:    sh,
		rng:   rng,
		graph: prefgraph.New(),
	}, nil
}

// New validates the configuration and builds an engine. Sampling is lazy:
// the pool is drawn on the first Recommend. Callers creating many engines
// over one catalogue should build a Shared once and use NewEngine instead.
func New(cfg Config) (*Engine, error) {
	sh, err := NewShared(cfg)
	if err != nil {
		return nil, err
	}
	return sh.NewEngine(0)
}

// Space exposes the current epoch's feature space (items, profile,
// normalizer). With a live catalogue, successive calls may observe
// different epochs; a Slate's Space field pins the epoch a slate used.
func (e *Engine) Space() *feature.Space { return e.sh.epoch().space }

// Index exposes the current epoch's search index for direct Top-k-Pkg
// runs.
func (e *Engine) Index() *search.Index { return e.sh.epoch().ix }

// Epoch reports the catalogue epoch the engine would serve from right now.
func (e *Engine) Epoch() uint64 { return e.sh.epoch().id }

// Stats returns the cumulative counters.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.ConstraintsActive = len(e.constraints())
	return s
}

// FeedbackCount returns the number of recorded pairwise preferences
// without recomputing the reduced constraint set (unlike Stats).
func (e *Engine) FeedbackCount() int { return e.stats.Feedback }

// RestoreDrops reports the cumulative restore-time loss counters (items
// dropped from remapped preferences, preferences dropped entirely) without
// recomputing the reduced constraint set (unlike Stats).
func (e *Engine) RestoreDrops() (items, prefs int) {
	return e.stats.RestoreDroppedItems, e.stats.RestoreDroppedPrefs
}

// LastRestoreDrops reports what the most recent Restore on this engine
// dropped — zero if it never restored. Unlike RestoreDrops this is not
// cumulative across the session's history, so operators reporting one
// restore's loss read it directly.
func (e *Engine) LastRestoreDrops() (items, prefs int) {
	return e.lastDropItems, e.lastDropPrefs
}

// Graph exposes the preference DAG (read-mostly; use Feedback to mutate).
func (e *Engine) Graph() *prefgraph.Graph { return e.graph }

// FeedbackSpace is the space feedback package IDs are interpreted in: the
// epoch of the engine's most recent slate, falling back to the current
// epoch before any Recommend. Callers validating click/feedback payloads
// must use it rather than Space(), or a catalogue swap between a slate and
// its click would misread (or reject) the slate's item IDs.
func (e *Engine) FeedbackSpace() *feature.Space {
	return e.feedbackView().space
}

// FeedbackEpoch is the catalogue epoch feedback identity currently
// resolves against: the most recent slate's (or restore's) epoch.
func (e *Engine) FeedbackEpoch() uint64 { return e.feedbackView().id }

// feedbackView resolves the identity view feedback is interpreted in.
func (e *Engine) feedbackView() fbView {
	if e.fb == nil {
		// Memoize the fallback: a click arriving before this incarnation's
		// first Recommend (e.g. right after an eviction restore) must
		// validate and vectorize winner and loser against ONE epoch, not
		// re-resolve per call with a swap possibly landing in between.
		v := e.sh.epoch().view()
		e.fb = &v
	}
	return *e.fb
}

// PackageVector computes the normalized aggregate vector of a package
// against the feedback space (see FeedbackSpace).
func (e *Engine) PackageVector(p pkgspace.Package) ([]float64, error) {
	sp := e.FeedbackSpace()
	if err := pkgspace.ValidateIDs(sp, p); err != nil {
		return nil, err
	}
	return pkgspace.Vector(sp, p), nil
}

func (e *Engine) constraints() []prefgraph.Constraint {
	return e.graph.Constraints(!e.cfg.DisableReduction)
}

// Sampler builds the configured sampling strategy over the current
// feedback constraints.
func (e *Engine) Sampler() (sampling.Sampler, error) {
	v := sampling.NewValidator(e.cfg.Profile.Dims(), e.constraints())
	v.Psi = e.cfg.Psi
	switch e.cfg.Sampler {
	case SamplerRejection:
		return &sampling.Rejection{Prior: e.cfg.Prior, V: v}, nil
	case SamplerImportance:
		return &sampling.Importance{
			Prior:       e.cfg.Prior,
			V:           v,
			GridRes:     e.cfg.ImportanceGridRes,
			ProposalStd: e.cfg.ImportanceStd,
			UseQuadtree: e.cfg.ImportanceQuadtree,
		}, nil
	case SamplerMCMC:
		return &sampling.MCMC{
			Prior:  e.cfg.Prior,
			V:      v,
			LMax:   e.cfg.MCMCLMax,
			Thin:   e.cfg.MCMCThin,
			BurnIn: e.cfg.MCMCBurnIn,
		}, nil
	}
	return nil, fmt.Errorf("core: unknown sampler %q", e.cfg.Sampler)
}

func (e *Engine) newChecker(p *topk.Pool) maintain.Checker {
	switch e.cfg.Checker {
	case CheckerNaive:
		return &maintain.Naive{P: p}
	case CheckerTA:
		return &maintain.TA{P: p}
	default:
		return &maintain.Hybrid{P: p, Gamma: e.cfg.Gamma}
	}
}

// ensureSamples draws the initial pool if none exists yet.
func (e *Engine) ensureSamples() error {
	if e.pool != nil {
		return nil
	}
	s, err := e.Sampler()
	if err != nil {
		return err
	}
	res, err := s.Sample(e.rng, e.cfg.SampleCount)
	e.stats.SampleAttempts += res.Attempts
	if err != nil {
		if !errors.Is(err, sampling.ErrTooManyRejections) {
			return fmt.Errorf("core: initial sampling: %w", err)
		}
		// The feedback set leaves (almost) no valid weight vectors — e.g.
		// preferences re-vectorized across catalogue epochs now contradict
		// each other, or a noisy user answered inconsistently. Mirror the
		// maintenance path in applyConstraint: degrade rather than fail
		// the interaction. Keep whatever the sampler did accept and top
		// the pool up with prior draws — the §7 noise model's limit: under
		// total inconsistency the posterior collapses to the prior.
		e.stats.InitialSampleFallbacks++
		res.Samples = e.fillFromPrior(res.Samples)
	}
	e.pool = maintain.NewPool(res.Samples)
	e.pool.NewChecker = e.newChecker
	return nil
}

// fillFromPrior tops samples up to SampleCount with constraint-free prior
// draws (box-checked, clamped as a last resort so the fill always
// terminates).
func (e *Engine) fillFromPrior(samples []sampling.Sample) []sampling.Sample {
	box := sampling.NewValidator(e.cfg.Profile.Dims(), nil)
	w := make([]float64, e.cfg.Profile.Dims())
	attempts := 0
	for len(samples) < e.cfg.SampleCount {
		e.cfg.Prior.SampleInto(e.rng, w)
		e.stats.SampleAttempts++
		attempts++
		if !box.InBox(w) {
			if attempts < 50*e.cfg.SampleCount {
				continue
			}
			for i := range w {
				w[i] = math.Max(-1, math.Min(1, w[i]))
			}
		}
		samples = append(samples, sampling.Sample{W: append([]float64(nil), w...), Q: 1})
	}
	return samples
}

// Samples returns the current weight-vector pool, drawing it if needed.
func (e *Engine) Samples() ([]sampling.Sample, error) {
	if err := e.ensureSamples(); err != nil {
		return nil, err
	}
	return e.pool.Samples, nil
}

// InvalidateSamples discards the pool so the next Recommend redraws it from
// scratch (mainly for experiments comparing maintenance to regeneration).
func (e *Engine) InvalidateSamples() { e.pool = nil }

// Recommend assembles a slate: the top-K packages under the configured
// semantics plus RandomCount random exploration packages. Per-sample
// searches run through the batched pipeline — duplicate weight vectors are
// searched once, vectors seen in an earlier round are served from the
// shared result cache, and the remainder is sharded across
// Config.Parallelism workers (see Stats' Rank* counters).
//
// The catalogue epoch is resolved once at entry and pinned for the whole
// call: ranking, cache keys, and the exploration tail all use the same
// coherent snapshot even if the live catalogue swaps mid-request. The
// slate records the epoch (and its space) it was computed against.
func (e *Engine) Recommend() (*Slate, error) {
	if err := e.ensureSamples(); err != nil {
		return nil, err
	}
	ep := e.sh.epoch()
	var m ranking.Metrics
	ranked, err := ranking.Rank(ep.ix, e.pool.Samples, e.cfg.Semantics, ranking.Options{
		K:           e.cfg.K,
		Sigma:       e.cfg.Sigma,
		Parallelism: e.cfg.Parallelism,
		Search:      e.cfg.Search,
		Quantum:     e.cfg.WeightQuantum,
		Cache:       e.sh.cache,
		Epoch:       ep.id,
		Metrics:     &m,
	})
	e.stats.RankSamples += m.Samples
	e.stats.RankDistinct += m.Distinct
	e.stats.RankCacheHits += m.CacheHits
	e.stats.RankSearches += m.Searches
	if err != nil {
		return nil, fmt.Errorf("core: ranking: %w", err)
	}
	fv := ep.view()
	e.fb = &fv // feedback on this slate resolves against its epoch
	slate := &Slate{Recommended: ranked, Epoch: ep.id, Space: ep.space}
	seen := make(map[string]bool, len(ranked)+e.cfg.RandomCount)
	for _, r := range ranked {
		slate.All = append(slate.All, r.Pkg)
		seen[r.Pkg.Signature()] = true
	}
	for tries := 0; len(slate.Random) < e.cfg.RandomCount && tries < 50*e.cfg.RandomCount; tries++ {
		p := e.randomPackage(ep.space)
		if sig := p.Signature(); !seen[sig] {
			seen[sig] = true
			slate.Random = append(slate.Random, p)
			slate.All = append(slate.All, p)
		}
	}
	return slate, nil
}

// RandomPackage draws a uniformly random size in [1, φ] and that many
// distinct random items from the current epoch — the exploration packages
// of §2.2.
func (e *Engine) RandomPackage() pkgspace.Package {
	return e.randomPackage(e.sh.epoch().space)
}

// randomPackage draws the exploration package against a pinned epoch
// space, so one Recommend never mixes item universes.
func (e *Engine) randomPackage(sp *feature.Space) pkgspace.Package {
	size := 1 + e.rng.Intn(e.cfg.MaxPackageSize)
	if size > len(sp.Items) {
		size = len(sp.Items)
	}
	picked := make(map[int]bool, size)
	ids := make([]int, 0, size)
	for len(ids) < size {
		id := e.rng.Intn(len(sp.Items))
		if !picked[id] {
			picked[id] = true
			ids = append(ids, id)
		}
	}
	return pkgspace.New(ids...)
}

// Click records implicit feedback: the user clicked chosen out of shown,
// yielding a pairwise preference over every other shown package (§3.3).
// Preferences contradicting earlier feedback are skipped and counted in
// Stats.CyclesSkipped, mirroring the paper's cycle resolution.
func (e *Engine) Click(chosen pkgspace.Package, shown []pkgspace.Package) error {
	for _, p := range shown {
		if p.Signature() == chosen.Signature() {
			continue
		}
		if err := e.Feedback(chosen, p); err != nil {
			if errors.Is(err, prefgraph.ErrCycle) {
				e.stats.CyclesSkipped++
				continue
			}
			return err
		}
	}
	return nil
}

// Feedback records a single pairwise preference winner ≻ loser, updates the
// preference DAG, and maintains the sample pool: samples violating the new
// constraint are replaced by fresh draws from the feedback-aware sampler
// (§3.4).
//
// Dense item IDs are interpreted in — and preference vectors computed from
// — the feedback view (the most recent slate's epoch), but the preference
// is stored in the graph under the packages' stable catalogue identity: a
// package re-encountered after a dense-ID remap is the same node, and one
// first seen under an older epoch has its vector refreshed from the
// feedback view's space rather than reusing the stale geometry.
func (e *Engine) Feedback(winner, loser pkgspace.Package) error {
	fv := e.feedbackView()
	wv, err := e.PackageVector(winner)
	if err != nil {
		return err
	}
	lv, err := e.PackageVector(loser)
	if err != nil {
		return err
	}
	sw, sl := fv.stablePkg(winner), fv.stablePkg(loser)
	refreshed, err := e.graph.AddPreferenceAt(fv.id, sw, wv, sl, lv)
	if refreshed {
		// A known package resurfaced under a newer epoch and its vector
		// was refreshed, which rewrote the constraint of every edge
		// touching it — not just the edge added here. Incremental
		// maintenance against the one new constraint would leave samples
		// violating the rewritten ones, so the pool is redrawn under the
		// full rebuilt constraint set instead (mirroring Restore's
		// cross-epoch rule). This holds even when the edge itself is
		// rejected as a cycle or duplicate: the vector update has already
		// happened by then.
		e.pool = nil
	}
	if err != nil {
		return err
	}
	e.stats.Feedback++
	if e.pool == nil {
		return nil // pool will be (re)drawn under the full constraint set
	}
	diff := make([]float64, len(wv))
	for i := range diff {
		diff[i] = wv[i] - lv[i]
	}
	c := prefgraph.Constraint{Winner: sw, Loser: sl, Diff: diff}
	s, err := e.Sampler()
	if err != nil {
		return err
	}
	replaced, work, err := e.pool.Apply(c, s, e.rng)
	e.stats.MaintenanceWork += work
	e.stats.SamplesReplaced += replaced
	if err != nil {
		if errors.Is(err, sampling.ErrTooManyRejections) {
			// The feedback set leaves (almost) no valid weight vectors: keep
			// the stale samples rather than fail the interaction. The paper
			// assumes consistent feedback (§2.1); Psi < 1 is the principled
			// alternative under noise (§7).
			e.stats.ReplacementFailures++
			return nil
		}
		return fmt.Errorf("core: feedback maintenance: %w", err)
	}
	return nil
}

// TopKForWeights runs Top-k-Pkg for an explicit weight vector — the
// "oracle" entry point when the utility is known rather than elicited. The
// epoch is resolved once for the call.
func (e *Engine) TopKForWeights(w []float64, k int) ([]pkgspace.Scored, error) {
	ep := e.sh.epoch()
	u, err := feature.NewUtility(ep.space.Profile, w)
	if err != nil {
		return nil, err
	}
	so := e.cfg.Search
	so.K = k
	res, err := ep.ix.TopK(u, so)
	if err != nil {
		return nil, err
	}
	return res.Packages, nil
}
