package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzReadSnapshot is the armor on the session-restore path: a corrupted
// snapshot file must never panic the server — ReadSnapshot either returns
// an error or a snapshot that survives a Write/Read round trip unchanged.
// The seed corpus under testdata/fuzz/FuzzReadSnapshot is committed; CI
// runs a short -fuzz smoke on top of the regression seeds.
func FuzzReadSnapshot(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"version":1,"samples":[[0.5]],"weights":[]}`))
	f.Add([]byte(`{"version":1,"preferences":[{"winner":[0],"loser":[1]}],"samples":[[0.1,0.2]],"weights":[1]}`))
	f.Add([]byte(`{"version":1,"samples":[[1e308,-1e308]],"weights":[0]}`))
	f.Add([]byte(`{"version":1,"stats":{"Feedback":-1}}`))
	f.Add([]byte("\x00\x01\x02garbage"))
	f.Add([]byte(`{"version":1,"samples":` + strings.Repeat("[", 64) + strings.Repeat("]", 64) + `}`))
	// Wire format v2: stable IDs + capture epoch.
	f.Add([]byte(`{"version":2,"epoch":7,"preferences":[{"winner":[5,900],"loser":[7]}],"samples":[[0.1,0.2]],"weights":[1]}`))
	f.Add([]byte(`{"version":2,"epoch":18446744073709551615,"preferences":[{"winner":[2147483647],"loser":[0]}]}`))
	f.Add([]byte(`{"version":2,"samples":[[0.5]],"weights":[]}`))
	f.Add([]byte(`{"version":2,"preferences":[{"winner":[],"loser":[1]}]}`))
	// Malformed versions and mixed v1/v2 shapes: a v3 must be rejected, a
	// v1 carrying an epoch and a v2 without one must both round-trip.
	f.Add([]byte(`{"version":3,"epoch":1,"preferences":[{"winner":[0],"loser":[1]}]}`))
	f.Add([]byte(`{"version":-1}`))
	f.Add([]byte(`{"version":1,"epoch":9,"preferences":[{"winner":[0],"loser":[1]}]}`))
	f.Add([]byte(`{"version":2,"preferences":[{"winner":[3],"loser":[1]}],"stats":{"RestoreDroppedItems":5}}`))
	f.Add([]byte(`{"version":2,"epoch":4,"space_hash":1234567890123456789,"preferences":[{"winner":[0],"loser":[1]}],"samples":[[0.1,0.2]],"weights":[1]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly: that is the contract
		}
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, s); err != nil {
			t.Fatalf("accepted snapshot failed to encode: %v", err)
		}
		s2, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v\ninput: %q", err, data)
		}
		j1, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		j2, err := json.Marshal(s2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(j1, j2) {
			t.Fatalf("round trip changed the snapshot:\nbefore %s\nafter  %s", j1, j2)
		}
	})
}

// TestRestoreRejectsHostileSnapshots: snapshots that decode fine but do
// not fit the engine's space must error out of Restore, never panic —
// this is what stands between a corrupted store file and a crashed
// serving process. v2 treats unknown stable IDs as churn (dropped, see
// TestRestoreV2DropsVanished), so its hostile class is smaller: structural
// corruption, not unknown items.
func TestRestoreRejectsHostileSnapshots(t *testing.T) {
	eng := persistEngine(t) // 2-dim space over 30 items
	for name, snap := range map[string]*Snapshot{
		"nil":               nil,
		"wrong version":     {Version: 99},
		"future version":    {Version: 3},
		"dim mismatch":      {Version: 1, Samples: [][]float64{{1, 2, 3}}, Weights: []float64{1}},
		"count mismatch":    {Version: 1, Samples: [][]float64{{1, 2}}, Weights: nil},
		"bad item id":       {Version: 1, Preferences: []PreferencePair{{Winner: []int{10000}, Loser: []int{0}}}},
		"negative id":       {Version: 1, Preferences: []PreferencePair{{Winner: []int{-1}, Loser: []int{0}}}},
		"empty package":     {Version: 1, Preferences: []PreferencePair{{Winner: nil, Loser: []int{0}}}},
		"self loop":         {Version: 1, Preferences: []PreferencePair{{Winner: []int{0}, Loser: []int{0}}}},
		"v2 dim mismatch":   {Version: 2, Samples: [][]float64{{1, 2, 3}}, Weights: []float64{1}},
		"v2 count mismatch": {Version: 2, Samples: [][]float64{{1, 2}}, Weights: nil},
		"v2 empty package":  {Version: 2, Preferences: []PreferencePair{{Winner: nil, Loser: []int{0}}}},
		"v2 self loop":      {Version: 2, Preferences: []PreferencePair{{Winner: []int{0}, Loser: []int{0}}}},
		"v2 contradiction, no churn": {Version: 2, Preferences: []PreferencePair{
			// A direct cycle with every item present cannot be blamed on
			// remap shrinkage — it was written contradictory.
			{Winner: []int{0}, Loser: []int{1}},
			{Winner: []int{1}, Loser: []int{0}},
		}},
	} {
		if err := eng.Restore(snap); err == nil {
			t.Errorf("%s: hostile snapshot accepted", name)
		}
	}
}
