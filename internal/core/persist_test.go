package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
)

func persistEngine(t *testing.T) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(200))
	e, err := New(Config{
		Items:          dataset.UNI(30, 2, rng),
		Profile:        feature.SimpleProfile(feature.AggSum, feature.AggAvg),
		MaxPackageSize: 2,
		K:              2,
		SampleCount:    80,
		Seed:           9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSaveLoadRoundTrip(t *testing.T) {
	e := persistEngine(t)
	if err := e.Feedback(pkgspace.New(0, 1), pkgspace.New(2)); err != nil {
		t.Fatal(err)
	}
	if err := e.Feedback(pkgspace.New(2), pkgspace.New(3)); err != nil {
		t.Fatal(err)
	}
	slate1, err := e.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Fresh engine over the same catalogue: restore and compare behaviour.
	e2 := persistEngine(t)
	if err := e2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got, want := e2.Stats().Feedback, e.Stats().Feedback; got != want {
		t.Errorf("restored Feedback = %d, want %d", got, want)
	}
	if got, want := e2.Graph().Edges(), e.Graph().Edges(); got != want {
		t.Errorf("restored edges = %d, want %d", got, want)
	}
	s1, err := e.Samples()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e2.Samples()
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Fatalf("restored pool size %d, want %d", len(s2), len(s1))
	}
	for i := range s1 {
		for j := range s1[i].W {
			if s1[i].W[j] != s2[i].W[j] {
				t.Fatalf("sample %d dim %d differs", i, j)
			}
		}
	}
	// Recommendations from the restored engine must match (same pool, same
	// constraints; the rng streams differ but ranking is pool-driven).
	slate2, err := e2.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	for i := range slate1.Recommended {
		if slate1.Recommended[i].Pkg.Signature() != slate2.Recommended[i].Pkg.Signature() {
			t.Errorf("restored recommendation %d differs: %s vs %s",
				i, slate1.Recommended[i].Pkg, slate2.Recommended[i].Pkg)
		}
	}
}

func TestSnapshotWithoutSampling(t *testing.T) {
	e := persistEngine(t)
	if err := e.Feedback(pkgspace.New(0), pkgspace.New(1)); err != nil {
		t.Fatal(err)
	}
	s := e.Snapshot()
	if len(s.Samples) != 0 {
		t.Errorf("unsampled engine snapshot has %d samples", len(s.Samples))
	}
	if len(s.Preferences) != 1 {
		t.Errorf("snapshot has %d preferences, want 1", len(s.Preferences))
	}
	e2 := persistEngine(t)
	if err := e2.Restore(s); err != nil {
		t.Fatal(err)
	}
	// The restored engine draws a fresh pool under the restored constraints.
	samples, err := e2.Samples()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("restored engine failed to sample")
	}
}

func TestRestoreValidation(t *testing.T) {
	e := persistEngine(t)
	if err := e.Restore(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	if err := e.Restore(&Snapshot{Version: 99}); err == nil {
		t.Error("wrong version accepted")
	}
	if err := e.Restore(&Snapshot{Version: 1, Samples: [][]float64{{1}}, Weights: nil}); err == nil {
		t.Error("sample/weight length mismatch accepted")
	}
	if err := e.Restore(&Snapshot{Version: 1, Samples: [][]float64{{1, 2, 3}}, Weights: []float64{1}}); err == nil {
		t.Error("dims mismatch accepted")
	}
	if err := e.Restore(&Snapshot{Version: 1, Preferences: []PreferencePair{
		{Winner: []int{999}, Loser: []int{0}},
	}}); err == nil {
		t.Error("out-of-range item id accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	e := persistEngine(t)
	if err := e.Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}
