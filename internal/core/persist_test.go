package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"toppkg/internal/catalog"
	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
	"toppkg/internal/search"
)

func persistEngine(t *testing.T) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(200))
	e, err := New(Config{
		Items:          dataset.UNI(30, 2, rng),
		Profile:        feature.SimpleProfile(feature.AggSum, feature.AggAvg),
		MaxPackageSize: 2,
		K:              2,
		SampleCount:    80,
		Seed:           9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSaveLoadRoundTrip(t *testing.T) {
	e := persistEngine(t)
	if err := e.Feedback(pkgspace.New(0, 1), pkgspace.New(2)); err != nil {
		t.Fatal(err)
	}
	if err := e.Feedback(pkgspace.New(2), pkgspace.New(3)); err != nil {
		t.Fatal(err)
	}
	slate1, err := e.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Fresh engine over the same catalogue: restore and compare behaviour.
	e2 := persistEngine(t)
	if err := e2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got, want := e2.Stats().Feedback, e.Stats().Feedback; got != want {
		t.Errorf("restored Feedback = %d, want %d", got, want)
	}
	if got, want := e2.Graph().Edges(), e.Graph().Edges(); got != want {
		t.Errorf("restored edges = %d, want %d", got, want)
	}
	s1, err := e.Samples()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e2.Samples()
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Fatalf("restored pool size %d, want %d", len(s2), len(s1))
	}
	for i := range s1 {
		for j := range s1[i].W {
			if s1[i].W[j] != s2[i].W[j] {
				t.Fatalf("sample %d dim %d differs", i, j)
			}
		}
	}
	// Recommendations from the restored engine must match (same pool, same
	// constraints; the rng streams differ but ranking is pool-driven).
	slate2, err := e2.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	for i := range slate1.Recommended {
		if slate1.Recommended[i].Pkg.Signature() != slate2.Recommended[i].Pkg.Signature() {
			t.Errorf("restored recommendation %d differs: %s vs %s",
				i, slate1.Recommended[i].Pkg, slate2.Recommended[i].Pkg)
		}
	}
}

func TestSnapshotWithoutSampling(t *testing.T) {
	e := persistEngine(t)
	if err := e.Feedback(pkgspace.New(0), pkgspace.New(1)); err != nil {
		t.Fatal(err)
	}
	s := e.Snapshot()
	if len(s.Samples) != 0 {
		t.Errorf("unsampled engine snapshot has %d samples", len(s.Samples))
	}
	if len(s.Preferences) != 1 {
		t.Errorf("snapshot has %d preferences, want 1", len(s.Preferences))
	}
	e2 := persistEngine(t)
	if err := e2.Restore(s); err != nil {
		t.Fatal(err)
	}
	// The restored engine draws a fresh pool under the restored constraints.
	samples, err := e2.Samples()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("restored engine failed to sample")
	}
}

func TestRestoreValidation(t *testing.T) {
	e := persistEngine(t)
	if err := e.Restore(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	if err := e.Restore(&Snapshot{Version: 99}); err == nil {
		t.Error("wrong version accepted")
	}
	if err := e.Restore(&Snapshot{Version: 3}); err == nil {
		t.Error("future version accepted")
	}
	if err := e.Restore(&Snapshot{Version: 1, Samples: [][]float64{{1}}, Weights: nil}); err == nil {
		t.Error("sample/weight length mismatch accepted")
	}
	if err := e.Restore(&Snapshot{Version: 2, Samples: [][]float64{{1}}, Weights: nil}); err == nil {
		t.Error("v2 sample/weight length mismatch accepted")
	}
	if err := e.Restore(&Snapshot{Version: 1, Samples: [][]float64{{1, 2, 3}}, Weights: []float64{1}}); err == nil {
		t.Error("dims mismatch accepted")
	}
	if err := e.Restore(&Snapshot{Version: 1, Preferences: []PreferencePair{
		{Winner: []int{999}, Loser: []int{0}},
	}}); err == nil {
		t.Error("v1 out-of-range item id accepted")
	}
}

// TestV1MigrationRoundTrip is the acceptance criterion's migration test: a
// v1 snapshot exactly as the previous wire format wrote it (dense item
// IDs, no epoch) restores under the new code with the pool intact, and the
// next Snapshot emits the same learned state re-keyed as v2.
func TestV1MigrationRoundTrip(t *testing.T) {
	e := persistEngine(t)
	if err := e.Feedback(pkgspace.New(0, 1), pkgspace.New(2)); err != nil {
		t.Fatal(err)
	}
	if err := e.Feedback(pkgspace.New(2), pkgspace.New(3)); err != nil {
		t.Fatal(err)
	}
	slate1, err := e.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	// On a static catalogue dense positions ARE the stable identity, so a
	// v1 snapshot is the v2 pairs under Version 1 without the epoch — the
	// byte-for-byte output of the previous codec.
	cur := e.Snapshot()
	v1 := &Snapshot{Version: 1, Preferences: cur.Preferences,
		Samples: cur.Samples, Weights: cur.Weights, Stats: cur.Stats}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, v1); err != nil {
		t.Fatal(err)
	}

	e2 := persistEngine(t)
	if err := e2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("v1 snapshot rejected by the new code: %v", err)
	}
	// v1 carries epoch 0 — the static epoch — so the pool survives.
	s2, err := e2.Samples()
	if err != nil {
		t.Fatal(err)
	}
	if len(s2) != len(cur.Samples) {
		t.Fatalf("migrated pool size %d, want %d", len(s2), len(cur.Samples))
	}
	migrated := e2.Snapshot()
	if migrated.Version != 2 {
		t.Fatalf("re-snapshot version %d, want 2", migrated.Version)
	}
	if len(migrated.Preferences) != len(cur.Preferences) {
		t.Fatalf("migration changed preference count: %d, want %d",
			len(migrated.Preferences), len(cur.Preferences))
	}
	for i := range cur.Preferences {
		w1 := pkgspace.New(cur.Preferences[i].Winner...)
		w2 := pkgspace.New(migrated.Preferences[i].Winner...)
		l1 := pkgspace.New(cur.Preferences[i].Loser...)
		l2 := pkgspace.New(migrated.Preferences[i].Loser...)
		if !pkgspace.Equal(w1, w2) || !pkgspace.Equal(l1, l2) {
			t.Fatalf("migration changed preference %d: %s≻%s vs %s≻%s", i, w2, l2, w1, l1)
		}
	}
	slate2, err := e2.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	for i := range slate1.Recommended {
		if slate1.Recommended[i].Pkg.Signature() != slate2.Recommended[i].Pkg.Signature() {
			t.Errorf("migrated recommendation %d differs: %s vs %s",
				i, slate1.Recommended[i].Pkg, slate2.Recommended[i].Pkg)
		}
	}
}

// TestRestoreV2DropsVanished: v2 restore treats unknown stable IDs as
// churn, not corruption — members are dropped and counted, a side that
// empties out (or both sides collapsing to the same package) drops the
// preference, and the surviving state restores cleanly.
func TestRestoreV2DropsVanished(t *testing.T) {
	e := persistEngine(t) // 30 items: stable IDs 0..29
	snap := &Snapshot{Version: 2, Preferences: []PreferencePair{
		{Winner: []int{0, 1}, Loser: []int{2}},            // intact
		{Winner: []int{3, 10000}, Loser: []int{4}},        // winner loses one member
		{Winner: []int{10001}, Loser: []int{5}},           // winner empties: pref dropped
		{Winner: []int{6, 10002}, Loser: []int{10003, 6}}, // collapse to {6}≻{6}: dropped
	}}
	if err := e.Restore(snap); err != nil {
		t.Fatalf("v2 snapshot with vanished items rejected: %v", err)
	}
	items, prefs := e.RestoreDrops()
	if items != 4 || prefs != 2 {
		t.Errorf("RestoreDrops = (%d, %d), want (4, 2)", items, prefs)
	}
	if got := e.Graph().Edges(); got != 2 {
		t.Errorf("restored %d edges, want 2", got)
	}
	// The engine is fully usable afterwards.
	if _, err := e.Recommend(); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreV2DropsContradiction: remaps can collapse two once-distinct
// preferences into a contradiction; the later one is dropped and counted
// rather than failing the restore.
func TestRestoreV2DropsContradiction(t *testing.T) {
	e := persistEngine(t)
	snap := &Snapshot{Version: 2, Preferences: []PreferencePair{
		{Winner: []int{0}, Loser: []int{1}},
		{Winner: []int{1}, Loser: []int{0, 10000}}, // remaps to {1}≻{0}: cycle
	}}
	if err := e.Restore(snap); err != nil {
		t.Fatalf("restore failed on a remapped contradiction: %v", err)
	}
	items, prefs := e.RestoreDrops()
	if items != 1 || prefs != 1 {
		t.Errorf("RestoreDrops = (%d, %d), want (1, 1)", items, prefs)
	}
	if got := e.Graph().Edges(); got != 1 {
		t.Errorf("restored %d edges, want 1", got)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	e := persistEngine(t)
	if err := e.Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

// TestRestorePoolRequiresSameGeometry: epoch counters are per-process, so
// a snapshot imported into a deployment that merely shares the epoch
// number — but whose items carry different values — must not install the
// pool: the samples were maintained against different package-vector
// geometry. The preferences still restore; only the pool is redrawn.
func TestRestorePoolRequiresSameGeometry(t *testing.T) {
	e := persistEngine(t)
	if err := e.Feedback(pkgspace.New(0, 1), pkgspace.New(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Recommend(); err != nil { // draw the pool
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if len(snap.Samples) == 0 || snap.SpaceHash == 0 {
		t.Fatalf("precondition: %d samples, hash %d", len(snap.Samples), snap.SpaceHash)
	}

	// Same catalogue → pool installed verbatim.
	same := persistEngine(t)
	if err := same.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if same.pool == nil {
		t.Fatal("identical-geometry restore dropped the pool")
	}

	// Same shape and stable IDs, different values (both at epoch 0).
	rng := rand.New(rand.NewSource(999))
	other, err := New(Config{
		Items:          dataset.UNI(30, 2, rng),
		Profile:        feature.SimpleProfile(feature.AggSum, feature.AggAvg),
		MaxPackageSize: 2,
		K:              2,
		SampleCount:    80,
		Seed:           9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if other.Space().Hash() == e.Space().Hash() {
		t.Fatal("precondition: distinct item values must hash differently")
	}
	if err := other.Restore(snap); err != nil {
		t.Fatalf("cross-deployment restore failed: %v", err)
	}
	if other.Graph().Edges() != 1 {
		t.Fatalf("preferences lost: %d edges", other.Graph().Edges())
	}
	if other.pool != nil {
		t.Fatal("pool maintained against different geometry was installed verbatim")
	}
}

// TestRestorePoolRequiresSameIdentity: two catalogues can hold the same
// dense value sequence (equal Space.Hash) under shifted stable-ID
// windows, so a shared stable ID names DIFFERENT items in each. The pool
// gate must catch the permuted identity via the ID-assignment hash even
// though no preference member is dropped.
func TestRestorePoolRequiresSameIdentity(t *testing.T) {
	prof := feature.SimpleProfile(feature.AggSum, feature.AggAvg)
	vals := func(i int) []float64 { return []float64{0.1 * float64(i+1), 0.9 - 0.1*float64(i)} }
	mkCat := func(firstID int) *catalog.Catalog {
		items := make([]feature.Item, 8)
		for i := range items {
			items[i] = feature.Item{ID: firstID + i, Values: vals(i)}
		}
		cat, err := catalog.New(catalog.Config{Profile: prof, MaxPackageSize: 2, Items: items, Coalesce: -1})
		if err != nil {
			t.Fatal(err)
		}
		return cat
	}
	mkEng := func(cat *catalog.Catalog) *Engine {
		sh, err := NewLiveShared(Config{K: 2, SampleCount: 40, Seed: 9,
			Search: search.Options{MaxQueue: 32, MaxAccessed: 100}}, cat)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := sh.NewEngine(0)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	// A: stable IDs 1..8; B: stable IDs 2..9 — same dense values, so
	// stable 2..8 exist in both but name shifted items.
	a, b := mkEng(mkCat(1)), mkEng(mkCat(2))
	if a.Space().Hash() != b.Space().Hash() {
		t.Fatal("precondition: dense value sequences must hash equal")
	}
	// Preference over stable {3} ≻ {4}: dense 2,3 in A.
	if err := a.Feedback(pkgspace.New(2), pkgspace.New(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recommend(); err != nil {
		t.Fatal(err)
	}
	snap := a.Snapshot()
	if len(snap.Samples) == 0 {
		t.Fatal("precondition: snapshot must carry the pool")
	}
	if err := b.Restore(snap); err != nil {
		t.Fatalf("restore into shifted catalogue failed: %v", err)
	}
	if items, prefs := b.LastRestoreDrops(); items != 0 || prefs != 0 {
		t.Fatalf("unexpected drops (%d, %d): stable 3,4 exist in both catalogues", items, prefs)
	}
	if b.pool != nil {
		t.Fatal("pool installed across a permuted stable-ID assignment")
	}
}

// TestRestoreV2CountsMergedDuplicates: shrinkage can collapse two distinct
// preferences onto the same edge; the silent duplicate no-op still cost
// the user a recorded preference, and the counters must say so.
func TestRestoreV2CountsMergedDuplicates(t *testing.T) {
	for name, prefs := range map[string][]PreferencePair{
		"shrinker first": {
			{Winner: []int{0, 10000}, Loser: []int{1}},
			{Winner: []int{0}, Loser: []int{1}},
		},
		"shrinker second": {
			{Winner: []int{0}, Loser: []int{1}},
			{Winner: []int{0, 10000}, Loser: []int{1}},
		},
	} {
		e := persistEngine(t)
		if err := e.Restore(&Snapshot{Version: 2, Preferences: prefs}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		items, dropped := e.RestoreDrops()
		if items != 1 || dropped != 1 {
			t.Errorf("%s: RestoreDrops = (%d, %d), want (1, 1): two preferences merged into one edge", name, items, dropped)
		}
		if got := e.Graph().Edges(); got != 1 {
			t.Errorf("%s: %d edges, want 1", name, got)
		}
	}
}
