package core

import (
	"testing"

	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
)

// Regression test: a feedback set admitting no valid weight vector used
// to fail Recommend outright ("initial sampling: attempt budget
// exhausted"), permanently bricking the session — catalogue churn can
// re-vectorize old preferences into exactly this state. The engine must
// degrade to prior draws instead, mirroring how feedback maintenance
// already tolerates a vanished valid region (ReplacementFailures).
func TestInfeasibleFeedbackFallsBackToPrior(t *testing.T) {
	// One feature, single-item packages: {0}≻{1} forces w > 0 while
	// {2}≻{3} forces w < 0 — jointly unsatisfiable, yet acyclic (the two
	// preferences share no package), so the graph accepts both.
	cfg := Config{
		Items: []feature.Item{
			{ID: 0, Name: "a", Values: []float64{0.9}},
			{ID: 1, Name: "b", Values: []float64{0.1}},
			{ID: 2, Name: "c", Values: []float64{0.2}},
			{ID: 3, Name: "d", Values: []float64{0.8}},
		},
		Profile:        feature.SimpleProfile(feature.AggSum),
		MaxPackageSize: 1,
		K:              2,
		SampleCount:    50,
		Seed:           3,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Feedback(pkgspace.New(0), pkgspace.New(1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Feedback(pkgspace.New(2), pkgspace.New(3)); err != nil {
		t.Fatal(err)
	}
	slate, err := e.Recommend()
	if err != nil {
		t.Fatalf("Recommend with infeasible feedback: %v", err)
	}
	if len(slate.Recommended) == 0 {
		t.Fatal("fallback recommend produced an empty slate")
	}
	samples, err := e.Samples()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != cfg.SampleCount {
		t.Fatalf("fallback pool holds %d samples, want %d", len(samples), cfg.SampleCount)
	}
	if got := e.Stats().InitialSampleFallbacks; got < 1 {
		t.Fatalf("InitialSampleFallbacks = %d, want >= 1", got)
	}
	// The fallback is not the steady state: consistent-only feedback must
	// still draw a constrained pool without tripping the counter.
	e2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Feedback(pkgspace.New(0), pkgspace.New(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Recommend(); err != nil {
		t.Fatal(err)
	}
	if got := e2.Stats().InitialSampleFallbacks; got != 0 {
		t.Fatalf("consistent feedback tripped the fallback %d times", got)
	}
}
