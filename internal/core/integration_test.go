package core

import (
	"math"
	"math/rand"
	"testing"

	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
	"toppkg/internal/ranking"
	"toppkg/internal/search"
)

// TestEndToEndLearnsHiddenUtility is the full-system integration test: a
// hidden utility generates consistent feedback; after several rounds the
// engine's top recommendation must score close to the true optimum under
// the hidden utility.
func TestEndToEndLearnsHiddenUtility(t *testing.T) {
	if testing.Short() {
		t.Skip("full elicitation sessions are slow")
	}
	rng := rand.New(rand.NewSource(77))
	items := dataset.COR(120, 3, rng)
	profile := feature.SimpleProfile(feature.AggSum, feature.AggAvg, feature.AggMax)
	eng, err := New(Config{
		Items:          items,
		Profile:        profile,
		MaxPackageSize: 3,
		K:              3,
		RandomCount:    3,
		SampleCount:    300,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	hidden := []float64{0.8, -0.5, 0.3}
	hu, err := feature.NewUtility(profile, hidden)
	if err != nil {
		t.Fatal(err)
	}
	score := func(p pkgspace.Package) float64 {
		return hu.Score(pkgspace.Vector(eng.Space(), p))
	}
	for round := 0; round < 8; round++ {
		slate, err := eng.Recommend()
		if err != nil {
			t.Fatal(err)
		}
		best, bestU := 0, score(slate.All[0])
		for i := 1; i < len(slate.All); i++ {
			if s := score(slate.All[i]); s > bestU {
				best, bestU = i, s
			}
		}
		if err := eng.Click(slate.All[best], slate.All); err != nil {
			t.Fatal(err)
		}
	}
	slate, err := eng.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	got := score(slate.Recommended[0].Pkg)
	// True optimum via the exact oracle.
	exact := pkgspace.BruteForceTopK(eng.Space(), hu, 1)
	want := exact[0].Utility
	if want-got > 0.15*math.Abs(want)+0.02 {
		t.Errorf("after 8 rounds recommended trueU = %.4f, optimum = %.4f", got, want)
	}
	t.Logf("recommended trueU %.4f vs optimum %.4f (%d feedbacks)",
		got, want, eng.Stats().Feedback)
}

// TestEngineTinyItemSet: slates must still work when the item set is
// smaller than the slate.
func TestEngineTinyItemSet(t *testing.T) {
	items := []feature.Item{
		{ID: 0, Values: []float64{0.9, 0.5}},
		{ID: 1, Values: []float64{0.2, 0.8}},
	}
	eng, err := New(Config{
		Items:          items,
		Profile:        feature.SimpleProfile(feature.AggSum, feature.AggAvg),
		MaxPackageSize: 2,
		K:              5, // more than the 3 possible packages
		SampleCount:    50,
	})
	if err != nil {
		t.Fatal(err)
	}
	slate, err := eng.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if len(slate.Recommended) == 0 || len(slate.Recommended) > 3 {
		t.Fatalf("recommended %d of 3 possible packages", len(slate.Recommended))
	}
}

// TestEngineAllSemanticsAgreeOnDominantPackage: when one package dominates
// under every plausible weight vector, every semantics must rank it first.
func TestEngineAllSemanticsAgreeOnDominantPackage(t *testing.T) {
	// Item 0 dominates everything; the positive-orthant prior is induced by
	// feedback preferring {0} over everything relevant.
	items := []feature.Item{
		{ID: 0, Values: []float64{1.0, 1.0}},
		{ID: 1, Values: []float64{0.1, 0.1}},
		{ID: 2, Values: []float64{0.05, 0.2}},
	}
	profile := feature.SimpleProfile(feature.AggMax, feature.AggMax)
	for _, sem := range []ranking.Semantics{ranking.EXP, ranking.TKP, ranking.MPO} {
		eng, err := New(Config{
			Items:          items,
			Profile:        profile,
			MaxPackageSize: 1,
			K:              1,
			Semantics:      sem,
			SampleCount:    100,
			Seed:           3,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Feedback pins positive weights: {0} ≻ {1}, {0} ≻ {2}.
		if err := eng.Feedback(pkgspace.New(0), pkgspace.New(1)); err != nil {
			t.Fatal(err)
		}
		if err := eng.Feedback(pkgspace.New(0), pkgspace.New(2)); err != nil {
			t.Fatal(err)
		}
		slate, err := eng.Recommend()
		if err != nil {
			t.Fatal(err)
		}
		if slate.Recommended[0].Pkg.Signature() != "0" {
			t.Errorf("%v: top = %s, want {0}", sem, slate.Recommended[0].Pkg)
		}
	}
}

// TestEngineSearchBudgetsRespected: truncating budgets must not break the
// engine, only bound its work.
func TestEngineSearchBudgetsRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	eng, err := New(Config{
		Items:          dataset.UNI(500, 3, rng),
		Profile:        feature.SimpleProfile(feature.AggSum, feature.AggAvg, feature.AggMin),
		MaxPackageSize: 4,
		K:              3,
		SampleCount:    100,
		Search:         search.Options{MaxQueue: 16, MaxAccessed: 50},
		Seed:           4,
	})
	if err != nil {
		t.Fatal(err)
	}
	slate, err := eng.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if len(slate.Recommended) != 3 {
		t.Fatalf("budgeted engine returned %d packages", len(slate.Recommended))
	}
}
