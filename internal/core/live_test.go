// Tests for the live-catalogue serving path: epoch-pinned Recommend over a
// mutable catalog.Catalog, the bit-identical post-swap property, and the
// race-tested guarantee that concurrent recommends across an epoch swap
// never observe a torn index or a cross-epoch cached result.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"toppkg/internal/catalog"
	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
	"toppkg/internal/prefgraph"
	"toppkg/internal/search"
)

func liveProfile() *feature.Profile {
	return feature.SimpleProfile(feature.AggSum, feature.AggAvg)
}

// liveConfig is the engine configuration both sides of the bit-identical
// comparison share. Everything that could perturb determinism is pinned.
func liveConfig() Config {
	return Config{
		Profile:        liveProfile(),
		MaxPackageSize: 3,
		K:              2,
		RandomCount:    2,
		SampleCount:    40,
		Seed:           7,
		Search:         search.Options{MaxQueue: 32, MaxAccessed: 100},
	}
}

func liveCatalog(t *testing.T, coalesce time.Duration, n int) *catalog.Catalog {
	t.Helper()
	cat, err := catalog.New(catalog.Config{
		Profile:        liveProfile(),
		MaxPackageSize: 3,
		Items:          dataset.UNI(n, 2, rand.New(rand.NewSource(3))),
		Coalesce:       coalesce,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// mustSlate builds a fresh engine from sh with the shared seed and runs
// one Recommend.
func mustSlate(t *testing.T, sh *Shared) *Slate {
	t.Helper()
	eng, err := sh.NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	slate, err := eng.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	return slate
}

// sameSlate asserts two slates are bit-identical: same recommended
// packages with bitwise-equal scores, in order, and the same exploration
// tail.
func sameSlate(t *testing.T, label string, got, want *Slate) {
	t.Helper()
	if len(got.Recommended) != len(want.Recommended) {
		t.Fatalf("%s: %d recommended, want %d", label, len(got.Recommended), len(want.Recommended))
	}
	for i := range want.Recommended {
		g, w := got.Recommended[i], want.Recommended[i]
		if g.Pkg.Signature() != w.Pkg.Signature() {
			t.Fatalf("%s: recommended[%d] = %s, want %s", label, i, g.Pkg.Signature(), w.Pkg.Signature())
		}
		if math.Float64bits(g.Score) != math.Float64bits(w.Score) {
			t.Fatalf("%s: recommended[%d] score %v, want bit-identical %v", label, i, g.Score, w.Score)
		}
	}
	if len(got.Random) != len(want.Random) {
		t.Fatalf("%s: %d random, want %d", label, len(got.Random), len(want.Random))
	}
	for i := range want.Random {
		if got.Random[i].Signature() != want.Random[i].Signature() {
			t.Fatalf("%s: random[%d] = %s, want %s", label, i, got.Random[i].Signature(), want.Random[i].Signature())
		}
	}
}

// TestLiveRecommendBitIdenticalAfterMutations is the tentpole's property
// test: after any Upsert/Delete batch, a Recommend served through the live
// Shared (with its warm, epoch-keyed result cache) is bit-identical to a
// fresh engine built statically from the mutated item set — i.e. epoch
// swaps are semantically invisible, and nothing cached before a swap can
// leak through it.
func TestLiveRecommendBitIdenticalAfterMutations(t *testing.T) {
	cat := liveCatalog(t, -1, 30) // synchronous rebuilds: deterministic
	sh, err := NewLiveShared(liveConfig(), cat)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	nextID := 1000
	for trial := 0; trial < 10; trial++ {
		// Random mutation batch: add items, reprice survivors, delete some.
		switch trial % 3 {
		case 0: // insert a few brand-new items
			batch := make([]feature.Item, 1+rng.Intn(3))
			for i := range batch {
				batch[i] = feature.Item{ID: nextID, Name: "new", Values: []float64{rng.Float64(), rng.Float64()}}
				nextID++
			}
			if err := cat.Upsert(batch); err != nil {
				t.Fatal(err)
			}
		case 1: // reprice existing items in place (stable IDs unchanged)
			ep := cat.Current()
			i := rng.Intn(len(ep.Items()))
			it := ep.Items()[i]
			it.ID = ep.StableID(i)
			it.Values = []float64{rng.Float64(), rng.Float64()}
			if err := cat.Upsert([]feature.Item{it}); err != nil {
				t.Fatal(err)
			}
		default: // delete a random surviving item
			ep := cat.Current()
			if _, err := cat.Delete([]int{ep.StableID(rng.Intn(len(ep.Items())))}); err != nil {
				t.Fatal(err)
			}
		}

		ep := cat.Current()
		live := mustSlate(t, sh)
		if live.Epoch != ep.ID {
			t.Fatalf("trial %d: slate pinned epoch %d, catalogue at %d", trial, live.Epoch, ep.ID)
		}

		// The oracle: a cold engine over exactly the mutated item set, with
		// caching disabled so nothing can be reused from anywhere.
		cfg := liveConfig()
		cfg.Items = ep.Items()
		cfg.SearchCacheSize = -1
		fresh, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Recommend()
		if err != nil {
			t.Fatal(err)
		}
		sameSlate(t, "after mutation batch", live, want)
	}
	// Every swap must have run the cache through reconciliation (or a full
	// invalidation): entries either survive with a proof or drop. The
	// mutation mix above deterministically exercises both outcomes.
	st := sh.SearchCache().Stats()
	if st.ReconcileDrops+st.InvalidationDrops == 0 {
		t.Error("epoch swaps never dropped anything from the shared result cache")
	}
	if st.Retained == 0 {
		t.Error("epoch swaps never retained a provably-unaffected cache entry")
	}
}

// TestStaleCacheNotServedAfterReprice pins the cross-epoch cache hazard
// directly: warm the cache, change every item's values (which changes
// every top-k), and verify the next Recommend reflects the new values
// rather than the cached pre-swap results.
func TestStaleCacheNotServedAfterReprice(t *testing.T) {
	cat := liveCatalog(t, -1, 20)
	sh, err := NewLiveShared(liveConfig(), cat)
	if err != nil {
		t.Fatal(err)
	}
	before := mustSlate(t, sh) // warms the shared cache for epoch 1
	_ = before

	ep := cat.Current()
	rng := rand.New(rand.NewSource(4))
	batch := make([]feature.Item, len(ep.Items()))
	for i := range batch {
		batch[i] = feature.Item{
			ID:     ep.StableID(i),
			Name:   ep.Items()[i].Name,
			Values: []float64{rng.Float64(), rng.Float64()},
		}
	}
	if err := cat.Upsert(batch); err != nil {
		t.Fatal(err)
	}

	cfg := liveConfig()
	cfg.Items = cat.Current().Items()
	cfg.SearchCacheSize = -1
	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	sameSlate(t, "after full reprice", mustSlate(t, sh), want)
}

// TestFeedbackSurvivesEpochSwap: learned state is geometric (constraint
// vectors computed at feedback time), so a session keeps recommending
// after the catalogue changes under it.
func TestFeedbackSurvivesEpochSwap(t *testing.T) {
	cat := liveCatalog(t, -1, 25)
	sh, err := NewLiveShared(liveConfig(), cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sh.NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	slate, err := eng.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Click(slate.All[0], slate.All); err != nil {
		t.Fatal(err)
	}
	if err := cat.Upsert([]feature.Item{{ID: 500, Values: []float64{0.9, 0.9}}}); err != nil {
		t.Fatal(err)
	}
	after, err := eng.Recommend()
	if err != nil {
		t.Fatalf("recommend after swap with feedback: %v", err)
	}
	if after.Epoch != cat.Current().ID {
		t.Fatalf("post-swap slate pinned epoch %d, want %d", after.Epoch, cat.Current().ID)
	}
	if eng.Stats().Feedback == 0 {
		t.Fatal("feedback lost across swap")
	}
}

// TestClickResolvesAgainstSlateEpoch: a click always refers to the slate
// the user saw, so its item IDs must be interpreted in — and its
// preference vectors computed from — that slate's epoch, even after the
// catalogue shrinks or remaps dense IDs underneath it.
func TestClickResolvesAgainstSlateEpoch(t *testing.T) {
	cat := liveCatalog(t, -1, 25)
	sh, err := NewLiveShared(liveConfig(), cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sh.NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	slate, err := eng.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the catalogue so the slate's highest dense IDs are out of
	// range in the current epoch, and remap everything below them.
	ep := cat.Current()
	if _, err := cat.Delete([]int{ep.StableID(0), ep.StableID(1), ep.StableID(2)}); err != nil {
		t.Fatal(err)
	}
	if got := eng.FeedbackSpace(); got != slate.Space {
		t.Fatal("FeedbackSpace is not the last slate's epoch space")
	}
	if err := eng.Click(slate.All[0], slate.All); err != nil {
		t.Fatalf("click on a pre-swap slate rejected: %v", err)
	}
	if eng.Stats().Feedback == 0 {
		t.Fatal("pre-swap click recorded no feedback")
	}
	// The next slate moves to the new epoch, and future feedback with it.
	after, err := eng.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if after.Epoch != cat.Current().ID {
		t.Fatalf("next slate epoch = %d, want %d", after.Epoch, cat.Current().ID)
	}
	if got := eng.FeedbackSpace(); got != after.Space {
		t.Fatal("FeedbackSpace did not advance with the new slate")
	}
}

// replaySurviving applies a v2 snapshot's preferences to a fresh engine
// the way Restore remaps them onto epoch ep: vanished members dropped,
// emptied/collapsed/contradictory preferences skipped. It is the test's
// independent model of the restore semantics.
func replaySurviving(t *testing.T, eng *Engine, prefs []PreferencePair, ep *catalog.Epoch) {
	t.Helper()
	for _, pr := range prefs {
		var wd, ld []int
		for _, s := range pr.Winner {
			if d, ok := ep.DenseID(s); ok {
				wd = append(wd, d)
			}
		}
		for _, s := range pr.Loser {
			if d, ok := ep.DenseID(s); ok {
				ld = append(ld, d)
			}
		}
		if len(wd) == 0 || len(ld) == 0 {
			continue
		}
		w, l := pkgspace.New(wd...), pkgspace.New(ld...)
		if w.Signature() == l.Signature() {
			continue
		}
		if err := eng.Feedback(w, l); err != nil && !errors.Is(err, prefgraph.ErrCycle) {
			t.Fatal(err)
		}
	}
}

// TestSnapshotChurnRestoreBitIdentical is the stable-ID tentpole's
// property test: learned state snapshotted under epoch N, carried across
// upsert/delete churn, and restored under epoch M must behave exactly like
// an engine that replayed the surviving preferences fresh against epoch M
// — same constraint geometry, same lazily drawn pool, bit-identical
// recommendations. The vanished members show up in the drop counters, not
// as restore failures.
func TestSnapshotChurnRestoreBitIdentical(t *testing.T) {
	cat := liveCatalog(t, -1, 30) // UNI item IDs 0..29: dense == stable at epoch 1
	sh, err := NewLiveShared(liveConfig(), cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sh.NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}

	// The churn applied between snapshot and restore: stable 0 goes
	// (remapping every surviving dense ID), stable 2 goes (a member of
	// three preferences, twice as a whole side), fresh inventory arrives.
	rng := rand.New(rand.NewSource(41))
	newItems := []feature.Item{
		{ID: 500, Name: "new-a", Values: []float64{rng.Float64(), rng.Float64()}},
		{ID: 501, Name: "new-b", Values: []float64{rng.Float64(), rng.Float64()}},
	}
	// A trial catalogue (same seed → identical items) previews the
	// post-churn epoch, so preference pairs can be oriented by a hidden
	// utility over their post-churn remnants: the remapped constraint set
	// the restored engine samples under stays feasible by construction.
	trial := liveCatalog(t, -1, 30)
	if _, err := trial.Delete([]int{0, 2}); err != nil {
		t.Fatal(err)
	}
	if err := trial.Upsert(newItems); err != nil {
		t.Fatal(err)
	}
	epTrial := trial.Current()
	hidden := []float64{0.7, -0.4}
	remnantUtility := func(p pkgspace.Package) (float64, bool) {
		var dense []int
		for _, s := range p.IDs { // dense == stable under epoch 1
			if d, ok := epTrial.DenseID(s); ok {
				dense = append(dense, d)
			}
		}
		if len(dense) == 0 {
			return 0, false
		}
		return feature.Dot(hidden, pkgspace.Vector(epTrial.Space, pkgspace.New(dense...))), true
	}

	// Feedback before any Recommend: the pool stays undrawn, so both
	// sides of the comparison draw it lazily from identical rng state.
	for _, pr := range [][2]pkgspace.Package{
		{pkgspace.New(0, 1), pkgspace.New(2)},
		{pkgspace.New(2), pkgspace.New(3, 4)},
		{pkgspace.New(5, 6), pkgspace.New(7)},
		{pkgspace.New(8), pkgspace.New(9, 10)},
		{pkgspace.New(2, 11), pkgspace.New(12)},
		{pkgspace.New(13), pkgspace.New(14, 15)},
	} {
		a, b := pr[0], pr[1]
		ua, aok := remnantUtility(a)
		ub, bok := remnantUtility(b)
		if aok && bok && ub > ua {
			a, b = b, a
		}
		if err := eng.Feedback(a, b); err != nil {
			t.Fatal(err)
		}
	}
	snap := eng.Snapshot()
	if snap.Version != 2 || snap.Epoch != 1 {
		t.Fatalf("snapshot version %d epoch %d, want v2 under epoch 1", snap.Version, snap.Epoch)
	}

	if _, err := cat.Delete([]int{0, 2}); err != nil {
		t.Fatal(err)
	}
	if err := cat.Upsert(newItems); err != nil {
		t.Fatal(err)
	}
	epM := cat.Current()
	if epM.ID == snap.Epoch {
		t.Fatal("churn did not advance the epoch")
	}

	restored, err := sh.NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(snap); err != nil {
		t.Fatalf("restore across churn must not fail: %v", err)
	}
	items, prefs := restored.RestoreDrops()
	// Stable 2 appears in three preferences (3 item drops); {2}≻{3,4} and
	// {0,1}≻{2} lose a whole side each (2 preference drops); stable 0
	// appears once more in {0,1}.
	if items != 4 || prefs != 2 {
		t.Fatalf("RestoreDrops = (%d items, %d prefs), want (4, 2)", items, prefs)
	}
	got, err := restored.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != epM.ID {
		t.Fatalf("restored slate pinned epoch %d, catalogue at %d", got.Epoch, epM.ID)
	}

	// The oracle: a cold static engine over exactly epoch M's items,
	// caching disabled, replaying the surviving preferences itself.
	cfg := liveConfig()
	cfg.Items = epM.Items()
	cfg.SearchCacheSize = -1
	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replaySurviving(t, fresh, snap.Preferences, epM)
	if rc, fc := restored.Graph().Edges(), fresh.Graph().Edges(); rc != fc {
		t.Fatalf("restored graph has %d edges, fresh replay %d", rc, fc)
	}
	want, err := fresh.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	sameSlate(t, "restore after churn vs fresh replay", got, want)
}

// TestSnapshotSameEpochKeepsPool: without churn between save and restore
// the snapshot's sample pool is installed verbatim — the evict/restore
// fast path must stay an identity operation.
func TestSnapshotSameEpochKeepsPool(t *testing.T) {
	cat := liveCatalog(t, -1, 25)
	sh, err := NewLiveShared(liveConfig(), cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sh.NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	slate, err := eng.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Click(slate.All[0], slate.All); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if len(snap.Samples) == 0 {
		t.Fatal("engine with a drawn pool snapshotted no samples")
	}
	restored, err := sh.NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	s1, err := eng.Samples()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := restored.Samples()
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Fatalf("restored pool size %d, want %d", len(s2), len(s1))
	}
	for i := range s1 {
		for j := range s1[i].W {
			if s1[i].W[j] != s2[i].W[j] {
				t.Fatalf("same-epoch restore perturbed pool sample %d dim %d", i, j)
			}
		}
	}
}

// TestV1SnapshotRestoresUnderLiveEpoch: a legacy dense-ID snapshot loads
// into a live deployment by interpreting its IDs against the restore-time
// epoch (the old semantics), and the next Snapshot emits it re-keyed as
// v2 stable IDs.
func TestV1SnapshotRestoresUnderLiveEpoch(t *testing.T) {
	cat := liveCatalog(t, -1, 25)
	sh, err := NewLiveShared(liveConfig(), cat)
	if err != nil {
		t.Fatal(err)
	}
	v1 := &Snapshot{Version: 1, Preferences: []PreferencePair{
		{Winner: []int{0, 1}, Loser: []int{2}},
	}}
	eng, err := sh.NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Restore(v1); err != nil {
		t.Fatalf("v1 restore under live epoch: %v", err)
	}
	if eng.Graph().Edges() != 1 {
		t.Fatalf("restored %d edges, want 1", eng.Graph().Edges())
	}
	migrated := eng.Snapshot()
	if migrated.Version != 2 || migrated.Epoch != cat.Current().ID {
		t.Fatalf("migrated snapshot version %d epoch %d, want v2 under epoch %d",
			migrated.Version, migrated.Epoch, cat.Current().ID)
	}
	// Stable IDs of dense 0,1,2 in epoch 1 are 0,1,2 (UNI identity); after
	// deleting stable 0 the same preference survives under new dense IDs.
	if _, err := cat.Delete([]int{0}); err != nil {
		t.Fatal(err)
	}
	eng2, err := sh.NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Restore(migrated); err != nil {
		t.Fatal(err)
	}
	items, prefs := eng2.RestoreDrops()
	if items != 1 || prefs != 0 || eng2.Graph().Edges() != 1 {
		t.Fatalf("post-churn migrated restore: drops (%d, %d), edges %d; want (1, 0), 1",
			items, prefs, eng2.Graph().Edges())
	}
}

// TestConcurrentRecommendAcrossSwaps is the tentpole's race suite (run
// under -race): many sessions recommend while the catalogue churns. Each
// slate must be internally coherent — computed against one epoch, every
// item ID resolvable in that epoch's space, scores finite — and epochs
// observed by one session must be monotone.
func TestConcurrentRecommendAcrossSwaps(t *testing.T) {
	cat := liveCatalog(t, time.Millisecond, 25)
	sh, err := NewLiveShared(liveConfig(), cat)
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 6
	stop := make(chan struct{})
	errs := make(chan error, sessions+1)
	var wg sync.WaitGroup

	// Mutator: inserts, reprices, and deletes only its own high-ID items,
	// forcing a steady stream of epoch swaps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(555))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := 2000 + rng.Intn(10)
			if i%4 == 3 {
				if _, err := cat.Delete([]int{id}); err != nil {
					errs <- err
					return
				}
			} else if err := cat.Upsert([]feature.Item{{ID: id, Values: []float64{rng.Float64(), rng.Float64()}}}); err != nil {
				errs <- err
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			eng, err := sh.NewEngine(int64(s + 1))
			if err != nil {
				errs <- err
				return
			}
			var lastEpoch uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				slate, err := eng.Recommend()
				if err != nil {
					errs <- err
					return
				}
				if slate.Epoch < lastEpoch {
					errs <- fmt.Errorf("slate epoch went backwards: %d after %d", slate.Epoch, lastEpoch)
					return
				}
				lastEpoch = slate.Epoch
				n := len(slate.Space.Items)
				for _, p := range slate.All {
					for _, id := range p.IDs {
						if id < 0 || id >= n {
							errs <- fmt.Errorf("epoch %d slate references item %d outside its %d-item space", slate.Epoch, id, n)
							return
						}
					}
				}
				for _, r := range slate.Recommended {
					if math.IsNaN(r.Score) || math.IsInf(r.Score, 0) {
						errs <- fmt.Errorf("epoch %d slate has non-finite score %v", slate.Epoch, r.Score)
						return
					}
				}
			}
		}(s)
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	cat.Flush()
	if cat.Current().ID < 2 {
		t.Fatal("catalogue never swapped during the race window")
	}
}

// TestRefreshedFeedbackRedrawsPool: feedback that refreshes a known node's
// vector under a newer epoch rewrites the constraints of every edge
// touching that node, so the sample pool — maintained incrementally
// against the old geometry — must be discarded and redrawn rather than
// patched with just the new constraint.
func TestRefreshedFeedbackRedrawsPool(t *testing.T) {
	cat := liveCatalog(t, -1, 25)
	sh, err := NewLiveShared(liveConfig(), cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sh.NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Recommend(); err != nil { // epoch 1 slate; pool drawn
		t.Fatal(err)
	}
	if err := eng.Feedback(pkgspace.New(0), pkgspace.New(1)); err != nil {
		t.Fatal(err)
	}
	if eng.pool == nil {
		t.Fatal("pool vanished after ordinary feedback")
	}

	// Reprice item 0: epoch swaps, the next slate re-pins feedback
	// identity, and feedback touching package {0} (stable) refreshes it.
	ep := cat.Current()
	it := ep.Items()[0]
	it.ID = ep.StableID(0)
	it.Values = []float64{0.99, 0.01}
	if err := cat.Upsert([]feature.Item{it}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Recommend(); err != nil {
		t.Fatal(err)
	}
	if eng.pool == nil {
		t.Fatal("pool not drawn by recommend")
	}
	if err := eng.Feedback(pkgspace.New(0), pkgspace.New(2)); err != nil {
		t.Fatal(err)
	}
	if eng.pool != nil {
		t.Fatal("cross-epoch refresh left the incrementally maintained pool in place")
	}
	if _, err := eng.Recommend(); err != nil { // redraws under the full set
		t.Fatal(err)
	}
	// Same-epoch follow-up feedback maintains incrementally again.
	if err := eng.Feedback(pkgspace.New(3), pkgspace.New(4)); err != nil {
		t.Fatal(err)
	}
	if eng.pool == nil {
		t.Fatal("same-epoch feedback discarded the pool")
	}
}

// TestSnapshotOmitsCrossEpochPool: a pool drawn and maintained under one
// epoch cannot be reproduced from a later epoch's geometry (renormalized
// vectors change the constraint set), so a snapshot taken after the
// feedback view moved on ships preferences only and the restored engine
// redraws — keeping the pool would install samples that violate the
// rebuilt constraints.
func TestSnapshotOmitsCrossEpochPool(t *testing.T) {
	cat := liveCatalog(t, -1, 25)
	sh, err := NewLiveShared(liveConfig(), cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sh.NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Recommend(); err != nil { // pool drawn under epoch 1
		t.Fatal(err)
	}
	if err := eng.Feedback(pkgspace.New(0), pkgspace.New(1)); err != nil {
		t.Fatal(err)
	}
	// An item with out-of-range values rescales the normalizer: every
	// package vector changes in epoch 2, so epoch-1 constraint geometry is
	// not reproducible from epoch 2.
	if err := cat.Upsert([]feature.Item{{ID: 700, Values: []float64{5, 5}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Recommend(); err != nil { // fb view moves to epoch 2; pool survives in-session
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if snap.Epoch != cat.Current().ID {
		t.Fatalf("snapshot epoch %d, want %d", snap.Epoch, cat.Current().ID)
	}
	if len(snap.Preferences) != 1 {
		t.Fatalf("snapshot has %d preferences, want 1", len(snap.Preferences))
	}
	if len(snap.Samples) != 0 {
		t.Fatalf("snapshot ships %d samples whose geometry (epoch 1) lags its epoch (%d)",
			len(snap.Samples), snap.Epoch)
	}
	// A pool without preferences is epoch-free and still serialized.
	virgin, err := sh.NewEngine(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := virgin.Recommend(); err != nil {
		t.Fatal(err)
	}
	if vs := virgin.Snapshot(); len(vs.Samples) == 0 {
		t.Fatal("preference-free pool omitted from snapshot")
	}
}

// TestCycleFeedbackAfterRefreshRedrawsPool: a contradictory click on a
// repriced package refreshes node vectors BEFORE the cycle is detected, so
// even the rejected feedback must invalidate the incrementally maintained
// pool.
func TestCycleFeedbackAfterRefreshRedrawsPool(t *testing.T) {
	cat := liveCatalog(t, -1, 25)
	sh, err := NewLiveShared(liveConfig(), cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sh.NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Recommend(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Feedback(pkgspace.New(2), pkgspace.New(0)); err != nil {
		t.Fatal(err)
	}
	ep := cat.Current()
	it := ep.Items()[0]
	it.ID = ep.StableID(0)
	it.Values = []float64{0.99, 0.01}
	if err := cat.Upsert([]feature.Item{it}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Recommend(); err != nil { // fb view → epoch 2
		t.Fatal(err)
	}
	if eng.pool == nil {
		t.Fatal("pool missing before the contradictory feedback")
	}
	err = eng.Feedback(pkgspace.New(0), pkgspace.New(2)) // contradicts {2}≻{0}
	if !errors.Is(err, prefgraph.ErrCycle) {
		t.Fatalf("contradictory feedback error = %v, want ErrCycle", err)
	}
	if eng.pool != nil {
		t.Fatal("cycle-rejected feedback refreshed node vectors but left the pool in place")
	}
}
