// Tests for the live-catalogue serving path: epoch-pinned Recommend over a
// mutable catalog.Catalog, the bit-identical post-swap property, and the
// race-tested guarantee that concurrent recommends across an epoch swap
// never observe a torn index or a cross-epoch cached result.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"toppkg/internal/catalog"
	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/search"
)

func liveProfile() *feature.Profile {
	return feature.SimpleProfile(feature.AggSum, feature.AggAvg)
}

// liveConfig is the engine configuration both sides of the bit-identical
// comparison share. Everything that could perturb determinism is pinned.
func liveConfig() Config {
	return Config{
		Profile:        liveProfile(),
		MaxPackageSize: 3,
		K:              2,
		RandomCount:    2,
		SampleCount:    40,
		Seed:           7,
		Search:         search.Options{MaxQueue: 32, MaxAccessed: 100},
	}
}

func liveCatalog(t *testing.T, coalesce time.Duration, n int) *catalog.Catalog {
	t.Helper()
	cat, err := catalog.New(catalog.Config{
		Profile:        liveProfile(),
		MaxPackageSize: 3,
		Items:          dataset.UNI(n, 2, rand.New(rand.NewSource(3))),
		Coalesce:       coalesce,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// mustSlate builds a fresh engine from sh with the shared seed and runs
// one Recommend.
func mustSlate(t *testing.T, sh *Shared) *Slate {
	t.Helper()
	eng, err := sh.NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	slate, err := eng.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	return slate
}

// sameSlate asserts two slates are bit-identical: same recommended
// packages with bitwise-equal scores, in order, and the same exploration
// tail.
func sameSlate(t *testing.T, label string, got, want *Slate) {
	t.Helper()
	if len(got.Recommended) != len(want.Recommended) {
		t.Fatalf("%s: %d recommended, want %d", label, len(got.Recommended), len(want.Recommended))
	}
	for i := range want.Recommended {
		g, w := got.Recommended[i], want.Recommended[i]
		if g.Pkg.Signature() != w.Pkg.Signature() {
			t.Fatalf("%s: recommended[%d] = %s, want %s", label, i, g.Pkg.Signature(), w.Pkg.Signature())
		}
		if math.Float64bits(g.Score) != math.Float64bits(w.Score) {
			t.Fatalf("%s: recommended[%d] score %v, want bit-identical %v", label, i, g.Score, w.Score)
		}
	}
	if len(got.Random) != len(want.Random) {
		t.Fatalf("%s: %d random, want %d", label, len(got.Random), len(want.Random))
	}
	for i := range want.Random {
		if got.Random[i].Signature() != want.Random[i].Signature() {
			t.Fatalf("%s: random[%d] = %s, want %s", label, i, got.Random[i].Signature(), want.Random[i].Signature())
		}
	}
}

// TestLiveRecommendBitIdenticalAfterMutations is the tentpole's property
// test: after any Upsert/Delete batch, a Recommend served through the live
// Shared (with its warm, epoch-keyed result cache) is bit-identical to a
// fresh engine built statically from the mutated item set — i.e. epoch
// swaps are semantically invisible, and nothing cached before a swap can
// leak through it.
func TestLiveRecommendBitIdenticalAfterMutations(t *testing.T) {
	cat := liveCatalog(t, -1, 30) // synchronous rebuilds: deterministic
	sh, err := NewLiveShared(liveConfig(), cat)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	nextID := 1000
	for trial := 0; trial < 10; trial++ {
		// Random mutation batch: add items, reprice survivors, delete some.
		switch trial % 3 {
		case 0: // insert a few brand-new items
			batch := make([]feature.Item, 1+rng.Intn(3))
			for i := range batch {
				batch[i] = feature.Item{ID: nextID, Name: "new", Values: []float64{rng.Float64(), rng.Float64()}}
				nextID++
			}
			if err := cat.Upsert(batch); err != nil {
				t.Fatal(err)
			}
		case 1: // reprice existing items in place (stable IDs unchanged)
			ep := cat.Current()
			i := rng.Intn(len(ep.Items()))
			it := ep.Items()[i]
			it.ID = ep.StableID(i)
			it.Values = []float64{rng.Float64(), rng.Float64()}
			if err := cat.Upsert([]feature.Item{it}); err != nil {
				t.Fatal(err)
			}
		default: // delete a random surviving item
			ep := cat.Current()
			if _, err := cat.Delete([]int{ep.StableID(rng.Intn(len(ep.Items())))}); err != nil {
				t.Fatal(err)
			}
		}

		ep := cat.Current()
		live := mustSlate(t, sh)
		if live.Epoch != ep.ID {
			t.Fatalf("trial %d: slate pinned epoch %d, catalogue at %d", trial, live.Epoch, ep.ID)
		}

		// The oracle: a cold engine over exactly the mutated item set, with
		// caching disabled so nothing can be reused from anywhere.
		cfg := liveConfig()
		cfg.Items = ep.Items()
		cfg.SearchCacheSize = -1
		fresh, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Recommend()
		if err != nil {
			t.Fatal(err)
		}
		sameSlate(t, "after mutation batch", live, want)
	}
	if st := sh.SearchCache().Stats(); st.Epoch == 0 {
		t.Error("epoch swaps never invalidated the shared result cache")
	}
}

// TestStaleCacheNotServedAfterReprice pins the cross-epoch cache hazard
// directly: warm the cache, change every item's values (which changes
// every top-k), and verify the next Recommend reflects the new values
// rather than the cached pre-swap results.
func TestStaleCacheNotServedAfterReprice(t *testing.T) {
	cat := liveCatalog(t, -1, 20)
	sh, err := NewLiveShared(liveConfig(), cat)
	if err != nil {
		t.Fatal(err)
	}
	before := mustSlate(t, sh) // warms the shared cache for epoch 1
	_ = before

	ep := cat.Current()
	rng := rand.New(rand.NewSource(4))
	batch := make([]feature.Item, len(ep.Items()))
	for i := range batch {
		batch[i] = feature.Item{
			ID:     ep.StableID(i),
			Name:   ep.Items()[i].Name,
			Values: []float64{rng.Float64(), rng.Float64()},
		}
	}
	if err := cat.Upsert(batch); err != nil {
		t.Fatal(err)
	}

	cfg := liveConfig()
	cfg.Items = cat.Current().Items()
	cfg.SearchCacheSize = -1
	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	sameSlate(t, "after full reprice", mustSlate(t, sh), want)
}

// TestFeedbackSurvivesEpochSwap: learned state is geometric (constraint
// vectors computed at feedback time), so a session keeps recommending
// after the catalogue changes under it.
func TestFeedbackSurvivesEpochSwap(t *testing.T) {
	cat := liveCatalog(t, -1, 25)
	sh, err := NewLiveShared(liveConfig(), cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sh.NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	slate, err := eng.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Click(slate.All[0], slate.All); err != nil {
		t.Fatal(err)
	}
	if err := cat.Upsert([]feature.Item{{ID: 500, Values: []float64{0.9, 0.9}}}); err != nil {
		t.Fatal(err)
	}
	after, err := eng.Recommend()
	if err != nil {
		t.Fatalf("recommend after swap with feedback: %v", err)
	}
	if after.Epoch != cat.Current().ID {
		t.Fatalf("post-swap slate pinned epoch %d, want %d", after.Epoch, cat.Current().ID)
	}
	if eng.Stats().Feedback == 0 {
		t.Fatal("feedback lost across swap")
	}
}

// TestClickResolvesAgainstSlateEpoch: a click always refers to the slate
// the user saw, so its item IDs must be interpreted in — and its
// preference vectors computed from — that slate's epoch, even after the
// catalogue shrinks or remaps dense IDs underneath it.
func TestClickResolvesAgainstSlateEpoch(t *testing.T) {
	cat := liveCatalog(t, -1, 25)
	sh, err := NewLiveShared(liveConfig(), cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sh.NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	slate, err := eng.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the catalogue so the slate's highest dense IDs are out of
	// range in the current epoch, and remap everything below them.
	ep := cat.Current()
	if _, err := cat.Delete([]int{ep.StableID(0), ep.StableID(1), ep.StableID(2)}); err != nil {
		t.Fatal(err)
	}
	if got := eng.FeedbackSpace(); got != slate.Space {
		t.Fatal("FeedbackSpace is not the last slate's epoch space")
	}
	if err := eng.Click(slate.All[0], slate.All); err != nil {
		t.Fatalf("click on a pre-swap slate rejected: %v", err)
	}
	if eng.Stats().Feedback == 0 {
		t.Fatal("pre-swap click recorded no feedback")
	}
	// The next slate moves to the new epoch, and future feedback with it.
	after, err := eng.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if after.Epoch != cat.Current().ID {
		t.Fatalf("next slate epoch = %d, want %d", after.Epoch, cat.Current().ID)
	}
	if got := eng.FeedbackSpace(); got != after.Space {
		t.Fatal("FeedbackSpace did not advance with the new slate")
	}
}

// TestConcurrentRecommendAcrossSwaps is the tentpole's race suite (run
// under -race): many sessions recommend while the catalogue churns. Each
// slate must be internally coherent — computed against one epoch, every
// item ID resolvable in that epoch's space, scores finite — and epochs
// observed by one session must be monotone.
func TestConcurrentRecommendAcrossSwaps(t *testing.T) {
	cat := liveCatalog(t, time.Millisecond, 25)
	sh, err := NewLiveShared(liveConfig(), cat)
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 6
	stop := make(chan struct{})
	errs := make(chan error, sessions+1)
	var wg sync.WaitGroup

	// Mutator: inserts, reprices, and deletes only its own high-ID items,
	// forcing a steady stream of epoch swaps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(555))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := 2000 + rng.Intn(10)
			if i%4 == 3 {
				if _, err := cat.Delete([]int{id}); err != nil {
					errs <- err
					return
				}
			} else if err := cat.Upsert([]feature.Item{{ID: id, Values: []float64{rng.Float64(), rng.Float64()}}}); err != nil {
				errs <- err
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			eng, err := sh.NewEngine(int64(s + 1))
			if err != nil {
				errs <- err
				return
			}
			var lastEpoch uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				slate, err := eng.Recommend()
				if err != nil {
					errs <- err
					return
				}
				if slate.Epoch < lastEpoch {
					errs <- fmt.Errorf("slate epoch went backwards: %d after %d", slate.Epoch, lastEpoch)
					return
				}
				lastEpoch = slate.Epoch
				n := len(slate.Space.Items)
				for _, p := range slate.All {
					for _, id := range p.IDs {
						if id < 0 || id >= n {
							errs <- fmt.Errorf("epoch %d slate references item %d outside its %d-item space", slate.Epoch, id, n)
							return
						}
					}
				}
				for _, r := range slate.Recommended {
					if math.IsNaN(r.Score) || math.IsInf(r.Score, 0) {
						errs <- fmt.Errorf("epoch %d slate has non-finite score %v", slate.Epoch, r.Score)
						return
					}
				}
			}
		}(s)
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	cat.Flush()
	if cat.Current().ID < 2 {
		t.Fatal("catalogue never swapped during the race window")
	}
}
