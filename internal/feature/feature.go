// Package feature defines items, aggregate feature profiles, utility
// functions and the incremental package state used throughout the system.
//
// An item is an m-dimensional vector of non-negative feature values (with
// optional nulls). A package is a set of items; its feature vector is
// obtained by aggregating item values according to a Profile, one entry per
// utility dimension. Utility is a linear function of the normalized
// aggregate vector (paper §2, Equation 1).
package feature

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"
	"slices"
	"strings"
)

// Null is the sentinel for a missing feature value. The paper allows items
// to lack values for some features; aggregates skip nulls.
var Null = math.NaN()

// IsNull reports whether a feature value is the null sentinel.
func IsNull(v float64) bool { return math.IsNaN(v) }

// Agg identifies one of the aggregation functions a profile entry may use
// (paper Definition 1).
type Agg uint8

// Aggregation functions. AggNull means the dimension is ignored.
const (
	AggNull Agg = iota
	AggMin
	AggMax
	AggSum
	AggAvg
)

// String returns the lower-case name of the aggregation.
func (a Agg) String() string {
	switch a {
	case AggNull:
		return "null"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	}
	return fmt.Sprintf("agg(%d)", uint8(a))
}

// ParseAgg converts a name such as "sum" into an Agg value.
func ParseAgg(s string) (Agg, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "null", "":
		return AggNull, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "sum":
		return AggSum, nil
	case "avg", "mean":
		return AggAvg, nil
	}
	return AggNull, fmt.Errorf("feature: unknown aggregation %q", s)
}

// Item is a single recommendable entity: an identifier plus its raw feature
// values. Values must be non-negative; use Null for missing values.
type Item struct {
	// ID is a dense index into the item set (0..n-1).
	ID int
	// Name is an optional human-readable label.
	Name string
	// Values holds the raw feature values, Null where missing.
	Values []float64
}

// Entry is one utility dimension of an aggregate feature profile: an
// aggregation applied to one item feature. The paper assumes one entry per
// feature; allowing several entries to reference the same feature is the
// generalization the paper notes is straightforward.
type Entry struct {
	// Feature is the index of the item feature this entry aggregates.
	Feature int
	// Agg is the aggregation function.
	Agg Agg
}

// Profile is an aggregate feature profile (paper Definition 1): the list of
// utility dimensions of the package feature space.
type Profile struct {
	entries []Entry
	// featureCount is the number of raw item features the profile expects.
	featureCount int
}

// NewProfile builds a profile over items with featureCount raw features.
// Every entry's feature index must be within range.
func NewProfile(featureCount int, entries ...Entry) (*Profile, error) {
	if featureCount <= 0 {
		return nil, fmt.Errorf("feature: featureCount must be positive, got %d", featureCount)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("feature: profile needs at least one entry")
	}
	for i, e := range entries {
		if e.Feature < 0 || e.Feature >= featureCount {
			return nil, fmt.Errorf("feature: entry %d references feature %d, want [0,%d)", i, e.Feature, featureCount)
		}
	}
	cp := make([]Entry, len(entries))
	copy(cp, entries)
	return &Profile{entries: cp, featureCount: featureCount}, nil
}

// MustProfile is NewProfile that panics on error; intended for tests,
// examples and literals whose validity is static.
func MustProfile(featureCount int, entries ...Entry) *Profile {
	p, err := NewProfile(featureCount, entries...)
	if err != nil {
		panic(err)
	}
	return p
}

// SimpleProfile builds the paper's default profile: entry i applies aggs[i]
// to feature i.
func SimpleProfile(aggs ...Agg) *Profile {
	entries := make([]Entry, len(aggs))
	for i, a := range aggs {
		entries[i] = Entry{Feature: i, Agg: a}
	}
	return MustProfile(len(aggs), entries...)
}

// Dims returns the number of utility dimensions (profile entries).
func (p *Profile) Dims() int { return len(p.entries) }

// FeatureCount returns the number of raw item features the profile expects.
func (p *Profile) FeatureCount() int { return p.featureCount }

// Entry returns the i-th profile entry.
func (p *Profile) Entry(i int) Entry { return p.entries[i] }

// Entries returns a copy of the profile's entries.
func (p *Profile) Entries() []Entry {
	cp := make([]Entry, len(p.entries))
	copy(cp, p.entries)
	return cp
}

// String renders the profile as e.g. "(sum0, avg1)".
func (p *Profile) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, e := range p.entries {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s%d", e.Agg, e.Feature)
	}
	b.WriteByte(')')
	return b.String()
}

// Normalizer scales raw aggregate values into [0,1] per dimension. The
// scale for a dimension is the maximum aggregate value achievable by any
// package of size at most maxSize (paper §2): for sum, the sum of the
// maxSize largest values of the feature; for min, max and avg, the maximum
// item value.
type Normalizer struct {
	scales []float64
	// Delta-maintenance state (see NewNormalizerFrom): per dimension, the
	// count of non-null values of the dimension's feature and the
	// descending "top" values the scale derives from — up to maxSize
	// values for sum dimensions, the single max otherwise; nil while the
	// dimension has no values or uses AggNull. Top slices may be shared
	// between a parent normalizer and normalizers derived from it, so they
	// are never mutated in place.
	counts  []int
	tops    [][]float64
	maxSize int
}

// NewNormalizer computes the per-dimension scales for the given items,
// profile and maximum package size.
func NewNormalizer(items []Item, p *Profile, maxSize int) (*Normalizer, error) {
	cols, _ := buildColumns(items, p.FeatureCount())
	return newNormalizerCols(cols, items, p, maxSize)
}

// newNormalizerCols is NewNormalizer over prebuilt columns; items is kept
// only for error attribution.
func newNormalizerCols(cols [][]float64, items []Item, p *Profile, maxSize int) (*Normalizer, error) {
	if maxSize <= 0 {
		return nil, fmt.Errorf("feature: maxSize must be positive, got %d", maxSize)
	}
	n := newEmptyNormalizer(p, maxSize)
	for d, e := range p.entries {
		if e.Agg == AggNull {
			continue
		}
		count, top, err := dimTop(cols[e.Feature], items, e, maxSize)
		if err != nil {
			return nil, err
		}
		n.setDim(d, e.Agg, count, top)
	}
	return n, nil
}

func newEmptyNormalizer(p *Profile, maxSize int) *Normalizer {
	n := &Normalizer{
		scales:  make([]float64, p.Dims()),
		counts:  make([]int, p.Dims()),
		tops:    make([][]float64, p.Dims()),
		maxSize: maxSize,
	}
	for d := range n.scales {
		n.scales[d] = 1 // AggNull and empty dimensions scale by 1
	}
	return n
}

// setDim installs one dimension's maintained state and derives its scale.
func (n *Normalizer) setDim(d int, agg Agg, count int, top []float64) {
	n.counts[d] = count
	n.tops[d] = top
	n.scales[d] = scaleFrom(agg, count, top)
}

// dimTop scans entry e's value column and returns the non-null value count
// and the descending top values the dimension's scale derives from: the
// maxSize largest for sum, the single max otherwise. Non-sum dimensions
// take a single allocation-free max pass; sum dimensions select the top
// maxSize through a bounded min-heap (O(n·log φ)) and sort only those —
// the descending value sequence (and hence the scale bits) is identical to
// a full descending sort, because the selected multiset and its sorted
// order are unique. items is consulted only to attribute errors.
func dimTop(col []float64, items []Item, e Entry, maxSize int) (count int, top []float64, err error) {
	if e.Agg != AggSum {
		// min, max, avg: the best achievable is the single best item.
		best := 0.0
		for i, v := range col {
			if IsNull(v) {
				continue
			}
			if v < 0 {
				return 0, nil, fmt.Errorf("feature: item %d has negative value %g on feature %d", items[i].ID, v, e.Feature)
			}
			count++
			if v > best {
				best = v
			}
		}
		if count == 0 {
			return 0, nil, nil
		}
		return count, []float64{best}, nil
	}
	// Sum: keep the maxSize largest values in a min-heap rooted at heap[0].
	heap := make([]float64, 0, maxSize)
	for i, v := range col {
		if IsNull(v) {
			continue
		}
		if v < 0 {
			return 0, nil, fmt.Errorf("feature: item %d has negative value %g on feature %d", items[i].ID, v, e.Feature)
		}
		count++
		if len(heap) < maxSize {
			heap = append(heap, v)
			for c := len(heap) - 1; c > 0; {
				p := (c - 1) / 2
				if heap[p] <= heap[c] {
					break
				}
				heap[p], heap[c] = heap[c], heap[p]
				c = p
			}
			continue
		}
		if v <= heap[0] {
			continue
		}
		heap[0] = v
		for c := 0; ; {
			l, r := 2*c+1, 2*c+2
			s := c
			if l < len(heap) && heap[l] < heap[s] {
				s = l
			}
			if r < len(heap) && heap[r] < heap[s] {
				s = r
			}
			if s == c {
				break
			}
			heap[c], heap[s] = heap[s], heap[c]
			c = s
		}
	}
	if count == 0 {
		return 0, nil, nil
	}
	slices.SortFunc(heap, descFloat)
	return count, heap, nil
}

// descFloat orders float64s descending (lists never contain nulls).
func descFloat(a, b float64) int { return cmp.Compare(b, a) }

// scaleFrom derives the normalization divisor from the maintained state,
// reproducing NewNormalizer's coercions exactly: dimensions with no
// values, or whose best achievable aggregate is 0, scale by 1. Summing
// the descending top values gives the same float result as NewNormalizer
// because it adds the same value sequence in the same order.
func scaleFrom(agg Agg, count int, top []float64) float64 {
	if count == 0 {
		return 1
	}
	s := 0.0
	switch agg {
	case AggSum:
		for _, v := range top {
			s += v
		}
	default:
		s = top[0]
	}
	if s == 0 {
		return 1
	}
	return s
}

// newNormalizerFrom derives the normalizer for an item set obtained from
// the parent's by removing and then adding raw value rows (a changed item
// contributes one row to each). cols is the new set's prebuilt columnar
// storage (rescans read it). A dimension's scale is recomputed from
// scratch — a full rescan of the column — only when a removed value reaches
// the state the scale derives from: ≥ the top-maxSize cutoff for sum
// dimensions, equal to the max otherwise (with a not-yet-full top set,
// every value participates, so any removal rescans). Additions never force
// a rescan: the top set absorbs them in O(maxSize). Scales are
// bit-identical to NewNormalizer over items — untouched dimensions keep
// the parent's scale verbatim, incremental updates preserve the top value
// sequence a fresh sort would produce, and rescanned dimensions re-run the
// same computation.
func newNormalizerFrom(parent *Normalizer, cols [][]float64, items []Item, p *Profile, maxSize int, removed, added [][]float64) (*Normalizer, error) {
	if maxSize != parent.maxSize {
		return nil, fmt.Errorf("feature: NewNormalizerFrom maxSize %d, parent has %d", maxSize, parent.maxSize)
	}
	n := newEmptyNormalizer(p, maxSize)
	var remVals, addVals []float64 // per-dimension scratch
	for d, e := range p.entries {
		if e.Agg == AggNull {
			continue
		}
		remVals, addVals = remVals[:0], addVals[:0]
		for _, row := range removed {
			if v := row[e.Feature]; !IsNull(v) {
				remVals = append(remVals, v)
			}
		}
		for _, row := range added {
			v := row[e.Feature]
			if IsNull(v) {
				continue
			}
			if v < 0 {
				return nil, fmt.Errorf("feature: negative value %g on feature %d", v, e.Feature)
			}
			addVals = append(addVals, v)
		}
		count, top := parent.counts[d], parent.tops[d]
		if len(remVals) == 0 && len(addVals) == 0 {
			n.setDim(d, e.Agg, count, top) // untouched: share the parent's state
			continue
		}
		// cutoff is the smallest value still contributing to the scale;
		// -Inf when the top set is not full (then every value contributes).
		cutoff := math.Inf(-1)
		if e.Agg == AggSum {
			if len(top) >= maxSize {
				cutoff = top[len(top)-1]
			}
		} else if count > 0 {
			cutoff = top[0]
		}
		dirty := false
		for _, v := range remVals {
			if v >= cutoff {
				dirty = true
				break
			}
			count--
		}
		if dirty {
			count, top, _ = dimTop(cols[e.Feature], items, e, maxSize) // rows already validated
		} else if len(addVals) > 0 {
			top = slices.Clone(top)
			for _, v := range addVals {
				count++
				if e.Agg == AggSum {
					if len(top) >= maxSize && v <= top[len(top)-1] {
						continue // below the cutoff: the top set is unchanged
					}
					i, _ := slices.BinarySearchFunc(top, v, descFloat)
					top = slices.Insert(top, i, v)
					if len(top) > maxSize {
						top = top[:maxSize]
					}
				} else if len(top) == 0 {
					top = []float64{v}
				} else if v > top[0] {
					top[0] = v // already cloned above
				}
			}
		}
		n.setDim(d, e.Agg, count, top)
	}
	return n, nil
}

// Scale returns the normalization divisor for dimension d.
func (n *Normalizer) Scale(d int) float64 { return n.scales[d] }

// Dims returns the number of dimensions the normalizer covers.
func (n *Normalizer) Dims() int { return len(n.scales) }

// Apply divides raw aggregate vector v in place by the per-dimension scales
// and returns it.
func (n *Normalizer) Apply(v []float64) []float64 {
	for i := range v {
		v[i] /= n.scales[i]
	}
	return v
}

// Space bundles the immutable inputs of a recommendation problem: the item
// set, the profile, the package size bound and the derived normalizer. It
// is the context against which packages are evaluated.
//
// Value storage is struct-of-arrays: cols[f] is the contiguous column of
// every item's value on raw feature f (Null entries verbatim), with a
// per-feature null bitmap alongside. The scoring kernels, the sorted-list
// index and the normalizer scans all iterate columns — one dense array per
// feature instead of a pointer chase per item — which is what keeps them
// cache-resident at million-item catalogues (and is the layout later SIMD
// work wants). Items keeps the row view for identity (ID, Name) and for
// cold paths that consume whole rows (serialization, oracles, examples);
// rows and columns hold bitwise-identical values.
type Space struct {
	Items   []Item
	Profile *Profile
	// MaxSize is φ, the system-defined maximum package size.
	MaxSize int
	Norm    *Normalizer
	// cols[f][i] is item i's value on feature f (Null where missing).
	cols [][]float64
	// nullBits[f] is the null bitmap of feature f: bit i set when item i
	// is missing the feature. Word-packed for popcount-style scans.
	nullBits [][]uint64
	// hasNull[f] records whether any item lacks feature f; used by the
	// upper-bound estimator to decide whether a "no contribution" pad is
	// attainable. nullCount[f] is the count behind it, maintained so a
	// derived space (NewSpaceFrom) can update the flags without rescanning.
	hasNull   []bool
	nullCount []int
	// hash is the geometry fingerprint (see Hash).
	hash uint64
}

// Col returns the contiguous value column of raw feature f (do not mutate).
// Null entries hold the Null sentinel, so IsNull works directly on column
// reads.
func (s *Space) Col(f int) []float64 { return s.cols[f] }

// NullBitmap returns feature f's null bitmap words (bit i = item i null;
// do not mutate).
func (s *Space) NullBitmap(f int) []uint64 { return s.nullBits[f] }

// ColStats scans one column block — feature f restricted to the given
// item ids — and returns the min/max over its non-null values plus the
// non-null count. This is the cluster-scan primitive of the partition
// layer: per-cluster per-dimension bounds are rebuilt one contiguous
// column at a time (ids ascending keeps the reads forward-moving) instead
// of chasing item rows across every feature.
func (s *Space) ColStats(f int, ids []int32) (min, max float64, nonNull int) {
	col := s.cols[f]
	min, max = math.Inf(1), math.Inf(-1)
	for _, id := range ids {
		v := col[id]
		if IsNull(v) {
			continue
		}
		nonNull++
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max, nonNull
}

// buildColumns transposes the row-major item values into per-feature
// columns plus null bitmaps. One pass, O(n·featureCount).
func buildColumns(items []Item, featureCount int) (cols [][]float64, nullBits [][]uint64) {
	n := len(items)
	colData := make([]float64, n*featureCount)
	cols = make([][]float64, featureCount)
	for f := range cols {
		cols[f] = colData[f*n : (f+1)*n : (f+1)*n]
	}
	words := (n + 63) / 64
	bitData := make([]uint64, words*featureCount)
	nullBits = make([][]uint64, featureCount)
	for f := range nullBits {
		nullBits[f] = bitData[f*words : (f+1)*words : (f+1)*words]
	}
	for i := range items {
		vals := items[i].Values
		for f := 0; f < featureCount; f++ {
			v := vals[f]
			cols[f][i] = v
			if IsNull(v) {
				nullBits[f][i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
	return cols, nullBits
}

// NewSpace validates the items against the profile and precomputes the
// columnar value storage, the normalizer and the null-presence flags.
func NewSpace(items []Item, p *Profile, maxSize int) (*Space, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("feature: empty item set")
	}
	for i := range items {
		if len(items[i].Values) != p.FeatureCount() {
			return nil, fmt.Errorf("feature: item %d has %d values, profile expects %d",
				items[i].ID, len(items[i].Values), p.FeatureCount())
		}
	}
	cols, nullBits := buildColumns(items, p.FeatureCount())
	norm, err := newNormalizerCols(cols, items, p, maxSize)
	if err != nil {
		return nil, err
	}
	nullCount := make([]int, p.FeatureCount())
	for f := range nullCount {
		nullCount[f] = popcount(nullBits[f])
	}
	return newSpace(items, p, maxSize, norm, cols, nullBits, nullCount), nil
}

// popcount sums the set bits of a bitmap.
func popcount(words []uint64) int {
	c := 0
	for _, w := range words {
		c += bits.OnesCount64(w)
	}
	return c
}

// newSpace assembles a space from precomputed parts, deriving the
// null-presence flags and geometry fingerprint.
func newSpace(items []Item, p *Profile, maxSize int, norm *Normalizer, cols [][]float64, nullBits [][]uint64, nullCount []int) *Space {
	hasNull := make([]bool, p.FeatureCount())
	for f, c := range nullCount {
		hasNull[f] = c > 0
	}
	sp := &Space{Items: items, Profile: p, MaxSize: maxSize, Norm: norm,
		cols: cols, nullBits: nullBits, hasNull: hasNull, nullCount: nullCount}
	sp.hash = sp.fingerprint()
	return sp
}

// NewSpaceFrom derives the space for a new dense item slice from a parent
// space whose item set differs by the given raw value rows: removed lists
// the rows that left the parent's set, added the rows that entered (a
// changed item contributes one row to each). The result is bit-identical
// to NewSpace(items, parent.Profile, parent.MaxSize) — per-dimension
// normalizer scales are recomputed only where the delta touches the
// values they derive from (NewNormalizerFrom), null-presence flags are
// maintained from per-feature null counts, and the geometry fingerprint
// is rehashed over the new items — but skips the parent-untouched
// per-dimension sorts, so its cost scales with the delta plus one O(n)
// pass, not O(n log n).
func NewSpaceFrom(parent *Space, items []Item, removed, added [][]float64) (*Space, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("feature: empty item set")
	}
	p := parent.Profile
	for i := range items {
		if len(items[i].Values) != p.FeatureCount() {
			return nil, fmt.Errorf("feature: item %d has %d values, profile expects %d",
				items[i].ID, len(items[i].Values), p.FeatureCount())
		}
	}
	for _, rows := range [2][][]float64{removed, added} {
		for _, row := range rows {
			if len(row) != p.FeatureCount() {
				return nil, fmt.Errorf("feature: delta row has %d values, profile expects %d", len(row), p.FeatureCount())
			}
		}
	}
	cols, nullBits := buildColumns(items, p.FeatureCount())
	norm, err := newNormalizerFrom(parent.Norm, cols, items, p, parent.MaxSize, removed, added)
	if err != nil {
		return nil, err
	}
	nullCount := append([]int(nil), parent.nullCount...)
	for _, row := range removed {
		for f, v := range row {
			if IsNull(v) {
				nullCount[f]--
			}
		}
	}
	for _, row := range added {
		for f, v := range row {
			if IsNull(v) {
				nullCount[f]++
			}
		}
	}
	return newSpace(items, p, parent.MaxSize, norm, cols, nullBits, nullCount), nil
}

// fingerprint digests everything package-vector geometry depends on: the
// profile's dimensions, φ, and every item value in dense order. Names and
// stable IDs are excluded — they do not enter any vector.
func (s *Space) fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	word(uint64(s.MaxSize))
	word(uint64(s.Profile.Dims()))
	for _, e := range s.Profile.Entries() {
		word(uint64(e.Feature)<<8 | uint64(e.Agg))
	}
	word(uint64(len(s.Items)))
	for i := range s.Items {
		for _, v := range s.Items[i].Values {
			word(math.Float64bits(v))
		}
	}
	return h.Sum64()
}

// Hash is a fingerprint of the space's vector geometry: two spaces with
// equal hashes compute (with overwhelming probability) bitwise-identical
// package vectors for the same dense IDs. Persistence uses it to decide
// whether state maintained against one space is valid under another —
// epoch counters are per-process, so an epoch ID alone cannot identify
// geometry across deployments.
func (s *Space) Hash() uint64 { return s.hash }

// HasNull reports whether any item is missing feature f.
func (s *Space) HasNull(f int) bool { return s.hasNull[f] }

// Dims returns the number of utility dimensions.
func (s *Space) Dims() int { return s.Profile.Dims() }

// N returns the number of items.
func (s *Space) N() int { return len(s.Items) }

// State is the incremental aggregate state of a package under construction:
// per utility dimension it tracks the running count of non-null
// contributions, their sum, min and max, plus the total package size. Adding
// an item is O(dims); the normalized aggregate vector and utility follow in
// O(dims).
type State struct {
	space *Space
	// Size is the number of items in the package (nulls included, per the
	// paper's avg definition which divides by |p|).
	Size int
	// agg packs the per-dimension summaries at stride 4 as
	// [count, sum, min, max]; count is stored as a float64, which is exact
	// for any reachable package size. The interleaved layout keeps one
	// dimension's summary on one cache line and lets the search kernels
	// copy a whole state with a single copy.
	agg []float64
}

// aggStride is the number of agg slots per dimension.
const aggStride = 4

// NewState returns the state of the empty package in space s.
func NewState(s *Space) *State {
	d := s.Dims()
	st := &State{space: s, agg: make([]float64, aggStride*d)}
	for i := 0; i < d; i++ {
		st.agg[aggStride*i+2] = math.Inf(1)
		st.agg[aggStride*i+3] = math.Inf(-1)
	}
	return st
}

// CopyFrom overwrites st with the contents of src (which must be over the
// same space), reusing st's storage — the allocation-free alternative to
// Clone for scratch states.
func (st *State) CopyFrom(src *State) {
	st.space = src.space
	st.Size = src.Size
	copy(st.agg, src.agg)
}

// Clone returns an independent copy of the state.
func (st *State) Clone() *State {
	return &State{
		space: st.space,
		Size:  st.Size,
		agg:   append([]float64(nil), st.agg...),
	}
}

// Add folds one item's values into the state. values must have the space's
// raw feature count; pass ContribNull for dimensions an imaginary item
// should skip (see AddContrib).
func (st *State) Add(it Item) {
	st.Size++
	for d, e := range st.space.Profile.entries {
		if e.Agg == AggNull {
			continue
		}
		v := it.Values[e.Feature]
		if IsNull(v) {
			continue
		}
		st.fold(d, v)
	}
}

// Contrib is a per-dimension contribution of an imaginary item used by the
// upper-bound estimator: either a concrete value or "no contribution".
type Contrib struct {
	// Skip true means the imaginary item is null on this dimension's feature.
	Skip bool
	// Value is the contributed value when Skip is false.
	Value float64
}

// AddContrib folds an imaginary item given explicit per-dimension
// contributions. The package size still increases by one (nulls count
// toward |p| in the paper's avg).
func (st *State) AddContrib(contribs []Contrib) {
	st.Size++
	for d := range st.space.Profile.entries {
		c := contribs[d]
		if c.Skip || st.space.Profile.entries[d].Agg == AggNull {
			continue
		}
		st.fold(d, c.Value)
	}
}

func (st *State) fold(d int, v float64) {
	b := aggStride * d
	st.agg[b]++
	st.agg[b+1] += v
	if v < st.agg[b+2] {
		st.agg[b+2] = v
	}
	if v > st.agg[b+3] {
		st.agg[b+3] = v
	}
}

// AggregateAfter returns the raw aggregate of dimension d as it would be if
// one more item were added with contribution c. The package size increments
// regardless of Skip (nulls count toward |p| in the paper's avg), but only a
// non-skipped value folds into the dimension.
func (st *State) AggregateAfter(d int, c Contrib) float64 {
	e := st.space.Profile.entries[d]
	if e.Agg == AggNull {
		return 0
	}
	b := aggStride * d
	count, sum, mn, mx := st.agg[b], st.agg[b+1], st.agg[b+2], st.agg[b+3]
	if !c.Skip {
		count++
		sum += c.Value
		if c.Value < mn {
			mn = c.Value
		}
		if c.Value > mx {
			mx = c.Value
		}
	}
	if count == 0 {
		return 0
	}
	switch e.Agg {
	case AggMin:
		return mn
	case AggMax:
		return mx
	case AggSum:
		return sum
	case AggAvg:
		return sum / float64(st.Size+1)
	}
	return 0
}

// Aggregate returns the raw (unnormalized) aggregate value of dimension d.
// Dimensions with no non-null contributions aggregate to 0.
func (st *State) Aggregate(d int) float64 {
	e := st.space.Profile.entries[d]
	b := aggStride * d
	if e.Agg == AggNull || st.agg[b] == 0 {
		return 0
	}
	switch e.Agg {
	case AggMin:
		return st.agg[b+2]
	case AggMax:
		return st.agg[b+3]
	case AggSum:
		return st.agg[b+1]
	case AggAvg:
		return st.agg[b+1] / float64(st.Size)
	}
	return 0
}

// Vector returns the normalized aggregate feature vector of the package.
func (st *State) Vector() []float64 {
	v := make([]float64, st.space.Dims())
	for d := range v {
		v[d] = st.Aggregate(d) / st.space.Norm.Scale(d)
	}
	return v
}

// VectorInto writes the normalized aggregate vector into dst (which must
// have length Dims) and returns it, avoiding an allocation.
func (st *State) VectorInto(dst []float64) []float64 {
	for d := range dst {
		dst[d] = st.Aggregate(d) / st.space.Norm.Scale(d)
	}
	return dst
}

// Pad modes select which imaginary contributions PadUpper may choose for a
// dimension with an active sorted list: the list's boundary value τ, a null
// contribution, or whichever of the two scores higher (attainable when the
// feature has nulls in the dataset).
const (
	PadTau uint8 = iota
	PadTauOrSkip
	PadSkip
)

// kernelDim is one dimension's precomputed constants for the fused search
// kernels: weight, normalization scale, the feature's contiguous value
// column, flat agg offset and aggregation kind. Hoisting these out of the
// per-round loops is what makes the kernels cheap — the hot path touches
// one small struct per dimension and indexes one dense column instead of
// chasing profile, normalizer, weight and per-item row slices.
type kernelDim struct {
	w, scale float64
	col      []float64
	feat     int32
	b        int32
	kind     Agg
}

func makeKernelDim(s *Space, u *Utility, d int) kernelDim {
	e := s.Profile.entries[d]
	return kernelDim{
		w:     u.W[d],
		scale: s.Norm.scales[d],
		col:   s.cols[e.Feature],
		feat:  int32(e.Feature),
		b:     int32(aggStride * d),
		kind:  e.Agg,
	}
}

// ScorePlan caches the constants ScoreAfter reads: every dimension with
// non-zero weight, in ascending dimension order. uncov lists the agg base
// offsets of the remaining slots — zero-weight or null-aggregated
// dimensions — which GrowFrom carries over from the parent verbatim.
type ScorePlan struct {
	dims  []kernelDim
	uncov []int32
}

// NewScorePlan builds the ScoreAfter plan for utility u over space s.
func NewScorePlan(s *Space, u *Utility) *ScorePlan {
	pl := &ScorePlan{}
	for d := 0; d < s.Dims(); d++ {
		if u.W[d] != 0 {
			pl.dims = append(pl.dims, makeKernelDim(s, u, d))
		}
		if u.W[d] == 0 || s.Profile.entries[d].Agg == AggNull {
			pl.uncov = append(pl.uncov, int32(aggStride*d))
		}
	}
	return pl
}

// PadPlan caches the constants PadUpper reads: skips are the non-zero-weight
// dimensions without an active sorted list, lists the dimensions with one,
// both in ascending dimension order.
type PadPlan struct {
	skips []kernelDim
	lists []kernelDim
}

// NewPadPlan builds the PadUpper plan for utility u over space s from the
// two dimension groups (each ascending).
func NewPadPlan(s *Space, u *Utility, skipDims, listDims []int) *PadPlan {
	pl := &PadPlan{}
	for _, d := range skipDims {
		pl.skips = append(pl.skips, makeKernelDim(s, u, d))
	}
	for _, d := range listDims {
		pl.lists = append(pl.lists, makeKernelDim(s, u, d))
	}
	return pl
}

// GrowFrom overwrites st with src grown by the item with dense id, folding
// only the dimensions the plan covers. Safe only when st is read
// exclusively through plan-covered (non-zero-weight) dimensions —
// zero-weight slots keep the parent's values. This is the fused
// CopyFrom+Add of the search hot path; item values come from the space's
// per-feature columns.
func (st *State) GrowFrom(src *State, pl *ScorePlan, id int32) {
	st.space = src.space
	st.Size = src.Size + 1
	dst, sa := st.agg, src.agg
	// Slots the plan never reads are carried over verbatim; plan-covered
	// slots are written outright below, so no full copy is needed.
	for _, b := range pl.uncov {
		dst[b] = sa[b]
		dst[b+1] = sa[b+1]
		dst[b+2] = sa[b+2]
		dst[b+3] = sa[b+3]
	}
	for i := range pl.dims {
		kd := &pl.dims[i]
		if kd.kind == AggNull {
			continue
		}
		b := kd.b
		count, sum := sa[b], sa[b+1]
		mn, mx := sa[b+2], sa[b+3]
		if v := kd.col[id]; !IsNull(v) {
			count++
			sum += v
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		dst[b] = count
		dst[b+1] = sum
		dst[b+2] = mn
		dst[b+3] = mx
	}
}

// ScoreAfter returns U(p ∪ {t}) for the item with dense id t without
// materializing the grown state — the fused equivalent of summing
// w·AggregateAfter/scale over the non-zero dimensions, bit-identical to
// that loop. Item values are read from the per-feature columns.
func (st *State) ScoreAfter(pl *ScorePlan, id int32) float64 {
	agg := st.agg
	szp1 := float64(st.Size + 1)
	util := 0.0
	for i := range pl.dims {
		kd := &pl.dims[i]
		var a float64
		if kd.kind != AggNull {
			b := kd.b
			count, sum := agg[b], agg[b+1]
			mn, mx := agg[b+2], agg[b+3]
			if v := kd.col[id]; !IsNull(v) {
				count++
				sum += v
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			if count != 0 {
				// Branch-free aggregate selection: the per-dimension kind
				// varies within one loop, so a switch here mispredicts on
				// nearly every iteration. Materializing all four candidates
				// and indexing by kind trades two cheap ALU ops (the division
				// is computed unconditionally) for the mispredict penalty.
				// Each candidate is the exact expression the switch would
				// compute, so the selected value is bit-identical.
				sel := [4]float64{mn, mx, sum, sum / szp1}
				a = sel[kd.kind-1]
			}
		}
		util += kd.w * a / kd.scale
	}
	return util
}

// ScoreAfterBatch writes U(p ∪ {t}) for each state into out (parallel to
// states), bit-identical to calling ScoreAfter on each state individually.
// Transposing the loops — dimensions outer, states inner — hoists the item
// value (one column load per dimension), its null test and the
// aggregation-kind dispatch out of the inner loop, so the per-state work
// is a handful of loads and one fused multiply-divide with no
// data-dependent branches. out entries accumulate per-dimension terms in
// the same ascending-dimension order as ScoreAfter.
func ScoreAfterBatch(pl *ScorePlan, id int32, states []*State, out []float64) {
	for j := range out {
		out[j] = 0
	}
	for i := range pl.dims {
		kd := &pl.dims[i]
		if kd.kind == AggNull {
			// ScoreAfter adds w·0/scale for null-aggregated dimensions; the
			// term is the same for every state.
			z := kd.w * 0 / kd.scale
			for j := range out {
				out[j] += z
			}
			continue
		}
		b := kd.b
		v := kd.col[id]
		if IsNull(v) {
			// No fold: the aggregate is the state's own (0 when empty).
			for j, st := range states {
				agg := st.agg
				var a float64
				if agg[b] != 0 {
					switch kd.kind {
					case AggMin:
						a = agg[b+2]
					case AggMax:
						a = agg[b+3]
					case AggSum:
						a = agg[b+1]
					case AggAvg:
						a = agg[b+1] / float64(st.Size+1)
					}
				}
				out[j] += kd.w * a / kd.scale
			}
			continue
		}
		// Non-null fold: the post-fold count is at least one, so the
		// count-zero guard of ScoreAfter always passes.
		switch kd.kind {
		case AggMin:
			for j, st := range states {
				mn := st.agg[b+2]
				if v < mn {
					mn = v
				}
				out[j] += kd.w * mn / kd.scale
			}
		case AggMax:
			for j, st := range states {
				mx := st.agg[b+3]
				if v > mx {
					mx = v
				}
				out[j] += kd.w * mx / kd.scale
			}
		case AggSum:
			for j, st := range states {
				sum := st.agg[b+1] + v
				out[j] += kd.w * sum / kd.scale
			}
		case AggAvg:
			for j, st := range states {
				sum := st.agg[b+1] + v
				a := sum / float64(st.Size+1)
				out[j] += kd.w * a / kd.scale
			}
		}
	}
}

// PadUpper is the fused upper-exp padding loop (search Algorithm 3): it
// repeatedly extends st with the per-dimension best imaginary contribution
// until the size cap phi, returning the running maximum utility over pad
// counts 1..phi−Size. It mutates the receiver (callers pass a scratch copy).
//
// modes and taus parallel pl.lists: each list dimension's pad mode and
// current boundary value τ. Per round each dimension's contribution is
// computed against the pre-round state (each fold touches only its own
// dimension's slots, and the size divisor advances once per round), so the
// result is bit-identical to the unfused choose-then-fold formulation; ties
// between τ and a null contribution keep τ.
func (st *State) PadUpper(pl *PadPlan, modes []uint8, taus []float64, phi int) float64 {
	agg := st.agg
	best := math.Inf(-1)
	for st.Size < phi {
		szp1 := float64(st.Size + 1)
		util := 0.0
		for i := range pl.skips {
			kd := &pl.skips[i]
			var a float64
			if kd.kind != AggNull {
				b := kd.b
				if agg[b] != 0 {
					switch kd.kind {
					case AggMin:
						a = agg[b+2]
					case AggMax:
						a = agg[b+3]
					case AggSum:
						a = agg[b+1]
					case AggAvg:
						a = agg[b+1] / szp1
					}
				}
			}
			util += kd.w * a / kd.scale
		}
		for i := range pl.lists {
			kd := &pl.lists[i]
			b := kd.b
			mode := modes[i]
			var bestVal, tau float64
			foldTau := false
			if mode != PadSkip {
				tau = taus[i]
				sum := agg[b+1] + tau
				mn, mx := agg[b+2], agg[b+3]
				if tau < mn {
					mn = tau
				}
				if tau > mx {
					mx = tau
				}
				var a float64
				switch kd.kind {
				case AggMin:
					a = mn
				case AggMax:
					a = mx
				case AggSum:
					a = sum
				case AggAvg:
					a = sum / szp1
				}
				bestVal = kd.w * a / kd.scale
				foldTau = true
			}
			if mode != PadTau {
				var a float64
				if agg[b] != 0 {
					switch kd.kind {
					case AggMin:
						a = agg[b+2]
					case AggMax:
						a = agg[b+3]
					case AggSum:
						a = agg[b+1]
					case AggAvg:
						a = agg[b+1] / szp1
					}
				}
				if v := kd.w * a / kd.scale; mode == PadSkip || v > bestVal {
					bestVal = v
					foldTau = false
				}
			}
			util += bestVal
			if foldTau {
				agg[b]++
				agg[b+1] += tau
				if tau < agg[b+2] {
					agg[b+2] = tau
				}
				if tau > agg[b+3] {
					agg[b+3] = tau
				}
			}
		}
		st.Size++
		if util > best {
			best = util
		}
	}
	return best
}

// padFastDims caps the list-dimension count PadUpperTau can handle with its
// stack-resident scratch; callers fall back to PadUpper above it.
const padFastDims = 16

// PadUpperTau is PadUpper specialized to runs where every list dimension
// still pads with its boundary value τ (mode PadTau throughout) — the common
// case for null-free datasets with live cursors. τ is constant within a
// call, so a dimension's min/max slots stop moving after the first fold and
// its sum advances by exactly τ per round; the loop below replays PadUpper's
// float operation sequence on stack locals instead of folding into the agg
// array, which lets callers skip the scratch copy entirely. The receiver is
// not modified. Bit-identical to PadUpper with all modes PadTau: per-round
// sums chain through the same additions, min/max fold to the same constant,
// and the per-dimension w·a/scale terms accumulate in the same order.
// len(pl.lists) must be at most padFastDims.
func (st *State) PadUpperTau(pl *PadPlan, taus []float64, phi int) float64 {
	agg := st.agg
	n := len(pl.lists)
	// cls 0: constant contribution (min/max — precomputed in consts);
	// cls 1: sum (linear in pad count); cls 2: avg (sum with moving divisor).
	var sums, consts, ws, scales [padFastDims]float64
	var cls [padFastDims]uint8
	for i := 0; i < n; i++ {
		kd := &pl.lists[i]
		b := kd.b
		tau := taus[i]
		ws[i], scales[i] = kd.w, kd.scale
		switch kd.kind {
		case AggMin:
			mn := agg[b+2]
			if tau < mn {
				mn = tau
			}
			consts[i] = kd.w * mn / kd.scale
		case AggMax:
			mx := agg[b+3]
			if tau > mx {
				mx = tau
			}
			consts[i] = kd.w * mx / kd.scale
		case AggSum:
			sums[i], cls[i] = agg[b+1], 1
		case AggAvg:
			sums[i], cls[i] = agg[b+1], 2
		}
	}
	best := math.Inf(-1)
	for sz := st.Size; sz < phi; sz++ {
		szp1 := float64(sz + 1)
		util := 0.0
		for i := range pl.skips {
			kd := &pl.skips[i]
			var a float64
			if kd.kind != AggNull {
				b := kd.b
				if agg[b] != 0 {
					switch kd.kind {
					case AggMin:
						a = agg[b+2]
					case AggMax:
						a = agg[b+3]
					case AggSum:
						a = agg[b+1]
					case AggAvg:
						a = agg[b+1] / szp1
					}
				}
			}
			util += kd.w * a / kd.scale
		}
		for i := 0; i < n; i++ {
			switch cls[i] {
			case 0:
				util += consts[i]
			case 1:
				s := sums[i] + taus[i]
				sums[i] = s
				util += ws[i] * s / scales[i]
			default:
				s := sums[i] + taus[i]
				sums[i] = s
				a := s / szp1
				util += ws[i] * a / scales[i]
			}
		}
		if util > best {
			best = util
		}
	}
	return best
}

// Utility is the linear utility function U(p) = w·p⃗ over normalized
// aggregate vectors (paper Equation 1). Weights conventionally lie in
// [-1,1]; a positive weight prefers larger aggregate values.
type Utility struct {
	W []float64
}

// NewUtility validates the weight vector against the profile dimension.
func NewUtility(p *Profile, w []float64) (*Utility, error) {
	if len(w) != p.Dims() {
		return nil, fmt.Errorf("feature: weight vector has %d dims, profile has %d", len(w), p.Dims())
	}
	return &Utility{W: append([]float64(nil), w...)}, nil
}

// Score returns w·vec.
func (u *Utility) Score(vec []float64) float64 {
	return Dot(u.W, vec)
}

// ScoreState returns the utility of a package state.
func (u *Utility) ScoreState(st *State) float64 {
	s := 0.0
	for d, w := range u.W {
		if w == 0 {
			continue
		}
		s += w * st.Aggregate(d) / st.space.Norm.Scale(d)
	}
	return s
}

// SetMonotone reports whether the utility is set-monotone over the given
// profile: U(p ∪ p') ≥ U(p) for all packages (paper §4.1). This holds iff
// every dimension with non-zero weight is (sum or max with w ≥ 0) or
// (min with w ≤ 0); avg is never set-monotone.
func (u *Utility) SetMonotone(p *Profile) bool {
	for d, e := range p.entries {
		w := u.W[d]
		if w == 0 || e.Agg == AggNull {
			continue
		}
		switch e.Agg {
		case AggSum, AggMax:
			if w < 0 {
				return false
			}
		case AggMin:
			if w > 0 {
				return false
			}
		case AggAvg:
			return false
		}
	}
	return true
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// ItemVector returns the normalized single-item aggregate vector for item
// it, i.e. the vector of the package {it}.
func (s *Space) ItemVector(it Item) []float64 {
	st := NewState(s)
	st.Add(it)
	return st.Vector()
}
