// Package feature defines items, aggregate feature profiles, utility
// functions and the incremental package state used throughout the system.
//
// An item is an m-dimensional vector of non-negative feature values (with
// optional nulls). A package is a set of items; its feature vector is
// obtained by aggregating item values according to a Profile, one entry per
// utility dimension. Utility is a linear function of the normalized
// aggregate vector (paper §2, Equation 1).
package feature

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"slices"
	"strings"
)

// Null is the sentinel for a missing feature value. The paper allows items
// to lack values for some features; aggregates skip nulls.
var Null = math.NaN()

// IsNull reports whether a feature value is the null sentinel.
func IsNull(v float64) bool { return math.IsNaN(v) }

// Agg identifies one of the aggregation functions a profile entry may use
// (paper Definition 1).
type Agg uint8

// Aggregation functions. AggNull means the dimension is ignored.
const (
	AggNull Agg = iota
	AggMin
	AggMax
	AggSum
	AggAvg
)

// String returns the lower-case name of the aggregation.
func (a Agg) String() string {
	switch a {
	case AggNull:
		return "null"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	}
	return fmt.Sprintf("agg(%d)", uint8(a))
}

// ParseAgg converts a name such as "sum" into an Agg value.
func ParseAgg(s string) (Agg, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "null", "":
		return AggNull, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "sum":
		return AggSum, nil
	case "avg", "mean":
		return AggAvg, nil
	}
	return AggNull, fmt.Errorf("feature: unknown aggregation %q", s)
}

// Item is a single recommendable entity: an identifier plus its raw feature
// values. Values must be non-negative; use Null for missing values.
type Item struct {
	// ID is a dense index into the item set (0..n-1).
	ID int
	// Name is an optional human-readable label.
	Name string
	// Values holds the raw feature values, Null where missing.
	Values []float64
}

// Entry is one utility dimension of an aggregate feature profile: an
// aggregation applied to one item feature. The paper assumes one entry per
// feature; allowing several entries to reference the same feature is the
// generalization the paper notes is straightforward.
type Entry struct {
	// Feature is the index of the item feature this entry aggregates.
	Feature int
	// Agg is the aggregation function.
	Agg Agg
}

// Profile is an aggregate feature profile (paper Definition 1): the list of
// utility dimensions of the package feature space.
type Profile struct {
	entries []Entry
	// featureCount is the number of raw item features the profile expects.
	featureCount int
}

// NewProfile builds a profile over items with featureCount raw features.
// Every entry's feature index must be within range.
func NewProfile(featureCount int, entries ...Entry) (*Profile, error) {
	if featureCount <= 0 {
		return nil, fmt.Errorf("feature: featureCount must be positive, got %d", featureCount)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("feature: profile needs at least one entry")
	}
	for i, e := range entries {
		if e.Feature < 0 || e.Feature >= featureCount {
			return nil, fmt.Errorf("feature: entry %d references feature %d, want [0,%d)", i, e.Feature, featureCount)
		}
	}
	cp := make([]Entry, len(entries))
	copy(cp, entries)
	return &Profile{entries: cp, featureCount: featureCount}, nil
}

// MustProfile is NewProfile that panics on error; intended for tests,
// examples and literals whose validity is static.
func MustProfile(featureCount int, entries ...Entry) *Profile {
	p, err := NewProfile(featureCount, entries...)
	if err != nil {
		panic(err)
	}
	return p
}

// SimpleProfile builds the paper's default profile: entry i applies aggs[i]
// to feature i.
func SimpleProfile(aggs ...Agg) *Profile {
	entries := make([]Entry, len(aggs))
	for i, a := range aggs {
		entries[i] = Entry{Feature: i, Agg: a}
	}
	return MustProfile(len(aggs), entries...)
}

// Dims returns the number of utility dimensions (profile entries).
func (p *Profile) Dims() int { return len(p.entries) }

// FeatureCount returns the number of raw item features the profile expects.
func (p *Profile) FeatureCount() int { return p.featureCount }

// Entry returns the i-th profile entry.
func (p *Profile) Entry(i int) Entry { return p.entries[i] }

// Entries returns a copy of the profile's entries.
func (p *Profile) Entries() []Entry {
	cp := make([]Entry, len(p.entries))
	copy(cp, p.entries)
	return cp
}

// String renders the profile as e.g. "(sum0, avg1)".
func (p *Profile) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, e := range p.entries {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s%d", e.Agg, e.Feature)
	}
	b.WriteByte(')')
	return b.String()
}

// Normalizer scales raw aggregate values into [0,1] per dimension. The
// scale for a dimension is the maximum aggregate value achievable by any
// package of size at most maxSize (paper §2): for sum, the sum of the
// maxSize largest values of the feature; for min, max and avg, the maximum
// item value.
type Normalizer struct {
	scales []float64
	// Delta-maintenance state (see NewNormalizerFrom): per dimension, the
	// count of non-null values of the dimension's feature and the
	// descending "top" values the scale derives from — up to maxSize
	// values for sum dimensions, the single max otherwise; nil while the
	// dimension has no values or uses AggNull. Top slices may be shared
	// between a parent normalizer and normalizers derived from it, so they
	// are never mutated in place.
	counts  []int
	tops    [][]float64
	maxSize int
}

// NewNormalizer computes the per-dimension scales for the given items,
// profile and maximum package size.
func NewNormalizer(items []Item, p *Profile, maxSize int) (*Normalizer, error) {
	if maxSize <= 0 {
		return nil, fmt.Errorf("feature: maxSize must be positive, got %d", maxSize)
	}
	n := newEmptyNormalizer(p, maxSize)
	for d, e := range p.entries {
		if e.Agg == AggNull {
			continue
		}
		count, top, err := dimTop(items, e, maxSize)
		if err != nil {
			return nil, err
		}
		n.setDim(d, e.Agg, count, top)
	}
	return n, nil
}

func newEmptyNormalizer(p *Profile, maxSize int) *Normalizer {
	n := &Normalizer{
		scales:  make([]float64, p.Dims()),
		counts:  make([]int, p.Dims()),
		tops:    make([][]float64, p.Dims()),
		maxSize: maxSize,
	}
	for d := range n.scales {
		n.scales[d] = 1 // AggNull and empty dimensions scale by 1
	}
	return n
}

// setDim installs one dimension's maintained state and derives its scale.
func (n *Normalizer) setDim(d int, agg Agg, count int, top []float64) {
	n.counts[d] = count
	n.tops[d] = top
	n.scales[d] = scaleFrom(agg, count, top)
}

// dimTop scans items for entry e and returns the non-null value count and
// the descending top values the dimension's scale derives from: the
// maxSize largest for sum, the single max otherwise.
func dimTop(items []Item, e Entry, maxSize int) (count int, top []float64, err error) {
	var vals []float64
	for i := range items {
		v := items[i].Values[e.Feature]
		if IsNull(v) {
			continue
		}
		if v < 0 {
			return 0, nil, fmt.Errorf("feature: item %d has negative value %g on feature %d", items[i].ID, v, e.Feature)
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return 0, nil, nil
	}
	count = len(vals)
	switch e.Agg {
	case AggSum:
		slices.SortFunc(vals, descFloat)
		if len(vals) > maxSize {
			vals = vals[:maxSize]
		}
		top = vals
	default: // min, max, avg: the best achievable is the single best item.
		best := 0.0
		for _, v := range vals {
			if v > best {
				best = v
			}
		}
		top = []float64{best}
	}
	return count, top, nil
}

// descFloat orders float64s descending (lists never contain nulls).
func descFloat(a, b float64) int { return cmp.Compare(b, a) }

// scaleFrom derives the normalization divisor from the maintained state,
// reproducing NewNormalizer's coercions exactly: dimensions with no
// values, or whose best achievable aggregate is 0, scale by 1. Summing
// the descending top values gives the same float result as NewNormalizer
// because it adds the same value sequence in the same order.
func scaleFrom(agg Agg, count int, top []float64) float64 {
	if count == 0 {
		return 1
	}
	s := 0.0
	switch agg {
	case AggSum:
		for _, v := range top {
			s += v
		}
	default:
		s = top[0]
	}
	if s == 0 {
		return 1
	}
	return s
}

// NewNormalizerFrom derives the normalizer for an item set obtained from
// the parent's by removing and then adding raw value rows (a changed item
// contributes one row to each). A dimension's scale is recomputed from
// scratch — a full rescan of items — only when a removed value reaches the
// state the scale derives from: ≥ the top-maxSize cutoff for sum
// dimensions, equal to the max otherwise (with a not-yet-full top set,
// every value participates, so any removal rescans). Additions never force
// a rescan: the top set absorbs them in O(maxSize). Scales are
// bit-identical to NewNormalizer over items — untouched dimensions keep
// the parent's scale verbatim, incremental updates preserve the top value
// sequence a fresh sort would produce, and rescanned dimensions re-run the
// same computation.
func NewNormalizerFrom(parent *Normalizer, items []Item, p *Profile, maxSize int, removed, added [][]float64) (*Normalizer, error) {
	if maxSize != parent.maxSize {
		return nil, fmt.Errorf("feature: NewNormalizerFrom maxSize %d, parent has %d", maxSize, parent.maxSize)
	}
	n := newEmptyNormalizer(p, maxSize)
	var remVals, addVals []float64 // per-dimension scratch
	for d, e := range p.entries {
		if e.Agg == AggNull {
			continue
		}
		remVals, addVals = remVals[:0], addVals[:0]
		for _, row := range removed {
			if v := row[e.Feature]; !IsNull(v) {
				remVals = append(remVals, v)
			}
		}
		for _, row := range added {
			v := row[e.Feature]
			if IsNull(v) {
				continue
			}
			if v < 0 {
				return nil, fmt.Errorf("feature: negative value %g on feature %d", v, e.Feature)
			}
			addVals = append(addVals, v)
		}
		count, top := parent.counts[d], parent.tops[d]
		if len(remVals) == 0 && len(addVals) == 0 {
			n.setDim(d, e.Agg, count, top) // untouched: share the parent's state
			continue
		}
		// cutoff is the smallest value still contributing to the scale;
		// -Inf when the top set is not full (then every value contributes).
		cutoff := math.Inf(-1)
		if e.Agg == AggSum {
			if len(top) >= maxSize {
				cutoff = top[len(top)-1]
			}
		} else if count > 0 {
			cutoff = top[0]
		}
		dirty := false
		for _, v := range remVals {
			if v >= cutoff {
				dirty = true
				break
			}
			count--
		}
		if dirty {
			count, top, _ = dimTop(items, e, maxSize) // rows already validated
		} else if len(addVals) > 0 {
			top = slices.Clone(top)
			for _, v := range addVals {
				count++
				if e.Agg == AggSum {
					if len(top) >= maxSize && v <= top[len(top)-1] {
						continue // below the cutoff: the top set is unchanged
					}
					i, _ := slices.BinarySearchFunc(top, v, descFloat)
					top = slices.Insert(top, i, v)
					if len(top) > maxSize {
						top = top[:maxSize]
					}
				} else if len(top) == 0 {
					top = []float64{v}
				} else if v > top[0] {
					top[0] = v // already cloned above
				}
			}
		}
		n.setDim(d, e.Agg, count, top)
	}
	return n, nil
}

// Scale returns the normalization divisor for dimension d.
func (n *Normalizer) Scale(d int) float64 { return n.scales[d] }

// Dims returns the number of dimensions the normalizer covers.
func (n *Normalizer) Dims() int { return len(n.scales) }

// Apply divides raw aggregate vector v in place by the per-dimension scales
// and returns it.
func (n *Normalizer) Apply(v []float64) []float64 {
	for i := range v {
		v[i] /= n.scales[i]
	}
	return v
}

// Space bundles the immutable inputs of a recommendation problem: the item
// set, the profile, the package size bound and the derived normalizer. It
// is the context against which packages are evaluated.
type Space struct {
	Items   []Item
	Profile *Profile
	// MaxSize is φ, the system-defined maximum package size.
	MaxSize int
	Norm    *Normalizer
	// hasNull[f] records whether any item lacks feature f; used by the
	// upper-bound estimator to decide whether a "no contribution" pad is
	// attainable. nullCount[f] is the count behind it, maintained so a
	// derived space (NewSpaceFrom) can update the flags without rescanning.
	hasNull   []bool
	nullCount []int
	// hash is the geometry fingerprint (see Hash).
	hash uint64
}

// NewSpace validates the items against the profile and precomputes the
// normalizer and null-presence flags.
func NewSpace(items []Item, p *Profile, maxSize int) (*Space, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("feature: empty item set")
	}
	for i := range items {
		if len(items[i].Values) != p.FeatureCount() {
			return nil, fmt.Errorf("feature: item %d has %d values, profile expects %d",
				items[i].ID, len(items[i].Values), p.FeatureCount())
		}
	}
	norm, err := NewNormalizer(items, p, maxSize)
	if err != nil {
		return nil, err
	}
	nullCount := make([]int, p.FeatureCount())
	for i := range items {
		for f, v := range items[i].Values {
			if IsNull(v) {
				nullCount[f]++
			}
		}
	}
	return newSpace(items, p, maxSize, norm, nullCount), nil
}

// newSpace assembles a space from precomputed parts, deriving the
// null-presence flags and geometry fingerprint.
func newSpace(items []Item, p *Profile, maxSize int, norm *Normalizer, nullCount []int) *Space {
	hasNull := make([]bool, p.FeatureCount())
	for f, c := range nullCount {
		hasNull[f] = c > 0
	}
	sp := &Space{Items: items, Profile: p, MaxSize: maxSize, Norm: norm, hasNull: hasNull, nullCount: nullCount}
	sp.hash = sp.fingerprint()
	return sp
}

// NewSpaceFrom derives the space for a new dense item slice from a parent
// space whose item set differs by the given raw value rows: removed lists
// the rows that left the parent's set, added the rows that entered (a
// changed item contributes one row to each). The result is bit-identical
// to NewSpace(items, parent.Profile, parent.MaxSize) — per-dimension
// normalizer scales are recomputed only where the delta touches the
// values they derive from (NewNormalizerFrom), null-presence flags are
// maintained from per-feature null counts, and the geometry fingerprint
// is rehashed over the new items — but skips the parent-untouched
// per-dimension sorts, so its cost scales with the delta plus one O(n)
// pass, not O(n log n).
func NewSpaceFrom(parent *Space, items []Item, removed, added [][]float64) (*Space, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("feature: empty item set")
	}
	p := parent.Profile
	for i := range items {
		if len(items[i].Values) != p.FeatureCount() {
			return nil, fmt.Errorf("feature: item %d has %d values, profile expects %d",
				items[i].ID, len(items[i].Values), p.FeatureCount())
		}
	}
	for _, rows := range [2][][]float64{removed, added} {
		for _, row := range rows {
			if len(row) != p.FeatureCount() {
				return nil, fmt.Errorf("feature: delta row has %d values, profile expects %d", len(row), p.FeatureCount())
			}
		}
	}
	norm, err := NewNormalizerFrom(parent.Norm, items, p, parent.MaxSize, removed, added)
	if err != nil {
		return nil, err
	}
	nullCount := append([]int(nil), parent.nullCount...)
	for _, row := range removed {
		for f, v := range row {
			if IsNull(v) {
				nullCount[f]--
			}
		}
	}
	for _, row := range added {
		for f, v := range row {
			if IsNull(v) {
				nullCount[f]++
			}
		}
	}
	return newSpace(items, p, parent.MaxSize, norm, nullCount), nil
}

// fingerprint digests everything package-vector geometry depends on: the
// profile's dimensions, φ, and every item value in dense order. Names and
// stable IDs are excluded — they do not enter any vector.
func (s *Space) fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	word(uint64(s.MaxSize))
	word(uint64(s.Profile.Dims()))
	for _, e := range s.Profile.Entries() {
		word(uint64(e.Feature)<<8 | uint64(e.Agg))
	}
	word(uint64(len(s.Items)))
	for i := range s.Items {
		for _, v := range s.Items[i].Values {
			word(math.Float64bits(v))
		}
	}
	return h.Sum64()
}

// Hash is a fingerprint of the space's vector geometry: two spaces with
// equal hashes compute (with overwhelming probability) bitwise-identical
// package vectors for the same dense IDs. Persistence uses it to decide
// whether state maintained against one space is valid under another —
// epoch counters are per-process, so an epoch ID alone cannot identify
// geometry across deployments.
func (s *Space) Hash() uint64 { return s.hash }

// HasNull reports whether any item is missing feature f.
func (s *Space) HasNull(f int) bool { return s.hasNull[f] }

// Dims returns the number of utility dimensions.
func (s *Space) Dims() int { return s.Profile.Dims() }

// N returns the number of items.
func (s *Space) N() int { return len(s.Items) }

// State is the incremental aggregate state of a package under construction:
// per utility dimension it tracks the running count of non-null
// contributions, their sum, min and max, plus the total package size. Adding
// an item is O(dims); the normalized aggregate vector and utility follow in
// O(dims).
type State struct {
	space *Space
	// Size is the number of items in the package (nulls included, per the
	// paper's avg definition which divides by |p|).
	Size int
	// count[d], sum[d], min[d], max[d] summarize the non-null values of the
	// feature behind dimension d.
	count []int
	sum   []float64
	min   []float64
	max   []float64
}

// NewState returns the state of the empty package in space s.
func NewState(s *Space) *State {
	d := s.Dims()
	st := &State{
		space: s,
		count: make([]int, d),
		sum:   make([]float64, d),
		min:   make([]float64, d),
		max:   make([]float64, d),
	}
	for i := 0; i < d; i++ {
		st.min[i] = math.Inf(1)
		st.max[i] = math.Inf(-1)
	}
	return st
}

// CopyFrom overwrites st with the contents of src (which must be over the
// same space), reusing st's storage — the allocation-free alternative to
// Clone for scratch states.
func (st *State) CopyFrom(src *State) {
	st.space = src.space
	st.Size = src.Size
	copy(st.count, src.count)
	copy(st.sum, src.sum)
	copy(st.min, src.min)
	copy(st.max, src.max)
}

// Clone returns an independent copy of the state.
func (st *State) Clone() *State {
	cp := &State{
		space: st.space,
		Size:  st.Size,
		count: append([]int(nil), st.count...),
		sum:   append([]float64(nil), st.sum...),
		min:   append([]float64(nil), st.min...),
		max:   append([]float64(nil), st.max...),
	}
	return cp
}

// Add folds one item's values into the state. values must have the space's
// raw feature count; pass ContribNull for dimensions an imaginary item
// should skip (see AddContrib).
func (st *State) Add(it Item) {
	st.Size++
	for d, e := range st.space.Profile.entries {
		if e.Agg == AggNull {
			continue
		}
		v := it.Values[e.Feature]
		if IsNull(v) {
			continue
		}
		st.fold(d, v)
	}
}

// Contrib is a per-dimension contribution of an imaginary item used by the
// upper-bound estimator: either a concrete value or "no contribution".
type Contrib struct {
	// Skip true means the imaginary item is null on this dimension's feature.
	Skip bool
	// Value is the contributed value when Skip is false.
	Value float64
}

// AddContrib folds an imaginary item given explicit per-dimension
// contributions. The package size still increases by one (nulls count
// toward |p| in the paper's avg).
func (st *State) AddContrib(contribs []Contrib) {
	st.Size++
	for d := range st.space.Profile.entries {
		c := contribs[d]
		if c.Skip || st.space.Profile.entries[d].Agg == AggNull {
			continue
		}
		st.fold(d, c.Value)
	}
}

func (st *State) fold(d int, v float64) {
	st.count[d]++
	st.sum[d] += v
	if v < st.min[d] {
		st.min[d] = v
	}
	if v > st.max[d] {
		st.max[d] = v
	}
}

// AggregateAfter returns the raw aggregate of dimension d as it would be if
// one more item were added with contribution c. The package size increments
// regardless of Skip (nulls count toward |p| in the paper's avg), but only a
// non-skipped value folds into the dimension.
func (st *State) AggregateAfter(d int, c Contrib) float64 {
	e := st.space.Profile.entries[d]
	if e.Agg == AggNull {
		return 0
	}
	count, sum, mn, mx := st.count[d], st.sum[d], st.min[d], st.max[d]
	if !c.Skip {
		count++
		sum += c.Value
		if c.Value < mn {
			mn = c.Value
		}
		if c.Value > mx {
			mx = c.Value
		}
	}
	if count == 0 {
		return 0
	}
	switch e.Agg {
	case AggMin:
		return mn
	case AggMax:
		return mx
	case AggSum:
		return sum
	case AggAvg:
		return sum / float64(st.Size+1)
	}
	return 0
}

// Aggregate returns the raw (unnormalized) aggregate value of dimension d.
// Dimensions with no non-null contributions aggregate to 0.
func (st *State) Aggregate(d int) float64 {
	e := st.space.Profile.entries[d]
	if e.Agg == AggNull || st.count[d] == 0 {
		return 0
	}
	switch e.Agg {
	case AggMin:
		return st.min[d]
	case AggMax:
		return st.max[d]
	case AggSum:
		return st.sum[d]
	case AggAvg:
		return st.sum[d] / float64(st.Size)
	}
	return 0
}

// Vector returns the normalized aggregate feature vector of the package.
func (st *State) Vector() []float64 {
	v := make([]float64, st.space.Dims())
	for d := range v {
		v[d] = st.Aggregate(d) / st.space.Norm.Scale(d)
	}
	return v
}

// VectorInto writes the normalized aggregate vector into dst (which must
// have length Dims) and returns it, avoiding an allocation.
func (st *State) VectorInto(dst []float64) []float64 {
	for d := range dst {
		dst[d] = st.Aggregate(d) / st.space.Norm.Scale(d)
	}
	return dst
}

// Utility is the linear utility function U(p) = w·p⃗ over normalized
// aggregate vectors (paper Equation 1). Weights conventionally lie in
// [-1,1]; a positive weight prefers larger aggregate values.
type Utility struct {
	W []float64
}

// NewUtility validates the weight vector against the profile dimension.
func NewUtility(p *Profile, w []float64) (*Utility, error) {
	if len(w) != p.Dims() {
		return nil, fmt.Errorf("feature: weight vector has %d dims, profile has %d", len(w), p.Dims())
	}
	return &Utility{W: append([]float64(nil), w...)}, nil
}

// Score returns w·vec.
func (u *Utility) Score(vec []float64) float64 {
	return Dot(u.W, vec)
}

// ScoreState returns the utility of a package state.
func (u *Utility) ScoreState(st *State) float64 {
	s := 0.0
	for d, w := range u.W {
		if w == 0 {
			continue
		}
		s += w * st.Aggregate(d) / st.space.Norm.Scale(d)
	}
	return s
}

// SetMonotone reports whether the utility is set-monotone over the given
// profile: U(p ∪ p') ≥ U(p) for all packages (paper §4.1). This holds iff
// every dimension with non-zero weight is (sum or max with w ≥ 0) or
// (min with w ≤ 0); avg is never set-monotone.
func (u *Utility) SetMonotone(p *Profile) bool {
	for d, e := range p.entries {
		w := u.W[d]
		if w == 0 || e.Agg == AggNull {
			continue
		}
		switch e.Agg {
		case AggSum, AggMax:
			if w < 0 {
				return false
			}
		case AggMin:
			if w > 0 {
				return false
			}
		case AggAvg:
			return false
		}
	}
	return true
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// ItemVector returns the normalized single-item aggregate vector for item
// it, i.e. the vector of the package {it}.
func (s *Space) ItemVector(it Item) []float64 {
	st := NewState(s)
	st.Add(it)
	return st.Vector()
}
