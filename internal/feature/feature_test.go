package feature

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperItems are the three items of the paper's Figure 1(a):
// f1 = cost, f2 = rating.
func paperItems() []Item {
	return []Item{
		{ID: 0, Name: "t1", Values: []float64{0.6, 0.2}},
		{ID: 1, Name: "t2", Values: []float64{0.4, 0.4}},
		{ID: 2, Name: "t3", Values: []float64{0.2, 0.4}},
	}
}

func paperSpace(t *testing.T) *Space {
	t.Helper()
	p := SimpleProfile(AggSum, AggAvg)
	sp, err := NewSpace(paperItems(), p, 2)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	return sp
}

func TestAggString(t *testing.T) {
	cases := map[Agg]string{AggNull: "null", AggMin: "min", AggMax: "max", AggSum: "sum", AggAvg: "avg"}
	for a, want := range cases {
		if got := a.String(); got != want {
			t.Errorf("Agg(%d).String() = %q, want %q", a, got, want)
		}
	}
	if got := Agg(99).String(); got != "agg(99)" {
		t.Errorf("unknown agg prints %q", got)
	}
}

func TestParseAgg(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Agg
	}{
		{"sum", AggSum}, {"SUM", AggSum}, {" avg ", AggAvg}, {"mean", AggAvg},
		{"min", AggMin}, {"max", AggMax}, {"null", AggNull}, {"", AggNull},
	} {
		got, err := ParseAgg(tc.in)
		if err != nil {
			t.Fatalf("ParseAgg(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("ParseAgg(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := ParseAgg("median"); err == nil {
		t.Error("ParseAgg(median) succeeded, want error")
	}
}

func TestNewProfileValidation(t *testing.T) {
	if _, err := NewProfile(0, Entry{0, AggSum}); err == nil {
		t.Error("zero featureCount accepted")
	}
	if _, err := NewProfile(2); err == nil {
		t.Error("empty entry list accepted")
	}
	if _, err := NewProfile(2, Entry{2, AggSum}); err == nil {
		t.Error("out-of-range feature accepted")
	}
	p, err := NewProfile(2, Entry{0, AggSum}, Entry{1, AggAvg}, Entry{0, AggAvg})
	if err != nil {
		t.Fatalf("NewProfile: %v", err)
	}
	if p.Dims() != 3 {
		t.Errorf("Dims = %d, want 3 (multiple aggregations per feature)", p.Dims())
	}
}

func TestProfileString(t *testing.T) {
	p := SimpleProfile(AggSum, AggAvg)
	if got := p.String(); got != "(sum0, avg1)" {
		t.Errorf("String = %q", got)
	}
}

// TestNormalizerPaperExample checks the paper's Example 1: with φ=2 the
// maximum sum on f1 is 0.6+0.4 = 1 and the maximum avg on f2 is 0.4.
func TestNormalizerPaperExample(t *testing.T) {
	sp := paperSpace(t)
	if got := sp.Norm.Scale(0); got != 1.0 {
		t.Errorf("sum scale = %g, want 1.0", got)
	}
	if got := sp.Norm.Scale(1); got != 0.4 {
		t.Errorf("avg scale = %g, want 0.4", got)
	}
}

// TestVectorPaperExample checks the normalized vector of p1 = {t1} from
// Example 1: (0.6, 0.5).
func TestVectorPaperExample(t *testing.T) {
	sp := paperSpace(t)
	st := NewState(sp)
	st.Add(sp.Items[0])
	v := st.Vector()
	if math.Abs(v[0]-0.6) > 1e-12 || math.Abs(v[1]-0.5) > 1e-12 {
		t.Errorf("vector(p1) = %v, want (0.6, 0.5)", v)
	}
}

// TestPaperUtilityTable verifies every entry of Figure 2(c).
func TestPaperUtilityTable(t *testing.T) {
	sp := paperSpace(t)
	weights := [][]float64{{0.5, 0.1}, {0.1, 0.5}, {0.1, 0.1}}
	pkgs := [][]int{{0}, {1}, {2}, {0, 1}, {1, 2}, {0, 2}}
	want := [][]float64{
		{0.35, 0.3, 0.2, 0.575, 0.4, 0.475},
		{0.31, 0.54, 0.52, 0.475, 0.56, 0.455},
		{0.11, 0.14, 0.12, 0.175, 0.16, 0.155},
	}
	for wi, w := range weights {
		u, err := NewUtility(sp.Profile, w)
		if err != nil {
			t.Fatalf("NewUtility: %v", err)
		}
		for pi, ids := range pkgs {
			st := NewState(sp)
			for _, id := range ids {
				st.Add(sp.Items[id])
			}
			got := u.ScoreState(st)
			if math.Abs(got-want[wi][pi]) > 1e-9 {
				t.Errorf("U(p%d | w%d) = %g, want %g", pi+1, wi+1, got, want[wi][pi])
			}
			// Score over the materialized vector must agree.
			if got2 := u.Score(st.Vector()); math.Abs(got-got2) > 1e-12 {
				t.Errorf("ScoreState %g != Score(Vector) %g", got, got2)
			}
		}
	}
}

func TestStateAggregates(t *testing.T) {
	p := SimpleProfile(AggMin, AggMax, AggSum, AggAvg)
	items := []Item{
		{ID: 0, Values: []float64{3, 3, 3, 3}},
		{ID: 1, Values: []float64{1, 5, 2, 1}},
		{ID: 2, Values: []float64{2, 4, 4, 2}},
	}
	sp, err := NewSpace(items, p, 3)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	st := NewState(sp)
	for _, it := range items {
		st.Add(it)
	}
	if got := st.Aggregate(0); got != 1 {
		t.Errorf("min = %g, want 1", got)
	}
	if got := st.Aggregate(1); got != 5 {
		t.Errorf("max = %g, want 5", got)
	}
	if got := st.Aggregate(2); got != 9 {
		t.Errorf("sum = %g, want 9", got)
	}
	if got := st.Aggregate(3); got != 2 {
		t.Errorf("avg = %g, want 2", got)
	}
}

// TestAvgDividesByPackageSize checks the paper's definition: avg divides by
// |p|, counting items whose value is null.
func TestAvgDividesByPackageSize(t *testing.T) {
	p := SimpleProfile(AggAvg)
	items := []Item{
		{ID: 0, Values: []float64{4}},
		{ID: 1, Values: []float64{Null}},
	}
	sp, err := NewSpace(items, p, 2)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	st := NewState(sp)
	st.Add(items[0])
	st.Add(items[1])
	if got := st.Aggregate(0); got != 2 {
		t.Errorf("avg with null member = %g, want 4/2 = 2", got)
	}
}

func TestNullsSkippedByMinMaxSum(t *testing.T) {
	p := SimpleProfile(AggMin, AggMax, AggSum)
	items := []Item{
		{ID: 0, Values: []float64{2, 2, 2}},
		{ID: 1, Values: []float64{Null, Null, Null}},
	}
	sp, err := NewSpace(items, p, 2)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	st := NewState(sp)
	st.Add(items[0])
	st.Add(items[1])
	for d, want := range []float64{2, 2, 2} {
		if got := st.Aggregate(d); got != want {
			t.Errorf("dim %d aggregate = %g, want %g", d, got, want)
		}
	}
	if !sp.HasNull(0) || !sp.HasNull(2) {
		t.Error("HasNull not detected")
	}
}

func TestEmptyStateAggregatesToZero(t *testing.T) {
	sp := paperSpace(t)
	st := NewState(sp)
	for d := 0; d < sp.Dims(); d++ {
		if got := st.Aggregate(d); got != 0 {
			t.Errorf("empty aggregate dim %d = %g, want 0", d, got)
		}
	}
}

func TestAggregateAfter(t *testing.T) {
	p := SimpleProfile(AggMin, AggMax, AggSum, AggAvg)
	items := []Item{{ID: 0, Values: []float64{3, 3, 3, 3}}}
	sp, err := NewSpace(items, p, 4)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	st := NewState(sp)
	st.Add(items[0])

	// Adding value 1: min drops, max stays, sum grows, avg = (3+1)/2.
	c := Contrib{Value: 1}
	if got := st.AggregateAfter(0, c); got != 1 {
		t.Errorf("min after = %g, want 1", got)
	}
	if got := st.AggregateAfter(1, c); got != 3 {
		t.Errorf("max after = %g, want 3", got)
	}
	if got := st.AggregateAfter(2, c); got != 4 {
		t.Errorf("sum after = %g, want 4", got)
	}
	if got := st.AggregateAfter(3, c); got != 2 {
		t.Errorf("avg after = %g, want 2", got)
	}
	// Skip: size grows but nothing folds; avg dilutes.
	s := Contrib{Skip: true}
	if got := st.AggregateAfter(0, s); got != 3 {
		t.Errorf("min after skip = %g, want 3", got)
	}
	if got := st.AggregateAfter(3, s); got != 1.5 {
		t.Errorf("avg after skip = %g, want 3/2", got)
	}
}

// TestAggregateAfterMatchesAddContrib: AggregateAfter must predict exactly
// what AddContrib produces — a property test over random states.
func TestAggregateAfterMatchesAddContrib(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := SimpleProfile(AggMin, AggMax, AggSum, AggAvg)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		items := make([]Item, 1+r.Intn(6))
		for i := range items {
			vals := make([]float64, 4)
			for j := range vals {
				if r.Float64() < 0.2 {
					vals[j] = Null
				} else {
					vals[j] = r.Float64() * 10
				}
			}
			items[i] = Item{ID: i, Values: vals}
		}
		sp, err := NewSpace(items, p, len(items)+1)
		if err != nil {
			return false
		}
		st := NewState(sp)
		for _, it := range items {
			st.Add(it)
		}
		contribs := make([]Contrib, 4)
		for d := range contribs {
			if r.Float64() < 0.5 {
				contribs[d] = Contrib{Skip: true}
			} else {
				contribs[d] = Contrib{Value: r.Float64() * 10}
			}
		}
		var predicted [4]float64
		for d := 0; d < 4; d++ {
			predicted[d] = st.AggregateAfter(d, contribs[d])
		}
		st.AddContrib(contribs)
		for d := 0; d < 4; d++ {
			if math.Abs(st.Aggregate(d)-predicted[d]) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSetMonotone(t *testing.T) {
	p := SimpleProfile(AggSum, AggMin, AggMax, AggAvg)
	for _, tc := range []struct {
		w    []float64
		want bool
	}{
		{[]float64{0.5, 0, 0, 0}, true},    // sum with positive weight
		{[]float64{-0.5, 0, 0, 0}, false},  // sum with negative weight
		{[]float64{0, -0.5, 0, 0}, true},   // min with negative weight (paper §4.1)
		{[]float64{0, 0.5, 0, 0}, false},   // min with positive weight
		{[]float64{0, 0, 0.5, 0}, true},    // max with positive weight
		{[]float64{0, 0, -0.5, 0}, false},  // max with negative weight
		{[]float64{0, 0, 0, 0.1}, false},   // avg never monotone
		{[]float64{0.5, -0.5, 0, 0}, true}, // paper's example: sum1 − min2
		{[]float64{0, 0, 0, 0}, true},      // all-zero weights trivially monotone
	} {
		u, err := NewUtility(p, tc.w)
		if err != nil {
			t.Fatalf("NewUtility: %v", err)
		}
		if got := u.SetMonotone(p); got != tc.want {
			t.Errorf("SetMonotone(w=%v) = %v, want %v", tc.w, got, tc.want)
		}
	}
}

func TestNewSpaceValidation(t *testing.T) {
	p := SimpleProfile(AggSum)
	if _, err := NewSpace(nil, p, 2); err == nil {
		t.Error("empty item set accepted")
	}
	bad := []Item{{ID: 0, Values: []float64{1, 2}}}
	if _, err := NewSpace(bad, p, 2); err == nil {
		t.Error("wrong-width item accepted")
	}
	neg := []Item{{ID: 0, Values: []float64{-1}}}
	if _, err := NewSpace(neg, p, 2); err == nil {
		t.Error("negative feature value accepted")
	}
	if _, err := NewSpace([]Item{{ID: 0, Values: []float64{1}}}, p, 0); err == nil {
		t.Error("non-positive maxSize accepted")
	}
}

func TestNewUtilityDimsMismatch(t *testing.T) {
	p := SimpleProfile(AggSum, AggAvg)
	if _, err := NewUtility(p, []float64{1}); err == nil {
		t.Error("dims mismatch accepted")
	}
}

func TestStateClone(t *testing.T) {
	sp := paperSpace(t)
	st := NewState(sp)
	st.Add(sp.Items[0])
	cp := st.Clone()
	cp.Add(sp.Items[1])
	if st.Size != 1 || cp.Size != 2 {
		t.Errorf("clone aliases original: sizes %d, %d", st.Size, cp.Size)
	}
	if st.Aggregate(0) == cp.Aggregate(0) {
		t.Error("clone shares aggregate state")
	}
}

func TestNormalizerZeroScaleGuard(t *testing.T) {
	p := SimpleProfile(AggSum)
	items := []Item{{ID: 0, Values: []float64{0}}}
	sp, err := NewSpace(items, p, 2)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	if got := sp.Norm.Scale(0); got != 1 {
		t.Errorf("all-zero feature scale = %g, want fallback 1", got)
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
}

func TestItemVector(t *testing.T) {
	sp := paperSpace(t)
	v := sp.ItemVector(sp.Items[1]) // t2 = (0.4, 0.4) → (0.4, 1.0)
	if math.Abs(v[0]-0.4) > 1e-12 || math.Abs(v[1]-1.0) > 1e-12 {
		t.Errorf("ItemVector(t2) = %v, want (0.4, 1)", v)
	}
}

// Property: normalized vectors of packages within the size bound stay in
// [0, 1] on every dimension for sum/avg/max/min profiles.
func TestNormalizedVectorsInUnitBox(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	aggs := []Agg{AggMin, AggMax, AggSum, AggAvg}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(4)
		entries := make([]Agg, m)
		for i := range entries {
			entries[i] = aggs[r.Intn(len(aggs))]
		}
		p := SimpleProfile(entries...)
		n := 2 + r.Intn(8)
		items := make([]Item, n)
		for i := range items {
			vals := make([]float64, m)
			for j := range vals {
				vals[j] = r.Float64() * 100
			}
			items[i] = Item{ID: i, Values: vals}
		}
		maxSize := 1 + r.Intn(4)
		sp, err := NewSpace(items, p, maxSize)
		if err != nil {
			return false
		}
		// Random package within the size bound.
		st := NewState(sp)
		size := 1 + r.Intn(maxSize)
		perm := r.Perm(n)
		for i := 0; i < size && i < n; i++ {
			st.Add(items[perm[i]])
		}
		for _, v := range st.Vector() {
			if v < -1e-12 || v > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestVectorInto(t *testing.T) {
	sp := paperSpace(t)
	st := NewState(sp)
	st.Add(sp.Items[0])
	buf := make([]float64, sp.Dims())
	got := st.VectorInto(buf)
	want := st.Vector()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("VectorInto[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}
