package feature

import (
	"math"
	"math/rand"
	"testing"
)

// deltaProfile exercises every aggregation the normalizer treats
// distinctly: sum (top-maxSize state) and max/avg/min (single-extreme
// state), two of them sharing feature 0.
func deltaProfile(t *testing.T) *Profile {
	t.Helper()
	p, err := NewProfile(3,
		Entry{Feature: 0, Agg: AggSum},
		Entry{Feature: 1, Agg: AggMax},
		Entry{Feature: 2, Agg: AggAvg},
		Entry{Feature: 0, Agg: AggMin},
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// randomRow draws a raw value row with occasional nulls, duplicated
// values (to stress cutoff ties) and zeros.
func randomRow(rng *rand.Rand) []float64 {
	row := make([]float64, 3)
	for f := range row {
		switch rng.Intn(8) {
		case 0:
			row[f] = Null
		case 1:
			row[f] = 0
		case 2:
			row[f] = 5 // frequent duplicate value
		default:
			row[f] = math.Floor(rng.Float64()*100) / 10
		}
	}
	return row
}

func itemsFromRows(rows [][]float64) []Item {
	items := make([]Item, len(rows))
	for i, r := range rows {
		items[i] = Item{ID: i, Values: r}
	}
	return items
}

// assertSpaceEqual checks the delta-built space against a from-scratch
// build: bitwise-equal scales, identical null flags and counts, and the
// same geometry fingerprint.
func assertSpaceEqual(t *testing.T, got, want *Space) {
	t.Helper()
	if got.Hash() != want.Hash() {
		t.Fatalf("Hash: got %x, want %x", got.Hash(), want.Hash())
	}
	for d := 0; d < want.Dims(); d++ {
		g, w := got.Norm.Scale(d), want.Norm.Scale(d)
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("scale[%d]: got %v (%x), want %v (%x)",
				d, g, math.Float64bits(g), w, math.Float64bits(w))
		}
	}
	for f := 0; f < want.Profile.FeatureCount(); f++ {
		if got.HasNull(f) != want.HasNull(f) {
			t.Fatalf("HasNull(%d): got %v, want %v", f, got.HasNull(f), want.HasNull(f))
		}
		if got.nullCount[f] != want.nullCount[f] {
			t.Fatalf("nullCount[%d]: got %d, want %d", f, got.nullCount[f], want.nullCount[f])
		}
	}
	// Maintained normalizer state must match too, or the *next* delta
	// would diverge even though this epoch's scales agree.
	for d := range want.Norm.tops {
		if got.Norm.counts[d] != want.Norm.counts[d] {
			t.Fatalf("norm count[%d]: got %d, want %d", d, got.Norm.counts[d], want.Norm.counts[d])
		}
		gt, wt := got.Norm.tops[d], want.Norm.tops[d]
		if len(gt) != len(wt) {
			t.Fatalf("norm top[%d]: got %v, want %v", d, gt, wt)
		}
		for i := range wt {
			if math.Float64bits(gt[i]) != math.Float64bits(wt[i]) {
				t.Fatalf("norm top[%d][%d]: got %v, want %v", d, i, gt[i], wt[i])
			}
		}
	}
}

// applyDelta removes the rows at the given indices and appends the added
// rows, returning the new row set plus the removed rows.
func applyDelta(rows [][]float64, removeIdx []int, added [][]float64) (next, removed [][]float64) {
	drop := make(map[int]bool, len(removeIdx))
	for _, i := range removeIdx {
		drop[i] = true
	}
	for i, r := range rows {
		if drop[i] {
			removed = append(removed, r)
		} else {
			next = append(next, r)
		}
	}
	next = append(next, added...)
	return next, removed
}

// TestNewSpaceFromEquivalence drives randomized remove/add deltas through
// NewSpaceFrom and checks every derived space bit-identical to a full
// NewSpace over the same rows, including across chained deltas (state
// maintained by one delta feeds the next).
func TestNewSpaceFromEquivalence(t *testing.T) {
	p := deltaProfile(t)
	const maxSize = 3
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 2 + rng.Intn(20)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = randomRow(rng)
		}
		sp, err := NewSpace(itemsFromRows(rows), p, maxSize)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 4; step++ {
			var removeIdx []int
			for i := range rows {
				if len(rows)-len(removeIdx) > 1 && rng.Intn(6) == 0 {
					removeIdx = append(removeIdx, i)
				}
			}
			var added [][]float64
			for a := rng.Intn(4); a > 0; a-- {
				added = append(added, randomRow(rng))
			}
			next, removed := applyDelta(rows, removeIdx, added)
			if len(next) == 0 {
				continue
			}
			got, err := NewSpaceFrom(sp, itemsFromRows(next), removed, added)
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			want, err := NewSpace(itemsFromRows(next), p, maxSize)
			if err != nil {
				t.Fatal(err)
			}
			assertSpaceEqual(t, got, want)
			rows, sp = next, got // chain: the delta-built space is the next parent
		}
	}
}

// TestNewSpaceFromDirectedCases pins the adversarial normalizer deltas:
// deleting the max, deleting at and below the sum cutoff, inserting past
// the cutoff, and draining a dimension to empty.
func TestNewSpaceFromDirectedCases(t *testing.T) {
	p := deltaProfile(t)
	const maxSize = 3
	base := [][]float64{
		{10, 7, 1},
		{8, 7, 2},
		{6, 3, Null},
		{4, 1, 3},
		{2, 0, 4},
	}
	cases := []struct {
		name      string
		removeIdx []int
		added     [][]float64
	}{
		{"delete_max", []int{0}, nil},                        // removes sum-top member and the max on f1 (tie stays)
		{"delete_at_cutoff", []int{2}, nil},                  // value 6 == top-3 cutoff on f0
		{"delete_below_cutoff", []int{4}, nil},               // 2 < cutoff: scale untouched
		{"insert_past_cutoff", nil, [][]float64{{9, 2, 2}}},  // 9 enters the top-3 sum set
		{"insert_below_cutoff", nil, [][]float64{{1, 2, 2}}}, // no scale change
		{"insert_new_max", nil, [][]float64{{1, 50, 2}}},     // new extreme on f1
		{"replace_all_nulls", []int{0, 1, 3}, [][]float64{{Null, Null, Null}, {Null, Null, Null}}},
		{"duplicate_of_cutoff", nil, [][]float64{{6, 7, 1}}}, // equals the cutoff value
		{"zero_everything", []int{0, 1, 2, 3}, [][]float64{{0, 0, 0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp, err := NewSpace(itemsFromRows(base), p, maxSize)
			if err != nil {
				t.Fatal(err)
			}
			next, removed := applyDelta(base, tc.removeIdx, tc.added)
			got, err := NewSpaceFrom(sp, itemsFromRows(next), removed, tc.added)
			if err != nil {
				t.Fatal(err)
			}
			want, err := NewSpace(itemsFromRows(next), p, maxSize)
			if err != nil {
				t.Fatal(err)
			}
			assertSpaceEqual(t, got, want)
		})
	}
}

// TestNewSpaceFromSharesUntouchedState asserts the copy-on-write contract:
// a delta touching only feature 1 shares the sum dimension's top slice
// with the parent rather than recomputing it.
func TestNewSpaceFromSharesUntouchedState(t *testing.T) {
	p := deltaProfile(t)
	base := [][]float64{{10, 7, 1}, {8, 5, 2}, {6, 3, 3}}
	sp, err := NewSpace(itemsFromRows(base), p, 3)
	if err != nil {
		t.Fatal(err)
	}
	added := [][]float64{{Null, 9, Null}}
	next, removed := applyDelta(base, nil, added)
	got, err := NewSpaceFrom(sp, itemsFromRows(next), removed, added)
	if err != nil {
		t.Fatal(err)
	}
	if &got.Norm.tops[0][0] != &sp.Norm.tops[0][0] {
		t.Fatal("sum dimension untouched by the delta, but its top slice was reallocated")
	}
	if got.Norm.Scale(1) == sp.Norm.Scale(1) {
		t.Fatalf("max dimension touched (new max 9 > 7), scale should change: %v", got.Norm.Scale(1))
	}
}

// TestNewSpaceFromRejectsBadRows covers the delta path's validation.
func TestNewSpaceFromRejectsBadRows(t *testing.T) {
	p := deltaProfile(t)
	base := [][]float64{{1, 2, 3}, {4, 5, 6}}
	sp, err := NewSpace(itemsFromRows(base), p, 3)
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]float64{{1, -2, 3}}
	next, _ := applyDelta(base, nil, bad)
	if _, err := NewSpaceFrom(sp, itemsFromRows(next), nil, bad); err == nil {
		t.Fatal("negative added value accepted")
	}
	short := [][]float64{{1, 2}}
	if _, err := NewSpaceFrom(sp, itemsFromRows(base), nil, short); err == nil {
		t.Fatal("short delta row accepted")
	}
	if _, err := NewSpaceFrom(sp, nil, nil, nil); err == nil {
		t.Fatal("empty item set accepted")
	}
}
