// Package experiments regenerates every figure of the paper's evaluation
// (§5) on this reproduction: sampler behaviour (Fig. 4), constraint-check
// pruning (Fig. 5), overall time performance (Fig. 6), sample quality
// (§5.4), sample maintenance (Fig. 7), and elicitation effectiveness
// (Fig. 8). Each experiment returns text tables that cmd/experiments
// prints and EXPERIMENTS.md records; bench_test.go exercises the same
// workloads under testing.B.
//
// Absolute times differ from the paper (different hardware and language —
// the authors used Python); the reproduced quantity is the shape: which
// method wins, by what factor, and where behaviour changes.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment result table, printable as aligned text or CSV.
type Table struct {
	// Title names the experiment, e.g. "Figure 5(a): varying features".
	Title string
	// Header labels the columns.
	Header []string
	// Rows holds the cell values.
	Rows [][]string
	// Notes carries caveats (scale reductions, substitutions).
	Notes string
}

// Fprint writes the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "## %s\n\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "\n  note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Header, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// cells formats a row from mixed values.
func cells(vs ...any) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		switch x := v.(type) {
		case string:
			out[i] = x
		case int:
			out[i] = fmt.Sprintf("%d", x)
		case float64:
			out[i] = fmt.Sprintf("%.4g", x)
		default:
			out[i] = fmt.Sprint(v)
		}
	}
	return out
}

// ms formats a duration in seconds as milliseconds text.
func ms(seconds float64) string {
	return fmt.Sprintf("%.2f", seconds*1000)
}
