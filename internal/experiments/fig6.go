package experiments

import (
	"errors"
	"fmt"
	"time"

	"toppkg/internal/gaussmix"
	"toppkg/internal/ranking"
	"toppkg/internal/sampling"
	"toppkg/internal/search"
)

// Fig6 reproduces Figure 6 (§5.3): overall time for top-k package
// recommendation split into sample generation and Top-k-Pkg search, under
// rejection (RS), importance (IS) and MCMC (MS) sampling, over the five
// datasets (UNI, PWR, COR, ANT, NBA), varying (top row) the number of
// samples and (bottom row) the number of features. Importance sampling is
// skipped above 5 features, as in the paper, because its grid-based center
// finding is exponential in the dimensionality.
func Fig6(p Params) ([]Table, error) {
	var tables []Table
	nItems := p.scaled(100000)
	const defFeatures = 5
	defPrefs := p.scaled(2000)

	sampleCounts := []int{1000, 5000}
	featureCounts := []int{2, 5, 8, 10}

	for _, kind := range []string{"uni", "pwr", "cor", "ant", "nba"} {
		// Top row: varying the number of samples at 5 features.
		t1 := Table{
			Title: fmt.Sprintf("Figure 6 (%s): time vs number of samples (features=%d)",
				kind, defFeatures),
			Header: []string{"samples", "sampler", "gen_ms", "topk_ms", "total_ms", "acceptance"},
			Notes: fmt.Sprintf("%d items, %d preferences, EXP semantics; paper shape: RS ≫ IS ≈ MS, RS sampling dominates",
				nItems, defPrefs),
		}
		for _, sc := range sampleCounts {
			rows, err := fig6Point(p, kind, nItems, defFeatures, p.scaled(sc), defPrefs, true)
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				t1.Rows = append(t1.Rows, append(cells(p.scaled(sc)), r...))
			}
		}
		tables = append(tables, t1)

		// Bottom row: varying the number of features at 1000 samples.
		t2 := Table{
			Title:  fmt.Sprintf("Figure 6 (%s): time vs number of features (samples=%d)", kind, p.scaled(1000)),
			Header: []string{"features", "sampler", "gen_ms", "topk_ms", "total_ms", "acceptance"},
			Notes:  "importance sampling excluded beyond 5 features (grid center exponential in dims, §5.3)",
		}
		for _, m := range featureCounts {
			rows, err := fig6Point(p, kind, nItems, m, p.scaled(1000), defPrefs, m <= 5)
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				t2.Rows = append(t2.Rows, append(cells(m), r...))
			}
		}
		tables = append(tables, t2)
	}
	return tables, nil
}

// fig6Point measures one (dataset, features, samples) cell for all
// applicable samplers, returning rows of
// [sampler, gen_ms, topk_ms, total_ms, acceptance].
func fig6Point(p Params, kind string, nItems, features, samples, prefs int, includeIS bool) ([][]string, error) {
	rng := p.rng(int64(6000 + features*31 + samples))
	sp, err := buildSpace(kind, nItems, features, 5, rng)
	if err != nil {
		return nil, err
	}
	w := hiddenW(features, rng)
	graph, _, _ := preferenceWorkload(sp, p.scaled(5000), prefs, w, rng)
	cs := graph.Constraints(true)
	v := sampling.NewValidator(features, cs)
	prior := gaussmix.DefaultPrior(features, 1, rng)
	ix := search.NewIndex(sp)

	// Attempt budgets bound the wall time of hopeless sampler/dimension
	// combinations; exhausting one yields an honest "timeout" row, the
	// analogue of the paper's chart-capped rejection bars.
	var samplers []sampling.Sampler
	samplers = append(samplers, &sampling.Rejection{Prior: prior, V: v, MaxAttemptsPerSample: 200000})
	if includeIS {
		samplers = append(samplers, &sampling.Importance{Prior: prior, V: v, MaxAttemptsPerSample: 200000})
	}
	samplers = append(samplers, &sampling.MCMC{Prior: prior, V: v, InitAttempts: 1000000})

	var rows [][]string
	for _, s := range samplers {
		srng := p.rng(int64(61 + len(s.Name())))
		start := time.Now()
		res, err := s.Sample(srng, samples)
		genSec := time.Since(start).Seconds()
		if err != nil {
			if errors.Is(err, sampling.ErrTooManyRejections) || errors.Is(err, sampling.ErrDimsTooHigh) {
				rows = append(rows, cells(s.Name(), "timeout", "-", "-", fmt.Sprintf("%.4f", res.Acceptance())))
				continue
			}
			return nil, fmt.Errorf("fig6 %s/%s: %w", kind, s.Name(), err)
		}

		start = time.Now()
		_, err = ranking.Rank(ix, res.Samples, ranking.EXP, ranking.Options{
			K:           5,
			Parallelism: -1,
			// Bounded per-sample searches: see DESIGN.md on beam budgets.
			Search: search.Options{MaxQueue: 32, MaxAccessed: 100},
		})
		if err != nil {
			return nil, fmt.Errorf("fig6 rank %s/%s: %w", kind, s.Name(), err)
		}
		topkSec := time.Since(start).Seconds()
		rows = append(rows, cells(
			s.Name(), ms(genSec), ms(topkSec), ms(genSec+topkSec),
			fmt.Sprintf("%.4f", res.Acceptance()),
		))
	}
	return rows, nil
}
