package experiments

import (
	"fmt"
	"sort"
	"time"

	"toppkg/internal/gaussmix"
	"toppkg/internal/maintain"
	"toppkg/internal/pkgspace"
	"toppkg/internal/prefgraph"
	"toppkg/internal/sampling"
	"toppkg/internal/topk"
)

// fig7Buckets are the paper's violation-count buckets (Figure 7a): results
// are grouped by the maximum number of samples a feedback invalidates.
var fig7Buckets = []int{0, 1, 5, 20, 50, 200, 1000}

// Fig7 reproduces Figure 7 (§5.5): the cost of the three sample-maintenance
// strategies — naive scan, TA-based search, and the hybrid of Algorithm 1 —
// as the number of samples rejected by new feedback varies (a), and the
// hybrid's sensitivity to γ (b).
func Fig7(p Params) ([]Table, error) {
	rng := p.rng(7)
	nSamples := p.scaled(10000)
	nPrefs := p.scaled(1000)
	const features = 5

	sp, err := buildSpace("uni", 2000, features, 3, rng)
	if err != nil {
		return nil, err
	}
	// The pool models a session in progress: past feedback has already
	// concentrated the samples around the user's hidden weight vector
	// (a fresh symmetric prior would make every feedback split the pool
	// ~50/50 and empty the low-violation buckets the paper reports).
	wStar := hiddenW(features, rng)
	posterior := gaussmix.Gaussian(wStar, 0.45)
	samples := make([]sampling.Sample, nSamples)
	for i := range samples {
		samples[i] = sampling.Sample{W: posterior.Sample(rng), Q: 1}
	}
	pool := topk.NewPool(sampling.Weights(samples))

	// Feedback over random package pairs: mostly oriented by the same
	// hidden user (few violators, the margin decides how few), a minority
	// reversed (exploration clicks / noise) to populate the
	// large-violation buckets of Figure 7(a).
	pkgs := randomPackages(sp, p.scaled(5000), rng)
	vecs := make([][]float64, len(pkgs))
	for i := range pkgs {
		vecs[i] = pkgspace.Vector(sp, pkgs[i])
	}
	queries := make([][]float64, 0, nPrefs)
	for len(queries) < nPrefs {
		i, j := rng.Intn(len(pkgs)), rng.Intn(len(pkgs))
		if i == j {
			continue
		}
		ui := dot(wStar, vecs[i])
		uj := dot(wStar, vecs[j])
		if ui == uj {
			continue
		}
		if (ui < uj) != (rng.Float64() < 0.15) {
			// Winner should be j: either the user truly prefers j (85%) or
			// this is one of the reversed/noisy clicks (15%).
			i, j = j, i
		}
		c := prefgraph.Constraint{Winner: pkgs[i], Loser: pkgs[j], Diff: diff(vecs[i], vecs[j])}
		queries = append(queries, maintain.Query(c))
	}

	// (a) Bucketed costs.
	type agg struct {
		n                    int
		naive, ta, hybrid    float64
		wNaive, wTA, wHybrid float64
	}
	buckets := make([]agg, len(fig7Buckets))
	naive := &maintain.Naive{P: pool}
	ta := &maintain.TA{P: pool}
	hybrid := &maintain.Hybrid{P: pool, Gamma: 0.025}
	for _, q := range queries {
		viol, _ := naive.Violators(q)
		b := bucketOf(len(viol), nSamples)
		buckets[b].n++
		start := time.Now()
		naive.Violators(q)
		buckets[b].naive += time.Since(start).Seconds()
		start = time.Now()
		_, workTA := ta.Violators(q)
		buckets[b].ta += time.Since(start).Seconds()
		start = time.Now()
		_, workH := hybrid.Violators(q)
		buckets[b].hybrid += time.Since(start).Seconds()
		buckets[b].wNaive += float64(nSamples)
		buckets[b].wTA += float64(workTA)
		buckets[b].wHybrid += float64(workH)
	}
	ta7 := Table{
		Title: fmt.Sprintf("Figure 7(a): maintenance cost by violation bucket (%d samples, %d feedbacks)",
			nSamples, nPrefs),
		Header: []string{"max_violations", "feedbacks", "naive_ms", "ta_ms", "hybrid_ms",
			"naive_work", "ta_work", "hybrid_work"},
		Notes: "paper shape: TA wins at small violation counts, naive wins at large, hybrid tracks the best",
	}
	for b, a := range buckets {
		if a.n == 0 {
			continue
		}
		n := float64(a.n)
		ta7.Rows = append(ta7.Rows, cells(
			bucketLabel(b, nSamples), a.n,
			ms(a.naive/n), ms(a.ta/n), ms(a.hybrid/n),
			int(a.wNaive/n), int(a.wTA/n), int(a.wHybrid/n),
		))
	}

	// (b) γ sweep: cost ratios vs naive. Work counts are deterministic;
	// times take the fastest of several passes to shed scheduler noise.
	tb := Table{
		Title:  "Figure 7(b): hybrid/TA cost vs naive while varying γ",
		Header: []string{"gamma", "ta_work_ratio", "hybrid_work_ratio", "ta_time_ratio", "hybrid_time_ratio"},
		Notes:  "paper: hybrid best at small γ (≈15% win at 0.025 on their cost profile), approaches pure TA as γ grows",
	}
	timeOf := func(c maintain.Checker) (workTotal int, secs float64) {
		best := 0.0
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			w := 0
			for _, q := range queries {
				_, wk := c.Violators(q)
				w += wk
			}
			el := time.Since(start).Seconds()
			if rep == 0 || el < best {
				best = el
			}
			workTotal = w
		}
		return workTotal, best
	}
	naiveWork, naiveTime := timeOf(naive)
	taWork, taTime := timeOf(ta)
	for _, gamma := range []float64{0.000001, 0.025, 0.05, 0.075, 0.1, 0.5, 1, 2} {
		h := &maintain.Hybrid{P: pool, Gamma: gamma}
		hWork, hTime := timeOf(h)
		label := fmt.Sprintf("%.3g", gamma)
		if gamma < 0.0001 {
			label = "0"
		}
		tb.Rows = append(tb.Rows, cells(label,
			fmt.Sprintf("%.3f", float64(taWork)/float64(naiveWork)),
			fmt.Sprintf("%.3f", float64(hWork)/float64(naiveWork)),
			fmt.Sprintf("%.3f", taTime/naiveTime),
			fmt.Sprintf("%.3f", hTime/naiveTime)))
	}
	return []Table{ta7, tb}, nil
}

func diff(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// bucketOf maps a violation count to the paper's bucket index ("results
// are placed in the bucket with the smallest qualifying label"), with the
// final bucket covering everything larger.
func bucketOf(violations, nSamples int) int {
	scaledBuckets := scaledFig7Buckets(nSamples)
	i := sort.SearchInts(scaledBuckets, violations)
	if i >= len(scaledBuckets) {
		i = len(scaledBuckets) - 1
	}
	return i
}

func bucketLabel(b, nSamples int) string {
	return fmt.Sprintf("%d", scaledFig7Buckets(nSamples)[b])
}

// scaledFig7Buckets rescales the paper's buckets (defined for 10000
// samples) to the actual pool size.
func scaledFig7Buckets(nSamples int) []int {
	out := make([]int, len(fig7Buckets))
	for i, b := range fig7Buckets {
		out[i] = b * nSamples / 10000
		if i > 0 && out[i] <= out[i-1] {
			out[i] = out[i-1] + 1
		}
	}
	return out
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
