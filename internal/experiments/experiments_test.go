package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tiny returns parameters small enough for CI-speed smoke runs.
func tiny() Params { return Params{Scale: 0.02, Seed: 1} }

func checkTables(t *testing.T, tables []Table, err error, wantTables int) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) < wantTables {
		t.Fatalf("got %d tables, want ≥ %d", len(tables), wantTables)
	}
	for i, tb := range tables {
		if tb.Title == "" || len(tb.Header) == 0 {
			t.Fatalf("table %d missing title/header", i)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("table %q has no rows", tb.Title)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Fatalf("table %q row width %d != header %d", tb.Title, len(row), len(tb.Header))
			}
		}
	}
}

func TestFig4Smoke(t *testing.T) {
	tables, err := Fig4(tiny())
	checkTables(t, tables, err, 2)
	if len(tables[0].Rows) != 3 {
		t.Errorf("fig4 should have one row per sampler, got %d", len(tables[0].Rows))
	}
}

func TestFig5Smoke(t *testing.T) {
	tables, err := Fig5(tiny())
	checkTables(t, tables, err, 3)
	// Reduction can only shrink the constraint set (numeric comparison).
	for _, row := range tables[0].Rows {
		full, err1 := strconv.Atoi(row[1])
		reduced, err2 := strconv.Atoi(row[2])
		if err1 != nil || err2 != nil {
			t.Fatalf("non-numeric constraint counts: %v", row)
		}
		if reduced > full {
			t.Errorf("reduced constraints %d exceed full %d", reduced, full)
		}
	}
}

func TestFig7Smoke(t *testing.T) {
	tables, err := Fig7(tiny())
	checkTables(t, tables, err, 2)
}

func TestQualitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("quality sweeps 3 samplers × 3 semantics")
	}
	tables, err := Quality(tiny())
	checkTables(t, tables, err, 1)
	if len(tables[0].Rows) != 9 {
		t.Errorf("quality should have 3 samplers × 3 semantics rows, got %d", len(tables[0].Rows))
	}
}

func TestFig8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("elicitation sessions are slow")
	}
	tables, err := Fig8(Params{Scale: 0.005, Seed: 1})
	checkTables(t, tables, err, 1)
	if len(tables[0].Rows) != 5 {
		t.Errorf("fig8 should have one row per feature count, got %d", len(tables[0].Rows))
	}
}

func TestFig6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 sweeps all datasets")
	}
	tables, err := Fig6(Params{Scale: 0.01, Seed: 1})
	checkTables(t, tables, err, 10) // 2 tables × 5 datasets
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("registry has %d entries", len(names))
	}
	if _, err := Run("nope", tiny()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTableFormats(t *testing.T) {
	tb := Table{
		Title:  "T",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  "n",
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"## T", "a", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fprint missing %q in %q", want, out)
		}
	}
	buf.Reset()
	tb.CSV(&buf)
	if got := buf.String(); got != "a,b\n1,2\n333,4\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestParamsScaled(t *testing.T) {
	p := Params{Scale: 0.5}
	if got := p.scaled(1000); got != 500 {
		t.Errorf("scaled(1000) = %d", got)
	}
	if got := p.scaled(1); got != 1 {
		t.Errorf("scaled floor broken: %d", got)
	}
	z := Params{}
	if got := z.scaled(1000); got != 200 {
		t.Errorf("zero-scale default = %d, want 200", got)
	}
}

func TestScaledFig7Buckets(t *testing.T) {
	b := scaledFig7Buckets(10000)
	want := []int{0, 1, 5, 20, 50, 200, 1000}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets at paper scale = %v", b)
		}
	}
	small := scaledFig7Buckets(100)
	for i := 1; i < len(small); i++ {
		if small[i] <= small[i-1] {
			t.Fatalf("scaled buckets not strictly increasing: %v", small)
		}
	}
}

func TestBucketOf(t *testing.T) {
	if got := bucketOf(0, 10000); got != 0 {
		t.Errorf("bucketOf(0) = %d", got)
	}
	if got := bucketOf(3, 10000); got != 2 { // smallest qualifying label: 5
		t.Errorf("bucketOf(3) = %d", got)
	}
	if got := bucketOf(99999, 10000); got != 6 {
		t.Errorf("bucketOf(big) = %d", got)
	}
}

func TestAsciiCloudShape(t *testing.T) {
	got := asciiCloud(nil)
	// 8 rows of 16 chars joined by 7 slashes.
	if len(got) != 16*8+7 {
		t.Errorf("ascii cloud length %d", len(got))
	}
}
