package experiments

import (
	"fmt"
	"math/rand"

	"toppkg/internal/dataset"
	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
	"toppkg/internal/prefgraph"
)

// Params tunes the experiment scale. The paper's settings (§5.2–5.6) are
// the Scale=1 targets; the default Scale trims sizes so the whole suite
// runs in minutes on a laptop while preserving every comparison's shape.
type Params struct {
	// Scale multiplies workload sizes (1 = paper scale where feasible).
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Verbose enables progress output on stderr from long experiments.
	Verbose bool
}

// DefaultParams returns the quick-run configuration.
func DefaultParams() Params { return Params{Scale: 0.2, Seed: 1} }

func (p Params) scaled(n int) int {
	if p.Scale <= 0 {
		p.Scale = 0.2
	}
	v := int(float64(n) * p.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

func (p Params) rng(offset int64) *rand.Rand {
	return rand.New(rand.NewSource(p.Seed + offset*1_000_003))
}

// defaultProfile builds the paper's implicit profile for synthetic data:
// alternating aggregations (sum, avg, max, min, …) over m features, which
// exercises every aggregate class.
func defaultProfile(m int) *feature.Profile {
	aggs := make([]feature.Agg, m)
	cycle := []feature.Agg{feature.AggSum, feature.AggAvg, feature.AggMax, feature.AggMin}
	for i := range aggs {
		aggs[i] = cycle[i%len(cycle)]
	}
	return feature.SimpleProfile(aggs...)
}

// buildSpace generates a dataset and wraps it into a feature space.
func buildSpace(kind string, n, m, maxSize int, rng *rand.Rand) (*feature.Space, error) {
	items, err := dataset.Generate(kind, n, m, rng)
	if err != nil {
		return nil, err
	}
	sp, err := feature.NewSpace(items, defaultProfile(m), maxSize)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s space: %w", kind, err)
	}
	return sp, nil
}

// hiddenW draws a ground-truth weight vector uniformly from [-1,1]^d.
func hiddenW(d int, rng *rand.Rand) []float64 {
	w := make([]float64, d)
	for i := range w {
		w[i] = rng.Float64()*2 - 1
	}
	return w
}

// randomPackages draws count random packages (size 1..maxSize, distinct
// random items) from the space.
func randomPackages(sp *feature.Space, count int, rng *rand.Rand) []pkgspace.Package {
	out := make([]pkgspace.Package, count)
	n := len(sp.Items)
	for i := range out {
		size := 1 + rng.Intn(sp.MaxSize)
		if size > n {
			size = n
		}
		picked := make(map[int]bool, size)
		ids := make([]int, 0, size)
		for len(ids) < size {
			id := rng.Intn(n)
			if !picked[id] {
				picked[id] = true
				ids = append(ids, id)
			}
		}
		out[i] = pkgspace.New(ids...)
	}
	return out
}

// clickWorkload builds a preference graph the way the deployed system does
// (§3.3): rounds of σ-package slates, each click yielding σ−1 preferences
// with a common winner. Slates carry the current best three packages plus
// random ones, so winner-over-ex-winner edges accumulate transitive
// redundancy for the reduction to prune.
func clickWorkload(sp *feature.Space, packages, prefs int, w []float64, rng *rand.Rand) *prefgraph.Graph {
	pkgs := randomPackages(sp, packages, rng)
	vecs := make([][]float64, len(pkgs))
	utils := make([]float64, len(pkgs))
	for i, p := range pkgs {
		vecs[i] = pkgspace.Vector(sp, p)
		utils[i] = feature.Dot(w, vecs[i])
	}
	const sigma = 10
	g := prefgraph.New()
	var champions []int // indices of the best packages seen, best first
	added := 0
	for guard := 0; added < prefs && guard < prefs*4; guard++ {
		// Assemble the slate: standing champions + random packages.
		slate := append([]int(nil), champions...)
		for len(slate) < sigma {
			slate = append(slate, rng.Intn(len(pkgs)))
		}
		best := slate[0]
		for _, i := range slate[1:] {
			if utils[i] > utils[best] {
				best = i
			}
		}
		for _, i := range slate {
			if i == best || utils[i] == utils[best] {
				continue
			}
			if err := g.AddPreference(pkgs[best], vecs[best], pkgs[i], vecs[i]); err == nil {
				added++
				if added >= prefs {
					break
				}
			}
		}
		// Update the champions list (top 3 distinct seen so far).
		champions = updateChampions(champions, best, utils)
	}
	return g
}

func updateChampions(ch []int, cand int, utils []float64) []int {
	for _, c := range ch {
		if c == cand {
			return ch
		}
	}
	ch = append(ch, cand)
	// Insertion sort by utility descending; keep top 3.
	for i := len(ch) - 1; i > 0 && utils[ch[i]] > utils[ch[i-1]]; i-- {
		ch[i], ch[i-1] = ch[i-1], ch[i]
	}
	if len(ch) > 3 {
		ch = ch[:3]
	}
	return ch
}

// preferenceWorkload builds a preference graph of `prefs` pairwise
// preferences over random packages, each oriented consistently with the
// hidden weight vector w (as real user clicks would be, §5.2's "randomly
// generated preferences"), and returns the graph plus the package vectors.
func preferenceWorkload(sp *feature.Space, packages, prefs int, w []float64, rng *rand.Rand) (*prefgraph.Graph, []pkgspace.Package, [][]float64) {
	pkgs := randomPackages(sp, packages, rng)
	vecs := make([][]float64, len(pkgs))
	for i, p := range pkgs {
		vecs[i] = pkgspace.Vector(sp, p)
	}
	g := prefgraph.New()
	added := 0
	for attempts := 0; added < prefs && attempts < 20*prefs+100; attempts++ {
		i, j := rng.Intn(len(pkgs)), rng.Intn(len(pkgs))
		if i == j {
			continue
		}
		ui := feature.Dot(w, vecs[i])
		uj := feature.Dot(w, vecs[j])
		if ui == uj {
			continue // ties carry no orientation
		}
		if ui < uj {
			i, j = j, i
		}
		// Consistent orientation never cycles; duplicate-signature pairs
		// are rejected by the graph and simply retried.
		if err := g.AddPreference(pkgs[i], vecs[i], pkgs[j], vecs[j]); err == nil {
			added++
		}
	}
	return g, pkgs, vecs
}
