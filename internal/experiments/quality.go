package experiments

import (
	"fmt"

	"toppkg/internal/gaussmix"
	"toppkg/internal/ranking"
	"toppkg/internal/sampling"
	"toppkg/internal/search"
	"toppkg/internal/stats"
)

// Quality reproduces §5.4: with enough samples, the top-5 package lists
// produced by different sampling methods — and largely across ranking
// semantics — converge to very similar lists. Settings per the paper:
// 5000 samples, 1000 preferences, 4 features, 2 Gaussians (times Scale).
// Similarity is reported as Jaccard overlap and Kendall τ against the
// MCMC/EXP reference list.
func Quality(p Params) ([]Table, error) {
	rng := p.rng(54)
	const features = 4
	nSamples := p.scaled(5000)
	// Fewer preferences than Fig. 5's default: rejection sampling must
	// still terminate (its acceptance decays exponentially with the
	// constraint count), and the §5.4 claim is about sampler agreement,
	// not constraint volume.
	nPrefs := p.scaled(150)

	sp, err := buildSpace("nba", 0, features, 5, rng)
	if err != nil {
		return nil, err
	}
	w := hiddenW(features, rng)
	graph, _, _ := preferenceWorkload(sp, p.scaled(5000), nPrefs, w, rng)
	cs := graph.Constraints(true)
	v := sampling.NewValidator(features, cs)
	prior := gaussmix.DefaultPrior(features, 2, rng)
	ix := search.NewIndex(sp)

	pools := map[string][]sampling.Sample{}
	for _, s := range []sampling.Sampler{
		&sampling.Rejection{Prior: prior, V: v},
		&sampling.Importance{Prior: prior, V: v},
		&sampling.MCMC{Prior: prior, V: v},
	} {
		res, err := s.Sample(p.rng(540), nSamples)
		if err != nil {
			return nil, fmt.Errorf("quality %s: %w", s.Name(), err)
		}
		pools[s.Name()] = res.Samples
	}

	semantics := []ranking.Semantics{ranking.EXP, ranking.TKP, ranking.MPO}
	lists := map[string][]string{}
	for name, pool := range pools {
		for _, sem := range semantics {
			ranked, err := ranking.Rank(ix, pool, sem, ranking.Options{K: 5, Parallelism: -1,
				Search: search.Options{MaxQueue: 128, MaxAccessed: 500}})
			if err != nil {
				return nil, fmt.Errorf("quality rank %s/%v: %w", name, sem, err)
			}
			lists[name+"/"+sem.String()] = ranking.Signatures(ranked)
		}
	}

	ref := lists["mcmc/EXP"]
	t := Table{
		Title: fmt.Sprintf("§5.4 sample quality: top-5 lists vs mcmc/EXP (%d samples, %d prefs, %d features, 2 Gaussians)",
			nSamples, nPrefs, features),
		Header: []string{"sampler/semantics", "top-5 signatures", "jaccard", "kendall_tau"},
		Notes:  "paper: given enough samples, lists from different samplers (and often semantics) nearly coincide",
	}
	for _, name := range []string{"rejection", "importance", "mcmc"} {
		for _, sem := range semantics {
			key := name + "/" + sem.String()
			l := lists[key]
			t.Rows = append(t.Rows, cells(
				key,
				join(l, " "),
				fmt.Sprintf("%.2f", stats.Jaccard(ref, l)),
				fmt.Sprintf("%.2f", stats.KendallTau(ref, l)),
			))
		}
	}
	return []Table{t}, nil
}

func join(xs []string, sep string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += sep
		}
		out += "{" + x + "}"
	}
	return out
}
