package experiments

import (
	"fmt"
	"os"

	"toppkg/internal/core"
	"toppkg/internal/dataset"
	"toppkg/internal/search"
	"toppkg/internal/simulate"
	"toppkg/internal/stats"
)

// Fig8 reproduces Figure 8 (§5.6): elicitation effectiveness on the NBA
// dataset. For a population of hidden ground-truth utility functions, it
// runs full elicitation sessions (5 recommended + 5 random packages per
// round, MCMC sampling, EXP semantics) and reports how many clicks the
// system needs before the top-k recommendation list stabilizes, as the
// number of features grows. The paper's result: only a few clicks per
// query suffice.
func Fig8(p Params) ([]Table, error) {
	users := p.scaled(30)
	if users < 3 {
		users = 3
	}
	if users > 100 {
		users = 100
	}
	sampleCount := p.scaled(750)
	if sampleCount < 60 {
		sampleCount = 60
	}
	// Only tiny smoke scales shrink the session length: a 3-round session
	// still exercises the recommend→click→maintain loop end to end. Every
	// normal scale (including the 0.2 default) keeps the full 12 rounds
	// the convergence measurement needs.
	rounds := 12
	if p.Scale > 0 && p.Scale < 0.05 {
		rounds = 3
	}
	nbaAll := dataset.NBA(p.rng(8))

	t := Table{
		Title:  fmt.Sprintf("Figure 8: clicks to convergence vs features (NBA, %d users)", users),
		Header: []string{"features", "avg_clicks", "median", "max", "converged", "regret_mean"},
		Notes:  "paper shape: a handful of clicks suffices at every dimensionality; clicks grow mildly with features",
	}
	for _, m := range []int{2, 4, 6, 8, 10} {
		items := dataset.NBASelect(nbaAll, m)
		var clicks []float64
		var regrets []float64
		converged := 0
		for u := 0; u < users; u++ {
			eng, err := core.New(core.Config{
				Items:          items,
				Profile:        defaultProfile(m),
				MaxPackageSize: 5,
				K:              5,
				RandomCount:    5,
				SampleCount:    sampleCount,
				Sampler:        core.SamplerMCMC,
				Seed:           p.Seed + int64(u)*131 + int64(m),
				Parallelism:    -1,
				// Bounded per-sample searches keep a full session fast.
				Search: search.Options{MaxQueue: 64, MaxAccessed: 300},
			})
			if err != nil {
				return nil, err
			}
			rng := p.rng(int64(800 + u*17 + m))
			user := simulate.NewRandomUser(eng.Space().Profile, rng)
			res, err := simulate.RunSession(eng, user, simulate.SessionConfig{
				MaxRounds: rounds, StableRounds: 2,
			}, rng)
			if err != nil {
				return nil, fmt.Errorf("fig8 m=%d user=%d: %w", m, u, err)
			}
			clicks = append(clicks, float64(res.Clicks))
			if res.Converged {
				converged++
			}
			if res.TrueTopUtility != 0 {
				regrets = append(regrets, res.TrueTopUtility-res.FinalTopUtility)
			}
			if p.Verbose {
				fmt.Fprintf(os.Stderr, "fig8 m=%d user=%d clicks=%d converged=%v\n",
					m, u, res.Clicks, res.Converged)
			}
		}
		s := stats.Summarize(clicks)
		t.Rows = append(t.Rows, cells(
			m,
			fmt.Sprintf("%.1f", s.Mean),
			fmt.Sprintf("%.0f", s.Median),
			fmt.Sprintf("%.0f", s.Max),
			fmt.Sprintf("%d/%d", converged, users),
			fmt.Sprintf("%.3f", stats.Mean(regrets)),
		))
	}
	return []Table{t}, nil
}
