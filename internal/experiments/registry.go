package experiments

import (
	"fmt"
	"sort"
)

// Runner is one experiment entry point.
type Runner func(Params) ([]Table, error)

// Registry maps experiment names (as accepted by cmd/experiments -fig) to
// their runners.
var Registry = map[string]Runner{
	"4":       Fig4,
	"5":       Fig5,
	"6":       Fig6,
	"7":       Fig7,
	"8":       Fig8,
	"quality": Quality,
}

// Names returns the registered experiment names in run order.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run dispatches an experiment by name.
func Run(name string, p Params) ([]Table, error) {
	r, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(p)
}
