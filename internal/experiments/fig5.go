package experiments

import (
	"fmt"
	"time"

	"toppkg/internal/gaussmix"
	"toppkg/internal/prefgraph"
	"toppkg/internal/sampling"
)

// Fig5 reproduces Figure 5 (§5.2): the benefit of pruning redundant
// preferences via transitive reduction for the overall constraint-checking
// time, varying (a) the number of features, (b) the number of samples, and
// (c) the number of Gaussians in the prior, with the remaining parameters
// at the paper's defaults (10000 preferences, 5000 packages, 1 Gaussian,
// 5 features, 1000 samples — multiplied by Scale).
func Fig5(p Params) ([]Table, error) {
	defPrefs := p.scaled(10000)
	defPackages := p.scaled(5000)
	defSamples := p.scaled(1000)
	const defFeatures, defGaussians = 5, 1

	var tables []Table

	// (a) Varying the number of features.
	ta := Table{
		Title:  "Figure 5(a): checking time vs number of features",
		Header: []string{"features", "constraints", "after_reduction", "before_ms", "after_ms", "speedup"},
		Notes:  "defaults: " + scaleNote(p, defPrefs, defPackages, defSamples),
	}
	for _, m := range []int{3, 4, 5, 6, 7} {
		row, err := fig5Point(p, m, defSamples, defGaussians, defPrefs, defPackages)
		if err != nil {
			return nil, err
		}
		ta.Rows = append(ta.Rows, row.cells(m))
	}
	tables = append(tables, ta)

	// (b) Varying the number of samples.
	tb := Table{
		Title:  "Figure 5(b): checking time vs number of samples",
		Header: []string{"samples", "constraints", "after_reduction", "before_ms", "after_ms", "speedup"},
	}
	for _, s := range []int{1000, 2000, 3000, 4000, 5000} {
		row, err := fig5Point(p, defFeatures, p.scaled(s), defGaussians, defPrefs, defPackages)
		if err != nil {
			return nil, err
		}
		tb.Rows = append(tb.Rows, row.cells(p.scaled(s)))
	}
	tables = append(tables, tb)

	// (c) Varying the number of Gaussians in the prior.
	tc := Table{
		Title:  "Figure 5(c): checking time vs number of Gaussians",
		Header: []string{"gaussians", "constraints", "after_reduction", "before_ms", "after_ms", "speedup"},
	}
	for _, g := range []int{1, 2, 3, 4, 5} {
		row, err := fig5Point(p, defFeatures, defSamples, g, defPrefs, defPackages)
		if err != nil {
			return nil, err
		}
		tc.Rows = append(tc.Rows, row.cells(g))
	}
	tables = append(tables, tc)
	return tables, nil
}

type fig5Row struct {
	constraints, reduced int
	beforeSec, afterSec  float64
}

func (r fig5Row) cells(x int) []string {
	speedup := 0.0
	if r.afterSec > 0 {
		speedup = r.beforeSec / r.afterSec
	}
	return cells(x, r.constraints, r.reduced, ms(r.beforeSec), ms(r.afterSec),
		fmt.Sprintf("%.2fx", speedup))
}

// fig5Point measures the time to validity-check `samples` weight vectors
// against the full vs reduced constraint set.
//
// The preferences are click-structured, as §3.3 assumes: each "round"
// shows a slate of σ = 10 packages containing the current best three plus
// randoms, and the hidden user's click yields σ−1 pairwise preferences
// with a common winner. Successive winners beat the standing champions,
// so a sizable fraction of the edges is transitively redundant — exactly
// what the reduction prunes. The checked samples are drawn near the hidden
// weight vector (as MCMC chain states are): mostly-valid vectors scan the
// whole constraint list, so checking cost tracks the constraint count.
func fig5Point(p Params, features, samples, gaussians, prefs, packages int) (fig5Row, error) {
	rng := p.rng(int64(5000 + features*100 + samples + gaussians*7))
	sp, err := buildSpace("uni", 2000, features, 3, rng)
	if err != nil {
		return fig5Row{}, err
	}
	w := hiddenW(features, rng)
	graph := clickWorkload(sp, packages, prefs, w, rng)

	full := graph.Constraints(false)
	reduced := graph.Constraints(true)

	// Check fully valid samples (what MCMC chain states and retained pool
	// members are): they scan the entire constraint list, so the measured
	// time isolates the constraint-count effect instead of short-circuit
	// luck. gaussians widens the generating mixture without changing that.
	gen, err := gaussmix.New(componentsAround(w, gaussians)...)
	if err != nil {
		return fig5Row{}, err
	}
	vFull := sampling.NewValidator(features, full)
	draws := make([][]float64, 0, samples)
	for guard := 0; len(draws) < samples && guard < samples*4000; guard++ {
		d := gen.Sample(rng)
		if vFull.Valid(d, nil) {
			draws = append(draws, d)
		}
	}

	// Repeat the pass enough times for the clock to resolve the difference.
	const reps = 30
	check := func(cs []prefgraph.Constraint) float64 {
		v := sampling.NewValidator(features, cs)
		start := time.Now()
		valid := 0
		for r := 0; r < reps; r++ {
			for _, d := range draws {
				if v.Valid(d, nil) {
					valid++
				}
			}
		}
		_ = valid
		return time.Since(start).Seconds() / reps
	}
	row := fig5Row{constraints: len(full), reduced: len(reduced)}
	row.beforeSec = check(full)
	row.afterSec = check(reduced)
	return row, nil
}

// componentsAround builds k mixture components jittered around w, std 0.1.
func componentsAround(w []float64, k int) []gaussmix.Component {
	if k < 1 {
		k = 1
	}
	comps := make([]gaussmix.Component, k)
	for c := 0; c < k; c++ {
		mean := make([]float64, len(w))
		std := make([]float64, len(w))
		for j := range w {
			mean[j] = w[j] + 0.02*float64(c)
			std[j] = 0.1
		}
		comps[c] = gaussmix.Component{Weight: 1, Mean: mean, Std: std}
	}
	return comps
}

func scaleNote(p Params, prefs, packages, samples int) string {
	return fmt.Sprintf("%d preferences, %d packages, %d samples (scale %.2g of the paper's 10000/5000/1000)",
		prefs, packages, samples, p.Scale)
}
