package experiments

import (
	"fmt"
	"time"

	"toppkg/internal/gaussmix"
	"toppkg/internal/sampling"
)

// Fig4 reproduces Figure 4 (§5.1): how the three sampling methods generate
// 100 valid 2-dimensional samples given 5000 packages and 2 random
// preferences. The paper's figure is a scatter plot; the reproduction
// reports the quantitative content — how many raw draws each method spends
// (rejected crosses vs accepted dots), the acceptance rate, and the
// effective number of samples — plus an ASCII rendering of the accepted
// sample cloud per sampler.
func Fig4(p Params) ([]Table, error) {
	rng := p.rng(4)
	sp, err := buildSpace("uni", 1000, 2, 3, rng)
	if err != nil {
		return nil, err
	}
	w := hiddenW(2, rng)
	graph, _, _ := preferenceWorkload(sp, 5000, 2, w, rng)
	cs := graph.Constraints(true)
	v := sampling.NewValidator(2, cs)
	prior := gaussmix.DefaultPrior(2, 1, rng)

	const want = 100
	table := &Table{
		Title:  "Figure 4: generating 100 valid 2-D samples under 2 preferences",
		Header: []string{"sampler", "accepted", "raw draws", "acceptance", "ENS", "time_ms"},
		Notes:  "paper: rejection wastes many samples; importance and MCMC concentrate in the valid region",
	}
	scatter := &Table{
		Title:  "Figure 4 (render): accepted sample clouds",
		Header: []string{"sampler", "ascii (16x8 over [-1,1]^2, #=many, .=few)"},
	}
	for _, s := range []sampling.Sampler{
		&sampling.Rejection{Prior: prior, V: v},
		&sampling.Importance{Prior: prior, V: v},
		&sampling.MCMC{Prior: prior, V: v},
	} {
		start := time.Now()
		res, err := s.Sample(p.rng(40), want)
		if err != nil {
			return nil, fmt.Errorf("fig4 %s: %w", s.Name(), err)
		}
		elapsed := time.Since(start).Seconds()
		table.Rows = append(table.Rows, cells(
			s.Name(), len(res.Samples), res.Attempts,
			fmt.Sprintf("%.3f", res.Acceptance()),
			fmt.Sprintf("%.1f", sampling.ENS(res.Samples)),
			ms(elapsed),
		))
		scatter.Rows = append(scatter.Rows, []string{s.Name(), asciiCloud(res.Samples)})
	}
	return []Table{*table, *scatter}, nil
}

// asciiCloud renders 2-D samples as a coarse density string, row-major from
// w2 = +1 (top) to −1, w1 from −1 to +1, rows joined by '/'.
func asciiCloud(samples []sampling.Sample) string {
	const cols, rows = 16, 8
	grid := make([]int, cols*rows)
	for _, s := range samples {
		x := int((s.W[0] + 1) / 2 * cols)
		y := int((1 - (s.W[1]+1)/2) * rows)
		if x < 0 {
			x = 0
		}
		if x >= cols {
			x = cols - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= rows {
			y = rows - 1
		}
		grid[y*cols+x]++
	}
	out := make([]byte, 0, (cols+1)*rows)
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			switch c := grid[y*cols+x]; {
			case c == 0:
				out = append(out, ' ')
			case c <= 2:
				out = append(out, '.')
			case c <= 5:
				out = append(out, 'o')
			default:
				out = append(out, '#')
			}
		}
		if y < rows-1 {
			out = append(out, '/')
		}
	}
	return string(out)
}
