// Grid and quadtree approximations of the center of the valid weight
// polytope (paper §3.2.1, Figure 3). The weight box [-1,1]^d is divided
// into cells; a cell is discarded when some feedback constraint excludes it
// entirely, and the polytope center is approximated by the mean of the
// centers of the surviving cells.
package sampling

import (
	"fmt"

	"toppkg/internal/prefgraph"
)

// cellMaySatisfy reports whether the axis-aligned box [lo,hi] contains any
// point satisfying constraint c, i.e. whether max_{w∈box} w·Diff ≥ 0. The
// maximum of a linear function over a box is attained at the corner that
// picks hi where the coefficient is positive and lo where it is negative —
// an O(d) check, as the paper notes (§3.2.1).
func cellMaySatisfy(c *prefgraph.Constraint, lo, hi []float64) bool {
	m := 0.0
	for j, diff := range c.Diff {
		if diff > 0 {
			m += diff * hi[j]
		} else {
			m += diff * lo[j]
		}
	}
	return m >= 0
}

// cellAllSatisfy reports whether every point of the box satisfies c, i.e.
// min_{w∈box} w·Diff ≥ 0.
func cellAllSatisfy(c *prefgraph.Constraint, lo, hi []float64) bool {
	m := 0.0
	for j, diff := range c.Diff {
		if diff > 0 {
			m += diff * lo[j]
		} else {
			m += diff * hi[j]
		}
	}
	return m >= 0
}

// gridCenter divides [-1,1]^d into res^d equal cells and averages the
// centers of the cells not eliminated by any constraint (Figure 3b).
func gridCenter(d int, cs []prefgraph.Constraint, res int) ([]float64, error) {
	lo := make([]float64, d)
	hi := make([]float64, d)
	idx := make([]int, d)
	sum := make([]float64, d)
	count := 0
	width := 2.0 / float64(res)
	for {
		for j := 0; j < d; j++ {
			lo[j] = -1 + float64(idx[j])*width
			hi[j] = lo[j] + width
		}
		ok := true
		for i := range cs {
			if !cellMaySatisfy(&cs[i], lo, hi) {
				ok = false
				break
			}
		}
		if ok {
			for j := 0; j < d; j++ {
				sum[j] += (lo[j] + hi[j]) / 2
			}
			count++
		}
		// Advance the mixed-radix cell index.
		j := 0
		for ; j < d; j++ {
			idx[j]++
			if idx[j] < res {
				break
			}
			idx[j] = 0
		}
		if j == d {
			break
		}
	}
	if count == 0 {
		return nil, fmt.Errorf("sampling: no grid cell can satisfy all %d constraints (resolution %d)", len(cs), res)
	}
	for j := 0; j < d; j++ {
		sum[j] /= float64(count)
	}
	return sum, nil
}

// quadtreeCenter recursively subdivides [-1,1]^d (2^d children per split,
// the d-dimensional analogue of a quad-tree [12]) down to cells of the same
// width as a res-cell grid. Subtrees excluded by some constraint are pruned
// without expansion, and subtrees satisfying every constraint contribute
// their center weighted by their cell count without expansion — the
// hierarchical organization §3.2.1 suggests for finding violating cells.
func quadtreeCenter(d int, cs []prefgraph.Constraint, res int) ([]float64, error) {
	// Depth so that 2^depth ≥ res.
	depth := 0
	for (1 << depth) < res {
		depth++
	}
	sum := make([]float64, d)
	var count float64

	lo := make([]float64, d)
	hi := make([]float64, d)
	for j := 0; j < d; j++ {
		lo[j], hi[j] = -1, 1
	}

	var rec func(lo, hi []float64, level int, active []int)
	rec = func(lo, hi []float64, level int, active []int) {
		// Filter the constraints still undecided for this box.
		var still []int
		for _, ci := range active {
			c := &cs[ci]
			if !cellMaySatisfy(c, lo, hi) {
				return // entire box invalid
			}
			if !cellAllSatisfy(c, lo, hi) {
				still = append(still, ci)
			}
		}
		if len(still) == 0 || level == depth {
			if len(still) > 0 {
				// Undecided leaf: counts as a surviving cell, like the flat
				// grid's overlap cells.
				_ = still
			}
			// Weight by the number of unit cells this box represents so the
			// result matches the flat grid's cell-average semantics.
			cells := 1.0
			for i := 0; i < (depth-level)*d; i++ {
				cells *= 2
			}
			for j := 0; j < d; j++ {
				sum[j] += cells * (lo[j] + hi[j]) / 2
			}
			count += cells
			return
		}
		// Split into 2^d children.
		cl := make([]float64, d)
		ch := make([]float64, d)
		for mask := 0; mask < 1<<d; mask++ {
			for j := 0; j < d; j++ {
				mid := (lo[j] + hi[j]) / 2
				if mask&(1<<j) == 0 {
					cl[j], ch[j] = lo[j], mid
				} else {
					cl[j], ch[j] = mid, hi[j]
				}
			}
			rec(append([]float64(nil), cl...), append([]float64(nil), ch...), level+1, still)
		}
	}
	all := make([]int, len(cs))
	for i := range all {
		all[i] = i
	}
	rec(lo, hi, 0, all)
	if count == 0 {
		return nil, fmt.Errorf("sampling: no quadtree cell can satisfy all %d constraints (depth %d)", len(cs), depth)
	}
	for j := 0; j < d; j++ {
		sum[j] /= count
	}
	return sum, nil
}
