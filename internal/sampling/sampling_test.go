package sampling

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"toppkg/internal/gaussmix"
	"toppkg/internal/pkgspace"
	"toppkg/internal/prefgraph"
)

// constraint builds a half-space constraint w·diff ≥ 0 directly.
func constraint(diff ...float64) prefgraph.Constraint {
	return prefgraph.Constraint{
		Winner: pkgspace.New(0),
		Loser:  pkgspace.New(1),
		Diff:   diff,
	}
}

func prior(d int) *gaussmix.Mixture {
	return gaussmix.DefaultPrior(d, 1, rand.New(rand.NewSource(99)))
}

func samplers(d int, cs []prefgraph.Constraint) (*Rejection, *Importance, *MCMC) {
	v := NewValidator(d, cs)
	p := prior(d)
	return &Rejection{Prior: p, V: v},
		&Importance{Prior: p, V: v},
		&MCMC{Prior: p, V: v}
}

func TestValidatorBox(t *testing.T) {
	v := NewValidator(2, nil)
	if !v.Valid([]float64{0.5, -0.5}, nil) {
		t.Error("in-box vector rejected")
	}
	if v.Valid([]float64{1.5, 0}, nil) {
		t.Error("out-of-box vector accepted")
	}
}

func TestValidatorConstraints(t *testing.T) {
	// w·(1,0) ≥ 0 → first coordinate non-negative.
	v := NewValidator(2, []prefgraph.Constraint{constraint(1, 0)})
	if !v.Valid([]float64{0.3, -0.9}, nil) {
		t.Error("satisfying vector rejected")
	}
	if v.Valid([]float64{-0.3, 0.9}, nil) {
		t.Error("violating vector accepted")
	}
	if got := v.Violations([]float64{-0.3, 0.9}); got != 1 {
		t.Errorf("Violations = %d, want 1", got)
	}
}

func TestValidatorNoiseModel(t *testing.T) {
	// With ψ = 0.5 and one violated constraint, rejection probability is
	// 1-(1-0.5)^1 = 0.5.
	v := NewValidator(1, []prefgraph.Constraint{constraint(1)})
	v.Psi = 0.5
	rng := rand.New(rand.NewSource(21))
	n, accepted := 20000, 0
	for i := 0; i < n; i++ {
		if v.Valid([]float64{-0.5}, rng) {
			accepted++
		}
	}
	frac := float64(accepted) / float64(n)
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("noisy accept rate = %g, want ~0.5", frac)
	}
	// Valid vectors are always accepted regardless of noise.
	for i := 0; i < 100; i++ {
		if !v.Valid([]float64{0.5}, rng) {
			t.Fatal("valid vector rejected under noise model")
		}
	}
}

func TestValidatorNoiseTwoViolations(t *testing.T) {
	cs := []prefgraph.Constraint{constraint(1, 0), constraint(0, 1)}
	v := NewValidator(2, cs)
	v.Psi = 0.5
	rng := rand.New(rand.NewSource(22))
	n, accepted := 20000, 0
	for i := 0; i < n; i++ {
		if v.Valid([]float64{-0.5, -0.5}, rng) {
			accepted++
		}
	}
	// Accept probability (1-ψ)^2 = 0.25.
	frac := float64(accepted) / float64(n)
	if math.Abs(frac-0.25) > 0.02 {
		t.Errorf("noisy accept rate = %g, want ~0.25", frac)
	}
}

// TestAllSamplersProduceValidSamples: every accepted sample must satisfy
// every constraint and the box — Lemma 1's support condition.
func TestAllSamplersProduceValidSamples(t *testing.T) {
	cs := []prefgraph.Constraint{constraint(1, 0.2), constraint(0.3, 1)}
	rs, is, ms := samplers(2, cs)
	v := NewValidator(2, cs)
	for _, s := range []Sampler{rs, is, ms} {
		rng := rand.New(rand.NewSource(5))
		res, err := s.Sample(rng, 200)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(res.Samples) != 200 {
			t.Fatalf("%s: got %d samples", s.Name(), len(res.Samples))
		}
		for i, smp := range res.Samples {
			if !v.Valid(smp.W, nil) {
				t.Fatalf("%s: sample %d = %v violates constraints", s.Name(), i, smp.W)
			}
			if smp.Q <= 0 {
				t.Fatalf("%s: sample %d has non-positive weight %g", s.Name(), i, smp.Q)
			}
		}
	}
}

func TestRejectionUnitWeights(t *testing.T) {
	rs, _, ms := samplers(2, []prefgraph.Constraint{constraint(1, 0)})
	for _, s := range []Sampler{rs, ms} {
		res, err := s.Sample(rand.New(rand.NewSource(3)), 50)
		if err != nil {
			t.Fatal(err)
		}
		for _, smp := range res.Samples {
			if smp.Q != 1 {
				t.Fatalf("%s sample weight = %g, want 1", s.Name(), smp.Q)
			}
		}
	}
}

// TestAcceptanceRateOrdering verifies the paper's §5.1 observation: with
// constraints cutting away most of the prior mass, rejection sampling
// wastes far more draws than the feedback-aware samplers.
func TestAcceptanceRateOrdering(t *testing.T) {
	// A narrow wedge in the first quadrant (between the lines w1 = 0.9·w0
	// and w1 = w0/0.95): only a few percent of the prior's mass is valid,
	// so rejection wastes most draws while the feedback-aware samplers,
	// whose proposals live near or inside the wedge, do not. MCMC's
	// acceptance is bounded by 1/Thin, hence the harsh region.
	cs := []prefgraph.Constraint{
		constraint(1, -0.95),
		constraint(-0.9, 1),
	}
	rs, is, ms := samplers(2, cs)
	n := 400
	resRS, err := rs.Sample(rand.New(rand.NewSource(1)), n)
	if err != nil {
		t.Fatal(err)
	}
	resIS, err := is.Sample(rand.New(rand.NewSource(1)), n)
	if err != nil {
		t.Fatal(err)
	}
	resMS, err := ms.Sample(rand.New(rand.NewSource(1)), n)
	if err != nil {
		t.Fatal(err)
	}
	if resIS.Acceptance() <= resRS.Acceptance() {
		t.Errorf("importance acceptance %.3f not better than rejection %.3f",
			resIS.Acceptance(), resRS.Acceptance())
	}
	if resMS.Acceptance() <= resRS.Acceptance() {
		t.Errorf("mcmc acceptance %.3f not better than rejection %.3f",
			resMS.Acceptance(), resRS.Acceptance())
	}
}

// TestENSOrdering mirrors Theorems 1 and 2 on the sampler outputs: the
// effective number of samples of MCMC (unit weights) ≥ importance ≥ the
// rejection baseline's attempts-discounted effectiveness.
func TestENSOrdering(t *testing.T) {
	cs := []prefgraph.Constraint{constraint(1, 0.1), constraint(0.1, 1)}
	_, is, ms := samplers(2, cs)
	n := 500
	resIS, err := is.Sample(rand.New(rand.NewSource(2)), n)
	if err != nil {
		t.Fatal(err)
	}
	resMS, err := ms.Sample(rand.New(rand.NewSource(2)), n)
	if err != nil {
		t.Fatal(err)
	}
	ensIS := ENS(resIS.Samples)
	ensMS := ENS(resMS.Samples)
	if ensMS < ensIS {
		t.Errorf("ENS(MCMC) = %.1f < ENS(IS) = %.1f, contradicting Theorem 2", ensMS, ensIS)
	}
	if ensIS <= 0 || ensIS > float64(n)+1e-9 {
		t.Errorf("ENS(IS) = %.1f out of (0, n]", ensIS)
	}
	if math.Abs(ensMS-float64(n)) > 1e-6 {
		t.Errorf("ENS of unit weights = %.3f, want n = %d", ensMS, n)
	}
}

func TestENSEdgeCases(t *testing.T) {
	if got := ENS(nil); got != 0 {
		t.Errorf("ENS(nil) = %g", got)
	}
	s := []Sample{{Q: 1}, {Q: 1}, {Q: 1}}
	if got := ENS(s); math.Abs(got-3) > 1e-12 {
		t.Errorf("ENS(uniform) = %g, want 3", got)
	}
	// One dominant weight → ENS near 1.
	s = []Sample{{Q: 100}, {Q: 0.001}, {Q: 0.001}}
	if got := ENS(s); got > 1.1 {
		t.Errorf("ENS(dominated) = %g, want ≈1", got)
	}
}

// TestImportanceCenterInsideValidRegion: the grid-approximated center must
// itself satisfy the constraints for simple halfspaces through the origin.
func TestImportanceCenterInsideValidRegion(t *testing.T) {
	cs := []prefgraph.Constraint{constraint(1, 0), constraint(0, 1)}
	_, is, _ := samplers(2, cs)
	c, err := is.Center()
	if err != nil {
		t.Fatal(err)
	}
	v := NewValidator(2, cs)
	if !v.Valid(c, nil) {
		t.Errorf("grid center %v violates constraints", c)
	}
	// With both coordinates constrained positive the center should be in
	// the positive quadrant, biased away from the origin.
	if c[0] < 0.2 || c[1] < 0.2 {
		t.Errorf("center %v not pushed into the valid quadrant", c)
	}
}

func TestGridAndQuadtreeCentersAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(3)
		var cs []prefgraph.Constraint
		for i := 0; i < 1+rng.Intn(3); i++ {
			diff := make([]float64, d)
			for j := range diff {
				diff[j] = rng.Float64()*2 - 1
			}
			cs = append(cs, constraint(diff...))
		}
		g, errG := gridCenter(d, cs, 4)
		q, errQ := quadtreeCenter(d, cs, 4)
		if (errG == nil) != (errQ == nil) {
			return false
		}
		if errG != nil {
			return true
		}
		for j := 0; j < d; j++ {
			if math.Abs(g[j]-q[j]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestImportanceDimGuard(t *testing.T) {
	d := 8
	v := NewValidator(d, nil)
	is := &Importance{Prior: prior(d), V: v}
	_, err := is.Sample(rand.New(rand.NewSource(1)), 10)
	if !errors.Is(err, ErrDimsTooHigh) {
		t.Fatalf("expected ErrDimsTooHigh, got %v", err)
	}
}

func TestRejectionBudgetExhaustion(t *testing.T) {
	// Impossible constraints: w·(1,0) ≥ 0 and w·(-1,0) ≥ 0 leave only the
	// measure-zero hyperplane w[0] = 0 — plus a strict cut to kill it.
	cs := []prefgraph.Constraint{constraint(1, 0.5), constraint(-1, 0.5), constraint(0, -1)}
	v := NewValidator(2, cs)
	// Exclude w[1] ≥ 0 too... the region is nearly empty; use tiny budget.
	rs := &Rejection{Prior: prior(2), V: v, MaxAttemptsPerSample: 50}
	_, err := rs.Sample(rand.New(rand.NewSource(1)), 10)
	if !errors.Is(err, ErrTooManyRejections) {
		t.Fatalf("expected ErrTooManyRejections, got %v", err)
	}
}

// TestRejectionPreservesRelativeDensity (Lemma 1): among valid samples, the
// empirical density ratio between two regions approximates the prior's.
func TestRejectionPreservesRelativeDensity(t *testing.T) {
	cs := []prefgraph.Constraint{constraint(1)} // w ≥ 0 in 1-D
	v := NewValidator(1, cs)
	p := gaussmix.Gaussian([]float64{0}, 0.5)
	rs := &Rejection{Prior: p, V: v}
	res, err := rs.Sample(rand.New(rand.NewSource(8)), 40000)
	if err != nil {
		t.Fatal(err)
	}
	// Count samples in [0, 0.25) vs [0.25, 0.5); compare to the prior's
	// truncated mass ratio.
	var nearCount, farCount int
	for _, s := range res.Samples {
		switch {
		case s.W[0] < 0.25:
			nearCount++
		case s.W[0] < 0.5:
			farCount++
		}
	}
	// For N(0, 0.5): P(0 ≤ x < .25) = Φ(.5)-Φ(0) ≈ 0.1915,
	// P(.25 ≤ x < .5) = Φ(1)-Φ(.5) ≈ 0.1499. Ratio ≈ 1.277.
	ratio := float64(nearCount) / float64(farCount)
	if math.Abs(ratio-1.277) > 0.1 {
		t.Errorf("density ratio = %.3f, want ≈1.277", ratio)
	}
}

// TestMCMCStationaryBias: the MH chain restricted to the valid halfspace
// should concentrate samples near the mode like the truncated prior does.
func TestMCMCStationaryBias(t *testing.T) {
	cs := []prefgraph.Constraint{constraint(1)}
	v := NewValidator(1, cs)
	p := gaussmix.Gaussian([]float64{0}, 0.5)
	ms := &MCMC{Prior: p, V: v, Thin: 3, BurnIn: 200}
	res, err := ms.Sample(rand.New(rand.NewSource(9)), 30000)
	if err != nil {
		t.Fatal(err)
	}
	var nearCount, farCount int
	for _, s := range res.Samples {
		switch {
		case s.W[0] < 0.25:
			nearCount++
		case s.W[0] < 0.5:
			farCount++
		}
	}
	ratio := float64(nearCount) / float64(farCount)
	if math.Abs(ratio-1.277) > 0.15 {
		t.Errorf("MCMC density ratio = %.3f, want ≈1.277", ratio)
	}
}

func TestUniformBallRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	dst := make([]float64, 3)
	for i := 0; i < 1000; i++ {
		uniformBall(rng, dst, 0.3)
		norm := 0.0
		for _, x := range dst {
			norm += x * x
		}
		if math.Sqrt(norm) > 0.3+1e-12 {
			t.Fatalf("ball sample radius %g > 0.3", math.Sqrt(norm))
		}
	}
}

func TestWeights(t *testing.T) {
	s := []Sample{{W: []float64{1, 2}}, {W: []float64{3, 4}}}
	w := Weights(s)
	if len(w) != 2 || w[1][0] != 3 {
		t.Errorf("Weights = %v", w)
	}
}

func TestGridCenterInfeasible(t *testing.T) {
	// Constraints excluding the whole box: w·(1,0) ≥ 0 and w·(-1, 0) ≥ 0
	// keep only w[0]=0 — every cell is eliminated only if no cell straddles
	// the plane... use blatantly contradictory tight cuts instead.
	cs := []prefgraph.Constraint{constraint(1, 1), constraint(-1, -1)}
	// Cells straddling the plane survive both; shrink further with two
	// more cuts to force infeasibility at the cell level is fiddly — so
	// instead check it does NOT error (region is a plane) and the center
	// lies near it.
	c, err := gridCenter(2, cs, 4)
	if err != nil {
		t.Fatalf("gridCenter: %v", err)
	}
	if math.Abs(c[0]+c[1]) > 0.6 {
		t.Errorf("center %v too far from the w0+w1=0 plane", c)
	}
}

// TestMCMCRepairInitialization: with enough consistent constraints in high
// dimension, rejection cannot find a valid state by luck; the repair
// fallback must still initialize the chain (the Figure 6/8 regime).
func TestMCMCRepairInitialization(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const d = 8
	// Constraints consistent with a hidden w*: the region is a thin cone.
	wStar := make([]float64, d)
	for i := range wStar {
		wStar[i] = rng.Float64()*2 - 1
	}
	var cs []prefgraph.Constraint
	for len(cs) < 120 {
		diff := make([]float64, d)
		for j := range diff {
			diff[j] = rng.Float64()*2 - 1
		}
		dot := 0.0
		for j := range diff {
			dot += diff[j] * wStar[j]
		}
		if dot == 0 {
			continue
		}
		if dot < 0 {
			for j := range diff {
				diff[j] = -diff[j]
			}
		}
		cs = append(cs, constraint(diff...))
	}
	v := NewValidator(d, cs)
	ms := &MCMC{Prior: prior(d), V: v, InitAttempts: 5000}
	res, err := ms.Sample(rand.New(rand.NewSource(42)), 50)
	if err != nil {
		t.Fatalf("repair-backed MCMC failed: %v", err)
	}
	for i, s := range res.Samples {
		if !v.Valid(s.W, nil) {
			t.Fatalf("sample %d invalid", i)
		}
	}
}

// TestRepairToValidConverges: the projection repair reaches the feasible
// cone from arbitrary starts on random consistent systems.
func TestRepairToValidConverges(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(6)
		wStar := make([]float64, d)
		for i := range wStar {
			wStar[i] = rng.Float64()*2 - 1
		}
		var cs []prefgraph.Constraint
		for len(cs) < 30 {
			diff := make([]float64, d)
			dot := 0.0
			for j := range diff {
				diff[j] = rng.Float64()*2 - 1
				dot += diff[j] * wStar[j]
			}
			if dot == 0 {
				continue
			}
			if dot < 0 {
				for j := range diff {
					diff[j] = -diff[j]
				}
			}
			cs = append(cs, constraint(diff...))
		}
		v := NewValidator(d, cs)
		w := make([]float64, d)
		for j := range w {
			w[j] = rng.Float64()*2 - 1
		}
		if !repairToValid(w, v, rng) {
			t.Fatalf("seed %d: repair failed in %d dims with %d constraints", seed, d, len(cs))
		}
	}
}
