// Package sampling implements the paper's constrained sampling framework
// (§3): drawing weight vectors from the Gaussian-mixture prior restricted to
// the convex region consistent with all elicited preferences. Three
// strategies are provided — rejection sampling (§3.1), importance sampling
// with a grid-approximated polytope center (§3.2.1), and Metropolis–Hastings
// MCMC (§3.2.2) — plus the effective-number-of-samples diagnostic and the
// noisy-feedback model of §7.
package sampling

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"toppkg/internal/gaussmix"
	"toppkg/internal/prefgraph"
)

// Sample is one weight vector with its importance weight. Rejection and
// MCMC samples carry weight 1; importance samples carry P(w)/Q(w).
type Sample struct {
	W []float64
	Q float64
}

// Result reports a sampling run: the accepted samples and how many raw
// draws (attempts) were needed, the paper's measure of sampler efficiency.
type Result struct {
	Samples  []Sample
	Attempts int
}

// Acceptance returns the fraction of attempts that produced a sample.
func (r Result) Acceptance() float64 {
	if r.Attempts == 0 {
		return 0
	}
	return float64(len(r.Samples)) / float64(r.Attempts)
}

// Sampler generates weight-vector samples consistent with user feedback.
type Sampler interface {
	// Name identifies the strategy ("rejection", "importance", "mcmc").
	Name() string
	// Sample draws n valid samples. Implementations must be deterministic
	// given rng's state.
	Sample(rng *rand.Rand, n int) (Result, error)
}

// ErrTooManyRejections is returned when a sampler's attempt budget is
// exhausted before n valid samples were found (the valid region has
// negligible prior mass).
var ErrTooManyRejections = errors.New("sampling: attempt budget exhausted")

// Validator checks weight vectors against the feedback constraint set and
// the weight box [-1,1]^d. The optional noise model (Psi < 1) implements
// §7: each feedback is independently correct with probability Psi, so a
// vector violating x constraints is rejected only with probability
// 1−(1−Psi)^x.
type Validator struct {
	// Constraints is the feedback set, typically the transitive reduction
	// from prefgraph (paper §3.3).
	Constraints []prefgraph.Constraint
	// Dims is the weight dimensionality.
	Dims int
	// Psi is the probability any single feedback is correct; 1 (or 0,
	// treated as "noise-free") means deterministic rejection.
	Psi float64
}

// NewValidator builds a deterministic validator over the given constraints.
func NewValidator(dims int, cs []prefgraph.Constraint) *Validator {
	return &Validator{Constraints: cs, Dims: dims, Psi: 1}
}

// InBox reports whether w lies in the weight box [-1,1]^d.
func (v *Validator) InBox(w []float64) bool {
	for _, x := range w {
		if x < -1 || x > 1 {
			return false
		}
	}
	return true
}

// Violations counts the constraints w violates (box excluded).
func (v *Validator) Violations(w []float64) int {
	x := 0
	for i := range v.Constraints {
		if v.Constraints[i].Violates(w) {
			x++
		}
	}
	return x
}

// Valid reports whether w is accepted. Outside the box is always invalid.
// With the noise-free model, any constraint violation rejects; otherwise w
// is rejected with probability 1−(1−Psi)^x where x is its violation count,
// using rng (which must be non-nil when Psi < 1).
func (v *Validator) Valid(w []float64, rng *rand.Rand) bool {
	if !v.InBox(w) {
		return false
	}
	if v.Psi >= 1 || v.Psi <= 0 {
		for i := range v.Constraints {
			if v.Constraints[i].Violates(w) {
				return false
			}
		}
		return true
	}
	x := v.Violations(w)
	if x == 0 {
		return true
	}
	pReject := 1 - math.Pow(1-v.Psi, float64(x))
	return rng.Float64() >= pReject
}

// Rejection is the simple rejection sampler of §3.1: draw from the prior,
// discard anything violating feedback. Correct by Lemma 1 but wasteful as
// feedback accumulates.
type Rejection struct {
	Prior *gaussmix.Mixture
	V     *Validator
	// MaxAttemptsPerSample bounds raw draws per accepted sample
	// (default 200000).
	MaxAttemptsPerSample int
}

// Name implements Sampler.
func (r *Rejection) Name() string { return "rejection" }

// Sample implements Sampler.
func (r *Rejection) Sample(rng *rand.Rand, n int) (Result, error) {
	maxA := r.MaxAttemptsPerSample
	if maxA <= 0 {
		maxA = 200000
	}
	budget := maxA * n
	res := Result{Samples: make([]Sample, 0, n)}
	w := make([]float64, r.Prior.Dims())
	for len(res.Samples) < n {
		if res.Attempts >= budget {
			return res, fmt.Errorf("%w: rejection sampler accepted %d/%d after %d attempts",
				ErrTooManyRejections, len(res.Samples), n, res.Attempts)
		}
		r.Prior.SampleInto(rng, w)
		res.Attempts++
		if r.V.Valid(w, rng) {
			res.Samples = append(res.Samples, Sample{W: append([]float64(nil), w...), Q: 1})
		}
	}
	return res, nil
}

// Importance is the feedback-aware importance sampler of §3.2.1. It
// approximates the center of the valid convex polytope by the mean of the
// centers of grid cells that can intersect it, proposes from an isotropic
// Gaussian at that center, and corrects the bias of each accepted sample
// with the importance weight q(w) = P(w)/Q(w).
type Importance struct {
	Prior *gaussmix.Mixture
	V     *Validator
	// GridRes is the number of cells per dimension (default 4). The grid
	// has GridRes^d cells; construction refuses d > MaxGridDims because
	// center-finding is exponential in d (§5.3).
	GridRes int
	// UseQuadtree selects the hierarchical cell subdivision (paper §3.2.1
	// suggests organizing cells in a quad-tree [12]) instead of the flat
	// grid; it prunes fully-invalid subtrees early.
	UseQuadtree bool
	// ProposalStd is the isotropic std of the proposal (default 0.35).
	ProposalStd float64
	// MaxGridDims guards the exponential grid (default 6).
	MaxGridDims int
	// MaxAttemptsPerSample bounds proposal draws per accepted sample.
	MaxAttemptsPerSample int
}

// Name implements Sampler.
func (s *Importance) Name() string { return "importance" }

// ErrDimsTooHigh is returned when importance sampling is asked to build a
// grid in too many dimensions (the paper excludes it beyond 5 features for
// this reason).
var ErrDimsTooHigh = errors.New("sampling: importance sampling grid is intractable at this dimensionality")

// Center computes the approximate center of the valid region. It is
// exported for tests and diagnostics.
func (s *Importance) Center() ([]float64, error) {
	d := s.Prior.Dims()
	maxD := s.MaxGridDims
	if maxD <= 0 {
		maxD = 6
	}
	if d > maxD {
		return nil, fmt.Errorf("%w: %d dims > limit %d", ErrDimsTooHigh, d, maxD)
	}
	res := s.GridRes
	if res <= 0 {
		res = 4
	}
	if s.UseQuadtree {
		return quadtreeCenter(d, s.V.Constraints, res)
	}
	return gridCenter(d, s.V.Constraints, res)
}

// Sample implements Sampler.
func (s *Importance) Sample(rng *rand.Rand, n int) (Result, error) {
	center, err := s.Center()
	if err != nil {
		return Result{}, err
	}
	std := s.ProposalStd
	if std <= 0 {
		std = 0.35
	}
	proposal := gaussmix.Gaussian(center, std)
	maxA := s.MaxAttemptsPerSample
	if maxA <= 0 {
		maxA = 200000
	}
	budget := maxA * n
	res := Result{Samples: make([]Sample, 0, n)}
	w := make([]float64, s.Prior.Dims())
	for len(res.Samples) < n {
		if res.Attempts >= budget {
			return res, fmt.Errorf("%w: importance sampler accepted %d/%d after %d attempts",
				ErrTooManyRejections, len(res.Samples), n, res.Attempts)
		}
		proposal.SampleInto(rng, w)
		res.Attempts++
		if !s.V.Valid(w, rng) {
			continue
		}
		q := math.Exp(s.Prior.LogPDF(w) - proposal.LogPDF(w))
		res.Samples = append(res.Samples, Sample{W: append([]float64(nil), w...), Q: q})
	}
	return res, nil
}

// MCMC is the Metropolis–Hastings sampler of §3.2.2: a random walk inside
// the valid region with a symmetric bounded-step proposal, whose stationary
// distribution is the prior restricted to the valid region.
type MCMC struct {
	Prior *gaussmix.Mixture
	V     *Validator
	// LMax is the maximum step length of the random walk (default 0.25).
	LMax float64
	// Thin keeps one sample every Thin accepted steps to reduce
	// autocorrelation (the paper's step length δ; default 5).
	Thin int
	// BurnIn discards this many initial steps (default 100).
	BurnIn int
	// InitAttempts bounds the rejection draws used to find the first valid
	// state (default 200000).
	InitAttempts int
}

// Name implements Sampler.
func (m *MCMC) Name() string { return "mcmc" }

// Sample implements Sampler.
func (m *MCMC) Sample(rng *rand.Rand, n int) (Result, error) {
	lmax := m.LMax
	if lmax <= 0 {
		lmax = 0.25
	}
	thin := m.Thin
	if thin <= 0 {
		thin = 5
	}
	burn := m.BurnIn
	if burn < 0 {
		burn = 100
	}
	initA := m.InitAttempts
	if initA <= 0 {
		initA = 200000
	}
	d := m.Prior.Dims()
	res := Result{Samples: make([]Sample, 0, n)}

	// Find the first valid state by rejection from the prior (§5.1),
	// falling back to constraint repair when the valid region is too small
	// to hit by luck (high dimensionality and/or heavy feedback): starting
	// from the least-violating draw, project onto violated half-spaces
	// (perceptron-style) until valid — the region is a convex cone
	// (Lemma 2), so the projections converge whenever it has an interior.
	cur := make([]float64, d)
	best := make([]float64, d)
	bestViol := int(^uint(0) >> 1)
	found := false
	rejectionTries := initA / 10
	if rejectionTries < 1000 {
		rejectionTries = 1000
	}
	for i := 0; i < rejectionTries; i++ {
		m.Prior.SampleInto(rng, cur)
		res.Attempts++
		if m.V.Valid(cur, rng) {
			found = true
			break
		}
		if v := m.V.Violations(cur); v < bestViol && m.V.InBox(cur) {
			bestViol = v
			copy(best, cur)
		}
	}
	if !found {
		if bestViol == int(^uint(0)>>1) {
			// Every draw fell outside the box; restart from the origin.
			for j := range best {
				best[j] = 0
			}
		}
		copy(cur, best)
		found = repairToValid(cur, m.V, rng)
	}
	if !found {
		return res, fmt.Errorf("%w: mcmc found no valid initial state after %d attempts and repair",
			ErrTooManyRejections, rejectionTries)
	}
	curLog := m.Prior.LogPDF(cur)

	prop := make([]float64, d)
	steps := 0
	for len(res.Samples) < n {
		// Propose uniformly within the L2 ball of radius lmax around cur
		// (symmetric, so the Hastings correction cancels, Eq. 7).
		uniformBall(rng, prop, lmax)
		for j := range prop {
			prop[j] += cur[j]
		}
		res.Attempts++
		if m.V.Valid(prop, rng) {
			propLog := m.Prior.LogPDF(prop)
			if propLog >= curLog || rng.Float64() < math.Exp(propLog-curLog) {
				copy(cur, prop)
				curLog = propLog
			}
		}
		// On rejection we keep a copy of cur as the next chain state
		// (standard MH; paper §3.2.2).
		steps++
		if steps > burn && steps%thin == 0 {
			res.Samples = append(res.Samples, Sample{W: append([]float64(nil), cur...), Q: 1})
		}
	}
	return res, nil
}

// repairToValid iteratively projects w onto the half-spaces of violated
// constraints (with a small overshoot, clamped to the weight box) until it
// satisfies all of them. Returns false if no valid point was reached.
func repairToValid(w []float64, v *Validator, rng *rand.Rand) bool {
	const maxSteps = 20000
	for step := 0; step < maxSteps; step++ {
		var worst *prefgraph.Constraint
		worstMargin := 0.0
		for i := range v.Constraints {
			c := &v.Constraints[i]
			margin := 0.0
			for j, diff := range c.Diff {
				margin += diff * w[j]
			}
			if margin < worstMargin {
				worstMargin = margin
				worst = c
			}
		}
		if worst == nil {
			// All constraints hold; jitter slightly into the interior so the
			// chain does not start exactly on a face.
			return v.Valid(w, rng)
		}
		norm2 := 0.0
		for _, diff := range worst.Diff {
			norm2 += diff * diff
		}
		if norm2 == 0 {
			return false
		}
		// Project past the boundary by a small overshoot.
		scale := (-worstMargin/norm2)*1.1 + 1e-9
		for j, diff := range worst.Diff {
			w[j] += scale * diff
			if w[j] > 1 {
				w[j] = 1
			}
			if w[j] < -1 {
				w[j] = -1
			}
		}
	}
	return v.Valid(w, rng)
}

// uniformBall fills dst with a point uniform in the L2 ball of radius r.
func uniformBall(rng *rand.Rand, dst []float64, r float64) {
	d := len(dst)
	norm := 0.0
	for i := range dst {
		dst[i] = rng.NormFloat64()
		norm += dst[i] * dst[i]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		norm = 1
	}
	scale := r * math.Pow(rng.Float64(), 1/float64(d)) / norm
	for i := range dst {
		dst[i] *= scale
	}
}

// ENS returns the effective number of samples (Kong, Liu & Wong [17]) of an
// importance-weighted pool: (Σq)² / Σq². It equals len(samples) when all
// weights are equal and shrinks as weights become imbalanced.
func ENS(samples []Sample) float64 {
	var sum, sumSq float64
	for i := range samples {
		sum += samples[i].Q
		sumSq += samples[i].Q * samples[i].Q
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / sumSq
}

// Weights extracts the weight vectors of a sample pool (shared backing
// arrays, not copies).
func Weights(samples []Sample) [][]float64 {
	out := make([][]float64, len(samples))
	for i := range samples {
		out[i] = samples[i].W
	}
	return out
}
