// The batched per-sample execution pipeline behind Rank: sample weight
// vectors are canonicalized (optionally quantized), deduplicated so each
// distinct vector runs Top-k-Pkg once, probed against the result cache,
// and only the surviving searches are sharded across a bounded worker
// pool. Results fan back out to every duplicate, and aggregation runs in
// sample order, so the final slate is deterministic regardless of
// parallelism. The elicitation loop re-ranks the whole pool every round
// even though feedback invalidates only a fraction of samples and many
// survivors induce identical top-k lists; this pipeline makes both kinds
// of redundancy free.
package ranking

import (
	"encoding/binary"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"toppkg/internal/feature"
	"toppkg/internal/sampling"
	"toppkg/internal/search"
)

// Metrics reports what the batched pipeline did during one Rank call.
type Metrics struct {
	// Samples is the number of weight vectors ranked.
	Samples int
	// Distinct is the number of distinct canonical vectors after
	// quantization and dedup; every duplicate rides along for free.
	Distinct int
	// CacheHits is how many distinct vectors were served from the cache.
	CacheHits int
	// Searches is how many Top-k-Pkg runs actually executed.
	Searches int
}

// DedupRatio is the fraction of samples whose search was shared with an
// identical sample in the same call.
func (m Metrics) DedupRatio() float64 {
	if m.Samples == 0 {
		return 0
	}
	return float64(m.Samples-m.Distinct) / float64(m.Samples)
}

// HitRate is the fraction of distinct vectors served from the cache.
func (m Metrics) HitRate() float64 {
	if m.Distinct == 0 {
		return 0
	}
	return float64(m.CacheHits) / float64(m.Distinct)
}

// Canonical maps a weight vector to its canonical form: each coordinate
// rounded to the nearest multiple of quantum. quantum <= 0 is the identity
// (only bit-identical vectors collapse). The search runs on the canonical
// vector, so every vector mapping to one canonical form shares one
// bit-identical result.
func Canonical(w []float64, quantum float64) []float64 {
	if quantum <= 0 {
		return w
	}
	out := make([]float64, len(w))
	for i, v := range w {
		out[i] = math.Round(v/quantum) * quantum
	}
	return out
}

// WeightKey encodes a weight vector byte-exactly (IEEE-754 bits, with -0
// folded into +0 — the search treats them identically).
func WeightKey(w []float64) string {
	b := make([]byte, 8*len(w))
	for i, v := range w {
		if v == 0 {
			v = 0 // fold -0 into +0
		}
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return string(b)
}

// groupResults produces the per-sample search results for Rank through the
// batched pipeline, returning them indexed like samples. opts.Metrics, when
// non-nil, is overwritten with this call's counters.
func groupResults(ix *search.Index, profile *feature.Profile, samples []sampling.Sample, so search.Options, opts Options) ([]search.Result, error) {
	m := opts.Metrics
	if m == nil {
		m = &Metrics{}
	}
	*m = Metrics{Samples: len(samples)}

	// Canonicalize and dedup: groupOf[i] is sample i's group, reps[g] the
	// canonical vector searched for group g.
	groupOf := make([]int, len(samples))
	var reps [][]float64
	var keys []string
	index := make(map[string]int, len(samples))
	for i := range samples {
		cw := Canonical(samples[i].W, opts.Quantum)
		k := WeightKey(cw)
		g, ok := index[k]
		if !ok {
			g = len(reps)
			index[k] = g
			reps = append(reps, cw)
			keys = append(keys, k)
		}
		groupOf[i] = g
	}
	m.Distinct = len(reps)

	// Probe the cache; only missing groups go to the workers.
	results := make([]search.Result, len(reps))
	todo := make([]int, 0, len(reps))
	cache := opts.Cache
	var keyPrefix string
	if cache != nil {
		optsKey, keyable := so.CacheKey()
		if !keyable {
			cache = nil // predicate options: results must not be reused
		} else {
			// Two epochs guard every key: the cache's own invalidation
			// counter and the catalogue epoch the index was built from, so
			// neither an Invalidate race nor an index swap race can serve a
			// result across the boundary.
			var ep [16]byte
			binary.LittleEndian.PutUint64(ep[:8], cache.Epoch())
			binary.LittleEndian.PutUint64(ep[8:], opts.Epoch)
			keyPrefix = string(ep[:]) + optsKey + "|"
		}
	}
	for g := range reps {
		if cache != nil {
			if res, ok := cache.Get(keyPrefix + keys[g]); ok {
				results[g] = res
				m.CacheHits++
				continue
			}
		}
		todo = append(todo, g)
	}
	m.Searches = len(todo)

	if err := runSearches(ix, profile, reps, todo, results, so, opts.Parallelism); err != nil {
		return nil, err
	}
	if cache != nil {
		for _, g := range todo {
			cache.Put(keyPrefix+keys[g], results[g])
		}
	}

	// Fan the group results back out to every sample.
	out := make([]search.Result, len(samples))
	for i, g := range groupOf {
		out[i] = results[g]
	}
	return out, nil
}

// runSearches executes Top-k-Pkg for the groups listed in todo, filling
// results[g], sequentially or across a bounded worker pool. The searches
// are independent; callers aggregate in sample order, so results stay
// deterministic regardless of parallelism.
func runSearches(ix *search.Index, profile *feature.Profile, reps [][]float64, todo []int, results []search.Result, so search.Options, parallelism int) error {
	one := func(g int) error {
		u, err := feature.NewUtility(profile, reps[g])
		if err != nil {
			return err
		}
		results[g], err = ix.TopK(u, so)
		return err
	}
	workers := parallelism
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers <= 1 {
		for _, g := range todo {
			if err := one(g); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     int64 = -1
		firstErr error
		errOnce  sync.Once
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(todo) {
					return
				}
				if err := one(todo[i]); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
