package ranking

import (
	"fmt"
	"math/rand"
	"testing"

	"toppkg/internal/feature"
	"toppkg/internal/pkgspace"
	"toppkg/internal/sampling"
	"toppkg/internal/search"
)

// exactOptions are the brute-force-grade search settings: no line-3
// pruning heuristic and no queue cap, so Top-k-Pkg is exact.
var exactOptions = search.Options{ExpandAll: true, MaxQueue: -1}

// oracleTrial is one randomized configuration: a small random space, a
// sample pool with deliberately injected exact duplicates, and a K.
type oracleTrial struct {
	sp      *feature.Space
	ix      *search.Index
	samples []sampling.Sample
	k       int
	dups    int // injected duplicate samples
}

// newOracleTrial builds a deterministic random trial. Item values and
// weights are dyadic rationals (multiples of 1/64) so aggregate arithmetic
// stays exact and cross-implementation comparisons are not at the mercy of
// floating-point summation order.
func newOracleTrial(t *testing.T, seed int64) *oracleTrial {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	aggs := []feature.Agg{feature.AggSum, feature.AggAvg, feature.AggMax, feature.AggMin}
	n := 3 + rng.Intn(5)
	d := 1 + rng.Intn(3)
	phi := 1 + rng.Intn(3)
	entries := make([]feature.Agg, d)
	for i := range entries {
		entries[i] = aggs[rng.Intn(len(aggs))]
	}
	items := make([]feature.Item, n)
	for i := range items {
		vals := make([]float64, d)
		for j := range vals {
			vals[j] = float64(1+rng.Intn(64)) / 64
		}
		items[i] = feature.Item{ID: i, Values: vals}
	}
	sp, err := feature.NewSpace(items, feature.SimpleProfile(entries...), phi)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	tr := &oracleTrial{sp: sp, ix: search.NewIndex(sp), k: 1 + rng.Intn(3)}
	ns := 6 + rng.Intn(8)
	for len(tr.samples) < ns {
		w := make([]float64, d)
		for j := range w {
			w[j] = float64(rng.Intn(129)-64) / 64
		}
		q := 0.5 + rng.Float64()
		tr.samples = append(tr.samples, sampling.Sample{W: w, Q: q})
		if rng.Intn(3) == 0 && len(tr.samples) < ns {
			// Exact duplicate with its own importance weight: the dedup
			// layer must share the search yet count both Qs.
			tr.samples = append(tr.samples, sampling.Sample{W: append([]float64(nil), w...), Q: 0.5 + rng.Float64()})
			tr.dups++
		}
	}
	return tr
}

// plainResults is the unbatched reference path: one sequential TopK per
// sample, no dedup, no cache.
func plainResults(t *testing.T, tr *oracleTrial, so search.Options) []search.Result {
	t.Helper()
	out := make([]search.Result, len(tr.samples))
	for i := range tr.samples {
		u, err := feature.NewUtility(tr.sp.Profile, tr.samples[i].W)
		if err != nil {
			t.Fatal(err)
		}
		out[i], err = tr.ix.TopK(u, so)
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// checkPerSampleAgainstEnumeration cross-checks every per-sample exact
// search list against the independent full-enumeration implementation.
// The two compute utilities in different floating-point association
// orders, so comparison is rank-wise utility within tol: a package
// mismatch at a rank is acceptable exactly when it is such an FP tie.
func checkPerSampleAgainstEnumeration(t *testing.T, tr *oracleTrial, results []search.Result, k int, trial int) {
	t.Helper()
	for i := range tr.samples {
		u, err := feature.NewUtility(tr.sp.Profile, tr.samples[i].W)
		if err != nil {
			t.Fatal(err)
		}
		want := pkgspace.BruteForceTopK(tr.sp, u, k)
		got := results[i].Packages
		if len(got) != len(want) {
			t.Fatalf("trial %d sample %d: search found %d packages, enumeration %d", trial, i, len(got), len(want))
		}
		for r := range got {
			if d := got[r].Utility - want[r].Utility; d > 1e-9 || d < -1e-9 {
				t.Fatalf("trial %d sample %d rank %d: search %s=%.17g, enumeration %s=%.17g",
					trial, i, r, got[r].Pkg, got[r].Utility, want[r].Pkg, want[r].Utility)
			}
		}
	}
}

func describe(rs []Ranked) string {
	s := ""
	for _, r := range rs {
		s += fmt.Sprintf("%s=%.17g ", r.Pkg.Signature(), r.Score)
	}
	return s
}

func sameRanked(a, b []Ranked) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Pkg.Signature() != b[i].Pkg.Signature() || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

// TestPipelineMatchesOracle is the batching PR's correctness contract: for
// ≥200 seeded trials across all three semantics, the batched pipeline
// (dedup → cache → parallel workers) returns slates bit-identical to the
// unbatched sequential path AND to the brute-force enumeration oracle
// (MaxQueue: -1, the exhaustive queue), cold and warm. The per-sample
// lists are additionally cross-checked against an independent
// full-enumeration implementation.
func TestPipelineMatchesOracle(t *testing.T) {
	const trials = 210
	for trial := 0; trial < trials; trial++ {
		tr := newOracleTrial(t, int64(1000+trial))
		cache := NewCache(256)
		for _, sem := range []Semantics{EXP, TKP, MPO} {
			opts := Options{K: tr.k, Search: exactOptions}
			so := searchOptions(sem, opts)

			// Reference: unbatched per-sample searches + shared aggregation.
			refResults := plainResults(t, tr, so)
			base, err := aggregate(tr.samples, refResults, sem, opts)
			if err != nil {
				t.Fatalf("trial %d %v: reference: %v", trial, sem, err)
			}
			if sem == EXP { // per-sample lists are semantics-independent
				checkPerSampleAgainstEnumeration(t, tr, refResults, so.K, trial)
			}

			// Oracle: same searches with the default (capped) queue must be
			// bit-identical on these spaces — the cap is never reached, so
			// any divergence would be a pipeline bug, not a beam effect.
			capped := opts
			capped.Search.MaxQueue = 0 // DefaultMaxQueue
			oracle, err := aggregate(tr.samples, plainResults(t, tr, searchOptions(sem, capped)), sem, capped)
			if err != nil {
				t.Fatalf("trial %d %v: capped: %v", trial, sem, err)
			}
			if !sameRanked(base, oracle) {
				t.Fatalf("trial %d %v: capped search disagrees with MaxQueue:-1 oracle:\ncapped %s\noracle %s",
					trial, sem, describe(oracle), describe(base))
			}

			// Pipeline: dedup + cache (cold then warm) + parallel workers.
			for pass := 0; pass < 2; pass++ {
				for _, par := range []int{0, 3} {
					var m Metrics
					popts := opts
					popts.Parallelism = par
					popts.Cache = cache
					popts.Metrics = &m
					got, err := Rank(tr.ix, tr.samples, sem, popts)
					if err != nil {
						t.Fatalf("trial %d %v pass %d par %d: %v", trial, sem, pass, par, err)
					}
					if !sameRanked(got, base) {
						t.Fatalf("trial %d %v pass %d par %d: pipeline slate differs:\npipeline %s\nplain    %s",
							trial, sem, pass, par, describe(got), describe(base))
					}
					if m.Samples != len(tr.samples) || m.Distinct > m.Samples {
						t.Fatalf("trial %d %v: bad metrics %+v", trial, sem, m)
					}
					if tr.dups > 0 && m.Distinct == m.Samples {
						t.Fatalf("trial %d %v: %d injected duplicates not deduped: %+v", trial, sem, tr.dups, m)
					}
					if pass > 0 || par > 0 {
						// The first (sequential, cold) run filled the cache
						// for this semantics' options.
						if m.CacheHits != m.Distinct || m.Searches != 0 {
							t.Fatalf("trial %d %v pass %d par %d: warm run searched: %+v", trial, sem, pass, par, m)
						}
					}
				}
			}
		}
	}
}

// TestPipelineQuantumMergesNearDuplicates: a positive quantum collapses
// near-identical vectors into one canonical search. (Slates may then
// legitimately differ from the exact path, so only the batching behavior
// is asserted here; exactness under Quantum 0 is the oracle test above.)
func TestPipelineQuantumMergesNearDuplicates(t *testing.T) {
	tr := newOracleTrial(t, 77)
	samples := []sampling.Sample{
		{W: append([]float64(nil), tr.samples[0].W...), Q: 1},
		{W: append([]float64(nil), tr.samples[0].W...), Q: 1},
	}
	samples[1].W[0] += 1e-7 // inside a 1e-3 quantum bucket
	var m Metrics
	if _, err := Rank(tr.ix, samples, EXP, Options{K: 1, Search: exactOptions, Quantum: 1e-3, Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	if m.Distinct != 1 || m.Searches != 1 {
		t.Errorf("quantum 1e-3 did not merge near-duplicates: %+v", m)
	}
	m = Metrics{}
	if _, err := Rank(tr.ix, samples, EXP, Options{K: 1, Search: exactOptions, Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	if m.Distinct != 2 {
		t.Errorf("quantum 0 merged non-identical vectors: %+v", m)
	}
}

// TestPredicateOptionsBypassCache: search options carrying predicate
// closures must never reuse cached results (the closure's identity is not
// part of any key).
func TestPredicateOptionsBypassCache(t *testing.T) {
	tr := newOracleTrial(t, 99)
	cache := NewCache(64)
	opts := Options{K: 1, Cache: cache, Search: exactOptions}
	opts.Search.Candidate = func(*feature.Space, pkgspace.Package) bool { return true }
	var m Metrics
	opts.Metrics = &m
	for pass := 0; pass < 2; pass++ {
		if _, err := Rank(tr.ix, tr.samples, EXP, opts); err != nil {
			t.Fatal(err)
		}
		if m.CacheHits != 0 {
			t.Fatalf("pass %d: predicate options hit the cache: %+v", pass, m)
		}
	}
	if cache.Len() != 0 {
		t.Errorf("predicate results were cached: %d entries", cache.Len())
	}
}
