// Result caching for the batched Recommend pipeline. A Top-k-Pkg result is
// a pure function of (index, weight vector, search options): feedback
// changes which samples are in the pool, not what any vector's top-k is.
// Samples that survive a feedback round therefore reuse last round's
// packages instead of re-searching — the result-reuse observation behind
// §6's incremental maintenance, applied to the serving hot path.
package ranking

import (
	"container/list"
	"sync"

	"toppkg/internal/search"
)

// DefaultCacheSize is the entry bound applied when NewCache is given a
// non-positive capacity.
const DefaultCacheSize = 4096

// Cache is a thread-safe LRU over per-weight-vector search results, shared
// by every engine serving one catalogue (results depend only on the shared
// immutable index). Cached results are handed out by reference and must be
// treated as immutable by callers.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // of *cacheEntry; front = most recently used
	m     map[string]*list.Element
	epoch uint64

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key string
	res search.Result
}

// CacheStats is a point-in-time copy of the cache counters.
type CacheStats struct {
	// Size is the resident entry count; Capacity the LRU bound.
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
	// Epoch counts Invalidate calls; it is folded into every key so a
	// result computed before an invalidation can never be served after it.
	Epoch uint64 `json:"epoch"`
	// Hits/Misses count Get outcomes; Evictions counts LRU drops.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// NewCache returns an empty cache bounded to capacity entries
// (DefaultCacheSize when capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// Epoch returns the current invalidation epoch. Callers fold it into the
// keys they Get/Put, so entries keyed under an older epoch become
// unreachable the moment Invalidate runs — even a Put racing with the
// invalidation lands on a dead key instead of resurrecting a stale result.
func (c *Cache) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Invalidate advances the epoch and drops every entry. Use it when
// something outside the keys that results depend on changes — e.g. the
// index is rebuilt over an updated catalogue.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	c.epoch++
	c.ll.Init()
	c.m = make(map[string]*list.Element)
	c.mu.Unlock()
}

// Get returns the cached result for key. The result is shared: callers
// must not mutate it or anything it references.
func (c *Cache) Get(key string) (search.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		c.misses++
		return search.Result{}, false
	}
	c.hits++
	c.ll.MoveToFront(e)
	return e.Value.(*cacheEntry).res, true
}

// Put stores a result under key, evicting the least recently used entry
// beyond capacity. The cache takes shared ownership: the caller must not
// mutate res or anything it references afterwards.
func (c *Cache) Put(key string, res search.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*cacheEntry).res = res
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		ent := c.ll.Remove(back).(*cacheEntry)
		delete(c.m, ent.key)
		c.evictions++
	}
}

// Len reports the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a point-in-time copy of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:      c.ll.Len(),
		Capacity:  c.cap,
		Epoch:     c.epoch,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
