// Result caching for the batched Recommend pipeline. A Top-k-Pkg result is
// a pure function of (index, weight vector, search options): feedback
// changes which samples are in the pool, not what any vector's top-k is.
// Samples that survive a feedback round therefore reuse last round's
// packages instead of re-searching — the result-reuse observation behind
// §6's incremental maintenance, applied to the serving hot path.
package ranking

import (
	"container/list"
	"encoding/binary"
	"sync"

	"toppkg/internal/feature"
	"toppkg/internal/partition"
	"toppkg/internal/pkgspace"
	"toppkg/internal/search"
)

// DefaultCacheSize is the entry bound applied when NewCache is given a
// non-positive capacity.
const DefaultCacheSize = 4096

// Cache is a thread-safe LRU over per-weight-vector search results, shared
// by every engine serving one catalogue (results depend only on the shared
// immutable index). Cached results are handed out by reference and must be
// treated as immutable by callers.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // of *cacheEntry; front = most recently used
	m     map[string]*list.Element
	epoch uint64

	hits, misses, evictions                              uint64
	retained, revived, reconcileDrops, invalidationDrops uint64

	// history records the most recent delta swaps, newest last, bounded to
	// maxSwapHistory. Reconcile uses it to carry entries keyed several
	// epochs back — e.g. a Put racing an earlier swap — forward to the
	// current epoch, re-proving the footprint argument for every
	// intervening hop. Reset by Invalidate: a full rebuild breaks the
	// chain of attributable changes.
	history []Swap
}

type cacheEntry struct {
	key string
	res search.Result
}

// CacheStats is a point-in-time copy of the cache counters.
type CacheStats struct {
	// Size is the resident entry count; Capacity the LRU bound.
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
	// Epoch counts Invalidate calls; it is folded into every key so a
	// result computed before an invalidation can never be served after it.
	Epoch uint64 `json:"epoch"`
	// Hits/Misses count Get outcomes; Evictions counts LRU drops.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Retained counts entries carried across epoch swaps by Reconcile;
	// ReconcileDrops counts entries a swap's change set invalidated;
	// InvalidationDrops counts entries dropped by whole-cache Invalidate
	// calls. Together with Evictions they account for every entry that ever
	// left the cache.
	Retained          uint64 `json:"retained"`
	ReconcileDrops    uint64 `json:"reconcile_drops"`
	InvalidationDrops uint64 `json:"invalidation_drops"`
	// Revived counts the subset of Retained that was keyed to an epoch
	// older than the swap's parent — results from searches that raced an
	// earlier swap, landed dead, and were proven forward through the
	// recorded swap history.
	Revived uint64 `json:"revived"`
}

// NewCache returns an empty cache bounded to capacity entries
// (DefaultCacheSize when capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// Epoch returns the current invalidation epoch. Callers fold it into the
// keys they Get/Put, so entries keyed under an older epoch become
// unreachable the moment Invalidate runs — even a Put racing with the
// invalidation lands on a dead key instead of resurrecting a stale result.
func (c *Cache) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Invalidate advances the epoch and drops every entry. Use it when
// something outside the keys that results depend on changes — e.g. the
// index is rebuilt over an updated catalogue.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	c.epoch++
	c.invalidationDrops += uint64(c.ll.Len())
	c.ll.Init()
	c.m = make(map[string]*list.Element)
	c.history = nil
	c.mu.Unlock()
}

// Get returns the cached result for key. The result is shared: callers
// must not mutate it or anything it references.
func (c *Cache) Get(key string) (search.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		c.misses++
		return search.Result{}, false
	}
	c.hits++
	c.ll.MoveToFront(e)
	return e.Value.(*cacheEntry).res, true
}

// Put stores a result under key, evicting the least recently used entry
// beyond capacity. The cache takes shared ownership: the caller must not
// mutate res or anything it references afterwards.
func (c *Cache) Put(key string, res search.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*cacheEntry).res = res
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		ent := c.ll.Remove(back).(*cacheEntry)
		delete(c.m, ent.key)
		c.evictions++
	}
}

// Len reports the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a point-in-time copy of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:              c.ll.Len(),
		Capacity:          c.cap,
		Epoch:             c.epoch,
		Hits:              c.hits,
		Misses:            c.misses,
		Evictions:         c.evictions,
		Retained:          c.retained,
		Revived:           c.revived,
		ReconcileDrops:    c.reconcileDrops,
		InvalidationDrops: c.invalidationDrops,
	}
}

// Range calls fn for every resident entry under the cache lock, stopping
// early when fn returns false. For tests and diagnostics; fn must not call
// back into the cache or mutate the results.
func (c *Cache) Range(fn func(key string, res search.Result) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for e := c.ll.Front(); e != nil; e = e.Next() {
		ent := e.Value.(*cacheEntry)
		if !fn(ent.key, ent.res) {
			return
		}
	}
}

// Swap describes one delta epoch transition to Reconcile: the parent and
// successor catalogue epoch IDs, the change set between them, and both
// epochs' feature spaces for value lookups. Full rebuilds have no change
// attribution and must call Invalidate instead.
type Swap struct {
	// Parent is the epoch the delta was built from; Next the epoch just
	// installed. Entries keyed to any other epoch are dropped outright.
	Parent, Next uint64
	// Dirty holds parent-dense ids of items the batch replaced or deleted,
	// ascending. Fresh holds new-dense ids of items it inserted or
	// re-priced, ascending.
	Dirty, Fresh []int32
	// Touched lists profile dimensions whose normalizer scale bits or
	// null-set membership moved across the swap.
	Touched []int
	// Remap translates parent-dense ids to new-dense ids (-1 for items not
	// carried); nil when the assignment is unchanged. Retained footprints
	// are renumbered through it so the next swap's ids stay comparable.
	Remap []int32
	// OldSpace is Parent's feature space (Dirty value lookups); Space is
	// Next's (Fresh value lookups and admission scoring).
	OldSpace, Space *feature.Space
	// Partition describes what the swap did to the sketch-refine
	// partition (catalog.ChangeSet.Partition): nil when the parent epoch
	// had none carried forward. Entries whose footprints depend on the
	// partition (Footprint.Clusters non-empty) are dropped unless the
	// partition survived incrementally with no cluster's bounds or
	// representative changed and none of the entry's opened clusters
	// touched — a beamed refine's cluster admission order, sketch seeds
	// and subset lists could all shift otherwise.
	Partition *partition.Delta
}

// maxSwapHistory bounds the recorded swap chain. Entries keyed further
// back than the window can no longer be proven forward and are dropped.
const maxSwapHistory = 8

// Reconcile walks the cache after a delta epoch swap and retains every
// entry whose footprint proves the recorded change sets cannot have altered
// its result, re-keying it to the just-installed epoch in place (LRU order
// preserved). Entries keyed to the swap's parent epoch are checked against
// this swap alone; entries keyed further back — Puts from searches that
// raced an earlier swap and landed dead — are revived by chaining the same
// proof through every recorded intervening swap. Everything else — entries
// without a footprint, older than the recorded history, or reachable by a
// change set — is dropped. Retention is sound because a retained entry's
// search replays bit-identically on the new epoch: no accessed item
// changed, no consumed list prefix gained or lost a member, no normalizer
// scale or null-set the utility weights moved, and no new orphan lands in
// the drained region; the admission-bound test (inserted items must score
// strictly below the entry's k-th package utility as singletons) is applied
// on top as an extra conservative drop. A racing Put keyed to a superseded
// epoch therefore stays unservable from the moment of the swap until this
// proof admits it — a stale result is never handed out.
func (c *Cache) Reconcile(sw Swap) {
	var next [8]byte
	binary.LittleEndian.PutUint64(next[:], sw.Next)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.history = append(c.history, sw)
	if len(c.history) > maxSwapHistory {
		copy(c.history, c.history[len(c.history)-maxSwapHistory:])
		c.history = c.history[:maxSwapHistory]
	}
	nextKey := string(next[:])
	var e, n *list.Element
	for e = c.ll.Front(); e != nil; e = n {
		n = e.Next()
		ent := e.Value.(*cacheEntry)
		revived, ok := c.proveForward(ent)
		if !ok {
			c.ll.Remove(e)
			delete(c.m, ent.key)
			c.reconcileDrops++
			continue
		}
		if ent.key[8:16] != nextKey {
			key := []byte(ent.key)
			copy(key[8:16], next[:])
			delete(c.m, ent.key)
			ent.key = string(key)
			c.m[ent.key] = e
		}
		c.retained++
		if revived {
			c.revived++
		}
	}
}

// proveForward chain-checks one entry from its keyed epoch through every
// recorded swap up to the newest, renumbering its ids hop by hop. revived
// reports that the entry started more than one swap behind. The entry is
// mutated only on success paths (renumbering), and only via copy-on-write —
// results already handed out to callers are never touched.
func (c *Cache) proveForward(ent *cacheEntry) (revived bool, ok bool) {
	key := ent.key
	if len(key) < 16 {
		return false, false
	}
	if binary.LittleEndian.Uint64([]byte(key[:8])) != c.epoch {
		return false, false
	}
	entEp := binary.LittleEndian.Uint64([]byte(key[8:16]))
	if entEp == c.history[len(c.history)-1].Next {
		// Put from a search already pinned to the new epoch, racing ahead
		// of this reconcile: nothing to prove.
		return false, true
	}
	start := -1
	for i := range c.history {
		if c.history[i].Parent == entEp {
			start = i
			break
		}
	}
	if start < 0 {
		// Keyed past the recorded window: no provable path forward.
		return false, false
	}
	if ent.res.FP == nil {
		return false, false
	}
	cow := false
	for i := start; i < len(c.history); i++ {
		hop := &c.history[i]
		if !footprintSurvives(ent.res.FP, hop) {
			return false, false
		}
		remapEntry(ent, hop.Remap, &cow)
	}
	return start < len(c.history)-1, true
}

// remapEntry renumbers the entry's result — package member ids and the
// footprint's accessed ids, all dense positions of the hop's parent epoch —
// through the hop's remap, copy-on-write (the old result may still be
// referenced by callers served before the swap; after the first hop the
// entry owns fresh slices and later hops renumber in place). Every
// renumbered id was accessed and carried (dirty ∩ accessed = ∅, or the
// entry would have dropped), so the remapped ids stay non-negative and, the
// remap being order-preserving over carried items, both id lists stay
// ascending.
func remapEntry(ent *cacheEntry, remap []int32, cow *bool) {
	if remap == nil {
		return
	}
	if !*cow {
		*cow = true
		pkgs := make([]pkgspace.Scored, len(ent.res.Packages))
		for i, sc := range ent.res.Packages {
			ids := make([]int, len(sc.Pkg.IDs))
			copy(ids, sc.Pkg.IDs)
			pkgs[i] = pkgspace.Scored{Pkg: pkgspace.Package{IDs: ids}, Utility: sc.Utility}
		}
		ent.res.Packages = pkgs
		fp := *ent.res.FP
		fp.Accessed = append([]int32(nil), fp.Accessed...)
		ent.res.FP = &fp
	}
	for _, sc := range ent.res.Packages {
		for j, id := range sc.Pkg.IDs {
			sc.Pkg.IDs[j] = int(remap[id])
		}
	}
	fp := ent.res.FP
	for i, id := range fp.Accessed {
		fp.Accessed[i] = remap[id]
	}
	if fp.OrphanTau >= 0 {
		fp.OrphanTau = remap[fp.OrphanTau]
	}
}

// footprintSurvives decides whether one swap provably leaves the
// footprinted search unaffected.
func footprintSurvives(fp *search.Footprint, sw *Swap) bool {
	// A partition-dependent result (beamed sketch-refine) additionally
	// replays over the cluster structure: any cluster whose bounds or
	// representative moved can reorder beam admission or reseed the
	// sketch, and membership churn in an opened cluster changes the
	// subset lists. Only a clean incremental carry with the entry's
	// clusters untouched is provably inert.
	if len(fp.Clusters) > 0 {
		pd := sw.Partition
		if pd == nil || pd.Recluster || len(pd.Changed) > 0 {
			return false
		}
		for _, c := range pd.Touched {
			if _, ok := sortedFind(fp.Clusters, c); ok {
				return false
			}
		}
	}
	// A rescaled (or null-set-shifted) dimension the utility weights makes
	// every package score incomparable across the swap.
	for _, d := range sw.Touched {
		if d < len(fp.Weights) && fp.Weights[d] != 0 {
			return false
		}
	}
	for _, id := range sw.Dirty {
		// Any materialized item that changed invalidates the run outright.
		if _, ok := sortedFind(fp.Accessed, id); ok {
			return false
		}
		// A non-accessed removed item can still change the trace if its old
		// value sat inside a consumed list prefix — e.g. the head of a list
		// the run never drew from still seeded that cursor's initial τ.
		it := sw.OldSpace.Items[id]
		for i := range fp.Bounds {
			if !boundClears(&fp.Bounds[i], it.Values) {
				return false
			}
		}
	}
	for _, id := range sw.Fresh {
		it := sw.Space.Items[id]
		util := 0.0
		orphan := true
		for i := range fp.Bounds {
			b := &fp.Bounds[i]
			if !boundClears(b, it.Values) {
				return false
			}
			if v := it.Values[b.Feat]; !feature.IsNull(v) {
				util += fp.Weights[b.Dim] * v / sw.Space.Norm.Scale(int(b.Dim))
			}
		}
		// The issue's admission rule: an inserted item scoring at or above
		// the entry's k-th package utility as a singleton could displace the
		// slate even if the replay argument alone already covers it.
		if util >= fp.Admission {
			return false
		}
		// New orphans (null on every non-AggNull profile feature) enter the
		// drain list; unless the cached run never drained (its queues were
		// already empty), conservatively assume the fresh search would draw
		// this one — dense ids are not comparable across epochs, so the
		// exact break position cannot be replayed.
		for d := 0; d < sw.Space.Dims(); d++ {
			en := sw.Space.Profile.Entry(d)
			if en.Agg == feature.AggNull {
				continue
			}
			if !feature.IsNull(it.Values[en.Feature]) {
				orphan = false
				break
			}
		}
		if orphan && (fp.OrphanOpen || fp.OrphanTau >= 0) {
			return false
		}
	}
	return true
}

// boundClears reports that an un-accessed item with the given raw values
// provably stays outside the consumed region of one dimension cursor: null
// on the feature, or strictly on the unseen side of the boundary value τ
// (ties included in the consumed side — list order breaks value ties by
// dense id, which is not comparable across epochs).
func boundClears(b *search.DimBound, values []float64) bool {
	v := values[b.Feat]
	if feature.IsNull(v) {
		return true
	}
	if !b.HasList {
		// A weighted dimension with no list: the cached run had no cursor
		// there, a fresh search over an item valued on it would.
		return false
	}
	if b.Done {
		// The whole list was consumed; any member is in the footprint.
		return false
	}
	if b.Desc {
		return v < b.Tau
	}
	return v > b.Tau
}

// sortedFind locates id in an ascending slice by binary search.
func sortedFind(xs []int32, id int32) (int, bool) {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(xs) && xs[lo] == id {
		return lo, true
	}
	return lo, false
}
