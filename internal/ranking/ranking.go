// Package ranking aggregates per-sample top-k package results into a final
// recommendation list under the three ranking semantics of the paper:
// expected utility (EXP, Definition 2), probability of being a top-σ
// package (TKP, Definition 3), and most probable ordering (MPO,
// Definition 4). Per §4: for each sampled weight vector w, Top-k-Pkg
// produces the best packages under w; the semantics differ only in how
// those per-sample results are combined, with importance weights q(w)
// replacing unit counts for weighted samples (§3.2.1).
package ranking

import (
	"fmt"
	"sort"
	"strings"

	"toppkg/internal/pkgspace"
	"toppkg/internal/sampling"
	"toppkg/internal/search"
)

// Semantics selects how per-sample winners are aggregated.
type Semantics uint8

// The three ranking semantics of §2.2.
const (
	// EXP ranks packages by (sample-estimated) expected utility.
	EXP Semantics = iota
	// TKP ranks packages by the probability of appearing among the top-σ
	// packages.
	TKP
	// MPO returns the top-k list with the highest probability of being
	// exactly the top-k list.
	MPO
)

// String names the semantics.
func (s Semantics) String() string {
	switch s {
	case EXP:
		return "EXP"
	case TKP:
		return "TKP"
	case MPO:
		return "MPO"
	}
	return fmt.Sprintf("Semantics(%d)", uint8(s))
}

// ParseSemantics converts "exp"/"tkp"/"mpo" to a Semantics.
func ParseSemantics(s string) (Semantics, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "EXP":
		return EXP, nil
	case "TKP":
		return TKP, nil
	case "MPO":
		return MPO, nil
	}
	return EXP, fmt.Errorf("ranking: unknown semantics %q", s)
}

// Ranked is one recommended package with its semantics-dependent score:
// estimated expected utility (EXP), estimated top-σ probability (TKP), or
// the probability of the whole returned list (MPO, equal for all entries).
type Ranked struct {
	Pkg   pkgspace.Package
	Score float64
}

// Options configures the aggregation.
type Options struct {
	// K is the length of the final recommendation list.
	K int
	// Sigma is TKP's σ (top-σ membership threshold); defaults to K.
	Sigma int
	// PerSampleK is how many packages Top-k-Pkg retrieves per sample
	// (default max(K, Sigma)). EXP's estimator (§4) averages utilities over
	// the per-sample lists a package appears in, so a larger PerSampleK
	// reduces its bias at extra search cost.
	PerSampleK int
	// Parallelism is the number of goroutines running per-sample searches
	// (the searches are independent; aggregation stays deterministic).
	// 0 or 1 runs sequentially; a negative value uses GOMAXPROCS.
	Parallelism int
	// Search configures the per-sample Top-k-Pkg runs; Search.K is set
	// internally.
	Search search.Options
	// Quantum rounds each weight coordinate to its nearest multiple before
	// the search (see Canonical), so near-identical samples collapse into
	// one Top-k-Pkg run. 0 disables rounding: only bit-identical samples
	// merge, keeping slates exactly equal to the unbatched path.
	Quantum float64
	// Cache reuses per-vector search results across Rank calls — e.g.
	// samples that survived a feedback round reuse last round's packages.
	// Nil disables caching (dedup within one call always happens). Search
	// options carrying predicate functions bypass the cache; see
	// search.Options.CacheKey.
	Cache *Cache
	// Epoch identifies the catalogue epoch the index was built from; it is
	// folded into every cache key, so results computed against one epoch
	// can never be served for another even when a swap races this call.
	// Static catalogues pass 0.
	Epoch uint64
	// Metrics, when non-nil, is overwritten with the pipeline counters of
	// this call.
	Metrics *Metrics
}

// Rank computes the top-k packages under the given semantics from a pool of
// weight-vector samples. Each sample contributes its importance weight.
// Per-sample searches run through the batched pipeline (dedup → cache →
// worker pool, see groupResults); aggregation runs in sample order, so the
// result is deterministic regardless of Parallelism and identical to the
// one-search-per-sample path whenever Quantum is 0.
func Rank(ix *search.Index, samples []sampling.Sample, sem Semantics, opts Options) ([]Ranked, error) {
	if opts.K <= 0 {
		return nil, fmt.Errorf("ranking: K must be positive, got %d", opts.K)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("ranking: no samples")
	}
	results, err := groupResults(ix, ix.Space().Profile, samples, searchOptions(sem, opts), opts)
	if err != nil {
		return nil, err
	}
	return aggregate(samples, results, sem, opts)
}

// searchOptions derives the concrete per-sample search options: PerSampleK
// widens the per-sample lists beyond K when the semantics need it.
func searchOptions(sem Semantics, opts Options) search.Options {
	sigma := opts.Sigma
	if sigma <= 0 {
		sigma = opts.K
	}
	perSample := opts.K
	if sem == TKP && sigma > perSample {
		perSample = sigma
	}
	if opts.PerSampleK > perSample {
		perSample = opts.PerSampleK
	}
	so := opts.Search
	so.K = perSample
	return so
}

// aggregate combines per-sample top-k results (indexed like samples) into
// the final recommendation list under the given semantics.
func aggregate(samples []sampling.Sample, results []search.Result, sem Semantics, opts Options) ([]Ranked, error) {
	sigma := opts.Sigma
	if sigma <= 0 {
		sigma = opts.K
	}
	type acc struct {
		pkg    pkgspace.Package
		sumQU  float64 // Σ q·U over samples where the package appears (EXP)
		weight float64 // Σ q over samples where the package appears
	}
	accs := make(map[string]*acc)
	lists := make(map[string]*listAcc) // MPO
	var totalQ float64

	for i := range samples {
		res := results[i]
		q := samples[i].Q
		totalQ += q
		switch sem {
		case EXP, TKP:
			pkgs := res.Packages
			if sem == TKP && len(pkgs) > sigma {
				// TKP counts membership in the per-sample top-σ only.
				pkgs = pkgs[:sigma]
			}
			for _, sc := range pkgs {
				sig := sc.Pkg.Signature()
				a := accs[sig]
				if a == nil {
					a = &acc{pkg: sc.Pkg}
					accs[sig] = a
				}
				a.sumQU += q * sc.Utility
				a.weight += q
			}
		case MPO:
			// MPO's lists are the per-sample top-K prefix.
			pkgs := res.Packages
			if len(pkgs) > opts.K {
				pkgs = pkgs[:opts.K]
			}
			key := listKey(pkgs)
			la := lists[key]
			if la == nil {
				la = &listAcc{pkgs: pkgs}
				lists[key] = la
			}
			la.weight += q
		}
	}

	switch sem {
	case EXP:
		out := make([]Ranked, 0, len(accs))
		for _, a := range accs {
			if a.weight == 0 {
				continue
			}
			out = append(out, Ranked{Pkg: a.pkg, Score: a.sumQU / a.weight})
		}
		sortRanked(out)
		return head(out, opts.K), nil
	case TKP:
		out := make([]Ranked, 0, len(accs))
		for _, a := range accs {
			score := a.weight
			if totalQ > 0 {
				score /= totalQ
			}
			out = append(out, Ranked{Pkg: a.pkg, Score: score})
		}
		sortRanked(out)
		return head(out, opts.K), nil
	default: // MPO
		var best *listAcc
		var bestKey string
		for key, la := range lists {
			if best == nil || la.weight > best.weight ||
				(la.weight == best.weight && key < bestKey) {
				best, bestKey = la, key
			}
		}
		if best == nil {
			return nil, fmt.Errorf("ranking: MPO found no candidate list")
		}
		prob := best.weight
		if totalQ > 0 {
			prob /= totalQ
		}
		out := make([]Ranked, 0, opts.K)
		for i, sc := range best.pkgs {
			if i >= opts.K {
				break
			}
			out = append(out, Ranked{Pkg: sc.Pkg, Score: prob})
		}
		return out, nil
	}
}

type listAcc struct {
	pkgs   []pkgspace.Scored
	weight float64
}

func listKey(pkgs []pkgspace.Scored) string {
	parts := make([]string, len(pkgs))
	for i, sc := range pkgs {
		parts[i] = sc.Pkg.Signature()
	}
	return strings.Join(parts, ";")
}

func sortRanked(xs []Ranked) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].Score != xs[j].Score {
			return xs[i].Score > xs[j].Score
		}
		return pkgspace.Less(xs[i].Pkg, xs[j].Pkg)
	})
}

func head(xs []Ranked, k int) []Ranked {
	if len(xs) > k {
		xs = xs[:k]
	}
	return xs
}

// Signatures extracts the package signatures of a ranked list, a
// convenience for comparing lists across samplers and semantics (§5.4).
func Signatures(xs []Ranked) []string {
	out := make([]string, len(xs))
	for i := range xs {
		out[i] = xs[i].Pkg.Signature()
	}
	return out
}
