package ranking

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"toppkg/internal/pkgspace"
	"toppkg/internal/search"
)

func res(id int) search.Result {
	return search.Result{Packages: []pkgspace.Scored{{Pkg: pkgspace.New(id), Utility: float64(id)}}}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", res(1))
	c.Put("b", res(2))
	if _, ok := c.Get("a"); !ok { // a is now MRU
		t.Fatal("a missing")
	}
	c.Put("c", res(3)) // evicts b (LRU)
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry b survived")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used a evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("newest entry c evicted")
	}
	st := c.Stats()
	if st.Size != 2 || st.Capacity != 2 || st.Evictions != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("hit accounting: %+v", st)
	}
}

func TestCachePutReplaces(t *testing.T) {
	c := NewCache(4)
	c.Put("a", res(1))
	c.Put("a", res(9))
	got, ok := c.Get("a")
	if !ok || got.Packages[0].Utility != 9 {
		t.Errorf("Put did not replace: %+v ok=%v", got, ok)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(4)
	if c.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d", c.Epoch())
	}
	c.Put("a", res(1))
	c.Invalidate()
	if _, ok := c.Get("a"); ok {
		t.Error("entry survived Invalidate")
	}
	if c.Epoch() != 1 || c.Len() != 0 {
		t.Errorf("epoch %d len %d after Invalidate", c.Epoch(), c.Len())
	}
}

func TestCacheDefaultCapacity(t *testing.T) {
	if got := NewCache(0).Stats().Capacity; got != DefaultCacheSize {
		t.Errorf("NewCache(0) capacity = %d", got)
	}
	if got := NewCache(-3).Stats().Capacity; got != DefaultCacheSize {
		t.Errorf("NewCache(-3) capacity = %d", got)
	}
}

// TestCacheConcurrent hammers one cache from many goroutines; run with
// -race. Values under contention must still be the ones put for their key.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%40)
				if r, ok := c.Get(k); ok {
					if want := float64(i % 40); r.Packages[0].Utility != want {
						t.Errorf("key %s holds utility %g", k, r.Packages[0].Utility)
						return
					}
				} else {
					c.Put(k, res(i%40))
				}
				if i%97 == 0 {
					c.Invalidate()
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestWeightKey(t *testing.T) {
	a := []float64{0.25, -1, 0}
	b := []float64{0.25, -1, math.Copysign(0, -1)} // -0 folds into +0
	if WeightKey(a) != WeightKey(b) {
		t.Error("-0 and +0 keyed differently")
	}
	if WeightKey(a) == WeightKey([]float64{0.25, -1, 1e-300}) {
		t.Error("distinct vectors collided")
	}
	if WeightKey(a) == WeightKey(a[:2]) {
		t.Error("prefix collided with full vector")
	}
}

func TestCanonical(t *testing.T) {
	w := []float64{0.1004, -0.2496}
	if got := Canonical(w, 0); &got[0] != &w[0] {
		t.Error("quantum 0 must be the identity")
	}
	got := Canonical(w, 0.001)
	if got[0] != 0.1 || math.Abs(got[1]+0.25) > 1e-12 {
		t.Errorf("Canonical(%v, 0.001) = %v", w, got)
	}
	if w[0] != 0.1004 {
		t.Error("Canonical mutated its input")
	}
}

func TestMetricsRatios(t *testing.T) {
	m := Metrics{Samples: 10, Distinct: 4, CacheHits: 3}
	if got := m.DedupRatio(); got != 0.6 {
		t.Errorf("DedupRatio = %g", got)
	}
	if got := m.HitRate(); got != 0.75 {
		t.Errorf("HitRate = %g", got)
	}
	var zero Metrics
	if zero.DedupRatio() != 0 || zero.HitRate() != 0 {
		t.Error("zero metrics must not divide by zero")
	}
}
