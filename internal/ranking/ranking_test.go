package ranking

import (
	"math"
	"testing"

	"toppkg/internal/feature"
	"toppkg/internal/sampling"
	"toppkg/internal/search"
)

// paperIndex reproduces the setting of the paper's Figure 2: three items,
// profile (sum1, avg2), φ = 2, and three weight vectors with probabilities
// 0.3, 0.4, 0.3 standing in for Pw.
func paperIndex(t *testing.T) *search.Index {
	t.Helper()
	items := []feature.Item{
		{ID: 0, Values: []float64{0.6, 0.2}},
		{ID: 1, Values: []float64{0.4, 0.4}},
		{ID: 2, Values: []float64{0.2, 0.4}},
	}
	sp, err := feature.NewSpace(items, feature.SimpleProfile(feature.AggSum, feature.AggAvg), 2)
	if err != nil {
		t.Fatal(err)
	}
	return search.NewIndex(sp)
}

func paperSamples() []sampling.Sample {
	return []sampling.Sample{
		{W: []float64{0.5, 0.1}, Q: 0.3},
		{W: []float64{0.1, 0.5}, Q: 0.4},
		{W: []float64{0.1, 0.1}, Q: 0.3},
	}
}

// TestEXPPaperExample: Example 1 computes expected utilities over all six
// packages; the top-2 under EXP are p4 = {t1,t2} (0.415) and p5 = {t2,t3}
// (0.392). PerSampleK=6 makes the estimator exact here.
func TestEXPPaperExample(t *testing.T) {
	ix := paperIndex(t)
	got, err := Rank(ix, paperSamples(), EXP, Options{K: 2, PerSampleK: 6,
		Search: search.Options{ExpandAll: true}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Pkg.Signature() != "0|1" {
		t.Errorf("EXP top-1 = %s, want p4 = {0,1}", got[0].Pkg)
	}
	if got[1].Pkg.Signature() != "1|2" {
		t.Errorf("EXP top-2 = %s, want p5 = {1,2}", got[1].Pkg)
	}
	if math.Abs(got[0].Score-0.415) > 1e-9 {
		t.Errorf("EXP(p4) = %g, want 0.415", got[0].Score)
	}
	if math.Abs(got[1].Score-0.392) > 1e-9 {
		t.Errorf("EXP(p5) = %g, want 0.392", got[1].Score)
	}
}

// TestTKPPaperExample: Example 2 — p5 is in the top-2 list with probability
// 0.7, p4 with probability 0.6; TKP's top-2 is (p5, p4).
func TestTKPPaperExample(t *testing.T) {
	ix := paperIndex(t)
	got, err := Rank(ix, paperSamples(), TKP, Options{K: 2, Sigma: 2,
		Search: search.Options{ExpandAll: true}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Pkg.Signature() != "1|2" {
		t.Errorf("TKP top-1 = %s, want p5 = {1,2}", got[0].Pkg)
	}
	if got[1].Pkg.Signature() != "0|1" {
		t.Errorf("TKP top-2 = %s, want p4 = {0,1}", got[1].Pkg)
	}
	if math.Abs(got[0].Score-0.7) > 1e-9 {
		t.Errorf("P(p5 in top-2) = %g, want 0.7", got[0].Score)
	}
	if math.Abs(got[1].Score-0.6) > 1e-9 {
		t.Errorf("P(p4 in top-2) = %g, want 0.6", got[1].Score)
	}
}

// TestMPOPaperExample: Example 3 — the most probable top-2 list is
// (p5, p2) with probability 0.4 (the w2 ordering).
func TestMPOPaperExample(t *testing.T) {
	ix := paperIndex(t)
	got, err := Rank(ix, paperSamples(), MPO, Options{K: 2,
		Search: search.Options{ExpandAll: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("MPO returned %d packages", len(got))
	}
	if got[0].Pkg.Signature() != "1|2" || got[1].Pkg.Signature() != "1" {
		t.Errorf("MPO list = (%s, %s), want (p5, p2) = ({1,2}, {1})", got[0].Pkg, got[1].Pkg)
	}
	for _, r := range got {
		if math.Abs(r.Score-0.4) > 1e-9 {
			t.Errorf("MPO list probability = %g, want 0.4", r.Score)
		}
	}
}

// TestSemanticsDiffer: the paper's point in §2.2 — the three semantics can
// produce three different top-2 lists on the same distribution.
func TestSemanticsDiffer(t *testing.T) {
	ix := paperIndex(t)
	exp, err := Rank(ix, paperSamples(), EXP, Options{K: 2, PerSampleK: 6,
		Search: search.Options{ExpandAll: true}})
	if err != nil {
		t.Fatal(err)
	}
	tkp, err := Rank(ix, paperSamples(), TKP, Options{K: 2, Sigma: 2,
		Search: search.Options{ExpandAll: true}})
	if err != nil {
		t.Fatal(err)
	}
	mpo, err := Rank(ix, paperSamples(), MPO, Options{K: 2,
		Search: search.Options{ExpandAll: true}})
	if err != nil {
		t.Fatal(err)
	}
	if listOf(exp) == listOf(tkp) {
		t.Error("EXP and TKP coincide; paper's example distinguishes them")
	}
	if listOf(tkp) == listOf(mpo) {
		t.Error("TKP and MPO coincide; paper's example distinguishes them")
	}
}

func listOf(rs []Ranked) string {
	s := ""
	for _, r := range rs {
		s += r.Pkg.Signature() + ";"
	}
	return s
}

// TestImportanceWeightsRespected: duplicating a sample with weight 2 must
// equal giving it two unit-weight copies.
func TestImportanceWeightsRespected(t *testing.T) {
	ix := paperIndex(t)
	weighted := []sampling.Sample{
		{W: []float64{0.5, 0.1}, Q: 2},
		{W: []float64{0.1, 0.5}, Q: 1},
	}
	duplicated := []sampling.Sample{
		{W: []float64{0.5, 0.1}, Q: 1},
		{W: []float64{0.5, 0.1}, Q: 1},
		{W: []float64{0.1, 0.5}, Q: 1},
	}
	for _, sem := range []Semantics{EXP, TKP, MPO} {
		a, err := Rank(ix, weighted, sem, Options{K: 2, Search: search.Options{ExpandAll: true}})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Rank(ix, duplicated, sem, Options{K: 2, Search: search.Options{ExpandAll: true}})
		if err != nil {
			t.Fatal(err)
		}
		if listOf(a) != listOf(b) {
			t.Errorf("%v: weighted %s != duplicated %s", sem, listOf(a), listOf(b))
		}
		for i := range a {
			if math.Abs(a[i].Score-b[i].Score) > 1e-9 {
				t.Errorf("%v: score[%d] %g != %g", sem, i, a[i].Score, b[i].Score)
			}
		}
	}
}

// TestSingleSampleDegenerate: with one sample, every semantics returns that
// sample's top-k.
func TestSingleSampleDegenerate(t *testing.T) {
	ix := paperIndex(t)
	one := []sampling.Sample{{W: []float64{0.5, 0.1}, Q: 1}}
	for _, sem := range []Semantics{EXP, TKP, MPO} {
		got, err := Rank(ix, one, sem, Options{K: 2, Search: search.Options{ExpandAll: true}})
		if err != nil {
			t.Fatal(err)
		}
		if got[0].Pkg.Signature() != "0|1" || got[1].Pkg.Signature() != "0|2" {
			t.Errorf("%v single-sample = %s", sem, listOf(got))
		}
	}
}

func TestRankValidation(t *testing.T) {
	ix := paperIndex(t)
	if _, err := Rank(ix, paperSamples(), EXP, Options{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Rank(ix, nil, EXP, Options{K: 1}); err == nil {
		t.Error("empty samples accepted")
	}
}

func TestSemanticsString(t *testing.T) {
	if EXP.String() != "EXP" || TKP.String() != "TKP" || MPO.String() != "MPO" {
		t.Error("semantics names wrong")
	}
	if Semantics(9).String() != "Semantics(9)" {
		t.Error("unknown semantics name wrong")
	}
}

func TestParseSemantics(t *testing.T) {
	for in, want := range map[string]Semantics{"exp": EXP, "TKP": TKP, " mpo ": MPO} {
		got, err := ParseSemantics(in)
		if err != nil || got != want {
			t.Errorf("ParseSemantics(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSemantics("best"); err == nil {
		t.Error("ParseSemantics(best) succeeded")
	}
}

func TestSignatures(t *testing.T) {
	ix := paperIndex(t)
	got, err := Rank(ix, paperSamples(), EXP, Options{K: 2, Search: search.Options{ExpandAll: true}})
	if err != nil {
		t.Fatal(err)
	}
	sigs := Signatures(got)
	if len(sigs) != 2 || sigs[0] == "" {
		t.Errorf("Signatures = %v", sigs)
	}
}

// TestParallelDeterminism: any parallelism level must produce bit-identical
// rankings (aggregation is in sample order).
func TestParallelDeterminism(t *testing.T) {
	ix := paperIndex(t)
	samples := paperSamples()
	for _, sem := range []Semantics{EXP, TKP, MPO} {
		base, err := Rank(ix, samples, sem, Options{K: 2, Search: search.Options{ExpandAll: true}})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 4, -1} {
			got, err := Rank(ix, samples, sem, Options{K: 2, Parallelism: par,
				Search: search.Options{ExpandAll: true}})
			if err != nil {
				t.Fatal(err)
			}
			if listOf(got) != listOf(base) {
				t.Errorf("%v parallel=%d list %s != sequential %s", sem, par, listOf(got), listOf(base))
			}
			for i := range got {
				if math.Abs(got[i].Score-base[i].Score) > 1e-12 {
					t.Errorf("%v parallel=%d score[%d] differs", sem, par, i)
				}
			}
		}
	}
}
