package ranking

import (
	"encoding/binary"
	"testing"

	"toppkg/internal/partition"
	"toppkg/internal/search"
)

// epochKey builds a cache key pinned to the given catalogue epoch, the
// way groupResults does (cache invalidation epoch + catalogue epoch +
// an opaque options/weights suffix).
func epochKey(c *Cache, catEp uint64, rest string) string {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], c.Epoch())
	binary.LittleEndian.PutUint64(b[8:], catEp)
	return string(b[:]) + rest
}

// TestReconcilePartitionGuards: an entry whose footprint depends on the
// sketch-refine partition (Clusters non-empty) survives a swap only when
// the partition was carried incrementally with no cluster's bounds or
// representative changed and none of the entry's opened clusters touched.
// Every other shape — no partition carried, a re-cluster, any changed
// cluster, or membership churn in an opened cluster — must drop it.
func TestReconcilePartitionGuards(t *testing.T) {
	mkRes := func(clusters []int32) search.Result {
		return search.Result{FP: &search.Footprint{
			Clusters:  clusters,
			Admission: 1e18,
			OrphanTau: -1,
		}}
	}
	cases := []struct {
		name     string
		clusters []int32
		pd       *partition.Delta
		retained bool
	}{
		{"no partition carried", []int32{1, 3}, nil, false},
		{"recluster", []int32{1, 3}, &partition.Delta{Recluster: true}, false},
		{"changed cluster anywhere", []int32{1, 3}, &partition.Delta{Touched: []int32{5}, Changed: []int32{5}}, false},
		{"opened cluster touched", []int32{1, 3}, &partition.Delta{Touched: []int32{3}}, false},
		{"untouched incremental carry", []int32{1, 3}, &partition.Delta{Touched: []int32{2}}, true},
		{"partition-independent entry", nil, nil, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCache(8)
			key := epochKey(c, 1, "entry")
			c.Put(key, mkRes(tc.clusters))
			c.Reconcile(Swap{Parent: 1, Next: 2, Partition: tc.pd})
			_, ok := c.Get(epochKey(c, 2, "entry"))
			if ok != tc.retained {
				t.Fatalf("retained=%v, want %v", ok, tc.retained)
			}
		})
	}
}
