// Package shard partitions the serving tier horizontally. A consistent-
// hash ring assigns every session ID to one backend serve process; a
// Gateway proxies session traffic to the owner shard, replicates
// catalogue mutations to every shard through a sequenced log with
// at-least-once redelivery, and rebalances by riding the snapshot
// machinery — sessions whose owner changes are flushed to the shared
// session store on the old shard and restored on the new one, so learned
// preference state survives migration (the save→churn→restore property
// suite is the correctness anchor).
//
// The ring is the one piece both sides must agree on: the gateway routes
// with it and backends evaluate drain predicates with it (DrainRequest),
// so it is fully deterministic — no per-process seeding — and pure.
package shard

import (
	"slices"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per shard when a Config or
// DrainRequest leaves it zero. More vnodes smooth the load split (the
// deviation of a shard's share shrinks roughly with 1/sqrt(vnodes·shards))
// at the cost of a larger sorted point set; 128 keeps a 100k-session
// population within a few percent of even across small clusters.
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring over a shard membership.
// Every method is safe for concurrent use; membership changes build a new
// Ring rather than mutating one in place, so a routing decision mid-swap
// sees one coherent membership or the other, never a torn one.
type Ring struct {
	vnodes int
	shards []string // sorted, deduplicated
	points []point  // sorted by (hash, shard)
}

// point is one virtual node: a position on the hash circle owned by a
// shard.
type point struct {
	hash  uint64
	shard string
}

// NewRing builds a ring with vnodes virtual nodes per shard (0 selects
// DefaultVNodes). Duplicate shard IDs are collapsed; membership order is
// irrelevant — two rings over the same set route identically.
func NewRing(vnodes int, shards []string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	members := slices.Clone(shards)
	sort.Strings(members)
	members = slices.Compact(members)
	r := &Ring{vnodes: vnodes, shards: members}
	r.points = make([]point, 0, len(members)*vnodes)
	for _, s := range members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(s + "#" + strconv.Itoa(v)), shard: s})
		}
	}
	// Ties (two shards hashing a vnode to the same position) are broken by
	// shard name so every ring over this membership agrees on the owner.
	slices.SortFunc(r.points, func(a, b point) int {
		switch {
		case a.hash < b.hash:
			return -1
		case a.hash > b.hash:
			return 1
		case a.shard < b.shard:
			return -1
		case a.shard > b.shard:
			return 1
		}
		return 0
	})
	return r
}

// Owner returns the shard a key routes to: the first virtual node at or
// clockwise of the key's hash, wrapping at the top of the circle. An
// empty ring owns nothing and returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Shards returns the membership, sorted (do not mutate).
func (r *Ring) Shards() []string { return r.shards }

// VNodes returns the virtual-node count per shard.
func (r *Ring) VNodes() int { return r.vnodes }

// Len returns the number of member shards.
func (r *Ring) Len() int { return len(r.shards) }

// hash64 maps a string onto the ring circle: FNV-1a for the byte mixing,
// then a murmur-style avalanche finalizer. Raw FNV keeps structured keys
// (sequential session IDs, "shard#vnode" labels) clustered in the low
// bits; the finalizer spreads them over the full 64-bit circle, which the
// uniform-distribution test depends on. Deterministic across processes —
// gateway and backends must agree.
func hash64(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
