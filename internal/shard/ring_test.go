package shard

import (
	"fmt"
	"math"
	"testing"
)

func shardNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("s%d", i)
	}
	return out
}

// sessionIDs returns the loadgen-shaped session population ("s%06d") —
// deliberately structured keys, the worst case for a weak hash.
func sessionIDs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("s%06d", i)
	}
	return out
}

func TestRingDeterministicAcrossInstances(t *testing.T) {
	// The gateway and every backend build their own Ring from the same
	// membership; routing only works if they all agree. maphash-style
	// per-process seeding would pass a single-instance test and break the
	// deployment, so agreement is asserted across independent instances
	// (construction order shuffled).
	a := NewRing(64, []string{"s0", "s1", "s2"})
	b := NewRing(64, []string{"s2", "s0", "s1"})
	for _, id := range sessionIDs(1000) {
		if ao, bo := a.Owner(id), b.Owner(id); ao != bo {
			t.Fatalf("rings disagree on %q: %q vs %q", id, ao, bo)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := NewRing(0, nil).Owner("x"); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
	r := NewRing(0, []string{"only"})
	for _, id := range sessionIDs(100) {
		if got := r.Owner(id); got != "only" {
			t.Fatalf("single-shard ring routed %q to %q", id, got)
		}
	}
	if got := NewRing(0, []string{"a", "a", "b"}).Len(); got != 2 {
		t.Errorf("duplicate members: Len = %d, want 2", got)
	}
}

// arcShares computes each shard's analytic share of the hash circle —
// the exact probability a uniformly-hashed key lands on that shard.
func arcShares(r *Ring) map[string]float64 {
	shares := make(map[string]float64, len(r.shards))
	pts := r.points
	for i, p := range pts {
		var arc uint64
		if i == 0 {
			// Wraparound arc: from the last point over the top to the first.
			arc = pts[0].hash + (math.MaxUint64 - pts[len(pts)-1].hash)
		} else {
			arc = p.hash - pts[i-1].hash
		}
		shares[p.shard] += float64(arc) / float64(math.MaxUint64)
	}
	return shares
}

// TestRingUniformDistribution checks the two halves of "uniform load"
// separately, because they fail for different reasons:
//
//  1. Key spread: 100k session IDs must land on shards in proportion to
//     each shard's analytic arc share — a chi-squared test of the key
//     hash itself. A weak hash (e.g. raw FNV on structured IDs, without
//     the avalanche finalizer) fails here no matter how many vnodes the
//     ring has.
//  2. Arc balance: the arc shares themselves must be close to even —
//     vnode placement smooths them by averaging ~vnodes independent arc
//     lengths per shard (relative SD ~ 1/sqrt(vnodes)). Too few vnodes
//     fails here no matter how strong the hash is.
func TestRingUniformDistribution(t *testing.T) {
	// 99.9% chi-squared critical values by degrees of freedom (shards-1):
	// a deterministic hash makes this a fixed computation, so exceeding
	// the bound is a real distribution defect, not test flake.
	crit := map[int]float64{1: 10.83, 2: 13.82, 4: 18.47, 7: 24.32}
	const n = 100000
	ids := sessionIDs(n)
	for _, tc := range []struct {
		shards, vnodes int
		maxArcDev      float64 // observed ≤ 0.165 (128 vn), ≤ 0.07 (1024 vn)
	}{
		{2, DefaultVNodes, 0.20},
		{3, DefaultVNodes, 0.20},
		{5, DefaultVNodes, 0.20},
		{8, DefaultVNodes, 0.20},
		{3, 1024, 0.10},
		{8, 1024, 0.10},
	} {
		r := NewRing(tc.vnodes, shardNames(tc.shards))
		shares := arcShares(r)
		counts := make(map[string]int, tc.shards)
		for _, id := range ids {
			counts[r.Owner(id)]++
		}
		chi := 0.0
		for _, s := range r.Shards() {
			share := shares[s]
			if dev := math.Abs(share*float64(tc.shards) - 1); dev > tc.maxArcDev {
				t.Errorf("%d shards × %d vnodes: shard %s owns %.1f%% of the circle, want within %.0f%% of even",
					tc.shards, tc.vnodes, s, share*100, tc.maxArcDev*100)
			}
			exp := share * n
			d := float64(counts[s]) - exp
			chi += d * d / exp
		}
		if bound := crit[tc.shards-1]; chi > bound {
			t.Errorf("%d shards × %d vnodes: chi-squared %.2f over arc expectation exceeds %.2f (99.9%%, %d dof); counts=%v",
				tc.shards, tc.vnodes, chi, bound, tc.shards-1, counts)
		}
	}
}

// TestRingMinimalMovement is the property that justifies consistent
// hashing at all: growing N shards to N+1 moves only the keys the new
// shard now owns — everything else keeps its owner — and the moved
// fraction is about 1/(N+1).
func TestRingMinimalMovement(t *testing.T) {
	const n = 100000
	ids := sessionIDs(n)
	for _, before := range []int{1, 2, 3, 4, 7} {
		old := NewRing(DefaultVNodes, shardNames(before))
		grown := NewRing(DefaultVNodes, shardNames(before+1))
		newcomer := fmt.Sprintf("s%d", before)
		moved := 0
		for _, id := range ids {
			a, b := old.Owner(id), grown.Owner(id)
			if a == b {
				continue
			}
			if b != newcomer {
				t.Fatalf("%d→%d shards: %q moved %q→%q, not to the new shard %q",
					before, before+1, id, a, b, newcomer)
			}
			moved++
		}
		ideal := float64(n) / float64(before+1)
		// The moved set is exactly the newcomer's arc share, so the bound
		// tracks the arc-balance tolerance above (±20% + rounding head
		// room), and a floor catches a ring that never reassigns anything.
		if f := float64(moved); f > 1.35*ideal || f < 0.5*ideal {
			t.Errorf("%d→%d shards: %d of %d keys moved, want ≈%.0f (1/%d)",
				before, before+1, moved, n, ideal, before+1)
		}
	}
}

func TestDrainRequestPredicate(t *testing.T) {
	members := []string{"s0", "s1", "s2"}
	ring := NewRing(DefaultVNodes, members)
	pred := DrainRequest{Self: "s1", VNodes: DefaultVNodes, Shards: members}.Predicate()
	kept, flushed := 0, 0
	for _, id := range sessionIDs(10000) {
		owns := ring.Owner(id) == "s1"
		if pred(id) != !owns {
			t.Fatalf("predicate disagrees with ring ownership for %q (owner %q)", id, ring.Owner(id))
		}
		if owns {
			kept++
		} else {
			flushed++
		}
	}
	if kept == 0 || flushed == 0 {
		t.Fatalf("degenerate split kept=%d flushed=%d", kept, flushed)
	}

	// A membership without Self means the shard is leaving: flush all.
	leaving := DrainRequest{Self: "s1", Shards: []string{"s0", "s2"}}.Predicate()
	empty := DrainRequest{Self: "s1"}.Predicate()
	for _, id := range []string{"a", "b", "s000001"} {
		if !leaving(id) || !empty(id) {
			t.Fatalf("leaving-shard predicate kept %q", id)
		}
	}

	// A vnode-count mismatch is the classic silent-wrong-drain bug; the
	// predicate must honor the request's count, not assume the default.
	p64 := DrainRequest{Self: "s0", VNodes: 64, Shards: members}.Predicate()
	r64 := NewRing(64, members)
	for _, id := range sessionIDs(2000) {
		if p64(id) != (r64.Owner(id) != "s0") {
			t.Fatalf("predicate ignored VNodes for %q", id)
		}
	}
}
