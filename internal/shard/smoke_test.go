package shard_test

import (
	"context"
	"testing"
	"time"

	"toppkg/internal/loadgen"
	"toppkg/internal/session"
	"toppkg/internal/shard"
)

// TestShardSmokeThreeBackends is the whole-tier smoke: three mutable
// backends behind a gateway, zipfian session traffic with catalogue
// churn flowing through it, under the race detector in CI. At quiesce
// every request must have succeeded and every shard must hold the same
// catalogue (identical idmap/space hashes) — the mutation log's whole
// contract.
func TestShardSmokeThreeBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second load test")
	}
	store := session.NewMemStore()
	bks := map[string]*backend{
		"s0": newBackend(t, "s0", store, true),
		"s1": newBackend(t, "s1", store, true),
		"s2": newBackend(t, "s2", store, true),
	}
	_, gts := newGateway(t, shard.Config{}, []string{"s0", "s1", "s2"}, bks)

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     gts.URL,
		Sessions:    200,
		Concurrency: 8,
		Duration:    1500 * time.Millisecond,
		Churn:       15 * time.Millisecond,
		ChurnBatch:  4,
		ChurnItems:  60,
		Features:    2,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 || rep.Non2xx != 0 {
		t.Fatalf("sharded run failed requests: %d errors, %d non-2xx of %d", rep.Errors, rep.Non2xx, rep.Total)
	}
	if rep.ChurnBatches == 0 {
		t.Fatal("churn never ran — the smoke did not exercise the mutation log")
	}
	if rep.SettleFailed {
		t.Fatalf("catalogue never settled after %d polls", rep.SettlePolls)
	}
	// Quiesced and settled: every shard must now report the identical
	// catalogue fingerprint.
	assertConverged(t, bks)
	t.Logf("sharded smoke: %d ops, %d churn batches, %.0f rps across 3 shards",
		rep.Total, rep.ChurnBatches, rep.ThroughputRPS)
}
