package shard

import "slices"

// DrainPath is the backend admin endpoint the gateway posts DrainRequests
// to when the ring changes (internal/server registers it).
const DrainPath = "/admin/drain"

// DrainRequest tells a backend which sessions it no longer owns. The
// backend rebuilds the ring from the request and flushes every resident
// session whose owner under the new membership is not Self — snapshotting
// it to the shared session store, where the new owner restores it on the
// session's next request.
type DrainRequest struct {
	// Self is the receiving shard's ID. A backend started with -shard-id
	// rejects requests naming someone else: a drain delivered to the wrong
	// shard would flush sessions that did not move.
	Self string `json:"self"`
	// VNodes is the ring's virtual-node count (0 selects DefaultVNodes).
	// It must match the gateway's, or the two sides partition sessions
	// differently and the drain flushes the wrong set.
	VNodes int `json:"vnodes,omitempty"`
	// Shards is the post-change ring membership. A membership that does
	// not include Self means this shard is leaving: every session moves.
	Shards []string `json:"shards"`
}

// DrainResponse reports how many sessions the drain flushed.
type DrainResponse struct {
	Flushed int `json:"flushed"`
}

// Predicate returns the flush predicate the request describes: true for
// the session IDs the receiving shard no longer owns under the new ring.
func (dr DrainRequest) Predicate() func(string) bool {
	if len(dr.Shards) == 0 || !slices.Contains(dr.Shards, dr.Self) {
		// Leaving the ring: everything this shard holds moves.
		return func(string) bool { return true }
	}
	r := NewRing(dr.VNodes, dr.Shards)
	self := dr.Self
	return func(id string) bool { return r.Owner(id) != self }
}
