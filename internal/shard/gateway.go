package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"toppkg/internal/session"
)

// Gateway defaults; a zero Config field selects the matching constant.
const (
	DefaultRetries       = 2
	DefaultRetryBackoff  = 25 * time.Millisecond
	DefaultProbeInterval = 2 * time.Second
	DefaultApplyTimeout  = 30 * time.Second
	DefaultDrainTimeout  = 30 * time.Second
	DefaultMaxBodyBytes  = 32 << 20
)

// defaultSessionID mirrors the backend's default when neither path nor
// X-Session-ID names a session (internal/server keeps the same constant;
// importing it here would create an import cycle, since server depends on
// this package for the drain protocol).
const defaultSessionID = "default"

// Backend names one serve process the gateway can route to.
type Backend struct {
	ID  string // ring identity; must match the backend's -shard-id
	URL string // base URL, e.g. http://127.0.0.1:7101
}

// Config tunes a Gateway. The zero value is usable: every field falls
// back to the Default* constants above.
type Config struct {
	// VNodes is the virtual-node count per shard (0 = DefaultVNodes).
	VNodes int
	// Retries is how many times a failed proxy attempt is retried before
	// answering 502. Only errors that provably precede request processing
	// (dial failures; any transport error for GETs) are retried, so
	// non-idempotent traffic is never replayed into a shard that may have
	// already applied it.
	Retries int
	// RetryBackoff is the first retry's delay; it doubles per attempt.
	RetryBackoff time.Duration
	// ProbeInterval is how often the background prober refreshes each
	// shard's /healthz view (epoch hashes, pending flag).
	ProbeInterval time.Duration
	// ApplyTimeout bounds ?wait=1 mutations and AddShard log catch-up.
	ApplyTimeout time.Duration
	// DrainTimeout bounds in-flight draining and rebalance flushes.
	DrainTimeout time.Duration
	// MaxBodyBytes caps proxied and mutation request bodies.
	MaxBodyBytes int64
	// Client issues all backend requests (nil = a 10s-timeout client).
	Client *http.Client
}

func (c *Config) fill() {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.Retries <= 0 {
		c.Retries = DefaultRetries
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.ApplyTimeout <= 0 {
		c.ApplyTimeout = DefaultApplyTimeout
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 10 * time.Second}
	}
}

// mutEntry is one sequenced catalogue mutation. Entries are append-only;
// per-shard appliers consume them in order and record the terminal status
// each shard answered, so convergence ("has every member applied seq N")
// is a cursor comparison, not a network round trip.
type mutEntry struct {
	method string
	path   string // path + ?wait=1, relative to the shard base URL
	body   []byte
	// statuses maps shard ID → terminal HTTP status (2xx applied, 4xx
	// deterministically rejected — identically on every shard, because
	// catalogue validation happens before commit and all shards hold
	// equivalent epochs). Guarded by Gateway.mu.
	statuses map[string]int
	errBody  string // first non-2xx response body, for wait-mode relay
}

// shardState is the gateway's view of one backend.
type shardState struct {
	id  string
	url string

	inflight atomic.Int64 // proxied session requests in flight

	// cursor is the next log index this shard's applier will deliver;
	// removed tells the applier to exit. Guarded by Gateway.mu; waiters
	// sleep on Gateway.cond.
	cursor  int
	removed bool
	done    chan struct{} // closed when the applier goroutine exits

	// health is the last probe result. Guarded by hmu (probes and readers
	// touch it outside Gateway.mu so a slow backend can't stall routing).
	hmu    sync.Mutex
	health ShardHealth
}

// ShardHealth is one backend's slice of the gateway's health report.
type ShardHealth struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Error     string `json:"error,omitempty"`
	Epoch     uint64 `json:"epoch"`
	Items     int    `json:"items"`
	IDMapHash string `json:"idmap_hash,omitempty"`
	SpaceHash string `json:"space_hash,omitempty"`
	Pending   bool   `json:"pending"`
}

// backendHealthz is the subset of the backend /healthz payload the
// gateway consumes.
type backendHealthz struct {
	ShardID string `json:"shard_id"`
	Catalog struct {
		Epoch     uint64 `json:"epoch"`
		Items     int    `json:"items"`
		IDMapHash string `json:"idmap_hash"`
		SpaceHash string `json:"space_hash"`
		Pending   bool   `json:"pending"`
	} `json:"catalog"`
}

// Gateway fronts N serve backends: session traffic is consistent-hash
// routed to its owner shard, catalogue mutations are sequenced into a
// replicated log and fanned out to every shard in order, and membership
// changes flush moved sessions through the shared snapshot store.
type Gateway struct {
	cfg    Config
	client *http.Client
	mux    *http.ServeMux

	mu     sync.Mutex
	cond   *sync.Cond // signalled on cursor advance, ring swap, close
	ring   *Ring
	shards map[string]*shardState
	log    []*mutEntry
	closed bool

	stopProbe chan struct{}
	probeDone chan struct{}

	// counters for /healthz observability
	proxied      atomic.Int64
	proxyRetries atomic.Int64
	proxyErrors  atomic.Int64
	mutations    atomic.Int64
	redeliveries atomic.Int64
}

// New builds a gateway over the given backends (all initial members of
// the ring) and starts its background health prober. Callers own serving
// it (it implements http.Handler) and must Close it when done.
func New(cfg Config, backends []Backend) (*Gateway, error) {
	cfg.fill()
	if len(backends) == 0 {
		return nil, errors.New("shard: gateway needs at least one backend")
	}
	g := &Gateway{
		cfg:       cfg,
		client:    cfg.Client,
		shards:    make(map[string]*shardState, len(backends)),
		stopProbe: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	g.cond = sync.NewCond(&g.mu)
	ids := make([]string, 0, len(backends))
	for _, b := range backends {
		if !session.ValidID(b.ID) {
			return nil, fmt.Errorf("shard: invalid shard ID %q", b.ID)
		}
		if _, dup := g.shards[b.ID]; dup {
			return nil, fmt.Errorf("shard: duplicate shard ID %q", b.ID)
		}
		if b.URL == "" {
			return nil, fmt.Errorf("shard: shard %q has no URL", b.ID)
		}
		g.shards[b.ID] = g.newShardState(b.ID, strings.TrimRight(b.URL, "/"))
		ids = append(ids, b.ID)
	}
	g.ring = NewRing(cfg.VNodes, ids)
	g.routes()
	// One synchronous probe so /healthz is meaningful immediately.
	g.probeAll()
	go g.prober()
	return g, nil
}

// newShardState registers a shard and starts its log applier. The applier
// begins at cursor 0: a shard added mid-flight replays the entire
// mutation log, which its catalogue absorbs idempotently (upserts and
// deletes re-apply cleanly; 4xx rejections repeat deterministically).
func (g *Gateway) newShardState(id, url string) *shardState {
	s := &shardState{id: id, url: url, done: make(chan struct{})}
	s.health = ShardHealth{URL: url}
	go g.applier(s)
	return s
}

func (g *Gateway) routes() {
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /catalog", g.handleCatalogStatus)
	g.mux.HandleFunc("POST /catalog/items", g.handleMutation)
	g.mux.HandleFunc("DELETE /catalog/items/{id}", g.handleMutation)
	g.mux.HandleFunc("GET /sessions", g.handleSessionList)
	g.mux.HandleFunc("GET /gateway/shards", g.handleShardList)
	g.mux.HandleFunc("POST /gateway/shards", g.handleShardAdd)
	g.mux.HandleFunc("DELETE /gateway/shards/{id}", g.handleShardRemove)
	g.mux.HandleFunc("/", g.handleProxy)
}

func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// Close stops the prober and every applier. In-flight proxied requests
// are allowed to finish by the HTTP server's own shutdown; Close only
// tears down gateway-owned goroutines.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	states := make([]*shardState, 0, len(g.shards))
	for _, s := range g.shards {
		s.removed = true
		states = append(states, s)
	}
	g.cond.Broadcast()
	g.mu.Unlock()
	close(g.stopProbe)
	<-g.probeDone
	for _, s := range states {
		<-s.done
	}
}

// ---------------------------------------------------------------------------
// Session proxying

// proxySessionID resolves which session a request concerns, mirroring the
// backend's resolution order: /sessions/{id}/... path, then X-Session-ID,
// then the default session.
func proxySessionID(r *http.Request) string {
	if rest, ok := strings.CutPrefix(r.URL.Path, "/sessions/"); ok {
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		if rest != "" {
			return rest
		}
	}
	if id := r.Header.Get("X-Session-ID"); id != "" {
		return id
	}
	return defaultSessionID
}

// retryable reports whether a proxy attempt may be safely re-sent.
// Dial errors mean the request never reached the shard; for GETs any
// transport error is safe because reads don't mutate session state in a
// way a replay would corrupt (a re-run Recommend re-serves the cached
// slate).
func retryable(method string, err error) bool {
	var op *net.OpError
	if errors.As(err, &op) && op.Op == "dial" {
		return true
	}
	return method == http.MethodGet
}

// handleProxy forwards a session-scoped request to its owner shard.
// Owner resolution and the in-flight increment happen under one mu hold,
// so RemoveShard's drain wait (ring swapped, then inflight==0) cannot
// miss a request that routed under the old ring.
func (g *Gateway) handleProxy(w http.ResponseWriter, r *http.Request) {
	id := proxySessionID(r)
	if !session.ValidID(id) {
		g.error(w, http.StatusBadRequest, fmt.Errorf("invalid session ID %q", id))
		return
	}
	var body []byte
	if r.Body != nil {
		b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
		if err != nil {
			g.error(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		body = b
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		g.error(w, http.StatusServiceUnavailable, errors.New("gateway closed"))
		return
	}
	owner := g.ring.Owner(id)
	s := g.shards[owner]
	if s == nil {
		g.mu.Unlock()
		g.error(w, http.StatusServiceUnavailable, errors.New("no shards in ring"))
		return
	}
	s.inflight.Add(1)
	g.mu.Unlock()
	defer s.inflight.Add(-1)
	g.proxied.Add(1)

	backoff := g.cfg.RetryBackoff
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(r.Context(), r.Method, s.url+r.URL.RequestURI(), bytes.NewReader(body))
		if err != nil {
			g.error(w, http.StatusBadGateway, err)
			return
		}
		copyProxyHeaders(req.Header, r.Header)
		resp, err = g.client.Do(req)
		if err == nil {
			break
		}
		if attempt >= g.cfg.Retries || !retryable(r.Method, err) || r.Context().Err() != nil {
			g.proxyErrors.Add(1)
			g.error(w, http.StatusBadGateway, fmt.Errorf("shard %s: %v", owner, err))
			return
		}
		g.proxyRetries.Add(1)
		time.Sleep(backoff)
		backoff *= 2
	}
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	h.Set("X-Shard", owner)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // client went away; nothing to do
}

// copyProxyHeaders copies end-to-end headers, dropping hop-by-hop ones
// and Content-Length (the transport recomputes it for the buffered body).
func copyProxyHeaders(dst, src http.Header) {
	for k, vs := range src {
		switch http.CanonicalHeaderKey(k) {
		case "Connection", "Keep-Alive", "Transfer-Encoding", "Upgrade", "Content-Length", "Host":
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// ---------------------------------------------------------------------------
// Replicated catalogue mutation log

// handleMutation sequences a catalogue write into the log and either
// returns 202 immediately (the appliers deliver it asynchronously) or,
// with ?wait=1, blocks until every ring member has a terminal status for
// it and relays the outcome.
func (g *Gateway) handleMutation(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Method == http.MethodPost {
		b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
		if err != nil {
			g.error(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		body = b
	}
	wait := r.URL.Query().Get("wait") == "1" || r.URL.Query().Get("wait") == "true"
	// Shards always apply with ?wait=1: "applied" must mean "built into an
	// epoch", or the convergence report could observe a shard whose write
	// is still sitting in its coalescing window.
	entry := &mutEntry{
		method:   r.Method,
		path:     r.URL.Path + "?wait=1",
		body:     body,
		statuses: make(map[string]int),
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		g.error(w, http.StatusServiceUnavailable, errors.New("gateway closed"))
		return
	}
	if g.ring.Len() == 0 {
		g.mu.Unlock()
		g.error(w, http.StatusServiceUnavailable, errors.New("no shards in ring"))
		return
	}
	seq := len(g.log)
	g.log = append(g.log, entry)
	g.cond.Broadcast() // wake appliers
	g.mu.Unlock()
	g.mutations.Add(1)

	if !wait {
		writeJSON(w, http.StatusAccepted, map[string]any{"seq": seq, "committed": true})
		return
	}
	if !g.waitApplied(seq, g.cfg.ApplyTimeout) {
		g.error(w, http.StatusGatewayTimeout, fmt.Errorf("mutation %d not applied on all shards within %v", seq, g.cfg.ApplyTimeout))
		return
	}
	// Terminal everywhere: relay the worst status. Rejections are
	// deterministic (validation precedes commit on equivalent epochs), so
	// "worst" is in practice "the status every shard answered".
	g.mu.Lock()
	worst, applied := http.StatusOK, 0
	errBody := entry.errBody
	for _, st := range entry.statuses {
		applied++
		if st > worst {
			worst = st
		}
	}
	g.mu.Unlock()
	if worst >= 400 {
		msg := errBody
		if msg == "" {
			msg = http.StatusText(worst)
		}
		g.error(w, worst, errors.New(msg))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"seq": seq, "applied": applied})
}

// waitApplied blocks until every current ring member's applier has a
// terminal status for log entry seq, or the timeout lapses. Membership is
// re-read on every wakeup: a shard removed mid-wait stops gating the
// mutation, one added mid-wait starts gating it (it replays the log from
// zero, so it will reach seq).
func (g *Gateway) waitApplied(seq int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	})
	defer timer.Stop()
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if g.appliedLocked(seq) {
			return true
		}
		if g.closed || time.Now().After(deadline) {
			return false
		}
		g.cond.Wait()
	}
}

func (g *Gateway) appliedLocked(seq int) bool {
	if g.ring.Len() == 0 {
		return false
	}
	for _, id := range g.ring.Shards() {
		if g.shards[id] == nil {
			return false
		}
		if _, ok := g.log[seq].statuses[id]; !ok {
			return false
		}
	}
	return true
}

// applier is the per-shard log consumer: it delivers entries in sequence
// order, retrying each until the shard answers a terminal status. 5xx and
// transport errors are retried with exponential backoff (at-least-once
// redelivery — safe because catalogue upserts and deletes are
// idempotent); 2xx/4xx are terminal.
func (g *Gateway) applier(s *shardState) {
	defer close(s.done)
	for {
		g.mu.Lock()
		for !s.removed && !g.closed && s.cursor >= len(g.log) {
			g.cond.Wait()
		}
		if s.removed || g.closed {
			g.mu.Unlock()
			return
		}
		seq := s.cursor
		entry := g.log[seq]
		g.mu.Unlock()

		status, respBody := g.deliver(s, entry)
		g.mu.Lock()
		entry.statuses[s.id] = status
		if status >= 400 && entry.errBody == "" {
			entry.errBody = respBody
		}
		s.cursor = seq + 1
		g.cond.Broadcast()
		g.mu.Unlock()
	}
}

// deliver pushes one log entry at a shard until it answers a terminal
// status (<500). Returns the terminal status, or 0 if the shard was
// removed or the gateway closed while retrying.
func (g *Gateway) deliver(s *shardState, entry *mutEntry) (int, string) {
	backoff := g.cfg.RetryBackoff
	const maxBackoff = time.Second
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			g.redeliveries.Add(1)
			time.Sleep(backoff)
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			g.mu.Lock()
			dead := s.removed || g.closed
			g.mu.Unlock()
			if dead {
				return 0, ""
			}
		}
		req, err := http.NewRequest(entry.method, s.url+entry.path, bytes.NewReader(entry.body))
		if err != nil {
			return http.StatusInternalServerError, err.Error()
		}
		if entry.method == http.MethodPost {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := g.client.Do(req)
		if err != nil {
			continue
		}
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			continue
		}
		return resp.StatusCode, strings.TrimSpace(string(b))
	}
}

// ---------------------------------------------------------------------------
// Health, convergence, and session listing

// probe fetches one shard's /healthz and caches the parsed view.
func (g *Gateway) probe(s *shardState) ShardHealth {
	h := ShardHealth{URL: s.url}
	resp, err := g.client.Get(s.url + "/healthz")
	if err != nil {
		h.Error = err.Error()
	} else {
		var bh backendHealthz
		err = json.NewDecoder(resp.Body).Decode(&bh)
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		switch {
		case resp.StatusCode != http.StatusOK:
			h.Error = fmt.Sprintf("healthz status %d", resp.StatusCode)
		case err != nil:
			h.Error = err.Error()
		default:
			h.Healthy = true
			h.Epoch = bh.Catalog.Epoch
			h.Items = bh.Catalog.Items
			h.IDMapHash = bh.Catalog.IDMapHash
			h.SpaceHash = bh.Catalog.SpaceHash
			h.Pending = bh.Catalog.Pending
		}
	}
	s.hmu.Lock()
	s.health = h
	s.hmu.Unlock()
	return h
}

func (g *Gateway) members() []*shardState {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*shardState, 0, g.ring.Len())
	for _, id := range g.ring.Shards() {
		if s := g.shards[id]; s != nil {
			out = append(out, s)
		}
	}
	return out
}

func (g *Gateway) probeAll() {
	for _, s := range g.members() {
		g.probe(s)
	}
}

func (g *Gateway) prober() {
	defer close(g.probeDone)
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stopProbe:
			return
		case <-t.C:
			g.probeAll()
		}
	}
}

// convergence summarises cross-shard catalogue state from a set of health
// views. Convergence is judged on content fingerprints (idmap_hash,
// space_hash, items) — never on epoch numbers, which are per-process
// counters that legitimately diverge when shards coalesce mutation
// batches differently.
func convergence(views map[string]ShardHealth) (converged, pending bool) {
	converged = true
	first := true
	var idh, sph string
	var items int
	for _, h := range views {
		if !h.Healthy {
			converged = false
			continue
		}
		if h.Pending {
			pending = true
		}
		if first {
			idh, sph, items, first = h.IDMapHash, h.SpaceHash, h.Items, false
			continue
		}
		if h.IDMapHash != idh || h.SpaceHash != sph || h.Items != items {
			converged = false
		}
	}
	if first { // no healthy shard seen
		converged = false
	}
	return converged, pending
}

// handleCatalogStatus is the settlement endpoint: it probes every member
// live and reports whether the mutation log is fully delivered and all
// shards expose identical catalogue fingerprints. loadgen polls it after
// a churn run before trusting /healthz accounting.
func (g *Gateway) handleCatalogStatus(w http.ResponseWriter, r *http.Request) {
	members := g.members()
	views := make(map[string]ShardHealth, len(members))
	for _, s := range members {
		views[s.id] = g.probe(s)
	}
	g.mu.Lock()
	logLen := len(g.log)
	applied := make(map[string]int, len(members))
	minCursor := logLen
	for _, s := range members {
		applied[s.id] = s.cursor
		if s.cursor < minCursor {
			minCursor = s.cursor
		}
	}
	g.mu.Unlock()
	converged, pending := convergence(views)
	if minCursor < logLen {
		pending = true
		converged = false
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"pending":   pending,
		"converged": converged,
		"log":       map[string]any{"len": logLen, "applied": applied},
		"shards":    views,
	})
}

// handleHealthz reports gateway status from the cached probe views (the
// background prober keeps them fresh; a slow shard can't stall health).
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	members := g.members()
	views := make(map[string]ShardHealth, len(members))
	healthy := 0
	for _, s := range members {
		s.hmu.Lock()
		h := s.health
		s.hmu.Unlock()
		views[s.id] = h
		if h.Healthy {
			healthy++
		}
	}
	g.mu.Lock()
	logLen := len(g.log)
	vnodes := g.ring.VNodes()
	shards := g.ring.Shards()
	g.mu.Unlock()
	converged, _ := convergence(views)
	status := "ok"
	if healthy < len(members) {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    status,
		"shard_ids": shards,
		"vnodes":    vnodes,
		"healthy":   healthy,
		"converged": converged,
		"log_len":   logLen,
		"gateway": map[string]any{
			"proxied":       g.proxied.Load(),
			"proxy_retries": g.proxyRetries.Load(),
			"proxy_errors":  g.proxyErrors.Load(),
			"mutations":     g.mutations.Load(),
			"redeliveries":  g.redeliveries.Load(),
		},
		"shards": views,
	})
}

// handleSessionList fans GET /sessions out to every member and merges the
// results sorted by ID (resident sessions are disjoint across shards).
func (g *Gateway) handleSessionList(w http.ResponseWriter, r *http.Request) {
	var all []session.Info
	for _, s := range g.members() {
		resp, err := g.client.Get(s.url + "/sessions")
		if err != nil {
			g.error(w, http.StatusBadGateway, fmt.Errorf("shard %s: %v", s.id, err))
			return
		}
		var out struct {
			Sessions []session.Info `json:"sessions"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if err != nil {
			g.error(w, http.StatusBadGateway, fmt.Errorf("shard %s: %v", s.id, err))
			return
		}
		all = append(all, out.Sessions...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"sessions": all, "count": len(all)})
}

// ---------------------------------------------------------------------------
// Membership changes

// AddShard brings a new backend into the ring: its applier replays the
// whole mutation log, AddShard waits for catch-up, then every existing
// member is drained under the new membership (flushing sessions that now
// belong to the newcomer into the shared store), and only then does the
// ring swap — so the newcomer never receives a session whose snapshot
// hasn't been flushed, and never serves before its catalogue caught up.
func (g *Gateway) AddShard(id, url string) (flushed int, err error) {
	if !session.ValidID(id) {
		return 0, fmt.Errorf("invalid shard ID %q", id)
	}
	if url == "" {
		return 0, fmt.Errorf("shard %q has no URL", id)
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return 0, errors.New("gateway closed")
	}
	if _, dup := g.shards[id]; dup {
		g.mu.Unlock()
		return 0, fmt.Errorf("shard %q already registered", id)
	}
	s := g.newShardState(id, strings.TrimRight(url, "/"))
	g.shards[id] = s
	g.mu.Unlock()

	g.probe(s)
	if !g.waitCaughtUp(s, g.cfg.ApplyTimeout) {
		g.dropShard(s)
		return 0, fmt.Errorf("shard %q did not catch up with the mutation log within %v", id, g.cfg.ApplyTimeout)
	}
	g.mu.Lock()
	vnodes := g.ring.VNodes()
	members := append(g.ring.Shards(), id)
	sort.Strings(members)
	old := make([]*shardState, 0, g.ring.Len())
	for _, mid := range g.ring.Shards() {
		if m := g.shards[mid]; m != nil {
			old = append(old, m)
		}
	}
	g.mu.Unlock()
	for _, m := range old {
		n, derr := g.drain(m, DrainRequest{Self: m.id, VNodes: vnodes, Shards: members})
		if derr != nil {
			g.dropShard(s)
			return flushed, fmt.Errorf("drain %s: %w", m.id, derr)
		}
		flushed += n
	}
	g.mu.Lock()
	g.ring = NewRing(vnodes, members)
	g.cond.Broadcast()
	g.mu.Unlock()
	return flushed, nil
}

// RemoveShard takes a backend out of the ring: the ring swaps first so no
// new request routes to it, in-flight requests drain, then the shard is
// told to flush everything it holds (DrainRequest whose membership
// excludes it). A dead shard fails the flush but is still removed — its
// sessions restore from their last snapshots, losing only feedback since
// then (documented as the mutation log's non-guarantee).
func (g *Gateway) RemoveShard(id string) (flushed int, drained bool, err error) {
	g.mu.Lock()
	s := g.shards[id]
	if s == nil {
		g.mu.Unlock()
		return 0, false, fmt.Errorf("unknown shard %q", id)
	}
	vnodes := g.ring.VNodes()
	members := make([]string, 0, g.ring.Len())
	for _, mid := range g.ring.Shards() {
		if mid != id {
			members = append(members, mid)
		}
	}
	g.ring = NewRing(vnodes, members)
	g.cond.Broadcast()
	g.mu.Unlock()

	// Wait out requests that routed under the old ring.
	deadline := time.Now().Add(g.cfg.DrainTimeout)
	for s.inflight.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	n, derr := g.drain(s, DrainRequest{Self: id, VNodes: vnodes, Shards: members})
	g.dropShard(s)
	return n, derr == nil, nil
}

// dropShard unregisters a shard's state and waits for its applier to
// exit.
func (g *Gateway) dropShard(s *shardState) {
	g.mu.Lock()
	s.removed = true
	delete(g.shards, s.id)
	g.cond.Broadcast()
	g.mu.Unlock()
	<-s.done
}

// waitCaughtUp blocks until the shard's applier cursor reaches the log
// tail (including entries appended while waiting).
func (g *Gateway) waitCaughtUp(s *shardState, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	})
	defer timer.Stop()
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if s.cursor >= len(g.log) {
			return true
		}
		if g.closed || s.removed || time.Now().After(deadline) {
			return false
		}
		g.cond.Wait()
	}
}

// drain posts a DrainRequest to a shard and returns how many sessions it
// flushed.
func (g *Gateway) drain(s *shardState, dr DrainRequest) (int, error) {
	body, err := json.Marshal(dr)
	if err != nil {
		return 0, err
	}
	resp, err := g.client.Post(s.url+DrainPath, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return 0, fmt.Errorf("drain status %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	var out DrainResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.Flushed, nil
}

// handleShardList reports the current ring membership and per-shard
// in-flight counts.
func (g *Gateway) handleShardList(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	type row struct {
		ID       string `json:"id"`
		URL      string `json:"url"`
		Cursor   int    `json:"cursor"`
		Inflight int64  `json:"inflight"`
	}
	rows := make([]row, 0, g.ring.Len())
	for _, id := range g.ring.Shards() {
		if s := g.shards[id]; s != nil {
			rows = append(rows, row{ID: id, URL: s.url, Cursor: s.cursor, Inflight: s.inflight.Load()})
		}
	}
	vnodes := g.ring.VNodes()
	logLen := len(g.log)
	g.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"shards": rows, "vnodes": vnodes, "log_len": logLen})
}

func (g *Gateway) handleShardAdd(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		g.error(w, http.StatusBadRequest, err)
		return
	}
	flushed, err := g.AddShard(req.ID, req.URL)
	if err != nil {
		g.error(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"added": req.ID, "flushed": flushed})
}

func (g *Gateway) handleShardRemove(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	flushed, drained, err := g.RemoveShard(id)
	if err != nil {
		g.error(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": id, "flushed": flushed, "drained": drained})
}

// ---------------------------------------------------------------------------
// Response helpers (kept local: importing internal/server's would cycle)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func (g *Gateway) error(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
